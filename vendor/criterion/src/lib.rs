//! Offline stand-in for the subset of `criterion` this workspace uses:
//! `criterion_group!` / `criterion_main!`, `Criterion::benchmark_group`,
//! `bench_function` / `bench_with_input`, `BenchmarkId` and `black_box`.
//!
//! Semantics mirror criterion's two modes: when the binary receives the
//! `--bench` flag (what `cargo bench` passes) each benchmark runs a small
//! timed sample loop and prints a median per-iteration time; otherwise —
//! notably under `cargo test`, which builds `harness = false` bench
//! targets and runs them plain — every benchmark executes exactly one
//! iteration as a smoke test. No statistics, plots or baselines.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Opaque value barrier; defers to `std::hint::black_box`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Benchmark identifier: a function name plus an optional parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Identifier `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId { label: format!("{}/{}", name.into(), parameter) }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { label: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { label: s }
    }
}

/// Per-iteration timing harness handed to benchmark closures.
pub struct Bencher {
    samples: usize,
    timings: Vec<Duration>,
}

impl Bencher {
    /// Run `f` once per sample, timing each run.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        self.timings.clear();
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(f());
            self.timings.push(start.elapsed());
        }
    }

    fn median(&mut self) -> Duration {
        if self.timings.is_empty() {
            return Duration::ZERO;
        }
        self.timings.sort_unstable();
        self.timings[self.timings.len() / 2]
    }
}

/// Top-level driver, mirroring `criterion::Criterion`.
pub struct Criterion {
    sample_size: usize,
    bench_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10, bench_mode: std::env::args().any(|a| a == "--bench") }
    }
}

impl Criterion {
    /// Set the number of timed samples per benchmark (bench mode only).
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    fn samples(&self) -> usize {
        if self.bench_mode {
            self.sample_size
        } else {
            1
        }
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.into() }
    }

    /// Run one ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F)
    where
        F: FnMut(&mut Bencher),
    {
        run_one(None, id.into(), self.samples(), f);
    }
}

/// A named group of benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Run one benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F)
    where
        F: FnMut(&mut Bencher),
    {
        run_one(Some(&self.name), id.into(), self.criterion.samples(), f);
    }

    /// Run one benchmark with a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(Some(&self.name), id.into(), self.criterion.samples(), |b| f(b, input));
    }

    /// End the group (kept for API compatibility; nothing to flush).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(group: Option<&str>, id: BenchmarkId, samples: usize, mut f: F) {
    let mut bencher = Bencher { samples, timings: Vec::with_capacity(samples) };
    f(&mut bencher);
    let median = bencher.median();
    match group {
        Some(g) => println!("bench {g}/{}: median {median:?} ({samples} samples)", id.label),
        None => println!("bench {}: median {median:?} ({samples} samples)", id.label),
    }
}

/// Collect benchmark functions into a named runner, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $cfg;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Entry point for `harness = false` bench binaries.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_and_function_benches_run() {
        let mut c = Criterion::default().sample_size(3);
        let mut runs = 0;
        c.bench_function("plain", |b| b.iter(|| black_box(1 + 1)));
        {
            let mut g = c.benchmark_group("grp");
            g.bench_with_input(BenchmarkId::new("with_input", 7), &7usize, |b, &n| {
                b.iter(|| {
                    runs += 1;
                    black_box(n * 2)
                })
            });
            g.finish();
        }
        // Test mode (no --bench): exactly one iteration.
        assert_eq!(runs, 1);
    }
}
