//! Offline stand-in for the subset of the `rand` 0.8 API this workspace
//! uses: `Rng::{gen, gen_range, gen_bool}`, `SeedableRng::seed_from_u64`
//! and `rngs::StdRng`.
//!
//! The build environment has no crates.io access, so the real `rand`
//! cannot be vendored; this crate keeps the call sites source-compatible.
//! `StdRng` here is xoshiro256++ seeded through SplitMix64 — a different
//! stream than upstream `StdRng` (ChaCha12), but with equally sound
//! statistical behaviour for the simulation workloads in this repo.
//! Everything is deterministic per seed, which is all CDB requires.

use std::ops::{Range, RangeInclusive};

/// Core entropy source: 64 fresh bits per call.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 random bits (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing random value generation, blanket-implemented for every
/// [`RngCore`] like in the real crate.
pub trait Rng: RngCore {
    /// Sample a value from the "standard" distribution of `T`
    /// (`f64`/`f32`: uniform in `[0, 1)`; integers: uniform over the full
    /// domain; `bool`: fair coin).
    fn gen<T: SampleStandard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Sample uniformly from a half-open or inclusive range.
    ///
    /// # Panics
    /// Panics when the range is empty.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Bernoulli draw with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction of a generator from seed material.
pub trait SeedableRng: Sized {
    /// Expand a 64-bit seed into a full generator state.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types with a canonical "standard" distribution.
pub trait SampleStandard {
    /// Draw one value using `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl SampleStandard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 high bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl SampleStandard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl SampleStandard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() >> 63 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl SampleStandard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleStandard for u128 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() as u128) << 64 | rng.next_u64() as u128
    }
}

/// Range types [`Rng::gen_range`] accepts.
pub trait SampleRange<T> {
    /// Draw a value uniformly from `self`.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = f64::sample_standard(rng);
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = f32::sample_standard(rng);
        self.start + u * (self.end - self.start)
    }
}

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let draw = u128::sample_standard(rng) % span;
                (self.start as i128 + draw as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = self.into_inner();
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let draw = u128::sample_standard(rng) % span;
                (start as i128 + draw as i128) as $t
            }
        }
    )*};
}
impl_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator standing in for `rand`'s
    /// `StdRng`. Seeded via SplitMix64 so nearby seeds give unrelated
    /// streams.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        let same = (0..100).filter(|_| a.gen::<u64>() == c.gen::<u64>()).count();
        assert!(same < 3, "different seeds should give different streams");
    }

    #[test]
    fn unit_floats_stay_in_range_and_cover() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut lo = false;
        let mut hi = false;
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            lo |= x < 0.1;
            hi |= x > 0.9;
        }
        assert!(lo && hi, "samples should cover both tails");
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..10)] = true;
            let v = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&v));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
            let inc = rng.gen_range(3u32..=4);
            assert!(inc == 3 || inc == 4);
        }
        assert!(seen.iter().all(|&s| s), "all buckets should be hit");
    }

    #[test]
    fn mean_of_uniform_is_centred() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.gen::<f64>()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean = {mean}");
    }
}
