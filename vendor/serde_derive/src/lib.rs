//! No-op `#[derive(Serialize)]` / `#[derive(Deserialize)]` macros for the
//! offline `serde` stand-in. The workspace only ever *derives* the traits
//! (no serializer is wired up), so an empty expansion keeps every call
//! site compiling; the blanket impls live in the `serde` stub crate.

use proc_macro::TokenStream;

/// Accepts `#[derive(Serialize)]` and expands to nothing.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts `#[derive(Deserialize)]` and expands to nothing.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
