//! Built-in strategies: numeric ranges, `any::<T>()`, regex-pattern
//! strings, tuples, and `prop_map`.

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

use rand::{Rng, SampleRange, SampleStandard};

use crate::pattern::generate_matching;
use crate::{Strategy, TestRng};

/// Strategy drawing from the full "standard" domain of `T` (see
/// [`any`]).
pub struct Any<T>(PhantomData<T>);

/// `any::<T>()` — arbitrary values of `T` (upstream `proptest::any`).
pub fn any<T: SampleStandard>() -> Any<T> {
    Any(PhantomData)
}

impl<T: SampleStandard> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        rng.gen()
    }
}

impl<T> Strategy for Range<T>
where
    T: Copy,
    Range<T>: SampleRange<T>,
{
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        rng.gen_range(self.clone())
    }
}

impl<T> Strategy for RangeInclusive<T>
where
    T: Copy,
    RangeInclusive<T>: SampleRange<T>,
{
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        rng.gen_range(self.clone())
    }
}

/// String literals act as regex-pattern strategies, like upstream.
impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        generate_matching(self, rng)
    }
}

/// The result of [`Strategy::prop_map`].
pub struct Map<S, F> {
    pub(crate) source: S,
    pub(crate) f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.source.generate(rng))
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+);)*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0);
    (A.0, B.1);
    (A.0, B.1, C.2);
    (A.0, B.1, C.2, D.3);
    (A.0, B.1, C.2, D.3, E.4);
    (A.0, B.1, C.2, D.3, E.4, F.5);
}
