//! Collection strategies: `vec` and `btree_set`, mirroring
//! `proptest::collection`.

use std::collections::BTreeSet;
use std::ops::{Range, RangeInclusive};

use rand::Rng;

use crate::{Strategy, TestRng};

/// Length specification accepted by the collection strategies: an exact
/// `usize`, a `Range<usize>` or a `RangeInclusive<usize>`.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    /// Exclusive upper bound.
    hi: usize,
}

impl SizeRange {
    fn pick(&self, rng: &mut TestRng) -> usize {
        if self.hi <= self.lo + 1 {
            self.lo
        } else {
            rng.gen_range(self.lo..self.hi)
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n + 1 }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty collection size range");
        SizeRange { lo: r.start, hi: r.end }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty collection size range");
        SizeRange { lo: *r.start(), hi: *r.end() + 1 }
    }
}

/// Strategy for `Vec<S::Value>` with a length drawn from `size`.
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

/// `Vec` of values from `element`, with length in `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy { element, size: size.into() }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let len = self.size.pick(rng);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// Strategy for `BTreeSet<S::Value>` with a target size drawn from `size`.
pub struct BTreeSetStrategy<S> {
    element: S,
    size: SizeRange,
}

/// `BTreeSet` of values from `element`. As upstream, the set may come out
/// smaller than requested when the element domain yields duplicates; a
/// bounded number of redraws keeps generation total.
pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    BTreeSetStrategy { element, size: size.into() }
}

impl<S> Strategy for BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    type Value = BTreeSet<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let target = self.size.pick(rng);
        let mut out = BTreeSet::new();
        let mut attempts = 0usize;
        while out.len() < target && attempts < target * 20 + 20 {
            out.insert(self.element.generate(rng));
            attempts += 1;
        }
        out
    }
}
