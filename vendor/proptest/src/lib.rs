//! Offline stand-in for the subset of `proptest` this workspace uses.
//!
//! The build environment has no crates.io access, so the real crate cannot
//! be vendored. This stub keeps the property-test call sites
//! source-compatible: the `proptest!` macro, `prop_assert!` /
//! `prop_assert_eq!` / `prop_assert_ne!` / `prop_assume!`, `any::<T>()`,
//! numeric-range and regex-string strategies, tuple composition,
//! `prop::collection::{vec, btree_set}` and `Strategy::prop_map`.
//!
//! Differences from upstream, deliberate for this repo:
//! * cases are generated from a seed derived from the test name, so runs
//!   are fully deterministic (no `PROPTEST_` env handling);
//! * failing inputs are *not* shrunk — the panic reports the case index
//!   and assertion message instead;
//! * the regex-string strategy supports the subset actually used here:
//!   literals, `.`, `[...]` classes with ranges, groups, and the
//!   `?`/`*`/`+`/`{m,n}` quantifiers.

use rand::rngs::StdRng;
use rand::SeedableRng;

pub mod collection;
mod pattern;
mod strategies;

pub use strategies::{any, Any, Map};

/// Generator RNG threaded through every strategy.
pub type TestRng = StdRng;

/// Outcome channel for one generated case.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TestCaseError {
    /// An assertion failed; the message explains what.
    Fail(String),
    /// The case was rejected by `prop_assume!` and should be skipped.
    Reject,
}

impl TestCaseError {
    /// Build a failure with a message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "{m}"),
            TestCaseError::Reject => write!(f, "case rejected by prop_assume!"),
        }
    }
}

/// Run-count configuration, mirroring `proptest::test_runner::Config`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Upstream defaults to 256; 64 keeps the offline suite snappy while
        // still exploring a meaningful slice of each input space.
        ProptestConfig { cases: 64 }
    }
}

/// A value generator. The stub collapses upstream's `Strategy`/`ValueTree`
/// pair into direct generation (no shrinking).
pub trait Strategy {
    /// Type of the generated values.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f` (upstream `prop_map`).
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { source: self, f }
    }
}

/// Drive one property: generate `cfg.cases` inputs and evaluate `f` on
/// each, panicking on the first failure. Called by the `proptest!` macro.
pub fn run_cases<F>(name: &str, cfg: &ProptestConfig, mut f: F)
where
    F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
{
    // FNV-1a over the test name: deterministic per test, stable per run.
    let mut seed: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        seed ^= b as u64;
        seed = seed.wrapping_mul(0x0000_0100_0000_01b3);
    }
    let mut rng = TestRng::seed_from_u64(seed);
    let mut rejects = 0u32;
    for case in 0..cfg.cases {
        match f(&mut rng) {
            Ok(()) => {}
            Err(TestCaseError::Reject) => {
                rejects += 1;
                assert!(
                    rejects <= cfg.cases.saturating_mul(8),
                    "{name}: too many prop_assume! rejections"
                );
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!("{name}: property failed at case {case}/{}: {msg}", cfg.cases)
            }
        }
    }
}

/// Mirrors `proptest::prelude`.
pub mod prelude {
    pub use crate::{any, Any, ProptestConfig, Strategy, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};

    /// Mirrors the `prop` module alias exported by upstream's prelude.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Define property tests. Matches the upstream surface used here: an
/// optional `#![proptest_config(...)]` header followed by `#[test] fn
/// name(pat in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!(($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!(($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            $crate::run_cases(stringify!($name), &config, |rng| {
                let ($($pat,)+) = $crate::Strategy::generate(&($($strat,)+), rng);
                (move || -> ::std::result::Result<(), $crate::TestCaseError> {
                    $body
                    ::std::result::Result::Ok(())
                })()
            });
        }
        $crate::__proptest_items!(($cfg) $($rest)*);
    };
}

/// `assert!` that reports through the proptest failure channel.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// `assert_eq!` that reports through the proptest failure channel.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        if !(left == right) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                left,
                right
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let left = $left;
        let right = $right;
        if !(left == right) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    }};
}

/// `assert_ne!` that reports through the proptest failure channel.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        if left == right {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                left
            )));
        }
    }};
}

/// Skip the current case when its precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn helper_with_result(x: usize) -> Result<(), TestCaseError> {
        prop_assert!(x < 1000, "x = {x}");
        Ok(())
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Range strategies stay inside their bounds.
        #[test]
        fn ranges_in_bounds(a in 3usize..10, b in 0.25f64..0.75, c in 2u32..=4) {
            prop_assert!((3..10).contains(&a));
            prop_assert!((0.25..0.75).contains(&b));
            prop_assert!((2..=4).contains(&c));
        }

        #[test]
        fn tuples_and_maps_compose(
            (x, y) in (0usize..5, 0usize..5).prop_map(|(x, y)| (x + 10, y + 20)),
            flag in any::<bool>(),
        ) {
            prop_assert!((10..15).contains(&x));
            prop_assert!((20..25).contains(&y));
            prop_assert!(usize::from(flag) <= 1);
            helper_with_result(x)?;
        }

        #[test]
        fn collections_respect_sizes(
            v in prop::collection::vec(0usize..100, 2..6),
            s in prop::collection::btree_set("[a-e]{1,3}", 1..8),
            exact in prop::collection::vec(any::<bool>(), 7),
        ) {
            prop_assert!((2..6).contains(&v.len()));
            prop_assert!(!s.is_empty() && s.len() < 8);
            prop_assert_eq!(exact.len(), 7);
        }

        #[test]
        fn regex_strings_match_shape(a in "[a-c]{1,6}", b in ".{0,20}", c in "[a-d]{1,8}( [a-d]{1,8})?") {
            prop_assert!(!a.is_empty() && a.len() <= 6);
            prop_assert!(a.chars().all(|ch| ('a'..='c').contains(&ch)));
            prop_assert!(b.chars().count() <= 20);
            let words: Vec<&str> = c.split(' ').collect();
            prop_assert!(words.len() <= 2 && words.iter().all(|w| !w.is_empty()));
        }

        #[test]
        fn assume_skips_cases(n in 0usize..10) {
            prop_assume!(n != 3);
            prop_assert_ne!(n, 3);
        }
    }

    #[test]
    fn determinism_per_test_name() {
        let mut first = Vec::new();
        run_cases("stable", &ProptestConfig::with_cases(5), |rng| {
            first.push(Strategy::generate(&(0usize..1000,), rng));
            Ok(())
        });
        let mut second = Vec::new();
        run_cases("stable", &ProptestConfig::with_cases(5), |rng| {
            second.push(Strategy::generate(&(0usize..1000,), rng));
            Ok(())
        });
        assert_eq!(first, second);
    }

    #[test]
    #[should_panic(expected = "property failed")]
    fn failures_panic_with_context() {
        run_cases("doomed", &ProptestConfig::with_cases(3), |_| Err(TestCaseError::fail("nope")));
    }

    use crate::{run_cases, Strategy};
}
