//! Generator for strings matching a small regex subset.
//!
//! Supports exactly the constructs the workspace's string strategies use:
//! literal characters, `.` (any printable ASCII), character classes
//! `[a-z…]` built from ranges and singletons, groups `( … )`, escapes
//! `\x`, and the quantifiers `?`, `*`, `+` and `{m}` / `{m,n}`. Unbounded
//! quantifiers are capped at 8 repetitions. Unsupported syntax (e.g.
//! alternation) panics so a test author notices immediately.

use rand::Rng;

use crate::TestRng;

#[derive(Debug, Clone)]
enum Node {
    Literal(char),
    AnyChar,
    Class(Vec<(char, char)>),
    Group(Vec<Node>),
    Repeat { node: Box<Node>, min: usize, max: usize },
}

/// Generate one string matching `pattern`.
pub fn generate_matching(pattern: &str, rng: &mut TestRng) -> String {
    let chars: Vec<char> = pattern.chars().collect();
    let mut rest = chars.as_slice();
    let nodes = parse_sequence(&mut rest, pattern);
    assert!(rest.is_empty(), "unbalanced ')' in pattern {pattern:?}");
    let mut out = String::new();
    for node in &nodes {
        emit(node, rng, &mut out);
    }
    out
}

fn emit(node: &Node, rng: &mut TestRng, out: &mut String) {
    match node {
        Node::Literal(c) => out.push(*c),
        // Printable ASCII, space through tilde.
        Node::AnyChar => out.push(rng.gen_range(0x20u32..0x7f) as u8 as char),
        Node::Class(ranges) => {
            let total: u32 = ranges.iter().map(|&(lo, hi)| hi as u32 - lo as u32 + 1).sum();
            let mut pick = rng.gen_range(0..total);
            for &(lo, hi) in ranges {
                let span = hi as u32 - lo as u32 + 1;
                if pick < span {
                    out.push(char::from_u32(lo as u32 + pick).expect("class range is valid"));
                    return;
                }
                pick -= span;
            }
            unreachable!("pick is within total");
        }
        Node::Group(nodes) => {
            for n in nodes {
                emit(n, rng, out);
            }
        }
        Node::Repeat { node, min, max } => {
            let count = if min == max { *min } else { rng.gen_range(*min..max + 1) };
            for _ in 0..count {
                emit(node, rng, out);
            }
        }
    }
}

/// Parse a sequence of atoms until the slice is exhausted or a `)` is hit
/// (left unconsumed for the caller).
fn parse_sequence(input: &mut &[char], pattern: &str) -> Vec<Node> {
    let mut nodes = Vec::new();
    while let Some(&c) = input.first() {
        if c == ')' {
            break;
        }
        let atom = parse_atom(input, pattern);
        let node = parse_quantifier(input, atom, pattern);
        nodes.push(node);
    }
    nodes
}

fn parse_atom(input: &mut &[char], pattern: &str) -> Node {
    let c = input[0];
    *input = &input[1..];
    match c {
        '.' => Node::AnyChar,
        '(' => {
            let inner = parse_sequence(input, pattern);
            expect(input, ')', pattern);
            Node::Group(inner)
        }
        '[' => {
            let mut ranges = Vec::new();
            loop {
                let Some(&lo) = input.first() else {
                    panic!("unterminated character class in pattern {pattern:?}");
                };
                *input = &input[1..];
                if lo == ']' {
                    break;
                }
                assert!(
                    lo != '^',
                    "negated classes are not supported by the proptest stub (pattern {pattern:?})"
                );
                if input.first() == Some(&'-') && input.get(1).is_some_and(|&c| c != ']') {
                    let hi = input[1];
                    *input = &input[2..];
                    assert!(lo <= hi, "inverted class range in pattern {pattern:?}");
                    ranges.push((lo, hi));
                } else {
                    ranges.push((lo, lo));
                }
            }
            assert!(!ranges.is_empty(), "empty character class in pattern {pattern:?}");
            Node::Class(ranges)
        }
        '\\' => {
            let Some(&escaped) = input.first() else {
                panic!("dangling escape in pattern {pattern:?}");
            };
            *input = &input[1..];
            Node::Literal(escaped)
        }
        '|' | '*' | '+' | '?' | '{' => {
            panic!("unsupported regex construct {c:?} in pattern {pattern:?}")
        }
        other => Node::Literal(other),
    }
}

fn parse_quantifier(input: &mut &[char], atom: Node, pattern: &str) -> Node {
    // Unbounded repetition is capped: generated strings stay small.
    const CAP: usize = 8;
    let Some(&c) = input.first() else {
        return atom;
    };
    let (min, max) = match c {
        '?' => (0, 1),
        '*' => (0, CAP),
        '+' => (1, CAP),
        '{' => {
            *input = &input[1..];
            let min = parse_number(input, pattern);
            let max = if input.first() == Some(&',') {
                *input = &input[1..];
                if input.first() == Some(&'}') {
                    min + CAP
                } else {
                    parse_number(input, pattern)
                }
            } else {
                min
            };
            expect(input, '}', pattern);
            assert!(min <= max, "inverted repetition bounds in pattern {pattern:?}");
            return Node::Repeat { node: Box::new(atom), min, max };
        }
        _ => return atom,
    };
    *input = &input[1..];
    Node::Repeat { node: Box::new(atom), min, max }
}

fn parse_number(input: &mut &[char], pattern: &str) -> usize {
    let mut n = 0usize;
    let mut any = false;
    while let Some(&c) = input.first() {
        let Some(d) = c.to_digit(10) else { break };
        n = n * 10 + d as usize;
        any = true;
        *input = &input[1..];
    }
    assert!(any, "expected a number in repetition of pattern {pattern:?}");
    n
}

fn expect(input: &mut &[char], wanted: char, pattern: &str) {
    assert!(input.first() == Some(&wanted), "expected {wanted:?} in pattern {pattern:?}");
    *input = &input[1..];
}

#[cfg(test)]
mod tests {
    use super::generate_matching;
    use rand::SeedableRng;

    fn rng() -> crate::TestRng {
        crate::TestRng::seed_from_u64(11)
    }

    #[test]
    fn class_with_counts() {
        let mut r = rng();
        for _ in 0..200 {
            let s = generate_matching("[a-c]{1,6}", &mut r);
            assert!((1..=6).contains(&s.len()), "{s:?}");
            assert!(s.chars().all(|c| ('a'..='c').contains(&c)), "{s:?}");
        }
    }

    #[test]
    fn optional_group_with_space() {
        let mut r = rng();
        let mut with = 0;
        let mut without = 0;
        for _ in 0..200 {
            let s = generate_matching("[a-d]{1,8}( [a-d]{1,8})?", &mut r);
            let parts: Vec<&str> = s.split(' ').collect();
            assert!(parts.len() <= 2, "{s:?}");
            assert!(parts.iter().all(|p| (1..=8).contains(&p.len())), "{s:?}");
            if parts.len() == 2 {
                with += 1;
            } else {
                without += 1;
            }
        }
        assert!(with > 0 && without > 0);
    }

    #[test]
    fn dot_and_exact_counts() {
        let mut r = rng();
        for _ in 0..100 {
            let s = generate_matching(".{0,20}", &mut r);
            assert!(s.chars().count() <= 20);
            assert!(s.chars().all(|c| (' '..='~').contains(&c)), "{s:?}");
            let t = generate_matching("x{3}", &mut r);
            assert_eq!(t, "xxx");
        }
    }

    #[test]
    fn escapes_and_literals() {
        let mut r = rng();
        assert_eq!(generate_matching(r"a\.b", &mut r), "a.b");
        assert_eq!(generate_matching("abc", &mut r), "abc");
    }

    #[test]
    #[should_panic(expected = "unsupported regex construct")]
    fn alternation_rejected() {
        generate_matching("a|b", &mut rng());
    }
}
