//! Offline stand-in for the slice of `serde` this workspace touches.
//!
//! The repo derives `Serialize`/`Deserialize` on a handful of plain data
//! types but never instantiates a serializer (JSON export in `cdb-runtime`
//! is hand-rolled), so marker traits with blanket impls plus the no-op
//! derive macros from `serde_derive` keep every call site and trait bound
//! source-compatible without crates.io access.

/// Marker stand-in for `serde::Serialize`; satisfied by every type.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize`; satisfied by every type.
pub trait Deserialize<'de> {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}

pub use serde_derive::{Deserialize, Serialize};
