//! Interactive CQL shell over a generated dataset and a simulated crowd.
//!
//! ```sh
//! cargo run --bin cdb-repl -- [--dataset paper|award] [--scale N] [--quality Q]
//! ```
//!
//! Type CQL at the prompt (`SELECT … CROWDJOIN …`, `ORDER BY CROWD`,
//! `GROUP BY CROWD`, `BUDGET n`) and watch the optimizer spend simulated
//! crowd tasks. Meta commands: `.tables`, `.schema <table>`, `.explain
//! <select>`, `.queries`, `.help`, `.quit`.

use std::io::{BufRead, Write};

use cdb::core::{Cdb, CdbConfig};
use cdb::crowd::{Market, SimulatedPlatform, WorkerPool};
use cdb::datagen::{award_dataset, paper_dataset, queries_for, Dataset, DatasetScale};
use rand::rngs::StdRng;
use rand::SeedableRng;

struct Args {
    dataset: String,
    scale: usize,
    quality: f64,
}

fn parse_args() -> Args {
    let mut args = Args { dataset: "paper".into(), scale: 20, quality: 0.9 };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--dataset" => args.dataset = it.next().expect("--dataset paper|award"),
            "--scale" => args.scale = it.next().and_then(|v| v.parse().ok()).expect("--scale N"),
            "--quality" => {
                args.quality = it.next().and_then(|v| v.parse().ok()).expect("--quality Q")
            }
            other => {
                eprintln!("unknown argument `{other}`");
                std::process::exit(2);
            }
        }
    }
    args
}

fn main() {
    let args = parse_args();
    let ds: Dataset = match args.dataset.as_str() {
        "paper" => paper_dataset(DatasetScale::paper_full().scaled(args.scale), 42),
        "award" => award_dataset(DatasetScale::award_full().scaled(args.scale), 42),
        other => {
            eprintln!("unknown dataset `{other}` (expected paper or award)");
            std::process::exit(2);
        }
    };
    let truth = ds.truth.clone();
    let dataset_name = ds.name;
    let cdb = Cdb::with_database(ds.db);

    println!(
        "CDB shell — dataset `{dataset_name}` at 1/{} scale, simulated workers N({}, 0.01).",
        args.scale, args.quality
    );
    println!("Type CQL, or .help for commands.\n");

    let stdin = std::io::stdin();
    let mut seed = 7u64;
    loop {
        print!("cql> ");
        std::io::stdout().flush().expect("stdout flush");
        let mut line = String::new();
        if stdin.lock().read_line(&mut line).unwrap_or(0) == 0 {
            break; // EOF
        }
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        match line {
            ".quit" | ".exit" => break,
            ".help" => {
                println!(
                    ".tables            list tables\n\
                     .schema <table>    show a table's columns\n\
                     .queries           show the Table 4 benchmark queries\n\
                     .explain <select>  build the query graph, print stats, ask nothing\n\
                     .quit              leave\n\
                     anything else      executed as CQL against the simulated crowd"
                );
            }
            ".tables" => {
                for t in cdb.database().tables() {
                    println!(
                        "{:<14}{:>7} rows{}",
                        t.name(),
                        t.row_count(),
                        if t.is_crowd() { "  (CROWD)" } else { "" }
                    );
                }
            }
            ".queries" => {
                for q in queries_for(dataset_name) {
                    println!("[{}] {}", q.label, q.cql);
                }
            }
            _ if line.starts_with(".schema") => {
                let name = line.trim_start_matches(".schema").trim();
                match cdb.database().table(name) {
                    Ok(t) => {
                        for c in t.schema().columns() {
                            println!(
                                "{:<16}{}{}",
                                c.name,
                                c.ty.name(),
                                if c.crowd { "  CROWD" } else { "" }
                            );
                        }
                    }
                    Err(e) => println!("error: {e}"),
                }
            }
            _ if line.starts_with(".explain") => {
                let sql = line.trim_start_matches(".explain").trim();
                match cdb.plan_select(sql, &CdbConfig::default().build) {
                    Ok(g) => {
                        println!(
                            "graph: {} tuple vertices, {} candidate edges, {} predicates",
                            g.node_count(),
                            g.edge_count(),
                            g.predicate_count()
                        );
                        for (i, p) in g.predicates().iter().enumerate() {
                            println!("  predicate {i}: {}", p.description);
                        }
                        println!("open (crowd) edges: {}", g.open_edges().len());
                    }
                    Err(e) => println!("error: {e}"),
                }
            }
            sql => {
                seed += 1;
                let mut rng = StdRng::seed_from_u64(seed);
                let pool = WorkerPool::gaussian(50, args.quality, 0.1, &mut rng);
                let mut platform = SimulatedPlatform::new(Market::Amt, pool, seed);
                match cdb.run_select(sql, &truth, &mut platform, &CdbConfig::default()) {
                    Ok(out) => {
                        println!(
                            "{} answers | {} tasks in {} rounds | precision {:.2} recall {:.2} F {:.2}",
                            out.stats.answers.len(),
                            out.stats.tasks_asked + out.post_tasks,
                            out.stats.rounds,
                            out.metrics.precision,
                            out.metrics.recall,
                            out.metrics.f_measure,
                        );
                        // Render up to 10 answers.
                        if let Ok(g) = cdb.plan_select(sql, &CdbConfig::default().build) {
                            let display_order: Vec<usize> = out
                                .order
                                .clone()
                                .unwrap_or_else(|| (0..out.stats.answers.len()).collect());
                            for &i in display_order.iter().take(10) {
                                let cand = &out.stats.answers[i];
                                let cells: Vec<String> = cand
                                    .binding
                                    .iter()
                                    .filter_map(|&n| g.node_tuple(n))
                                    .map(|t| format!("{}[{}]", t.table, t.row))
                                    .collect();
                                println!("  {}", cells.join(" ⋈ "));
                            }
                            if out.stats.answers.len() > 10 {
                                println!("  … and {} more", out.stats.answers.len() - 10);
                            }
                        }
                    }
                    Err(e) => println!("error: {e}"),
                }
            }
        }
    }
    println!("bye.");
}
