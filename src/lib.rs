//! # CDB — crowd-powered database with tuple-level query optimization
//!
//! A from-scratch Rust reproduction of *CDB: Optimizing Queries with
//! Crowd-Based Selections and Joins* (Li, Chai, Fan et al., SIGMOD 2017).
//!
//! CDB answers SQL-like queries whose joins and selections require human
//! judgment ("is `Univ. of California` the same as `University of
//! California`?"). It builds a **graph** whose vertices are tuples and
//! whose edges are candidate crowd tasks weighted by similarity-derived
//! matching probabilities, then optimizes **cost** (fewest tasks),
//! **latency** (fewest crowd rounds) and **quality** (truth inference +
//! task assignment) over that graph — at tuple granularity, unlike the
//! table-level tree model of CrowdDB/Qurk/Deco/CrowdOP.
//!
//! This umbrella crate re-exports the workspace's public API:
//!
//! * [`storage`] — tables, schemas with `CROWD` columns, the catalog;
//! * [`cql`] — the CQL language (`CROWDJOIN`, `CROWDEQUAL`, `FILL`,
//!   `COLLECT`, `BUDGET`);
//! * [`similarity`] — matching-probability estimators + similarity join;
//! * [`graph`] — max-flow/min-cut and other graph algorithms;
//! * [`crowd`] — the (simulated) crowdsourcing platform;
//! * [`quality`] — EM truth inference, Bayesian voting, task assignment;
//! * [`core`] — the graph query model and the multi-goal optimizer;
//! * [`baselines`] — every system the paper compares against;
//! * [`datagen`] — paper-shaped synthetic datasets with ground truth.
//!
//! # Quickstart
//!
//! ```
//! use cdb::core::{Cdb, CdbConfig, QueryTruth};
//! use cdb::crowd::{Market, SimulatedPlatform, WorkerPool};
//! use cdb::storage::{TupleId, Value};
//!
//! // Define tables with CQL DDL and load data.
//! let mut cdb = Cdb::new();
//! cdb.execute_ddl("CREATE TABLE Researcher (name varchar(64), affiliation varchar(64))")
//!     .unwrap();
//! cdb.execute_ddl("CREATE TABLE University (name varchar(64), country varchar(16))")
//!     .unwrap();
//! {
//!     let db = cdb.database_mut();
//!     let r = db.table_mut("Researcher").unwrap();
//!     r.push(vec![Value::from("M. Franklin"), Value::from("Univ. of California")]).unwrap();
//!     let u = db.table_mut("University").unwrap();
//!     u.push(vec![Value::from("University of California"), Value::from("USA")]).unwrap();
//! }
//!
//! // Ground truth drives the simulated workers (and scoring).
//! let mut truth = QueryTruth::default();
//! truth.add_join(TupleId::new("Researcher", 0), TupleId::new("University", 0));
//!
//! // A simulated crowd: 10 workers, 100% accurate.
//! let mut platform =
//!     SimulatedPlatform::new(Market::Amt, WorkerPool::with_accuracies(&[1.0; 10]), 7);
//!
//! let out = cdb
//!     .run_select(
//!         "SELECT * FROM Researcher, University \
//!          WHERE Researcher.affiliation CROWDJOIN University.name",
//!         &truth,
//!         &mut platform,
//!         &CdbConfig::default(),
//!     )
//!     .unwrap();
//! assert_eq!(out.metrics.f_measure, 1.0);
//! ```

pub use cdb_baselines as baselines;
pub use cdb_core as core;
pub use cdb_cql as cql;
pub use cdb_crowd as crowd;
pub use cdb_datagen as datagen;
pub use cdb_graph as graph;
pub use cdb_quality as quality;
pub use cdb_similarity as similarity;
pub use cdb_storage as storage;
