#!/usr/bin/env sh
# Line-format check for Prometheus text exposition (version 0.0.4).
#
# Usage: scripts/check_prometheus.sh <exposition-file>
#
# This is the CI-side complement of `cdb_obsv::prom::validate_exposition`
# (which the example already runs in-process before writing the file):
# a dependency-free awk pass asserting every line is either a well-formed
# `# HELP` / `# TYPE` comment or a `name[{labels}] value` sample, that
# every sample's metric family was declared first, and that histogram
# `_bucket` series end with an `le="+Inf"` line. Histogram semantics are
# also checked: cumulative bucket counts must be monotone non-decreasing
# in document order, and the `+Inf` bucket must equal the family's
# `_count` sample.
set -eu

file="${1:?usage: scripts/check_prometheus.sh <exposition-file>}"

[ -s "$file" ] || { echo "FAIL: $file is missing or empty" >&2; exit 1; }

awk '
function fail(msg) { printf "FAIL line %d: %s: %s\n", NR, msg, $0 > "/dev/stderr"; bad = 1 }
/^$/ { next }
/^# HELP [a-zA-Z_:][a-zA-Z0-9_:]* / { helped[$3] = 1; next }
/^# TYPE [a-zA-Z_:][a-zA-Z0-9_:]* (counter|gauge|histogram|summary|untyped)$/ {
    typed[$3] = $4; next
}
/^#/ { fail("malformed comment (expected # HELP or # TYPE)") ; next }
{
    # Sample line: name[{labels}] value
    if ($0 !~ /^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^{}]*\})? -?([0-9.eE+-]+|\+Inf|-Inf|NaN)$/) {
        fail("not a sample line"); next
    }
    name = $0
    sub(/[{ ].*$/, "", name)
    # A histogram family declares one TYPE for name, samples appear as
    # name_bucket / name_sum / name_count.
    family = name
    sub(/_(bucket|sum|count)$/, "", family)
    if (!(name in typed) && !(family in typed)) fail("sample before # TYPE")
    if (!(name in helped) && !(family in helped)) fail("sample before # HELP")
    value = $NF
    if (name ~ /_bucket$/) {
        if ($0 !~ /le="/) fail("histogram bucket without an le label")
        # Cumulative histograms: within a family the bucket counts must be
        # monotone non-decreasing in document order.
        if ((family in prev_bucket) && value + 0 < prev_bucket[family] + 0)
            fail(sprintf("bucket count %s below previous bucket %s for %s", \
                         value, prev_bucket[family], family))
        prev_bucket[family] = value
        if ($0 ~ /le="\+Inf"/) { inf_buckets[family] = 1; inf_count[family] = value }
        bucket_families[family] = 1
    }
    if (name ~ /_count$/ && family in bucket_families) count_sample[family] = value
}
END {
    for (f in bucket_families) {
        if (!(f in inf_buckets)) {
            printf "FAIL: histogram %s has no le=\"+Inf\" bucket\n", f > "/dev/stderr"
            bad = 1
        }
        # The terminal +Inf bucket is the total observation count and must
        # agree with the _count sample of the same family.
        if ((f in inf_count) && (f in count_sample) && \
            inf_count[f] + 0 != count_sample[f] + 0) {
            printf "FAIL: histogram %s le=\"+Inf\" bucket %s != %s_count %s\n", \
                   f, inf_count[f], f, count_sample[f] > "/dev/stderr"
            bad = 1
        }
        if ((f in inf_buckets) && !(f in count_sample)) {
            printf "FAIL: histogram %s has buckets but no %s_count sample\n", \
                   f, f > "/dev/stderr"
            bad = 1
        }
    }
    exit bad
}' "$file"

echo "OK: $file is well-formed Prometheus exposition"
