#!/usr/bin/env sh
# Intra-repo link check for the markdown docs.
#
# Usage: scripts/check_links.sh            (from the repo root)
#
# Scans every top-level *.md plus docs/*.md for inline markdown links
# `[text](target)` and fails if a relative target does not exist on
# disk, or if its `#anchor` fragment names a heading the target file
# does not have (GitHub slug rules: lowercase, punctuation stripped,
# spaces to hyphens). External schemes (http/https/mailto) are not
# fetched — this is the offline, dependency-free half of doc linting;
# rustdoc's intra-doc-link pass covers the API docs.
set -eu

cd "$(dirname "$0")/.."

fail=0

# GitHub-style anchor slugs for every heading of $1, one per line.
anchors() {
    sed -n 's/^#\{1,6\} //p' "$1" | awk '{
        s = tolower($0)
        gsub(/[^a-z0-9 -]/, "", s)
        gsub(/ /, "-", s)
        print s
    }'
}

for file in ./*.md docs/*.md; do
    [ -f "$file" ] || continue
    dir=$(dirname "$file")
    # Inline links, one per line: strip images, take the (...) part.
    # Reference-style links and autolinks are out of scope (unused here).
    links=$(sed -n 's/!\[[^]]*\]([^)]*)//g; s/\[[^]]*\](\([^)]*\))/\
LINK:\1\
/gp' "$file" | sed -n 's/^LINK://p' | sort -u)
    for link in $links; do
        case $link in
            http://*|https://*|mailto:*|\#*) continue ;;
        esac
        target=${link%%#*}
        fragment=${link#"$target"}
        path="$dir/$target"
        if [ ! -e "$path" ]; then
            echo "FAIL: $file links to missing $target" >&2
            fail=1
            continue
        fi
        if [ -n "$fragment" ] && [ "$fragment" != "#" ]; then
            anchor=${fragment#\#}
            if ! anchors "$path" | grep -qx "$anchor"; then
                echo "FAIL: $file links to $target$fragment but $target has no such heading" >&2
                fail=1
            fi
        fi
    done
done

[ "$fail" -eq 0 ] && echo "OK: all intra-repo markdown links resolve"
exit "$fail"
