//! Similarity-substrate micro-benchmarks: the prefix-filter join that
//! builds the query graph, against the brute-force cross product it
//! avoids, plus the individual measures.

use cdb_datagen::{paper_dataset, DatasetScale};
use cdb_similarity::{edit_distance, similarity_join, SimilarityFn, SimilarityMeasure};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_join(c: &mut Criterion) {
    let ds = paper_dataset(DatasetScale::paper_full().scaled(4), 7);
    let titles_p = ds.db.table("Paper").unwrap().column_strings("title").unwrap();
    let titles_c = ds.db.table("Citation").unwrap().column_strings("title").unwrap();
    let left: Vec<&str> = titles_p.iter().map(String::as_str).collect();
    let right: Vec<&str> = titles_c.iter().map(String::as_str).collect();

    let mut group = c.benchmark_group("similarity_join");
    group.bench_function(
        BenchmarkId::new("prefix_filter", format!("{}x{}", left.len(), right.len())),
        |b| b.iter(|| similarity_join(&left, &right, SimilarityFn::QGramJaccard { q: 2 }, 0.3)),
    );
    group.bench_function(
        BenchmarkId::new("all_pairs_verify", format!("{}x{}", left.len(), right.len())),
        |b| {
            let f = SimilarityFn::QGramJaccard { q: 2 };
            b.iter(|| {
                let mut n = 0usize;
                for a in &left {
                    for bb in &right {
                        if f.similarity(a, bb) >= 0.3 {
                            n += 1;
                        }
                    }
                }
                n
            })
        },
    );
    group.finish();
}

fn bench_measures(c: &mut Criterion) {
    let a = "Scalable Entity Resolution over Relational Data (qx)";
    let b = "Scalable Entity Resolution for Heterogeneous Sources (rm)";
    let mut group = c.benchmark_group("measures");
    group.bench_function("edit_distance", |bch| bch.iter(|| edit_distance(a, b)));
    for (name, f) in [
        ("qgram_jaccard", SimilarityFn::QGramJaccard { q: 2 }),
        ("token_jaccard", SimilarityFn::TokenJaccard),
        ("cosine", SimilarityFn::Cosine),
        ("normalized_ed", SimilarityFn::EditDistance),
    ] {
        group.bench_function(name, |bch| bch.iter(|| f.similarity(a, b)));
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_join, bench_measures
}
criterion_main!(benches);
