//! Quality-control micro-benchmarks: EM truth inference, Bayesian voting
//! and entropy-based task assignment at realistic batch sizes.

use cdb_crowd::{TaskId, WorkerId};
use cdb_quality::{
    bayesian_posterior, em_truth_inference, expected_quality_improvement, select_top_k_tasks,
    EmConfig, TaskAnswers,
};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

/// A synthetic answer matrix: `n_tasks` binary tasks, 5 answers each from
/// a pool of 50 workers of mixed quality.
fn synthetic(n_tasks: usize) -> Vec<TaskAnswers> {
    let mut rng = StdRng::seed_from_u64(3);
    (0..n_tasks)
        .map(|t| {
            let truth = t % 2;
            let answers = (0..5)
                .map(|_| {
                    let w = rng.gen_range(0..50u32);
                    let acc = if w < 10 { 0.95 } else { 0.7 };
                    let a = if rng.gen::<f64>() < acc { truth } else { 1 - truth };
                    (WorkerId(w), a)
                })
                .collect();
            TaskAnswers::flat(TaskId(t as u64), 2, answers)
        })
        .collect()
}

fn bench_inference(c: &mut Criterion) {
    let mut group = c.benchmark_group("truth_inference");
    for n in [50usize, 200, 800] {
        let tasks = synthetic(n);
        group.bench_with_input(BenchmarkId::new("em", n), &tasks, |b, tasks| {
            b.iter(|| em_truth_inference(tasks, EmConfig::default()))
        });
    }
    let qualities: HashMap<WorkerId, f64> = (0..50).map(|w| (WorkerId(w), 0.8)).collect();
    let answers: Vec<(WorkerId, usize)> = (0..5).map(|w| (WorkerId(w), w as usize % 2)).collect();
    group.bench_function("bayesian_posterior", |b| {
        b.iter(|| bayesian_posterior(&answers, &qualities, 2))
    });
    group.finish();
}

fn bench_assignment(c: &mut Criterion) {
    let mut group = c.benchmark_group("task_assignment");
    let posteriors: Vec<Vec<f64>> = (0..500)
        .map(|i| {
            let p = 0.5 + 0.49 * ((i % 100) as f64 / 100.0);
            vec![p, 1.0 - p]
        })
        .collect();
    group.bench_function("expected_improvement", |b| {
        b.iter(|| expected_quality_improvement(&[0.6, 0.4], 0.8))
    });
    group.bench_function("select_top_10_of_500", |b| {
        b.iter(|| select_top_k_tasks(&posteriors, 0.8, 10))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_inference, bench_assignment
}
criterion_main!(benches);
