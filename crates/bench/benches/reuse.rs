//! Answer reuse: task-count reduction on the self-join workload.
//!
//! The evidence pass runs the self-join fleet twice — once without a
//! cache, once against a shared [`ReuseCache`] — and asserts the
//! cache+entailment path cuts dispatched crowd tasks by at least 20%
//! while producing the same answers. The timed groups then compare a
//! cold run against a warm-cache run, where almost every task resolves
//! by entailment before dispatch.

use std::sync::Arc;

use cdb_bench::selfjoin_jobs;
use cdb_core::ReuseCache;
use cdb_runtime::{QueryJob, RuntimeConfig, RuntimeExecutor};
use criterion::{criterion_group, criterion_main, Criterion};

fn fleet() -> Vec<QueryJob> {
    selfjoin_jobs(4, 8, 3)
}

fn config(reuse: Option<Arc<ReuseCache>>) -> RuntimeConfig {
    RuntimeConfig {
        threads: 4,
        seed: 7,
        worker_accuracies: vec![1.0; 20],
        reuse,
        ..RuntimeConfig::default()
    }
}

fn bench_reuse_savings(c: &mut Criterion) {
    // Evidence pass (not timed): two fleet passes per mode, since the
    // cache absorbs answers between runs.
    let two_passes = |cache: Option<Arc<ReuseCache>>| {
        let exec = RuntimeExecutor::new(config(cache));
        let a = exec.run(fleet());
        let b = exec.run(fleet());
        (
            a.metrics.tasks_dispatched + b.metrics.tasks_dispatched,
            a.metrics.tasks_saved + b.metrics.tasks_saved,
            format!("{}{}", a.bindings_text(), b.bindings_text()),
        )
    };
    let (off, _, off_answers) = two_passes(None);
    let (on, saved, on_answers) = two_passes(Some(Arc::new(ReuseCache::new())));
    assert!(
        (on as f64) <= 0.8 * off as f64,
        "reuse must cut dispatched tasks by >= 20%: {off} -> {on}"
    );
    assert_eq!(on_answers, off_answers, "reuse must not change answers");
    println!("# reuse: dispatched {off} -> {on}, {saved} tasks saved");

    let mut group = c.benchmark_group("reuse_selfjoin");
    group.bench_function("cache_off", |b| {
        b.iter(|| RuntimeExecutor::new(config(None)).run(fleet()).metrics.tasks_dispatched)
    });
    let cache = Arc::new(ReuseCache::new());
    // Warm the cache once; each timed iteration then runs mostly on hits.
    RuntimeExecutor::new(config(Some(Arc::clone(&cache)))).run(fleet());
    group.bench_function("cache_warm", |b| {
        b.iter(|| {
            RuntimeExecutor::new(config(Some(Arc::clone(&cache))))
                .run(fleet())
                .metrics
                .tasks_dispatched
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_reuse_savings
}
criterion_main!(benches);
