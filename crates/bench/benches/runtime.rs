//! Concurrent-runtime throughput: queries/sec and virtual rounds as the
//! thread count and fault rate vary.
//!
//! Two things this bench demonstrates beyond raw numbers:
//!
//! * **Concurrency**: the fleet's *virtual* cost is the sum of per-query
//!   makespans, but the scheduler runs queries in parallel, so wall-clock
//!   per query shrinks as threads grow (and `steals > 0` shows work
//!   actually migrated between threads).
//! * **Fault tolerance is not free**: the faulted groups pay extra rounds
//!   (timeouts + reassignments) but still answer every query.

use std::sync::Arc;

use cdb_bench::{runtime_fleet, ExpConfig};
use cdb_datagen::{paper_dataset, queries_for, DatasetScale};
use cdb_obsv::{Ring, Trace};
use cdb_runtime::{FaultPlan, QueryJob, RetryPolicy, RuntimeConfig, RuntimeExecutor};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

const FLEET: u64 = 12;

fn fleet() -> Vec<QueryJob> {
    // A small slice of the paper dataset keeps one bench iteration cheap
    // while still exercising real join graphs (not toy bipartite ones).
    let ds = paper_dataset(DatasetScale::paper_full().scaled(40), 7);
    let q = &queries_for("paper")[0];
    let cfg = ExpConfig { worker_quality: 0.9, seed: 7, ..Default::default() };
    runtime_fleet(&ds, &q.cql, &cfg, FLEET)
}

fn config(threads: usize, fault_rate: f64) -> RuntimeConfig {
    RuntimeConfig {
        threads,
        seed: 7,
        fault_plan: FaultPlan::uniform(7, fault_rate),
        // Sized for the injected fault rate: a "slow" response (4x of a
        // ~60s mean) usually overshoots the default 2-minute deadline.
        retry: RetryPolicy { deadline_ms: 300_000, max_retries: 8 },
        ..RuntimeConfig::default()
    }
}

fn bench_throughput(c: &mut Criterion) {
    let jobs = fleet();
    let mut group = c.benchmark_group("runtime_throughput");
    for &threads in &[1usize, 2, 4, 8] {
        for &fault_rate in &[0.0f64, 0.2] {
            let id = BenchmarkId::new(format!("threads_{threads}"), format!("fault_{fault_rate}"));
            group.bench_with_input(id, &(threads, fault_rate), |b, &(threads, fault_rate)| {
                b.iter(|| {
                    let report =
                        RuntimeExecutor::new(config(threads, fault_rate)).run(jobs.clone());
                    assert_eq!(report.results.len(), jobs.len());
                    // Virtual rounds consumed — the latency axis of the bench.
                    report.metrics.rounds
                })
            });
        }
    }
    group.finish();
}

fn bench_concurrency_evidence(c: &mut Criterion) {
    // Not a timing benchmark: a single measured pass that prints the
    // serial-vs-concurrent virtual gap and the steal count, so bench runs
    // leave evidence that more than one query was in flight at once.
    let jobs = fleet();
    let report = RuntimeExecutor::new(config(4, 0.0)).run(jobs.clone());
    let serial = report.virtual_ms_serial();
    let max = report
        .results
        .iter()
        .filter_map(|(_, r)| r.as_ref().ok().map(|q| q.virtual_ms))
        .max()
        .unwrap_or(0);
    assert!(
        serial > max,
        "a {FLEET}-query fleet must cost more serially ({serial} ms) than its slowest member ({max} ms)"
    );
    println!(
        "# concurrency: serial virtual cost {serial} ms, slowest query {max} ms, \
         wall {:?}, steals {}",
        report.wall, report.steals
    );

    let mut group = c.benchmark_group("runtime_fleet_overhead");
    group.bench_function("schedule_12_queries_4_threads", |b| {
        b.iter(|| RuntimeExecutor::new(config(4, 0.0)).run(jobs.clone()).ok_count())
    });
    group.finish();
}

fn bench_tracing_overhead(c: &mut Criterion) {
    // The acceptance bar for the observability layer: with no collector
    // attached (`Trace::off`, the default) a traced-instrumented run must
    // cost within 2% of the pre-instrumentation baseline — compare the
    // `trace_off` line against `trace_ring` to see what a live collector
    // adds on top.
    let jobs = fleet();
    let mut group = c.benchmark_group("runtime_tracing_overhead");
    group.bench_function("trace_off", |b| {
        b.iter(|| RuntimeExecutor::new(config(4, 0.1)).run(jobs.clone()).ok_count())
    });
    // The ring outlives the iterations (as it would in a live system);
    // each pass drains what it produced so the buffer never fills.
    let ring = Arc::new(Ring::with_capacity(1 << 18));
    let traced = RuntimeConfig { trace: Trace::collector(ring.clone()), ..config(4, 0.1) };
    group.bench_function("trace_ring", |b| {
        b.iter(|| {
            let report = RuntimeExecutor::new(traced.clone()).run(jobs.clone());
            let drained = ring.drain().len();
            assert_eq!(ring.dropped(), 0);
            (report.ok_count(), drained)
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_throughput, bench_concurrency_evidence, bench_tracing_overhead
}
criterion_main!(benches);
