//! Task-selection micro-benchmarks — the code path behind Table 5 of the
//! paper ("it only takes about 10 milliseconds to select the tasks that
//! can be asked in parallel").

use cdb_bench::{prepare, ExpConfig};
use cdb_core::cost::expectation::expectation_order;
use cdb_core::cost::known::select_known_colors;
use cdb_core::cost::sampling::mincut_sampling_order;
use cdb_core::latency::parallel_round;
use cdb_datagen::{paper_dataset, queries_for, DatasetScale};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_selection(c: &mut Criterion) {
    let ds = paper_dataset(DatasetScale::paper_full().scaled(10), 42);
    let cfg = ExpConfig::default();
    let mut group = c.benchmark_group("task_selection");
    for q in queries_for("paper") {
        let (g, truth) = prepare(&ds, &q.cql, &cfg);
        group.bench_with_input(BenchmarkId::new("expectation_order", q.label), &g, |b, g| {
            b.iter(|| expectation_order(g))
        });
        group.bench_with_input(BenchmarkId::new("parallel_round", q.label), &g, |b, g| {
            let order = expectation_order(g);
            b.iter(|| parallel_round(g, &order))
        });
        group.bench_with_input(BenchmarkId::new("mincut_sampling_10", q.label), &g, |b, g| {
            b.iter(|| {
                let mut rng = StdRng::seed_from_u64(1);
                mincut_sampling_order(g, 10, &mut rng)
            })
        });
        group.bench_with_input(BenchmarkId::new("known_color_selection", q.label), &g, |b, g| {
            let oracle = |e: cdb_core::EdgeId| truth[&e];
            b.iter(|| select_known_colors(g, &oracle))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_selection
}
criterion_main!(benches);
