//! Noise-aware diff of two benchmark artifacts (the CI regression gate).
//!
//! `cdb-bench compare <baseline.json> <new.json>` walks both documents in
//! lockstep and classifies every disagreement:
//!
//! * **Structural** — a key, array element, string, boolean, or *count*
//!   (any number whose key has no timing suffix) differs. The perf sweep
//!   is seeded, so counts are bit-deterministic across machines; a count
//!   drift means the measured workload changed, not the machine. Exit 2.
//! * **Timing** — a number with a timing suffix (`_ms`, `_us`, `_ns`,
//!   `_s`, or a `per_s` rate) regressed past its noise threshold. Wall
//!   clocks vary across machines, so thresholds are generous ratios and
//!   tiny absolute values are ignored entirely. Exit 1 (or warn-only).
//!
//! Keys in [`SKIP_KEYS`] (`hist`, `reps`, `generated`) are excluded: the
//! merged histograms legitimately differ between a `--quick` (1-rep) run
//! and the committed multi-rep baseline, and `reps`/`generated` describe
//! the run, not the workload.
//!
//! A PR that legitimately changes phase structure (fewer cascade
//! invocations, a renamed sub-phase) would otherwise be un-landable: its
//! fresh run can never match the old committed baseline structurally.
//! `--accept-structural <phase-prefix>` is the explicit escape hatch:
//! structural diffs attributable to a profile phase whose name starts
//! with a listed prefix are downgraded to warnings, while structural
//! drift anywhere else keeps failing. Each diff carries the `phase` value
//! of its nearest enclosing object for this attribution.

use cdb_obsv::json::Json;

/// Keys excluded from comparison entirely (at any depth).
pub const SKIP_KEYS: &[&str] = &["hist", "reps", "generated"];

/// How a single disagreement is classified.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DiffKind {
    /// Shape or deterministic-count drift — always fatal.
    Structural,
    /// A timing metric regressed past its noise threshold.
    Timing,
}

/// One disagreement between baseline and new.
#[derive(Debug, Clone)]
pub struct Diff {
    /// JSON path of the disagreement (`datasets[0].queries[2].total_ms`).
    pub path: String,
    /// Classification.
    pub kind: DiffKind,
    /// Human-readable description.
    pub message: String,
    /// `phase` value of the nearest enclosing object, when inside a
    /// profile-phase row — the attribution `--accept-structural` matches.
    pub phase: Option<String>,
}

/// Timing classification of a leaf number, by its key's suffix.
#[derive(Debug, Clone, Copy, PartialEq)]
enum NumClass {
    /// Duration: regression = new much *larger* than baseline.
    Duration {
        /// Allowed `new / baseline` ratio.
        ratio: f64,
        /// Ignore when both values are below this (noise floor).
        floor: f64,
    },
    /// Rate (`*_per_s`): regression = new much *smaller* than baseline.
    Rate {
        /// Allowed `baseline / new` ratio.
        ratio: f64,
    },
    /// Everything else: exact equality required.
    Exact,
}

/// Classify a leaf key. Sub-millisecond clocks are the noisiest, so the
/// finer the unit the wider the allowed ratio and the higher the floor
/// (in that unit).
fn classify(key: &str) -> NumClass {
    if key.ends_with("per_s") || key.contains("_per_") {
        NumClass::Rate { ratio: 2.5 }
    } else if key.ends_with("_ms") || key == "ms" {
        NumClass::Duration { ratio: 2.5, floor: 2.0 }
    } else if key.ends_with("_us") || key == "us" {
        NumClass::Duration { ratio: 4.0, floor: 50.0 }
    } else if key.ends_with("_ns") || key == "ns" {
        NumClass::Duration { ratio: 4.0, floor: 50_000.0 }
    } else if key.ends_with("_s") || key == "s" || key.ends_with("_secs") {
        NumClass::Duration { ratio: 2.5, floor: 0.002 }
    } else {
        NumClass::Exact
    }
}

/// Compare two artifacts; returns every disagreement found.
pub fn compare(baseline: &Json, new: &Json) -> Vec<Diff> {
    let mut diffs = Vec::new();
    walk(baseline, new, "$", "", None, &mut diffs);
    diffs
}

/// Is this structural diff attributable to an accepted phase prefix?
pub fn structural_accepted(d: &Diff, accept_structural: &[String]) -> bool {
    d.kind == DiffKind::Structural
        && d.phase
            .as_deref()
            .is_some_and(|p| accept_structural.iter().any(|prefix| p.starts_with(prefix.as_str())))
}

/// The gate's exit code for a set of diffs: 2 if any structural, else 1
/// if any timing, else 0. `timing_warn_only` downgrades timing-only
/// failures to 0 (for noisy CI runners). Structural diffs whose phase
/// attribution starts with an entry of `accept_structural` are treated
/// as warnings; unattributed or unlisted structural drift stays fatal.
pub fn gate(diffs: &[Diff], timing_warn_only: bool, accept_structural: &[String]) -> i32 {
    if diffs
        .iter()
        .any(|d| d.kind == DiffKind::Structural && !structural_accepted(d, accept_structural))
    {
        2
    } else if diffs.iter().any(|d| d.kind == DiffKind::Timing) && !timing_warn_only {
        1
    } else {
        0
    }
}

/// [`gate`] without structural acceptances.
pub fn exit_code(diffs: &[Diff], timing_warn_only: bool) -> i32 {
    gate(diffs, timing_warn_only, &[])
}

/// The `phase` attribution for children of an object: its own `phase`
/// string field when present, else the inherited context.
fn phase_ctx<'a>(obj: &'a [(String, Json)], inherited: Option<&'a str>) -> Option<&'a str> {
    obj.iter()
        .find_map(|(k, v)| match v {
            Json::Str(s) if k == "phase" => Some(s.as_str()),
            _ => None,
        })
        .or(inherited)
}

fn walk(
    base: &Json,
    new: &Json,
    path: &str,
    key: &str,
    phase: Option<&str>,
    diffs: &mut Vec<Diff>,
) {
    match (base, new) {
        (Json::Obj(b), Json::Obj(n)) => {
            let ctx = phase_ctx(b, phase);
            for (k, bv) in b {
                if SKIP_KEYS.contains(&k.as_str()) {
                    continue;
                }
                let child = format!("{path}.{k}");
                match n.iter().find(|(nk, _)| nk == k) {
                    Some((_, nv)) => walk(bv, nv, &child, k, ctx, diffs),
                    None => diffs.push(Diff {
                        path: child,
                        kind: DiffKind::Structural,
                        message: "key missing in new artifact".into(),
                        phase: ctx.map(str::to_string),
                    }),
                }
            }
            for (k, _) in n {
                if SKIP_KEYS.contains(&k.as_str()) {
                    continue;
                }
                if !b.iter().any(|(bk, _)| bk == k) {
                    diffs.push(Diff {
                        path: format!("{path}.{k}"),
                        kind: DiffKind::Structural,
                        message: "key missing in baseline".into(),
                        phase: ctx.map(str::to_string),
                    });
                }
            }
        }
        (Json::Arr(b), Json::Arr(n)) => {
            // Phase tables are matched by phase name, not index: a run
            // that drops or adds a phase row then yields per-phase diffs
            // (attributable to `--accept-structural`) instead of one
            // opaque length mismatch misaligning every later row.
            if is_phase_table(b) && is_phase_table(n) {
                walk_phase_table(b, n, path, diffs);
                return;
            }
            if b.len() != n.len() {
                diffs.push(Diff {
                    path: path.to_string(),
                    kind: DiffKind::Structural,
                    message: format!("array length {} vs {}", b.len(), n.len()),
                    phase: phase.map(str::to_string),
                });
                return;
            }
            for (i, (bv, nv)) in b.iter().zip(n).enumerate() {
                // An array inherits its key's classification element-wise.
                walk(bv, nv, &format!("{path}[{i}]"), key, phase, diffs);
            }
        }
        (Json::Num(b), Json::Num(n)) => check_num(*b, *n, path, key, phase, diffs),
        _ => {
            if base != new {
                diffs.push(Diff {
                    path: path.to_string(),
                    kind: DiffKind::Structural,
                    message: format!("{base:?} vs {new:?}"),
                    phase: phase.map(str::to_string),
                });
            }
        }
    }
}

/// A non-empty array of objects that all carry a `phase` string.
fn is_phase_table(arr: &[Json]) -> bool {
    !arr.is_empty()
        && arr.iter().all(|v| match v {
            Json::Obj(kvs) => phase_ctx(kvs, None).is_some(),
            _ => false,
        })
}

fn walk_phase_table(b: &[Json], n: &[Json], path: &str, diffs: &mut Vec<Diff>) {
    let name = |v: &Json| -> String {
        match v {
            Json::Obj(kvs) => phase_ctx(kvs, None).expect("checked by is_phase_table").to_string(),
            _ => unreachable!("checked by is_phase_table"),
        }
    };
    for (i, bv) in b.iter().enumerate() {
        let p = name(bv);
        match n.iter().find(|nv| name(nv) == p) {
            Some(nv) => walk(bv, nv, &format!("{path}[{i}]"), "", None, diffs),
            None => diffs.push(Diff {
                path: format!("{path}[{i}]"),
                kind: DiffKind::Structural,
                message: format!("phase {p:?} missing in new artifact"),
                phase: Some(p),
            }),
        }
    }
    for nv in n {
        let p = name(nv);
        if !b.iter().any(|bv| name(bv) == p) {
            diffs.push(Diff {
                path: path.to_string(),
                kind: DiffKind::Structural,
                message: format!("phase {p:?} missing in baseline"),
                phase: Some(p),
            });
        }
    }
}

fn check_num(b: f64, n: f64, path: &str, key: &str, phase: Option<&str>, diffs: &mut Vec<Diff>) {
    match classify(key) {
        NumClass::Duration { ratio, floor } => {
            if b.max(n) < floor {
                return; // both under the noise floor
            }
            // Guard divide-by-zero with the floor as the effective base.
            if n > b.max(floor) * ratio {
                diffs.push(Diff {
                    path: path.to_string(),
                    kind: DiffKind::Timing,
                    message: format!("duration regressed {b:.3} -> {n:.3} (allowed {ratio}x)"),
                    phase: phase.map(str::to_string),
                });
            }
        }
        NumClass::Rate { ratio } => {
            if n > 0.0 && b / n > ratio {
                diffs.push(Diff {
                    path: path.to_string(),
                    kind: DiffKind::Timing,
                    message: format!("rate regressed {b:.1} -> {n:.1} (allowed {ratio}x)"),
                    phase: phase.map(str::to_string),
                });
            }
        }
        NumClass::Exact => {
            if b != n {
                diffs.push(Diff {
                    path: path.to_string(),
                    kind: DiffKind::Structural,
                    message: format!("deterministic count {b} vs {n}"),
                    phase: phase.map(str::to_string),
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdb_obsv::json::parse;

    const ARTIFACT: &str = r#"{
        "bench": "perf", "scale": 10, "seed": 42, "reps": 3,
        "datasets": [
            {"dataset": "paper", "queries": [
                {"query": "3J1S", "edges": 412, "tasks": 96, "rounds": 7,
                 "total_ms": 18.400,
                 "hist": {"count": 3, "p50": 18},
                 "phases": [
                    {"phase": "task.select", "count": 7, "total_ms": 9.100, "self_ms": 0.200}
                 ]}
            ]}
        ],
        "store": {"settles": 64, "settles_per_s": 9000.0}
    }"#;

    fn inflate(text: &str, factor: f64) -> String {
        // Multiply every *_ms value by `factor` (mimics scripts/CI sabotage).
        let doc = parse(text).unwrap();
        fn go(j: &Json, key: &str, f: f64) -> String {
            match j {
                Json::Obj(kvs) => {
                    let inner: Vec<String> =
                        kvs.iter().map(|(k, v)| format!("\"{k}\":{}", go(v, k, f))).collect();
                    format!("{{{}}}", inner.join(","))
                }
                Json::Arr(a) => {
                    let inner: Vec<String> = a.iter().map(|v| go(v, key, f)).collect();
                    format!("[{}]", inner.join(","))
                }
                Json::Num(n) if key.ends_with("_ms") => format!("{}", n * f),
                Json::Num(n) => format!("{n}"),
                Json::Str(s) => format!("\"{s}\""),
                Json::Bool(b) => format!("{b}"),
                Json::Null => "null".into(),
            }
        }
        go(&doc, "", factor)
    }

    #[test]
    fn identical_artifacts_exit_zero() {
        let a = parse(ARTIFACT).unwrap();
        let diffs = compare(&a, &a);
        assert!(diffs.is_empty(), "{diffs:?}");
        assert_eq!(exit_code(&diffs, false), 0);
    }

    #[test]
    fn sabotaged_timings_exit_nonzero() {
        let a = parse(ARTIFACT).unwrap();
        let b = parse(&inflate(ARTIFACT, 3.0)).unwrap();
        let diffs = compare(&a, &b);
        assert!(diffs.iter().any(|d| d.kind == DiffKind::Timing), "{diffs:?}");
        assert!(diffs.iter().all(|d| d.kind == DiffKind::Timing), "{diffs:?}");
        assert_eq!(exit_code(&diffs, false), 1);
        // Warn-only downgrades a pure timing regression to success.
        assert_eq!(exit_code(&diffs, true), 0);
    }

    #[test]
    fn small_timing_wobble_tolerated() {
        let a = parse(ARTIFACT).unwrap();
        let b = parse(&inflate(ARTIFACT, 1.8)).unwrap();
        assert!(compare(&a, &b).is_empty());
    }

    #[test]
    fn sub_floor_noise_ignored() {
        let a = parse(r#"{"x_ms": 0.010}"#).unwrap();
        let b = parse(r#"{"x_ms": 0.900}"#).unwrap();
        // 90x apart, but both under the 2 ms floor.
        assert!(compare(&a, &b).is_empty());
    }

    #[test]
    fn count_drift_is_structural() {
        let a = parse(ARTIFACT).unwrap();
        let b = parse(&ARTIFACT.replace("\"tasks\": 96", "\"tasks\": 97")).unwrap();
        let diffs = compare(&a, &b);
        assert_eq!(diffs.len(), 1);
        assert_eq!(diffs[0].kind, DiffKind::Structural);
        assert_eq!(exit_code(&diffs, false), 2);
        // Warn-only never masks structural drift.
        assert_eq!(exit_code(&diffs, true), 2);
    }

    #[test]
    fn missing_key_is_structural() {
        let a = parse(ARTIFACT).unwrap();
        let b = parse(&ARTIFACT.replace("\"rounds\": 7,", "")).unwrap();
        let diffs = compare(&a, &b);
        assert!(diffs.iter().any(|d| d.kind == DiffKind::Structural && d.path.contains("rounds")));
    }

    #[test]
    fn array_length_drift_is_structural() {
        let a = parse(r#"{"phases": [{"count": 1}, {"count": 2}]}"#).unwrap();
        let b = parse(r#"{"phases": [{"count": 1}]}"#).unwrap();
        let diffs = compare(&a, &b);
        assert_eq!(diffs.len(), 1);
        assert_eq!(diffs[0].kind, DiffKind::Structural);
    }

    #[test]
    fn hist_and_reps_are_skipped() {
        let a = parse(r#"{"reps": 3, "hist": {"count": 30}, "tasks": 5}"#).unwrap();
        let b = parse(r#"{"reps": 1, "hist": {"count": 10}, "tasks": 5}"#).unwrap();
        assert!(compare(&a, &b).is_empty());
    }

    const PHASED: &str = r#"{
        "tasks": 96,
        "phases": [
            {"phase": "task.select", "count": 7, "total_ms": 9.1},
            {"phase": "task.select;select.cascade", "count": 2392, "total_ms": 8.0},
            {"phase": "prune", "count": 7, "total_ms": 1.0}
        ]
    }"#;

    #[test]
    fn accepted_phase_prefix_downgrades_structural_drift() {
        let a = parse(PHASED).unwrap();
        // Far fewer cascade invocations, and the row's timing shrank —
        // exactly what an incremental-selection PR produces.
        let b = parse(&PHASED.replace("\"count\": 2392", "\"count\": 12")).unwrap();
        let diffs = compare(&a, &b);
        assert_eq!(diffs.len(), 1);
        assert_eq!(diffs[0].kind, DiffKind::Structural);
        assert_eq!(diffs[0].phase.as_deref(), Some("task.select;select.cascade"));
        // Fatal without acceptance; warning with the prefix listed.
        assert_eq!(gate(&diffs, false, &[]), 2);
        assert_eq!(gate(&diffs, false, &["task.select".to_string()]), 0);
        // An unrelated prefix does not cover it.
        assert_eq!(gate(&diffs, false, &["prune".to_string()]), 2);
    }

    #[test]
    fn acceptance_never_masks_unattributed_drift() {
        let a = parse(PHASED).unwrap();
        let b = parse(&PHASED.replace("\"tasks\": 96", "\"tasks\": 97")).unwrap();
        let diffs = compare(&a, &b);
        assert_eq!(diffs.len(), 1);
        assert!(diffs[0].phase.is_none());
        assert_eq!(gate(&diffs, false, &["task.select".to_string()]), 2);
    }

    #[test]
    fn phase_tables_match_by_name_not_index() {
        let a = parse(PHASED).unwrap();
        // Drop the cascade row entirely: one attributable diff, and the
        // rows after it still compare against their namesakes.
        let b = parse(&PHASED.replace(
            "{\"phase\": \"task.select;select.cascade\", \"count\": 2392, \"total_ms\": 8.0},\n",
            "",
        ))
        .unwrap();
        let diffs = compare(&a, &b);
        assert_eq!(diffs.len(), 1, "{diffs:?}");
        assert_eq!(diffs[0].phase.as_deref(), Some("task.select;select.cascade"));
        assert_eq!(gate(&diffs, false, &["task.select".to_string()]), 0);
        // A row present only in the new artifact is also attributable.
        let diffs = compare(&b, &a);
        assert_eq!(diffs.len(), 1, "{diffs:?}");
        assert!(diffs[0].message.contains("missing in baseline"), "{diffs:?}");
        assert_eq!(gate(&diffs, false, &["task.select".to_string()]), 0);
    }

    #[test]
    fn rate_regression_detected() {
        let a = parse(r#"{"settles_per_s": 9000.0}"#).unwrap();
        let b = parse(r#"{"settles_per_s": 1000.0}"#).unwrap();
        let diffs = compare(&a, &b);
        assert_eq!(diffs.len(), 1);
        assert_eq!(diffs[0].kind, DiffKind::Timing);
        // The other direction (faster) is fine.
        assert!(compare(&b, &a).iter().all(|d| d.kind == DiffKind::Timing));
    }
}
