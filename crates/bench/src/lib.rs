//! Experiment harness: run any of the paper's nine methods on a generated
//! dataset + query and report the three metrics (cost = #tasks, latency =
//! #rounds, quality = F-measure).
//!
//! Used by the `figures` binary (which regenerates every table and figure
//! of the evaluation section) and by the criterion micro-benches.

pub mod compare;

use std::collections::BTreeSet;

use cdb_baselines::{
    budget_baseline, crowddb_order, deco_order, opt_tree_order, qurk_order, run_er, run_tree,
    ErMethod,
};
use cdb_core::executor::{
    true_answers, EdgeTruth, Executor, ExecutorConfig, QualityStrategy, SelectionStrategy,
};
use cdb_core::model::{NodeId, QueryGraph};
use cdb_core::{
    build_query_graph, metrics::precision_recall, metrics::PrMetrics, GraphBuildConfig,
};
use cdb_crowd::{Market, SimulatedPlatform, WorkerPool};
use cdb_datagen::Dataset;
use cdb_similarity::SimilarityFn;

/// The nine methods of Figures 8–16.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Method {
    /// Transitivity-based crowd ER.
    Trans,
    /// Correlation-clustering crowd dedup.
    Acd,
    /// Rule-based tree model, selections pushed down.
    CrowdDb,
    /// Rule-based tree model, predicates as written.
    Qurk,
    /// Cost-based tree model.
    Deco,
    /// Tree-model lower bound (oracle order).
    OptTree,
    /// Graph model, sampling + min-cut selection.
    MinCut,
    /// Graph model, expectation-based selection (majority voting).
    Cdb,
    /// CDB plus quality control (EM + Bayesian voting, task assignment).
    CdbPlus,
}

impl Method {
    /// All nine, in the figures' legend order.
    pub fn all() -> [Method; 9] {
        [
            Method::Trans,
            Method::Acd,
            Method::CrowdDb,
            Method::Qurk,
            Method::Deco,
            Method::OptTree,
            Method::MinCut,
            Method::Cdb,
            Method::CdbPlus,
        ]
    }

    /// Legend name.
    pub fn name(self) -> &'static str {
        match self {
            Method::Trans => "Trans",
            Method::Acd => "ACD",
            Method::CrowdDb => "CrowdDB",
            Method::Qurk => "Qurk",
            Method::Deco => "Deco",
            Method::OptTree => "OptTree",
            Method::MinCut => "MinCut",
            Method::Cdb => "CDB",
            Method::CdbPlus => "CDB+",
        }
    }
}

/// One run's metrics.
#[derive(Debug, Clone, Copy)]
pub struct RunResult {
    /// Tasks asked.
    pub tasks: usize,
    /// Crowd rounds.
    pub rounds: usize,
    /// Result quality.
    pub metrics: PrMetrics,
}

/// Experiment knobs shared across figures.
#[derive(Debug, Clone, Copy)]
pub struct ExpConfig {
    /// Mean worker accuracy (Gaussian `N(q, 0.01)`).
    pub worker_quality: f64,
    /// Workers per task.
    pub redundancy: usize,
    /// Worker pool size.
    pub pool_size: usize,
    /// Similarity function for graph construction.
    pub similarity: SimilarityFn,
    /// Graph edge threshold ε.
    pub epsilon: f64,
    /// Samples for the MinCut method (paper real runs: 100).
    pub mincut_samples: usize,
    /// Latency constraint (Figure 22), if any.
    pub max_rounds: Option<usize>,
    /// Use the paper's flat error model (see DESIGN.md §1) instead of the
    /// difficulty-aware default.
    pub flat_errors: bool,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ExpConfig {
    fn default() -> Self {
        ExpConfig {
            worker_quality: 0.8,
            redundancy: 5,
            pool_size: 50,
            similarity: SimilarityFn::default(),
            epsilon: 0.3,
            mincut_samples: 30,
            max_rounds: None,
            flat_errors: false,
            seed: 0,
        }
    }
}

/// Build the query graph + edge truth for one query over a dataset.
pub fn prepare(ds: &Dataset, cql: &str, cfg: &ExpConfig) -> (QueryGraph, EdgeTruth) {
    let cdb_cql::Statement::Select(q) = cdb_cql::parse(cql).expect("query parses") else {
        panic!("benchmark queries are SELECTs");
    };
    let analyzed = cdb_cql::analyze_select(&q, &ds.db).expect("query analyzes");
    let build = GraphBuildConfig { similarity: cfg.similarity, epsilon: cfg.epsilon };
    let g = build_query_graph(&analyzed, &ds.db, &build);
    let truth = ds.truth.edge_truth(&g);
    (g, truth)
}

/// A fleet of `n` identical query jobs for the concurrent runtime: the
/// same prepared graph replicated under distinct query ids. Each job still
/// executes against its own stream-keyed platform, so the fleet exercises
/// genuinely independent per-query randomness.
pub fn runtime_fleet(
    ds: &Dataset,
    cql: &str,
    cfg: &ExpConfig,
    n: u64,
) -> Vec<cdb_runtime::QueryJob> {
    let (g, truth) = prepare(ds, cql, cfg);
    (0..n).map(|id| cdb_runtime::QueryJob { id, graph: g.clone(), truth: truth.clone() }).collect()
}

/// A fleet of self-join query jobs over a clustered label universe: two
/// parts hold the *same* `items` labels (a self-join duplicates the
/// relation) and the truth marks `(i, j)` matching iff `i % clusters ==
/// j % clusters`. Because truth is a partition of the labels, the recorded
/// answers are transitively consistent — exactly the workload where the
/// answer-reuse cache's entailment layer (cross-query and cross-run) can
/// resolve tasks without dispatch.
pub fn selfjoin_jobs(n_queries: u64, items: usize, clusters: usize) -> Vec<cdb_runtime::QueryJob> {
    use cdb_core::model::PartKind;
    assert!(clusters >= 1);
    (0..n_queries)
        .map(|id| {
            let mut g = QueryGraph::new();
            let a = g.add_part(PartKind::Table { name: "R".into() });
            let b = g.add_part(PartKind::Table { name: "R_dup".into() });
            let an: Vec<NodeId> =
                (0..items).map(|i| g.add_node(a, None, format!("item {i}"))).collect();
            let bn: Vec<NodeId> =
                (0..items).map(|i| g.add_node(b, None, format!("item {i}"))).collect();
            let p = g.add_predicate(a, b, true, "R.v~R.v");
            let mut truth = EdgeTruth::new();
            for (i, &x) in an.iter().enumerate() {
                for (j, &y) in bn.iter().enumerate() {
                    let e = g.add_edge(x, y, p, 0.5);
                    truth.insert(e, i % clusters == j % clusters);
                }
            }
            cdb_runtime::QueryJob { id, graph: g, truth }
        })
        .collect()
}

fn platform(cfg: &ExpConfig) -> SimulatedPlatform {
    let mut rng: rand::rngs::StdRng = rand::SeedableRng::seed_from_u64(cfg.seed ^ 0x9e37_79b9);
    let pool = WorkerPool::gaussian(cfg.pool_size, cfg.worker_quality, 0.1, &mut rng);
    SimulatedPlatform::new(Market::Amt, pool, cfg.seed)
}

/// Run one method on a prepared graph.
pub fn run_method(method: Method, g: &QueryGraph, truth: &EdgeTruth, cfg: &ExpConfig) -> RunResult {
    let reference: BTreeSet<Vec<NodeId>> =
        true_answers(g, truth).into_iter().map(|c| c.binding).collect();
    let mut p = platform(cfg);
    match method {
        Method::Trans | Method::Acd => {
            let m = if method == Method::Trans { ErMethod::Trans } else { ErMethod::Acd };
            let stats = run_er(g, truth, &mut p, cfg.redundancy, m);
            RunResult {
                tasks: stats.tasks_asked,
                rounds: stats.rounds,
                metrics: precision_recall(&stats.answer_bindings(), &reference),
            }
        }
        Method::CrowdDb | Method::Qurk | Method::Deco | Method::OptTree => {
            let order = match method {
                Method::CrowdDb => crowddb_order(g),
                Method::Qurk => qurk_order(g),
                Method::Deco => deco_order(g),
                Method::OptTree => opt_tree_order(g, truth),
                _ => unreachable!(),
            };
            let stats = run_tree(g, truth, Some(&mut p), cfg.redundancy, &order);
            RunResult {
                tasks: stats.tasks_asked,
                rounds: stats.rounds,
                metrics: precision_recall(&stats.answer_bindings(), &reference),
            }
        }
        Method::MinCut | Method::Cdb | Method::CdbPlus => {
            let exec_cfg = ExecutorConfig {
                redundancy: cfg.redundancy,
                selection: if method == Method::MinCut {
                    SelectionStrategy::MinCutSampling { samples: cfg.mincut_samples }
                } else {
                    SelectionStrategy::Expectation
                },
                quality: if method == Method::CdbPlus {
                    QualityStrategy::EmBayes
                } else {
                    QualityStrategy::MajorityVote
                },
                use_task_assignment: method == Method::CdbPlus,
                parallel_rounds: true,
                budget: None,
                max_rounds: cfg.max_rounds,
                flat_difficulty: cfg.flat_errors,
                seed: cfg.seed,
            };
            let stats = Executor::new(g.clone(), truth, &mut p, exec_cfg).run();
            RunResult {
                tasks: stats.tasks_asked,
                rounds: stats.rounds,
                metrics: precision_recall(&stats.answer_bindings(), &reference),
            }
        }
    }
}

/// Figure 22: run a method under a latency constraint of
/// `cfg.max_rounds` rounds, averaging `reps` seeds. Graph methods use the
/// executor's native constraint; tree and ER methods use their flush
/// variants.
pub fn run_method_constrained(
    method: Method,
    g: &QueryGraph,
    truth: &EdgeTruth,
    cfg: &ExpConfig,
    reps: usize,
) -> RunResult {
    assert!(reps > 0);
    let reference: BTreeSet<Vec<NodeId>> =
        true_answers(g, truth).into_iter().map(|c| c.binding).collect();
    let mut tasks = 0usize;
    let mut rounds = 0usize;
    let mut f = 0.0;
    for r in 0..reps {
        let c = ExpConfig { seed: cfg.seed + r as u64, ..*cfg };
        let mut p = platform(&c);
        let (t, rd, bindings) = match method {
            Method::Trans | Method::Acd => {
                let m = if method == Method::Trans { ErMethod::Trans } else { ErMethod::Acd };
                let stats = cdb_baselines::er::run_er_constrained(
                    g,
                    truth,
                    &mut p,
                    c.redundancy,
                    m,
                    c.max_rounds,
                );
                (stats.tasks_asked, stats.rounds, stats.answer_bindings())
            }
            Method::CrowdDb | Method::Qurk | Method::Deco | Method::OptTree => {
                let order = match method {
                    Method::CrowdDb => crowddb_order(g),
                    Method::Qurk => qurk_order(g),
                    Method::Deco => deco_order(g),
                    Method::OptTree => opt_tree_order(g, truth),
                    _ => unreachable!(),
                };
                let stats = cdb_baselines::tree::run_tree_constrained(
                    g,
                    truth,
                    Some(&mut p),
                    c.redundancy,
                    &order,
                    c.max_rounds,
                );
                (stats.tasks_asked, stats.rounds, stats.answer_bindings())
            }
            _ => {
                let run = run_method(method, g, truth, &c);
                tasks += run.tasks;
                rounds += run.rounds;
                f += run.metrics.f_measure;
                continue;
            }
        };
        tasks += t;
        rounds += rd;
        f += precision_recall(&bindings, &reference).f_measure;
    }
    let n = reps as f64;
    RunResult {
        tasks: tasks / reps,
        rounds: rounds / reps,
        metrics: PrMetrics { precision: f / n, recall: f / n, f_measure: f / n },
    }
}

/// Budget experiments (Figures 18/19): precision/recall of the CDB budget
/// executor (`plus` toggles CDB+ quality control) or the DFS baseline.
pub fn run_budget(
    method_is_baseline: bool,
    plus: bool,
    g: &QueryGraph,
    truth: &EdgeTruth,
    budget: usize,
    cfg: &ExpConfig,
) -> PrMetrics {
    let reference: BTreeSet<Vec<NodeId>> =
        true_answers(g, truth).into_iter().map(|c| c.binding).collect();
    let mut p = platform(cfg);
    if method_is_baseline {
        let stats = budget_baseline(g, truth, &mut p, cfg.redundancy, budget);
        precision_recall(&stats.answers, &reference)
    } else {
        let exec_cfg = ExecutorConfig {
            redundancy: cfg.redundancy,
            budget: Some(budget),
            quality: if plus { QualityStrategy::EmBayes } else { QualityStrategy::MajorityVote },
            use_task_assignment: plus,
            flat_difficulty: cfg.flat_errors,
            seed: cfg.seed,
            ..ExecutorConfig::default()
        };
        let stats = Executor::new(g.clone(), truth, &mut p, exec_cfg).run();
        precision_recall(&stats.answer_bindings(), &reference)
    }
}

/// Average several runs of a method with different seeds.
pub fn run_method_avg(
    method: Method,
    g: &QueryGraph,
    truth: &EdgeTruth,
    cfg: &ExpConfig,
    reps: usize,
) -> RunResult {
    assert!(reps > 0);
    let mut tasks = 0usize;
    let mut rounds = 0usize;
    let mut f = 0.0;
    let mut prec = 0.0;
    let mut rec = 0.0;
    for r in 0..reps {
        let run = run_method(method, g, truth, &ExpConfig { seed: cfg.seed + r as u64, ..*cfg });
        tasks += run.tasks;
        rounds += run.rounds;
        f += run.metrics.f_measure;
        prec += run.metrics.precision;
        rec += run.metrics.recall;
    }
    let n = reps as f64;
    RunResult {
        tasks: tasks / reps,
        rounds: rounds / reps,
        metrics: PrMetrics { precision: prec / n, recall: rec / n, f_measure: f / n },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdb_datagen::{paper_dataset, queries_for, DatasetScale};

    fn tiny() -> Dataset {
        paper_dataset(DatasetScale::paper_full().scaled(40), 7)
    }

    #[test]
    fn all_methods_run_on_2j() {
        let ds = tiny();
        let q = &queries_for("paper")[0];
        let cfg = ExpConfig::default();
        let (g, truth) = prepare(&ds, &q.cql, &cfg);
        for m in Method::all() {
            let r = run_method(m, &g, &truth, &cfg);
            assert!(r.tasks > 0, "{}: no tasks", m.name());
            assert!(r.rounds > 0, "{}: no rounds", m.name());
            assert!((0.0..=1.0).contains(&r.metrics.f_measure));
        }
    }

    #[test]
    fn graph_methods_cost_less_than_tree_methods() {
        let ds = tiny();
        let q = &queries_for("paper")[0];
        let cfg = ExpConfig { worker_quality: 0.95, ..Default::default() };
        let (g, truth) = prepare(&ds, &q.cql, &cfg);
        let cdb = run_method_avg(Method::Cdb, &g, &truth, &cfg, 3);
        let crowddb = run_method_avg(Method::CrowdDb, &g, &truth, &cfg, 3);
        assert!(
            cdb.tasks < crowddb.tasks,
            "CDB {} should beat CrowdDB {}",
            cdb.tasks,
            crowddb.tasks
        );
    }

    #[test]
    fn opt_tree_at_most_written_order() {
        let ds = tiny();
        let q = &queries_for("paper")[1]; // 2J1S
        let cfg = ExpConfig { worker_quality: 1.0, ..Default::default() };
        let (g, truth) = prepare(&ds, &q.cql, &cfg);
        let opt = run_method(Method::OptTree, &g, &truth, &cfg);
        let qurk = run_method(Method::Qurk, &g, &truth, &cfg);
        assert!(opt.tasks <= qurk.tasks, "OptTree {} > Qurk {}", opt.tasks, qurk.tasks);
    }

    #[test]
    fn selfjoin_jobs_have_consistent_clustered_truth() {
        let jobs = selfjoin_jobs(2, 6, 3);
        assert_eq!(jobs.len(), 2);
        for job in &jobs {
            assert_eq!(job.graph.edge_count(), 36);
            // Truth is an equivalence: i ~ j iff i % 3 == j % 3.
            for e in 0..job.graph.edge_count() {
                let e = cdb_core::model::EdgeId(e);
                let (u, v) = job.graph.edge_endpoints(e);
                let same = (u.0 % 6) % 3 == (v.0 % 6) % 3;
                assert_eq!(job.truth.get(&e), Some(&same));
            }
        }
    }

    #[test]
    fn reuse_cuts_selfjoin_dispatch_by_a_fifth_with_identical_answers() {
        // The ISSUE acceptance bar: on the self-join workload,
        // cache+entailment reduces dispatched crowd tasks by >= 20% vs
        // cache-off, with identical query answers.
        use cdb_core::ReuseCache;
        use cdb_runtime::{RuntimeConfig, RuntimeExecutor};
        use std::sync::Arc;

        let two_passes = |cache: Option<Arc<ReuseCache>>| {
            let cfg = RuntimeConfig {
                threads: 4,
                seed: 7,
                worker_accuracies: vec![1.0; 20],
                reuse: cache,
                ..RuntimeConfig::default()
            };
            let exec = RuntimeExecutor::new(cfg);
            let a = exec.run(selfjoin_jobs(4, 8, 3));
            let b = exec.run(selfjoin_jobs(4, 8, 3));
            (
                a.metrics.tasks_dispatched + b.metrics.tasks_dispatched,
                format!("{}{}", a.bindings_text(), b.bindings_text()),
            )
        };
        let (off, off_answers) = two_passes(None);
        let (on, on_answers) = two_passes(Some(Arc::new(ReuseCache::new())));
        assert_eq!(on_answers, off_answers);
        assert!(
            (on as f64) <= 0.8 * off as f64,
            "expected >= 20% fewer dispatched tasks: {off} -> {on}"
        );
    }

    #[test]
    fn budget_recall_grows_with_budget() {
        let ds = tiny();
        let q = &queries_for("paper")[0];
        let cfg = ExpConfig { worker_quality: 0.95, ..Default::default() };
        let (g, truth) = prepare(&ds, &q.cql, &cfg);
        let small = run_budget(false, false, &g, &truth, 10, &cfg);
        let large = run_budget(false, false, &g, &truth, 400, &cfg);
        assert!(large.recall >= small.recall);
    }

    #[test]
    fn cdb_budget_beats_baseline_on_recall() {
        let ds = tiny();
        let q = &queries_for("paper")[0];
        let cfg = ExpConfig { worker_quality: 0.95, ..Default::default() };
        let (g, truth) = prepare(&ds, &q.cql, &cfg);
        let budget = 30;
        let mut cdb_rec = 0.0;
        let mut base_rec = 0.0;
        for s in 0..3 {
            let c = ExpConfig { seed: s, ..cfg };
            cdb_rec += run_budget(false, false, &g, &truth, budget, &c).recall;
            base_rec += run_budget(true, false, &g, &truth, budget, &c).recall;
        }
        assert!(cdb_rec >= base_rec, "CDB recall {cdb_rec} should be at least baseline {base_rec}");
    }
}
