//! `cdb-bench` — benchmark artifact tooling.
//!
//! ```text
//! cdb-bench compare [--timing warn|fail] [--accept-structural <phase-prefix>]...
//!                   <baseline.json> <new.json>
//! ```
//!
//! Diffs two benchmark artifacts (e.g. the committed `BENCH_perf.json`
//! against a fresh `figures perf` run) with noise-aware thresholds; see
//! `cdb_bench::compare` for the classification rules. Exit status: 0 on
//! match, 1 on a timing regression (unless `--timing warn`), 2 on
//! structural or deterministic-count drift (or bad usage / unreadable
//! input). `--accept-structural` (repeatable) downgrades structural
//! drift attributed to profile phases with the given name prefix to
//! warnings — the escape hatch for PRs that legitimately change phase
//! structure; see CONTRIBUTING.md for the baseline-regeneration
//! workflow.

use cdb_bench::compare::{compare, gate, structural_accepted, DiffKind};

fn usage() -> ! {
    eprintln!(
        "usage: cdb-bench compare [--timing warn|fail] \
         [--accept-structural <phase-prefix>]... <baseline.json> <new.json>"
    );
    std::process::exit(2);
}

fn main() {
    let mut args = std::env::args().skip(1);
    match args.next().as_deref() {
        Some("compare") => {}
        _ => usage(),
    }
    let mut timing_warn_only = false;
    let mut accept_structural: Vec<String> = Vec::new();
    let mut files: Vec<String> = Vec::new();
    while let Some(a) = args.next() {
        match a.as_str() {
            "--timing" => match args.next().as_deref() {
                Some("warn") => timing_warn_only = true,
                Some("fail") => timing_warn_only = false,
                _ => usage(),
            },
            "--accept-structural" => match args.next() {
                Some(prefix) if !prefix.is_empty() && !prefix.starts_with('-') => {
                    accept_structural.push(prefix)
                }
                _ => usage(),
            },
            other => files.push(other.to_string()),
        }
    }
    let [baseline_path, new_path] = files.as_slice() else { usage() };

    let load = |path: &str| -> cdb_obsv::json::Json {
        let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("cdb-bench: cannot read {path}: {e}");
            std::process::exit(2);
        });
        cdb_obsv::json::parse(&text).unwrap_or_else(|e| {
            eprintln!("cdb-bench: {path} is not valid JSON: {e}");
            std::process::exit(2);
        })
    };
    let baseline = load(baseline_path);
    let new = load(new_path);

    let diffs = compare(&baseline, &new);
    for d in &diffs {
        let kind = match d.kind {
            DiffKind::Structural => {
                if structural_accepted(d, &accept_structural) {
                    "STRUCTURAL (accepted)"
                } else {
                    "STRUCTURAL"
                }
            }
            DiffKind::Timing => {
                if timing_warn_only {
                    "TIMING (warn)"
                } else {
                    "TIMING"
                }
            }
        };
        eprintln!("{kind:>21}  {}: {}", d.path, d.message);
    }
    let code = gate(&diffs, timing_warn_only, &accept_structural);
    if diffs.is_empty() {
        eprintln!("cdb-bench: artifacts match ({baseline_path} vs {new_path})");
    } else {
        eprintln!(
            "cdb-bench: {} difference(s), exit {code} ({} structural, {} timing)",
            diffs.len(),
            diffs.iter().filter(|d| d.kind == DiffKind::Structural).count(),
            diffs.iter().filter(|d| d.kind == DiffKind::Timing).count()
        );
    }
    std::process::exit(code);
}
