//! Regenerate every table and figure of the CDB paper's evaluation
//! (Section 6 + Appendix D) as plain-text series.
//!
//! ```text
//! figures [--scale N] [--reps R] [--seed S] [--iters N] <target>
//!
//! targets: fig8 fig9 fig10 fig11 fig14 fig15 fig16 fig17 fig18 fig19
//!          fig20 fig21 fig22 fig23 fig24 table2 table3 table4 table5
//!          example runtime reuse sched trace sim store perf shard serve
//!          all
//!
//! `reuse` sweeps the cross-query answer-reuse cache (on/off × fault
//! rate) over the self-join fleet and checks the dispatched-task
//! reduction and answer equality.
//!
//! `sched` sweeps 1/2/4/8 concurrent queries through the multi-query
//! scheduler (`cdb-sched`) with shared-HIT batching on and off, and
//! checks byte-identical bindings plus the ≥15% HIT reduction at 8
//! concurrent queries.
//!
//! `trace` runs one crowd-join query under the concurrent runtime with
//! tracing on and prints Chrome `trace_event` JSON on stdout — pipe it to
//! a file and load it at <https://ui.perfetto.dev> (or `about:tracing`).
//! The per-query cost/latency/quality attribution rollup goes to stderr.
//!
//! `store` benchmarks the durable storage layer (`cdb-store`): answer-log
//! append throughput (every settle is two fsyncs), recovery time vs log
//! size, the reuse-hit rate cold vs warm across a process restart, and a
//! durable-table flush/reopen round trip. Human-readable progress goes to
//! stderr; stdout is a JSON document (redirect it to `BENCH_store.json`).
//!
//! `perf` runs the phase-profiled hot-path sweep over every Table 5
//! workload (all three datasets × all five plan shapes) plus a MinCut
//! and a durable-store exercise, and prints the `BENCH_perf.json`
//! artifact on stdout (per-phase medians + latency histograms; see
//! `cdb-bench compare` for the CI regression gate). `--quick` runs one
//! rep instead of `--reps`, keeping counts and structure identical.
//!
//! `sim` soaks the deterministic simulation harness (`cdb-sim`) over
//! `--iters` consecutive seeds starting at `--seed`: each seed generates
//! a randomized workload + environment, runs it on the real runtime and
//! on the sequential reference oracle, and checks every differential
//! invariant. On failure the seed is printed, the scenario is shrunk,
//! and the repro text is dumped; exit status is nonzero.
//!
//! `serve` drives a live `cdb-serve` instance over loopback sockets with
//! the `cdb_serve` load generator: a 1.4k-query concurrency phase (≥ 1000
//! peak in-flight queries, gated) and an unthrottled throughput phase,
//! with every NDJSON stream checked against the in-process oracle.
//! Stderr narrates; stdout is a JSON document (redirect it to
//! `BENCH_serve.json`).
//! ```
//!
//! Every run also tees its own stdout + stderr to
//! `target/figures/<target>.log` (artifact redirections like
//! `figures store > BENCH_store.json` still capture clean JSON — the
//! tee is byte-exact on stdout).
//!
//! `--scale N` divides the paper's table cardinalities by `N` (default 10)
//! so a full sweep finishes in minutes; `--reps R` averages `R` seeded
//! repetitions (the paper uses 1000; default 3). Absolute numbers shift
//! with scale, but the *shape* — which method wins and by what factor —
//! is what EXPERIMENTS.md tracks.

use std::time::Instant;

use cdb_bench::{prepare, run_budget, run_method_avg, ExpConfig, Method};
use cdb_core::cost::expectation::expectation_order;
use cdb_core::executor::{Executor, ExecutorConfig, QualityStrategy};
use cdb_core::fillcollect::{execute_collect, execute_fill, CollectConfig, FillConfig};
use cdb_core::latency::parallel_round;
use cdb_crowd::{Market, SimulatedPlatform, WorkerPool};
use cdb_datagen::{
    award_dataset, movie_dataset, paper_dataset, paper_example_dataset, queries_for, Dataset,
    DatasetScale,
};
use cdb_similarity::SimilarityFn;

struct Args {
    scale: usize,
    reps: usize,
    seed: u64,
    iters: usize,
    quick: bool,
    target: String,
}

fn parse_args() -> Args {
    let mut args =
        Args { scale: 10, reps: 3, seed: 42, iters: 100, quick: false, target: String::new() };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--scale" => args.scale = it.next().and_then(|v| v.parse().ok()).expect("--scale N"),
            "--reps" => args.reps = it.next().and_then(|v| v.parse().ok()).expect("--reps R"),
            "--seed" => args.seed = it.next().and_then(|v| v.parse().ok()).expect("--seed S"),
            "--iters" => args.iters = it.next().and_then(|v| v.parse().ok()).expect("--iters N"),
            "--quick" => args.quick = true,
            other => args.target = other.to_string(),
        }
    }
    if args.target.is_empty() {
        eprintln!("usage: figures [--scale N] [--reps R] [--seed S] [--iters N] [--quick] <fig8..fig24|table2..table5|example|runtime|reuse|sched|trace|sim|store|perf|shard|serve|all>");
        std::process::exit(2);
    }
    args
}

fn dataset(name: &str, args: &Args) -> Dataset {
    match name {
        "paper" => paper_dataset(DatasetScale::paper_full().scaled(args.scale), args.seed),
        "award" => award_dataset(DatasetScale::award_full().scaled(args.scale), args.seed),
        "movie" => movie_dataset(DatasetScale::movie_full().scaled(args.scale), args.seed),
        _ => unreachable!(),
    }
}

/// Figures 8/9/10 and 14/15/16: the 9 methods × 5 queries grid. `metric`
/// selects the column family; `worker_quality` distinguishes the simulated
/// (0.8) from the "real AMT" (0.95) experiments.
fn grid(args: &Args, metric: &str, worker_quality: f64, header: &str) {
    println!("# {header}");
    for ds_name in ["paper", "award"] {
        let ds = dataset(ds_name, args);
        println!("## dataset: {ds_name}");
        print!("{:<8}", "query");
        for m in Method::all() {
            print!("{:>9}", m.name());
        }
        println!();
        for q in queries_for(ds_name) {
            let cfg = ExpConfig { worker_quality, seed: args.seed, ..Default::default() };
            let (g, truth) = prepare(&ds, &q.cql, &cfg);
            print!("{:<8}", q.label);
            for m in Method::all() {
                let r = run_method_avg(m, &g, &truth, &cfg, args.reps);
                match metric {
                    "cost" => print!("{:>9}", r.tasks),
                    "quality" => print!("{:>9.3}", r.metrics.f_measure),
                    "latency" => print!("{:>9}", r.rounds),
                    _ => unreachable!(),
                }
            }
            println!();
        }
    }
    println!();
}

/// Figure 11: vary worker quality q ∈ {0.7, 0.8, 0.9}.
fn fig11(args: &Args) {
    println!("# Figure 11: varying worker quality (paper dataset, avg over 5 queries)");
    let ds = dataset("paper", args);
    for &metric in &["cost", "quality", "latency"] {
        println!("## {metric}");
        print!("{:<8}", "q");
        for m in Method::all() {
            print!("{:>9}", m.name());
        }
        println!();
        for &q_w in &[0.7, 0.8, 0.9] {
            let cfg = ExpConfig { worker_quality: q_w, seed: args.seed, ..Default::default() };
            print!("{:<8}", q_w);
            for m in Method::all() {
                let mut tasks = 0usize;
                let mut rounds = 0usize;
                let mut f = 0.0;
                let queries = queries_for("paper");
                for q in &queries {
                    let (g, truth) = prepare(&ds, &q.cql, &cfg);
                    let r = run_method_avg(m, &g, &truth, &cfg, args.reps);
                    tasks += r.tasks;
                    rounds += r.rounds;
                    f += r.metrics.f_measure;
                }
                let n = queries.len();
                match metric {
                    "cost" => print!("{:>9}", tasks / n),
                    "quality" => print!("{:>9.3}", f / n as f64),
                    "latency" => print!("{:>9}", rounds / n),
                    _ => unreachable!(),
                }
            }
            println!();
        }
    }
    println!();
}

/// Figure 17: COLLECT and FILL vs the no-duplicate-control baseline.
fn fig17(args: &Args) {
    println!("# Figure 17(a): COLLECT — #questions to reach #distinct (CDB vs Deco)");
    let ds = dataset("paper", args);
    let universe = &ds.universe;
    let mut rng: rand::rngs::StdRng = rand::SeedableRng::seed_from_u64(args.seed);
    println!("{:<10}{:>10}{:>10}", "#results", "CDB", "Deco");
    for &target in &[20usize, 40, 60, 80, 100] {
        let target = target.min(universe.len().saturating_sub(5));
        let cdb = execute_collect(
            universe,
            &mut rng,
            &CollectConfig { target, ..CollectConfig::default() },
        );
        let deco = execute_collect(
            universe,
            &mut rng,
            &CollectConfig { target, autocomplete: false, ..CollectConfig::default() },
        );
        println!("{:<10}{:>10}{:>10}", target, cdb.questions, deco.questions);
    }

    println!("\n# Figure 17(b): FILL — #questions for N slots (CDB early-stop vs Deco)");
    println!("{:<10}{:>10}{:>10}", "#results", "CDB", "Deco");
    for &n in &[20usize, 40, 60, 80, 100] {
        let truths: Vec<String> = ds.universe.iter().cycle().take(n).cloned().collect();
        let mut p1 = fill_platform(args.seed);
        let cdb = execute_fill(&truths, &mut p1, &FillConfig::default());
        let mut p2 = fill_platform(args.seed);
        let deco = execute_fill(
            &truths,
            &mut p2,
            &FillConfig { early_stop: false, ..FillConfig::default() },
        );
        println!("{:<10}{:>10}{:>10}", n, cdb.questions, deco.questions);
    }
    println!();
}

fn fill_platform(seed: u64) -> SimulatedPlatform {
    let mut rng: rand::rngs::StdRng = rand::SeedableRng::seed_from_u64(seed);
    let pool = WorkerPool::gaussian(50, 0.95, 0.05, &mut rng);
    SimulatedPlatform::new(Market::Amt, pool, seed)
}

/// Figures 18/19: recall and precision vs budget.
fn fig18_19(args: &Args) {
    for (fig, metric) in [("18", "recall"), ("19", "precision")] {
        println!("# Figure {fig}: {metric} vs budget (paper dataset, query 2J)");
        let ds = dataset("paper", args);
        let q = &queries_for("paper")[0];
        let cfg = ExpConfig { worker_quality: 0.95, seed: args.seed, ..Default::default() };
        let (g, truth) = prepare(&ds, &q.cql, &cfg);
        let total_edges = g.open_edges().len().max(1);
        println!("{:<10}{:>10}{:>10}{:>10}", "budget", "Baseline", "CDB", "CDB+");
        for frac in [1usize, 2, 4, 8, 16, 32] {
            let budget = (total_edges * frac / 32).max(1);
            let mut vals = [0.0f64; 3];
            for r in 0..args.reps {
                let c = ExpConfig { seed: args.seed + r as u64, ..cfg };
                let runs = [
                    run_budget(true, false, &g, &truth, budget, &c),
                    run_budget(false, false, &g, &truth, budget, &c),
                    run_budget(false, true, &g, &truth, budget, &c),
                ];
                for (v, m) in vals.iter_mut().zip(runs) {
                    *v += if metric == "recall" { m.recall } else { m.precision };
                }
            }
            println!(
                "{:<10}{:>10.3}{:>10.3}{:>10.3}",
                budget,
                vals[0] / args.reps as f64,
                vals[1] / args.reps as f64,
                vals[2] / args.reps as f64
            );
        }
        println!();
    }
}

/// Figure 20: quality vs redundancy (query 3J2S), CDB+ vs majority voting.
fn fig20(args: &Args) {
    println!("# Figure 20: F-measure vs redundancy (paper dataset, 2J1S)");
    // The paper uses 3J2S; at 1/20 scale that query has too few answers
    // for stable F-measure, so the redundancy sweep uses the structurally
    // identical but answer-richer 2J1S.
    let ds = dataset("paper", args);
    let q = &queries_for("paper")[1];
    let reps = args.reps * 3; // quality sweeps need more repetitions
    println!("{:<12}{:>10}{:>10}", "redundancy", "MV", "CDB+");
    for &k in &[1usize, 3, 5, 7] {
        // The flat error model isolates the paper's quality-control claim
        // (under the difficulty-aware model, MV is already near-ceiling on
        // easy tasks and the margin compresses — see EXPERIMENTS.md).
        let cfg = ExpConfig {
            worker_quality: 0.7,
            redundancy: k,
            flat_errors: true,
            seed: args.seed,
            ..Default::default()
        };
        let (g, truth) = prepare(&ds, &q.cql, &cfg);
        let mv = run_method_avg(Method::Cdb, &g, &truth, &cfg, reps);
        let plus = run_method_avg(Method::CdbPlus, &g, &truth, &cfg, reps);
        println!("{:<12}{:>10.3}{:>10.3}", k, mv.metrics.f_measure, plus.metrics.f_measure);
    }
    println!();
}

/// Figure 21: quality vs cost budget (3J2S), CDB+ vs majority voting.
fn fig21(args: &Args) {
    println!("# Figure 21: F-measure vs #questions (paper dataset, 2J1S, redundancy 5)");
    let ds = dataset("paper", args);
    let q = &queries_for("paper")[1];
    let cfg =
        ExpConfig { worker_quality: 0.7, flat_errors: true, seed: args.seed, ..Default::default() };
    let (g, truth) = prepare(&ds, &q.cql, &cfg);
    let total_edges = g.open_edges().len().max(1);
    println!("{:<10}{:>10}{:>10}", "budget", "MV", "CDB+");
    for frac in [2usize, 4, 8, 16, 32] {
        let budget = (total_edges * frac / 32).max(1);
        let mut mv = 0.0;
        let mut plus = 0.0;
        for r in 0..args.reps {
            let c = ExpConfig { seed: args.seed + r as u64, ..cfg };
            mv += run_budget(false, false, &g, &truth, budget, &c).f_measure;
            plus += run_budget(false, true, &g, &truth, budget, &c).f_measure;
        }
        println!("{:<10}{:>10.3}{:>10.3}", budget, mv / args.reps as f64, plus / args.reps as f64);
    }
    println!();
}

/// Figure 22: cost vs latency constraint (rounds), all nine methods.
fn fig22(args: &Args) {
    println!("# Figure 22: cost (#tasks) vs latency constraint r (paper dataset, 3J)");
    let ds = dataset("paper", args);
    let q = &queries_for("paper")[2];
    print!("{:<8}", "r");
    for m in Method::all() {
        print!("{:>9}", m.name());
    }
    println!();
    for r in 1usize..=6 {
        let cfg = ExpConfig {
            worker_quality: 0.9,
            max_rounds: Some(r),
            seed: args.seed,
            ..Default::default()
        };
        let (g, truth) = prepare(&ds, &q.cql, &cfg);
        print!("{:<8}", r);
        for m in Method::all() {
            let res = cdb_bench::run_method_constrained(m, &g, &truth, &cfg, args.reps);
            print!("{:>9}", res.tasks);
        }
        println!();
    }
    println!();
}

/// Figures 23/24: similarity-function ablation.
fn fig23_24(args: &Args) {
    println!("# Figures 23/24: similarity functions (expectation-based selection)");
    let fns: [(&str, SimilarityFn); 4] = [
        ("NoSim", SimilarityFn::NoSim),
        ("ED", SimilarityFn::EditDistance),
        ("JAC", SimilarityFn::TokenJaccard),
        ("CDB", SimilarityFn::QGramJaccard { q: 2 }),
    ];
    for ds_name in ["paper", "award"] {
        let ds = dataset(ds_name, args);
        println!("## dataset: {ds_name}");
        println!("{:<8}{:>10}{:>10}{:>12}{:>12}", "query", "", "", "#tasks", "F-measure");
        for q in queries_for(ds_name) {
            for (name, f) in fns {
                // NoSim keeps every pair (probability 0.5 everywhere):
                // on the larger award dataset that is an all-pairs graph
                // whose executor run is computationally degenerate. The
                // paper-dataset rows already show NoSim's blow-up, so the
                // award sweep skips it.
                if name == "NoSim" && ds_name == "award" {
                    println!("{:<8}{:>10}{:>10}{:>12}{:>12}", q.label, name, "", "skipped", "-");
                    continue;
                }
                let cfg = ExpConfig {
                    worker_quality: 0.8,
                    similarity: f,
                    seed: args.seed,
                    ..Default::default()
                };
                let (g, truth) = prepare(&ds, &q.cql, &cfg);
                let r = run_method_avg(Method::Cdb, &g, &truth, &cfg, args.reps);
                println!(
                    "{:<8}{:>10}{:>10}{:>12}{:>12.3}",
                    q.label, name, "", r.tasks, r.metrics.f_measure
                );
            }
        }
    }
    println!();
}

/// Tables 2/3: dataset statistics.
fn tables23(args: &Args) {
    for (name, label) in [("paper", "Table 2"), ("award", "Table 3")] {
        let ds = dataset(name, args);
        println!("# {label}: {name} dataset (scale 1/{})", args.scale);
        println!("{:<14}{:>10}  attributes", "table", "#records");
        for t in ds.db.tables() {
            let cols: Vec<&str> = t.schema().columns().iter().map(|c| c.name.as_str()).collect();
            println!("{:<14}{:>10}  {}", t.name(), t.row_count(), cols.join(", "));
        }
        println!("true join pairs: {}", ds.truth.joins.len());
        println!();
    }
}

/// Table 4: the representative queries.
fn table4() {
    println!("# Table 4: the 5 representative queries");
    for ds in ["paper", "award"] {
        println!("## {ds}");
        for q in queries_for(ds) {
            println!("[{}] {}", q.label, q.cql);
        }
    }
    println!();
}

/// Table 5: task-selection efficiency in milliseconds.
fn table5(args: &Args) {
    println!("# Table 5: efficiency of task selection (milliseconds)");
    println!("{:<10}{:>8}{:>8}{:>8}{:>8}{:>8}", "dataset", "2J", "2J1S", "3J", "3J1S", "3J2S");
    for ds_name in ["paper", "award"] {
        let ds = dataset(ds_name, args);
        print!("{:<10}", ds_name);
        for q in queries_for(ds_name) {
            let cfg = ExpConfig { seed: args.seed, ..Default::default() };
            let (g, _) = prepare(&ds, &q.cql, &cfg);
            let start = Instant::now();
            let order = expectation_order(&g);
            let _round = parallel_round(&g, &order);
            let ms = start.elapsed().as_secs_f64() * 1e3;
            print!("{:>8.2}", ms);
        }
        println!();
    }
    println!();
}

/// The Figure 1 / Section 5 walkthrough on the Table 1 running example.
fn example(args: &Args) {
    println!("# Running example (Table 1 / Figure 4): tuple-level vs tree model");
    let (db, truth) = paper_example_dataset();
    let sql = "SELECT * FROM Paper, Researcher, Citation, University \
               WHERE Paper.author CROWDJOIN Researcher.name AND \
               Paper.title CROWDJOIN Citation.title AND \
               Researcher.affiliation CROWDJOIN University.name";
    let cdb = cdb_core::Cdb::with_database(db);
    let g =
        cdb.plan_select(sql, &cdb_core::GraphBuildConfig::default()).expect("example query plans");
    let et = truth.edge_truth(&g);
    println!("graph: {} vertices, {} edges", g.node_count(), g.edge_count());
    let mut p = fill_platform(args.seed);
    let stats = Executor::new(
        g.clone(),
        &et,
        &mut p,
        ExecutorConfig { quality: QualityStrategy::MajorityVote, ..Default::default() },
    )
    .run();
    println!(
        "CDB (graph model): {} tasks, {} rounds, {} answers",
        stats.tasks_asked,
        stats.rounds,
        stats.answers.len()
    );
    let order = cdb_baselines::opt_tree_order(&g, &et);
    let tree = cdb_baselines::run_tree(&g, &et, None, 1, &order);
    println!("OptTree (tree model, oracle): {} tasks", tree.tasks_asked);
    println!();
}

/// Design-choice ablations called out in DESIGN.md: sample count for
/// MinCut, threshold ε, selection strategy, latency policy.
fn ablations(args: &Args) {
    use cdb_core::executor::{Executor, ExecutorConfig, SelectionStrategy};

    let ds = dataset("paper", args);
    let q = &queries_for("paper")[2]; // 3J

    println!("# Ablation: MinCut sample count (3J, cost)");
    println!("{:<10}{:>10}", "samples", "#tasks");
    for &samples in &[5usize, 20, 50, 100] {
        let cfg = ExpConfig { mincut_samples: samples, seed: args.seed, ..Default::default() };
        let (g, truth) = prepare(&ds, &q.cql, &cfg);
        let r = run_method_avg(Method::MinCut, &g, &truth, &cfg, args.reps);
        println!("{:<10}{:>10}", samples, r.tasks);
    }

    println!("\n# Ablation: edge threshold ε (3J, cost & F)");
    println!("{:<10}{:>10}{:>10}{:>10}", "epsilon", "#edges", "#tasks", "F");
    for &eps in &[0.2f64, 0.3, 0.4, 0.5] {
        let cfg = ExpConfig { epsilon: eps, seed: args.seed, ..Default::default() };
        let (g, truth) = prepare(&ds, &q.cql, &cfg);
        let r = run_method_avg(Method::Cdb, &g, &truth, &cfg, args.reps);
        println!("{:<10}{:>10}{:>10}{:>10.3}", eps, g.edge_count(), r.tasks, r.metrics.f_measure);
    }

    println!("\n# Ablation: selection strategy (3J, cost)");
    let cfg = ExpConfig { seed: args.seed, ..Default::default() };
    let (g, truth) = prepare(&ds, &q.cql, &cfg);
    for (name, sel) in [
        ("expectation", SelectionStrategy::Expectation),
        ("mincut-30", SelectionStrategy::MinCutSampling { samples: 30 }),
        ("weight-desc", SelectionStrategy::WeightDescending),
        ("unordered", SelectionStrategy::Unordered),
    ] {
        let mut tasks = 0usize;
        for rep in 0..args.reps {
            let mut p = fill_platform(args.seed + rep as u64);
            let stats = Executor::new(
                g.clone(),
                &truth,
                &mut p,
                ExecutorConfig {
                    selection: sel,
                    seed: args.seed + rep as u64,
                    ..Default::default()
                },
            )
            .run();
            tasks += stats.tasks_asked;
        }
        println!("{:<14}{:>10}", name, tasks / args.reps);
    }

    println!("\n# Ablation: latency policy (3J): greedy rounds vs literal prefix vs serial");
    for (name, parallel) in [("greedy", true), ("serial", false)] {
        let mut p = fill_platform(args.seed);
        let stats = Executor::new(
            g.clone(),
            &truth,
            &mut p,
            ExecutorConfig { parallel_rounds: parallel, seed: args.seed, ..Default::default() },
        )
        .run();
        println!("{:<10}{:>8} tasks{:>8} rounds", name, stats.tasks_asked, stats.rounds);
    }
    println!();
}

/// Runtime: a concurrent fleet of queries through the work-stealing
/// scheduler, sweeping thread count × fault rate, plus the full
/// `RuntimeMetrics` telemetry of one representative faulted run as JSON.
fn runtime(args: &Args) {
    use cdb_bench::runtime_fleet;
    use cdb_runtime::{FaultPlan, RetryPolicy, RuntimeConfig, RuntimeExecutor};

    let n = 24u64;
    println!("# Runtime: {n} concurrent queries (paper dataset, query 1J)");
    let ds = dataset("paper", args);
    let q = &queries_for("paper")[0];
    let cfg = ExpConfig { worker_quality: 0.9, seed: args.seed, ..Default::default() };
    let jobs = runtime_fleet(&ds, &q.cql, &cfg, n);

    let run = |threads: usize, fault_rate: f64| {
        let rcfg = RuntimeConfig {
            threads,
            seed: args.seed,
            fault_plan: FaultPlan::uniform(args.seed, fault_rate),
            retry: RetryPolicy { deadline_ms: 300_000, max_retries: 8 },
            ..RuntimeConfig::default()
        };
        RuntimeExecutor::new(rcfg).run(jobs.clone())
    };

    println!(
        "{:<9}{:<8}{:>9}{:>11}{:>13}{:>13}{:>9}{:>8}",
        "threads", "faults", "ok", "q_per_s", "wall_ms", "virtual_s", "rounds", "steals"
    );
    for &threads in &[1usize, 2, 4, 8] {
        for &fault_rate in &[0.0f64, 0.1, 0.3] {
            let report = run(threads, fault_rate);
            let wall = report.wall.as_secs_f64();
            println!(
                "{:<9}{:<8}{:>9}{:>11.1}{:>13.1}{:>13.1}{:>9}{:>8}",
                threads,
                fault_rate,
                report.ok_count(),
                n as f64 / wall.max(1e-9),
                wall * 1e3,
                report.virtual_ms_serial() as f64 / 1e3,
                report.metrics.rounds,
                report.steals,
            );
        }
    }

    let report = run(4, 0.2);
    println!("\n# RuntimeMetrics (threads=4, fault rate 0.2), JSON");
    println!("{}", report.metrics.to_json());
    println!();
}

/// `figures reuse`: the answer-reuse sweep — cache on/off × fault rate
/// over the self-join fleet, two passes per cell (the second pass is where
/// cross-query reuse pays: the cache absorbed pass one's answers).
fn reuse(args: &Args) {
    use cdb_bench::selfjoin_jobs;
    use cdb_core::ReuseCache;
    use cdb_runtime::{FaultPlan, RetryPolicy, RuntimeConfig, RuntimeExecutor};
    use std::sync::Arc;

    let queries = 6u64;
    let items = (80 / args.scale.max(1)).clamp(4, 24);
    println!("# Answer reuse: {queries} self-join queries x 2 passes ({items} items, 3 clusters)");
    println!(
        "{:<8}{:<8}{:>12}{:>12}{:>9}{:>12}{:>11}{:>10}",
        "cache", "faults", "dispatched", "saved", "red_%", "saved_\u{a2}", "depth_sum", "same_ans"
    );
    for &fault_rate in &[0.0f64, 0.1, 0.3] {
        let run_passes = |cache: Option<Arc<ReuseCache>>| {
            let rcfg = RuntimeConfig {
                threads: 4,
                seed: args.seed,
                worker_accuracies: vec![1.0; 20],
                fault_plan: FaultPlan::uniform(args.seed, fault_rate),
                retry: RetryPolicy { deadline_ms: 300_000, max_retries: 8 },
                reuse: cache,
                ..RuntimeConfig::default()
            };
            let exec = RuntimeExecutor::new(rcfg);
            let first = exec.run(selfjoin_jobs(queries, items, 3));
            let second = exec.run(selfjoin_jobs(queries, items, 3));
            let dispatched = first.metrics.tasks_dispatched + second.metrics.tasks_dispatched;
            let saved = first.metrics.tasks_saved + second.metrics.tasks_saved;
            let cents = first.metrics.money_saved_cents + second.metrics.money_saved_cents;
            let depth = first.metrics.entailment_depth_sum + second.metrics.entailment_depth_sum;
            let bindings = format!("{}{}", first.bindings_text(), second.bindings_text());
            (dispatched, saved, cents, depth, bindings)
        };
        let off = run_passes(None);
        let on = run_passes(Some(Arc::new(ReuseCache::new())));
        let reduction = 100.0 * (off.0 as f64 - on.0 as f64) / off.0.max(1) as f64;
        for (label, r) in [("off", &off), ("on", &on)] {
            println!(
                "{:<8}{:<8}{:>12}{:>12}{:>9.1}{:>12}{:>11}{:>10}",
                label,
                fault_rate,
                r.0,
                r.1,
                if label == "on" { reduction } else { 0.0 },
                r.2,
                r.3,
                if r.4 == off.4 { "yes" } else { "NO" },
            );
        }
        assert!(
            reduction >= 20.0,
            "reuse must cut dispatched tasks by >= 20% (got {reduction:.1}%)"
        );
        assert_eq!(on.4, off.4, "reuse must not change query answers");
    }
    println!();
}

/// `figures sched`: the multi-query scheduling sweep — 1/2/4/8 concurrent
/// self-join queries, shared-HIT batching on vs off. Checks the scheduler's
/// two contracts: per-query bindings are byte-identical either way (and
/// identical to a plain runtime run), and at 8 concurrent queries shared
/// packing publishes ≥ 15% fewer HITs than per-query billing.
fn sched(args: &Args) {
    use cdb_bench::selfjoin_jobs;
    use cdb_runtime::{RuntimeConfig, RuntimeExecutor};
    use cdb_sched::{DrrConfig, SchedConfig, SchedJob, Scheduler};

    let items = (80 / args.scale.max(1)).clamp(4, 24);
    // A quantum below `tasks_per_hit` maximizes the per-query partial-HIT
    // waste that cross-query packing recovers.
    let quantum = 5;
    println!("# Multi-query scheduling: {items}-item self-joins, DRR quantum {quantum}, shared-HIT batching on/off");
    println!(
        "{:<9}{:>7}{:>11}{:>8}{:>12}{:>8}{:>10}",
        "queries", "rounds", "solo_hits", "hits", "platform_\u{a2}", "red_%", "same_ans"
    );
    for &n in &[1u64, 2, 4, 8] {
        let rcfg = || RuntimeConfig {
            threads: 4,
            seed: args.seed,
            worker_accuracies: vec![1.0; 20],
            ..RuntimeConfig::default()
        };
        let run = |batching: bool| {
            let cfg = SchedConfig {
                runtime: rcfg(),
                drr: DrrConfig { quantum, capacity: None },
                batching,
                ..SchedConfig::default()
            };
            let subs = selfjoin_jobs(n, items, 3).into_iter().map(SchedJob::unconstrained);
            Scheduler::new(cfg).run(subs.collect())
        };
        let on = run(true);
        let off = run(false);
        let plain = RuntimeExecutor::new(rcfg()).run(selfjoin_jobs(n, items, 3)).bindings_text();
        let same = on.bindings_text() == off.bindings_text() && on.bindings_text() == plain;
        let reduction = 100.0 * on.hit_reduction();
        println!(
            "{:<9}{:>7}{:>11}{:>8}{:>12}{:>8.1}{:>10}",
            n,
            on.rounds.len(),
            on.solo_hits,
            on.total_hits,
            on.platform_cents,
            reduction,
            if same { "yes" } else { "NO" },
        );
        assert!(same, "batching and scheduling must never change query answers");
        let sum: u64 = on.attributed_cents.values().sum();
        assert_eq!(sum, on.platform_cents, "attributed cents must conserve platform spend");
        if n == 8 {
            assert!(
                reduction >= 15.0,
                "shared-HIT batching must cut HITs by >= 15% at 8 concurrent queries (got {reduction:.1}%)"
            );
        }
    }
    println!();
}

/// `figures trace`: one crowd-join query through the concurrent runtime
/// with tracing on. Chrome `trace_event` JSON goes to stdout (load it in
/// Perfetto); the attribution rollup and conservation totals to stderr.
fn trace(args: &Args) {
    use cdb_bench::runtime_fleet;
    use cdb_obsv::{chrome_trace, Attribution, Ring, Trace};
    use cdb_runtime::{FaultPlan, RetryPolicy, RuntimeConfig, RuntimeExecutor};
    use std::sync::Arc;

    let ds = dataset("paper", args);
    let q = &queries_for("paper")[0]; // 2J: the crowd join
    let cfg = ExpConfig { worker_quality: 0.9, seed: args.seed, ..Default::default() };
    let jobs = runtime_fleet(&ds, &q.cql, &cfg, 1);

    let ring = Arc::new(Ring::with_capacity(1 << 16));
    let rcfg = RuntimeConfig {
        threads: 1,
        seed: args.seed,
        fault_plan: FaultPlan::uniform(args.seed, 0.1),
        retry: RetryPolicy { deadline_ms: 300_000, max_retries: 8 },
        trace: Trace::collector(ring.clone()),
        ..RuntimeConfig::default()
    };
    let report = RuntimeExecutor::new(rcfg).run(jobs);
    let events = ring.drain();

    let attribution = Attribution::from_events(&events);
    eprintln!("# query: [{}] {}", q.label, q.cql);
    eprintln!("# outcome: {} ok / {} failed", report.ok_count(), report.failed_count());
    eprintln!("# events: {} collected, {} dropped", events.len(), ring.dropped());
    eprintln!("# attribution rollup:");
    eprintln!("{}", attribution.to_json());
    let t = attribution.conservation();
    eprintln!(
        "# conservation: dispatched={} (metrics {}), cost_cents={} (metrics {}), rounds={} (metrics {})",
        t.dispatched,
        report.metrics.tasks_dispatched,
        t.cost_cents,
        report.metrics.cost_cents,
        t.rounds,
        report.metrics.rounds,
    );

    println!("{}", chrome_trace(&events));
}

/// `figures store`: benchmark the durable storage layer. Stdout is the
/// `BENCH_store.json` artifact; stderr narrates. Every measurement runs
/// on a throwaway `ScratchDir`, so the target leaves nothing behind.
fn store(args: &Args) {
    use cdb_bench::selfjoin_jobs;
    use cdb_core::{SettleSink, SettledFact};
    use cdb_obsv::attr::names;
    use cdb_obsv::{kv, Event, Ring, SpanId, Trace};
    use cdb_runtime::{RuntimeConfig, RuntimeExecutor, SettleHook};
    use cdb_storage::{ColumnDef, ColumnType, Schema, Table, Value};
    use cdb_store::{AnswerLog, Database, DurableReuseCache, ScratchDir, DEFAULT_SEGMENT_BYTES};
    use std::sync::Arc;

    let ring = Arc::new(Ring::with_capacity(1 << 12));
    let trace = Trace::collector(Arc::clone(&ring) as Arc<dyn cdb_obsv::Collector>);
    let fact = |i: usize| SettledFact {
        measure: "bench.v~v".into(),
        left: format!("item #{i}"),
        right: format!("item #{}", i + 1),
        same: i.is_multiple_of(2),
        votes: 3,
        cents: 15,
    };

    // --- 1. Answer-log append throughput. Each settle is the durability
    // hot path: facts frame(s) → fsync → marker frame → fsync.
    eprintln!("# store: answer-log append throughput ({} settles per batch size)", 192);
    let mut wal_json = Vec::new();
    for &batch in &[1usize, 8, 32] {
        let dir = ScratchDir::new("bench-wal");
        let (mut log, _) = AnswerLog::open(dir.path(), DEFAULT_SEGMENT_BYTES).expect("open log");
        let settles = 192usize;
        let start = Instant::now();
        for q in 0..settles {
            let facts: Vec<SettledFact> = (0..batch).map(|i| fact(q * batch + i)).collect();
            log.append_settled(q as u64, &facts).expect("append");
        }
        let secs = start.elapsed().as_secs_f64();
        let settles_per_s = settles as f64 / secs.max(1e-9);
        eprintln!(
            "  batch {batch:>2}: {settles_per_s:>8.0} settles/s, {:>9.0} facts/s",
            settles_per_s * batch as f64
        );
        wal_json.push(format!(
            "{{\"facts_per_settle\": {batch}, \"settles\": {settles}, \
             \"settles_per_s\": {settles_per_s:.1}, \"facts_per_s\": {:.1}}}",
            settles_per_s * batch as f64
        ));
    }

    // --- 2. Recovery time vs log size: replay cost of reopening the
    // durable reuse cache as the settled history grows.
    eprintln!("# store: recovery time vs log size (4 facts per settled query)");
    let mut rec_json = Vec::new();
    for &queries in &[100usize, 400, 1600] {
        let dir = ScratchDir::new("bench-recover");
        {
            let (mut log, _) =
                AnswerLog::open(dir.path(), DEFAULT_SEGMENT_BYTES).expect("open log");
            for q in 0..queries {
                let facts: Vec<SettledFact> = (0..4).map(|i| fact(q * 4 + i)).collect();
                log.append_settled(q as u64, &facts).expect("append");
            }
        }
        let start = Instant::now();
        let cache = DurableReuseCache::open(dir.path()).expect("recover");
        let ms = start.elapsed().as_secs_f64() * 1e3;
        let facts = cache.recovery().settled_facts();
        let kind = if cache.recovery().wal.torn.is_some() { "torn" } else { "clean" };
        trace.emit(Event::instant(
            SpanId::root(),
            names::STORE_RECOVER,
            0,
            kv![n => facts, kind => kind, ms => ms],
        ));
        eprintln!(
            "  {queries:>5} queries: {ms:>8.2} ms to recover {facts} facts, \
             {} snapshots replayed ({} segments, {kind})",
            cache.replay_snapshots(),
            cache.recovery().wal.segments
        );
        rec_json.push(format!(
            "{{\"queries\": {queries}, \"facts\": {facts}, \"replay_snapshots\": {}, \
             \"segments\": {}, \"ms\": {ms:.2}, \"facts_per_s\": {:.0}}}",
            cache.replay_snapshots(),
            cache.recovery().wal.segments,
            facts as f64 / (ms / 1e3).max(1e-9)
        ));
    }

    // --- 3. Reuse-hit rate cold vs warm: the same self-join fleet before
    // and after a process restart. Warm runs answer from the recovered
    // cache instead of re-buying.
    let queries = 6u64;
    let items = (80 / args.scale.max(1)).clamp(4, 24);
    eprintln!("# store: reuse across restart ({queries} self-joins, {items} items)");
    let dir = ScratchDir::new("bench-restart");
    let fleet = || selfjoin_jobs(queries, items, 3);
    let run = |durable: &Arc<DurableReuseCache>| {
        let cfg = RuntimeConfig {
            threads: 4,
            seed: args.seed,
            worker_accuracies: vec![1.0; 20],
            reuse: Some(durable.cache()),
            settle: Some(SettleHook::new(Arc::clone(durable) as Arc<dyn SettleSink>)),
            ..RuntimeConfig::default()
        };
        RuntimeExecutor::new(cfg).run(fleet())
    };
    let durable = Arc::new(DurableReuseCache::open(dir.path()).expect("open"));
    let cold = run(&durable);
    drop(durable); // the restart
    let durable = Arc::new(DurableReuseCache::open(dir.path()).expect("reopen"));
    let warm = run(&durable);
    let rate = |r: &cdb_runtime::RuntimeReport| {
        let (d, s) = (r.metrics.tasks_dispatched, r.metrics.tasks_saved);
        s as f64 / (d + s).max(1) as f64
    };
    let (cold_rate, warm_rate) = (rate(&cold), rate(&warm));
    let same = cold.bindings_text() == warm.bindings_text();
    eprintln!(
        "  cold: {} dispatched, {} saved (hit rate {:.1}%)",
        cold.metrics.tasks_dispatched,
        cold.metrics.tasks_saved,
        100.0 * cold_rate
    );
    eprintln!(
        "  warm: {} dispatched, {} saved (hit rate {:.1}%), same answers: {}",
        warm.metrics.tasks_dispatched,
        warm.metrics.tasks_saved,
        100.0 * warm_rate,
        if same { "yes" } else { "NO" }
    );
    assert!(same, "a restart must not change query answers");
    assert!(
        warm_rate > cold_rate,
        "recovered cache must raise the reuse-hit rate (cold {cold_rate:.3}, warm {warm_rate:.3})"
    );

    // --- 4. Durable tables: flush a snapshot, reopen, verify.
    let rows = 2000usize;
    eprintln!("# store: durable table flush/reopen ({rows} rows)");
    let dir = ScratchDir::new("bench-tables");
    let path = dir.path().join("tables.cdb");
    let schema = Schema::new(vec![
        ColumnDef::new("id", ColumnType::Int),
        ColumnDef::crowd("brand", ColumnType::Text),
    ]);
    let mut table = Table::new_crowd("products", schema);
    for i in 0..rows {
        table.push(vec![Value::Int(i as i64), Value::Text(format!("brand-{}", i % 97))]).unwrap();
    }
    let (pages, seq, flush_ms) = {
        let mut db = Database::open(&path).expect("open db");
        db.add_table(table).expect("add table");
        let start = Instant::now();
        let stats = db.flush().expect("flush");
        let ms = start.elapsed().as_secs_f64() * 1e3;
        trace.emit(Event::instant(
            SpanId::root(),
            names::STORE_FLUSH,
            0,
            kv![n => stats.pages as u64, ms => ms],
        ));
        (stats.pages, stats.seq, ms)
    };
    let start = Instant::now();
    let db = Database::open(&path).expect("reopen db");
    let reopen_ms = start.elapsed().as_secs_f64() * 1e3;
    assert_eq!(db.table("products").map(|t| t.row_count()).ok(), Some(rows));
    eprintln!("  flush: {pages} pages in {flush_ms:.2} ms; reopen: {reopen_ms:.2} ms");

    let events = ring.drain();
    let count = |name: &str| events.iter().filter(|e| e.name == name).count();
    eprintln!(
        "# store: obsv events collected: {} store.recover, {} store.flush",
        count(names::STORE_RECOVER),
        count(names::STORE_FLUSH)
    );

    println!("{{");
    println!("  \"bench\": \"store\",");
    println!("  \"seed\": {},", args.seed);
    println!("  \"wal_append\": [{}],", wal_json.join(", "));
    println!("  \"recovery\": [{}],", rec_json.join(", "));
    println!(
        "  \"reuse_restart\": {{\"queries\": {queries}, \"items\": {items}, \
         \"cold_dispatched\": {}, \"cold_saved\": {}, \"cold_hit_rate\": {:.3}, \
         \"warm_dispatched\": {}, \"warm_saved\": {}, \"warm_hit_rate\": {:.3}, \
         \"same_answers\": {same}}},",
        cold.metrics.tasks_dispatched,
        cold.metrics.tasks_saved,
        cold_rate,
        warm.metrics.tasks_dispatched,
        warm.metrics.tasks_saved,
        warm_rate
    );
    println!(
        "  \"table_flush\": {{\"rows\": {rows}, \"pages\": {pages}, \"seq\": {seq}, \
         \"flush_ms\": {flush_ms:.2}, \"reopen_ms\": {reopen_ms:.2}}},"
    );
    println!(
        "  \"obsv_events\": {{\"store.recover\": {}, \"store.flush\": {}}}",
        count(names::STORE_RECOVER),
        count(names::STORE_FLUSH)
    );
    println!("}}");
}

/// `figures perf`: the committed performance trajectory. Profiles the
/// CDB hot path — graph build, similarity join, task selection (with its
/// expectation / cascade / candidate sub-phases), entailment resolution,
/// round dispatch, quality inference, pruning — across every Table 5
/// workload (paper/award/movie × 2J..3J2S), plus a MinCut-selection run
/// (select.mincut / select.maxflow) and a durable-store exercise
/// (wal.fsync / reuse.replay). Stdout is the `BENCH_perf.json` artifact:
/// deterministic counts are bit-identical across machines (seeded) and
/// phase timings are medians over `--reps` runs with mergeable
/// histograms. `--quick` drops to 1 rep for CI; the structure and counts
/// stay identical to a full run, which is what `cdb-bench compare`
/// gates on.
///
/// Always writes the award/3J1S phase histograms to
/// `target/obsv/perf.prom`; with `CDB_PROFILE=1` also dumps
/// `target/obsv/perf.folded` (flamegraph folded stacks) and
/// `target/obsv/perf.trace.json` (Chrome trace with phase args).
fn perf(args: &Args) {
    use cdb_core::executor::SelectionStrategy;
    use cdb_core::{ReuseCache, SettledFact};
    use cdb_obsv::profile::{install, PhaseEntry, ProfileReport, Profiler};
    use cdb_obsv::PromText;
    use cdb_store::{AnswerLog, DurableReuseCache, ScratchDir, DEFAULT_SEGMENT_BYTES};
    use std::sync::{Arc, Mutex};

    let reps = if args.quick { 1 } else { args.reps.max(1) };
    eprintln!(
        "# perf: phase-attributed sweep, scale {}, {} rep(s), seed {}",
        args.scale, reps, args.seed
    );

    // One profiled execution: prepare + the graph executor with an
    // answer-reuse session attached (so entail.resolve is on the path).
    // Returns the profiler (for the Chrome trace), its report, the wall
    // time, and the deterministic counts [edges, tasks, rounds, saved].
    let run_one = |ds: &Dataset,
                   cql: &str,
                   mincut_samples: Option<usize>,
                   seed: u64|
     -> (Arc<Profiler>, ProfileReport, f64, [usize; 4]) {
        let cfg = ExpConfig { worker_quality: 0.95, seed, ..Default::default() };
        // Keep raw phase intervals only under CDB_PROFILE=1: the Chrome
        // trace needs them, the JSON artifact does not.
        let event_cap = if cdb_obsv::profile::env_enabled() { 200_000 } else { 0 };
        let profiler = Arc::new(Profiler::with_event_cap(event_cap));
        let guard = install(Arc::clone(&profiler));
        let start = Instant::now();
        let (g, truth) = prepare(ds, cql, &cfg);
        let edges = g.edge_count();
        let mut rng: rand::rngs::StdRng = rand::SeedableRng::seed_from_u64(seed ^ 0x9e37_79b9);
        let pool = WorkerPool::gaussian(cfg.pool_size, cfg.worker_quality, 0.1, &mut rng);
        let mut platform = SimulatedPlatform::new(Market::Amt, pool, seed);
        let exec_cfg = ExecutorConfig {
            redundancy: cfg.redundancy,
            selection: match mincut_samples {
                Some(s) => SelectionStrategy::MinCutSampling { samples: s },
                None => SelectionStrategy::Expectation,
            },
            quality: QualityStrategy::MajorityVote,
            use_task_assignment: false,
            parallel_rounds: true,
            budget: None,
            max_rounds: None,
            flat_difficulty: false,
            seed,
        };
        let session = Arc::new(Mutex::new(ReuseCache::new().snapshot()));
        let stats = Executor::new(g, &truth, &mut platform, exec_cfg).with_reuse(session).run();
        let wall_ms = start.elapsed().as_secs_f64() * 1e3;
        drop(guard);
        let report = profiler.report();
        (profiler, report, wall_ms, [edges, stats.tasks_asked, stats.rounds, stats.tasks_saved])
    };

    let ms = |ns: u64| ns as f64 / 1e6;
    // Median phase timings across reps over rep 0's phase-tree structure
    // (all reps share it: the tree is seed-deterministic, only clocks
    // differ), with per-call histograms merged across reps.
    let phases_json = |reports: &[ProfileReport]| -> String {
        let out: Vec<String> = reports[0]
            .entries
            .iter()
            .map(|e| {
                let median = |f: &dyn Fn(&PhaseEntry) -> u64| -> f64 {
                    let mut xs: Vec<u64> =
                        reports.iter().filter_map(|r| r.get(&e.path)).map(f).collect();
                    xs.sort_unstable();
                    ms(xs[xs.len() / 2])
                };
                let mut hist = e.hist.clone();
                for r in &reports[1..] {
                    if let Some(x) = r.get(&e.path) {
                        hist.merge(&x.hist);
                    }
                }
                format!(
                    "{{\"phase\": \"{}\", \"depth\": {}, \"count\": {}, \
                     \"total_ms\": {:.3}, \"self_ms\": {:.3}, \"hist\": {}}}",
                    e.path,
                    e.depth,
                    e.count,
                    median(&|p| p.total_ns),
                    median(&|p| p.self_ns),
                    hist.to_json(1e-6)
                )
            })
            .collect();
        format!("[{}]", out.join(", "))
    };

    // --- 1. The Table 5 grid, phase-attributed.
    let mut ds_json = Vec::new();
    let mut award_3j1s: Option<(Arc<Profiler>, ProfileReport)> = None;
    for name in ["paper", "award", "movie"] {
        let ds = dataset(name, args);
        let mut q_json = Vec::new();
        for q in queries_for(name) {
            let mut reports = Vec::new();
            let mut walls = Vec::new();
            let mut counts = [0usize; 4];
            for rep in 0..reps {
                let (prof, report, wall, c) = run_one(&ds, &q.cql, None, args.seed + rep as u64);
                if rep == 0 {
                    counts = c;
                    if name == "award" && q.label == "3J1S" {
                        award_3j1s = Some((prof, report.clone()));
                    }
                }
                reports.push(report);
                walls.push(wall);
            }
            walls.sort_by(f64::total_cmp);
            let total_ms = walls[walls.len() / 2];
            eprintln!(
                "  {name}/{}: {} edges, {} tasks, {} rounds, {total_ms:.1} ms",
                q.label, counts[0], counts[1], counts[2]
            );
            q_json.push(format!(
                "{{\"query\": \"{}\", \"edges\": {}, \"tasks\": {}, \"rounds\": {}, \
                 \"reuse_saved\": {}, \"total_ms\": {total_ms:.3}, \"phases\": {}}}",
                q.label,
                counts[0],
                counts[1],
                counts[2],
                counts[3],
                phases_json(&reports)
            ));
        }
        ds_json.push(format!("{{\"dataset\": \"{name}\", \"queries\": [{}]}}", q_json.join(", ")));
    }

    // --- 2. MinCut selection on paper/2J: covers select.mincut and the
    // select.maxflow kernel, which the expectation path never enters.
    let (_mc_prof, mc_report, mc_wall, mc_counts) = {
        let ds = dataset("paper", args);
        run_one(&ds, &queries_for("paper")[0].cql, Some(8), args.seed)
    };
    assert!(
        mc_report.get("task.select;select.mincut;select.maxflow").is_some(),
        "MinCut run must profile the max-flow kernel"
    );
    eprintln!("  paper/2J (MinCut, 8 samples): {} tasks, {mc_wall:.1} ms", mc_counts[1]);
    let mincut_json = format!(
        "{{\"dataset\": \"paper\", \"query\": \"2J\", \"samples\": 8, \"edges\": {}, \
         \"tasks\": {}, \"rounds\": {}, \"total_ms\": {mc_wall:.3}, \"phases\": {}}}",
        mc_counts[0],
        mc_counts[1],
        mc_counts[2],
        phases_json(std::slice::from_ref(&mc_report))
    );

    // --- 3. Durable-store hot path: wal.fsync per settle, reuse.replay
    // on reopen. Counts (settles, fsyncs, replayed snapshots) are exact.
    let settles = 64usize;
    let store_json = {
        let profiler = Arc::new(Profiler::new());
        let guard = install(Arc::clone(&profiler));
        let dir = ScratchDir::new("perf-store");
        {
            let (mut log, _) =
                AnswerLog::open(dir.path(), DEFAULT_SEGMENT_BYTES).expect("open log");
            for qn in 0..settles {
                let facts: Vec<SettledFact> = (0..4)
                    .map(|i| SettledFact {
                        measure: "perf.v~v".into(),
                        left: format!("item #{}", qn * 4 + i),
                        right: format!("item #{}", qn * 4 + i + 1),
                        same: (qn + i).is_multiple_of(2),
                        votes: 3,
                        cents: 15,
                    })
                    .collect();
                log.append_settled(qn as u64, &facts).expect("append");
            }
        }
        let start = Instant::now();
        let cache = DurableReuseCache::open(dir.path()).expect("recover");
        let recover_ms = start.elapsed().as_secs_f64() * 1e3;
        drop(guard);
        let report = profiler.report();
        assert_eq!(cache.replay_snapshots() as usize, settles);
        eprintln!(
            "  store: {settles} settles, {} replayed snapshots, recover {recover_ms:.1} ms",
            cache.replay_snapshots()
        );
        format!(
            "{{\"settles\": {settles}, \"facts_per_settle\": 4, \"replay_snapshots\": {}, \
             \"recover_ms\": {recover_ms:.3}, \"phases\": {}}}",
            cache.replay_snapshots(),
            phases_json(std::slice::from_ref(&report))
        )
    };

    // --- 4. The award/3J1S outlier's task-selection decomposition (the
    // Table 5 row EXPERIMENTS.md tracks): its sub-phases must carry the
    // time, leaving <= 5% unattributed inside task.select itself.
    let (award_prof, award_report) = award_3j1s.expect("award 3J1S ran");
    let sel = award_report.get("task.select").expect("task.select profiled");
    let subs: Vec<&PhaseEntry> =
        award_report.entries.iter().filter(|e| e.path.starts_with("task.select;")).collect();
    let sub_self_ns: u64 = subs.iter().map(|e| e.self_ns).sum();
    let coverage = sub_self_ns as f64 / sel.total_ns.max(1) as f64;
    eprintln!(
        "  award/3J1S task.select: {} sub-phase(s) cover {:.1}% of {:.1} ms",
        subs.len(),
        100.0 * coverage,
        ms(sel.total_ns)
    );
    assert!(subs.len() >= 3, "award 3J1S task.select must decompose into >= 3 sub-phases");
    assert!(
        coverage >= 0.95,
        "task.select sub-phases must cover >= 95% of its time (got {:.1}%)",
        100.0 * coverage
    );

    // --- 5. Exposition + profile dumps.
    std::fs::create_dir_all("target/obsv").expect("create target/obsv");
    let mut prom = PromText::new();
    award_report.prom(&mut prom);
    std::fs::write("target/obsv/perf.prom", prom.finish()).expect("write perf.prom");
    eprintln!("# perf: wrote target/obsv/perf.prom (award/3J1S phase histograms)");
    if cdb_obsv::profile::env_enabled() {
        std::fs::write("target/obsv/perf.folded", award_report.folded())
            .expect("write perf.folded");
        std::fs::write("target/obsv/perf.trace.json", award_prof.chrome_trace())
            .expect("write perf.trace.json");
        eprintln!("# perf: CDB_PROFILE=1 -> wrote target/obsv/perf.folded + perf.trace.json");
        eprintln!("{}", award_report.text());
    }

    println!("{{");
    println!("  \"bench\": \"perf\",");
    println!("  \"scale\": {},", args.scale);
    println!("  \"seed\": {},", args.seed);
    println!("  \"reps\": {reps},");
    println!("  \"datasets\": [{}],", ds_json.join(", "));
    println!("  \"mincut\": {mincut_json},");
    println!("  \"store\": {store_json},");
    println!(
        "  \"select_decomposition\": {{\"dataset\": \"award\", \"query\": \"3J1S\", \
         \"sub_phases\": {}, \"task_select_ms\": {:.3}, \"sub_self_ms\": {:.3}}}",
        subs.len(),
        ms(sel.total_ns),
        ms(sub_self_ns)
    );
    println!("}}");
}

/// `figures shard`: the sharded-execution scaling sweep. Stdout is the
/// `BENCH_shard.json` artifact; stderr narrates.
///
/// The workload is a fleet of four replicas of each of the five Table 4
/// award queries (20 jobs; replicas run under distinct job ids, hence
/// distinct seeded task streams), at two dataset sizes: the base
/// cardinalities (`1/(scale*10)` of the paper's award tables) and 10x
/// that base. At the small size a query's tuple graph splits into many
/// components; at 10x similarity connectivity merges each graph into one
/// giant component, so the shardable unit count comes from the fleet —
/// exactly the regime the coordinator schedules. Each size runs through
/// the component-sharded executor at 1/2/4 shards (streaming component
/// arenas) plus a single-shard non-streaming run — the monolithic
/// baseline that materializes every component sub-graph up front, i.e.
/// the memory behavior of the unsharded runtime.
///
/// Everything gated is deterministic: bindings must be byte-identical
/// across all four configurations, per-shard task/money counters must sum
/// to the merged totals, the 10x row must show >= 2x virtual-time speedup
/// at 4 shards, and the 4-shard per-shard peak must stay below the
/// monolithic baseline's. Virtual makespan (max over shards of the
/// shard's summed per-unit virtual crowd latency) is the scaling metric —
/// it is seed-deterministic, so `cdb-bench compare` holds it exactly;
/// wall clocks are reported under `_ms` keys and compared as noisy
/// timings only.
fn shard(args: &Args) {
    use cdb_runtime::{RetryPolicy, RuntimeConfig};
    use cdb_shard::{MemoryConfig, ShardConfig, ShardExecutor};

    let divisor = args.scale.saturating_mul(10).max(1);
    let replicas = 4u64;
    let base = DatasetScale::award_full().scaled(divisor);
    eprintln!(
        "# shard: award fleet (5 queries x {replicas} replicas), base cardinalities \
         1/{divisor} of paper, multipliers [1, 10], shards [1, 2, 4], seed {}",
        args.seed
    );

    let mut sweep_json = Vec::new();
    let mut gate = None;
    for &m in &[1usize, 10] {
        let scale = base.times(m);
        let ds = award_dataset(scale, args.seed);
        let cfg = ExpConfig { worker_quality: 0.95, seed: args.seed, ..Default::default() };
        let prepared: Vec<(cdb_core::QueryGraph, cdb_core::EdgeTruth)> =
            queries_for("award").iter().map(|q| prepare(&ds, &q.cql, &cfg)).collect();
        let mut jobs: Vec<cdb_runtime::QueryJob> = Vec::new();
        for r in 0..replicas {
            for (i, (g, t)) in prepared.iter().enumerate() {
                jobs.push(cdb_runtime::QueryJob {
                    id: r * prepared.len() as u64 + i as u64,
                    graph: g.clone(),
                    truth: t.clone(),
                });
            }
        }
        // threads=1 keeps per-shard peak bytes deterministic (with more
        // worker threads the peak depends on interleaving and would be
        // telemetry, not a comparable count). The generous retry budget
        // matches the `runtime` target: the default 2-minute assignment
        // deadline starves the long tail of a fleet this size even
        // without faults.
        let rcfg = RuntimeConfig {
            threads: 1,
            seed: args.seed,
            worker_accuracies: vec![0.95; 25],
            retry: RetryPolicy { deadline_ms: 300_000, max_retries: 8 },
            ..RuntimeConfig::default()
        };

        // (shards, streaming): index 0 is the monolithic baseline.
        let grid = [(1usize, false), (1, true), (2, true), (4, true)];
        let mut rows = Vec::new();
        let mut cfg_json = Vec::new();
        for &(shards, streaming) in &grid {
            let sc = ShardConfig {
                shards,
                runtime: rcfg.clone(),
                memory: MemoryConfig { ceiling_bytes: None, streaming },
            };
            let start = Instant::now();
            let report = ShardExecutor::new(sc).run(jobs.clone()).expect("no memory ceiling set");
            let wall_ms = start.elapsed().as_secs_f64() * 1e3;
            let makespan = report.virtual_makespan();
            let virtual_total: u64 = report.shards.iter().map(|s| s.virtual_ms).sum();
            let peak = report.peak_bytes_max();
            let stat_tasks: u64 = report.shards.iter().map(|s| s.metrics.tasks_dispatched).sum();
            let stat_cents: u64 = report.shards.iter().map(|s| s.metrics.cost_cents).sum();
            assert_eq!(stat_tasks, report.metrics.tasks_dispatched, "task conservation");
            assert_eq!(stat_cents, report.metrics.cost_cents, "money conservation");
            eprintln!(
                "  x{m}: shards={shards} streaming={streaming}: {} units, {} ok, \
                 makespan {makespan} vms, peak {peak} B/shard, {} tasks, {wall_ms:.0} ms",
                report.units.len(),
                report.ok_count(),
                stat_tasks
            );
            if let Some((q, Err(e))) = report.results.iter().find(|(_, r)| r.is_err()) {
                eprintln!("    first failure: q{q}: {e}");
            }
            cfg_json.push(format!(
                "{{\"shards\": {shards}, \"streaming\": {streaming}, \"units\": {}, \
                 \"ok\": {}, \"virtual_makespan\": {makespan}, \"virtual_total\": {virtual_total}, \
                 \"peak_shard_bytes\": {peak}, \"tasks\": {stat_tasks}, \"cents\": {stat_cents}, \
                 \"wall_ms\": {wall_ms:.3}}}",
                report.units.len(),
                report.ok_count()
            ));
            rows.push((shards, streaming, makespan, peak, report.bindings_text()));
        }
        for (shards, streaming, _, _, bindings) in &rows[1..] {
            assert_eq!(
                bindings, &rows[0].4,
                "bindings must be byte-identical at shards={shards} streaming={streaming}"
            );
        }
        if m == 10 {
            let mono = &rows[0]; // (1, false)
            let four = rows.iter().find(|r| r.0 == 4).expect("4-shard row");
            gate = Some((mono.2, four.2, mono.3, four.3));
        }
        sweep_json.push(format!(
            "{{\"scale_multiplier\": {m}, \"rows\": {}, \"queries\": {}, \"configs\": [{}]}}",
            scale.rows(),
            jobs.len(),
            cfg_json.join(", ")
        ));
    }

    let (mono_ms, four_ms, mono_peak, four_peak) = gate.expect("10x row ran");
    let speedup = mono_ms as f64 / four_ms.max(1) as f64;
    eprintln!(
        "# shard: 10x gate: virtual speedup at 4 shards {speedup:.2}x \
         (mono {mono_ms} vms vs {four_ms} vms), peak {four_peak} B/shard vs mono {mono_peak} B"
    );
    assert!(
        speedup >= 2.0,
        "4 shards must give >= 2x virtual speedup on the 10x award fleet (got {speedup:.2}x)"
    );
    assert!(
        four_peak < mono_peak,
        "per-shard peak ({four_peak} B) must stay below the monolithic baseline ({mono_peak} B)"
    );

    println!("{{");
    println!("  \"bench\": \"shard\",");
    println!("  \"scale\": {},", args.scale);
    println!("  \"seed\": {},", args.seed);
    println!("  \"sweep\": [{}],", sweep_json.join(", "));
    println!(
        "  \"gate\": {{\"scale_multiplier\": 10, \"shards\": 4, \
         \"virtual_speedup\": {speedup:.3}, \"mono_virtual_makespan\": {mono_ms}, \
         \"sharded_virtual_makespan\": {four_ms}, \"mono_peak_bytes\": {mono_peak}, \
         \"sharded_peak_bytes\": {four_peak}}}"
    );
    println!("}}");
}

/// `figures sim`: soak the deterministic simulation harness over
/// `--iters` consecutive seeds. Prints progress every 100 scenarios, the
/// seed and shrunk repro on any violation, and exits nonzero on failure.
fn sim(args: &Args) {
    use cdb_sim::{soak, Sabotage};

    println!(
        "# cdb-sim soak: {} scenarios, seeds {}..{}",
        args.iters,
        args.seed,
        args.seed + args.iters as u64
    );
    let start = Instant::now();
    let mut done = 0usize;
    let report = soak(args.seed, args.iters, Sabotage::None, |outcome| {
        done += 1;
        if done.is_multiple_of(100) {
            println!(
                "  {done} scenarios checked ({:.1}s), last seed {}",
                start.elapsed().as_secs_f64(),
                outcome.seed
            );
        }
        if !outcome.violations.is_empty() {
            eprintln!("FAILED seed {}:", outcome.seed);
            for v in &outcome.violations {
                eprintln!("  {v}");
            }
        }
    });
    println!(
        "# {} scenarios ({} crowd queries) in {:.1}s: {} violating seed(s)",
        report.scenarios,
        report.queries,
        start.elapsed().as_secs_f64(),
        report.failures.len()
    );
    for f in &report.failures {
        eprintln!("\n# shrunk repro for seed {} (replay with cdb_sim::replay_repro):", f.seed);
        if let Some(shrunk) = &f.shrunk {
            eprintln!("{}", shrunk.repro);
        }
    }
    if !report.failures.is_empty() {
        let seeds: Vec<String> = report.failures.iter().map(|f| f.seed.to_string()).collect();
        eprintln!("\nsim soak FAILED; violating seeds: {}", seeds.join(", "));
        std::process::exit(1);
    }
}

/// `figures serve`: the wire-level load sweep against a live `cdb-serve`
/// instance. Stdout is the `BENCH_serve.json` artifact; stderr narrates.
///
/// Two phases over the paper's running-example dataset (the Researcher ⋈
/// University crowd join), both over real loopback sockets via the
/// [`cdb_serve`] load generator:
///
/// * **concurrency** — 16 tenants × 88 queries with a 30 ms round
///   throttle. The simulated crowd answers in virtual time, so an
///   unthrottled query finishes in microseconds; the throttle makes
///   sustained in-flight load observable, the way a real crowd's
///   minutes-long rounds would. Gated: the server's own gauge must show
///   ≥ 1000 concurrently in-flight (admitted-or-queued, not yet
///   terminal) queries at peak.
/// * **throughput** — 8 tenants × 40 queries unthrottled, measuring
///   sustained completed-queries-per-second.
///
/// Every watched stream from both phases is then re-executed in process
/// with the server's exact configuration (the oracle): zero lost, zero
/// duplicated, and zero spurious bindings are asserted, so the
/// artifact's oracle sections are all-zeros by construction. Latencies,
/// wall clocks, and rates are `_ms`/`_per_s` keys (timing class — CI
/// compares them warn-only); query/binding counts are exact.
fn serve(args: &Args) {
    use cdb_sched::Envelope;
    use cdb_serve::{run_load, verify_streams, LoadPlan, OracleCheck, ServeConfig};

    const SQL: &str = "SELECT * FROM Researcher, University \
         WHERE Researcher.affiliation CROWDJOIN University.name";

    fn phase(name: &str, cfg: &ServeConfig, plan: &LoadPlan) -> (cdb_serve::LoadReport, String) {
        let (db, truth) = paper_example_dataset();
        let server =
            cdb_serve::start("127.0.0.1:0", db, truth, cfg.clone()).expect("serve binds loopback");
        let report = run_load(server.addr(), plan).expect("load run completes");
        server.shutdown();
        let (db, truth) = paper_example_dataset();
        let check = verify_streams(&db, &truth, cfg, &plan.sql, &report.streams);
        eprintln!(
            "# serve/{name}: {} queries ({} admitted / {} queued / {} rejected): \
             {} completed, {} failed, {} cancelled in {:.1}s ({:.0} q/s); \
             peak inflight {}, first binding p50 {:.1} ms / p99 {:.1} ms",
            report.submitted,
            report.admitted,
            report.queued,
            report.rejected,
            report.completed,
            report.failed,
            report.cancelled,
            report.wall_secs,
            report.qps,
            report.peak_inflight,
            report.first_binding_percentile(0.5),
            report.first_binding_percentile(0.99),
        );
        eprintln!(
            "#   oracle: {} streams, {} bindings: {} lost, {} duplicated, \
             {} retracted, {} spurious",
            check.queries,
            check.bindings_total,
            check.lost,
            check.duplicated,
            check.retracted,
            check.spurious
        );
        assert_eq!(report.completed, report.submitted, "every query must complete");
        assert!(check.clean(), "the wire lost/duplicated/invented bindings: {check:?}");
        let oracle_json = oracle_json(&check);
        (report, oracle_json)
    }

    fn oracle_json(check: &OracleCheck) -> String {
        format!(
            "{{\"queries\": {}, \"bindings_total\": {}, \"lost\": {}, \
             \"duplicated\": {}, \"retracted\": {}, \"spurious\": {}}}",
            check.queries,
            check.bindings_total,
            check.lost,
            check.duplicated,
            check.retracted,
            check.spurious
        )
    }

    let exec_threads = 8usize;
    // The generous retry budget matches the `runtime` and `shard`
    // targets: the default 2-minute virtual assignment deadline starves
    // the long tail of a 1.4k-query fleet even without faults.
    let retry = cdb_runtime::RetryPolicy { deadline_ms: 300_000, max_retries: 8 };
    let mut cfg = ServeConfig::default();
    cfg.runtime.seed = args.seed;
    cfg.runtime.retry = retry;
    cfg.exec_threads = exec_threads;
    cfg.round_delay_ms = 30;
    // max_active 4 keeps most of each tenant's backlog queued (queued
    // queries are in flight: accepted, holding a slot, not yet terminal),
    // so the 1k-concurrency gate exercises admission and promotion, not
    // just the run queue.
    cfg.default_envelope = Envelope { budget_cents: 100_000, max_active: 4, queue_capacity: 128 };
    let plan = LoadPlan {
        tenants: 16,
        queries_per_tenant: 88,
        sql: SQL.to_string(),
        budget_cents: 1_000,
        submitters: 8,
        stream_workers: 16,
    };
    eprintln!(
        "# serve: concurrency phase: {} tenants x {} queries, round delay {} ms, \
         {} exec threads, seed {}",
        plan.tenants, plan.queries_per_tenant, cfg.round_delay_ms, exec_threads, args.seed
    );
    let (conc, conc_oracle) = phase("concurrency", &cfg, &plan);
    assert!(
        conc.peak_inflight >= 1_000,
        "the load generator must sustain >= 1000 concurrent in-flight queries \
         (peak was {})",
        conc.peak_inflight
    );

    let mut tcfg = ServeConfig::default();
    tcfg.runtime.seed = args.seed;
    tcfg.runtime.retry = retry;
    tcfg.exec_threads = exec_threads;
    let tplan = LoadPlan {
        tenants: 8,
        queries_per_tenant: 40,
        sql: SQL.to_string(),
        budget_cents: 1_000,
        submitters: 8,
        stream_workers: 8,
    };
    eprintln!(
        "# serve: throughput phase: {} tenants x {} queries, unthrottled",
        tplan.tenants, tplan.queries_per_tenant
    );
    let (thr, thr_oracle) = phase("throughput", &tcfg, &tplan);

    println!("{{");
    println!("  \"bench\": \"serve\",");
    println!("  \"scale\": {},", args.scale);
    println!("  \"seed\": {},", args.seed);
    println!("  \"exec_threads\": {exec_threads},");
    println!(
        "  \"concurrency\": {{\"tenants\": {}, \"queries\": {}, \"completed\": {}, \
         \"failed\": {}, \"cancelled\": {}, \"rejected\": {}, \"round_delay_ms\": {}, \
         \"peak_inflight_per_run\": {}, \"peak_inflight_floor\": 1000, \
         \"first_binding_p50_ms\": {:.3}, \"first_binding_p99_ms\": {:.3}, \
         \"qps_per_s\": {:.3}, \"wall_ms\": {:.3}, \"oracle\": {}}},",
        plan.tenants,
        conc.submitted,
        conc.completed,
        conc.failed,
        conc.cancelled,
        conc.rejected,
        cfg.round_delay_ms,
        conc.peak_inflight,
        conc.first_binding_percentile(0.5),
        conc.first_binding_percentile(0.99),
        conc.qps,
        conc.wall_secs * 1e3,
        conc_oracle
    );
    println!(
        "  \"throughput\": {{\"tenants\": {}, \"queries\": {}, \"completed\": {}, \
         \"failed\": {}, \"cancelled\": {}, \"rejected\": {}, \
         \"first_binding_p50_ms\": {:.3}, \"first_binding_p99_ms\": {:.3}, \
         \"qps_per_s\": {:.3}, \"wall_ms\": {:.3}, \"oracle\": {}}}",
        tplan.tenants,
        thr.submitted,
        thr.completed,
        thr.failed,
        thr.cancelled,
        thr.rejected,
        thr.first_binding_percentile(0.5),
        thr.first_binding_percentile(0.99),
        thr.qps,
        thr.wall_secs * 1e3,
        thr_oracle
    );
    println!("}}");
}

/// Tee this run's stdout/stderr into `target/figures/<target>.log` by
/// re-executing the binary with both streams piped (the child is marked
/// via `CDB_FIGURES_LOG` so it runs the target inline). Byte-exact: the
/// parent pumps the child's stdout to its own stdout unmodified, so
/// `figures store > BENCH_store.json`-style redirections still capture
/// clean artifacts. Returns the child's exit code, or `None` when the
/// relaunch could not start (unwritable `target/`, no `current_exe`) —
/// the caller then runs inline without a log.
fn tee_to_log(target: &str) -> Option<i32> {
    use std::io::{Read, Write};
    use std::process::{Command, Stdio};
    use std::sync::{Arc, Mutex};

    std::fs::create_dir_all("target/figures").ok()?;
    let exe = std::env::current_exe().ok()?;
    let log_path = format!("target/figures/{target}.log");
    let log = Arc::new(Mutex::new(std::fs::File::create(&log_path).ok()?));
    let mut child = Command::new(exe)
        .args(std::env::args().skip(1))
        .env("CDB_FIGURES_LOG", &log_path)
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .ok()?;

    fn pump<R: Read + Send + 'static>(
        mut from: R,
        to_stderr: bool,
        log: Arc<Mutex<std::fs::File>>,
    ) -> std::thread::JoinHandle<()> {
        std::thread::spawn(move || {
            let mut buf = [0u8; 8192];
            loop {
                match from.read(&mut buf) {
                    Ok(0) | Err(_) => return,
                    Ok(n) => {
                        let _ = log.lock().unwrap().write_all(&buf[..n]);
                        if to_stderr {
                            let _ = std::io::stderr().write_all(&buf[..n]);
                        } else {
                            let mut out = std::io::stdout().lock();
                            let _ = out.write_all(&buf[..n]);
                            let _ = out.flush();
                        }
                    }
                }
            }
        })
    }
    let t_out = pump(child.stdout.take()?, false, Arc::clone(&log));
    let t_err = pump(child.stderr.take()?, true, Arc::clone(&log));
    let status = child.wait().ok()?;
    let _ = t_out.join();
    let _ = t_err.join();
    eprintln!("# run log: {log_path}");
    Some(status.code().unwrap_or(1))
}

fn main() {
    let args = parse_args();
    if std::env::var_os("CDB_FIGURES_LOG").is_none() {
        if let Some(code) = tee_to_log(&args.target) {
            std::process::exit(code);
        }
    }
    let t = args.target.as_str();
    let all = t == "all";
    if all || t == "fig8" {
        grid(&args, "cost", 0.8, "Figure 8: cost (#tasks), simulated workers N(0.8, 0.01)");
    }
    if all || t == "fig9" {
        grid(&args, "quality", 0.8, "Figure 9: quality (F-measure), simulated workers");
    }
    if all || t == "fig10" {
        grid(&args, "latency", 0.8, "Figure 10: latency (#rounds), simulated workers");
    }
    if all || t == "fig11" {
        fig11(&args);
    }
    if all || t == "fig14" {
        grid(&args, "cost", 0.95, "Figure 14: cost (#tasks), real-platform workers (q=0.95)");
    }
    if all || t == "fig15" {
        grid(&args, "quality", 0.95, "Figure 15: quality (F-measure), real-platform workers");
    }
    if all || t == "fig16" {
        grid(&args, "latency", 0.95, "Figure 16: latency (#rounds), real-platform workers");
    }
    if all || t == "fig17" {
        fig17(&args);
    }
    if all || t == "fig18" || t == "fig19" {
        fig18_19(&args);
    }
    if all || t == "fig20" {
        fig20(&args);
    }
    if all || t == "fig21" {
        fig21(&args);
    }
    if all || t == "fig22" {
        fig22(&args);
    }
    if all || t == "fig23" || t == "fig24" {
        fig23_24(&args);
    }
    if all || t == "table2" || t == "table3" {
        tables23(&args);
    }
    if all || t == "table4" {
        table4();
    }
    if all || t == "table5" {
        table5(&args);
    }
    if all || t == "example" {
        example(&args);
    }
    if all || t == "ablations" {
        ablations(&args);
    }
    if all || t == "runtime" {
        runtime(&args);
    }
    if all || t == "reuse" {
        reuse(&args);
    }
    if all || t == "sched" {
        sched(&args);
    }
    // Not part of `all`: its stdout is a JSON artifact, not a report.
    if t == "trace" {
        trace(&args);
    }
    // Not part of `all`: a correctness soak, not a paper figure.
    if t == "sim" {
        sim(&args);
    }
    // Not part of `all`: its stdout is the BENCH_store.json artifact.
    if t == "store" {
        store(&args);
    }
    // Not part of `all`: its stdout is the BENCH_perf.json artifact.
    if t == "perf" {
        perf(&args);
    }
    // Not part of `all`: its stdout is the BENCH_shard.json artifact.
    if t == "shard" {
        shard(&args);
    }
    // Not part of `all`: its stdout is the BENCH_serve.json artifact.
    if t == "serve" {
        serve(&args);
    }
}
