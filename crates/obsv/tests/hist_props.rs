//! Property tests for the deterministic histogram and phase profiler.
//!
//! The claims pinned here are the ones the perf artifacts depend on:
//!
//! * [`Hist::merge`] is associative and commutative, so per-thread shards
//!   merged in any order — and any *number* of shards — serialize to
//!   byte-identical state ([`Hist::encode`]).
//! * [`Hist::percentile`] is within the documented bucket bound of the
//!   exact nearest-rank percentile: `v <= e <= v + 1 + v/SUB`.
//! * The profiler's self times are conservative: over any (well-nested)
//!   sequence of phase enters/exits, the self times across all call paths
//!   sum exactly to the total across top-level phases.

use std::sync::Arc;

use cdb_obsv::profile::{self, Profiler};
use cdb_obsv::Hist;
use proptest::prelude::*;

const SUB: u64 = cdb_obsv::hist::SUB;

fn hist_of(values: &[u64]) -> Hist {
    let mut h = Hist::new();
    for &v in values {
        h.record(v);
    }
    h
}

/// Latency-like values: log-uniform-ish over bit widths, so there is
/// heavy mass near zero with a tail out to ~minutes in nanoseconds.
fn latencies() -> impl Strategy<Value = Vec<u64>> {
    prop::collection::vec((1u32..38, any::<u64>()).prop_map(|(bits, r)| r % (1u64 << bits)), 0..200)
}

proptest! {
    #[test]
    fn merge_is_commutative(a in latencies(), b in latencies()) {
        let (ha, hb) = (hist_of(&a), hist_of(&b));
        let mut ab = ha.clone();
        ab.merge(&hb);
        let mut ba = hb.clone();
        ba.merge(&ha);
        prop_assert_eq!(&ab, &ba);
        prop_assert_eq!(ab.encode(), ba.encode());
    }

    #[test]
    fn merge_is_associative(a in latencies(), b in latencies(), c in latencies()) {
        let (ha, hb, hc) = (hist_of(&a), hist_of(&b), hist_of(&c));
        // (a + b) + c
        let mut left = ha.clone();
        left.merge(&hb);
        left.merge(&hc);
        // a + (b + c)
        let mut bc = hb.clone();
        bc.merge(&hc);
        let mut right = ha.clone();
        right.merge(&bc);
        prop_assert_eq!(&left, &right);
        prop_assert_eq!(left.encode(), right.encode());
    }

    /// Record the same multiset on 1, 4, and 8 real threads (round-robin
    /// shards, merged in thread order) and require byte-identical encodes.
    #[test]
    fn sharded_recording_is_thread_count_independent(values in latencies()) {
        let single = hist_of(&values).encode();
        for threads in [4usize, 8] {
            let shards: Vec<Vec<u64>> = (0..threads)
                .map(|t| values.iter().copied().skip(t).step_by(threads).collect())
                .collect();
            let handles: Vec<_> = shards
                .into_iter()
                .map(|shard| std::thread::spawn(move || hist_of(&shard)))
                .collect();
            let mut merged = Hist::new();
            for h in handles {
                merged.merge(&h.join().expect("shard thread panicked"));
            }
            prop_assert_eq!(merged.encode(), single.clone(), "threads={}", threads);
        }
    }

    /// Percentile estimates stay within the bucket bound of the exact
    /// nearest-rank percentile.
    #[test]
    fn percentile_error_is_within_bucket_bound(
        mut values in prop::collection::vec(0u64..200_000_000, 1..300),
        p in 0.0f64..1.0,
    ) {
        let h = hist_of(&values);
        values.sort_unstable();
        let rank = ((p * values.len() as f64).ceil() as usize).clamp(1, values.len());
        let exact = values[rank - 1];
        let est = h.percentile(p);
        prop_assert!(est >= exact, "estimate {} below exact {}", est, exact);
        prop_assert!(
            est as u128 <= exact as u128 + 1 + exact as u128 / SUB as u128,
            "estimate {} exceeds bucket bound of exact {}", est, exact,
        );
    }

    /// Over an arbitrary well-nested enter/exit sequence, self times sum
    /// exactly to the root total (no double counting, nothing lost).
    #[test]
    fn profiler_self_time_conservation(ops in prop::collection::vec(0u8..6, 0..60)) {
        const NAMES: [&str; 4] = ["graph.build", "task.select", "prune", "wal.fsync"];
        let prof = Arc::new(Profiler::new());
        {
            let _g = profile::install(Arc::clone(&prof));
            let mut open: Vec<profile::PhaseGuard> = Vec::new();
            for op in ops {
                if (op as usize) < NAMES.len() && open.len() < 8 {
                    open.push(profile::phase(NAMES[op as usize]));
                } else {
                    open.pop(); // drop = exit (no-op when nothing is open)
                }
            }
            // Close whatever is still open, innermost first.
            while open.pop().is_some() {}
        }
        let report = prof.report();
        prop_assert_eq!(report.self_total_ns(), report.root_total_ns());
        for e in &report.entries {
            prop_assert!(e.self_ns <= e.total_ns, "self > total at {}", &e.path);
            prop_assert_eq!(e.hist.count(), e.count, "hist count drift at {}", &e.path);
        }
    }
}
