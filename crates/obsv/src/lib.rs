//! Observability substrate for CDB.
//!
//! CDB's whole contribution is a multi-goal optimizer trading monetary
//! cost, latency (rounds) and answer quality — so the system must be able
//! to say *where* each of those three currencies was spent, not just
//! report end-of-run aggregates. This crate provides the pieces, std-only
//! (no external deps, usable from every other crate without cycles):
//!
//! * **Events and spans** ([`event`], [`span`]): a fixed-size, allocation
//!   free [`Event`] record (name + virtual timestamp + up to
//!   [`event::MAX_KV`] key/value pairs) and hierarchical, *content-derived*
//!   [`SpanId`]s. Because span ids are pure functions of what the span is
//!   about — `(query, round, task, …)` — and never of thread identity or
//!   wall-clock, the event stream of a deterministic run is itself
//!   deterministic: sorted canonically it is byte-identical at any thread
//!   count.
//! * **Collection** ([`collect`]): the [`Collector`] trait, the no-op
//!   collector ([`Trace::off`] — tracing compiled in but zero work done),
//!   a fan-out, a context wrapper that stamps every event with the query
//!   it belongs to, and [`Ring`] — a lock-free bounded MPMC ring buffer
//!   with drop-counting, so tracing can never block the work-stealing
//!   pool.
//! * **Attribution** ([`attr`]): fold an event stream into per-query /
//!   per-plan-node / per-round rollups of money (task price × dispatches),
//!   virtual latency and quality (decision confidence, vote entropy), with
//!   a conservation check against the runtime's aggregate counters.
//! * **Exposition** ([`json`], [`prom`], [`trace_event`]): a tiny
//!   hand-rolled JSON writer (the vendored `serde` stand-in cannot
//!   serialize), a Prometheus text-format writer + line-format validator,
//!   and a Chrome `trace_event` JSON emitter loadable in
//!   `about:tracing` / [Perfetto](https://ui.perfetto.dev).
//! * **Profiling** ([`hist`], [`profile`]): the *wall-clock* domain,
//!   deliberately separate from the deterministic virtual-time streams
//!   above. [`Hist`] is a fixed-precision log-bucketed histogram whose
//!   merge is bucket-wise addition (byte-identical at any thread count);
//!   [`profile::Profiler`] turns RAII [`profile::phase`] guards placed in
//!   hot functions into a per-phase self-time tree with folded-stacks
//!   (flamegraph) and wall-clock Chrome-trace exports.

pub mod attr;
pub mod collect;
pub mod event;
pub mod hist;
pub mod json;
pub mod profile;
pub mod prom;
pub mod span;
pub mod trace_event;

pub use attr::{Attribution, ConservationTotals, NodeAttribution, QueryAttribution};
pub use collect::{Collector, Fanout, Noop, Ring, Trace, WithContext};
pub use event::{Event, EventKind, KvList, Value, MAX_KV};
pub use hist::Hist;
pub use profile::{PhaseGuard, ProfileReport, Profiler};
pub use prom::{validate_exposition, PromText};
pub use span::{Span, SpanId};
pub use trace_event::chrome_trace;
