//! Fixed-precision, deterministic log-bucketed latency histogram.
//!
//! Profiling wall-clock timings must not disturb the deterministic event
//! streams, but their *summaries* should still be reproducible artifacts:
//! two runs that observe the same multiset of values — in any order, on
//! any number of threads — must serialize to the same bytes. [`Hist`]
//! guarantees that by being integer-only and order-free:
//!
//! * Values are `u64` (the profiler records nanoseconds). Each value
//!   lands in a log-spaced bucket: bucket widths double every octave and
//!   each octave is split into [`SUB`] sub-buckets, so the bucket upper
//!   bound overestimates a contained value by at most `1/SUB` (6.25%)
//!   plus one integer step — the *bucket bound* that percentile queries
//!   inherit.
//! * Recording is a single index increment; [`Hist::merge`] is bucket-wise
//!   addition, hence associative and commutative — shard per thread, merge
//!   in any order, get identical state.
//! * Percentiles ([`Hist::percentile`]) use the nearest-rank rule over
//!   bucket counts and return the matched bucket's upper bound, so the
//!   estimate `e` for a true value `v` satisfies `v <= e <= v + 1 + v/SUB`.
//!   [`Hist::max`] and [`Hist::sum`] are tracked exactly.
//! * [`Hist::prom`] exposes octave-granularity cumulative `_bucket`
//!   series through the existing [`PromText`] writer.

use crate::json::JsonObject;
use crate::prom::PromText;

/// Sub-buckets per octave: bucket upper bounds overestimate a contained
/// value by at most `1/SUB` of its magnitude (plus one integer step).
pub const SUB: u64 = 16;
const SUB_BITS: u32 = 4; // log2(SUB)

/// A mergeable log-bucketed histogram of `u64` values.
///
/// The default state (no recordings) is an empty bucket vector; buckets
/// grow on demand up to the fixed index of the largest recorded value, so
/// two histograms fed the same values always hold identical vectors.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Hist {
    buckets: Vec<u64>,
    count: u64,
    sum: u128,
    max: u64,
}

/// Bucket index of a value: exact below [`SUB`], then log-spaced with
/// `SUB` sub-buckets per octave.
fn index_of(v: u64) -> usize {
    if v < SUB {
        return v as usize;
    }
    let top = 63 - v.leading_zeros(); // >= SUB_BITS
    let shift = top - SUB_BITS;
    ((shift as u64 + 1) * SUB + ((v >> shift) - SUB)) as usize
}

/// Largest value mapping to bucket `idx` (the bound percentiles report).
fn upper_of(idx: usize) -> u64 {
    let idx = idx as u64;
    if idx < SUB {
        return idx;
    }
    let shift = (idx / SUB - 1) as u32;
    let sub = idx % SUB + SUB;
    ((sub + 1) << shift) - 1
}

impl Hist {
    /// An empty histogram.
    pub fn new() -> Hist {
        Hist::default()
    }

    /// Record one value.
    pub fn record(&mut self, v: u64) {
        self.record_n(v, 1);
    }

    /// Record `n` occurrences of `v`.
    pub fn record_n(&mut self, v: u64, n: u64) {
        if n == 0 {
            return;
        }
        let idx = index_of(v);
        if self.buckets.len() <= idx {
            self.buckets.resize(idx + 1, 0);
        }
        self.buckets[idx] += n;
        self.count += n;
        self.sum += v as u128 * n as u128;
        self.max = self.max.max(v);
    }

    /// Bucket-wise addition: associative, commutative, and therefore
    /// order- and thread-count-independent.
    pub fn merge(&mut self, other: &Hist) {
        if self.buckets.len() < other.buckets.len() {
            self.buckets.resize(other.buckets.len(), 0);
        }
        for (i, c) in other.buckets.iter().enumerate() {
            self.buckets[i] += c;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact sum of recorded values.
    pub fn sum(&self) -> u128 {
        self.sum
    }

    /// Exact maximum recorded value (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean of recorded values (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Nearest-rank percentile, `p` in `[0, 1]`: the upper bound of the
    /// bucket holding the `ceil(p * count)`-th smallest value. For a true
    /// percentile `v` the returned estimate `e` satisfies
    /// `v <= e <= v + 1 + v / SUB`. Returns the exact max for `p >= 1`
    /// and 0 for an empty histogram.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        if p >= 1.0 {
            return self.max;
        }
        let rank = ((p * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                // The max lives in the last non-empty bucket; never report
                // past it (the bucket upper can exceed the true max).
                return upper_of(i).min(self.max);
            }
        }
        self.max
    }

    /// Non-empty buckets as `(upper_bound, count)` pairs in ascending
    /// order — the full-resolution view serializations use.
    pub fn buckets(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.buckets.iter().enumerate().filter(|(_, c)| **c > 0).map(|(i, c)| (upper_of(i), *c))
    }

    /// Octave-granularity buckets `(upper, count)`: counts coalesced under
    /// power-of-two upper bounds. This is the compact form Prometheus
    /// exposition uses (~64 buckets max instead of ~1000).
    pub fn octave_buckets(&self) -> Vec<(u64, u64)> {
        let mut out: Vec<(u64, u64)> = Vec::new();
        for (upper, c) in self.buckets() {
            let oct = if upper <= 1 { upper } else { upper.next_power_of_two() };
            match out.last_mut() {
                Some((u, n)) if *u == oct => *n += c,
                _ => out.push((oct, c)),
            }
        }
        out
    }

    /// Emit this histogram through the existing Prometheus writer as a
    /// `histogram` family (`_bucket`/`_sum`/`_count`), octave-granularity,
    /// with every recorded value scaled by `scale` (e.g. `1e-9` to expose
    /// nanosecond recordings in seconds, per Prometheus convention).
    pub fn prom(&self, p: &mut PromText, name: &str, help: &str, scale: f64) {
        let (uppers, counts): (Vec<f64>, Vec<u64>) =
            self.octave_buckets().into_iter().map(|(u, c)| (u as f64 * scale, c)).unzip();
        p.histogram(name, help, &uppers, &counts, self.sum as f64 * scale);
    }

    /// Compact JSON summary: count, sum, p50/p90/p99/max (scaled by
    /// `scale` into the caller's unit), plus octave buckets.
    pub fn to_json(&self, scale: f64) -> String {
        let mut buckets = crate::json::JsonArray::new();
        for (u, c) in self.octave_buckets() {
            buckets = buckets.raw(&format!("[{},{}]", crate::json::number(u as f64 * scale), c));
        }
        JsonObject::new()
            .u64("count", self.count)
            .f64("sum", self.sum as f64 * scale)
            .f64("p50", self.percentile(0.50) as f64 * scale)
            .f64("p90", self.percentile(0.90) as f64 * scale)
            .f64("p99", self.percentile(0.99) as f64 * scale)
            .f64("max", self.max as f64 * scale)
            .raw("buckets", &buckets.finish())
            .finish()
    }

    /// Canonical byte serialization of the full state. Two histograms fed
    /// the same value multiset — in any order, across any sharding —
    /// produce identical strings; the determinism proptests pin this.
    pub fn encode(&self) -> String {
        let mut s = format!("count={} sum={} max={};", self.count, self.sum, self.max);
        for (i, c) in self.buckets.iter().enumerate() {
            if *c > 0 {
                s.push_str(&format!("{i}:{c},"));
            }
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_are_exact() {
        let mut h = Hist::new();
        for v in 0..SUB {
            h.record(v);
        }
        for v in 0..SUB {
            assert_eq!(index_of(v), v as usize);
            assert_eq!(upper_of(v as usize), v);
        }
        assert_eq!(h.count(), SUB);
        assert_eq!(h.max(), SUB - 1);
    }

    #[test]
    fn index_and_upper_are_consistent() {
        for v in [0, 1, 15, 16, 17, 31, 32, 100, 1000, 123_456, u32::MAX as u64, u64::MAX / 2] {
            let idx = index_of(v);
            let upper = upper_of(idx);
            assert!(upper >= v, "upper {upper} < value {v}");
            // Relative bound: upper <= v + 1 + v/SUB.
            assert!(
                upper as u128 <= v as u128 + 1 + v as u128 / SUB as u128,
                "v={v} upper={upper}"
            );
            // Bucket ranges are contiguous: the upper of the previous
            // bucket is exactly one below this bucket's lower bound.
            if idx > 0 {
                assert!(upper_of(idx - 1) < v || index_of(upper_of(idx - 1)) == idx - 1);
            }
        }
    }

    #[test]
    fn buckets_partition_the_line() {
        // Every value up to a few octaves maps to exactly one bucket and
        // bucket uppers are strictly increasing.
        let mut prev = None;
        for idx in 0..(6 * SUB as usize) {
            let u = upper_of(idx);
            if let Some(p) = prev {
                assert!(u > p, "upper not increasing at {idx}");
            }
            assert_eq!(index_of(u), idx, "upper of {idx} maps back");
            prev = Some(u);
        }
    }

    #[test]
    fn percentile_of_uniform_range() {
        let mut h = Hist::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let p50 = h.percentile(0.5);
        assert!((500..=532).contains(&p50), "p50={p50}");
        let p99 = h.percentile(0.99);
        assert!((990..=1024).contains(&p99), "p99={p99}");
        assert_eq!(h.percentile(1.0), 1000);
        assert_eq!(h.max(), 1000);
        assert_eq!(h.sum(), 500_500);
    }

    #[test]
    fn merge_equals_sequential() {
        let mut a = Hist::new();
        let mut b = Hist::new();
        let mut all = Hist::new();
        for v in [3u64, 99, 64, 12_000, 7, 99, 1_000_000] {
            all.record(v);
        }
        for v in [3u64, 99, 64] {
            a.record(v);
        }
        for v in [12_000u64, 7, 99, 1_000_000] {
            b.record(v);
        }
        a.merge(&b);
        assert_eq!(a, all);
        assert_eq!(a.encode(), all.encode());
    }

    #[test]
    fn empty_histogram_is_quiet() {
        let h = Hist::new();
        assert_eq!(h.percentile(0.5), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.octave_buckets(), vec![]);
    }

    #[test]
    fn prom_exposition_validates_and_is_monotone() {
        let mut h = Hist::new();
        for v in [5u64, 17, 300, 300, 4096, 70_000] {
            h.record(v);
        }
        let mut p = PromText::new();
        h.prom(&mut p, "cdb_phase_seconds", "phase latency", 1e-9);
        let text = p.finish();
        crate::prom::validate_exposition(&text).unwrap();
        assert!(text.contains("le=\"+Inf\""));
        // Cumulative counts never decrease.
        let mut last = 0u64;
        for line in text.lines().filter(|l| l.starts_with("cdb_phase_seconds_bucket")) {
            let v: f64 = line.rsplit(' ').next().unwrap().parse().unwrap();
            assert!(v as u64 >= last, "bucket counts must be cumulative: {line}");
            last = v as u64;
        }
        assert_eq!(last, 6);
    }

    #[test]
    fn json_summary_is_balanced() {
        let mut h = Hist::new();
        h.record_n(250, 10);
        let j = h.to_json(1e-3);
        crate::json::check_balanced(&j).unwrap();
        assert!(j.contains("\"count\":10"));
    }
}
