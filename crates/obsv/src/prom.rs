//! Prometheus text-format exposition (and a line-format validator).
//!
//! Writes the [text-based exposition format]: `# HELP` / `# TYPE`
//! comments, `name{label="value"} number` samples, histogram `_bucket` /
//! `_sum` / `_count` triples with a trailing `+Inf` bucket. The validator
//! re-checks the grammar line by line — it is what the CI smoke script
//! calls, so a regression in the writer fails fast and close to the bug.
//!
//! [text-based exposition format]:
//! https://prometheus.io/docs/instrumenting/exposition_formats/

use std::fmt::Write;

/// Builder for a Prometheus text exposition.
#[derive(Debug, Default)]
pub struct PromText {
    buf: String,
}

fn escape_label(v: &str) -> String {
    v.replace('\\', "\\\\").replace('"', "\\\"").replace('\n', "\\n")
}

fn render_labels(labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let inner: Vec<String> =
        labels.iter().map(|(k, v)| format!("{k}=\"{}\"", escape_label(v))).collect();
    format!("{{{}}}", inner.join(","))
}

fn render_value(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v == f64::INFINITY {
        "+Inf".to_string()
    } else if v == f64::NEG_INFINITY {
        "-Inf".to_string()
    } else {
        format!("{v}")
    }
}

impl PromText {
    /// Start an empty exposition.
    pub fn new() -> Self {
        PromText::default()
    }

    fn header(&mut self, name: &str, help: &str, kind: &str) {
        let _ = writeln!(self.buf, "# HELP {name} {help}");
        let _ = writeln!(self.buf, "# TYPE {name} {kind}");
    }

    fn sample(&mut self, name: &str, labels: &[(&str, &str)], value: f64) {
        let _ = writeln!(self.buf, "{name}{} {}", render_labels(labels), render_value(value));
    }

    /// Emit a counter.
    pub fn counter(&mut self, name: &str, help: &str, value: u64) {
        self.header(name, help, "counter");
        self.sample(name, &[], value as f64);
    }

    /// Emit a labelled counter family (one HELP/TYPE, one sample per
    /// label set).
    pub fn counter_family(&mut self, name: &str, help: &str, samples: &[(Vec<(&str, &str)>, u64)]) {
        self.header(name, help, "counter");
        for (labels, value) in samples {
            self.sample(name, labels, *value as f64);
        }
    }

    /// Emit a gauge.
    pub fn gauge(&mut self, name: &str, help: &str, value: f64) {
        self.header(name, help, "gauge");
        self.sample(name, &[], value);
    }

    /// Emit a histogram from raw bucket counts. `uppers[i]` is the
    /// inclusive upper bound of `counts[i]`; counts are per-bucket (not
    /// cumulative — this fn accumulates). A `+Inf` bucket equal to the
    /// total is appended unless the caller's last bound is already
    /// `f64::INFINITY` (an open-ended final bucket), plus `_sum` and
    /// `_count`.
    pub fn histogram(&mut self, name: &str, help: &str, uppers: &[f64], counts: &[u64], sum: f64) {
        assert_eq!(uppers.len(), counts.len(), "bucket bound/count mismatch");
        self.header(name, help, "histogram");
        let mut cumulative = 0u64;
        let bucket = format!("{name}_bucket");
        for (u, c) in uppers.iter().zip(counts) {
            cumulative += c;
            let upper = render_value(*u);
            self.sample(&bucket, &[("le", &upper)], cumulative as f64);
        }
        if uppers.last().copied() != Some(f64::INFINITY) {
            self.sample(&bucket, &[("le", "+Inf")], cumulative as f64);
        }
        self.sample(&format!("{name}_sum"), &[], sum);
        self.sample(&format!("{name}_count"), &[], cumulative as f64);
    }

    /// The exposition text.
    pub fn finish(self) -> String {
        self.buf
    }
}

/// Validate Prometheus text-format exposition line by line. Checks:
/// comment grammar, metric-name and label syntax, parseable sample
/// values, and that every sample's base name was declared by a preceding
/// `# TYPE`. Returns the first offending line on error.
pub fn validate_exposition(text: &str) -> Result<(), String> {
    fn valid_name(s: &str) -> bool {
        !s.is_empty()
            && s.chars().next().is_some_and(|c| c.is_ascii_alphabetic() || c == '_' || c == ':')
            && s.chars().all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
    }

    let mut typed: Vec<String> = Vec::new();
    let mut samples = 0usize;
    for (ln, line) in text.lines().enumerate() {
        let ln = ln + 1;
        if line.trim().is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# ") {
            let mut parts = rest.splitn(3, ' ');
            let keyword = parts.next().unwrap_or("");
            match keyword {
                "HELP" => {
                    let name = parts.next().unwrap_or("");
                    if !valid_name(name) {
                        return Err(format!("line {ln}: bad HELP metric name '{name}'"));
                    }
                }
                "TYPE" => {
                    let name = parts.next().unwrap_or("");
                    let kind = parts.next().unwrap_or("");
                    if !valid_name(name) {
                        return Err(format!("line {ln}: bad TYPE metric name '{name}'"));
                    }
                    if !matches!(kind, "counter" | "gauge" | "histogram" | "summary" | "untyped") {
                        return Err(format!("line {ln}: unknown metric type '{kind}'"));
                    }
                    typed.push(name.to_string());
                }
                _ => return Err(format!("line {ln}: unknown comment keyword '{keyword}'")),
            }
            continue;
        }
        if line.starts_with('#') {
            // Bare comment without space: tolerated by Prometheus, but our
            // writer never produces it — flag it.
            return Err(format!("line {ln}: comment must start with '# '"));
        }
        // Sample line: name[{labels}] value
        let (name_part, value_part) = match line.rsplit_once(' ') {
            Some(t) => t,
            None => return Err(format!("line {ln}: sample has no value")),
        };
        let name = match name_part.split_once('{') {
            Some((n, rest)) => {
                if !rest.ends_with('}') {
                    return Err(format!("line {ln}: unterminated label set"));
                }
                let labels = &rest[..rest.len() - 1];
                // label="value",label="value"
                let mut rem = labels;
                while !rem.is_empty() {
                    let eq = match rem.find("=\"") {
                        Some(p) => p,
                        None => return Err(format!("line {ln}: malformed label in '{labels}'")),
                    };
                    let lname = &rem[..eq];
                    if !valid_name(lname) {
                        return Err(format!("line {ln}: bad label name '{lname}'"));
                    }
                    // Find the closing unescaped quote.
                    let mut close = None;
                    let bytes = rem.as_bytes();
                    let mut i = eq + 2;
                    let mut esc = false;
                    while i < bytes.len() {
                        if esc {
                            esc = false;
                        } else if bytes[i] == b'\\' {
                            esc = true;
                        } else if bytes[i] == b'"' {
                            close = Some(i);
                            break;
                        }
                        i += 1;
                    }
                    let close = match close {
                        Some(c) => c,
                        None => return Err(format!("line {ln}: unterminated label value")),
                    };
                    rem = &rem[close + 1..];
                    rem = rem.strip_prefix(',').unwrap_or(rem);
                }
                n
            }
            None => name_part,
        };
        if !valid_name(name) {
            return Err(format!("line {ln}: bad metric name '{name}'"));
        }
        let v = value_part.trim();
        let numeric_ok = matches!(v, "+Inf" | "-Inf" | "NaN") || v.parse::<f64>().is_ok();
        if !numeric_ok {
            return Err(format!("line {ln}: unparseable value '{v}'"));
        }
        // A histogram sample's base name strips _bucket/_sum/_count.
        let base = name
            .strip_suffix("_bucket")
            .or_else(|| name.strip_suffix("_sum"))
            .or_else(|| name.strip_suffix("_count"))
            .unwrap_or(name);
        if !typed.iter().any(|t| t == name || t == base) {
            return Err(format!("line {ln}: sample '{name}' has no preceding # TYPE"));
        }
        samples += 1;
    }
    if samples == 0 {
        return Err("no samples in exposition".to_string());
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_round_trip() {
        let mut p = PromText::new();
        p.counter("cdb_tasks_dispatched_total", "Assignments dispatched.", 42);
        p.gauge("cdb_drop_ratio", "Ring drop ratio.", 0.25);
        let text = p.finish();
        assert!(text.contains("# TYPE cdb_tasks_dispatched_total counter"));
        assert!(text.contains("cdb_tasks_dispatched_total 42"));
        assert!(text.contains("cdb_drop_ratio 0.25"));
        validate_exposition(&text).unwrap();
    }

    #[test]
    fn histogram_is_cumulative_with_inf_bucket() {
        let mut p = PromText::new();
        p.histogram("cdb_round_ms", "Round latency.", &[1.0, 2.0, 4.0], &[3, 0, 2], 11.0);
        let text = p.finish();
        validate_exposition(&text).unwrap();
        assert!(text.contains("cdb_round_ms_bucket{le=\"1\"} 3"));
        assert!(text.contains("cdb_round_ms_bucket{le=\"2\"} 3"));
        assert!(text.contains("cdb_round_ms_bucket{le=\"4\"} 5"));
        assert!(text.contains("cdb_round_ms_bucket{le=\"+Inf\"} 5"));
        assert!(text.contains("cdb_round_ms_sum 11"));
        assert!(text.contains("cdb_round_ms_count 5"));
    }

    #[test]
    fn open_ended_final_bucket_is_the_inf_bucket() {
        let mut p = PromText::new();
        p.histogram("m", "open-ended.", &[1.0, f64::INFINITY], &[2, 3], 9.0);
        let text = p.finish();
        validate_exposition(&text).unwrap();
        assert_eq!(text.matches("le=\"+Inf\"").count(), 1);
        assert!(text.contains("m_bucket{le=\"+Inf\"} 5"));
        assert!(text.contains("m_count 5"));
    }

    #[test]
    fn counter_family_shares_one_header() {
        let mut p = PromText::new();
        p.counter_family(
            "cdb_faults_total",
            "Faults by kind.",
            &[(vec![("kind", "dropout")], 3), (vec![("kind", "abandoned")], 1)],
        );
        let text = p.finish();
        validate_exposition(&text).unwrap();
        assert_eq!(text.matches("# TYPE cdb_faults_total").count(), 1);
        assert!(text.contains("cdb_faults_total{kind=\"dropout\"} 3"));
    }

    #[test]
    fn validator_rejects_garbage() {
        assert!(validate_exposition("").is_err());
        assert!(validate_exposition("just words\n").is_err());
        assert!(validate_exposition("# BOGUS x y\n").is_err());
        // Sample without a TYPE declaration.
        assert!(validate_exposition("orphan_metric 1\n").is_err());
        // Unterminated label set.
        let bad = "# HELP m h\n# TYPE m counter\nm{kind=\"x 1\n";
        assert!(validate_exposition(bad).is_err());
        // Unparseable value.
        let bad2 = "# HELP m h\n# TYPE m counter\nm forty-two\n";
        assert!(validate_exposition(bad2).is_err());
    }

    #[test]
    fn label_escaping_validates() {
        let mut p = PromText::new();
        p.counter_family("m", "has \"quotes\".", &[(vec![("k", "a\"b\\c")], 1)]);
        validate_exposition(&p.finish()).unwrap();
    }
}
