//! A tiny hand-rolled JSON writer (and checker).
//!
//! The workspace's vendored `serde` is an API stub that cannot actually
//! serialize, so every crate that needed JSON grew its own `format!`
//! string. This module is the single shared emitter: `RuntimeMetrics`
//! snapshots, the `figures` binary, and the Chrome trace writer all build
//! on it. Output is minified, key order is insertion order (stable), and
//! floats use Rust's shortest round-trippable formatting.

use std::fmt::Write;

/// Escape a string per JSON rules.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Render an `f64` as a JSON number (JSON has no NaN/Inf; those become
/// `null`, matching what lenient parsers expect).
pub fn number(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// Builder for a JSON object. Values passed to `raw` must already be
/// valid JSON fragments (nested builders' `finish()` output qualifies).
#[derive(Debug, Default)]
pub struct JsonObject {
    buf: String,
    first: bool,
}

impl JsonObject {
    /// Start an object.
    pub fn new() -> Self {
        JsonObject { buf: String::from("{"), first: true }
    }

    fn key(&mut self, key: &str) {
        if !self.first {
            self.buf.push(',');
        }
        self.first = false;
        let _ = write!(self.buf, "\"{}\":", escape(key));
    }

    /// Add a string field.
    pub fn str(mut self, key: &str, value: &str) -> Self {
        self.key(key);
        let _ = write!(self.buf, "\"{}\"", escape(value));
        self
    }

    /// Add an unsigned integer field.
    pub fn u64(mut self, key: &str, value: u64) -> Self {
        self.key(key);
        let _ = write!(self.buf, "{value}");
        self
    }

    /// Add a signed integer field.
    pub fn i64(mut self, key: &str, value: i64) -> Self {
        self.key(key);
        let _ = write!(self.buf, "{value}");
        self
    }

    /// Add a float field.
    pub fn f64(mut self, key: &str, value: f64) -> Self {
        self.key(key);
        self.buf.push_str(&number(value));
        self
    }

    /// Add a boolean field.
    pub fn bool(mut self, key: &str, value: bool) -> Self {
        self.key(key);
        self.buf.push_str(if value { "true" } else { "false" });
        self
    }

    /// Add a pre-rendered JSON fragment (nested object/array).
    pub fn raw(mut self, key: &str, fragment: &str) -> Self {
        self.key(key);
        self.buf.push_str(fragment);
        self
    }

    /// Close the object and return the JSON text.
    pub fn finish(mut self) -> String {
        self.buf.push('}');
        self.buf
    }
}

/// Builder for a JSON array.
#[derive(Debug, Default)]
pub struct JsonArray {
    buf: String,
    first: bool,
}

impl JsonArray {
    /// Start an array.
    pub fn new() -> Self {
        JsonArray { buf: String::from("["), first: true }
    }

    fn sep(&mut self) {
        if !self.first {
            self.buf.push(',');
        }
        self.first = false;
    }

    /// Append an unsigned integer element.
    pub fn u64(mut self, value: u64) -> Self {
        self.sep();
        let _ = write!(self.buf, "{value}");
        self
    }

    /// Append a float element.
    pub fn f64(mut self, value: f64) -> Self {
        self.sep();
        self.buf.push_str(&number(value));
        self
    }

    /// Append a string element.
    pub fn str(mut self, value: &str) -> Self {
        self.sep();
        let _ = write!(self.buf, "\"{}\"", escape(value));
        self
    }

    /// Append a pre-rendered JSON fragment.
    pub fn raw(mut self, fragment: &str) -> Self {
        self.sep();
        self.buf.push_str(fragment);
        self
    }

    /// Close the array and return the JSON text.
    pub fn finish(mut self) -> String {
        self.buf.push(']');
        self.buf
    }
}

/// Check that `text` is structurally valid JSON: balanced braces/brackets
/// outside strings, proper string escapes, non-empty. Not a full parser —
/// a cheap guard for tests and the CI smoke script against emitter bugs.
pub fn check_balanced(text: &str) -> Result<(), String> {
    let mut stack: Vec<char> = Vec::new();
    let mut in_string = false;
    let mut escaped = false;
    let mut saw_value = false;
    for (i, c) in text.char_indices() {
        if in_string {
            if escaped {
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                in_string = false;
            }
            continue;
        }
        match c {
            '"' => {
                in_string = true;
                saw_value = true;
            }
            '{' | '[' => {
                stack.push(c);
                saw_value = true;
            }
            '}' => {
                if stack.pop() != Some('{') {
                    return Err(format!("unbalanced '}}' at byte {i}"));
                }
            }
            ']' => {
                if stack.pop() != Some('[') {
                    return Err(format!("unbalanced ']' at byte {i}"));
                }
            }
            _ => {
                if !c.is_whitespace() {
                    saw_value = true;
                }
            }
        }
    }
    if in_string {
        return Err("unterminated string".to_string());
    }
    if let Some(open) = stack.pop() {
        return Err(format!("unclosed '{open}'"));
    }
    if !saw_value {
        return Err("empty document".to_string());
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn object_builder_matches_hand_written_form() {
        let s = JsonObject::new()
            .u64("tasks", 12)
            .f64("rate", 0.5)
            .str("name", "fleet")
            .bool("ok", true)
            .finish();
        assert_eq!(s, r#"{"tasks":12,"rate":0.5,"name":"fleet","ok":true}"#);
        check_balanced(&s).unwrap();
    }

    #[test]
    fn nested_raw_and_arrays() {
        let inner = JsonArray::new().u64(1).u64(2).u64(3).finish();
        let s = JsonObject::new().raw("hist", &inner).i64("delta", -4).finish();
        assert_eq!(s, r#"{"hist":[1,2,3],"delta":-4}"#);
        check_balanced(&s).unwrap();
    }

    #[test]
    fn escaping() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
        let s = JsonObject::new().str("k", "he said \"hi\"").finish();
        check_balanced(&s).unwrap();
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(number(f64::NAN), "null");
        assert_eq!(number(f64::INFINITY), "null");
        assert_eq!(number(2.5), "2.5");
    }

    #[test]
    fn empty_containers() {
        assert_eq!(JsonObject::new().finish(), "{}");
        assert_eq!(JsonArray::new().finish(), "[]");
        check_balanced("{}").unwrap();
        check_balanced("[]").unwrap();
    }

    #[test]
    fn checker_catches_breakage() {
        assert!(check_balanced(r#"{"a":1"#).is_err());
        assert!(check_balanced(r#"{"a":1]}"#).is_err());
        assert!(check_balanced(r#""unterminated"#).is_err());
        assert!(check_balanced("   ").is_err());
        // Braces inside strings don't count.
        check_balanced(r#"{"a":"}{"}"#).unwrap();
    }
}
