//! A tiny hand-rolled JSON writer (and checker).
//!
//! The workspace's vendored `serde` is an API stub that cannot actually
//! serialize, so every crate that needed JSON grew its own `format!`
//! string. This module is the single shared emitter: `RuntimeMetrics`
//! snapshots, the `figures` binary, and the Chrome trace writer all build
//! on it. Output is minified, key order is insertion order (stable), and
//! floats use Rust's shortest round-trippable formatting.

use std::fmt::Write;

/// Escape a string per JSON rules.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Render an `f64` as a JSON number (JSON has no NaN/Inf; those become
/// `null`, matching what lenient parsers expect).
pub fn number(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// Builder for a JSON object. Values passed to `raw` must already be
/// valid JSON fragments (nested builders' `finish()` output qualifies).
#[derive(Debug, Default)]
pub struct JsonObject {
    buf: String,
    first: bool,
}

impl JsonObject {
    /// Start an object.
    pub fn new() -> Self {
        JsonObject { buf: String::from("{"), first: true }
    }

    fn key(&mut self, key: &str) {
        if !self.first {
            self.buf.push(',');
        }
        self.first = false;
        let _ = write!(self.buf, "\"{}\":", escape(key));
    }

    /// Add a string field.
    pub fn str(mut self, key: &str, value: &str) -> Self {
        self.key(key);
        let _ = write!(self.buf, "\"{}\"", escape(value));
        self
    }

    /// Add an unsigned integer field.
    pub fn u64(mut self, key: &str, value: u64) -> Self {
        self.key(key);
        let _ = write!(self.buf, "{value}");
        self
    }

    /// Add a signed integer field.
    pub fn i64(mut self, key: &str, value: i64) -> Self {
        self.key(key);
        let _ = write!(self.buf, "{value}");
        self
    }

    /// Add a float field.
    pub fn f64(mut self, key: &str, value: f64) -> Self {
        self.key(key);
        self.buf.push_str(&number(value));
        self
    }

    /// Add a boolean field.
    pub fn bool(mut self, key: &str, value: bool) -> Self {
        self.key(key);
        self.buf.push_str(if value { "true" } else { "false" });
        self
    }

    /// Add a pre-rendered JSON fragment (nested object/array).
    pub fn raw(mut self, key: &str, fragment: &str) -> Self {
        self.key(key);
        self.buf.push_str(fragment);
        self
    }

    /// Close the object and return the JSON text.
    pub fn finish(mut self) -> String {
        self.buf.push('}');
        self.buf
    }
}

/// Builder for a JSON array.
#[derive(Debug, Default)]
pub struct JsonArray {
    buf: String,
    first: bool,
}

impl JsonArray {
    /// Start an array.
    pub fn new() -> Self {
        JsonArray { buf: String::from("["), first: true }
    }

    fn sep(&mut self) {
        if !self.first {
            self.buf.push(',');
        }
        self.first = false;
    }

    /// Append an unsigned integer element.
    pub fn u64(mut self, value: u64) -> Self {
        self.sep();
        let _ = write!(self.buf, "{value}");
        self
    }

    /// Append a float element.
    pub fn f64(mut self, value: f64) -> Self {
        self.sep();
        self.buf.push_str(&number(value));
        self
    }

    /// Append a string element.
    pub fn str(mut self, value: &str) -> Self {
        self.sep();
        let _ = write!(self.buf, "\"{}\"", escape(value));
        self
    }

    /// Append a pre-rendered JSON fragment.
    pub fn raw(mut self, fragment: &str) -> Self {
        self.sep();
        self.buf.push_str(fragment);
        self
    }

    /// Close the array and return the JSON text.
    pub fn finish(mut self) -> String {
        self.buf.push(']');
        self.buf
    }
}

/// Check that `text` is structurally valid JSON: balanced braces/brackets
/// outside strings, proper string escapes, non-empty. Not a full parser —
/// a cheap guard for tests and the CI smoke script against emitter bugs.
pub fn check_balanced(text: &str) -> Result<(), String> {
    let mut stack: Vec<char> = Vec::new();
    let mut in_string = false;
    let mut escaped = false;
    let mut saw_value = false;
    for (i, c) in text.char_indices() {
        if in_string {
            if escaped {
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                in_string = false;
            }
            continue;
        }
        match c {
            '"' => {
                in_string = true;
                saw_value = true;
            }
            '{' | '[' => {
                stack.push(c);
                saw_value = true;
            }
            '}' => {
                if stack.pop() != Some('{') {
                    return Err(format!("unbalanced '}}' at byte {i}"));
                }
            }
            ']' => {
                if stack.pop() != Some('[') {
                    return Err(format!("unbalanced ']' at byte {i}"));
                }
            }
            _ => {
                if !c.is_whitespace() {
                    saw_value = true;
                }
            }
        }
    }
    if in_string {
        return Err("unterminated string".to_string());
    }
    if let Some(open) = stack.pop() {
        return Err(format!("unclosed '{open}'"));
    }
    if !saw_value {
        return Err("empty document".to_string());
    }
    Ok(())
}

/// A parsed JSON value.
///
/// The vendored `serde` stand-in cannot deserialize, so tools that *read*
/// JSON artifacts back (the `cdb-bench compare` regression gate diffing
/// two committed `BENCH_*.json` files) use this small recursive-descent
/// parser instead. Object keys keep insertion order — the diff tool's
/// structural comparison reports drift in a stable order.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (parsed as `f64`; the artifacts' integers fit exactly).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in document key order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Look up a key of an object (None for other variants).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(kvs) => kvs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(a) => Some(a),
            _ => None,
        }
    }
}

/// Parse a JSON document. Errors carry a byte offset and a short reason.
pub fn parse(text: &str) -> Result<Json, String> {
    let b = text.as_bytes();
    let mut p = Parser { b, i: 0 };
    p.ws();
    let v = p.value()?;
    p.ws();
    if p.i != b.len() {
        return Err(format!("trailing input at byte {}", p.i));
    }
    Ok(v)
}

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

impl Parser<'_> {
    fn ws(&mut self) {
        while self.i < self.b.len() && matches!(self.b[self.i], b' ' | b'\t' | b'\n' | b'\r') {
            self.i += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.b.get(self.i).copied()
    }

    fn expect(&mut self, c: u8) -> Result<(), String> {
        if self.peek() == Some(c) {
            self.i += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", c as char, self.i))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.i)),
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.b[self.i..].starts_with(word.as_bytes()) {
            self.i += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.i))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.i;
        if self.peek() == Some(b'-') {
            self.i += 1;
        }
        while self
            .peek()
            .is_some_and(|c| c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.i += 1;
        }
        std::str::from_utf8(&self.b[start..self.i])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Json::Num)
            .ok_or_else(|| format!("bad number at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.i += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.i += 1;
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.i += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            if self.i + 4 > self.b.len() {
                                return Err("truncated \\u escape".into());
                            }
                            let hex = std::str::from_utf8(&self.b[self.i..self.i + 4])
                                .map_err(|_| "bad \\u escape")?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| format!("bad \\u escape at byte {}", self.i))?;
                            self.i += 4;
                            // Surrogates aren't produced by our writers;
                            // map unpaired ones to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        c => {
                            return Err(format!("bad escape '\\{}' at byte {}", c as char, self.i))
                        }
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (multi-byte safe).
                    let rest = std::str::from_utf8(&self.b[self.i..])
                        .map_err(|_| "invalid utf-8 in string")?;
                    let ch = rest.chars().next().ok_or("unterminated string")?;
                    out.push(ch);
                    self.i += ch.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut out = Vec::new();
        self.ws();
        if self.peek() == Some(b']') {
            self.i += 1;
            return Ok(Json::Arr(out));
        }
        loop {
            self.ws();
            out.push(self.value()?);
            self.ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b']') => {
                    self.i += 1;
                    return Ok(Json::Arr(out));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.i)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut out = Vec::new();
        self.ws();
        if self.peek() == Some(b'}') {
            self.i += 1;
            return Ok(Json::Obj(out));
        }
        loop {
            self.ws();
            let key = self.string()?;
            self.ws();
            self.expect(b':')?;
            self.ws();
            let val = self.value()?;
            out.push((key, val));
            self.ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    return Ok(Json::Obj(out));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.i)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn object_builder_matches_hand_written_form() {
        let s = JsonObject::new()
            .u64("tasks", 12)
            .f64("rate", 0.5)
            .str("name", "fleet")
            .bool("ok", true)
            .finish();
        assert_eq!(s, r#"{"tasks":12,"rate":0.5,"name":"fleet","ok":true}"#);
        check_balanced(&s).unwrap();
    }

    #[test]
    fn nested_raw_and_arrays() {
        let inner = JsonArray::new().u64(1).u64(2).u64(3).finish();
        let s = JsonObject::new().raw("hist", &inner).i64("delta", -4).finish();
        assert_eq!(s, r#"{"hist":[1,2,3],"delta":-4}"#);
        check_balanced(&s).unwrap();
    }

    #[test]
    fn escaping() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
        let s = JsonObject::new().str("k", "he said \"hi\"").finish();
        check_balanced(&s).unwrap();
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(number(f64::NAN), "null");
        assert_eq!(number(f64::INFINITY), "null");
        assert_eq!(number(2.5), "2.5");
    }

    #[test]
    fn empty_containers() {
        assert_eq!(JsonObject::new().finish(), "{}");
        assert_eq!(JsonArray::new().finish(), "[]");
        check_balanced("{}").unwrap();
        check_balanced("[]").unwrap();
    }

    #[test]
    fn checker_catches_breakage() {
        assert!(check_balanced(r#"{"a":1"#).is_err());
        assert!(check_balanced(r#"{"a":1]}"#).is_err());
        assert!(check_balanced(r#""unterminated"#).is_err());
        assert!(check_balanced("   ").is_err());
        // Braces inside strings don't count.
        check_balanced(r#"{"a":"}{"}"#).unwrap();
    }

    #[test]
    fn parser_round_trips_writer_output() {
        let doc = JsonObject::new()
            .str("bench", "perf")
            .u64("seed", 42)
            .f64("ms", 12.75)
            .i64("delta", -3)
            .bool("quick", false)
            .raw("phases", &JsonArray::new().u64(1).str("a\"b").raw("null").finish())
            .finish();
        let v = parse(&doc).unwrap();
        assert_eq!(v.get("bench").unwrap().as_str(), Some("perf"));
        assert_eq!(v.get("seed").unwrap().as_num(), Some(42.0));
        assert_eq!(v.get("ms").unwrap().as_num(), Some(12.75));
        assert_eq!(v.get("delta").unwrap().as_num(), Some(-3.0));
        assert_eq!(v.get("quick"), Some(&Json::Bool(false)));
        let arr = v.get("phases").unwrap().as_arr().unwrap();
        assert_eq!(arr, &[Json::Num(1.0), Json::Str("a\"b".into()), Json::Null]);
    }

    #[test]
    fn parser_keeps_object_key_order() {
        let v = parse(r#"{"z":1,"a":2,"m":3}"#).unwrap();
        let Json::Obj(kvs) = v else { panic!() };
        assert_eq!(kvs.iter().map(|(k, _)| k.as_str()).collect::<Vec<_>>(), vec!["z", "a", "m"]);
    }

    #[test]
    fn parser_handles_nesting_whitespace_and_escapes() {
        let v = parse(" { \"a\" : [ { \"b\" : \"x\\ny\\u0041\" } , 1e3 , -2.5 ] } ").unwrap();
        let a = v.get("a").unwrap().as_arr().unwrap();
        assert_eq!(a[0].get("b").unwrap().as_str(), Some("x\nyA"));
        assert_eq!(a[1].as_num(), Some(1000.0));
        assert_eq!(a[2].as_num(), Some(-2.5));
    }

    #[test]
    fn parser_rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "{\"a\" 1}",
            "tru",
            "\"unterminated",
            "{} trailing",
            "{\"a\":1,}",
        ] {
            assert!(parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn parser_accepts_real_bench_artifacts() {
        // The committed BENCH_store.json shape (trimmed).
        let doc = r#"{"bench":"store","seed":42,"recovery":[{"queries":100,"ms":16.35}]}"#;
        let v = parse(doc).unwrap();
        assert_eq!(
            v.get("recovery").unwrap().as_arr().unwrap()[0].get("queries").unwrap().as_num(),
            Some(100.0)
        );
    }
}
