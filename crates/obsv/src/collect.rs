//! Event collection: the [`Collector`] trait, the cheap [`Trace`] handle,
//! context injection, fan-out, and the lock-free bounded [`Ring`].
//!
//! Design constraints, in order:
//! 1. **Never block the work-stealing pool.** The ring is a Vyukov-style
//!    bounded MPMC queue: producers CAS a ticket and write their slot; a
//!    full ring *drops* the event and bumps a counter instead of waiting.
//! 2. **Zero cost when off.** `Trace::off()` holds `None` — the emit path
//!    is one branch on an `Option`, no virtual call, no allocation.
//! 3. **Determinism.** Collectors only ever see `&Event`; nothing here
//!    introduces ordering or identity that differs between replays.

use crate::event::{Event, KvList};
use crate::span::{Span, SpanId};
use std::cell::UnsafeCell;
use std::fmt;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// A sink for events. Implementations must be cheap and non-blocking —
/// they run inline on the hot paths of the runtime.
pub trait Collector: Send + Sync {
    /// Record one event. Must not block.
    fn record(&self, event: &Event);
}

/// A collector that ignores everything (useful as an explicit sink in
/// tests; the usual "off" path is `Trace::off()`, which skips the call
/// entirely).
#[derive(Debug, Default, Clone, Copy)]
pub struct Noop;

impl Collector for Noop {
    fn record(&self, _event: &Event) {}
}

/// Duplicate events to several collectors (e.g. `RuntimeMetrics` + a
/// ring for the Chrome trace).
pub struct Fanout {
    sinks: Vec<Arc<dyn Collector>>,
}

impl Fanout {
    /// Fan out to `sinks`.
    pub fn new(sinks: Vec<Arc<dyn Collector>>) -> Self {
        Fanout { sinks }
    }
}

impl Collector for Fanout {
    fn record(&self, event: &Event) {
        for s in &self.sinks {
            s.record(event);
        }
    }
}

impl fmt::Debug for Fanout {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Fanout").field("sinks", &self.sinks.len()).finish()
    }
}

/// The handle the instrumented code holds: either off (free) or an
/// `Arc<dyn Collector>`. Cloning is a refcount bump; `Debug` and
/// `Default` make it embeddable in config structs.
#[derive(Clone, Default)]
pub struct Trace {
    sink: Option<Arc<dyn Collector>>,
}

impl Trace {
    /// Tracing disabled: `emit` is a single `Option` branch.
    pub fn off() -> Trace {
        Trace { sink: None }
    }

    /// Trace into `collector`.
    pub fn collector(collector: Arc<dyn Collector>) -> Trace {
        Trace { sink: Some(collector) }
    }

    /// Whether any collector is attached.
    pub fn on(&self) -> bool {
        self.sink.is_some()
    }

    /// Combine with another trace: events go to both (no-ops collapse).
    pub fn and(&self, other: &Trace) -> Trace {
        match (&self.sink, &other.sink) {
            (None, None) => Trace::off(),
            (Some(_), None) => self.clone(),
            (None, Some(_)) => other.clone(),
            (Some(a), Some(b)) => {
                Trace::collector(Arc::new(Fanout::new(vec![a.clone(), b.clone()])))
            }
        }
    }

    /// Emit one event (no-op when off).
    #[inline]
    pub fn emit(&self, event: Event) {
        if let Some(sink) = &self.sink {
            sink.record(&event);
        }
    }

    /// Open a span under `parent` (see [`Span::enter`]).
    pub fn span(
        &self,
        parent: SpanId,
        name: &'static str,
        path: &[u64],
        at: u64,
        kv: KvList,
    ) -> Span {
        Span::enter(self, parent, name, path, at, kv)
    }

    /// Wrap this trace so every event gains `extra` kvs (existing keys are
    /// not overridden) and span ids are salted by `span_salt`. Off stays
    /// off. This is how per-query context (the `q` key) is injected once
    /// at query start instead of threaded through every call site.
    pub fn with_context(&self, extra: KvList, span_salt: u64) -> Trace {
        match &self.sink {
            None => Trace::off(),
            Some(sink) => {
                Trace::collector(Arc::new(WithContext { inner: sink.clone(), extra, span_salt }))
            }
        }
    }
}

impl fmt::Debug for Trace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Trace").field("on", &self.on()).finish()
    }
}

/// Collector wrapper injecting ambient context: appends missing kv pairs
/// and salts span ids so each query's spans live in a disjoint namespace.
pub struct WithContext {
    inner: Arc<dyn Collector>,
    extra: KvList,
    span_salt: u64,
}

impl WithContext {
    /// Wrap `inner`.
    pub fn new(inner: Arc<dyn Collector>, extra: KvList, span_salt: u64) -> Self {
        WithContext { inner, extra, span_salt }
    }
}

impl Collector for WithContext {
    fn record(&self, event: &Event) {
        let mut ev = *event;
        ev.span = ev.span.salted(self.span_salt);
        for (k, v) in self.extra.iter() {
            if !ev.kv.contains(k) {
                ev.kv.push(k, v);
            }
        }
        self.inner.record(&ev);
    }
}

impl fmt::Debug for WithContext {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("WithContext")
            .field("extra", &self.extra)
            .field("span_salt", &self.span_salt)
            .finish()
    }
}

const CACHE_LINE: usize = 64;

#[repr(align(64))]
struct Slot {
    /// Vyukov sequence number: `seq == pos` ⇒ writable, `seq == pos + 1`
    /// ⇒ readable, anything else ⇒ another producer/consumer owns it.
    seq: AtomicUsize,
    val: UnsafeCell<MaybeUninit<Event>>,
}

/// Lock-free bounded MPMC event buffer (Vyukov queue). `push` never
/// blocks: when the ring is full the event is counted in
/// [`Ring::dropped`] and discarded. Capacity is rounded up to a power of
/// two.
pub struct Ring {
    slots: Box<[Slot]>,
    mask: usize,
    // Head/tail on their own cache lines to avoid producer/consumer
    // false sharing.
    enqueue_pos: CachePadded,
    dequeue_pos: CachePadded,
    dropped: AtomicU64,
}

#[repr(align(64))]
struct CachePadded {
    pos: AtomicUsize,
    _pad: [u8; CACHE_LINE - std::mem::size_of::<AtomicUsize>()],
}

impl CachePadded {
    fn new() -> Self {
        CachePadded {
            pos: AtomicUsize::new(0),
            _pad: [0; CACHE_LINE - std::mem::size_of::<AtomicUsize>()],
        }
    }
}

// SAFETY: slots are only accessed through the sequence-number protocol —
// a thread touches `val` only while it exclusively owns the slot (its CAS
// on enqueue_pos/dequeue_pos succeeded and `seq` granted access).
unsafe impl Send for Ring {}
unsafe impl Sync for Ring {}

impl Ring {
    /// Create a ring holding at least `capacity` events (rounded up to a
    /// power of two, minimum 2).
    pub fn with_capacity(capacity: usize) -> Ring {
        let cap = capacity.max(2).next_power_of_two();
        let slots: Box<[Slot]> = (0..cap)
            .map(|i| Slot { seq: AtomicUsize::new(i), val: UnsafeCell::new(MaybeUninit::uninit()) })
            .collect();
        Ring {
            slots,
            mask: cap - 1,
            enqueue_pos: CachePadded::new(),
            dequeue_pos: CachePadded::new(),
            dropped: AtomicU64::new(0),
        }
    }

    /// Capacity (power of two).
    pub fn capacity(&self) -> usize {
        self.mask + 1
    }

    /// Try to append an event. Returns `false` (and counts the drop) if
    /// the ring is full. Never blocks, never spins unboundedly.
    pub fn push(&self, event: Event) -> bool {
        let mut pos = self.enqueue_pos.pos.load(Ordering::Relaxed);
        loop {
            let slot = &self.slots[pos & self.mask];
            let seq = slot.seq.load(Ordering::Acquire);
            let diff = seq as isize - pos as isize;
            if diff == 0 {
                // Slot free: claim it.
                match self.enqueue_pos.pos.compare_exchange_weak(
                    pos,
                    pos.wrapping_add(1),
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        // SAFETY: we own the slot until we publish seq.
                        unsafe { (*slot.val.get()).write(event) };
                        slot.seq.store(pos.wrapping_add(1), Ordering::Release);
                        return true;
                    }
                    Err(actual) => pos = actual,
                }
            } else if diff < 0 {
                // Full: drop rather than block.
                self.dropped.fetch_add(1, Ordering::Relaxed);
                return false;
            } else {
                // Another producer raced past us; reload.
                pos = self.enqueue_pos.pos.load(Ordering::Relaxed);
            }
        }
    }

    /// Pop the oldest event, if any.
    pub fn pop(&self) -> Option<Event> {
        let mut pos = self.dequeue_pos.pos.load(Ordering::Relaxed);
        loop {
            let slot = &self.slots[pos & self.mask];
            let seq = slot.seq.load(Ordering::Acquire);
            let diff = seq as isize - (pos.wrapping_add(1)) as isize;
            if diff == 0 {
                match self.dequeue_pos.pos.compare_exchange_weak(
                    pos,
                    pos.wrapping_add(1),
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        // SAFETY: we own the slot; the producer's Release
                        // store of seq made the write visible.
                        let ev = unsafe { (*slot.val.get()).assume_init_read() };
                        slot.seq.store(pos.wrapping_add(self.mask + 1), Ordering::Release);
                        return Some(ev);
                    }
                    Err(actual) => pos = actual,
                }
            } else if diff < 0 {
                return None;
            } else {
                pos = self.dequeue_pos.pos.load(Ordering::Relaxed);
            }
        }
    }

    /// Drain every buffered event in FIFO order.
    pub fn drain(&self) -> Vec<Event> {
        let mut out = Vec::new();
        while let Some(ev) = self.pop() {
            out.push(ev);
        }
        out
    }

    /// Number of events discarded because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Approximate number of buffered events.
    pub fn len(&self) -> usize {
        let tail = self.dequeue_pos.pos.load(Ordering::Relaxed);
        let head = self.enqueue_pos.pos.load(Ordering::Relaxed);
        head.wrapping_sub(tail)
    }

    /// Whether the ring is (approximately) empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Collector for Ring {
    fn record(&self, event: &Event) {
        self.push(*event);
    }
}

impl fmt::Debug for Ring {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Ring")
            .field("capacity", &self.capacity())
            .field("len", &self.len())
            .field("dropped", &self.dropped())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Event, EventKind, KvList};
    use crate::kv;
    use crate::span::SpanId;
    use std::sync::Arc;
    use std::thread;

    fn ev(n: u64) -> Event {
        Event::instant(SpanId::root(), "t", n, kv![n => n])
    }

    #[test]
    fn ring_is_fifo() {
        let r = Ring::with_capacity(8);
        for i in 0..5 {
            assert!(r.push(ev(i)));
        }
        let out = r.drain();
        assert_eq!(out.len(), 5);
        for (i, e) in out.iter().enumerate() {
            assert_eq!(e.at, i as u64);
        }
        assert_eq!(r.dropped(), 0);
    }

    #[test]
    fn full_ring_drops_instead_of_blocking() {
        let r = Ring::with_capacity(4);
        for i in 0..4 {
            assert!(r.push(ev(i)));
        }
        assert!(!r.push(ev(99)));
        assert!(!r.push(ev(100)));
        assert_eq!(r.dropped(), 2);
        assert_eq!(r.drain().len(), 4);
        // Space freed: pushes succeed again.
        assert!(r.push(ev(5)));
    }

    #[test]
    fn capacity_rounds_up_to_power_of_two() {
        assert_eq!(Ring::with_capacity(5).capacity(), 8);
        assert_eq!(Ring::with_capacity(0).capacity(), 2);
        assert_eq!(Ring::with_capacity(64).capacity(), 64);
    }

    #[test]
    fn concurrent_producers_lose_nothing_within_capacity() {
        let r = Arc::new(Ring::with_capacity(4096));
        let threads = 8;
        let per = 256;
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let r = r.clone();
                thread::spawn(move || {
                    for i in 0..per {
                        assert!(r.push(ev((t * per + i) as u64)));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let out = r.drain();
        assert_eq!(out.len(), threads * per);
        assert_eq!(r.dropped(), 0);
        // Every payload arrived exactly once.
        let mut seen: Vec<u64> = out.iter().map(|e| e.at).collect();
        seen.sort_unstable();
        for (i, v) in seen.iter().enumerate() {
            assert_eq!(*v, i as u64);
        }
    }

    #[test]
    fn concurrent_producers_and_consumer() {
        let r = Arc::new(Ring::with_capacity(64));
        let total = 4 * 500;
        let producers: Vec<_> = (0..4)
            .map(|t| {
                let r = r.clone();
                thread::spawn(move || {
                    let mut pushed = 0u64;
                    for i in 0..500 {
                        if r.push(ev((t * 500 + i) as u64)) {
                            pushed += 1;
                        }
                    }
                    pushed
                })
            })
            .collect();
        let consumer = {
            let r = r.clone();
            thread::spawn(move || {
                let mut got = 0u64;
                loop {
                    match r.pop() {
                        Some(_) => got += 1,
                        None => {
                            if got + r.dropped() >= total as u64 {
                                // May still race with in-flight pushes; settle.
                                if r.pop().is_none() {
                                    break;
                                }
                                got += 1;
                            }
                            thread::yield_now();
                        }
                    }
                }
                got
            })
        };
        let pushed: u64 = producers.into_iter().map(|h| h.join().unwrap()).sum();
        let got = consumer.join().unwrap() + r.drain().len() as u64;
        assert_eq!(pushed + r.dropped(), total as u64);
        assert_eq!(got, pushed);
    }

    #[test]
    fn trace_off_is_inert_and_and_composes() {
        let off = Trace::off();
        assert!(!off.on());
        off.emit(ev(1)); // no-op, must not panic

        let ring = Arc::new(Ring::with_capacity(8));
        let on = Trace::collector(ring.clone());
        assert!(on.on());
        assert!(!off.and(&Trace::off()).on());
        assert!(off.and(&on).on());
        assert!(on.and(&off).on());

        let ring2 = Arc::new(Ring::with_capacity(8));
        let both = on.and(&Trace::collector(ring2.clone()));
        both.emit(ev(7));
        assert_eq!(ring.drain().len(), 1);
        assert_eq!(ring2.drain().len(), 1);
    }

    #[test]
    fn with_context_injects_without_overriding() {
        let ring = Arc::new(Ring::with_capacity(8));
        let t = Trace::collector(ring.clone()).with_context(kv![q => 9u64, site => "fleet"], 0x5a);
        t.emit(Event::instant(SpanId::root(), "x", 1, kv![task => 2u64]));
        t.emit(Event::instant(SpanId::root(), "y", 2, kv![q => 1u64]));
        let evs = ring.drain();
        assert_eq!(evs[0].get_u64("q"), Some(9));
        assert_eq!(evs[0].get("site").unwrap().as_str(), Some("fleet"));
        assert_eq!(evs[0].get_u64("task"), Some(2));
        // Caller-provided q shadows the injected one.
        assert_eq!(evs[1].get_u64("q"), Some(1));
        // Span ids are salted.
        assert_eq!(evs[0].span, SpanId::root().salted(0x5a));
        // Off stays off (and stays cheap).
        assert!(!Trace::off().with_context(kv![q => 1u64], 1).on());
    }

    #[test]
    fn fanout_duplicates_and_noop_ignores() {
        let a = Arc::new(Ring::with_capacity(8));
        let b = Arc::new(Ring::with_capacity(8));
        let f = Fanout::new(vec![a.clone(), b.clone(), Arc::new(Noop)]);
        f.record(&ev(3));
        assert_eq!(a.drain().len(), 1);
        assert_eq!(b.drain().len(), 1);
    }

    #[test]
    fn ring_len_tracks_push_pop() {
        let r = Ring::with_capacity(8);
        assert!(r.is_empty());
        r.push(ev(1));
        r.push(ev(2));
        assert_eq!(r.len(), 2);
        r.pop();
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn event_kind_preserved_through_ring() {
        let r = Ring::with_capacity(8);
        r.record(&Event {
            span: SpanId::root(),
            name: "round",
            kind: EventKind::Exit,
            at: 5,
            kv: KvList::new(),
        });
        assert_eq!(r.pop().unwrap().kind, EventKind::Exit);
    }
}
