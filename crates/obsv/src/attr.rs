//! Per-query attribution: folding the event stream into rollups of
//! money, virtual latency and quality along the plan tree.
//!
//! The paper's optimizer trades three currencies — monetary cost (task
//! price × assignments), latency (rounds of virtual time) and quality
//! (confidence of inferred truth). [`Attribution::from_events`] charges
//! every dispatched assignment, retry, reassignment and truth-inference
//! decision to its `(query, plan-node, round)` coordinates, using the
//! [`names::PLAN_EDGE`] events to map crowd tasks back to the plan node
//! (predicate) that asked them. [`Attribution::conservation`] then checks
//! the books: summed per-span charges must equal the run totals the
//! runtime's aggregate counters report.

use crate::event::{Event, EventKind};
use std::collections::BTreeMap;

/// Canonical kv keys used by the instrumentation. String literals —
/// centralizing them here keeps emitters and the rollup in agreement.
pub mod keys {
    /// Query id.
    pub const QUERY: &str = "q";
    /// Round number within a query.
    pub const ROUND: &str = "round";
    /// Crowd task id.
    pub const TASK: &str = "task";
    /// Worker id.
    pub const WORKER: &str = "worker";
    /// Plan node (predicate index) a task belongs to.
    pub const NODE: &str = "node";
    /// Dispatch attempt number (0 = original, >0 = retry/reassign).
    pub const ATTEMPT: &str = "attempt";
    /// Milliseconds of virtual time.
    pub const MS: &str = "ms";
    /// Success flag.
    pub const OK: &str = "ok";
    /// Discriminator tag (fault kind, market name, …).
    pub const KIND: &str = "kind";
    /// Price of one assignment, in cents.
    pub const CENTS: &str = "cents";
    /// Generic count.
    pub const N: &str = "n";
    /// Decision confidence (majority share, 0..=1).
    pub const CONF: &str = "conf";
    /// Vote entropy in bits.
    pub const ENTROPY: &str = "entropy";
    /// Decided choice index.
    pub const CHOICE: &str = "choice";
    /// Market name.
    pub const MARKET: &str = "market";
    /// Entailment depth of a reuse hit (answers chained through).
    pub const DEPTH: &str = "depth";
    /// HIT count (scheduler round accounting).
    pub const HITS: &str = "hits";
}

/// Canonical event names. The `crowd.*` / `exec.*` / `runtime.*` families
/// mirror the crate that emits them.
pub mod names {
    /// One assignment handed to a worker (costs money).
    pub const DISPATCH: &str = "crowd.dispatch";
    /// An answer arrived.
    pub const ARRIVAL: &str = "crowd.arrival";
    /// A fault was injected (kv `kind`: dropout/abandoned/slow/…).
    pub const FAULT: &str = "crowd.fault";
    /// An assignment passed its deadline.
    pub const TIMEOUT: &str = "crowd.timeout";
    /// A timed-out assignment was retried with the same worker.
    pub const RETRY: &str = "crowd.retry";
    /// A timed-out assignment was reassigned to a new worker.
    pub const REASSIGN: &str = "crowd.reassign";
    /// In-flight assignments cancelled by early termination.
    pub const CANCEL: &str = "crowd.cancel";
    /// A round span (Enter/Exit pair; Exit carries kv `ms`).
    pub const ROUND: &str = "crowd.round";
    /// A batch published across markets (kv `market`, `n`).
    pub const MARKET_ROUTE: &str = "crowd.market";
    /// One whole query (kv `ok`, `ms`).
    pub const QUERY: &str = "runtime.query";
    /// A plan edge (tuple pair) first asked (kv `task`, `node`): the
    /// task → plan-node mapping the rollup joins against.
    pub const PLAN_EDGE: &str = "exec.edge";
    /// One optimizer round in the core executor.
    pub const EXEC_ROUND: &str = "exec.round";
    /// Truth inference colored an edge (kv `conf`, `entropy`).
    pub const COLOR: &str = "exec.color";
    /// Early-termination decision on a task (kv `conf`, `entropy`).
    pub const DECIDE: &str = "quality.decide";
    /// Optimizer selected a predicate order (kv `node` sequence events).
    pub const PLAN_SELECT: &str = "plan.select";
    /// A cost estimate was produced (kv `n` = expected answers).
    pub const COST_ESTIMATE: &str = "cost.estimate";
    /// Work-stealing pool stole a job (wall-clock domain — kept out of
    /// deterministic query streams).
    pub const POOL_STEAL: &str = "pool.steal";
    /// Pool executed a job (wall-clock domain).
    pub const POOL_JOB: &str = "pool.job";
    /// A task resolved from the answer-reuse cache instead of dispatch
    /// (kv `task`, `node`, `kind` = cached/transitive/negative, `depth`,
    /// `cents` = money saved).
    pub const REUSE_HIT: &str = "reuse.hit";
    /// Scheduler admitted a query (kv `q`, `cents` = budget).
    pub const SCHED_ADMIT: &str = "sched.admit";
    /// Scheduler queued a query for a later wave (kv `q`, `n` = position).
    pub const SCHED_QUEUE: &str = "sched.queue";
    /// Scheduler rejected a query (kv `q`, `kind` = reason).
    pub const SCHED_REJECT: &str = "sched.reject";
    /// One global scheduler round closed (no `q` — platform-side totals:
    /// kv `round`, `n` = tasks, `hits`, `cents` = platform spend).
    pub const SCHED_ROUND: &str = "sched.round";
    /// Shared-HIT cost attributed back to one query for one global round
    /// (kv `q`, `round`, `n` = tasks, `cents`). Summing these per query
    /// must reproduce the platform spend of the `sched.round` events
    /// exactly — see [`Attribution::sched_mismatches`](super::Attribution::sched_mismatches).
    pub const SCHED_COST: &str = "sched.cost";
    /// A query's fresh crowd answers were durably settled (fsync'd) by
    /// the storage layer before entering the shared reuse cache (kv `q`,
    /// `ok`, `n` = facts, `cents` = money now on stable storage). Not
    /// folded into conservation totals: settlement mirrors spend already
    /// attributed by `crowd.dispatch`.
    pub const STORE_SETTLE: &str = "store.settle";
    /// The durable store flushed a snapshot (kv `n` = pages written,
    /// `ms`).
    pub const STORE_FLUSH: &str = "store.flush";
    /// A store opened and replayed its log (kv `n` = records replayed,
    /// `kind` = clean/torn, `ms`).
    pub const STORE_RECOVER: &str = "store.recover";
}

/// Money/latency/count rollup for one plan node of one query.
#[derive(Debug, Default, Clone, PartialEq)]
pub struct NodeAttribution {
    /// Assignments dispatched for this node's tasks.
    pub dispatches: u64,
    /// Money spent, in cents.
    pub cost_cents: u64,
    /// Answers that arrived.
    pub arrivals: u64,
    /// Truth-inference decisions on this node's tasks.
    pub decisions: u64,
    /// Sum of decision confidences (divide by `decisions` for the mean).
    pub confidence_sum: f64,
    /// Sum of vote entropies.
    pub entropy_sum: f64,
    /// Tasks resolved from the reuse cache instead of dispatched.
    pub tasks_saved: u64,
    /// Money not spent thanks to reuse, in cents.
    pub money_saved_cents: u64,
}

/// Full rollup for one query.
#[derive(Debug, Default, Clone)]
pub struct QueryAttribution {
    /// Assignments dispatched.
    pub dispatches: u64,
    /// Money spent, in cents.
    pub cost_cents: u64,
    /// Answers that arrived.
    pub arrivals: u64,
    /// Retries after timeout.
    pub retries: u64,
    /// Reassignments to fresh workers.
    pub reassignments: u64,
    /// Deadline misses.
    pub timeouts: u64,
    /// Injected faults by observed count.
    pub faults: u64,
    /// Assignments cancelled by early termination.
    pub cancels: u64,
    /// Rounds completed (closed `crowd.round` spans).
    pub rounds: u64,
    /// Sum of round latencies in virtual ms.
    pub round_ms: u64,
    /// End-to-end virtual latency reported by the `runtime.query` event.
    pub virtual_ms: u64,
    /// Whether the query succeeded.
    pub ok: bool,
    /// Truth-inference decisions.
    pub decisions: u64,
    /// Sum of decision confidences.
    pub confidence_sum: f64,
    /// Sum of vote entropies.
    pub entropy_sum: f64,
    /// Tasks resolved from the reuse cache instead of dispatched.
    pub tasks_saved: u64,
    /// Money not spent thanks to reuse, in cents.
    pub money_saved_cents: u64,
    /// Sum of entailment depths over reuse hits.
    pub entailment_depth_sum: u64,
    /// Shared-HIT cost attributed to this query by the scheduler, in cents.
    pub sched_cost_cents: u64,
    /// Tasks this query contributed to shared scheduler rounds.
    pub sched_tasks: u64,
    /// Per-plan-node breakdown (key: predicate index; `u64::MAX` holds
    /// charges for tasks with no known plan edge).
    pub per_node: BTreeMap<u64, NodeAttribution>,
    /// Dispatches per round.
    pub per_round: BTreeMap<u64, u64>,
}

impl QueryAttribution {
    /// Mean decision confidence, if any decisions were made.
    pub fn mean_confidence(&self) -> Option<f64> {
        if self.decisions == 0 {
            None
        } else {
            Some(self.confidence_sum / self.decisions as f64)
        }
    }
}

/// Node key used when a task has no recorded plan edge.
pub const UNATTRIBUTED_NODE: u64 = u64::MAX;

/// Run totals, for checking against the runtime's aggregate counters.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct ConservationTotals {
    /// Total assignments dispatched across queries.
    pub dispatched: u64,
    /// Total retries.
    pub retries: u64,
    /// Total reassignments.
    pub reassignments: u64,
    /// Total timeouts.
    pub timeouts: u64,
    /// Total faults.
    pub faults: u64,
    /// Total rounds.
    pub rounds: u64,
    /// Total queries.
    pub queries: u64,
    /// Queries that succeeded.
    pub queries_ok: u64,
    /// Total virtual latency (sum of per-query end-to-end ms).
    pub virtual_ms: u64,
    /// Total money spent, in cents.
    pub cost_cents: u64,
    /// Total tasks resolved by answer reuse instead of dispatch.
    pub tasks_saved: u64,
    /// Total money saved by reuse, in cents.
    pub money_saved_cents: u64,
}

impl ConservationTotals {
    /// Invariant accessor: compare these totals field-by-field against an
    /// independently-maintained set (e.g. one built from the runtime's
    /// aggregate counters) and name every field that disagrees. An empty
    /// result is the conservation invariant; a non-empty one tells a
    /// checker exactly which counter leaked.
    pub fn mismatches(&self, other: &ConservationTotals) -> Vec<String> {
        let mut out = Vec::new();
        let mut cmp = |name: &str, a: u64, b: u64| {
            if a != b {
                out.push(format!("{name}: events={a} counters={b}"));
            }
        };
        cmp("dispatched", self.dispatched, other.dispatched);
        cmp("retries", self.retries, other.retries);
        cmp("reassignments", self.reassignments, other.reassignments);
        cmp("timeouts", self.timeouts, other.timeouts);
        cmp("faults", self.faults, other.faults);
        cmp("rounds", self.rounds, other.rounds);
        cmp("queries", self.queries, other.queries);
        cmp("queries_ok", self.queries_ok, other.queries_ok);
        cmp("virtual_ms", self.virtual_ms, other.virtual_ms);
        cmp("cost_cents", self.cost_cents, other.cost_cents);
        cmp("tasks_saved", self.tasks_saved, other.tasks_saved);
        cmp("money_saved_cents", self.money_saved_cents, other.money_saved_cents);
        out
    }
}

/// The attribution table: per-query rollups built from an event stream.
#[derive(Debug, Default, Clone)]
pub struct Attribution {
    /// Rollup per query id.
    pub queries: BTreeMap<u64, QueryAttribution>,
    /// Platform-side spend of the scheduler's shared rounds, in cents
    /// (summed from query-less [`names::SCHED_ROUND`] events).
    pub sched_platform_cents: u64,
    /// Total HITs published by the scheduler's shared rounds.
    pub sched_hits: u64,
    /// Global scheduler rounds observed.
    pub sched_rounds: u64,
}

impl Attribution {
    /// Fold an event stream (any order) into per-query rollups.
    pub fn from_events(events: &[Event]) -> Attribution {
        // Pass 1: task → plan-node map per query, from exec.edge events.
        let mut node_of: BTreeMap<(u64, u64), u64> = BTreeMap::new();
        for ev in events {
            if ev.name == names::PLAN_EDGE {
                if let (Some(q), Some(task), Some(node)) =
                    (ev.get_u64(keys::QUERY), ev.get_u64(keys::TASK), ev.get_u64(keys::NODE))
                {
                    node_of.insert((q, task), node);
                }
            }
        }

        let mut out = Attribution::default();
        for ev in events {
            if ev.name == names::SCHED_ROUND {
                // Platform-side totals: deliberately carry no query id.
                out.sched_rounds += 1;
                out.sched_hits += ev.get_u64(keys::HITS).unwrap_or(0);
                out.sched_platform_cents += ev.get_u64(keys::CENTS).unwrap_or(0);
                continue;
            }
            let q = match ev.get_u64(keys::QUERY) {
                Some(q) => q,
                None => continue, // unattributed (pool) events
            };
            let qa = out.queries.entry(q).or_default();
            let node = || {
                ev.get_u64(keys::NODE)
                    .or_else(|| ev.get_u64(keys::TASK).and_then(|t| node_of.get(&(q, t)).copied()))
            };
            match ev.name {
                names::DISPATCH => {
                    qa.dispatches += 1;
                    let cents = ev.get_u64(keys::CENTS).unwrap_or(0);
                    qa.cost_cents += cents;
                    let na = qa.per_node.entry(node().unwrap_or(UNATTRIBUTED_NODE)).or_default();
                    na.dispatches += 1;
                    na.cost_cents += cents;
                    if let Some(r) = ev.get_u64(keys::ROUND) {
                        *qa.per_round.entry(r).or_default() += 1;
                    }
                }
                names::ARRIVAL => {
                    qa.arrivals += 1;
                    qa.per_node.entry(node().unwrap_or(UNATTRIBUTED_NODE)).or_default().arrivals +=
                        1;
                }
                names::REUSE_HIT => {
                    qa.tasks_saved += 1;
                    let cents = ev.get_u64(keys::CENTS).unwrap_or(0);
                    qa.money_saved_cents += cents;
                    qa.entailment_depth_sum += ev.get_u64(keys::DEPTH).unwrap_or(0);
                    let na = qa.per_node.entry(node().unwrap_or(UNATTRIBUTED_NODE)).or_default();
                    na.tasks_saved += 1;
                    na.money_saved_cents += cents;
                }
                names::RETRY => qa.retries += 1,
                names::REASSIGN => qa.reassignments += 1,
                names::TIMEOUT => qa.timeouts += 1,
                names::FAULT => qa.faults += 1,
                names::CANCEL => qa.cancels += ev.get_u64(keys::N).unwrap_or(1),
                names::ROUND if ev.kind == EventKind::Exit => {
                    qa.rounds += 1;
                    qa.round_ms += ev.get_u64(keys::MS).unwrap_or(0);
                }
                names::QUERY => {
                    qa.virtual_ms = ev.get_u64(keys::MS).unwrap_or(0);
                    qa.ok = ev
                        .get(keys::OK)
                        .map(|v| v == crate::event::Value::Bool(true) || v.as_u64() == Some(1))
                        .unwrap_or(false);
                }
                names::SCHED_COST => {
                    qa.sched_cost_cents += ev.get_u64(keys::CENTS).unwrap_or(0);
                    qa.sched_tasks += ev.get_u64(keys::N).unwrap_or(0);
                }
                names::DECIDE | names::COLOR => {
                    qa.decisions += 1;
                    let conf = ev.get(keys::CONF).and_then(|v| v.as_f64()).unwrap_or(0.0);
                    let ent = ev.get(keys::ENTROPY).and_then(|v| v.as_f64()).unwrap_or(0.0);
                    qa.confidence_sum += conf;
                    qa.entropy_sum += ent;
                    let na = qa.per_node.entry(node().unwrap_or(UNATTRIBUTED_NODE)).or_default();
                    na.decisions += 1;
                    na.confidence_sum += conf;
                    na.entropy_sum += ent;
                }
                _ => {}
            }
        }
        out
    }

    /// Sum per-query rollups into run totals. The conservation check is:
    /// these must equal the runtime's aggregate counters for the same run
    /// (`tasks_dispatched`, `retries`, `virtual_ms_total`, …).
    pub fn conservation(&self) -> ConservationTotals {
        let mut t = ConservationTotals::default();
        for qa in self.queries.values() {
            t.dispatched += qa.dispatches;
            t.retries += qa.retries;
            t.reassignments += qa.reassignments;
            t.timeouts += qa.timeouts;
            t.faults += qa.faults;
            t.rounds += qa.rounds;
            t.queries += 1;
            t.queries_ok += qa.ok as u64;
            t.virtual_ms += qa.virtual_ms;
            t.cost_cents += qa.cost_cents;
            t.tasks_saved += qa.tasks_saved;
            t.money_saved_cents += qa.money_saved_cents;
        }
        t
    }

    /// Scheduler conservation check: the sum of per-query attributed
    /// shared-HIT cost must equal the platform spend of the scheduler's
    /// rounds, to the cent. Returns one line per disagreement (empty =
    /// invariant holds), mirroring [`ConservationTotals::mismatches`].
    pub fn sched_mismatches(&self) -> Vec<String> {
        let attributed: u64 = self.queries.values().map(|qa| qa.sched_cost_cents).sum();
        if attributed == self.sched_platform_cents {
            Vec::new()
        } else {
            vec![format!(
                "sched_cost_cents: attributed={attributed} platform={}",
                self.sched_platform_cents
            )]
        }
    }

    /// Render the rollups as a JSON document (shares the
    /// [`crate::json`] emitter with `RuntimeMetrics`).
    pub fn to_json(&self) -> String {
        let mut arr = crate::json::JsonArray::new();
        for (q, qa) in &self.queries {
            let mut nodes = crate::json::JsonArray::new();
            for (node, na) in &qa.per_node {
                let o = crate::json::JsonObject::new()
                    .i64("node", if *node == UNATTRIBUTED_NODE { -1 } else { *node as i64 })
                    .u64("dispatches", na.dispatches)
                    .u64("cost_cents", na.cost_cents)
                    .u64("arrivals", na.arrivals)
                    .u64("decisions", na.decisions)
                    .f64("confidence_sum", na.confidence_sum)
                    .f64("entropy_sum", na.entropy_sum)
                    .u64("tasks_saved", na.tasks_saved)
                    .u64("money_saved_cents", na.money_saved_cents)
                    .finish();
                nodes = nodes.raw(&o);
            }
            let o = crate::json::JsonObject::new()
                .u64("query", *q)
                .bool("ok", qa.ok)
                .u64("dispatches", qa.dispatches)
                .u64("cost_cents", qa.cost_cents)
                .u64("arrivals", qa.arrivals)
                .u64("retries", qa.retries)
                .u64("reassignments", qa.reassignments)
                .u64("timeouts", qa.timeouts)
                .u64("faults", qa.faults)
                .u64("cancels", qa.cancels)
                .u64("rounds", qa.rounds)
                .u64("round_ms", qa.round_ms)
                .u64("virtual_ms", qa.virtual_ms)
                .u64("decisions", qa.decisions)
                .f64("mean_confidence", qa.mean_confidence().unwrap_or(f64::NAN))
                .f64("entropy_sum", qa.entropy_sum)
                .u64("tasks_saved", qa.tasks_saved)
                .u64("money_saved_cents", qa.money_saved_cents)
                .u64("entailment_depth_sum", qa.entailment_depth_sum)
                .u64("sched_cost_cents", qa.sched_cost_cents)
                .u64("sched_tasks", qa.sched_tasks)
                .raw("per_node", &nodes.finish())
                .finish();
            arr = arr.raw(&o);
        }
        crate::json::JsonObject::new()
            .raw("queries", &arr.finish())
            .u64("sched_platform_cents", self.sched_platform_cents)
            .u64("sched_hits", self.sched_hits)
            .u64("sched_rounds", self.sched_rounds)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Event;
    use crate::kv;
    use crate::span::SpanId;

    fn instant(name: &'static str, at: u64, kv: crate::event::KvList) -> Event {
        Event::instant(SpanId::root(), name, at, kv)
    }

    fn sample_stream() -> Vec<Event> {
        let round_span = SpanId::root().child("round", &[0]);
        vec![
            // Plan: task 1 and 2 belong to node 0, task 3 to node 1.
            instant(names::PLAN_EDGE, 0, kv![q => 1u64, task => 1u64, node => 0u64]),
            instant(names::PLAN_EDGE, 0, kv![q => 1u64, task => 2u64, node => 0u64]),
            instant(names::PLAN_EDGE, 0, kv![q => 1u64, task => 3u64, node => 1u64]),
            Event {
                span: round_span,
                name: names::ROUND,
                kind: EventKind::Enter,
                at: 0,
                kv: kv![q => 1u64, round => 0u64],
            },
            instant(names::DISPATCH, 0, kv![q => 1u64, round => 0u64, task => 1u64, cents => 5u64]),
            instant(names::DISPATCH, 0, kv![q => 1u64, round => 0u64, task => 2u64, cents => 5u64]),
            instant(names::DISPATCH, 0, kv![q => 1u64, round => 0u64, task => 3u64, cents => 5u64]),
            instant(names::ARRIVAL, 60, kv![q => 1u64, task => 1u64]),
            instant(names::TIMEOUT, 90, kv![q => 1u64, task => 2u64]),
            instant(names::RETRY, 90, kv![q => 1u64, task => 2u64]),
            instant(
                names::DISPATCH,
                90,
                kv![q => 1u64, round => 0u64, task => 2u64, cents => 5u64, attempt => 1u64],
            ),
            instant(names::ARRIVAL, 120, kv![q => 1u64, task => 2u64]),
            instant(names::ARRIVAL, 130, kv![q => 1u64, task => 3u64]),
            instant(
                names::COLOR,
                130,
                kv![q => 1u64, task => 1u64, conf => 1.0f64, entropy => 0.0f64],
            ),
            instant(
                names::COLOR,
                130,
                kv![q => 1u64, task => 3u64, conf => 0.75f64, entropy => 0.5f64],
            ),
            Event {
                span: round_span,
                name: names::ROUND,
                kind: EventKind::Exit,
                at: 130,
                kv: kv![q => 1u64, round => 0u64, ms => 130u64],
            },
            // Task 4 (node 1) resolved from the reuse cache: no dispatch,
            // 5 cents saved, entailed through a depth-2 positive chain.
            instant(names::PLAN_EDGE, 130, kv![q => 1u64, task => 4u64, node => 1u64]),
            instant(
                names::REUSE_HIT,
                130,
                kv![q => 1u64, task => 4u64, node => 1u64, kind => "transitive", depth => 2u64, cents => 5u64],
            ),
            instant(names::QUERY, 130, kv![q => 1u64, ok => true, ms => 130u64]),
            // A second, failed query with no plan edges.
            instant(names::DISPATCH, 0, kv![q => 2u64, round => 0u64, task => 9u64, cents => 3u64]),
            instant(names::QUERY, 50, kv![q => 2u64, ok => false, ms => 50u64]),
        ]
    }

    #[test]
    fn rollup_charges_money_latency_quality_per_query() {
        let a = Attribution::from_events(&sample_stream());
        assert_eq!(a.queries.len(), 2);
        let q1 = &a.queries[&1];
        assert_eq!(q1.dispatches, 4);
        assert_eq!(q1.cost_cents, 20);
        assert_eq!(q1.arrivals, 3);
        assert_eq!(q1.retries, 1);
        assert_eq!(q1.timeouts, 1);
        assert_eq!(q1.rounds, 1);
        assert_eq!(q1.round_ms, 130);
        assert_eq!(q1.virtual_ms, 130);
        assert!(q1.ok);
        assert_eq!(q1.decisions, 2);
        assert!((q1.mean_confidence().unwrap() - 0.875).abs() < 1e-9);
        assert!((q1.entropy_sum - 0.5).abs() < 1e-9);
        let q2 = &a.queries[&2];
        assert!(!q2.ok);
        assert_eq!(q2.cost_cents, 3);
    }

    #[test]
    fn plan_edges_route_charges_to_nodes() {
        let a = Attribution::from_events(&sample_stream());
        let q1 = &a.queries[&1];
        // Node 0 owns tasks 1 and 2: 3 dispatches (one retry), 15 cents.
        assert_eq!(q1.per_node[&0].dispatches, 3);
        assert_eq!(q1.per_node[&0].cost_cents, 15);
        assert_eq!(q1.per_node[&1].dispatches, 1);
        // Query 2's task has no plan edge: charged to the sentinel node.
        let q2 = &a.queries[&2];
        assert_eq!(q2.per_node[&UNATTRIBUTED_NODE].dispatches, 1);
    }

    #[test]
    fn conservation_sums_the_books() {
        let a = Attribution::from_events(&sample_stream());
        let t = a.conservation();
        assert_eq!(t.dispatched, 5);
        assert_eq!(t.retries, 1);
        assert_eq!(t.timeouts, 1);
        assert_eq!(t.rounds, 1);
        assert_eq!(t.queries, 2);
        assert_eq!(t.queries_ok, 1);
        assert_eq!(t.virtual_ms, 180);
        assert_eq!(t.cost_cents, 23);
    }

    #[test]
    fn reuse_hits_roll_up_saved_cost_and_depth() {
        let a = Attribution::from_events(&sample_stream());
        let q1 = &a.queries[&1];
        assert_eq!(q1.tasks_saved, 1);
        assert_eq!(q1.money_saved_cents, 5);
        assert_eq!(q1.entailment_depth_sum, 2);
        assert_eq!(q1.per_node[&1].tasks_saved, 1);
        assert_eq!(q1.per_node[&1].money_saved_cents, 5);
        // Saved money is not spent money.
        assert_eq!(q1.cost_cents, 20);
        let t = a.conservation();
        assert_eq!(t.tasks_saved, 1);
        assert_eq!(t.money_saved_cents, 5);
        let json = a.to_json();
        assert!(json.contains(r#""tasks_saved":1"#));
        assert!(json.contains(r#""money_saved_cents":5"#));
    }

    #[test]
    fn per_round_counts_dispatches() {
        let a = Attribution::from_events(&sample_stream());
        assert_eq!(a.queries[&1].per_round[&0], 4);
    }

    #[test]
    fn rollup_json_is_well_formed() {
        let a = Attribution::from_events(&sample_stream());
        let json = a.to_json();
        crate::json::check_balanced(&json).unwrap();
        assert!(json.contains(r#""query":1"#));
        assert!(json.contains(r#""per_node""#));
    }

    #[test]
    fn events_without_query_key_are_skipped() {
        let evs = vec![instant(names::POOL_STEAL, 0, kv![worker => 1u64])];
        let a = Attribution::from_events(&evs);
        assert!(a.queries.is_empty());
    }

    #[test]
    fn sched_rounds_roll_up_and_conserve_cents() {
        let evs = vec![
            // Global round 0: 13 tasks from q1+q2 share 2 HITs, 20¢ spend
            // split 14/6 by the scheduler's largest-remainder attribution.
            instant(names::SCHED_COST, 0, kv![q => 1u64, round => 0u64, n => 9u64, cents => 14u64]),
            instant(names::SCHED_COST, 0, kv![q => 2u64, round => 0u64, n => 4u64, cents => 6u64]),
            instant(
                names::SCHED_ROUND,
                0,
                kv![round => 0u64, n => 13u64, hits => 2u64, cents => 20u64],
            ),
            // Global round 1: q2 alone.
            instant(names::SCHED_COST, 1, kv![q => 2u64, round => 1u64, n => 3u64, cents => 10u64]),
            instant(
                names::SCHED_ROUND,
                1,
                kv![round => 1u64, n => 3u64, hits => 1u64, cents => 10u64],
            ),
        ];
        let a = Attribution::from_events(&evs);
        assert_eq!(a.sched_rounds, 2);
        assert_eq!(a.sched_hits, 3);
        assert_eq!(a.sched_platform_cents, 30);
        assert_eq!(a.queries[&1].sched_cost_cents, 14);
        assert_eq!(a.queries[&1].sched_tasks, 9);
        assert_eq!(a.queries[&2].sched_cost_cents, 16);
        assert_eq!(a.queries[&2].sched_tasks, 7);
        assert!(a.sched_mismatches().is_empty());
        let json = a.to_json();
        assert!(json.contains(r#""sched_platform_cents":30"#));
        assert!(json.contains(r#""sched_cost_cents":14"#));
    }

    #[test]
    fn sched_mismatch_names_the_leak() {
        let evs = vec![
            instant(names::SCHED_COST, 0, kv![q => 1u64, round => 0u64, n => 5u64, cents => 9u64]),
            instant(
                names::SCHED_ROUND,
                0,
                kv![round => 0u64, n => 5u64, hits => 1u64, cents => 10u64],
            ),
        ];
        let a = Attribution::from_events(&evs);
        let m = a.sched_mismatches();
        assert_eq!(m.len(), 1);
        assert!(m[0].contains("attributed=9"));
        assert!(m[0].contains("platform=10"));
    }
}
