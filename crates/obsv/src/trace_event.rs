//! Chrome `trace_event` JSON emission (Perfetto / `about:tracing`).
//!
//! Converts an event stream into the [Trace Event Format]: matched
//! `Enter`/`Exit` pairs become `"ph":"X"` complete events with a
//! duration, instants become `"ph":"i"`. The virtual clock is
//! milliseconds; trace_event timestamps are microseconds, so `ts = at *
//! 1000`. Rows are grouped so the timeline reads like the paper's
//! execution model: `pid` = query id, `tid` = worker id (0 for events
//! with no worker, e.g. round spans), with `process_name` metadata so
//! Perfetto labels each query's lane.
//!
//! [Trace Event Format]:
//! https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU

use crate::attr::keys;
use crate::event::{canonical_sort, Event, EventKind};
use crate::json::{JsonArray, JsonObject};
use std::collections::BTreeSet;

fn args_json(ev: &Event) -> String {
    let mut o = JsonObject::new();
    for (k, v) in ev.kv.iter() {
        o = match v {
            crate::event::Value::U64(x) => o.u64(k, x),
            crate::event::Value::I64(x) => o.i64(k, x),
            crate::event::Value::F64(x) => o.f64(k, x),
            crate::event::Value::Str(s) => o.str(k, s),
            crate::event::Value::Bool(b) => o.bool(k, b),
        };
    }
    o.finish()
}

fn pid(ev: &Event) -> u64 {
    ev.get_u64(keys::QUERY).unwrap_or(0)
}

fn tid(ev: &Event) -> u64 {
    ev.get_u64(keys::WORKER).unwrap_or(0)
}

/// Render `events` (any order; sorted canonically internally) as a Chrome
/// trace JSON document. Unmatched `Enter`s become zero-duration complete
/// events, so a truncated stream still loads.
pub fn chrome_trace(events: &[Event]) -> String {
    let mut evs: Vec<Event> = events.to_vec();
    canonical_sort(&mut evs);

    let mut rows = JsonArray::new();
    let mut queries: BTreeSet<u64> = BTreeSet::new();

    // After canonical_sort a span's Enter sits directly before its
    // instants and Exit (same span id), so pairing is a linear scan.
    let mut i = 0;
    while i < evs.len() {
        let ev = &evs[i];
        queries.insert(pid(ev));
        match ev.kind {
            EventKind::Enter => {
                // Find the Exit for this span id.
                let mut dur = 0u64;
                let mut exit_kv = None;
                for later in &evs[i + 1..] {
                    if later.span == ev.span && later.kind == EventKind::Exit {
                        dur = later.at.saturating_sub(ev.at);
                        exit_kv = Some(later.kv);
                        break;
                    }
                    if later.span != ev.span {
                        break;
                    }
                }
                // Merge exit kvs (e.g. the closing `ms`/`ok`) into args.
                let mut merged = *ev;
                if let Some(kv) = exit_kv {
                    for (k, v) in kv.iter() {
                        if !merged.kv.contains(k) {
                            merged.kv.push(k, v);
                        }
                    }
                }
                let row = JsonObject::new()
                    .str("name", ev.name)
                    .str("ph", "X")
                    .u64("ts", ev.at * 1000)
                    .u64("dur", dur * 1000)
                    .u64("pid", pid(ev))
                    .u64("tid", tid(ev))
                    .raw("args", &args_json(&merged))
                    .finish();
                rows = rows.raw(&row);
            }
            EventKind::Instant => {
                let row = JsonObject::new()
                    .str("name", ev.name)
                    .str("ph", "i")
                    .str("s", "t")
                    .u64("ts", ev.at * 1000)
                    .u64("pid", pid(ev))
                    .u64("tid", tid(ev))
                    .raw("args", &args_json(ev))
                    .finish();
                rows = rows.raw(&row);
            }
            EventKind::Exit => {} // consumed by its Enter
        }
        i += 1;
    }

    // Metadata rows: name each query's process lane.
    for q in queries {
        let name_args = JsonObject::new().str("name", &format!("query {q}")).finish();
        let row = JsonObject::new()
            .str("name", "process_name")
            .str("ph", "M")
            .u64("pid", q)
            .u64("tid", 0)
            .raw("args", &name_args)
            .finish();
        rows = rows.raw(&row);
    }

    JsonObject::new().str("displayTimeUnit", "ms").raw("traceEvents", &rows.finish()).finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::KvList;
    use crate::json::check_balanced;
    use crate::kv;
    use crate::span::SpanId;

    #[test]
    fn enter_exit_pairs_become_complete_events() {
        let span = SpanId::root().child("round", &[0]);
        let evs = vec![
            Event { span, name: "round", kind: EventKind::Enter, at: 100, kv: kv![q => 3u64] },
            Event::instant(span, "crowd.dispatch", 100, kv![q => 3u64, worker => 2u64]),
            Event { span, name: "round", kind: EventKind::Exit, at: 250, kv: kv![ms => 150u64] },
        ];
        let json = chrome_trace(&evs);
        check_balanced(&json).unwrap();
        assert!(json.contains(r#""ph":"X""#));
        assert!(json.contains(r#""ts":100000"#));
        assert!(json.contains(r#""dur":150000"#));
        assert!(json.contains(r#""ph":"i""#));
        assert!(json.contains(r#""pid":3"#));
        assert!(json.contains(r#""tid":2"#));
        // Exit kvs merged into the complete event's args.
        assert!(json.contains(r#""ms":150"#));
        // Process metadata for the query lane.
        assert!(json.contains(r#""process_name""#));
        assert!(json.contains("query 3"));
    }

    #[test]
    fn unmatched_enter_still_loads() {
        let span = SpanId::root().child("round", &[1]);
        let evs =
            vec![Event { span, name: "round", kind: EventKind::Enter, at: 7, kv: KvList::new() }];
        let json = chrome_trace(&evs);
        check_balanced(&json).unwrap();
        assert!(json.contains(r#""dur":0"#));
    }

    #[test]
    fn empty_stream_is_valid() {
        let json = chrome_trace(&[]);
        check_balanced(&json).unwrap();
        assert!(json.contains("traceEvents"));
    }
}
