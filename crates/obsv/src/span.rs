//! Content-derived hierarchical span identifiers.
//!
//! A span id is a pure hash of *what the span is about* — its name and the
//! discriminating values along its path from the root (query id, round
//! number, task id, …) — never of thread identity, allocation order, or
//! wall-clock. Two replays of the same deterministic run therefore mint
//! identical ids regardless of thread count, which is what makes the
//! "sorted span streams are byte-identical at 1/4/8 threads" guarantee
//! possible at all.
//!
//! Hashing is FNV-1a over the name bytes and path values: tiny, stable,
//! and good enough — spans live in small per-query universes, so the
//! 64-bit space makes collisions a non-concern.

use crate::event::{Event, EventKind, KvList};
use crate::Trace;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// A deterministic span identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SpanId(u64);

impl SpanId {
    /// The root of the span tree.
    pub const ROOT: SpanId = SpanId(FNV_OFFSET);

    /// The root span id.
    pub const fn root() -> SpanId {
        SpanId::ROOT
    }

    /// Derive a child id from a name and discriminating path values.
    /// `root().child("query", &[q]).child("round", &[r])` is stable for
    /// the same `(q, r)` no matter which thread computes it.
    pub fn child(self, name: &str, path: &[u64]) -> SpanId {
        let mut h = fnv1a(self.0, name.as_bytes());
        // Separator so ("ab", []) and ("a", [b…]) can't collide trivially.
        h = fnv1a(h, &[0xff]);
        for &v in path {
            h = fnv1a(h, &v.to_le_bytes());
        }
        SpanId(h)
    }

    /// XOR-mix a salt into the id. Used by
    /// [`WithContext`](crate::collect::WithContext) to give each query a
    /// disjoint id namespace while staying deterministic.
    pub fn salted(self, salt: u64) -> SpanId {
        SpanId(self.0 ^ salt)
    }

    /// The raw 64-bit id.
    pub fn raw(self) -> u64 {
        self.0
    }
}

/// A live span: emits an `Enter` event on creation and an `Exit` on
/// [`Span::close`]. Timestamps are explicit (virtual time), so the guard
/// pattern is manual rather than `Drop`-based — the runtime knows *its*
/// clock; this crate doesn't.
#[derive(Debug, Clone)]
pub struct Span {
    id: SpanId,
    name: &'static str,
    trace: Trace,
}

impl Span {
    /// Open a span under `parent`, emitting the `Enter` event at virtual
    /// time `at` with payload `kv`.
    pub fn enter(
        trace: &Trace,
        parent: SpanId,
        name: &'static str,
        path: &[u64],
        at: u64,
        kv: KvList,
    ) -> Span {
        let id = parent.child(name, path);
        trace.emit(Event { span: id, name, kind: EventKind::Enter, at, kv });
        Span { id, name, trace: trace.clone() }
    }

    /// This span's id.
    pub fn id(&self) -> SpanId {
        self.id
    }

    /// Emit an instant event inside this span.
    pub fn event(&self, name: &'static str, at: u64, kv: KvList) {
        self.trace.emit(Event::instant(self.id, name, at, kv));
    }

    /// Open a child span.
    pub fn child(&self, name: &'static str, path: &[u64], at: u64, kv: KvList) -> Span {
        Span::enter(&self.trace, self.id, name, path, at, kv)
    }

    /// Close the span, emitting the `Exit` event at virtual time `at`.
    pub fn close(self, at: u64, kv: KvList) {
        self.trace.emit(Event { span: self.id, name: self.name, kind: EventKind::Exit, at, kv });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collect::{Ring, Trace};
    use crate::kv;
    use std::sync::Arc;

    #[test]
    fn ids_are_pure_functions_of_content() {
        let a = SpanId::root().child("query", &[3]).child("round", &[1]);
        let b = SpanId::root().child("query", &[3]).child("round", &[1]);
        assert_eq!(a, b);
        assert_ne!(a, SpanId::root().child("query", &[3]).child("round", &[2]));
        assert_ne!(a, SpanId::root().child("query", &[4]).child("round", &[1]));
    }

    #[test]
    fn name_and_path_do_not_collide_trivially() {
        let a = SpanId::root().child("ab", &[]);
        let b = SpanId::root().child("a", &[b'b' as u64]);
        assert_ne!(a, b);
    }

    #[test]
    fn salt_is_involutive_and_disjoint() {
        let id = SpanId::root().child("round", &[1]);
        let salted = id.salted(0xdead_beef);
        assert_ne!(id, salted);
        assert_eq!(salted.salted(0xdead_beef), id);
    }

    #[test]
    fn span_guard_emits_enter_event_exit() {
        let ring = Arc::new(Ring::with_capacity(64));
        let trace = Trace::collector(ring.clone());
        let span = Span::enter(&trace, SpanId::root(), "round", &[0], 100, kv![n => 4u64]);
        span.event("crowd.dispatch", 100, kv![task => 1u64]);
        let child = span.child("wave", &[1], 150, kv![]);
        child.close(200, kv![]);
        span.close(300, kv![ms => 200u64]);
        let evs = ring.drain();
        assert_eq!(evs.len(), 5);
        assert_eq!(evs[0].kind, EventKind::Enter);
        assert_eq!(evs[0].name, "round");
        assert_eq!(evs[1].name, "crowd.dispatch");
        assert_eq!(evs[4].kind, EventKind::Exit);
        assert_eq!(evs[4].at, 300);
        // The child's id is derived from the parent's.
        assert_eq!(evs[2].span, evs[0].span.child("wave", &[1]));
    }
}
