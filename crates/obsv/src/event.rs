//! The event record: a fixed-size, allocation-free unit of telemetry.
//!
//! Events are `Copy` and carry at most [`MAX_KV`] key/value pairs inline,
//! so emitting one from the hottest dispatch loop costs a handful of word
//! moves — no heap, no locks, no formatting. Keys and names are
//! `&'static str` (interned by the compiler); values are a small tagged
//! union. Everything that could make two replays differ (pointers, thread
//! ids, wall-clock) is deliberately unrepresentable.

use crate::span::SpanId;
use std::fmt;

/// Maximum number of key/value pairs carried inline by one event.
pub const MAX_KV: usize = 8;

/// A telemetry value. Deliberately closed: only deterministic,
/// replay-stable payloads are representable.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Value {
    /// Unsigned counter/id.
    U64(u64),
    /// Signed quantity (deltas).
    I64(i64),
    /// Real-valued quantity (entropy, confidence, cents fractions).
    F64(f64),
    /// Static string (enum-like tags: fault kinds, market names).
    Str(&'static str),
    /// Boolean flag.
    Bool(bool),
}

impl Value {
    /// The value as `u64` if it is one.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::U64(v) => Some(v),
            _ => None,
        }
    }

    /// The value as `f64` if numeric (u64/i64 widen losslessly enough
    /// for attribution arithmetic).
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::U64(v) => Some(v as f64),
            Value::I64(v) => Some(v as f64),
            Value::F64(v) => Some(v),
            _ => None,
        }
    }

    /// The value as a static string if it is one.
    pub fn as_str(&self) -> Option<&'static str> {
        match *self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Canonical text form, used by [`Event::canonical_line`] and the
    /// JSON/Prometheus emitters. `f64` uses the shortest round-trippable
    /// form Rust's formatter produces, which is stable across runs.
    pub fn render(&self) -> String {
        match *self {
            Value::U64(v) => v.to_string(),
            Value::I64(v) => v.to_string(),
            Value::F64(v) => format!("{v}"),
            Value::Str(s) => s.to_string(),
            Value::Bool(b) => b.to_string(),
        }
    }
}

impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::U64(v)
    }
}

impl From<usize> for Value {
    fn from(v: usize) -> Self {
        Value::U64(v as u64)
    }
}

impl From<u32> for Value {
    fn from(v: u32) -> Self {
        Value::U64(v as u64)
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::I64(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::F64(v)
    }
}

impl From<&'static str> for Value {
    fn from(v: &'static str) -> Self {
        Value::Str(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

/// A fixed-capacity inline list of key/value pairs.
#[derive(Clone, Copy)]
pub struct KvList {
    pairs: [(&'static str, Value); MAX_KV],
    len: u8,
}

impl KvList {
    /// An empty list.
    pub const fn new() -> Self {
        KvList { pairs: [("", Value::U64(0)); MAX_KV], len: 0 }
    }

    /// Append a pair. Silently drops past [`MAX_KV`] — hot paths must
    /// never panic because of telemetry; overflow is caught by the
    /// `debug_assert!` in tests.
    pub fn push(&mut self, key: &'static str, value: Value) {
        debug_assert!((self.len as usize) < MAX_KV, "kv list overflow: dropping {key}");
        if (self.len as usize) < MAX_KV {
            self.pairs[self.len as usize] = (key, value);
            self.len += 1;
        }
    }

    /// Builder-style append.
    pub fn with(mut self, key: &'static str, value: impl Into<Value>) -> Self {
        self.push(key, value.into());
        self
    }

    /// Number of pairs.
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// Whether the list is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Iterate the pairs in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&'static str, Value)> + '_ {
        self.pairs[..self.len as usize].iter().copied()
    }

    /// Look up a key (first match wins, mirroring [`WithContext`]'s
    /// "caller kvs shadow injected context" rule).
    ///
    /// [`WithContext`]: crate::collect::WithContext
    pub fn get(&self, key: &str) -> Option<Value> {
        self.iter().find(|(k, _)| *k == key).map(|(_, v)| v)
    }

    /// `true` if `key` is present.
    pub fn contains(&self, key: &str) -> bool {
        self.get(key).is_some()
    }
}

impl Default for KvList {
    fn default() -> Self {
        KvList::new()
    }
}

impl fmt::Debug for KvList {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut m = f.debug_map();
        for (k, v) in self.iter() {
            m.entry(&k, &v);
        }
        m.finish()
    }
}

/// Build a [`KvList`] from `key => value` pairs:
/// `kv![q => 3u64, kind => "dropout"]`. Keys are identifiers (stringified)
/// to keep call sites terse; values are anything `Into<Value>`.
#[macro_export]
macro_rules! kv {
    () => { $crate::event::KvList::new() };
    ($($key:ident => $val:expr),+ $(,)?) => {{
        let mut list = $crate::event::KvList::new();
        $(list.push(stringify!($key), $crate::event::Value::from($val));)+
        list
    }};
}

/// Phase of a span an event marks (or a standalone point event).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EventKind {
    /// Span opened.
    Enter,
    /// Span closed.
    Exit,
    /// Point-in-time event inside a span.
    Instant,
}

impl EventKind {
    /// Canonical one-letter tag (matches Chrome trace_event phases).
    pub fn tag(&self) -> &'static str {
        match self {
            EventKind::Enter => "B",
            EventKind::Exit => "E",
            EventKind::Instant => "i",
        }
    }
}

/// One telemetry record. `Copy`, fixed-size, heap-free.
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// The span this event belongs to (content-derived, deterministic).
    pub span: SpanId,
    /// Static event name (see [`crate::attr::names`]).
    pub name: &'static str,
    /// Enter/exit/instant.
    pub kind: EventKind,
    /// Virtual timestamp in milliseconds (the runtime's `SimTime`).
    pub at: u64,
    /// Inline payload.
    pub kv: KvList,
}

impl Event {
    /// A point event.
    pub fn instant(span: SpanId, name: &'static str, at: u64, kv: KvList) -> Self {
        Event { span, name, kind: EventKind::Instant, at, kv }
    }

    /// Shorthand for `self.kv.get(key)`.
    pub fn get(&self, key: &str) -> Option<Value> {
        self.kv.get(key)
    }

    /// Shorthand for a `u64`-typed kv.
    pub fn get_u64(&self, key: &str) -> Option<u64> {
        self.kv.get(key).and_then(|v| v.as_u64())
    }

    /// Canonical single-line text form. Two runs are "byte-identical"
    /// exactly when the canonical lines of their sorted event streams
    /// match; the determinism property test compares these strings.
    pub fn canonical_line(&self) -> String {
        use std::fmt::Write;
        let mut s =
            format!("{:016x} {} {} @{}", self.span.raw(), self.kind.tag(), self.name, self.at);
        for (k, v) in self.kv.iter() {
            let _ = write!(s, " {k}={}", v.render());
        }
        s
    }

    /// Sort key for canonical ordering: span id groups a span's events,
    /// then time, then enter-before-instant-before-exit, then name.
    pub fn canonical_key(&self) -> (u64, u64, u8, &'static str) {
        let phase = match self.kind {
            EventKind::Enter => 0,
            EventKind::Instant => 1,
            EventKind::Exit => 2,
        };
        (self.span.raw(), self.at, phase, self.name)
    }
}

/// Sort events into the canonical deterministic order (stable across
/// thread counts for content-derived span ids).
pub fn canonical_sort(events: &mut [Event]) {
    events.sort_by(|a, b| a.canonical_key().cmp(&b.canonical_key()));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::SpanId;

    #[test]
    fn kv_macro_builds_pairs_in_order() {
        let kv = kv![q => 7u64, kind => "dropout", conf => 0.5f64, ok => true];
        assert_eq!(kv.len(), 4);
        assert_eq!(kv.get("q"), Some(Value::U64(7)));
        assert_eq!(kv.get("kind"), Some(Value::Str("dropout")));
        assert_eq!(kv.get("conf"), Some(Value::F64(0.5)));
        assert_eq!(kv.get("ok"), Some(Value::Bool(true)));
        assert_eq!(kv.get("missing"), None);
    }

    #[test]
    fn kv_first_match_wins_on_duplicate_keys() {
        let kv = kv![q => 1u64].with("q", 2u64);
        assert_eq!(kv.get("q"), Some(Value::U64(1)));
    }

    #[test]
    fn kv_list_is_bounded() {
        let mut kv = KvList::new();
        for _ in 0..MAX_KV {
            kv.push("k", Value::U64(0));
        }
        assert_eq!(kv.len(), MAX_KV);
        // Release builds drop silently rather than panic.
        if cfg!(not(debug_assertions)) {
            kv.push("overflow", Value::U64(1));
            assert_eq!(kv.len(), MAX_KV);
        }
    }

    #[test]
    fn value_conversions_and_accessors() {
        assert_eq!(Value::from(3usize).as_u64(), Some(3));
        assert_eq!(Value::from(3u32).as_u64(), Some(3));
        assert_eq!(Value::from(-2i64).as_f64(), Some(-2.0));
        assert_eq!(Value::from("x").as_str(), Some("x"));
        assert_eq!(Value::from(1.5f64).as_f64(), Some(1.5));
        assert_eq!(Value::from(true), Value::Bool(true));
        assert_eq!(Value::Str("x").as_u64(), None);
    }

    #[test]
    fn canonical_line_is_stable() {
        let span = SpanId::root().child("round", &[3]);
        let ev = Event::instant(span, "crowd.dispatch", 120, kv![task => 5u64, worker => 2u64]);
        let line = ev.canonical_line();
        assert_eq!(line, ev.canonical_line());
        assert!(line.contains("i crowd.dispatch @120"));
        assert!(line.ends_with("task=5 worker=2"));
    }

    #[test]
    fn canonical_sort_orders_by_span_then_time_then_phase() {
        let a = SpanId::root().child("round", &[1]);
        let b = SpanId::root().child("round", &[2]);
        let mut evs = vec![
            Event { span: b, name: "n", kind: EventKind::Exit, at: 10, kv: KvList::new() },
            Event { span: a, name: "n", kind: EventKind::Exit, at: 5, kv: KvList::new() },
            Event { span: a, name: "n", kind: EventKind::Enter, at: 5, kv: KvList::new() },
            Event { span: b, name: "n", kind: EventKind::Enter, at: 1, kv: KvList::new() },
        ];
        canonical_sort(&mut evs);
        // Within each span: enter before exit at the same/earlier time.
        let phases: Vec<(u64, &str)> = evs.iter().map(|e| (e.span.raw(), e.kind.tag())).collect();
        let a_pos: Vec<usize> = (0..4).filter(|&i| phases[i].0 == a.raw()).collect();
        assert_eq!(evs[a_pos[0]].kind, EventKind::Enter);
        assert_eq!(evs[a_pos[1]].kind, EventKind::Exit);
    }
}
