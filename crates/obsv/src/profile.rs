//! The hot-path phase profiler: wall-clock, self-time-attributed,
//! thread-local, and strictly outside the deterministic event streams.
//!
//! # Two time domains
//!
//! Everything in [`crate::event`] runs on *virtual* time (round ordinals,
//! simulated ms) and must stay byte-identical across thread counts — so
//! wall-clock timings can never ride those streams. The profiler is the
//! other domain: real nanoseconds, collected entirely on the side, with
//! its own exports (self-time report, folded stacks for
//! inferno/flamegraph, Chrome trace with real timestamps). The same
//! precedent as the pool's `pool.steal` events: wall-clock facts are kept
//! out of deterministic query streams.
//!
//! # How instrumentation works
//!
//! Hot functions deep in `cdb-core` / `cdb-graph` / `cdb-store` call
//! [`phase`] without any profiler threading through their signatures:
//!
//! ```
//! use cdb_obsv::profile::{self, phases};
//! fn select_tasks() {
//!     let _ph = profile::phase(phases::TASK_SELECT);
//!     // ... work; nested `phase()` calls become children ...
//! }
//! ```
//!
//! When no profiler is installed on the current thread this is a single
//! thread-local flag check — cheap enough for per-call instrumentation of
//! functions invoked tens of thousands of times per round. A harness opts
//! in by installing a profiler for a scope:
//!
//! ```
//! use std::sync::Arc;
//! use cdb_obsv::profile::{self, Profiler};
//! let prof = Arc::new(Profiler::new());
//! {
//!     let _guard = profile::install(Arc::clone(&prof));
//!     select_tasks(); // phases now recorded
//! }
//! # fn select_tasks() { let _p = profile::phase("task.select"); }
//! println!("{}", prof.report().text());
//! ```
//!
//! # Attribution
//!
//! Phases form a tree keyed by call path (`task.select` →
//! `select.expectation` → `select.cascade`). On every exit the profiler
//! records the phase's *total* time and its *self* time — total minus the
//! sum of its direct children's totals, computed exactly from the
//! thread-local stack. Self times over a subtree therefore sum to the
//! subtree root's total by construction; the conservation tests pin this.
//! Per-phase durations additionally feed a deterministic [`Hist`] for
//! bounded-error percentiles.

use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::marker::PhantomData;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use crate::event::{KvList, Value};
use crate::hist::Hist;
use crate::json::{JsonArray, JsonObject};

/// Phase names used across the stack. One flat namespace: dots group
/// phases for humans, the profiler's tree structure comes from actual
/// call nesting, not from the names.
pub mod phases {
    /// Query-graph construction (`cdb-core::build`).
    pub const GRAPH_BUILD: &str = "graph.build";
    /// Similarity join over one crowd predicate during graph build.
    pub const SIMILARITY_JOIN: &str = "similarity.join";
    /// One round of crowd task selection (the optimizer hot path).
    pub const TASK_SELECT: &str = "task.select";
    /// Expectation computation over open edges (`expectation_order`).
    pub const SELECT_EXPECTATION: &str = "select.expectation";
    /// Death-cascade simulation inside one expectation (`bundle_effect`).
    pub const SELECT_CASCADE: &str = "select.cascade";
    /// Conflict-aware candidate batching (`parallel_round`).
    pub const SELECT_CANDIDATES: &str = "select.candidates";
    /// Min-cut sampling order (`mincut_sampling_order`).
    pub const SELECT_MINCUT: &str = "select.mincut";
    /// One Dinic max-flow run inside min-cut sampling (`cdb-graph`).
    pub const SELECT_MAXFLOW: &str = "select.maxflow";
    /// Reuse-cache entailment sweep over open edges before a round.
    pub const ENTAIL_RESOLVE: &str = "entail.resolve";
    /// Dispatching one round's tasks to the crowd platform.
    pub const ROUND_DISPATCH: &str = "round.dispatch";
    /// Vote aggregation + truth inference after a round returns.
    pub const QUALITY_INFER: &str = "quality.infer";
    /// Graph pruning (arc consistency + candidate membership).
    pub const PRUNE: &str = "prune";
    /// One WAL fsync (`cdb-store`).
    pub const WAL_FSYNC: &str = "wal.fsync";
    /// Answer-log replay into the reuse cache on open (`cdb-store`).
    pub const REUSE_REPLAY: &str = "reuse.replay";
}

/// `CDB_PROFILE=1` opt-in check for binaries that can dump profiles.
pub fn env_enabled() -> bool {
    std::env::var("CDB_PROFILE").map(|v| !v.is_empty() && v != "0").unwrap_or(false)
}

const ROOT: u32 = 0;

/// One node of the phase tree (a unique call path).
#[derive(Debug)]
struct Node {
    parent: u32,
    name: &'static str,
    count: u64,
    total_ns: u64,
    self_ns: u64,
    hist: Hist,
}

/// One recorded phase interval (only kept when event recording is on).
#[derive(Debug, Clone, Copy)]
struct PhaseEvent {
    node: u32,
    tid: u64,
    start_ns: u64,
    dur_ns: u64,
    kv: KvList,
}

#[derive(Debug)]
struct Inner {
    nodes: Vec<Node>,
    index: HashMap<(u32, &'static str), u32>,
    events: Vec<PhaseEvent>,
}

/// A shared phase profiler. Threads opt in with [`install`]; every
/// installed thread's [`phase`] guards record into this one tree.
#[derive(Debug)]
pub struct Profiler {
    start: Instant,
    inner: Mutex<Inner>,
    event_cap: usize,
    events_dropped: AtomicU64,
    next_tid: AtomicU64,
}

impl Default for Profiler {
    fn default() -> Self {
        Profiler::new()
    }
}

impl Profiler {
    /// A profiler that aggregates per-phase statistics only (no interval
    /// events — the cheap mode for benchmark sweeps).
    pub fn new() -> Profiler {
        Profiler::with_event_cap(0)
    }

    /// A profiler that additionally keeps up to `cap` raw phase intervals
    /// for Chrome-trace export; intervals past the cap are counted in
    /// [`Profiler::events_dropped`], never blocking.
    pub fn with_event_cap(cap: usize) -> Profiler {
        Profiler {
            start: Instant::now(),
            inner: Mutex::new(Inner {
                nodes: vec![Node {
                    parent: ROOT,
                    name: "",
                    count: 0,
                    total_ns: 0,
                    self_ns: 0,
                    hist: Hist::new(),
                }],
                index: HashMap::new(),
                events: Vec::new(),
            }),
            event_cap: cap,
            events_dropped: AtomicU64::new(0),
            next_tid: AtomicU64::new(0),
        }
    }

    /// Phase intervals discarded because the event cap was reached.
    pub fn events_dropped(&self) -> u64 {
        self.events_dropped.load(Ordering::Relaxed)
    }

    fn intern(&self, parent: u32, name: &'static str) -> u32 {
        let mut inner = self.inner.lock().expect("profiler poisoned");
        if let Some(&id) = inner.index.get(&(parent, name)) {
            return id;
        }
        let id = inner.nodes.len() as u32;
        inner.nodes.push(Node {
            parent,
            name,
            count: 0,
            total_ns: 0,
            self_ns: 0,
            hist: Hist::new(),
        });
        inner.index.insert((parent, name), id);
        id
    }

    fn exit(&self, node: u32, total_ns: u64, self_ns: u64, start_ns: u64, tid: u64, kv: &KvList) {
        let mut inner = self.inner.lock().expect("profiler poisoned");
        let n = &mut inner.nodes[node as usize];
        n.count += 1;
        n.total_ns += total_ns;
        n.self_ns += self_ns;
        n.hist.record(total_ns);
        if self.event_cap > 0 {
            if inner.events.len() < self.event_cap {
                inner.events.push(PhaseEvent { node, tid, start_ns, dur_ns: total_ns, kv: *kv });
            } else {
                self.events_dropped.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Snapshot the phase tree into a report (sorted in tree order).
    pub fn report(&self) -> ProfileReport {
        let inner = self.inner.lock().expect("profiler poisoned");
        // Children of each node, in first-seen (id) order.
        let mut children: Vec<Vec<u32>> = vec![Vec::new(); inner.nodes.len()];
        for (id, n) in inner.nodes.iter().enumerate().skip(1) {
            children[n.parent as usize].push(id as u32);
        }
        let mut entries = Vec::new();
        let mut stack: Vec<(u32, usize, String)> =
            children[ROOT as usize].iter().rev().map(|&c| (c, 0, String::new())).collect();
        while let Some((id, depth, prefix)) = stack.pop() {
            let n = &inner.nodes[id as usize];
            let path =
                if prefix.is_empty() { n.name.to_string() } else { format!("{prefix};{}", n.name) };
            for &c in children[id as usize].iter().rev() {
                stack.push((c, depth + 1, path.clone()));
            }
            entries.push(PhaseEntry {
                path,
                name: n.name,
                depth,
                count: n.count,
                total_ns: n.total_ns,
                self_ns: n.self_ns,
                hist: n.hist.clone(),
            });
        }
        ProfileReport { entries }
    }

    /// Export recorded phase intervals as Chrome `trace_event` JSON with
    /// *real* (wall-clock) microsecond timestamps. Because every child
    /// interval is strictly contained in its parent's on the same thread
    /// track, Perfetto renders sub-phases nested under `task.select`
    /// rather than as siblings — unlike the virtual-time exporter, where
    /// same-round spans share one timestamp. Events carry their phase
    /// args (candidate counts, cut sizes, round index).
    pub fn chrome_trace(&self) -> String {
        let inner = self.inner.lock().expect("profiler poisoned");
        let mut evs: Vec<&PhaseEvent> = inner.events.iter().collect();
        // Parent intervals before their children: earlier start first,
        // longer duration breaks start ties.
        evs.sort_by(|a, b| {
            (a.tid, a.start_ns, std::cmp::Reverse(a.dur_ns)).cmp(&(
                b.tid,
                b.start_ns,
                std::cmp::Reverse(b.dur_ns),
            ))
        });
        let mut arr = JsonArray::new();
        let meta = JsonObject::new()
            .str("name", "process_name")
            .str("ph", "M")
            .u64("pid", 0)
            .raw("args", &JsonObject::new().str("name", "cdb profile (wall clock)").finish());
        arr = arr.raw(&meta.finish());
        for e in evs {
            let mut args = JsonObject::new();
            for (k, v) in e.kv.iter() {
                args = match v {
                    Value::U64(x) => args.u64(k, x),
                    Value::I64(x) => args.i64(k, x),
                    Value::F64(x) => args.f64(k, x),
                    Value::Str(s) => args.str(k, s),
                    Value::Bool(b) => args.bool(k, b),
                };
            }
            let o = JsonObject::new()
                .str("name", inner.nodes[e.node as usize].name)
                .str("cat", "phase")
                .str("ph", "X")
                .f64("ts", e.start_ns as f64 / 1000.0)
                .f64("dur", e.dur_ns as f64 / 1000.0)
                .u64("pid", 0)
                .u64("tid", e.tid)
                .raw("args", &args.finish());
            arr = arr.raw(&o.finish());
        }
        JsonObject::new().raw("traceEvents", &arr.finish()).finish()
    }
}

/// One phase call path with its aggregated timings.
#[derive(Debug, Clone)]
pub struct PhaseEntry {
    /// Semicolon-joined call path, e.g. `task.select;select.expectation`.
    pub path: String,
    /// Leaf phase name.
    pub name: &'static str,
    /// Nesting depth (0 = top-level phase).
    pub depth: usize,
    /// Number of times this path was entered.
    pub count: u64,
    /// Total wall nanoseconds spent in this path (children included).
    pub total_ns: u64,
    /// Self wall nanoseconds: total minus direct children's totals.
    pub self_ns: u64,
    /// Per-call duration histogram (nanoseconds).
    pub hist: Hist,
}

/// A snapshot of the phase tree, in depth-first tree order.
#[derive(Debug, Clone)]
pub struct ProfileReport {
    /// The phases, parents before children.
    pub entries: Vec<PhaseEntry>,
}

impl ProfileReport {
    /// Total nanoseconds across top-level phases (the profiled wall time).
    pub fn root_total_ns(&self) -> u64 {
        self.entries.iter().filter(|e| e.depth == 0).map(|e| e.total_ns).sum()
    }

    /// Sum of self times across all phases. Equal to
    /// [`ProfileReport::root_total_ns`] by construction — the conservation
    /// invariant the tests assert.
    pub fn self_total_ns(&self) -> u64 {
        self.entries.iter().map(|e| e.self_ns).sum()
    }

    /// The entry for a call path, if recorded.
    pub fn get(&self, path: &str) -> Option<&PhaseEntry> {
        self.entries.iter().find(|e| e.path == path)
    }

    /// Human-readable self-time profile, one line per call path.
    pub fn text(&self) -> String {
        let mut s = String::from("  total_ms    self_ms      calls  p99_us  phase\n");
        for e in &self.entries {
            s.push_str(&format!(
                "{:>10.3} {:>10.3} {:>10}  {:>6}  {}{}\n",
                e.total_ns as f64 / 1e6,
                e.self_ns as f64 / 1e6,
                e.count,
                e.hist.percentile(0.99) / 1000,
                "  ".repeat(e.depth),
                e.name,
            ));
        }
        s
    }

    /// Folded-stacks export (one `path;leaf value` line per call path,
    /// value = self time in nanoseconds) — pipe into
    /// `inferno-flamegraph` / `flamegraph.pl` to render a flame graph.
    pub fn folded(&self) -> String {
        let mut s = String::new();
        for e in &self.entries {
            if e.count > 0 {
                s.push_str(&format!("{} {}\n", e.path, e.self_ns));
            }
        }
        s
    }

    /// JSON export of the phase tree: per-path counts, total/self ms, and
    /// the duration histogram summarized in microseconds.
    pub fn to_json(&self) -> String {
        let mut arr = JsonArray::new();
        for e in &self.entries {
            let o = JsonObject::new()
                .str("phase", &e.path)
                .u64("depth", e.depth as u64)
                .u64("count", e.count)
                .f64("total_ms", e.total_ns as f64 / 1e6)
                .f64("self_ms", e.self_ns as f64 / 1e6)
                .raw("hist", &e.hist.to_json(1e-3));
            arr = arr.raw(&o.finish());
        }
        JsonObject::new().raw("phases", &arr.finish()).finish()
    }

    /// Emit every phase's duration histogram through the Prometheus
    /// writer (seconds, per convention), labeled by call path.
    pub fn prom(&self, p: &mut crate::prom::PromText) {
        for e in &self.entries {
            let metric = format!(
                "cdb_phase_{}_seconds",
                e.path
                    .replace([';', '.'], "_")
                    .replace(|c: char| !c.is_ascii_alphanumeric() && c != '_', "_")
            );
            e.hist.prom(p, &metric, &format!("wall-clock duration of phase {}", e.path), 1e-9);
        }
    }
}

struct ThreadState {
    profiler: Arc<Profiler>,
    tid: u64,
    stack: Vec<Frame>,
}

struct Frame {
    node: u32,
    start: Instant,
    start_ns: u64,
    child_ns: u64,
}

thread_local! {
    static ACTIVE: Cell<bool> = const { Cell::new(false) };
    static STATE: RefCell<Option<ThreadState>> = const { RefCell::new(None) };
}

/// Install `profiler` as this thread's recorder for the guard's lifetime.
/// Nested installs stack (the previous profiler is restored on drop).
pub fn install(profiler: Arc<Profiler>) -> InstallGuard {
    let tid = profiler.next_tid.fetch_add(1, Ordering::Relaxed);
    let prev =
        STATE.with(|s| s.borrow_mut().replace(ThreadState { profiler, tid, stack: Vec::new() }));
    ACTIVE.with(|a| a.set(true));
    InstallGuard { prev: Some(prev), _not_send: PhantomData }
}

/// Scope guard for [`install`]; restores the previous profiler (or none)
/// on drop. `!Send` — an installation belongs to one thread.
pub struct InstallGuard {
    // Double-Option: outer None after drop, inner is the restored state.
    prev: Option<Option<ThreadState>>,
    _not_send: PhantomData<*const ()>,
}

impl Drop for InstallGuard {
    fn drop(&mut self) {
        let prev = self.prev.take().unwrap_or(None);
        ACTIVE.with(|a| a.set(prev.is_some()));
        STATE.with(|s| *s.borrow_mut() = prev);
    }
}

/// Enter a phase. Returns a guard that records the phase's duration into
/// the installed profiler when dropped; a cheap no-op when no profiler is
/// installed on this thread. Nested calls build the phase tree.
pub fn phase(name: &'static str) -> PhaseGuard {
    if !ACTIVE.with(|a| a.get()) {
        return PhaseGuard { armed: false, kv: KvList::new(), _not_send: PhantomData };
    }
    STATE.with(|s| {
        let mut st = s.borrow_mut();
        let st = st.as_mut().expect("ACTIVE implies installed state");
        let parent = st.stack.last().map(|f| f.node).unwrap_or(ROOT);
        let node = st.profiler.intern(parent, name);
        let now = Instant::now();
        let start_ns = now.duration_since(st.profiler.start).as_nanos() as u64;
        st.stack.push(Frame { node, start: now, start_ns, child_ns: 0 });
    });
    PhaseGuard { armed: true, kv: KvList::new(), _not_send: PhantomData }
}

/// RAII guard for one phase interval; see [`phase`].
pub struct PhaseGuard {
    armed: bool,
    kv: KvList,
    _not_send: PhantomData<*const ()>,
}

impl PhaseGuard {
    /// Attach a key/value argument to this interval (surfaced in the
    /// Chrome-trace `args`, e.g. candidate counts or cut sizes). No-op
    /// when profiling is off; silently dropped past [`crate::MAX_KV`].
    pub fn set(&mut self, key: &'static str, value: impl Into<Value>) {
        if self.armed {
            self.kv.push(key, value.into());
        }
    }
}

impl Drop for PhaseGuard {
    fn drop(&mut self) {
        if !self.armed {
            return;
        }
        STATE.with(|s| {
            let mut st = s.borrow_mut();
            let Some(st) = st.as_mut() else { return };
            let Some(frame) = st.stack.pop() else { return };
            let total_ns = frame.start.elapsed().as_nanos() as u64;
            let self_ns = total_ns.saturating_sub(frame.child_ns);
            if let Some(parent) = st.stack.last_mut() {
                parent.child_ns += total_ns;
            }
            st.profiler.exit(frame.node, total_ns, self_ns, frame.start_ns, st.tid, &self.kv);
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kv;

    fn spin_ns(ns: u64) {
        let t = Instant::now();
        while (t.elapsed().as_nanos() as u64) < ns {
            std::hint::black_box(0);
        }
    }

    #[test]
    fn no_profiler_means_no_op() {
        let mut g = phase("task.select");
        g.set("n", 3u64);
        drop(g);
        // Nothing to assert beyond "does not panic / allocate state":
        assert!(!ACTIVE.with(|a| a.get()));
    }

    #[test]
    fn nesting_builds_the_tree_and_self_times_conserve() {
        let prof = Arc::new(Profiler::new());
        {
            let _i = install(Arc::clone(&prof));
            let _outer = phase(phases::TASK_SELECT);
            {
                let _inner = phase(phases::SELECT_EXPECTATION);
                {
                    let _leaf = phase(phases::SELECT_CASCADE);
                    spin_ns(200_000);
                }
                spin_ns(100_000);
            }
            {
                let _inner = phase(phases::SELECT_CANDIDATES);
                spin_ns(100_000);
            }
            spin_ns(50_000);
        }
        let r = prof.report();
        let paths: Vec<&str> = r.entries.iter().map(|e| e.path.as_str()).collect();
        assert_eq!(
            paths,
            vec![
                "task.select",
                "task.select;select.expectation",
                "task.select;select.expectation;select.cascade",
                "task.select;select.candidates",
            ]
        );
        // Exact conservation: self times sum to the root total.
        assert_eq!(r.self_total_ns(), r.root_total_ns());
        let outer = r.get("task.select").unwrap();
        let exp = r.get("task.select;select.expectation").unwrap();
        assert!(outer.total_ns >= exp.total_ns);
        assert!(exp.self_ns < exp.total_ns, "cascade time must not count as expectation self");
        assert_eq!(outer.depth, 0);
        assert_eq!(exp.depth, 1);
    }

    #[test]
    fn install_scopes_stack_and_restore() {
        let a = Arc::new(Profiler::new());
        let b = Arc::new(Profiler::new());
        {
            let _ga = install(Arc::clone(&a));
            {
                let _gb = install(Arc::clone(&b));
                let _p = phase("prune");
            }
            let _p = phase("graph.build");
        }
        assert!(!ACTIVE.with(|x| x.get()));
        assert!(a.report().get("graph.build").is_some());
        assert!(a.report().get("prune").is_none());
        assert!(b.report().get("prune").is_some());
    }

    #[test]
    fn sibling_repeats_merge_into_one_path() {
        let prof = Arc::new(Profiler::new());
        {
            let _i = install(Arc::clone(&prof));
            for _ in 0..10 {
                let _p = phase(phases::PRUNE);
            }
        }
        let r = prof.report();
        assert_eq!(r.entries.len(), 1);
        assert_eq!(r.entries[0].count, 10);
        assert_eq!(r.entries[0].hist.count(), 10);
    }

    #[test]
    fn folded_and_json_exports_are_well_formed() {
        let prof = Arc::new(Profiler::new());
        {
            let _i = install(Arc::clone(&prof));
            let _o = phase(phases::TASK_SELECT);
            let _n = phase(phases::SELECT_MINCUT);
        }
        let r = prof.report();
        let folded = r.folded();
        assert!(folded.contains("task.select;select.mincut "));
        crate::json::check_balanced(&r.to_json()).unwrap();
        let mut p = crate::prom::PromText::new();
        r.prom(&mut p);
        crate::prom::validate_exposition(&p.finish()).unwrap();
    }

    #[test]
    fn chrome_trace_nests_by_real_timestamps_and_carries_args() {
        let prof = Arc::new(Profiler::with_event_cap(16));
        {
            let _i = install(Arc::clone(&prof));
            let mut outer = phase(phases::TASK_SELECT);
            outer.set("round", 3u64);
            {
                let mut inner = phase(phases::SELECT_MINCUT);
                inner.set("cut", 7u64);
                spin_ns(50_000);
            }
        }
        let trace = prof.chrome_trace();
        crate::json::check_balanced(&trace).unwrap();
        assert!(trace.contains("\"round\":3"));
        assert!(trace.contains("\"cut\":7"));
        // Parent is emitted before its contained child despite exiting
        // later (events are recorded at exit time).
        let parent = trace.find("task.select").unwrap();
        let child = trace.find("select.mincut").unwrap();
        assert!(parent < child, "parent interval must sort before its child");
    }

    #[test]
    fn event_cap_drops_and_counts() {
        let prof = Arc::new(Profiler::with_event_cap(2));
        {
            let _i = install(Arc::clone(&prof));
            for _ in 0..5 {
                let _p = phase(phases::WAL_FSYNC);
            }
        }
        assert_eq!(prof.events_dropped(), 3);
        assert_eq!(prof.report().get("wal.fsync").unwrap().count, 5);
    }

    #[test]
    fn threads_record_into_one_tree() {
        let prof = Arc::new(Profiler::new());
        let mut handles = Vec::new();
        for _ in 0..4 {
            let p = Arc::clone(&prof);
            handles.push(std::thread::spawn(move || {
                let _i = install(p);
                let _ph = phase(phases::ROUND_DISPATCH);
                spin_ns(10_000);
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let r = prof.report();
        assert_eq!(r.get("round.dispatch").unwrap().count, 4);
    }

    #[test]
    fn kv_macro_values_fit_guard_args() {
        // `set` takes the same Value conversions the kv! macro produces.
        let list = kv![n => 4u64, ok => true];
        assert_eq!(list.len(), 2);
    }
}
