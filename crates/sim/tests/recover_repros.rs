//! Replay the committed kill-and-recover repro files.
//!
//! `crates/sim/repros/` holds the durable-storage recovery scenarios:
//! one healthy crash-and-resume that must replay with zero violations,
//! and one torn-write sabotage that must keep reporting the data loss
//! it was committed to demonstrate. They live apart from the root
//! `tests/sim_repros/` set (which pins the pre-storage invariants and
//! asserts an exact file list of its own).

use cdb_sim::{recorded_violations, replay_repro};

fn read_repro(name: &str) -> String {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/repros/");
    std::fs::read_to_string(format!("{path}{name}")).expect("repro file readable")
}

/// The healthy kill-and-recover scenario: crash after query 0, rebuild
/// the reuse cache from the answer log, resume query 1. Zero violations
/// means recovery was byte-identical to the uninterrupted run — same
/// bindings, same metrics (so nothing was re-bought), no cents lost.
#[test]
fn clean_kill_and_recover_replays_violation_free() {
    let text = read_repro("kill-recover-clean.repro");
    assert!(recorded_violations(&text).is_empty(), "clean repro must record no violation");
    let violations = replay_repro(&text).expect("repro file parses");
    assert!(violations.is_empty(), "recovery regressed: {violations:?}");
}

/// The torn-write scenario: same crash, but the log tail is corrupted
/// before the reopen. Recovery must *detect* the loss, not silently
/// resurrect or invent answers — replaying must still report every
/// invariant the file recorded.
#[test]
fn torn_tail_repro_still_reports_the_loss() {
    let text = read_repro("kill-recover-torn-tail.repro");
    let recorded = recorded_violations(&text);
    assert!(!recorded.is_empty(), "torn-tail repro records no violation");
    let replayed = replay_repro(&text).expect("repro file parses");
    for want in &recorded {
        assert!(
            replayed.iter().any(|v| &v.invariant == want),
            "replay no longer reproduces `{want}`; got {replayed:?}"
        );
    }
}

/// Every committed recovery repro is covered by a named test above — a
/// new `.repro` without a matching test is an error, not silence.
#[test]
fn all_committed_recovery_repros_are_replayed() {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/repros");
    let mut found: Vec<String> = std::fs::read_dir(dir)
        .expect("repros dir")
        .filter_map(|e| e.ok())
        .map(|e| e.file_name().to_string_lossy().into_owned())
        .filter(|n| n.ends_with(".repro"))
        .collect();
    found.sort();
    assert_eq!(
        found,
        vec!["kill-recover-clean.repro", "kill-recover-torn-tail.repro"],
        "update crates/sim/tests/recover_repros.rs when adding or removing repro files"
    );
}
