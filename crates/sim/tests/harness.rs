//! End-to-end tests of the simulation harness itself: clean soaks pass,
//! seeds are byte-reproducible, and armed sabotage is caught, shrunk,
//! and replayable from the repro text alone.

use cdb_sim::{run_seed, soak, Sabotage, ScenarioSpec};

/// A short clean soak: no invariant may fire without sabotage.
#[test]
fn clean_soak_passes() {
    let report = soak(0xC0FFEE, 12, Sabotage::None, |_| {});
    assert_eq!(report.scenarios, 12);
    if let Some(f) = report.failures.first() {
        panic!("seed {} violated: {:?}", f.seed, f.violations);
    }
}

/// Re-running one seed reproduces the identical scenario byte-for-byte.
#[test]
fn single_seed_is_byte_reproducible() {
    for seed in [1u64, 7, 42, 0xDEAD_BEEF] {
        let a = ScenarioSpec::from_seed(seed);
        let b = ScenarioSpec::from_seed(seed);
        assert_eq!(a, b);
        assert_eq!(a.to_text(), b.to_text());
    }
}

/// Deterministically find a seed whose scenario makes `want` applicable.
fn seed_where(start: u64, want: impl Fn(&ScenarioSpec) -> bool) -> u64 {
    (start..start + 500)
        .find(|&s| want(&ScenarioSpec::from_seed(s)))
        .expect("no applicable seed in 500 tries")
}

/// Check that `sabotage` on an applicable seed is (1) caught, (2) shrunk
/// to a still-failing smaller spec, and (3) that the written repro file
/// replays to the same violation with no other context.
fn sabotage_is_caught(sabotage: Sabotage, applicable: impl Fn(&ScenarioSpec) -> bool) {
    let seed = seed_where(100, applicable);
    let outcome = run_seed(seed, sabotage);
    assert!(!outcome.violations.is_empty(), "sabotage {sabotage:?} went undetected on seed {seed}");
    let shrunk = outcome.shrunk.expect("violations imply a shrunk repro");
    assert!(
        shrunk.spec.queries.len() <= outcome.spec.queries.len(),
        "shrinking must not grow the workload"
    );
    let replayed = cdb_sim::replay_repro(&shrunk.repro).expect("repro text parses");
    assert!(!replayed.is_empty(), "replaying the repro must still violate");
    let recorded = cdb_sim::recorded_violations(&shrunk.repro);
    assert!(
        replayed.iter().any(|v| recorded.contains(&v.invariant)),
        "replay must reproduce a recorded invariant; recorded={recorded:?} replayed={replayed:?}"
    );
}

/// A dropped answer binding diverges from the oracle (and, under perfect
/// workers, from ground truth).
#[test]
fn flipped_binding_is_caught_and_shrunk() {
    // Applicable whenever some query completes; perfect + no faults makes
    // that certain.
    sabotage_is_caught(Sabotage::FlipBinding, |s| {
        s.perfect && s.fault_rate == 0.0 && !s.queries.is_empty()
    });
}

/// A flipped entailment color contradicts the recorded crowd decision.
#[test]
fn flipped_entailment_is_caught_and_shrunk() {
    // Needs the reuse cache populated: reuse on, and a completed query.
    sabotage_is_caught(Sabotage::FlipEntailment, |s| {
        s.reuse && s.perfect && s.fault_rate == 0.0 && !s.queries.is_empty()
    });
}

/// A leaked task count breaks event/counter conservation.
#[test]
fn leaked_task_is_caught_and_shrunk() {
    sabotage_is_caught(Sabotage::LeakTask, |s| !s.queries.is_empty());
}

/// A corrupted answer-log tail loses settled answers across the
/// simulated crash — the kill-and-recover differential must flag the
/// loss and the broken money conservation.
#[test]
fn torn_log_tail_is_caught_and_shrunk() {
    // Needs the recovery check armed (reuse on, a crash point strictly
    // inside the fleet) and a first fleet that certainly settles answers.
    sabotage_is_caught(Sabotage::TornTail, |s| {
        s.reuse
            && s.perfect
            && s.fault_rate == 0.0
            && s.budget.is_none()
            && s.kill_after > 0
            && s.kill_after < s.queries.len()
    });
}

/// A component split across two shard units breaks partition integrity —
/// the shard verifier must reject it (a candidate would span shards and
/// vanish from the answer set).
#[test]
fn leak_cross_shard_is_caught_and_shrunk() {
    // Applicable whenever the first query's graph has a component with at
    // least two edges to split; any cluster query qualifies (left and
    // right are both >= 2 when drawn).
    sabotage_is_caught(
        Sabotage::LeakCrossShard,
        |s| matches!(s.queries.first(), Some(cdb_sim::QueryShape::Cluster { left, right }) if left * right >= 2),
    );
}

/// A query reported finishing past its DRR bound breaks the fairness
/// invariant.
#[test]
fn starved_query_is_caught_and_shrunk() {
    // Needs a query that completes and publishes tasks: no budget cap,
    // no faults or scripted drops.
    sabotage_is_caught(Sabotage::StarveQuery, |s| {
        !s.queries.is_empty()
            && s.budget.is_none()
            && s.fault_rate == 0.0
            && s.forced_drops.is_empty()
    });
}
