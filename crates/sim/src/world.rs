//! Turn a [`ScenarioSpec`] into executable material: query jobs with
//! ground truth, and the runtime configuration for the environment.
//! Everything here is a pure function of the spec, so a replayed repro
//! file rebuilds the identical world.

use cdb_core::executor::EdgeTruth;
use cdb_core::model::{NodeId, PartKind};
use cdb_core::{build_query_graph, GraphBuildConfig, QueryGraph};
use cdb_crowd::stream_key;
use cdb_datagen::{
    award_dataset, cluster_labels, paper_dataset, queries_for, DatasetScale, DirtConfig,
};
use cdb_obsv::Trace;
use cdb_runtime::{FaultPlan, QueryJob, RetryPolicy, RuntimeConfig};
use rand::Rng;

use crate::scenario::{QueryShape, ScenarioSpec};

/// Stream salts: every randomized ingredient of a scenario draws from its
/// own `(spec.seed, salt)` stream, so ingredients never perturb each
/// other when the shrinker removes one.
pub mod salt {
    /// Entity labels for `Cluster` queries.
    pub const LABELS: u64 = 0x1ABE1;
    /// Worker-accuracy distribution.
    pub const ACCURACY: u64 = 0x0ACC;
    /// Fault-plan stream root.
    pub const FAULTS: u64 = 0xFA_17;
    /// Generated-dataset stream root.
    pub const DATASET: u64 = 0xDA_7A;
    /// FILL auxiliary workload.
    pub const FILL: u64 = 0xF1_11;
    /// COLLECT auxiliary workload.
    pub const COLLECT: u64 = 0xC0_11;
}

/// The shared predicate description of every `Cluster` query: all of them
/// ask the same question of the same label space, so they share one reuse
/// measure — the workload that stresses cross-query entailment hardest.
pub const CLUSTER_MEASURE: &str = "sim.entity~entity";

/// The scenario's workload, materialized.
pub struct World {
    /// One job per `QueryShape`, ids `0..n` in spec order.
    pub jobs: Vec<QueryJob>,
    /// True when every query is a `Cluster` shape (the label → entity map
    /// is total, enabling the label-level soundness check).
    pub all_cluster: bool,
}

/// Label of cluster item `i` — a pure function of `(seed, i, clusters)`.
/// Left and right sides share the label space on purpose: repeated pairs
/// across queries are what give the reuse cache something to entail.
#[cfg(test)]
fn item_label(spec: &ScenarioSpec, i: usize) -> String {
    let max = spec
        .queries
        .iter()
        .map(|q| match q {
            QueryShape::Cluster { left, right } => *left.max(right),
            _ => 0,
        })
        .max()
        .unwrap_or(0);
    // cluster_labels is prefix-stable, so asking for the scenario-wide
    // maximum and indexing is equivalent to per-query pools.
    let pool = cluster_labels(
        max,
        spec.clusters,
        stream_key(spec.seed, &[salt::LABELS]),
        &DirtConfig::default(),
    );
    pool[i].clone()
}

/// Build every query job in the spec, in id order.
pub fn build_world(spec: &ScenarioSpec) -> World {
    let label_seed = stream_key(spec.seed, &[salt::LABELS]);
    let max_items = spec
        .queries
        .iter()
        .map(|q| match q {
            QueryShape::Cluster { left, right } => *left.max(right),
            _ => 0,
        })
        .max()
        .unwrap_or(0);
    let labels = cluster_labels(max_items, spec.clusters, label_seed, &DirtConfig::default());
    let mut jobs = Vec::with_capacity(spec.queries.len());
    let mut all_cluster = true;
    for (id, shape) in spec.queries.iter().enumerate() {
        let job = match shape {
            QueryShape::Cluster { left, right } => {
                cluster_job(id as u64, *left, *right, spec.clusters, &labels)
            }
            QueryShape::Dataset { paper, scale, query } => {
                all_cluster = false;
                dataset_job(id as u64, spec, *paper, *scale, *query)
            }
        };
        jobs.push(job);
    }
    World { jobs, all_cluster }
}

fn cluster_job(id: u64, left: usize, right: usize, clusters: usize, labels: &[String]) -> QueryJob {
    let mut g = QueryGraph::new();
    let a = g.add_part(PartKind::Table { name: "L".into() });
    let b = g.add_part(PartKind::Table { name: "R".into() });
    let an: Vec<NodeId> = (0..left).map(|i| g.add_node(a, None, labels[i].clone())).collect();
    let bn: Vec<NodeId> = (0..right).map(|j| g.add_node(b, None, labels[j].clone())).collect();
    let p = g.add_predicate(a, b, true, CLUSTER_MEASURE);
    let mut truth = EdgeTruth::new();
    for (i, &x) in an.iter().enumerate() {
        for (j, &y) in bn.iter().enumerate() {
            let e = g.add_edge(x, y, p, 0.5);
            truth.insert(e, i % clusters == j % clusters);
        }
    }
    QueryJob { id, graph: g, truth }
}

fn dataset_job(id: u64, spec: &ScenarioSpec, paper: bool, scale: usize, query: usize) -> QueryJob {
    let ds_seed = stream_key(spec.seed, &[salt::DATASET]);
    let (ds, name) = if paper {
        (paper_dataset(DatasetScale::paper_full().scaled(scale.max(1)), ds_seed), "paper")
    } else {
        (award_dataset(DatasetScale::award_full().scaled(scale.max(1)), ds_seed), "award")
    };
    let specs = queries_for(name);
    let cql = &specs[query % specs.len()].cql;
    let cdb_cql::Statement::Select(q) = cdb_cql::parse(cql).expect("table-4 query parses") else {
        unreachable!("table-4 queries are SELECTs");
    };
    let analyzed = cdb_cql::analyze_select(&q, &ds.db).expect("table-4 query analyzes");
    let g = build_query_graph(&analyzed, &ds.db, &GraphBuildConfig::default());
    let truth = ds.truth.edge_truth(&g);
    QueryJob { id, graph: g, truth }
}

/// The environment half of the spec, as a runtime configuration. `trace`
/// lets the checker attach an event ring; pass [`Trace::off`] otherwise.
pub fn runtime_config(
    spec: &ScenarioSpec,
    reuse: Option<std::sync::Arc<cdb_core::ReuseCache>>,
    trace: Trace,
) -> RuntimeConfig {
    let mut fault_plan =
        FaultPlan::uniform(stream_key(spec.seed, &[salt::FAULTS]), spec.fault_rate);
    for &(w, at) in &spec.forced_drops {
        fault_plan = fault_plan.drop_worker(cdb_crowd::WorkerId(w), at);
    }
    RuntimeConfig {
        threads: spec.threads,
        seed: spec.seed,
        worker_accuracies: worker_accuracies(spec),
        fault_plan,
        retry: RetryPolicy { deadline_ms: spec.deadline_ms, max_retries: spec.max_retries },
        exec: cdb_core::executor::ExecutorConfig {
            redundancy: spec.redundancy,
            budget: spec.budget,
            ..Default::default()
        },
        early_termination: spec.early_termination,
        trace,
        reuse,
        ..RuntimeConfig::default()
    }
}

/// Per-worker accuracies: all 1.0 when perfect, else a ±0.1 band around
/// the spec's mean quality, each worker drawn from its own stream.
pub fn worker_accuracies(spec: &ScenarioSpec) -> Vec<f64> {
    if spec.perfect {
        return vec![1.0; spec.workers];
    }
    (0..spec.workers)
        .map(|i| {
            let mut r = cdb_crowd::stream_rng(spec.seed, &[salt::ACCURACY, i as u64]);
            (spec.quality + 0.2 * (r.gen::<f64>() - 0.5)).clamp(0.55, 0.99)
        })
        .collect()
}

/// Entity id of a normalized cluster label (`… #k` suffix), if it has
/// one. Crowd answers about two suffixed labels have ground truth
/// `entity(a) == entity(b)` — the hook for the soundness invariant.
pub fn entity_of(normalized_label: &str) -> Option<usize> {
    let (_, k) = normalized_label.rsplit_once('#')?;
    k.trim().parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn worlds_are_reproducible() {
        let spec = ScenarioSpec::from_seed(3);
        let a = build_world(&spec);
        let b = build_world(&spec);
        assert_eq!(a.jobs.len(), b.jobs.len());
        for (x, y) in a.jobs.iter().zip(&b.jobs) {
            assert_eq!(x.id, y.id);
            assert_eq!(x.truth, y.truth);
            assert_eq!(x.graph.node_count(), y.graph.node_count());
            assert_eq!(x.graph.edge_count(), y.graph.edge_count());
        }
    }

    #[test]
    fn item_labels_carry_their_entity() {
        let mut spec = ScenarioSpec::from_seed(5);
        spec.queries = vec![QueryShape::Cluster { left: 6, right: 4 }];
        spec.clusters = 3;
        for i in 0..6 {
            let label = item_label(&spec, i);
            let norm = cdb_core::normalize(&label);
            assert_eq!(entity_of(&norm), Some(i % 3), "label `{label}`");
        }
    }
}
