//! Failure shrinking: given a scenario that violates an invariant, find a
//! smaller scenario that still does — drop whole queries first, then
//! shrink the surviving queries' tuples, then simplify the environment
//! (fault schedule, budgets, auxiliary workloads).

use crate::check::{check, Sabotage, Violation};
use crate::scenario::{QueryShape, ScenarioSpec};

/// Hard cap on `check` calls one shrink may spend; each call runs the
/// scenario several times, so this bounds shrink latency.
const SHRINK_BUDGET: usize = 120;

/// Greedily minimize `spec` while it keeps violating. Returns the
/// smallest failing spec found and its violations. If `spec` does not
/// actually fail, it is returned unchanged with no violations.
pub fn shrink(spec: &ScenarioSpec, sabotage: Sabotage) -> (ScenarioSpec, Vec<Violation>) {
    let mut cur = spec.clone();
    let mut cur_violations = check(&cur, sabotage);
    if cur_violations.is_empty() {
        return (cur, cur_violations);
    }
    let mut spent = 1usize;
    'outer: loop {
        for cand in candidates(&cur) {
            if spent >= SHRINK_BUDGET {
                break 'outer;
            }
            spent += 1;
            let violations = check(&cand, sabotage);
            if !violations.is_empty() {
                cur = cand;
                cur_violations = violations;
                continue 'outer;
            }
        }
        break; // no candidate still fails: minimal under this ordering
    }
    (cur, cur_violations)
}

/// True when the spec still describes something to run.
fn has_workload(s: &ScenarioSpec) -> bool {
    !s.queries.is_empty() || s.fill_slots > 0 || s.collect.is_some()
}

/// Reduction candidates in shrink priority order: queries, tuples, fault
/// schedule, then everything else. Each is one small step; the greedy
/// loop composes them.
fn candidates(cur: &ScenarioSpec) -> Vec<ScenarioSpec> {
    let mut out = Vec::new();
    let mut push = |s: ScenarioSpec| {
        if has_workload(&s) && s != *cur {
            out.push(s);
        }
    };
    // 1. Drop whole queries.
    for i in 0..cur.queries.len() {
        let mut s = cur.clone();
        s.queries.remove(i);
        push(s);
    }
    // 2. Shrink tuples: halve then decrement cluster sides; demote
    //    dataset queries to a minimal cluster join.
    for i in 0..cur.queries.len() {
        match cur.queries[i] {
            QueryShape::Cluster { left, right } => {
                for l in [left / 2, left - 1] {
                    if l >= 1 && l != left {
                        let mut s = cur.clone();
                        s.queries[i] = QueryShape::Cluster { left: l, right };
                        push(s);
                    }
                }
                for r in [right / 2, right - 1] {
                    if r >= 1 && r != right {
                        let mut s = cur.clone();
                        s.queries[i] = QueryShape::Cluster { left, right: r };
                        push(s);
                    }
                }
            }
            QueryShape::Dataset { .. } => {
                let mut s = cur.clone();
                s.queries[i] = QueryShape::Cluster { left: 2, right: 2 };
                push(s);
            }
        }
    }
    // 3. Simplify the fault schedule.
    if !cur.forced_drops.is_empty() {
        let mut s = cur.clone();
        s.forced_drops.clear();
        push(s);
    }
    if cur.fault_rate > 0.0 {
        let mut s = cur.clone();
        s.fault_rate = 0.0;
        push(s);
    }
    if (cur.deadline_ms, cur.max_retries) != (300_000, 8) {
        let mut s = cur.clone();
        s.deadline_ms = 300_000;
        s.max_retries = 8;
        push(s);
    }
    // 4. Simplify the rest of the environment and auxiliary workloads.
    if cur.fill_slots > 0 {
        let mut s = cur.clone();
        s.fill_slots = 0;
        push(s);
    }
    if cur.collect.is_some() {
        let mut s = cur.clone();
        s.collect = None;
        push(s);
    }
    if cur.budget.is_some() {
        let mut s = cur.clone();
        s.budget = None;
        push(s);
    }
    if cur.early_termination {
        let mut s = cur.clone();
        s.early_termination = false;
        push(s);
    }
    if cur.reuse {
        let mut s = cur.clone();
        s.reuse = false;
        push(s);
    }
    if cur.threads > 1 {
        let mut s = cur.clone();
        s.threads = 1;
        push(s);
    }
    if cur.shard_count > 1 {
        let mut s = cur.clone();
        s.shard_count = 1;
        push(s);
    }
    if cur.workers > 5 {
        let mut s = cur.clone();
        s.workers = (cur.workers / 2).max(5);
        s.forced_drops.retain(|&(w, _)| (w as usize) < s.workers);
        push(s);
    }
    out
}
