//! cdb-sim: deterministic simulation testing for the CDB stack.
//!
//! One `u64` seed pins down an entire scenario — the workload (schemas,
//! dirty data, a mix of crowd joins/selections plus FILL/COLLECT), and
//! the environment (fault schedule, worker-quality distribution, thread
//! count, reuse on/off, budget and deadline settings). Every run of the
//! same seed is byte-reproducible.
//!
//! Each scenario executes on the real concurrent runtime *and* on a
//! naive single-threaded reference oracle ([`oracle::run_sequential`]),
//! then a battery of differential invariants is checked
//! ([`check::check`]): answer bindings, task/money accounting against
//! the `cdb-obsv` event stream, round counts, ground-truth recovery,
//! reuse neutrality, and reuse-entailment soundness (no inferred color
//! may contradict a crowd-decided one).
//!
//! On any violation the scenario is shrunk ([`shrink::shrink`]) — drop
//! queries, then shrink tuples, then simplify the fault schedule — and
//! rendered as a self-contained repro file ([`repro::repro_text`]) that
//! [`repro::replay_repro`] (and hence a `#[test]`) can replay verbatim.

pub mod check;
pub mod oracle;
pub mod repro;
pub mod scenario;
pub mod shrink;
pub mod world;

pub use check::{check, Sabotage, Violation};
pub use repro::{parse_repro, recorded_violations, replay_repro, repro_text};
pub use scenario::{QueryShape, ScenarioSpec, SHARD_CHOICES, THREAD_CHOICES};
pub use shrink::shrink;

/// What a shrink produced: the minimized spec and its repro file text.
#[derive(Debug, Clone)]
pub struct ShrunkRepro {
    /// The minimized still-failing scenario.
    pub spec: ScenarioSpec,
    /// Self-contained repro file text (spec + sabotage + violations).
    pub repro: String,
}

/// Outcome of checking one seed.
#[derive(Debug, Clone)]
pub struct SeedOutcome {
    /// The seed that generated the scenario.
    pub seed: u64,
    /// The generated scenario.
    pub spec: ScenarioSpec,
    /// Violations found on the full scenario (empty = healthy).
    pub violations: Vec<Violation>,
    /// Present iff violations were found: the shrunk repro.
    pub shrunk: Option<ShrunkRepro>,
}

/// Generate the scenario for `seed`, check every invariant, and shrink
/// to a repro on failure.
pub fn run_seed(seed: u64, sabotage: Sabotage) -> SeedOutcome {
    let spec = ScenarioSpec::from_seed(seed);
    let violations = check(&spec, sabotage);
    let shrunk = if violations.is_empty() {
        None
    } else {
        let (small, small_violations) = shrink(&spec, sabotage);
        let repro = repro_text(&small, sabotage, &small_violations);
        Some(ShrunkRepro { spec: small, repro })
    };
    SeedOutcome { seed, spec, violations, shrunk }
}

/// Aggregate result of a soak run.
#[derive(Debug, Clone, Default)]
pub struct SoakReport {
    /// Scenarios executed.
    pub scenarios: usize,
    /// Total crowd queries across all scenarios.
    pub queries: usize,
    /// Outcomes of the seeds that violated at least one invariant.
    pub failures: Vec<SeedOutcome>,
}

impl SoakReport {
    /// True when every scenario passed every invariant.
    pub fn ok(&self) -> bool {
        self.failures.is_empty()
    }
}

/// Check `iters` consecutive seeds starting at `start_seed`. Failing
/// seeds are shrunk and collected; `progress` is called after each seed
/// (for live soak output).
pub fn soak(
    start_seed: u64,
    iters: usize,
    sabotage: Sabotage,
    mut progress: impl FnMut(&SeedOutcome),
) -> SoakReport {
    let mut report = SoakReport::default();
    for i in 0..iters {
        let outcome = run_seed(start_seed.wrapping_add(i as u64), sabotage);
        report.scenarios += 1;
        report.queries += outcome.spec.queries.len();
        progress(&outcome);
        if !outcome.violations.is_empty() {
            report.failures.push(outcome);
        }
    }
    report
}
