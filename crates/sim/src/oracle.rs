//! The reference oracle: a naive single-threaded executor.
//!
//! It answers every query sequentially, in query-id order, through the
//! runtime's per-query hook [`cdb_runtime::execute_query`] — no thread
//! pool, no work stealing, no channels, no backpressure, and a
//! hand-rolled snapshot/absorb loop instead of the scheduler's session
//! plumbing. Because every stochastic decision is stream-keyed by
//! `(seed, query id)`, the concurrent scheduler must produce *exactly*
//! this oracle's answers and aggregate counters; any divergence is a
//! scheduler bug (ordering leak, session mixup, metrics race).

use std::collections::BTreeSet;
use std::sync::{Arc, Mutex};
use std::time::Instant;

use cdb_obsv::attr::names;
use cdb_obsv::{kv, Event, SpanId};
use cdb_runtime::{
    execute_query, settled_facts, QueryJob, RuntimeConfig, RuntimeMetrics, RuntimeReport,
};

/// Run the whole fleet sequentially and report in the scheduler's format.
/// Mirrors the scheduler's contract: one cache snapshot before any query
/// runs, sessions of *successful* queries absorbed in id order after all
/// queries finish.
pub fn run_sequential(cfg: &RuntimeConfig, mut jobs: Vec<QueryJob>) -> RuntimeReport {
    let start = Instant::now();
    let metrics = Arc::new(RuntimeMetrics::new());
    jobs.sort_by_key(|j| j.id);
    let sessions: Vec<_> = match &cfg.reuse {
        Some(cache) => {
            jobs.iter().map(|j| (j.id, Arc::new(Mutex::new(cache.snapshot())))).collect()
        }
        None => Vec::new(),
    };
    let mut results = Vec::with_capacity(jobs.len());
    for job in jobs {
        let session = sessions.iter().find(|(id, _)| *id == job.id).map(|(_, s)| Arc::clone(s));
        results.push(execute_query(cfg, &metrics, job, session));
    }
    if let Some(cache) = &cfg.reuse {
        let failed: BTreeSet<u64> =
            results.iter().filter(|(_, r)| r.is_err()).map(|&(id, _)| id).collect();
        for (id, session) in &sessions {
            if !failed.contains(id) {
                let session = session.lock().expect("oracle session poisoned");
                // Mirror the scheduler's settle-after-fsync hook exactly:
                // durable first, absorb only on success.
                if let Some(hook) = &cfg.settle {
                    let facts = settled_facts(cfg, &session);
                    if !facts.is_empty() {
                        let cents: u64 = facts.iter().map(|f| f.cents).sum();
                        let ok = hook.settle(*id, &facts).is_ok();
                        cfg.trace.emit(Event::instant(
                            SpanId::root(),
                            names::STORE_SETTLE,
                            0,
                            kv![q => *id, ok => ok, n => facts.len() as u64, cents => cents],
                        ));
                        if !ok {
                            continue;
                        }
                    }
                }
                cache.absorb(&session);
            }
        }
    }
    results.sort_by_key(|&(id, _)| id);
    RuntimeReport { results, metrics: metrics.snapshot(), wall: start.elapsed(), steals: 0 }
}
