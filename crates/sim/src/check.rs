//! Differential invariant checks: run a scenario on the real concurrent
//! runtime and on the reference oracle, and verify every whole-system
//! property the seed is supposed to pin down.

use std::collections::BTreeSet;
use std::sync::Arc;

use cdb_core::executor::true_answers;
use cdb_core::fillcollect::{execute_collect, execute_fill, CollectConfig, FillConfig};
use cdb_core::SettleSink;
use cdb_core::{ReuseCache, ReuseOutcome};
use cdb_crowd::{stream_key, stream_rng, Market, SimulatedPlatform, WorkerPool};
use cdb_obsv::{Attribution, ConservationTotals, Ring, Trace};
use cdb_runtime::{RuntimeExecutor, RuntimeReport, SettleHook};
use cdb_sched::{DrrConfig, SchedConfig, SchedJob, Scheduler};
use cdb_shard::{
    partition as shard_partition, sum_snapshots, verify_partition, Component, Coordinator,
    CoordinatorConfig, MemoryConfig, ShardConfig, ShardExecutor, ShardSubmission,
};
use cdb_store::{DurableReuseCache, ScratchDir};

use crate::oracle::run_sequential;
use crate::scenario::ScenarioSpec;
use crate::world::{build_world, entity_of, runtime_config, salt, worker_accuracies};

/// One violated invariant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Which invariant broke (stable kebab-case name).
    pub invariant: String,
    /// What was expected vs observed.
    pub detail: String,
}

impl Violation {
    fn new(invariant: &str, detail: impl Into<String>) -> Violation {
        let mut detail = detail.into();
        // Keep repro files and soak logs readable.
        if detail.len() > 600 {
            detail.truncate(600);
            detail.push('…');
        }
        Violation { invariant: invariant.into(), detail }
    }
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] {}", self.invariant, self.detail)
    }
}

/// Test-only corruption, injected between execution and checking, to
/// prove the detector and shrinker catch a break end to end. `None` in
/// every production path; the soak command and regression tests arm the
/// others deliberately.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Sabotage {
    /// No corruption (the only production value).
    #[default]
    None,
    /// Drop one answer binding from the real runtime's report — a lost
    /// result the oracle still has.
    FlipBinding,
    /// Flip the `same` bit of the first crowd-recorded reuse answer — an
    /// entailed color now contradicts a crowd-decided one.
    FlipEntailment,
    /// Count one extra dispatched task in the aggregate counters — a
    /// money/task accounting leak.
    LeakTask,
    /// Report one query's scheduled completion several global rounds past
    /// its DRR fairness bound — a starved query the fair-share invariant
    /// must flag.
    StarveQuery,
    /// Corrupt the tail of the durable answer log between the simulated
    /// crash and recovery — a torn write the kill-and-recover check must
    /// surface as lost settled answers.
    TornTail,
    /// Split one connected component of the first query's tuple graph
    /// across two shard units — a partition the shard-integrity verifier
    /// must reject (a candidate could span shards and be lost).
    LeakCrossShard,
}

impl Sabotage {
    /// Stable name for repro files and CLI flags.
    pub fn as_str(self) -> &'static str {
        match self {
            Sabotage::None => "none",
            Sabotage::FlipBinding => "flip-binding",
            Sabotage::FlipEntailment => "flip-entailment",
            Sabotage::LeakTask => "leak-task",
            Sabotage::StarveQuery => "starve-query",
            Sabotage::TornTail => "torn-tail",
            Sabotage::LeakCrossShard => "leak-cross-shard",
        }
    }

    /// Parse a stable name back.
    pub fn parse(s: &str) -> Option<Sabotage> {
        match s {
            "none" => Some(Sabotage::None),
            "flip-binding" => Some(Sabotage::FlipBinding),
            "flip-entailment" => Some(Sabotage::FlipEntailment),
            "leak-task" => Some(Sabotage::LeakTask),
            "starve-query" => Some(Sabotage::StarveQuery),
            "torn-tail" => Some(Sabotage::TornTail),
            "leak-cross-shard" => Some(Sabotage::LeakCrossShard),
            _ => None,
        }
    }
}

/// Run every check for one scenario. Deterministic: equal specs (and
/// equal sabotage) produce equal violation lists.
pub fn check(spec: &ScenarioSpec, sabotage: Sabotage) -> Vec<Violation> {
    let mut v = Vec::new();
    let world = build_world(spec);
    let jobs = world.jobs;

    // --- The real (concurrent) run, with the event ring attached.
    let ring = Arc::new(Ring::with_capacity(1 << 16));
    let trace = Trace::collector(Arc::clone(&ring) as Arc<dyn cdb_obsv::Collector>);
    let cache = spec.reuse.then(|| Arc::new(ReuseCache::new()));
    let cfg = runtime_config(spec, cache.clone(), trace);
    let mut real = RuntimeExecutor::new(cfg).run(jobs.clone());
    if sabotage == Sabotage::FlipBinding {
        flip_one_binding(&mut real);
    }

    // --- Replay: the same scenario again (fresh cache) must be
    // byte-identical — the determinism invariant.
    let replay_cfg =
        runtime_config(spec, spec.reuse.then(|| Arc::new(ReuseCache::new())), Trace::off());
    let replay = RuntimeExecutor::new(replay_cfg).run(jobs.clone());
    if real.answers() != replay.answers() {
        v.push(Violation::new(
            "replay-divergence",
            format!("first run:\n{}\nsecond run:\n{}", real.answers(), replay.answers()),
        ));
    }

    // --- The oracle: naive single-threaded execution must match the
    // concurrent scheduler byte-for-byte, counters included.
    let oracle_cfg =
        runtime_config(spec, spec.reuse.then(|| Arc::new(ReuseCache::new())), Trace::off());
    let oracle = run_sequential(&oracle_cfg, jobs.clone());
    if real.answers() != oracle.answers() {
        v.push(Violation::new(
            "oracle-divergence",
            format!(
                "threads={} vs sequential oracle\nreal:\n{}\noracle:\n{}",
                spec.threads,
                real.answers(),
                oracle.answers()
            ),
        ));
    }
    if real.metrics.to_json() != oracle.metrics.to_json() {
        v.push(Violation::new(
            "oracle-metrics-divergence",
            format!("real:\n{}\noracle:\n{}", real.metrics.to_json(), oracle.metrics.to_json()),
        ));
    }

    // --- Task/money accounting: fold the event stream into per-query
    // attribution and compare its conservation totals against the
    // runtime's aggregate counters, field by field.
    let events = ring.drain();
    if ring.dropped() == 0 {
        let m = &real.metrics;
        let mut counters = ConservationTotals {
            dispatched: m.tasks_dispatched,
            retries: m.retries,
            reassignments: m.reassignments,
            timeouts: m.timeouts,
            faults: m.dropouts + m.abandons + m.slowdowns,
            rounds: m.rounds,
            queries: real.results.len() as u64,
            queries_ok: m.queries_ok,
            virtual_ms: m.virtual_ms_total,
            cost_cents: m.cost_cents,
            tasks_saved: m.tasks_saved,
            money_saved_cents: m.money_saved_cents,
        };
        if sabotage == Sabotage::LeakTask {
            counters.dispatched += 1;
        }
        let totals = Attribution::from_events(&events).conservation();
        for mismatch in totals.mismatches(&counters) {
            v.push(Violation::new("accounting", mismatch));
        }
        if m.queries_ok as usize != real.ok_count()
            || m.queries_failed as usize != real.failed_count()
        {
            v.push(Violation::new(
                "accounting",
                format!(
                    "query counters: metrics ok={}/failed={} report ok={}/failed={}",
                    m.queries_ok,
                    m.queries_failed,
                    real.ok_count(),
                    real.failed_count()
                ),
            ));
        }
        if real.failed_count() == 0 {
            let rounds: u64 = per_query_sum(&real, |q| q.rounds as u64);
            if rounds != m.rounds {
                v.push(Violation::new(
                    "round-accounting",
                    format!("per-query rounds sum {} != metrics.rounds {}", rounds, m.rounds),
                ));
            }
            let saved: u64 = per_query_sum(&real, |q| q.tasks_saved as u64);
            if saved != m.tasks_saved {
                v.push(Violation::new(
                    "round-accounting",
                    format!("per-query tasks_saved sum {} != metrics {}", saved, m.tasks_saved),
                ));
            }
        }
    }

    // --- Ground truth: perfect workers and no budget cap must recover
    // exactly the true answers on every query that completed.
    if spec.perfect && spec.budget.is_none() {
        for (id, r) in &real.results {
            let Ok(q) = r else { continue };
            let job = &jobs[*id as usize];
            let truth: BTreeSet<Vec<cdb_core::model::NodeId>> =
                true_answers(&job.graph, &job.truth).into_iter().map(|c| c.binding).collect();
            if q.bindings != truth {
                v.push(Violation::new(
                    "truth-divergence",
                    format!(
                        "q{id}: got {} bindings, ground truth has {}",
                        q.bindings.len(),
                        truth.len()
                    ),
                ));
            }
        }
    }

    // --- Reuse must change cost, never answers: under perfect workers the
    // entailed colors equal the crowd's, so any query that completes both
    // with and without the cache must report identical bindings. Gated on
    // no budget cap: under a cap the tasks reuse saves buy extra edges, so
    // the cache legitimately changes which bindings are reached.
    if spec.reuse && spec.perfect && spec.budget.is_none() {
        let fresh_cfg = runtime_config(spec, None, Trace::off());
        let fresh = RuntimeExecutor::new(fresh_cfg).run(jobs.clone());
        for ((id, a), (_, b)) in real.results.iter().zip(&fresh.results) {
            if let (Ok(a), Ok(b)) = (a, b) {
                if a.bindings != b.bindings {
                    v.push(Violation::new(
                        "reuse-divergence",
                        format!(
                            "q{id}: reuse-on bindings {:?} != reuse-off {:?}",
                            a.bindings, b.bindings
                        ),
                    ));
                }
            }
        }
    }

    // --- Reuse-entailment soundness: every crowd-recorded answer must
    // still resolve to itself through the final entailment closure (no
    // inferred color may contradict a crowd-decided one), and under
    // perfect workers the crowd never contradicts itself (zero conflicts)
    // or ground truth (entity suffixes must agree with `same`).
    if let Some(cache) = &cache {
        let mut recorded = cache.recorded();
        if sabotage == Sabotage::FlipEntailment {
            if let Some(first) = recorded.first_mut() {
                first.3 = !first.3;
            }
        }
        for (measure, a, b, same) in &recorded {
            match cache.resolve(measure, a, b) {
                ReuseOutcome::Hit { same: inferred, .. } if inferred == *same => {}
                other => {
                    v.push(Violation::new(
                        "reuse-soundness",
                        format!(
                            "crowd decided ({measure}, `{a}`, `{b}`) = {same}, closure says {other:?}"
                        ),
                    ));
                }
            }
            // The entity-suffix ground truth only speaks for the cluster
            // measure; dataset values carry a per-table `#row` suffix in
            // an unrelated namespace.
            if spec.perfect && measure == crate::world::CLUSTER_MEASURE {
                if let (Some(ka), Some(kb)) = (entity_of(a), entity_of(b)) {
                    if *same != (ka == kb) {
                        v.push(Violation::new(
                            "reuse-soundness",
                            format!(
                                "recorded ({measure}, `{a}`, `{b}`) = {same} but entities are {ka} and {kb}"
                            ),
                        ));
                    }
                }
            }
        }
        // Zero-conflict only holds when ground truth is a function of the
        // value pair scenario-wide. Two dataset queries of the same family
        // at different scales reuse the same measure and `#row` values
        // with independently generated truth, so their absorbed answers
        // may legitimately collide.
        let mut paper_scales = BTreeSet::new();
        let mut award_scales = BTreeSet::new();
        for q in &spec.queries {
            if let crate::scenario::QueryShape::Dataset { paper, scale, .. } = q {
                if *paper {
                    paper_scales.insert(*scale);
                } else {
                    award_scales.insert(*scale);
                }
            }
        }
        let value_determined = paper_scales.len() <= 1 && award_scales.len() <= 1;
        if spec.perfect && value_determined && cache.conflicts() > 0 {
            v.push(Violation::new(
                "reuse-soundness",
                format!("perfect workers produced {} cache conflicts", cache.conflicts()),
            ));
        }
    }

    // --- Multi-query scheduling: batching must never change answers,
    // attributed cents must conserve platform cents, and every query must
    // finish within its DRR fairness bound.
    check_sched(spec, &jobs, &replay, sabotage, &mut v);

    // --- Sharded execution: partition integrity for every query's tuple
    // graph, sharded-vs-oracle byte-equality, and cross-shard task/money
    // conservation.
    check_shard(spec, &jobs, &replay, sabotage, &mut v);

    // --- Kill and recover: crash after `kill_after` queries, rebuild the
    // reuse cache from the durable answer log, resume, and require the
    // outcome to be byte-identical to a process that never died.
    check_recovery(spec, &jobs, sabotage, &mut v);

    // --- Auxiliary FILL / COLLECT workloads: deterministic and sane.
    check_fill(spec, &mut v);
    check_collect(spec, &mut v);
    v
}

/// The kill-and-recover differential. Two runs of the same split fleet:
///
/// * **Variant A** (never dies): `jobs[..k]` then `jobs[k..]`, both fed
///   by one shared in-memory [`ReuseCache`].
/// * **Variant B** (crashes): the same split, but the cache is a
///   [`DurableReuseCache`] wired in as the runtime's settle hook. After
///   the first fleet every handle is dropped — the process-state
///   equivalent of `kill -9` — and the second fleet runs against a cache
///   rebuilt purely from the on-disk answer log.
///
/// Recovery is correct iff B is indistinguishable from A: identical
/// answer bindings and metrics for both fleets (`recovery-divergence` —
/// equal metrics also prove no answer was re-bought), the rebuilt cache
/// matching A's mid-point cache exactly (`recovery-loss`), every settled
/// cent surviving the crash (`recovery-conservation`), and a final
/// reopen after clean shutdown reproducing A's end state
/// (`recovery-not-idempotent`). [`Sabotage::TornTail`] corrupts the log
/// tail between crash and reopen to prove the loss detectors fire.
fn check_recovery(
    spec: &ScenarioSpec,
    jobs: &[cdb_runtime::QueryJob],
    sabotage: Sabotage,
    v: &mut Vec<Violation>,
) {
    if !spec.reuse || spec.kill_after == 0 || spec.kill_after >= jobs.len() {
        return;
    }
    let (fleet1, fleet2) = jobs.split_at(spec.kill_after);

    // Variant A: one process, one in-memory cache, no crash.
    let cache_a = Arc::new(ReuseCache::new());
    let a1 = RuntimeExecutor::new(runtime_config(spec, Some(Arc::clone(&cache_a)), Trace::off()))
        .run(fleet1.to_vec());
    let recorded_mid = cache_a.recorded();
    let a2 = RuntimeExecutor::new(runtime_config(spec, Some(Arc::clone(&cache_a)), Trace::off()))
        .run(fleet2.to_vec());
    let recorded_end = cache_a.recorded();

    // Variant B, phase 1: durable cache, crash after the first fleet.
    let dir = ScratchDir::new("recover");
    let io = |v: &mut Vec<Violation>, stage: &str, e: &dyn std::fmt::Display| {
        v.push(Violation::new("recovery-io", format!("{stage}: {e}")));
    };
    let durable = match DurableReuseCache::open(dir.path()) {
        Ok(d) => Arc::new(d),
        Err(e) => return io(v, "initial open", &e),
    };
    let durable_config = |d: &Arc<DurableReuseCache>| {
        let mut cfg = runtime_config(spec, Some(d.cache()), Trace::off());
        cfg.settle = Some(SettleHook::new(Arc::clone(d) as Arc<dyn SettleSink>));
        cfg
    };
    let b1 = RuntimeExecutor::new(durable_config(&durable)).run(fleet1.to_vec());
    let settled_cents = durable.logged_cents();
    drop(durable); // the crash: every in-memory structure is gone

    if sabotage == Sabotage::TornTail {
        if let Err(e) = tear_log_tail(dir.path()) {
            return io(v, "tearing log tail", &e);
        }
    }

    // Variant B, phase 2: recover from the log alone and resume.
    let durable = match DurableReuseCache::open(dir.path()) {
        Ok(d) => Arc::new(d),
        Err(e) => return io(v, "reopen after crash", &e),
    };
    if durable.cache().recorded() != recorded_mid {
        v.push(Violation::new(
            "recovery-loss",
            format!(
                "rebuilt cache has {} recorded answers, uninterrupted run had {} \
                 at the kill point (torn tail: {:?})",
                durable.cache().recorded().len(),
                recorded_mid.len(),
                durable.recovery().wal.torn.is_some(),
            ),
        ));
    }
    if durable.recovery().settled_cents() != settled_cents {
        v.push(Violation::new(
            "recovery-conservation",
            format!(
                "{} cents were settled before the crash, recovery found {}",
                settled_cents,
                durable.recovery().settled_cents()
            ),
        ));
    }
    let b2 = RuntimeExecutor::new(durable_config(&durable)).run(fleet2.to_vec());
    drop(durable);

    for (fleet, a, b) in [("pre-kill", &a1, &b1), ("post-recovery", &a2, &b2)] {
        if a.answers() != b.answers() {
            v.push(Violation::new(
                "recovery-divergence",
                format!(
                    "{fleet} fleet: uninterrupted:\n{}\nkill-and-recover:\n{}",
                    a.answers(),
                    b.answers()
                ),
            ));
        } else if a.metrics.to_json() != b.metrics.to_json() {
            v.push(Violation::new(
                "recovery-divergence",
                format!(
                    "{fleet} fleet answers match but metrics differ (re-bought answers?):\n\
                     uninterrupted: {}\nkill-and-recover: {}",
                    a.metrics.to_json(),
                    b.metrics.to_json()
                ),
            ));
        }
    }

    // A clean shutdown and reopen must land exactly on A's end state.
    match DurableReuseCache::open(dir.path()) {
        Ok(d) => {
            if d.cache().recorded() != recorded_end {
                v.push(Violation::new(
                    "recovery-not-idempotent",
                    format!(
                        "final reopen rebuilt {} recorded answers, uninterrupted end state \
                         has {}",
                        d.cache().recorded().len(),
                        recorded_end.len()
                    ),
                ));
            }
        }
        Err(e) => io(v, "final reopen", &e),
    }
}

/// Flip the last byte of the newest answer-log segment — the torn-write
/// injection behind [`Sabotage::TornTail`]. A no-op on an empty log.
fn tear_log_tail(dir: &std::path::Path) -> Result<(), String> {
    let segments = cdb_store::wal::segment_paths(dir).map_err(|e| e.to_string())?;
    let Some(last) = segments.last() else { return Ok(()) };
    let mut bytes = std::fs::read(last).map_err(|e| e.to_string())?;
    let Some(tail) = bytes.last_mut() else { return Ok(()) };
    *tail ^= 0xFF;
    std::fs::write(last, &bytes).map_err(|e| e.to_string())
}

/// Run the query mix through `cdb-sched` with a generous envelope (all
/// queries admit into one wave) and check the scheduler's own contracts
/// against the plain runtime run: identical bindings with batching on,
/// off, or no scheduler at all; cents-exact cost attribution; and the
/// per-query fairness bound `completion == Σ_r ceil(t_r / quantum)`
/// derived independently from each query's recorded round trace.
fn check_sched(
    spec: &ScenarioSpec,
    jobs: &[cdb_runtime::QueryJob],
    plain: &RuntimeReport,
    sabotage: Sabotage,
    v: &mut Vec<Violation>,
) {
    if spec.queries.is_empty() {
        return;
    }
    let quantum = spec.sched_quantum.max(1);
    let run = |batching: bool| {
        let cfg = SchedConfig {
            runtime: runtime_config(
                spec,
                spec.reuse.then(|| Arc::new(ReuseCache::new())),
                Trace::off(),
            ),
            drr: DrrConfig { quantum, capacity: None },
            batching,
            ..SchedConfig::default()
        };
        Scheduler::new(cfg).run(jobs.iter().map(|j| SchedJob::unconstrained(j.clone())).collect())
    };
    let on = run(true);
    let off = run(false);
    if on.bindings_text() != off.bindings_text() {
        v.push(Violation::new(
            "sched-batching-divergence",
            format!("batching on:\n{}\nbatching off:\n{}", on.bindings_text(), off.bindings_text()),
        ));
    }
    if on.bindings_text() != plain.bindings_text() {
        v.push(Violation::new(
            "sched-runtime-divergence",
            format!(
                "scheduled:\n{}\nplain runtime:\n{}",
                on.bindings_text(),
                plain.bindings_text()
            ),
        ));
    }
    let attributed: u64 = on.attributed_cents.values().sum();
    if attributed != on.platform_cents {
        v.push(Violation::new(
            "sched-conservation",
            format!("attributed {} cents != platform {} cents", attributed, on.platform_cents),
        ));
    }
    for m in on.metrics.conservation_mismatches() {
        v.push(Violation::new("sched-conservation", m));
    }
    let mut completion = on.completion_round.clone();
    if sabotage == Sabotage::StarveQuery {
        // Pretend the highest-id query was parked for 7 extra global
        // rounds — the fairness bound below must notice.
        if let Some(r) = completion.values_mut().next_back() {
            *r += 7;
        }
    }
    for (id, res) in &on.results {
        let Ok(q) = res else { continue };
        let bound: usize = q.round_tasks.iter().map(|t| t.div_ceil(quantum)).sum();
        if bound == 0 {
            continue;
        }
        let got = completion.get(id).map(|&r| r + 1);
        if got != Some(bound) {
            v.push(Violation::new(
                "sched-fairness",
                format!(
                    "q{id}: completed in {got:?} global rounds, fairness bound is {bound} \
                     (quantum {quantum}, trace {:?})",
                    q.round_tasks
                ),
            ));
        }
    }
}

/// Sharded-execution invariants.
///
/// 1. **Partition integrity**: every query's component partition must
///    pass [`cdb_shard::verify_partition`] — each edge in exactly one
///    unit, no node overlap, internal connectivity, canonical order.
///    [`Sabotage::LeakCrossShard`] splits the first query's component
///    across two units to prove this detector fires: a candidate would
///    span shards and silently vanish from the answer set.
/// 2. **Sharded vs single-shard oracle** (when the spec drew more than
///    one shard): byte-identical bindings and byte-identical merged
///    metrics JSON — placement adds concurrency, never behavior.
/// 3. **Cross-shard conservation**: the merged snapshot equals the
///    field-wise sum of the shard-local collectors, and the coordinator's
///    per-query cost attribution sums exactly to platform spend even when
///    shared HITs pack tasks from units on different shards.
/// 4. **Perfect-workers bridge**: with perfect workers and no
///    faults/budget, the sharded path recovers the same ground-truth
///    bindings as the monolithic runtime.
fn check_shard(
    spec: &ScenarioSpec,
    jobs: &[cdb_runtime::QueryJob],
    plain: &RuntimeReport,
    sabotage: Sabotage,
    v: &mut Vec<Violation>,
) {
    if spec.queries.is_empty() {
        return;
    }
    for job in jobs {
        let mut p = shard_partition(&job.graph);
        if sabotage == Sabotage::LeakCrossShard && job.id == 0 {
            leak_component_across_units(&job.graph, &mut p);
        }
        if let Err(e) = verify_partition(&job.graph, &p) {
            v.push(Violation::new("shard-partition", format!("q{}: {e}", job.id)));
        }
    }
    if spec.shard_count <= 1 {
        return;
    }
    let shard_cfg = |shards: usize| ShardConfig {
        shards,
        runtime: runtime_config(
            spec,
            spec.reuse.then(|| Arc::new(ReuseCache::new())),
            Trace::off(),
        ),
        memory: MemoryConfig::default(),
    };
    let sharded = ShardExecutor::new(shard_cfg(spec.shard_count)).run(jobs.to_vec());
    let oracle = ShardExecutor::new(shard_cfg(1)).run(jobs.to_vec());
    let (sharded, oracle) = match (sharded, oracle) {
        (Ok(s), Ok(o)) => (s, o),
        (s, o) => {
            if s.is_err() != o.is_err() {
                v.push(Violation::new(
                    "shard-divergence",
                    format!(
                        "plan outcome differs: {} shards err={} vs 1 shard err={}",
                        spec.shard_count,
                        s.is_err(),
                        o.is_err()
                    ),
                ));
            }
            return;
        }
    };
    if sharded.bindings_text() != oracle.bindings_text() {
        v.push(Violation::new(
            "shard-divergence",
            format!(
                "{} shards:\n{}\n1 shard:\n{}",
                spec.shard_count,
                sharded.bindings_text(),
                oracle.bindings_text()
            ),
        ));
    }
    if sharded.metrics.to_json() != oracle.metrics.to_json() {
        v.push(Violation::new(
            "shard-metrics-divergence",
            format!(
                "{} shards: {}\n1 shard: {}",
                spec.shard_count,
                sharded.metrics.to_json(),
                oracle.metrics.to_json()
            ),
        ));
    }
    let summed = sum_snapshots(sharded.shards.iter().map(|s| &s.metrics));
    if summed != sharded.metrics {
        v.push(Violation::new(
            "shard-conservation",
            format!(
                "shard-local collectors sum to {} but the merged snapshot is {}",
                summed.to_json(),
                sharded.metrics.to_json()
            ),
        ));
    }
    let coord_cfg = CoordinatorConfig {
        shard: shard_cfg(spec.shard_count),
        drr: DrrConfig { quantum: spec.sched_quantum.max(1), capacity: None },
        ..CoordinatorConfig::default()
    };
    match Coordinator::new(coord_cfg)
        .run(jobs.iter().map(|j| ShardSubmission::unconstrained(j.clone())).collect())
    {
        Ok(coord) => {
            let attributed: u64 = coord.attributed_cents.values().sum();
            if attributed != coord.platform_cents {
                v.push(Violation::new(
                    "shard-conservation",
                    format!(
                        "coordinator attributed {} cents != platform {} cents",
                        attributed, coord.platform_cents
                    ),
                ));
            }
        }
        Err(e) => {
            v.push(Violation::new("shard-conservation", format!("coordinator plan failed: {e}")));
        }
    }
    // Per query that completed in *both* engines: a timing-tail retry
    // exhaustion (scenario deadlines can be tight) may fail a query in
    // one engine and not the other — task numbering and latency draws
    // differ legitimately between the unit-level and query-level
    // streams — but any answer either engine does produce must be the
    // ground truth, so completed answers must agree.
    if spec.perfect
        && spec.budget.is_none()
        && spec.fault_rate == 0.0
        && spec.forced_drops.is_empty()
    {
        for ((sid, sr), (pid, pr)) in sharded.results.iter().zip(plain.results.iter()) {
            debug_assert_eq!(sid, pid);
            if let (Ok(s), Ok(p)) = (sr, pr) {
                if s.bindings != p.bindings {
                    v.push(Violation::new(
                        "shard-truth-divergence",
                        format!(
                            "perfect workers, q{sid}: sharded bindings {:?} != monolithic {:?}",
                            s.bindings, p.bindings
                        ),
                    ));
                }
            }
        }
    }
}

/// The corruption behind [`Sabotage::LeakCrossShard`]: pop one edge off
/// the first component with at least two and append it as a unit of its
/// own. The edge's endpoints now appear in two units — exactly what a
/// buggy partitioner splitting a component across shards would produce.
/// A no-op when every component has a single edge.
fn leak_component_across_units(g: &cdb_core::QueryGraph, p: &mut cdb_shard::Partition) {
    let Some(ci) = p.components.iter().position(|c| c.edges.len() >= 2) else { return };
    let moved = p.components[ci].edges.pop().expect("component has >= 2 edges");
    let (a, b) = g.edge_endpoints(moved);
    let id = p.components.len();
    p.components.push(Component { id, nodes: vec![a.min(b), a.max(b)], edges: vec![moved] });
}

fn per_query_sum(report: &RuntimeReport, f: impl Fn(&cdb_runtime::QueryResult) -> u64) -> u64 {
    report.results.iter().filter_map(|(_, r)| r.as_ref().ok()).map(f).sum()
}

fn flip_one_binding(report: &mut RuntimeReport) {
    for (_, r) in report.results.iter_mut() {
        if let Ok(q) = r {
            if let Some(first) = q.bindings.iter().next().cloned() {
                q.bindings.remove(&first);
                return;
            }
        }
    }
}

fn check_fill(spec: &ScenarioSpec, v: &mut Vec<Violation>) {
    if spec.fill_slots == 0 {
        return;
    }
    let truths = cdb_datagen::entity_pool(spec.fill_slots, stream_key(spec.seed, &[salt::FILL, 1]));
    let run = || {
        let pool = WorkerPool::with_accuracies(&worker_accuracies(spec));
        let mut platform =
            SimulatedPlatform::new(Market::Amt, pool, stream_key(spec.seed, &[salt::FILL]));
        execute_fill(&truths, &mut platform, &FillConfig::default())
    };
    let (a, b) = (run(), run());
    if a.questions != b.questions || a.values != b.values || a.correct != b.correct {
        v.push(Violation::new(
            "fill-nondeterminism",
            format!("({}, {:?}) vs ({}, {:?})", a.questions, a.values, b.questions, b.values),
        ));
    }
    if a.values.len() != spec.fill_slots || a.questions < spec.fill_slots {
        v.push(Violation::new(
            "fill-sanity",
            format!(
                "{} slots gave {} values from {} questions",
                spec.fill_slots,
                a.values.len(),
                a.questions
            ),
        ));
    }
}

fn check_collect(spec: &ScenarioSpec, v: &mut Vec<Violation>) {
    let Some((universe_n, target)) = spec.collect else { return };
    let universe = cdb_datagen::entity_pool(universe_n, stream_key(spec.seed, &[salt::COLLECT, 1]));
    let cfg = CollectConfig { target, max_questions: 5_000, ..CollectConfig::default() };
    let run = || {
        let mut rng = stream_rng(spec.seed, &[salt::COLLECT]);
        execute_collect(&universe, &mut rng, &cfg)
    };
    let (a, b) = (run(), run());
    if a.questions != b.questions || a.distinct != b.distinct || a.curve != b.curve {
        v.push(Violation::new(
            "collect-nondeterminism",
            format!("({}, {}) vs ({}, {})", a.questions, a.distinct, b.questions, b.distinct),
        ));
    }
    if a.distinct > target || a.questions != a.curve.len() {
        v.push(Violation::new(
            "collect-sanity",
            format!(
                "distinct {} (target {target}), questions {} curve {}",
                a.distinct,
                a.questions,
                a.curve.len()
            ),
        ));
    }
    if a.curve.windows(2).any(|w| w[1].1 < w[0].1 || w[1].0 != w[0].0 + 1) {
        v.push(Violation::new("collect-sanity", "curve is not monotone".to_string()));
    }
}
