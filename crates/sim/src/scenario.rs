//! Scenario model: everything one simulated run depends on, as plain
//! data. A [`ScenarioSpec`] is derived from a single `u64` seed
//! ([`ScenarioSpec::from_seed`]) but is *self-describing*: the workload
//! and environment are built from the spec's fields alone, so a shrinker
//! can mutate it and a repro file can replay it byte-for-byte.

use cdb_crowd::stream_rng;
use rand::Rng;

/// One query's workload shape.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryShape {
    /// A crowd join over two item lists drawn from the scenario's shared
    /// entity clusters: item `i` joins item `j` iff they denote the same
    /// entity (`i % clusters == j % clusters`). Labels come from
    /// [`cdb_datagen::cluster_labels`] — dirty spellings, aliasing-free.
    Cluster {
        /// Items on the left side.
        left: usize,
        /// Items on the right side.
        right: usize,
    },
    /// A full CQL query (joins + selections) over a generated dataset:
    /// one of the five representative queries of the paper's Table 4.
    Dataset {
        /// `true` = the paper (ACM/DBLP) dataset, `false` = award.
        paper: bool,
        /// Divisor of the paper-scale cardinalities (bigger = smaller).
        scale: usize,
        /// Index into [`cdb_datagen::queries_for`] (mod its length).
        query: usize,
    },
}

/// A complete scenario: randomized workload + randomized environment,
/// every field reproducible from the generating seed and serializable to
/// a repro file.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioSpec {
    /// Root seed: keys every stream (labels, platform, faults, fill,
    /// collect) via [`cdb_crowd::stream_key`].
    pub seed: u64,
    /// Thread count for the real (concurrent) run.
    pub threads: usize,
    /// Cross-query answer reuse on/off.
    pub reuse: bool,
    /// All workers answer truthfully (enables the strong invariants:
    /// ground-truth bindings, reuse/no-reuse equality, zero conflicts).
    pub perfect: bool,
    /// Simulated worker-pool size.
    pub workers: usize,
    /// Mean worker accuracy when not perfect.
    pub quality: f64,
    /// Entity clusters shared by every `Cluster` query in the scenario.
    pub clusters: usize,
    /// Uniform fault rate (split across dropout/abandon/slow).
    pub fault_rate: f64,
    /// Scripted `(worker, at_virtual_ms)` dropouts.
    pub forced_drops: Vec<(u32, u64)>,
    /// Per-assignment answer deadline (virtual ms).
    pub deadline_ms: u64,
    /// Reassignments a task may consume before its query fails.
    pub max_retries: u32,
    /// CDAS early termination on/off.
    pub early_termination: bool,
    /// Task budget per query (`None` = unlimited).
    pub budget: Option<usize>,
    /// Workers per task.
    pub redundancy: usize,
    /// DRR quantum for the multi-query scheduling checks (tasks of
    /// deficit per query per global round).
    pub sched_quantum: usize,
    /// Kill-and-recover point: run the first `kill_after` queries, drop
    /// all process state (as a crash would), reopen the durable store
    /// and run the rest. `0` disables the crash (the recovery check is
    /// skipped); values ≥ the query count leave nothing to resume.
    pub kill_after: usize,
    /// Worker shards for the component-sharded execution checks. `1`
    /// compares trivially; larger counts arm the sharded-vs-oracle
    /// differential and the cross-shard conservation invariant.
    pub shard_count: usize,
    /// The query mix, in query-id order.
    pub queries: Vec<QueryShape>,
    /// FILL slots to run as an auxiliary workload (0 = none).
    pub fill_slots: usize,
    /// COLLECT `(universe, target)` auxiliary workload.
    pub collect: Option<(usize, usize)>,
}

/// Thread counts a scenario may draw — the acceptance matrix.
pub const THREAD_CHOICES: [usize; 5] = [1, 2, 4, 8, 16];

/// Shard counts a scenario may draw for the sharded-execution checks.
pub const SHARD_CHOICES: [usize; 4] = [1, 2, 4, 8];

impl ScenarioSpec {
    /// Derive a full scenario from one seed. Every draw comes from the
    /// seed's own stream, so equal seeds give byte-equal specs.
    pub fn from_seed(seed: u64) -> ScenarioSpec {
        let mut r = stream_rng(seed, &[0x5CE2]);
        let threads = THREAD_CHOICES[r.gen_range(0..THREAD_CHOICES.len())];
        let reuse = r.gen::<f64>() < 0.5;
        let perfect = r.gen::<f64>() < 0.5;
        let workers = r.gen_range(10..=30);
        let quality = 0.75 + 0.2 * r.gen::<f64>();
        let clusters = r.gen_range(2..=4);
        let fault_rate = if r.gen::<f64>() < 0.4 { 0.0 } else { 0.25 * r.gen::<f64>() };
        let mut forced_drops = Vec::new();
        if r.gen::<f64>() < 0.25 {
            for _ in 0..r.gen_range(1..=2) {
                forced_drops.push((r.gen_range(0..workers as u32), r.gen_range(0..120_000u64)));
            }
        }
        // Mostly generous budgets (failures stay a deliberate minority);
        // occasionally tight so retry exhaustion is exercised too.
        let (deadline_ms, max_retries) =
            if r.gen::<f64>() < 0.2 { (60_000, 2) } else { (300_000, 8) };
        let early_termination = r.gen::<f64>() < 0.5;
        let budget = if r.gen::<f64>() < 0.15 { Some(r.gen_range(5..40)) } else { None };
        let redundancy = if r.gen::<f64>() < 0.5 { 3 } else { 5 };
        let n_queries = r.gen_range(1..=5);
        let queries = (0..n_queries)
            .map(|_| {
                if r.gen::<f64>() < 1.0 / 8.0 {
                    QueryShape::Dataset {
                        paper: r.gen::<f64>() < 0.5,
                        scale: r.gen_range(100..=160),
                        query: r.gen_range(0..5),
                    }
                } else {
                    QueryShape::Cluster { left: r.gen_range(2..=6), right: r.gen_range(2..=5) }
                }
            })
            .collect();
        let fill_slots = if r.gen::<f64>() < 0.4 { r.gen_range(1..=3) } else { 0 };
        let collect = if r.gen::<f64>() < 0.4 {
            Some((r.gen_range(8..=25), r.gen_range(5..=15)))
        } else {
            None
        };
        // Drawn last so older seeds keep generating byte-identical specs
        // for every field above (`shard_count` newest, after `kill_after`).
        let sched_quantum = r.gen_range(2..=16);
        let kill_after =
            if n_queries >= 2 && r.gen::<f64>() < 0.35 { r.gen_range(1..n_queries) } else { 0 };
        let shard_count = SHARD_CHOICES[r.gen_range(0..SHARD_CHOICES.len())];
        ScenarioSpec {
            seed,
            threads,
            reuse,
            perfect,
            workers,
            quality,
            clusters,
            fault_rate,
            forced_drops,
            deadline_ms,
            max_retries,
            early_termination,
            budget,
            redundancy,
            sched_quantum,
            kill_after,
            shard_count,
            queries,
            fill_slots,
            collect,
        }
    }

    /// Serialize to the repro-file format (`key=value` lines; see
    /// DESIGN.md "Simulation testing"). Round-trips through
    /// [`ScenarioSpec::parse`].
    pub fn to_text(&self) -> String {
        let mut s = String::from("# cdb-sim repro v1\n");
        s.push_str(&format!("seed={}\n", self.seed));
        s.push_str(&format!("threads={}\n", self.threads));
        s.push_str(&format!("reuse={}\n", self.reuse));
        s.push_str(&format!("perfect={}\n", self.perfect));
        s.push_str(&format!("workers={}\n", self.workers));
        s.push_str(&format!("quality={}\n", self.quality));
        s.push_str(&format!("clusters={}\n", self.clusters));
        s.push_str(&format!("fault_rate={}\n", self.fault_rate));
        for &(w, at) in &self.forced_drops {
            s.push_str(&format!("forced_drop={w}@{at}\n"));
        }
        s.push_str(&format!("deadline_ms={}\n", self.deadline_ms));
        s.push_str(&format!("max_retries={}\n", self.max_retries));
        s.push_str(&format!("early_termination={}\n", self.early_termination));
        match self.budget {
            Some(b) => s.push_str(&format!("budget={b}\n")),
            None => s.push_str("budget=none\n"),
        }
        s.push_str(&format!("redundancy={}\n", self.redundancy));
        s.push_str(&format!("sched_quantum={}\n", self.sched_quantum));
        s.push_str(&format!("kill_after={}\n", self.kill_after));
        s.push_str(&format!("shard_count={}\n", self.shard_count));
        for q in &self.queries {
            match q {
                QueryShape::Cluster { left, right } => {
                    s.push_str(&format!("query=cluster:{left}x{right}\n"));
                }
                QueryShape::Dataset { paper, scale, query } => {
                    let which = if *paper { "paper" } else { "award" };
                    s.push_str(&format!("query=dataset:{which}:{scale}:{query}\n"));
                }
            }
        }
        s.push_str(&format!("fill_slots={}\n", self.fill_slots));
        match self.collect {
            Some((u, t)) => s.push_str(&format!("collect={u}:{t}\n")),
            None => s.push_str("collect=none\n"),
        }
        s
    }

    /// Parse the repro-file format. Lines starting with `#` and keys this
    /// version does not know (e.g. the informational `violation=`) are
    /// ignored, so repro files can carry annotations.
    pub fn parse(text: &str) -> Result<ScenarioSpec, String> {
        let mut spec = ScenarioSpec {
            seed: 0,
            threads: 1,
            reuse: false,
            perfect: true,
            workers: 10,
            quality: 0.85,
            clusters: 2,
            fault_rate: 0.0,
            forced_drops: Vec::new(),
            deadline_ms: 300_000,
            max_retries: 8,
            early_termination: false,
            budget: None,
            redundancy: 5,
            sched_quantum: 10,
            kill_after: 0,
            shard_count: 1,
            queries: Vec::new(),
            fill_slots: 0,
            collect: None,
        };
        for (ln, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let (key, val) = line
                .split_once('=')
                .ok_or_else(|| format!("line {}: expected key=value, got `{line}`", ln + 1))?;
            let bad = |what: &str| format!("line {}: bad {what} `{val}`", ln + 1);
            match key {
                "seed" => spec.seed = val.parse().map_err(|_| bad("u64"))?,
                "threads" => spec.threads = val.parse().map_err(|_| bad("usize"))?,
                "reuse" => spec.reuse = val.parse().map_err(|_| bad("bool"))?,
                "perfect" => spec.perfect = val.parse().map_err(|_| bad("bool"))?,
                "workers" => spec.workers = val.parse().map_err(|_| bad("usize"))?,
                "quality" => spec.quality = val.parse().map_err(|_| bad("f64"))?,
                "clusters" => spec.clusters = val.parse().map_err(|_| bad("usize"))?,
                "fault_rate" => spec.fault_rate = val.parse().map_err(|_| bad("f64"))?,
                "forced_drop" => {
                    let (w, at) = val.split_once('@').ok_or_else(|| bad("worker@at"))?;
                    spec.forced_drops.push((
                        w.parse().map_err(|_| bad("worker id"))?,
                        at.parse().map_err(|_| bad("instant"))?,
                    ));
                }
                "deadline_ms" => spec.deadline_ms = val.parse().map_err(|_| bad("u64"))?,
                "max_retries" => spec.max_retries = val.parse().map_err(|_| bad("u32"))?,
                "early_termination" => {
                    spec.early_termination = val.parse().map_err(|_| bad("bool"))?;
                }
                "budget" => {
                    spec.budget = if val == "none" {
                        None
                    } else {
                        Some(val.parse().map_err(|_| bad("usize"))?)
                    };
                }
                "redundancy" => spec.redundancy = val.parse().map_err(|_| bad("usize"))?,
                "sched_quantum" => {
                    spec.sched_quantum = val.parse().map_err(|_| bad("usize"))?;
                }
                "kill_after" => spec.kill_after = val.parse().map_err(|_| bad("usize"))?,
                "shard_count" => spec.shard_count = val.parse().map_err(|_| bad("usize"))?,
                "query" => {
                    if let Some(rest) = val.strip_prefix("cluster:") {
                        let (l, r) = rest.split_once('x').ok_or_else(|| bad("LxR"))?;
                        spec.queries.push(QueryShape::Cluster {
                            left: l.parse().map_err(|_| bad("left"))?,
                            right: r.parse().map_err(|_| bad("right"))?,
                        });
                    } else if let Some(rest) = val.strip_prefix("dataset:") {
                        let mut it = rest.split(':');
                        let which = it.next().ok_or_else(|| bad("dataset"))?;
                        let scale = it.next().ok_or_else(|| bad("scale"))?;
                        let query = it.next().ok_or_else(|| bad("query index"))?;
                        spec.queries.push(QueryShape::Dataset {
                            paper: which == "paper",
                            scale: scale.parse().map_err(|_| bad("scale"))?,
                            query: query.parse().map_err(|_| bad("query index"))?,
                        });
                    } else {
                        return Err(bad("query shape"));
                    }
                }
                "fill_slots" => spec.fill_slots = val.parse().map_err(|_| bad("usize"))?,
                "collect" => {
                    spec.collect = if val == "none" {
                        None
                    } else {
                        let (u, t) = val.split_once(':').ok_or_else(|| bad("universe:target"))?;
                        Some((
                            u.parse().map_err(|_| bad("universe"))?,
                            t.parse().map_err(|_| bad("target"))?,
                        ))
                    };
                }
                // Unknown keys (annotations like `violation=`, `sabotage=`
                // handled by the repro module) are skipped.
                _ => {}
            }
        }
        if spec.queries.is_empty() && spec.fill_slots == 0 && spec.collect.is_none() {
            return Err("repro describes no workload".into());
        }
        Ok(spec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_seed_is_deterministic_and_seed_sensitive() {
        assert_eq!(ScenarioSpec::from_seed(7), ScenarioSpec::from_seed(7));
        let differs = (1..=20).any(|s| ScenarioSpec::from_seed(s) != ScenarioSpec::from_seed(0));
        assert!(differs, "20 consecutive seeds generated identical scenarios");
    }

    #[test]
    fn repro_text_round_trips() {
        for seed in 0..50 {
            let spec = ScenarioSpec::from_seed(seed);
            let text = spec.to_text();
            let back = ScenarioSpec::parse(&text).expect("parses");
            assert_eq!(spec, back, "round-trip diverged for seed {seed}:\n{text}");
        }
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(ScenarioSpec::parse("not a repro").is_err());
        assert!(ScenarioSpec::parse("seed=1\nquery=cluster:2z3\n").is_err());
        assert!(ScenarioSpec::parse("seed=1\n").is_err(), "no workload");
    }
}
