//! Self-contained repro files: a shrunk scenario serialized together with
//! the sabotage that was armed (if any) and the invariants it violated,
//! replayable by a `#[test]` with nothing but the file's text.

use crate::check::{check, Sabotage, Violation};
use crate::scenario::ScenarioSpec;

/// Render a repro file. The `violation=` lines are informational (they
/// record what was caught at write time); `sabotage=` is operative — a
/// replay re-arms it, so sabotage-demonstration repros stay failing.
pub fn repro_text(spec: &ScenarioSpec, sabotage: Sabotage, violations: &[Violation]) -> String {
    let mut s = spec.to_text();
    s.push_str(&format!("sabotage={}\n", sabotage.as_str()));
    let mut seen = Vec::new();
    for v in violations {
        if !seen.contains(&&v.invariant) {
            s.push_str(&format!("violation={}\n", v.invariant));
            seen.push(&v.invariant);
        }
    }
    s
}

/// Parse a repro file back into its scenario and armed sabotage.
pub fn parse_repro(text: &str) -> Result<(ScenarioSpec, Sabotage), String> {
    let spec = ScenarioSpec::parse(text)?;
    let mut sabotage = Sabotage::None;
    for line in text.lines() {
        if let Some(val) = line.trim().strip_prefix("sabotage=") {
            sabotage = Sabotage::parse(val).ok_or_else(|| format!("unknown sabotage `{val}`"))?;
        }
    }
    Ok((spec, sabotage))
}

/// The invariant names a repro file recorded at write time.
pub fn recorded_violations(text: &str) -> Vec<String> {
    text.lines()
        .filter_map(|l| l.trim().strip_prefix("violation=").map(|s| s.to_string()))
        .collect()
}

/// Replay a repro file: rebuild the scenario, re-arm the sabotage, run
/// every check. A committed repro regression-passes when this still
/// reports the violation it was written for.
pub fn replay_repro(text: &str) -> Result<Vec<Violation>, String> {
    let (spec, sabotage) = parse_repro(text)?;
    Ok(check(&spec, sabotage))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn repro_round_trips_spec_and_sabotage() {
        let spec = ScenarioSpec::from_seed(11);
        let text = repro_text(&spec, Sabotage::FlipBinding, &[]);
        let (back, sab) = parse_repro(&text).expect("parses");
        assert_eq!(back, spec);
        assert_eq!(sab, Sabotage::FlipBinding);
    }

    #[test]
    fn violation_lines_are_recorded_and_ignored_by_the_parser() {
        let spec = ScenarioSpec::from_seed(11);
        let vs = vec![
            Violation { invariant: "oracle-divergence".into(), detail: "x".into() },
            Violation { invariant: "oracle-divergence".into(), detail: "y".into() },
        ];
        let text = repro_text(&spec, Sabotage::None, &vs);
        assert_eq!(recorded_violations(&text), vec!["oracle-divergence"]);
        let (back, _) = parse_repro(&text).expect("parses despite annotations");
        assert_eq!(back, spec);
    }
}
