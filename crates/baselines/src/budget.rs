//! The budget baseline of Figures 18/19.
//!
//! "The baseline method first selects the edge with large probability in
//! the first table (with respect to the best table order) and then uses a
//! depth-first traversal to find answers joined with the other table"
//! (§6.3.3). Concretely: fix the Deco table order; repeatedly take the
//! highest-weight unasked edge of the first predicate, and depth-first
//! extend it across the remaining predicates — asking along the way —
//! until the budget is exhausted.

use std::collections::{BTreeSet, HashMap};

use cdb_core::executor::EdgeTruth;
use cdb_core::model::{EdgeId, NodeId, QueryGraph};
use cdb_crowd::{SimulatedPlatform, Task, TaskId};
use cdb_quality::majority_vote;

use crate::tree::deco_order;

/// Budget baseline result.
#[derive(Debug, Clone)]
pub struct BudgetStats {
    /// Tasks asked (≤ budget).
    pub tasks_asked: usize,
    /// Complete answers found within the budget.
    pub answers: BTreeSet<Vec<NodeId>>,
}

/// Run the baseline within `budget` tasks.
pub fn budget_baseline(
    g: &QueryGraph,
    truth: &EdgeTruth,
    platform: &mut SimulatedPlatform,
    redundancy: usize,
    budget: usize,
) -> BudgetStats {
    let order = deco_order(g);
    let mut per_pred: Vec<Vec<EdgeId>> = vec![Vec::new(); g.predicate_count()];
    for i in 0..g.edge_count() {
        let e = EdgeId(i);
        if g.edge_live(e) {
            per_pred[g.edge_predicate(e)].push(e);
        }
    }
    // First-predicate edges by weight descending.
    let mut first_edges = per_pred[order[0]].clone();
    first_edges.sort_by(|&a, &b| g.edge_weight(b).total_cmp(&g.edge_weight(a)).then(a.cmp(&b)));

    let mut state = State {
        g,
        truth,
        platform,
        redundancy,
        budget,
        asked: HashMap::new(),
        answers: BTreeSet::new(),
    };

    for &e0 in &first_edges {
        if state.asked.len() >= state.budget {
            break;
        }
        if !state.ask(e0) {
            continue;
        }
        // Depth-first: extend the binding across remaining predicates.
        let mut binding: HashMap<usize, NodeId> = HashMap::new();
        let (u, v) = g.edge_endpoints(e0);
        binding.insert(g.node_part(u).0, u);
        binding.insert(g.node_part(v).0, v);
        state.dfs(&order, 1, &mut binding, &per_pred);
    }

    BudgetStats { tasks_asked: state.asked.len(), answers: state.answers }
}

struct State<'a> {
    g: &'a QueryGraph,
    truth: &'a EdgeTruth,
    platform: &'a mut SimulatedPlatform,
    redundancy: usize,
    budget: usize,
    /// edge -> inferred blue?
    asked: HashMap<EdgeId, bool>,
    answers: BTreeSet<Vec<NodeId>>,
}

impl State<'_> {
    /// Ask (or recall) an edge; returns inferred blue. Free for edges Blue
    /// by construction. Returns false without asking when the budget is
    /// exhausted.
    fn ask(&mut self, e: EdgeId) -> bool {
        if self.g.edge_color(e) == cdb_core::Color::Blue {
            return true;
        }
        if let Some(&b) = self.asked.get(&e) {
            return b;
        }
        if self.asked.len() >= self.budget {
            return false;
        }
        let (u, v) = self.g.edge_endpoints(e);
        let task = Task::join_check(
            TaskId(e.0 as u64),
            self.g.node_label(u),
            self.g.node_label(v),
            self.truth[&e],
        )
        .with_difficulty(cdb_crowd::join_difficulty(self.g.edge_weight(e)));
        let votes: Vec<usize> = self
            .platform
            .ask_round(&[task], self.redundancy)
            .into_iter()
            .filter_map(|a| match a.answer {
                cdb_crowd::Answer::Choice(c) => Some(c),
                _ => None,
            })
            .collect();
        let yes = majority_vote(&votes, 2) == 0;
        self.asked.insert(e, yes);
        yes
    }

    fn dfs(
        &mut self,
        order: &[usize],
        depth: usize,
        binding: &mut HashMap<usize, NodeId>,
        per_pred: &[Vec<EdgeId>],
    ) {
        if depth == order.len() {
            // Complete binding: record the answer.
            let mut full = vec![NodeId(usize::MAX); self.g.part_count()];
            for (&part, &node) in binding.iter() {
                full[part] = node;
            }
            self.answers.insert(full);
            return;
        }
        let pred_idx = order[depth];
        let _pred = &self.g.predicates()[pred_idx];
        let mut edges: Vec<EdgeId> = per_pred[pred_idx]
            .iter()
            .copied()
            .filter(|&e| {
                let (u, v) = self.g.edge_endpoints(e);
                let ok_u = binding.get(&self.g.node_part(u).0).is_none_or(|&x| x == u);
                let ok_v = binding.get(&self.g.node_part(v).0).is_none_or(|&x| x == v);
                ok_u && ok_v
            })
            .collect();
        edges.sort_by(|&a, &b| {
            self.g.edge_weight(b).total_cmp(&self.g.edge_weight(a)).then(a.cmp(&b))
        });
        for e in edges {
            if self.asked.len() >= self.budget && !self.asked.contains_key(&e) {
                return;
            }
            if !self.ask(e) {
                continue;
            }
            let (u, v) = self.g.edge_endpoints(e);
            let mut inserted: Vec<usize> = Vec::with_capacity(2);
            for n in [u, v] {
                let part = self.g.node_part(n).0;
                if let std::collections::hash_map::Entry::Vacant(slot) = binding.entry(part) {
                    slot.insert(n);
                    inserted.push(part);
                }
            }
            self.dfs(order, depth + 1, binding, per_pred);
            for part in inserted {
                binding.remove(&part);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdb_core::model::PartKind;
    use cdb_crowd::{Market, WorkerPool};

    fn fixture() -> (QueryGraph, EdgeTruth) {
        let mut g = QueryGraph::new();
        let a = g.add_part(PartKind::Table { name: "A".into() });
        let b = g.add_part(PartKind::Table { name: "B".into() });
        let c = g.add_part(PartKind::Table { name: "C".into() });
        let an: Vec<_> = (0..3).map(|i| g.add_node(a, None, format!("a{i}"))).collect();
        let bn: Vec<_> = (0..3).map(|i| g.add_node(b, None, format!("b{i}"))).collect();
        let cn: Vec<_> = (0..3).map(|i| g.add_node(c, None, format!("c{i}"))).collect();
        let p_ab = g.add_predicate(a, b, true, "A~B");
        let p_bc = g.add_predicate(b, c, true, "B~C");
        let mut truth = EdgeTruth::new();
        for (i, &x) in an.iter().enumerate() {
            for (j, &y) in bn.iter().enumerate() {
                let e = g.add_edge(x, y, p_ab, if i == j { 0.8 } else { 0.4 });
                truth.insert(e, i == j);
            }
        }
        for (i, &y) in bn.iter().enumerate() {
            for (j, &z) in cn.iter().enumerate() {
                let e = g.add_edge(y, z, p_bc, if i == j { 0.8 } else { 0.4 });
                truth.insert(e, i == j);
            }
        }
        (g, truth)
    }

    fn platform(seed: u64) -> SimulatedPlatform {
        SimulatedPlatform::new(Market::Amt, WorkerPool::with_accuracies(&[1.0; 10]), seed)
    }

    #[test]
    fn respects_budget() {
        let (g, truth) = fixture();
        let mut p = platform(1);
        let stats = budget_baseline(&g, &truth, &mut p, 5, 4);
        assert!(stats.tasks_asked <= 4);
    }

    #[test]
    fn finds_answers_with_enough_budget() {
        let (g, truth) = fixture();
        let mut p = platform(2);
        let stats = budget_baseline(&g, &truth, &mut p, 5, 100);
        assert_eq!(stats.answers.len(), 3);
    }

    #[test]
    fn zero_budget_asks_nothing() {
        let (g, truth) = fixture();
        let mut p = platform(3);
        let stats = budget_baseline(&g, &truth, &mut p, 5, 0);
        assert_eq!(stats.tasks_asked, 0);
        assert!(stats.answers.is_empty());
    }

    #[test]
    fn small_budget_finds_fewer_answers_than_large() {
        let (g, truth) = fixture();
        let mut p1 = platform(4);
        let small = budget_baseline(&g, &truth, &mut p1, 5, 3);
        let mut p2 = platform(4);
        let large = budget_baseline(&g, &truth, &mut p2, 5, 50);
        assert!(small.answers.len() <= large.answers.len());
    }
}
