//! The tree (table-level join order) model and its order-selection
//! policies.
//!
//! Execution: predicates run in a fixed order. The first predicate asks
//! every live edge; each later predicate asks exactly the edges consistent
//! with at least one surviving partial binding. All prior systems share
//! this executor — only the order differs. Every predicate is one crowd
//! round, so latency = number of predicates (§6.2.1).

use std::collections::{HashMap, HashSet};

use cdb_core::executor::EdgeTruth;
use cdb_core::model::{EdgeId, NodeId, PartId, QueryGraph};
use cdb_core::Candidate;
use cdb_crowd::{SimulatedPlatform, Task, TaskId};
use cdb_quality::majority_vote;

/// Tree-model execution result.
#[derive(Debug, Clone)]
pub struct TreeStats {
    /// Tasks asked (the cost metric).
    pub tasks_asked: usize,
    /// Crowd rounds (= predicates executed, unless a prefix empties out).
    pub rounds: usize,
    /// Complete bindings that survived every predicate.
    pub answers: Vec<Candidate>,
    /// The predicate order used.
    pub order: Vec<usize>,
}

impl TreeStats {
    /// Answer bindings as a comparable set.
    pub fn answer_bindings(&self) -> std::collections::BTreeSet<Vec<NodeId>> {
        self.answers.iter().map(|c| c.binding.clone()).collect()
    }
}

/// Check that an order is a connected expansion (each predicate after the
/// first shares a part with an earlier one).
fn order_is_connected(g: &QueryGraph, order: &[usize]) -> bool {
    if order.is_empty() {
        return false;
    }
    let preds = g.predicates();
    let mut bound: HashSet<PartId> = HashSet::new();
    bound.insert(preds[order[0]].a);
    bound.insert(preds[order[0]].b);
    for &i in &order[1..] {
        let p = &preds[i];
        if !bound.contains(&p.a) && !bound.contains(&p.b) {
            return false;
        }
        bound.insert(p.a);
        bound.insert(p.b);
    }
    true
}

/// Partial bindings after executing a prefix of predicates.
#[derive(Debug, Clone)]
struct Partials {
    /// Which parts are bound so far.
    bound: Vec<PartId>,
    /// Each row binds `bound[i]` to `rows[r][i]`.
    rows: Vec<Vec<NodeId>>,
}

/// Run the tree model with a given predicate order against the crowd.
/// When `oracle` is set, no crowd is used: edges are resolved by the truth
/// directly (used by `OptTree` to cost orders).
pub fn run_tree(
    g: &QueryGraph,
    truth: &EdgeTruth,
    platform: Option<&mut SimulatedPlatform>,
    redundancy: usize,
    order: &[usize],
) -> TreeStats {
    run_tree_constrained(g, truth, platform, redundancy, order, None)
}

/// [`run_tree`] with a latency constraint (Figure 22): the first
/// `max_rounds − 1` predicates run normally; then every edge that might
/// still be needed (consistent with the survivors for every remaining
/// predicate) is crowdsourced in one final round.
pub fn run_tree_constrained(
    g: &QueryGraph,
    truth: &EdgeTruth,
    platform: Option<&mut SimulatedPlatform>,
    redundancy: usize,
    order: &[usize],
    max_rounds: Option<usize>,
) -> TreeStats {
    assert!(order_is_connected(g, order), "order must be a connected expansion");
    assert_eq!(order.len(), g.predicate_count(), "order must cover all predicates");

    // Pre-index live edges per predicate.
    let mut per_pred: Vec<Vec<EdgeId>> = vec![Vec::new(); g.predicate_count()];
    for i in 0..g.edge_count() {
        let e = EdgeId(i);
        if g.edge_live(e) {
            per_pred[g.edge_predicate(e)].push(e);
        }
    }

    let mut platform = platform;
    let mut tasks_asked = 0usize;
    let mut rounds = 0usize;
    let mut partials: Option<Partials> = None;
    // Cache of resolved edges: edge -> blue?
    let mut resolved: HashMap<EdgeId, bool> = HashMap::new();

    for (step, &pi) in order.iter().enumerate() {
        let pred = &g.predicates()[pi];
        // Latency constraint: if this would be the last permitted round and
        // predicates remain after it, flush — resolve every edge of every
        // remaining predicate that is consistent with current survivors, in
        // one crowd round.
        let flush = max_rounds.is_some_and(|r| rounds + 1 >= r && step + 1 < order.len());
        if flush {
            let mut union: Vec<EdgeId> = Vec::new();
            for &pj in &order[step..] {
                union.extend(consistent_edges(g, &partials, &per_pred[pj]));
            }
            union.sort_unstable();
            union.dedup();
            let need: Vec<EdgeId> = union
                .into_iter()
                .filter(|&e| {
                    g.edge_color(e) == cdb_core::Color::Unknown && !resolved.contains_key(&e)
                })
                .collect();
            if !need.is_empty() {
                tasks_asked += need.len();
                rounds += 1;
                resolve_edges(g, truth, platform.as_deref_mut(), redundancy, &need, &mut resolved);
            }
        }
        // Which edges of this predicate are consistent with survivors?
        let askable: Vec<EdgeId> = consistent_edges(g, &partials, &per_pred[pi]);

        // Ask the crowd (or the oracle) about each unresolved edge. Edges
        // Blue by construction (traditional predicates) are free.
        let need_crowd: Vec<EdgeId> = askable
            .iter()
            .copied()
            .filter(|&e| g.edge_color(e) == cdb_core::Color::Unknown && !resolved.contains_key(&e))
            .collect();
        if !need_crowd.is_empty() {
            tasks_asked += need_crowd.len();
            rounds += 1;
            resolve_edges(
                g,
                truth,
                platform.as_deref_mut(),
                redundancy,
                &need_crowd,
                &mut resolved,
            );
        }

        let is_blue = |e: EdgeId| -> bool {
            g.edge_color(e) == cdb_core::Color::Blue || resolved.get(&e).copied().unwrap_or(false)
        };
        let blue_edges: Vec<EdgeId> = askable.into_iter().filter(|&e| is_blue(e)).collect();

        // Join survivors with the blue edges.
        partials = Some(match partials.take() {
            None => {
                let bound = vec![pred.a, pred.b];
                let rows = blue_edges
                    .iter()
                    .map(|&e| {
                        let (mut u, mut v) = g.edge_endpoints(e);
                        if g.node_part(u) != pred.a {
                            std::mem::swap(&mut u, &mut v);
                        }
                        vec![u, v]
                    })
                    .collect();
                Partials { bound, rows }
            }
            Some(mut p) => {
                let ia = p.bound.iter().position(|&x| x == pred.a);
                let ib = p.bound.iter().position(|&x| x == pred.b);
                let mut new_rows = Vec::new();
                for row in &p.rows {
                    for &e in &blue_edges {
                        let (mut u, mut v) = g.edge_endpoints(e);
                        if g.node_part(u) != pred.a {
                            std::mem::swap(&mut u, &mut v);
                        }
                        let ok_a = ia.is_none_or(|i| row[i] == u);
                        let ok_b = ib.is_none_or(|i| row[i] == v);
                        if ok_a && ok_b {
                            let mut nr = row.clone();
                            if ia.is_none() {
                                nr.push(u);
                            }
                            if ib.is_none() {
                                nr.push(v);
                            }
                            new_rows.push(nr);
                        }
                    }
                }
                if ia.is_none() {
                    p.bound.push(pred.a);
                }
                if ib.is_none() {
                    p.bound.push(pred.b);
                }
                Partials { bound: p.bound, rows: new_rows }
            }
        });
        if partials.as_ref().is_some_and(|p| p.rows.is_empty()) {
            // Everything pruned: remaining predicates ask nothing.
            break;
        }
    }

    // Convert surviving rows into candidates with part-indexed bindings.
    let answers = match &partials {
        Some(p) if p.bound.len() == bound_part_count(g) => p
            .rows
            .iter()
            .map(|row| {
                let mut binding = vec![NodeId(usize::MAX); g.part_count()];
                for (i, part) in p.bound.iter().enumerate() {
                    binding[part.0] = row[i];
                }
                Candidate { binding, edges: Vec::new() }
            })
            .collect(),
        _ => Vec::new(),
    };

    TreeStats { tasks_asked, rounds, answers, order: order.to_vec() }
}

/// Edges of one predicate that are consistent with the current survivors.
fn consistent_edges(
    g: &QueryGraph,
    partials: &Option<Partials>,
    pred_edges: &[EdgeId],
) -> Vec<EdgeId> {
    match partials {
        None => pred_edges.to_vec(),
        Some(p) => {
            // For each edge, the endpoint in an already-bound part must
            // appear in some partial row.
            let mut present: HashMap<PartId, HashSet<NodeId>> = HashMap::new();
            for (i, part) in p.bound.iter().enumerate() {
                let set = present.entry(*part).or_default();
                for row in &p.rows {
                    set.insert(row[i]);
                }
            }
            pred_edges
                .iter()
                .copied()
                .filter(|&e| {
                    let (u, v) = g.edge_endpoints(e);
                    let ok_u = present.get(&g.node_part(u)).is_none_or(|s| s.contains(&u));
                    let ok_v = present.get(&g.node_part(v)).is_none_or(|s| s.contains(&v));
                    ok_u && ok_v
                })
                .collect()
        }
    }
}

/// Resolve a batch of edges, via the crowd (majority voting over
/// `redundancy` answers) or the oracle when no platform is given.
fn resolve_edges(
    g: &QueryGraph,
    truth: &EdgeTruth,
    platform: Option<&mut SimulatedPlatform>,
    redundancy: usize,
    edges: &[EdgeId],
    resolved: &mut HashMap<EdgeId, bool>,
) {
    match platform {
        Some(p) => {
            let tasks: Vec<Task> = edges
                .iter()
                .map(|&e| {
                    let (u, v) = g.edge_endpoints(e);
                    Task::join_check(
                        TaskId(e.0 as u64),
                        g.node_label(u),
                        g.node_label(v),
                        truth[&e],
                    )
                    .with_difficulty(cdb_crowd::join_difficulty(g.edge_weight(e)))
                })
                .collect();
            let mut votes: HashMap<EdgeId, Vec<usize>> = HashMap::new();
            for a in p.ask_round(&tasks, redundancy) {
                if let cdb_crowd::Answer::Choice(c) = a.answer {
                    votes.entry(EdgeId(a.task.0 as usize)).or_default().push(c);
                }
            }
            for &e in edges {
                let yes = majority_vote(votes.get(&e).map_or(&[][..], Vec::as_slice), 2) == 0;
                resolved.insert(e, yes);
            }
        }
        None => {
            for &e in edges {
                resolved.insert(e, truth[&e]);
            }
        }
    }
}

/// Number of parts that participate in at least one predicate.
fn bound_part_count(g: &QueryGraph) -> usize {
    let mut parts = HashSet::new();
    for p in g.predicates() {
        parts.insert(p.a);
        parts.insert(p.b);
    }
    parts.len()
}

/// CrowdDB's rule-based order: selection predicates first (push-down),
/// then joins in the order they were written.
pub fn crowddb_order(g: &QueryGraph) -> Vec<usize> {
    let preds = g.predicates();
    let selections: Vec<usize> = (0..preds.len()).filter(|&i| is_selection(g, i)).collect();
    let joins: Vec<usize> = (0..preds.len()).filter(|&i| !is_selection(g, i)).collect();
    let mut order: Vec<usize> = selections.into_iter().chain(joins).collect();
    make_connected(g, &mut order);
    order
}

/// Qurk's rule-based order: predicates exactly as written (it optimizes
/// the execution of a single join but not the inter-join order).
pub fn qurk_order(g: &QueryGraph) -> Vec<usize> {
    let mut order: Vec<usize> = (0..g.predicate_count()).collect();
    make_connected(g, &mut order);
    order
}

/// Deco's cost-based greedy order: repeatedly pick the connected predicate
/// with the smallest estimated surviving-edge cost (edge count weighted by
/// expected selectivity).
pub fn deco_order(g: &QueryGraph) -> Vec<usize> {
    let preds = g.predicates();
    let mut per_pred_cost = vec![0.0f64; preds.len()];
    for i in 0..g.edge_count() {
        let e = EdgeId(i);
        if g.edge_live(e) {
            per_pred_cost[g.edge_predicate(e)] += 1.0;
        }
    }
    let mut order = Vec::new();
    let mut used = vec![false; preds.len()];
    let mut bound: HashSet<PartId> = HashSet::new();
    while order.len() < preds.len() {
        let next = (0..preds.len())
            .filter(|&i| !used[i])
            .filter(|&i| {
                order.is_empty() || bound.contains(&preds[i].a) || bound.contains(&preds[i].b)
            })
            .min_by(|&a, &b| per_pred_cost[a].total_cmp(&per_pred_cost[b]).then(a.cmp(&b)))
            .expect("connected predicate available");
        used[next] = true;
        bound.insert(preds[next].a);
        bound.insert(preds[next].b);
        order.push(next);
    }
    order
}

/// OptTree: enumerate every connected predicate order, cost each with the
/// oracle (no crowd), and return the cheapest — the lower bound of the
/// tree model.
pub fn opt_tree_order(g: &QueryGraph, truth: &EdgeTruth) -> Vec<usize> {
    let n = g.predicate_count();
    let mut best: Option<(usize, Vec<usize>)> = None;
    let mut perm: Vec<usize> = (0..n).collect();
    permute(&mut perm, 0, &mut |order| {
        if !order_is_connected(g, order) {
            return;
        }
        let cost = run_tree(g, truth, None, 1, order).tasks_asked;
        if best.as_ref().is_none_or(|(c, _)| cost < *c) {
            best = Some((cost, order.to_vec()));
        }
    });
    best.expect("at least one connected order").1
}

fn permute(v: &mut Vec<usize>, k: usize, f: &mut impl FnMut(&[usize])) {
    if k == v.len() {
        f(v);
        return;
    }
    for i in k..v.len() {
        v.swap(k, i);
        permute(v, k + 1, f);
        v.swap(k, i);
    }
}

fn is_selection(g: &QueryGraph, pred: usize) -> bool {
    let p = &g.predicates()[pred];
    matches!(g.part_kind(p.a), cdb_core::PartKind::Constant { .. })
        || matches!(g.part_kind(p.b), cdb_core::PartKind::Constant { .. })
}

/// Stable-repair an order into a connected expansion, preserving relative
/// positions where possible.
fn make_connected(g: &QueryGraph, order: &mut Vec<usize>) {
    let preds = g.predicates();
    let mut result: Vec<usize> = Vec::with_capacity(order.len());
    let mut remaining: Vec<usize> = order.clone();
    let mut bound: HashSet<PartId> = HashSet::new();
    while !remaining.is_empty() {
        let idx = remaining
            .iter()
            .position(|&i| {
                result.is_empty() || bound.contains(&preds[i].a) || bound.contains(&preds[i].b)
            })
            .unwrap_or(0);
        let i = remaining.remove(idx);
        bound.insert(preds[i].a);
        bound.insert(preds[i].b);
        result.push(i);
    }
    *order = result;
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdb_core::model::PartKind;
    use cdb_crowd::{Market, WorkerPool};

    /// Figure-1-like graph: 3 parts, bipartite edges, one blue chain.
    fn fixture() -> (QueryGraph, EdgeTruth) {
        let mut g = QueryGraph::new();
        let a = g.add_part(PartKind::Table { name: "A".into() });
        let b = g.add_part(PartKind::Table { name: "B".into() });
        let c = g.add_part(PartKind::Table { name: "C".into() });
        let an: Vec<_> = (0..3).map(|i| g.add_node(a, None, format!("a{i}"))).collect();
        let bn: Vec<_> = (0..3).map(|i| g.add_node(b, None, format!("b{i}"))).collect();
        let cn: Vec<_> = (0..3).map(|i| g.add_node(c, None, format!("c{i}"))).collect();
        let p_ab = g.add_predicate(a, b, true, "A~B");
        let p_bc = g.add_predicate(b, c, true, "B~C");
        let mut truth = EdgeTruth::new();
        for &x in &an {
            for &y in &bn {
                let e = g.add_edge(x, y, p_ab, 0.5);
                truth.insert(e, x == an[0] && y == bn[0]);
            }
        }
        for &y in &bn {
            for &z in &cn {
                let e = g.add_edge(y, z, p_bc, 0.5);
                truth.insert(e, y == bn[0] && z == cn[0]);
            }
        }
        (g, truth)
    }

    #[test]
    fn oracle_tree_counts_tasks_per_order() {
        let (g, truth) = fixture();
        // Order [AB, BC]: ask 9 AB edges; survivors (a0,b0); then b0's 3
        // BC edges -> 12 tasks.
        let stats = run_tree(&g, &truth, None, 1, &[0, 1]);
        assert_eq!(stats.tasks_asked, 12);
        assert_eq!(stats.rounds, 2);
        assert_eq!(stats.answers.len(), 1);
    }

    #[test]
    fn opt_tree_picks_cheapest_order() {
        let (g, truth) = fixture();
        let order = opt_tree_order(&g, &truth);
        let cost = run_tree(&g, &truth, None, 1, &order).tasks_asked;
        // Both orders cost 12 here by symmetry.
        assert_eq!(cost, 12);
    }

    #[test]
    fn crowd_execution_with_perfect_workers_matches_oracle() {
        let (g, truth) = fixture();
        let mut p = SimulatedPlatform::new(Market::Amt, WorkerPool::with_accuracies(&[1.0; 10]), 1);
        let stats = run_tree(&g, &truth, Some(&mut p), 5, &[0, 1]);
        assert_eq!(stats.tasks_asked, 12);
        assert_eq!(stats.answers.len(), 1);
    }

    #[test]
    fn orders_are_connected_expansions() {
        let (g, truth) = fixture();
        for order in [crowddb_order(&g), qurk_order(&g), deco_order(&g), opt_tree_order(&g, &truth)]
        {
            assert!(order_is_connected(&g, &order), "{order:?}");
            assert_eq!(order.len(), 2);
        }
    }

    #[test]
    fn crowddb_pushes_selections_first() {
        // Add a selection to the fixture; CrowdDB must run it first.
        let (mut g, mut truth) = fixture();
        let cpart = g.add_part(PartKind::Constant { value: "x".into() });
        let cnode = g.add_node(cpart, None, "x");
        let a0 = NodeId(0);
        let psel = g.add_predicate(PartId(0), cpart, true, "A CROWDEQUAL x");
        let e = g.add_edge(a0, cnode, psel, 0.5);
        truth.insert(e, true);
        let order = crowddb_order(&g);
        assert_eq!(order[0], psel);
    }

    #[test]
    fn deco_prefers_cheap_predicates() {
        // Make predicate BC much smaller than AB: Deco starts with BC.
        let mut g = QueryGraph::new();
        let a = g.add_part(PartKind::Table { name: "A".into() });
        let b = g.add_part(PartKind::Table { name: "B".into() });
        let c = g.add_part(PartKind::Table { name: "C".into() });
        let an: Vec<_> = (0..4).map(|i| g.add_node(a, None, format!("a{i}"))).collect();
        let b0 = g.add_node(b, None, "b0");
        let c0 = g.add_node(c, None, "c0");
        let p_ab = g.add_predicate(a, b, true, "A~B");
        let p_bc = g.add_predicate(b, c, true, "B~C");
        for &x in &an {
            g.add_edge(x, b0, p_ab, 0.5);
        }
        g.add_edge(b0, c0, p_bc, 0.5);
        assert_eq!(deco_order(&g), vec![p_bc, p_ab]);
    }

    #[test]
    fn empty_partial_short_circuits() {
        // All edges red: after the first predicate nothing survives, the
        // second predicate asks nothing.
        let (g, _) = fixture();
        let truth: EdgeTruth = (0..g.edge_count()).map(|i| (EdgeId(i), false)).collect();
        let stats = run_tree(&g, &truth, None, 1, &[0, 1]);
        assert_eq!(stats.tasks_asked, 9);
        assert_eq!(stats.rounds, 1);
        assert!(stats.answers.is_empty());
    }

    #[test]
    fn constrained_run_flushes_in_final_round() {
        let (g, truth) = fixture();
        // r = 1: everything must go in one round.
        let stats = run_tree_constrained(&g, &truth, None, 1, &[0, 1], Some(1));
        assert_eq!(stats.rounds, 1);
        // The flush asks the union of everything consistent up front: all
        // 9 AB edges + all 9 BC edges.
        assert_eq!(stats.tasks_asked, 18);
        assert_eq!(stats.answers.len(), 1, "answers still computed from the flushed results");
    }

    #[test]
    fn constrained_run_with_enough_rounds_matches_unconstrained() {
        let (g, truth) = fixture();
        let free = run_tree(&g, &truth, None, 1, &[0, 1]);
        let constrained = run_tree_constrained(&g, &truth, None, 1, &[0, 1], Some(10));
        assert_eq!(free.tasks_asked, constrained.tasks_asked);
        assert_eq!(free.rounds, constrained.rounds);
    }

    #[test]
    fn constrained_cost_decreases_with_rounds() {
        let (g, truth) = fixture();
        let r1 = run_tree_constrained(&g, &truth, None, 1, &[0, 1], Some(1)).tasks_asked;
        let r2 = run_tree_constrained(&g, &truth, None, 1, &[0, 1], Some(2)).tasks_asked;
        assert!(r2 <= r1, "more rounds should never cost more ({r2} > {r1})");
    }

    #[test]
    #[should_panic(expected = "connected expansion")]
    fn disconnected_order_rejected() {
        // Build 4 parts A-B, C-D: order starting with both is fine but an
        // order [AB, CD] is disconnected.
        let mut g = QueryGraph::new();
        let a = g.add_part(PartKind::Table { name: "A".into() });
        let b = g.add_part(PartKind::Table { name: "B".into() });
        let c = g.add_part(PartKind::Table { name: "C".into() });
        let d = g.add_part(PartKind::Table { name: "D".into() });
        let a0 = g.add_node(a, None, "a0");
        let b0 = g.add_node(b, None, "b0");
        let c0 = g.add_node(c, None, "c0");
        let d0 = g.add_node(d, None, "d0");
        let p1 = g.add_predicate(a, b, true, "1");
        let p2 = g.add_predicate(c, d, true, "2");
        let mut truth = EdgeTruth::new();
        truth.insert(g.add_edge(a0, b0, p1, 0.5), true);
        truth.insert(g.add_edge(c0, d0, p2, 0.5), true);
        run_tree(&g, &truth, None, 1, &[0, 1]);
    }
}
