//! Crowdsourced entity-resolution comparators: `Trans` and `ACD`.
//!
//! Both process one join predicate at a time (ordered cost-based by the
//! number of non-pruned pairs, as in §6.1) and resolve the pairs of each
//! predicate with an ER strategy over multiple rounds:
//!
//! * **Trans** (Wang et al. \[57]): pairs are processed in descending
//!   similarity order; transitivity infers both positives (same cluster)
//!   and negatives (cluster pair already refuted), so it asks the fewest
//!   questions — but one wrong answer propagates to many pairs, which is
//!   exactly the quality loss the paper reports.
//! * **ACD** (Wang et al. \[58]): correlation-clustering-based; positives
//!   merge clusters, but negatives are *not* propagated transitively —
//!   each cluster pair is verified with its own question, costing more
//!   but containing errors.
//!
//! Latency: each round asks all pairs whose endpoint clusters are pairwise
//! disjoint (answers within a round cannot infer each other), so ER takes
//! several rounds per join — the ~5x latency the paper observes.

use std::collections::{BTreeSet, HashMap, HashSet};

use cdb_core::executor::EdgeTruth;
use cdb_core::model::{EdgeId, NodeId, PartId, QueryGraph};
use cdb_core::Candidate;
use cdb_crowd::{SimulatedPlatform, Task, TaskId};
use cdb_graph::UnionFind;
use cdb_quality::majority_vote;

/// Which ER strategy to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErMethod {
    /// Transitivity-based inference.
    Trans,
    /// Adaptive crowd dedup via correlation clustering.
    Acd,
}

/// ER execution result (same shape as the tree model's).
#[derive(Debug, Clone)]
pub struct ErStats {
    /// Tasks asked.
    pub tasks_asked: usize,
    /// Crowd rounds.
    pub rounds: usize,
    /// Complete surviving bindings.
    pub answers: Vec<Candidate>,
}

impl ErStats {
    /// Answer bindings as a comparable set.
    pub fn answer_bindings(&self) -> BTreeSet<Vec<NodeId>> {
        self.answers.iter().map(|c| c.binding.clone()).collect()
    }
}

/// Run Trans or ACD over a query graph.
pub fn run_er(
    g: &QueryGraph,
    truth: &EdgeTruth,
    platform: &mut SimulatedPlatform,
    redundancy: usize,
    method: ErMethod,
) -> ErStats {
    run_er_constrained(g, truth, platform, redundancy, method, None)
}

/// [`run_er`] with a latency constraint (Figure 22): ER rounds run
/// normally until only one permitted round remains; then every pair that
/// might still be needed — the unresolved pairs of the current predicate
/// plus the survivor-consistent pairs of every later predicate — is
/// crowdsourced at once, with no further inference.
pub fn run_er_constrained(
    g: &QueryGraph,
    truth: &EdgeTruth,
    platform: &mut SimulatedPlatform,
    redundancy: usize,
    method: ErMethod,
    max_rounds: Option<usize>,
) -> ErStats {
    // Cost-based predicate order: fewest live edges first.
    let mut per_pred: Vec<Vec<EdgeId>> = vec![Vec::new(); g.predicate_count()];
    for i in 0..g.edge_count() {
        let e = EdgeId(i);
        if g.edge_live(e) {
            per_pred[g.edge_predicate(e)].push(e);
        }
    }
    let mut order: Vec<usize> = (0..g.predicate_count()).collect();
    order.sort_by_key(|&i| per_pred[i].len());
    // Repair into a connected expansion.
    let preds = g.predicates();
    let mut connected: Vec<usize> = Vec::new();
    let mut bound: HashSet<PartId> = HashSet::new();
    while connected.len() < order.len() {
        let pos = order
            .iter()
            .position(|&i| {
                !connected.contains(&i)
                    && (connected.is_empty()
                        || bound.contains(&preds[i].a)
                        || bound.contains(&preds[i].b))
            })
            .expect("connected predicate structure");
        let i = order[pos];
        bound.insert(preds[i].a);
        bound.insert(preds[i].b);
        connected.push(i);
    }

    let mut tasks_asked = 0usize;
    let mut rounds = 0usize;
    let mut flushed = false;
    let mut flush_resolved: HashMap<EdgeId, bool> = HashMap::new();
    let mut blue: HashSet<EdgeId> = HashSet::new();
    // Edges Blue by construction (traditional predicates).
    for i in 0..g.edge_count() {
        let e = EdgeId(i);
        if g.edge_color(e) == cdb_core::Color::Blue {
            blue.insert(e);
        }
    }
    let mut survivors: Option<(Vec<PartId>, Vec<Vec<NodeId>>)> = None;

    for &pi in &connected {
        // Edges of this predicate consistent with survivors.
        let askable: Vec<EdgeId> = match &survivors {
            None => per_pred[pi].clone(),
            Some((bound_parts, rows)) => {
                let mut present: HashMap<PartId, HashSet<NodeId>> = HashMap::new();
                for (i, part) in bound_parts.iter().enumerate() {
                    let set = present.entry(*part).or_default();
                    for row in rows {
                        set.insert(row[i]);
                    }
                }
                per_pred[pi]
                    .iter()
                    .copied()
                    .filter(|&e| {
                        let (u, v) = g.edge_endpoints(e);
                        present.get(&g.node_part(u)).is_none_or(|s| s.contains(&u))
                            && present.get(&g.node_part(v)).is_none_or(|s| s.contains(&v))
                    })
                    .collect()
            }
        };

        if flushed {
            // Everything was resolved in the flush round: read the results.
            blue.extend(askable.iter().copied().filter(|e| {
                g.edge_color(*e) == cdb_core::Color::Blue
                    || flush_resolved.get(e).copied().unwrap_or(false)
            }));
        } else {
            let rounds_left = max_rounds.map(|r| r.saturating_sub(rounds));
            let more_later = pi != *connected.last().expect("non-empty");
            let (asked, rs, blue_edges, exhausted) = resolve_predicate(
                g,
                truth,
                platform,
                redundancy,
                &askable,
                method,
                rounds_left,
                more_later,
            );
            tasks_asked += asked;
            rounds += rs;
            blue.extend(blue_edges);
            if exhausted {
                // Final permitted round: flush every later predicate's
                // survivor-consistent pairs together with what resolve just
                // asked (resolve already asked its own remainder).
                let idx = connected.iter().position(|&x| x == pi).expect("present");
                let mut union: Vec<EdgeId> = Vec::new();
                for &pj in &connected[idx + 1..] {
                    union.extend(
                        per_pred[pj]
                            .iter()
                            .copied()
                            .filter(|&e| g.edge_color(e) == cdb_core::Color::Unknown),
                    );
                }
                union.sort_unstable();
                union.dedup();
                if !union.is_empty() {
                    let tasks: Vec<Task> = union
                        .iter()
                        .map(|&e| {
                            let (u, v) = g.edge_endpoints(e);
                            Task::join_check(
                                TaskId(e.0 as u64),
                                g.node_label(u),
                                g.node_label(v),
                                truth[&e],
                            )
                            .with_difficulty(cdb_crowd::join_difficulty(g.edge_weight(e)))
                        })
                        .collect();
                    let mut votes: HashMap<EdgeId, Vec<usize>> = HashMap::new();
                    // The flush shares the final round with resolve's last
                    // batch conceptually; we bill it as the same round and
                    // only count the extra tasks.
                    for a in platform.ask_round(&tasks, redundancy) {
                        if let cdb_crowd::Answer::Choice(c) = a.answer {
                            votes.entry(EdgeId(a.task.0 as usize)).or_default().push(c);
                        }
                    }
                    tasks_asked += union.len();
                    for &e in &union {
                        let yes =
                            majority_vote(votes.get(&e).map_or(&[][..], Vec::as_slice), 2) == 0;
                        flush_resolved.insert(e, yes);
                    }
                }
                flushed = true;
            }
        }

        // Join survivors with the blue edges of this predicate.
        let pred = &g.predicates()[pi];
        let edge_pairs: Vec<(NodeId, NodeId)> = askable
            .iter()
            .copied()
            .filter(|e| blue.contains(e))
            .map(|e| {
                let (mut u, mut v) = g.edge_endpoints(e);
                if g.node_part(u) != pred.a {
                    std::mem::swap(&mut u, &mut v);
                }
                (u, v)
            })
            .collect();
        survivors = Some(match survivors.take() {
            None => (vec![pred.a, pred.b], edge_pairs.iter().map(|&(u, v)| vec![u, v]).collect()),
            Some((mut bound_parts, rows)) => {
                let ia = bound_parts.iter().position(|&x| x == pred.a);
                let ib = bound_parts.iter().position(|&x| x == pred.b);
                let mut new_rows = Vec::new();
                for row in &rows {
                    for &(u, v) in &edge_pairs {
                        let ok_a = ia.is_none_or(|i| row[i] == u);
                        let ok_b = ib.is_none_or(|i| row[i] == v);
                        if ok_a && ok_b {
                            let mut nr = row.clone();
                            if ia.is_none() {
                                nr.push(u);
                            }
                            if ib.is_none() {
                                nr.push(v);
                            }
                            new_rows.push(nr);
                        }
                    }
                }
                if ia.is_none() {
                    bound_parts.push(pred.a);
                }
                if ib.is_none() {
                    bound_parts.push(pred.b);
                }
                (bound_parts, new_rows)
            }
        });
    }

    let answers = match &survivors {
        Some((bound_parts, rows)) => rows
            .iter()
            .map(|row| {
                let mut binding = vec![NodeId(usize::MAX); g.part_count()];
                for (i, part) in bound_parts.iter().enumerate() {
                    binding[part.0] = row[i];
                }
                Candidate { binding, edges: Vec::new() }
            })
            .collect(),
        None => Vec::new(),
    };
    ErStats { tasks_asked, rounds, answers }
}

/// Resolve one predicate's pairs with the chosen ER strategy. Returns
/// `(tasks asked, rounds, blue edges, budget exhausted)`. `rounds_left`
/// caps the rounds this call may use; on its last permitted round (or
/// earlier, when `more_later` demands the final round be shared with later
/// predicates) it asks all remaining pairs at once without inference.
#[allow(clippy::too_many_arguments)]
fn resolve_predicate(
    g: &QueryGraph,
    truth: &EdgeTruth,
    platform: &mut SimulatedPlatform,
    redundancy: usize,
    edges: &[EdgeId],
    method: ErMethod,
    rounds_left: Option<usize>,
    more_later: bool,
) -> (usize, usize, Vec<EdgeId>, bool) {
    // Phase 1 — intra-column dedup (the "entity resolution" part of
    // Trans/ACD): likely-duplicate same-part value pairs are crowdsourced
    // so that transitivity can infer cross pairs. A pair (x, y) of one
    // part is a dedup candidate when x and y connect to a common tuple
    // with high weight on both edges; its ground truth is "x and y refer
    // to the same value", i.e. they truly join the same partners.
    let mut intra: Vec<(NodeId, NodeId, f64, bool)> = Vec::new();
    {
        let mut by_node: HashMap<NodeId, Vec<EdgeId>> = HashMap::new();
        for &e in edges {
            let (u, v) = g.edge_endpoints(e);
            by_node.entry(u).or_default().push(e);
            by_node.entry(v).or_default().push(e);
        }
        let mut seen: HashSet<(NodeId, NodeId)> = HashSet::new();
        for (&z, zes) in &by_node {
            // All pairs of z's neighbors on the other side.
            for (i, &e1) in zes.iter().enumerate() {
                for &e2 in &zes[i + 1..] {
                    let x = g.other_endpoint(e1, z);
                    let y = g.other_endpoint(e2, z);
                    if g.node_part(x) != g.node_part(y) || x == y {
                        continue;
                    }
                    let key = if x < y { (x, y) } else { (y, x) };
                    if !seen.insert(key) {
                        continue;
                    }
                    let w = g.edge_weight(e1).min(g.edge_weight(e2));
                    if w < 0.6 {
                        continue; // only likely duplicates are dedup-worthy
                    }
                    let t = truth[&e1] && truth[&e2];
                    intra.push((key.0, key.1, w, t));
                }
            }
        }
        intra.sort_by(|a, b| b.2.total_cmp(&a.2).then((a.0, a.1).cmp(&(b.0, b.1))));
    }

    // Order cross pairs by similarity descending (both methods).
    let mut todo: Vec<EdgeId> =
        edges.iter().copied().filter(|&e| g.edge_color(e) == cdb_core::Color::Unknown).collect();
    let pre_blue: Vec<EdgeId> =
        edges.iter().copied().filter(|&e| g.edge_color(e) == cdb_core::Color::Blue).collect();
    todo.sort_by(|&a, &b| g.edge_weight(b).total_cmp(&g.edge_weight(a)).then(a.cmp(&b)));

    // Clusters over all nodes touched by this predicate.
    let mut dsu = UnionFind::new(g.node_count());
    let mut negative: HashSet<(usize, usize)> = HashSet::new();
    let mut blue: Vec<EdgeId> = pre_blue;
    let mut tasks_asked = 0usize;
    let mut rounds = 0usize;

    // Crowdsource the dedup pairs (batched; ~10 per round like the HITs).
    let mut synthetic_id = 1u64 << 32; // ids above any edge id
    for chunk in intra.chunks(16) {
        if rounds_left.is_some_and(|r| rounds + 1 >= r) {
            break; // save the remaining rounds for the join pairs
        }
        let tasks: Vec<Task> = chunk
            .iter()
            .map(|&(x, y, w, t)| {
                synthetic_id += 1;
                Task::join_check(TaskId(synthetic_id), g.node_label(x), g.node_label(y), t)
                    .with_difficulty(cdb_crowd::join_difficulty(w))
            })
            .collect();
        let answers = platform.ask_round(&tasks, redundancy);
        tasks_asked += chunk.len();
        rounds += 1;
        let mut votes: HashMap<TaskId, Vec<usize>> = HashMap::new();
        for a in answers {
            if let cdb_crowd::Answer::Choice(c) = a.answer {
                votes.entry(a.task).or_default().push(c);
            }
        }
        let base = synthetic_id - chunk.len() as u64;
        for (i, &(x, y, _, _)) in chunk.iter().enumerate() {
            let tid = TaskId(base + i as u64 + 1);
            let yes = majority_vote(votes.get(&tid).map_or(&[][..], Vec::as_slice), 2) == 0;
            if yes {
                dsu.union(x.0, y.0);
            }
        }
    }

    let mut remaining: Vec<EdgeId> = todo;
    let mut exhausted = false;
    while !remaining.is_empty() {
        // Latency constraint: on the final permitted round, ask everything
        // still unresolved at once (no inter-round inference).
        let final_round = rounds_left.is_some_and(|r| {
            let used = rounds;
            r.saturating_sub(used) <= 1
        });
        // Inference pass: resolve pairs decided by clustering.
        let mut next_remaining = Vec::new();
        let mut batch: Vec<EdgeId> = Vec::new();
        // Two pairs can share a round unless they connect the same cluster
        // pair (then one answer would infer the other) or chain through a
        // shared cluster (a merge could connect the other pair's clusters).
        let mut batch_pairs: HashSet<(usize, usize)> = HashSet::new();
        let mut batch_load: HashMap<usize, usize> = HashMap::new();
        for &e in &remaining {
            let (u, v) = g.edge_endpoints(e);
            let (cu, cv) = (dsu.find(u.0), dsu.find(v.0));
            if cu == cv {
                // Same cluster: inferred positive (both methods).
                blue.push(e);
                continue;
            }
            if method == ErMethod::Trans && negative.contains(&key(cu, cv)) {
                // Inferred negative (Trans only).
                continue;
            }
            if method == ErMethod::Acd && negative.contains(&key(cu, cv)) {
                // ACD: each refuted cluster pair was asked once already;
                // further pairs in the same cluster pair are also skipped
                // (the cluster-level answer applies).
                continue;
            }
            // Can it join this round? A pair may share a round with others
            // as long as no cluster is touched twice (a merge in this round
            // could otherwise make another pair of this round inferable) —
            // except on a forced final round, which asks everything.
            // Relaxation: pairs that merely share ONE cluster cannot infer
            // each other directly, so we allow up to `CLUSTER_FANOUT`
            // same-cluster pairs per round; this matches the moderate
            // round counts the paper reports for ER methods.
            const CLUSTER_FANOUT: usize = 2;
            let cu_load = batch_load.get(&cu).copied().unwrap_or(0);
            let cv_load = batch_load.get(&cv).copied().unwrap_or(0);
            if !final_round
                && (batch_pairs.contains(&key(cu, cv))
                    || cu_load >= CLUSTER_FANOUT
                    || cv_load >= CLUSTER_FANOUT)
            {
                next_remaining.push(e);
                continue;
            }
            batch_pairs.insert(key(cu, cv));
            *batch_load.entry(cu).or_insert(0) += 1;
            *batch_load.entry(cv).or_insert(0) += 1;
            batch.push(e);
        }
        if batch.is_empty() {
            break;
        }
        // Ask the batch.
        let tasks: Vec<Task> = batch
            .iter()
            .map(|&e| {
                let (u, v) = g.edge_endpoints(e);
                Task::join_check(TaskId(e.0 as u64), g.node_label(u), g.node_label(v), truth[&e])
                    .with_difficulty(cdb_crowd::join_difficulty(g.edge_weight(e)))
            })
            .collect();
        let mut votes: HashMap<EdgeId, Vec<usize>> = HashMap::new();
        for a in platform.ask_round(&tasks, redundancy) {
            if let cdb_crowd::Answer::Choice(c) = a.answer {
                votes.entry(EdgeId(a.task.0 as usize)).or_default().push(c);
            }
        }
        tasks_asked += batch.len();
        rounds += 1;
        for &e in &batch {
            let yes = majority_vote(votes.get(&e).map_or(&[][..], Vec::as_slice), 2) == 0;
            let (u, v) = g.edge_endpoints(e);
            if yes {
                blue.push(e);
                dsu.union(u.0, v.0);
            } else {
                let (cu, cv) = (dsu.find(u.0), dsu.find(v.0));
                negative.insert(key(cu, cv));
            }
        }
        remaining = next_remaining;
        if final_round {
            exhausted = true;
            break;
        }
    }
    // The budget is also exhausted when the caller needs the final round
    // for later predicates and we just consumed it.
    if let Some(r) = rounds_left {
        if more_later && rounds >= r.saturating_sub(1) {
            exhausted = true;
        }
    }
    (tasks_asked, rounds, blue, exhausted)
}

fn key(a: usize, b: usize) -> (usize, usize) {
    (a.min(b), a.max(b))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdb_core::model::PartKind;
    use cdb_crowd::{Market, WorkerPool};

    /// Bipartite join with transitive structure: a0 ~ b0 ~ a1 (a0, a1 both
    /// match b0) plus unrelated pairs.
    fn fixture() -> (QueryGraph, EdgeTruth) {
        let mut g = QueryGraph::new();
        let a = g.add_part(PartKind::Table { name: "A".into() });
        let b = g.add_part(PartKind::Table { name: "B".into() });
        let an: Vec<_> = (0..3).map(|i| g.add_node(a, None, format!("a{i}"))).collect();
        let bn: Vec<_> = (0..3).map(|i| g.add_node(b, None, format!("b{i}"))).collect();
        let p = g.add_predicate(a, b, true, "A~B");
        let mut truth = EdgeTruth::new();
        for (i, &x) in an.iter().enumerate() {
            for (j, &y) in bn.iter().enumerate() {
                let e = g.add_edge(x, y, p, 0.4 + 0.05 * (i + j) as f64);
                // a0,a1 both match b0; a2 matches b2.
                let t = (j == 0 && i <= 1) || (i == 2 && j == 2);
                truth.insert(e, t);
            }
        }
        (g, truth)
    }

    fn platform(acc: f64, seed: u64) -> SimulatedPlatform {
        SimulatedPlatform::new(Market::Amt, WorkerPool::with_accuracies(&[acc; 15]), seed)
    }

    #[test]
    fn trans_finds_true_matches_with_perfect_workers() {
        let (g, truth) = fixture();
        let mut p = platform(1.0, 1);
        let stats = run_er(&g, &truth, &mut p, 5, ErMethod::Trans);
        assert_eq!(stats.answers.len(), 3);
        // All true pairs found.
        let found = stats.answer_bindings();
        assert_eq!(found.len(), 3);
    }

    #[test]
    fn acd_finds_true_matches_with_perfect_workers() {
        let (g, truth) = fixture();
        let mut p = platform(1.0, 1);
        let stats = run_er(&g, &truth, &mut p, 5, ErMethod::Acd);
        assert_eq!(stats.answers.len(), 3);
    }

    #[test]
    fn trans_asks_fewer_than_all_pairs() {
        let (g, truth) = fixture();
        let mut p = platform(1.0, 2);
        let stats = run_er(&g, &truth, &mut p, 5, ErMethod::Trans);
        assert!(stats.tasks_asked < g.edge_count(), "{}", stats.tasks_asked);
    }

    #[test]
    fn er_takes_multiple_rounds() {
        let (g, truth) = fixture();
        let mut p = platform(1.0, 3);
        let stats = run_er(&g, &truth, &mut p, 5, ErMethod::Trans);
        assert!(stats.rounds >= 2, "{}", stats.rounds);
    }

    #[test]
    fn trans_cheaper_or_equal_to_acd() {
        let (g, truth) = fixture();
        let mut p1 = platform(1.0, 4);
        let trans = run_er(&g, &truth, &mut p1, 5, ErMethod::Trans);
        let mut p2 = platform(1.0, 4);
        let acd = run_er(&g, &truth, &mut p2, 5, ErMethod::Acd);
        assert!(
            trans.tasks_asked <= acd.tasks_asked,
            "{} > {}",
            trans.tasks_asked,
            acd.tasks_asked
        );
    }

    #[test]
    fn constrained_er_respects_round_budget() {
        let (g, truth) = fixture();
        for r in 1..=3usize {
            let mut p = platform(1.0, 10 + r as u64);
            let stats = run_er_constrained(&g, &truth, &mut p, 5, ErMethod::Trans, Some(r));
            assert!(stats.rounds <= r + 1, "requested {r} rounds, used {}", stats.rounds);
        }
    }

    #[test]
    fn constrained_er_with_loose_budget_matches_free_run() {
        let (g, truth) = fixture();
        let mut p1 = platform(1.0, 11);
        let free = run_er(&g, &truth, &mut p1, 5, ErMethod::Trans);
        let mut p2 = platform(1.0, 11);
        let constrained = run_er_constrained(&g, &truth, &mut p2, 5, ErMethod::Trans, Some(100));
        assert_eq!(free.tasks_asked, constrained.tasks_asked);
        assert_eq!(free.answers.len(), constrained.answers.len());
    }

    #[test]
    fn constrained_er_still_finds_answers_at_r1() {
        let (g, truth) = fixture();
        let mut p = platform(1.0, 12);
        let stats = run_er_constrained(&g, &truth, &mut p, 5, ErMethod::Trans, Some(1));
        assert_eq!(stats.answers.len(), 3, "flushing everything still resolves the query");
    }

    #[test]
    fn multi_predicate_query_prunes_between_joins() {
        // Chain A~B, B~C where B~C kills most pairs.
        let mut g = QueryGraph::new();
        let a = g.add_part(PartKind::Table { name: "A".into() });
        let b = g.add_part(PartKind::Table { name: "B".into() });
        let c = g.add_part(PartKind::Table { name: "C".into() });
        let a0 = g.add_node(a, None, "a0");
        let a1 = g.add_node(a, None, "a1");
        let b0 = g.add_node(b, None, "b0");
        let b1 = g.add_node(b, None, "b1");
        let c0 = g.add_node(c, None, "c0");
        let p_ab = g.add_predicate(a, b, true, "A~B");
        let p_bc = g.add_predicate(b, c, true, "B~C");
        let mut truth = EdgeTruth::new();
        truth.insert(g.add_edge(a0, b0, p_ab, 0.8), true);
        truth.insert(g.add_edge(a1, b1, p_ab, 0.8), true);
        truth.insert(g.add_edge(b0, c0, p_bc, 0.8), true);
        let mut p = platform(1.0, 5);
        let stats = run_er(&g, &truth, &mut p, 5, ErMethod::Trans);
        // B~C (1 edge) runs first by cost order; b1 never survives so only
        // (a0, b0) is asked on the A~B side.
        assert_eq!(stats.tasks_asked, 2);
        assert_eq!(stats.answers.len(), 1);
    }
}
