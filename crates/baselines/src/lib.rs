//! The systems CDB is compared against in Section 6.
//!
//! * [`tree`] — the *tree model* shared by all prior crowd databases: pick
//!   a table-level join order, then crowdsource every surviving tuple pair
//!   predicate by predicate. Order selection distinguishes the systems:
//!   `CrowdDB` (rule-based: push selections, joins as written), `Qurk`
//!   (rule-based, no push-down), `Deco` (cost-based greedy) and `OptTree`
//!   (enumerate all orders with oracle colors, take the cheapest — the
//!   tree model's lower bound).
//! * [`er`] — crowdsourced entity-resolution comparators for joins:
//!   `Trans` (transitivity-based inference, Wang et al. \[57]) and `ACD`
//!   (correlation-clustering-based adaptive dedup, Wang et al. \[58]).
//! * [`budget`] — the budget baseline of Figures 18/19: best table order,
//!   then highest-probability edge first with depth-first completion.

pub mod budget;
pub mod er;
pub mod tree;

pub use budget::budget_baseline;
pub use er::{run_er, ErMethod};
pub use tree::{crowddb_order, deco_order, opt_tree_order, qurk_order, run_tree, TreeStats};
