//! Prefix-filter similarity join.
//!
//! Building the CDB query graph requires all pairs `(x, y)` with
//! `sim(x, y) >= ε`. Enumerating the cross product is quadratic; the paper
//! instead uses prefix filtering (Bayardo et al. [10], Wang et al. [56]).
//! For a Jaccard threshold ε, any two sets with `J(A, B) >= ε` must share a
//! token within the first `|A| - ceil(ε * |A|) + 1` tokens of `A` under a
//! global token order — so only pairs sharing a prefix token are verified.

use std::collections::HashMap;

use crate::{qgrams, tokens, SimilarityFn, SimilarityMeasure};

/// One pair produced by a similarity join: indexes into the two input slices
/// plus the verified similarity.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimJoinPair {
    /// Index into the left input.
    pub left: usize,
    /// Index into the right input.
    pub right: usize,
    /// Verified similarity in `[0, 1]`, at least the join threshold.
    pub sim: f64,
}

/// Record signature used by the prefix filter: the sorted token ids of a
/// string under a global frequency order (rarest first).
struct Signature {
    tokens: Vec<u32>,
}

fn build_signatures(values: &[&str], f: SimilarityFn) -> Vec<Signature> {
    let tokenize = |s: &str| -> Vec<String> {
        match f {
            SimilarityFn::TokenJaccard | SimilarityFn::Cosine => tokens(s),
            SimilarityFn::QGramJaccard { q } => qgrams(s, q),
            // ED / NoSim joins don't use token signatures.
            SimilarityFn::EditDistance | SimilarityFn::NoSim => Vec::new(),
        }
    };
    let token_lists: Vec<Vec<String>> = values.iter().map(|v| tokenize(v)).collect();

    // Global frequency order: rare tokens first shrinks candidate lists.
    let mut freq: HashMap<&str, u32> = HashMap::new();
    for list in &token_lists {
        for t in list {
            *freq.entry(t.as_str()).or_insert(0) += 1;
        }
    }
    let mut vocab: Vec<&str> = freq.keys().copied().collect();
    vocab.sort_by_key(|t| (freq[t], *t));
    let ids: HashMap<&str, u32> = vocab.iter().enumerate().map(|(i, t)| (*t, i as u32)).collect();

    token_lists
        .iter()
        .map(|list| {
            let mut t: Vec<u32> = list.iter().map(|s| ids[s.as_str()]).collect();
            t.sort_unstable();
            Signature { tokens: t }
        })
        .collect()
}

/// Prefix length for Jaccard threshold `eps` on a set of size `len`:
/// `len - ceil(eps * len) + 1`.
///
/// The product is nudged down by a relative epsilon before the ceil:
/// `eps * len` is frequently integral in exact arithmetic but lands just
/// above the integer in f64 (e.g. `0.8 * 20 == 16.000000000000004`), and a
/// raw ceil then demands one more overlapping token than the threshold
/// actually requires — shortening the prefix and silently dropping true
/// pairs before verification. Biasing downward is always safe: an
/// undersized overlap only lengthens the prefix, admitting extra
/// candidates that exact verification rejects.
fn jaccard_prefix_len(len: usize, eps: f64) -> usize {
    if len == 0 {
        return 0;
    }
    let product = eps * len as f64;
    let min_overlap = (product - product * 1e-9 - f64::EPSILON).ceil() as usize;
    len - min_overlap.min(len) + 1
}

/// FP-robust slack for the `eps*|A| <= |B| <= |A|/eps` length filter —
/// same downward bias as [`jaccard_prefix_len`], scaled to the lengths.
fn length_filter_slack(la: f64, lb: f64) -> f64 {
    1e-9 * la.max(lb).max(1.0)
}

/// Find all pairs `(i, j)` with `f.similarity(left[i], right[j]) >= eps`.
///
/// For the Jaccard family the candidate generation uses prefix filtering;
/// for edit distance a length filter is applied
/// (`sim >= eps` implies `max_len - min_len <= (1 - eps) * max_len`); for
/// `NoSim` every pair is a candidate (probability 0.5 >= ε whenever ε <=
/// 0.5), matching the paper's ablation.
///
/// Every returned pair is *verified* with the exact measure, so the result
/// is exactly the set of pairs at or above the threshold.
pub fn similarity_join(
    left: &[&str],
    right: &[&str],
    f: SimilarityFn,
    eps: f64,
) -> Vec<SimJoinPair> {
    assert!((0.0..=1.0).contains(&eps), "threshold must be in [0, 1]");
    match f {
        SimilarityFn::TokenJaccard | SimilarityFn::QGramJaccard { .. } => {
            prefix_filter_join(left, right, f, eps)
        }
        SimilarityFn::Cosine | SimilarityFn::EditDistance | SimilarityFn::NoSim => {
            verify_all_pairs(left, right, f, eps)
        }
    }
}

/// Self-join variant: all unordered pairs `(i, j)` with `i < j` and
/// similarity at least `eps` within a single value list.
///
/// Enumerates the upper triangle directly rather than running the
/// bipartite join on `(values, values)` and discarding half the output:
/// each record probes only records before it, so candidate generation and
/// verification cost half the bipartite version, and degenerate measures
/// (`NoSim` admits everything) never verify the diagonal `(i, i)`.
pub fn similarity_join_self(values: &[&str], f: SimilarityFn, eps: f64) -> Vec<SimJoinPair> {
    assert!((0.0..=1.0).contains(&eps), "threshold must be in [0, 1]");
    match f {
        SimilarityFn::TokenJaccard | SimilarityFn::QGramJaccard { .. } => {
            prefix_filter_join_self(values, f, eps)
        }
        SimilarityFn::Cosine | SimilarityFn::EditDistance | SimilarityFn::NoSim => {
            verify_upper_pairs(values, f, eps)
        }
    }
}

fn prefix_filter_join(
    left: &[&str],
    right: &[&str],
    f: SimilarityFn,
    eps: f64,
) -> Vec<SimJoinPair> {
    // Build a shared vocabulary over both sides so token ids agree.
    let mut all: Vec<&str> = Vec::with_capacity(left.len() + right.len());
    all.extend_from_slice(left);
    all.extend_from_slice(right);
    let sigs = build_signatures(&all, f);
    let (lsigs, rsigs) = sigs.split_at(left.len());

    // Index the right side by prefix token.
    let mut index: HashMap<u32, Vec<usize>> = HashMap::new();
    for (j, sig) in rsigs.iter().enumerate() {
        let plen = jaccard_prefix_len(sig.tokens.len(), eps);
        for &t in &sig.tokens[..plen.min(sig.tokens.len())] {
            index.entry(t).or_default().push(j);
        }
    }

    let mut out = Vec::new();
    let mut seen: Vec<usize> = Vec::new(); // generation-stamped dedup
    let mut stamp = vec![usize::MAX; right.len()];
    for (i, sig) in lsigs.iter().enumerate() {
        seen.clear();
        let plen = jaccard_prefix_len(sig.tokens.len(), eps);
        for &t in &sig.tokens[..plen.min(sig.tokens.len())] {
            if let Some(cands) = index.get(&t) {
                for &j in cands {
                    if stamp[j] != i {
                        stamp[j] = i;
                        seen.push(j);
                    }
                }
            }
        }
        for &j in &seen {
            // Length filter: J(A,B) >= eps requires eps*|A| <= |B| <= |A|/eps.
            let (la, lb) = (sig.tokens.len() as f64, rsigs[j].tokens.len() as f64);
            let slack = length_filter_slack(la, lb);
            if lb < eps * la - slack || (eps > 0.0 && lb > la / eps + slack) {
                continue;
            }
            let sim = f.similarity(left[i], right[j]);
            if sim >= eps {
                out.push(SimJoinPair { left: i, right: j, sim });
            }
        }
    }
    out.sort_by_key(|a| (a.left, a.right));
    out
}

/// Upper-triangle prefix-filter join over one list: record `i` probes the
/// index of records `0..i`, then posts its own prefix tokens — every
/// candidate pair is generated exactly once, as `(j, i)` with `j < i`.
fn prefix_filter_join_self(values: &[&str], f: SimilarityFn, eps: f64) -> Vec<SimJoinPair> {
    let sigs = build_signatures(values, f);
    let mut index: HashMap<u32, Vec<usize>> = HashMap::new();
    let mut out = Vec::new();
    let mut seen: Vec<usize> = Vec::new(); // generation-stamped dedup
    let mut stamp = vec![usize::MAX; values.len()];
    for (i, sig) in sigs.iter().enumerate() {
        seen.clear();
        let plen = jaccard_prefix_len(sig.tokens.len(), eps).min(sig.tokens.len());
        for &t in &sig.tokens[..plen] {
            if let Some(cands) = index.get(&t) {
                for &j in cands {
                    if stamp[j] != i {
                        stamp[j] = i;
                        seen.push(j);
                    }
                }
            }
        }
        for &j in &seen {
            let (la, lb) = (sigs[j].tokens.len() as f64, sig.tokens.len() as f64);
            let slack = length_filter_slack(la, lb);
            if lb < eps * la - slack || (eps > 0.0 && lb > la / eps + slack) {
                continue;
            }
            let sim = f.similarity(values[j], values[i]);
            if sim >= eps {
                out.push(SimJoinPair { left: j, right: i, sim });
            }
        }
        for &t in &sig.tokens[..plen] {
            index.entry(t).or_default().push(i);
        }
    }
    out.sort_by_key(|a| (a.left, a.right));
    out
}

/// Exact verification over the upper triangle (`i < j` only).
fn verify_upper_pairs(values: &[&str], f: SimilarityFn, eps: f64) -> Vec<SimJoinPair> {
    let mut out = Vec::new();
    for (i, a) in values.iter().enumerate() {
        for (j, b) in values.iter().enumerate().skip(i + 1) {
            if f == SimilarityFn::EditDistance {
                let (la, lb) = (a.chars().count(), b.chars().count());
                let max_len = la.max(lb);
                if max_len > 0 && (la.abs_diff(lb) as f64) > (1.0 - eps) * max_len as f64 {
                    continue;
                }
            }
            let sim = f.similarity(a, b);
            if sim >= eps {
                out.push(SimJoinPair { left: i, right: j, sim });
            }
        }
    }
    out
}

fn verify_all_pairs(left: &[&str], right: &[&str], f: SimilarityFn, eps: f64) -> Vec<SimJoinPair> {
    let mut out = Vec::new();
    for (i, a) in left.iter().enumerate() {
        for (j, b) in right.iter().enumerate() {
            if f == SimilarityFn::EditDistance {
                // Length filter for normalized ED similarity.
                let (la, lb) = (a.chars().count(), b.chars().count());
                let max_len = la.max(lb);
                if max_len > 0 && (la.abs_diff(lb) as f64) > (1.0 - eps) * max_len as f64 {
                    continue;
                }
            }
            let sim = f.similarity(a, b);
            if sim >= eps {
                out.push(SimJoinPair { left: i, right: j, sim });
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::BTreeSet;

    fn brute_force(
        left: &[&str],
        right: &[&str],
        f: SimilarityFn,
        eps: f64,
    ) -> BTreeSet<(usize, usize)> {
        let mut out = BTreeSet::new();
        for (i, a) in left.iter().enumerate() {
            for (j, b) in right.iter().enumerate() {
                if f.similarity(a, b) >= eps {
                    out.insert((i, j));
                }
            }
        }
        out
    }

    #[test]
    fn join_matches_brute_force_on_universities() {
        let left = ["Univ. of California", "Univ. of Chicago", "Microsoft", "Duke Univ."];
        let right = [
            "University of California",
            "University of Chicago",
            "Microsoft Cambridge",
            "Duke Uni.",
            "University of Cambridge",
        ];
        for f in [SimilarityFn::QGramJaccard { q: 2 }, SimilarityFn::TokenJaccard] {
            let got: BTreeSet<(usize, usize)> = similarity_join(&left, &right, f, 0.3)
                .into_iter()
                .map(|p| (p.left, p.right))
                .collect();
            assert_eq!(got, brute_force(&left, &right, f, 0.3), "{f:?}");
        }
    }

    #[test]
    fn join_pairs_carry_verified_similarity() {
        let left = ["abcd"];
        let right = ["abcd", "abce"];
        let pairs = similarity_join(&left, &right, SimilarityFn::QGramJaccard { q: 2 }, 0.3);
        let exact = pairs.iter().find(|p| p.right == 0).unwrap();
        assert_eq!(exact.sim, 1.0);
    }

    #[test]
    fn self_join_excludes_self_and_mirror_pairs() {
        let vals = ["sigmod16", "sigmod14", "icde"];
        let pairs = similarity_join_self(&vals, SimilarityFn::QGramJaccard { q: 2 }, 0.3);
        for p in &pairs {
            assert!(p.left < p.right);
        }
        assert!(pairs.iter().any(|p| (p.left, p.right) == (0, 1)));
    }

    #[test]
    fn edit_distance_join_applies_length_filter_correctly() {
        let left = ["abc"];
        let right = ["abcdefghij", "abd"];
        let got: Vec<usize> = similarity_join(&left, &right, SimilarityFn::EditDistance, 0.6)
            .into_iter()
            .map(|p| p.right)
            .collect();
        assert_eq!(got, vec![1]);
    }

    #[test]
    fn nosim_join_returns_everything_at_low_threshold() {
        let left = ["a", "b"];
        let right = ["c", "d"];
        let pairs = similarity_join(&left, &right, SimilarityFn::NoSim, 0.3);
        assert_eq!(pairs.len(), 4);
        assert!(pairs.iter().all(|p| p.sim == 0.5));
    }

    #[test]
    fn empty_inputs_yield_no_pairs() {
        let none: [&str; 0] = [];
        assert!(similarity_join(&none, &["x"], SimilarityFn::default(), 0.3).is_empty());
        assert!(similarity_join(&["x"], &none, SimilarityFn::default(), 0.3).is_empty());
    }

    #[test]
    fn prefix_len_formula() {
        assert_eq!(jaccard_prefix_len(10, 0.5), 6);
        assert_eq!(jaccard_prefix_len(10, 0.9), 2);
        assert_eq!(jaccard_prefix_len(0, 0.5), 0);
        assert_eq!(jaccard_prefix_len(1, 1.0), 1);
    }

    #[test]
    fn prefix_len_is_robust_to_fp_rounding() {
        // A product that is integral in exact arithmetic but lands just
        // above the integer in f64: a raw `(eps * len).ceil()` demands one
        // extra overlap token and shortens the prefix below completeness.
        assert_eq!(0.07f64 * 100.0, 7.000000000000001);
        assert_eq!(jaccard_prefix_len(100, 0.07), 100 - 7 + 1);
        // Products that do round to the exact integer keep the textbook
        // value — the slack must not under-count them either.
        assert_eq!(jaccard_prefix_len(20, 0.8), 5); // 0.8 * 20 == 16.0 exactly
        assert_eq!(jaccard_prefix_len(20, 0.5), 11);
        assert_eq!(jaccard_prefix_len(5, 0.9), 1); // ceil(4.5) = 5
    }

    /// Deterministic corpus of exactly `len`-token records with sliding
    /// overlap, so pair similarities straddle every grid threshold.
    fn sliding_corpus(len: usize) -> Vec<String> {
        (0..15)
            .map(|i| {
                (0..len).map(|k| format!("t{:02}", (i * 2 + k) % 30)).collect::<Vec<_>>().join(" ")
            })
            .collect()
    }

    #[test]
    fn prefix_filter_grid_matches_brute_force() {
        // The ISSUE grid: eps x len including the (0.8, 20) FP trigger.
        for &len in &[5usize, 10, 20] {
            let vals = sliding_corpus(len);
            let refs: Vec<&str> = vals.iter().map(String::as_str).collect();
            for &eps in &[0.5, 0.8, 0.9] {
                let got: BTreeSet<(usize, usize)> =
                    similarity_join(&refs, &refs, SimilarityFn::TokenJaccard, eps)
                        .into_iter()
                        .map(|p| (p.left, p.right))
                        .collect();
                let want = brute_force(&refs, &refs, SimilarityFn::TokenJaccard, eps);
                assert_eq!(got, want, "len={len} eps={eps}");
            }
        }
    }

    #[test]
    fn self_join_grid_matches_upper_triangle_brute_force() {
        for &len in &[5usize, 10, 20] {
            let vals = sliding_corpus(len);
            let refs: Vec<&str> = vals.iter().map(String::as_str).collect();
            for &eps in &[0.5, 0.8, 0.9] {
                let got: BTreeSet<(usize, usize)> =
                    similarity_join_self(&refs, SimilarityFn::TokenJaccard, eps)
                        .into_iter()
                        .map(|p| (p.left, p.right))
                        .collect();
                let want: BTreeSet<(usize, usize)> =
                    brute_force(&refs, &refs, SimilarityFn::TokenJaccard, eps)
                        .into_iter()
                        .filter(|&(i, j)| i < j)
                        .collect();
                assert_eq!(got, want, "len={len} eps={eps}");
            }
        }
    }

    #[test]
    fn nosim_self_join_enumerates_each_unordered_pair_once() {
        // n(n-1)/2 pairs, no diagonal: the self-join no longer runs the
        // bipartite product and filters.
        let vals = ["a", "b", "c", "d", "e"];
        let pairs = similarity_join_self(&vals, SimilarityFn::NoSim, 0.3);
        assert_eq!(pairs.len(), 5 * 4 / 2);
        for p in &pairs {
            assert!(p.left < p.right);
            assert_eq!(p.sim, 0.5);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn prefix_filter_join_equals_brute_force(
            left in prop::collection::vec("[a-d]{1,8}( [a-d]{1,8})?", 0..12),
            right in prop::collection::vec("[a-d]{1,8}( [a-d]{1,8})?", 0..12),
            eps in 0.1f64..0.9,
        ) {
            let l: Vec<&str> = left.iter().map(String::as_str).collect();
            let r: Vec<&str> = right.iter().map(String::as_str).collect();
            for f in [SimilarityFn::QGramJaccard { q: 2 }, SimilarityFn::TokenJaccard] {
                let got: BTreeSet<(usize, usize)> = similarity_join(&l, &r, f, eps)
                    .into_iter().map(|p| (p.left, p.right)).collect();
                prop_assert_eq!(got, brute_force(&l, &r, f, eps));
            }
        }

        #[test]
        fn self_join_equals_filtered_bipartite_join(
            vals in prop::collection::vec("[a-d]{1,8}( [a-d]{1,8})?", 0..12),
            eps in 0.1f64..0.9,
        ) {
            let v: Vec<&str> = vals.iter().map(String::as_str).collect();
            for f in [
                SimilarityFn::QGramJaccard { q: 2 },
                SimilarityFn::TokenJaccard,
                SimilarityFn::EditDistance,
            ] {
                let got: BTreeSet<(usize, usize)> = similarity_join_self(&v, f, eps)
                    .into_iter().map(|p| (p.left, p.right)).collect();
                let want: BTreeSet<(usize, usize)> = brute_force(&v, &v, f, eps)
                    .into_iter().filter(|&(i, j)| i < j).collect();
                prop_assert_eq!(got, want, "{:?}", f);
            }
        }
    }
}
