//! Similarity measures: edit distance, Jaccard, cosine, overlap.

/// Levenshtein edit distance between two strings (unit costs).
///
/// Runs in `O(|a| * |b|)` time and `O(min(|a|, |b|))` space using the
/// classic two-row dynamic program.
pub fn edit_distance(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    // Keep the shorter string in the inner dimension to minimise memory.
    let (short, long) = if a.len() <= b.len() { (&a, &b) } else { (&b, &a) };
    if short.is_empty() {
        return long.len();
    }
    let mut prev: Vec<usize> = (0..=short.len()).collect();
    let mut cur = vec![0usize; short.len() + 1];
    for (i, lc) in long.iter().enumerate() {
        cur[0] = i + 1;
        for (j, sc) in short.iter().enumerate() {
            let sub = prev[j] + usize::from(lc != sc);
            cur[j + 1] = sub.min(prev[j + 1] + 1).min(cur[j] + 1);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[short.len()]
}

/// Normalized edit-distance similarity: `1 - ed(a, b) / max(|a|, |b|)`.
///
/// Returns `1.0` for two empty strings (they are identical).
pub fn normalized_edit_similarity(a: &str, b: &str) -> f64 {
    let max_len = a.chars().count().max(b.chars().count());
    if max_len == 0 {
        return 1.0;
    }
    1.0 - edit_distance(a, b) as f64 / max_len as f64
}

/// Jaccard similarity of two *sorted, deduplicated* token slices:
/// `|A ∩ B| / |A ∪ B|`.
///
/// Returns `1.0` when both sets are empty.
pub fn jaccard_tokens(a: &[String], b: &[String]) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    let inter = overlap_tokens(a, b);
    let union = a.len() + b.len() - inter;
    inter as f64 / union as f64
}

/// Cosine similarity of two *sorted, deduplicated* token slices (set
/// semantics): `|A ∩ B| / sqrt(|A| * |B|)`.
pub fn cosine_tokens(a: &[String], b: &[String]) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    let inter = overlap_tokens(a, b);
    inter as f64 / ((a.len() as f64) * (b.len() as f64)).sqrt()
}

/// Size of the intersection of two sorted, deduplicated token slices.
pub fn overlap_tokens(a: &[String], b: &[String]) -> usize {
    let (mut i, mut j, mut inter) = (0, 0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                inter += 1;
                i += 1;
                j += 1;
            }
        }
    }
    inter
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn toks(v: &[&str]) -> Vec<String> {
        let mut v: Vec<String> = v.iter().map(|s| s.to_string()).collect();
        v.sort();
        v.dedup();
        v
    }

    #[test]
    fn edit_distance_classic_cases() {
        assert_eq!(edit_distance("kitten", "sitting"), 3);
        assert_eq!(edit_distance("", "abc"), 3);
        assert_eq!(edit_distance("abc", ""), 3);
        assert_eq!(edit_distance("", ""), 0);
        assert_eq!(edit_distance("abc", "abc"), 0);
        assert_eq!(edit_distance("flaw", "lawn"), 2);
    }

    #[test]
    fn edit_distance_unicode() {
        assert_eq!(edit_distance("café", "cafe"), 1);
    }

    #[test]
    fn normalized_edit_similarity_bounds() {
        assert_eq!(normalized_edit_similarity("", ""), 1.0);
        assert_eq!(normalized_edit_similarity("abc", "abc"), 1.0);
        assert_eq!(normalized_edit_similarity("abc", "xyz"), 0.0);
    }

    #[test]
    fn jaccard_basics() {
        assert_eq!(jaccard_tokens(&toks(&["a", "b"]), &toks(&["a", "b"])), 1.0);
        assert_eq!(jaccard_tokens(&toks(&["a"]), &toks(&["b"])), 0.0);
        assert_eq!(jaccard_tokens(&toks(&["a", "b"]), &toks(&["b", "c"])), 1.0 / 3.0);
        assert_eq!(jaccard_tokens(&[], &[]), 1.0);
        assert_eq!(jaccard_tokens(&toks(&["a"]), &[]), 0.0);
    }

    #[test]
    fn cosine_basics() {
        assert_eq!(cosine_tokens(&toks(&["a", "b"]), &toks(&["a", "b"])), 1.0);
        assert_eq!(cosine_tokens(&toks(&["a"]), &toks(&["b"])), 0.0);
        let c = cosine_tokens(&toks(&["a", "b"]), &toks(&["b"]));
        assert!((c - 1.0 / 2.0f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn overlap_counts_common_tokens() {
        assert_eq!(overlap_tokens(&toks(&["a", "b", "c"]), &toks(&["b", "c", "d"])), 2);
    }

    proptest! {
        #[test]
        fn edit_distance_symmetric(a in ".{0,20}", b in ".{0,20}") {
            prop_assert_eq!(edit_distance(&a, &b), edit_distance(&b, &a));
        }

        #[test]
        fn edit_distance_triangle_inequality(a in "[a-c]{0,10}", b in "[a-c]{0,10}", c in "[a-c]{0,10}") {
            prop_assert!(edit_distance(&a, &c) <= edit_distance(&a, &b) + edit_distance(&b, &c));
        }

        #[test]
        fn edit_distance_identity(a in ".{0,20}") {
            prop_assert_eq!(edit_distance(&a, &a), 0);
        }

        #[test]
        fn edit_distance_bounded_by_longer(a in ".{0,20}", b in ".{0,20}") {
            let d = edit_distance(&a, &b);
            prop_assert!(d <= a.chars().count().max(b.chars().count()));
        }

        #[test]
        fn normalized_edit_similarity_in_unit_interval(a in ".{0,20}", b in ".{0,20}") {
            let s = normalized_edit_similarity(&a, &b);
            prop_assert!((0.0..=1.0).contains(&s));
        }

        #[test]
        fn jaccard_in_unit_interval_and_symmetric(
            a in prop::collection::btree_set("[a-e]{1,3}", 0..8),
            b in prop::collection::btree_set("[a-e]{1,3}", 0..8),
        ) {
            let a: Vec<String> = a.into_iter().collect();
            let b: Vec<String> = b.into_iter().collect();
            let s = jaccard_tokens(&a, &b);
            prop_assert!((0.0..=1.0).contains(&s));
            prop_assert_eq!(s, jaccard_tokens(&b, &a));
        }

        #[test]
        fn cosine_at_least_jaccard(
            a in prop::collection::btree_set("[a-e]{1,3}", 1..8),
            b in prop::collection::btree_set("[a-e]{1,3}", 1..8),
        ) {
            // cosine >= jaccard for set semantics: |I|/sqrt(|A||B|) >= |I|/|A∪B|
            let a: Vec<String> = a.into_iter().collect();
            let b: Vec<String> = b.into_iter().collect();
            prop_assert!(cosine_tokens(&a, &b) + 1e-12 >= jaccard_tokens(&a, &b));
        }
    }
}
