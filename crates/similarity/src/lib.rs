//! String similarity substrate for CDB.
//!
//! CDB estimates the *matching probability* of a crowd edge from the string
//! similarity of the two joined cell values (Section 4.1 of the paper). This
//! crate provides the similarity measures used in the paper's evaluation —
//! normalized edit distance (`ED`), token Jaccard (`JAC`), 2-gram Jaccard
//! (the paper's default, `CDB` in Figures 23/24), cosine similarity, and the
//! `NoSim` ablation — together with an efficient prefix-filter similarity
//! join that finds all pairs above a threshold without enumerating the cross
//! product (following Bayardo et al., "Scaling up all pairs similarity
//! search").
//!
//! # Example
//!
//! ```
//! use cdb_similarity::{SimilarityMeasure, SimilarityFn};
//!
//! let f = SimilarityFn::QGramJaccard { q: 2 };
//! let s = f.similarity("Univ. of California", "University of California");
//! assert!(s > 0.5);
//! ```

mod join;
mod measures;
mod tokenize;

pub use join::{similarity_join, similarity_join_self, SimJoinPair};
pub use measures::{
    cosine_tokens, edit_distance, jaccard_tokens, normalized_edit_similarity, overlap_tokens,
};
pub use tokenize::{qgrams, tokens};

use serde::{Deserialize, Serialize};

/// A similarity measure mapping two strings to `[0, 1]`.
///
/// CDB treats the similarity as the matching probability ω(e) of a crowd
/// edge, so every implementation must return values in `[0, 1]`, with `1.0`
/// for identical strings.
pub trait SimilarityMeasure {
    /// Similarity of `a` and `b` in `[0, 1]`.
    fn similarity(&self, a: &str, b: &str) -> f64;
}

/// The concrete similarity functions evaluated in the paper (Appendix D,
/// Figures 23 and 24).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SimilarityFn {
    /// No similarity estimation: every candidate edge gets probability 0.5.
    NoSim,
    /// Normalized edit-distance similarity: `1 - ed(a, b) / max(|a|, |b|)`.
    EditDistance,
    /// Jaccard over whitespace/punctuation tokens.
    TokenJaccard,
    /// Jaccard over the q-gram sets of the two strings (paper default: q=2).
    QGramJaccard {
        /// Gram length; the paper uses 2.
        q: usize,
    },
    /// Cosine similarity over token sets.
    Cosine,
}

impl Default for SimilarityFn {
    /// The paper's default: 2-gram Jaccard.
    fn default() -> Self {
        SimilarityFn::QGramJaccard { q: 2 }
    }
}

impl SimilarityMeasure for SimilarityFn {
    fn similarity(&self, a: &str, b: &str) -> f64 {
        match *self {
            SimilarityFn::NoSim => {
                if a == b {
                    1.0
                } else {
                    0.5
                }
            }
            SimilarityFn::EditDistance => normalized_edit_similarity(a, b),
            SimilarityFn::TokenJaccard => jaccard_tokens(&tokens(a), &tokens(b)),
            SimilarityFn::QGramJaccard { q } => jaccard_tokens(&qgrams(a, q), &qgrams(b, q)),
            SimilarityFn::Cosine => cosine_tokens(&tokens(a), &tokens(b)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_2gram_jaccard() {
        assert_eq!(SimilarityFn::default(), SimilarityFn::QGramJaccard { q: 2 });
    }

    #[test]
    fn identical_strings_are_similarity_one() {
        for f in [
            SimilarityFn::NoSim,
            SimilarityFn::EditDistance,
            SimilarityFn::TokenJaccard,
            SimilarityFn::QGramJaccard { q: 2 },
            SimilarityFn::Cosine,
        ] {
            assert_eq!(f.similarity("sigmod", "sigmod"), 1.0, "{f:?}");
        }
    }

    #[test]
    fn nosim_is_half_for_different_strings() {
        assert_eq!(SimilarityFn::NoSim.similarity("a", "b"), 0.5);
    }

    #[test]
    fn qgram_jaccard_on_paper_example() {
        // The running example in the paper matches abbreviations like
        // "Univ. of California" with "University of California".
        let f = SimilarityFn::QGramJaccard { q: 2 };
        let close = f.similarity("Univ. of California", "University of California");
        let far = f.similarity("Univ. of California", "Microsoft Cambridge");
        assert!(close > far);
        assert!(close > 0.3, "close = {close}");
        assert!(far < 0.3, "far = {far}");
    }
}
