//! Tokenizers: whitespace/punctuation tokens and character q-grams.

use std::collections::BTreeSet;

/// Split a string into lowercase alphanumeric tokens.
///
/// Punctuation and whitespace are separators; the result is a *set* (sorted,
/// deduplicated) because the Jaccard and cosine measures in the paper operate
/// on token sets.
pub fn tokens(s: &str) -> Vec<String> {
    let set: BTreeSet<String> = s
        .split(|c: char| !c.is_alphanumeric())
        .filter(|t| !t.is_empty())
        .map(|t| t.to_lowercase())
        .collect();
    set.into_iter().collect()
}

/// The set of character q-grams of a string (lowercased).
///
/// The paper's default probability estimator splits each value into 2-grams
/// and computes Jaccard over the 2-gram sets. Strings shorter than `q`
/// contribute themselves as a single gram so that short values still compare
/// meaningfully.
pub fn qgrams(s: &str, q: usize) -> Vec<String> {
    assert!(q >= 1, "q-gram length must be at least 1");
    let lower = s.to_lowercase();
    let chars: Vec<char> = lower.chars().collect();
    if chars.is_empty() {
        return Vec::new();
    }
    if chars.len() <= q {
        return vec![lower];
    }
    let set: BTreeSet<String> = chars.windows(q).map(|w| w.iter().collect()).collect();
    set.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokens_splits_on_punctuation_and_lowercases() {
        assert_eq!(tokens("Univ. of California"), vec!["california", "of", "univ"]);
    }

    #[test]
    fn tokens_of_empty_string_is_empty() {
        assert!(tokens("").is_empty());
        assert!(tokens(" .,;").is_empty());
    }

    #[test]
    fn tokens_deduplicates() {
        assert_eq!(tokens("a b a"), vec!["a", "b"]);
    }

    #[test]
    fn qgrams_basic() {
        assert_eq!(qgrams("abc", 2), vec!["ab", "bc"]);
    }

    #[test]
    fn qgrams_short_string_is_whole_string() {
        assert_eq!(qgrams("ab", 2), vec!["ab"]);
        assert_eq!(qgrams("a", 2), vec!["a"]);
    }

    #[test]
    fn qgrams_empty() {
        assert!(qgrams("", 2).is_empty());
    }

    #[test]
    fn qgrams_are_sorted_and_unique() {
        let g = qgrams("banana", 2);
        assert_eq!(g, vec!["an", "ba", "na"]);
    }

    #[test]
    fn qgrams_handles_unicode() {
        // multi-byte chars must not panic or split mid-codepoint
        let g = qgrams("café", 2);
        assert!(g.contains(&"fé".to_string()));
    }

    #[test]
    #[should_panic(expected = "q-gram length")]
    fn qgrams_rejects_zero_q() {
        qgrams("abc", 0);
    }
}
