//! Crowd-powered sort and group (the §4.2 Remark).
//!
//! The paper's optimizer focuses on selections and joins; for queries
//! that also want crowd-powered `ORDER BY` or `GROUP BY`, CDB "first
//! execute\[s\] the crowd-based selection and join operations … and then
//! group\[s\] the results by applying existing crowdsourced entity
//! resolution approaches", and analogously sorts with pairwise-comparison
//! techniques. This module provides both post-processing operators over
//! the (simulated) crowd:
//!
//! * [`crowd_sort`] — pairwise comparison tasks aggregated by Copeland
//!   score (wins minus losses), the standard rank aggregation of the
//!   crowdsourced-sort literature;
//! * [`crowd_group`] — similarity-pruned pair verification with
//!   transitive closure, i.e. crowdsourced ER over the group keys.

use cdb_crowd::{Answer, SimulatedPlatform, Task, TaskId, TaskKind};
use cdb_graph::{Entailment, EntailmentGraph};
use cdb_quality::majority_vote;
use cdb_similarity::{SimilarityFn, SimilarityMeasure};

/// Result of a crowd-powered sort.
#[derive(Debug, Clone)]
pub struct SortOutcome {
    /// Item indices in descending crowd-judged order.
    pub order: Vec<usize>,
    /// Comparison tasks asked.
    pub tasks_asked: usize,
    /// Crowd rounds used.
    pub rounds: usize,
}

/// Sort `items` descending by crowd judgment. `truth_rank[i]` is the
/// latent true rank of item `i` (smaller = greater) used to simulate
/// worker answers; `redundancy` workers vote per comparison.
///
/// Asks all `n·(n−1)/2` comparisons in parallel batches of
/// non-overlapping pairs (a round-robin tournament schedule) and
/// aggregates by Copeland score, which is robust to a minority of wrong
/// comparisons.
pub fn crowd_sort(
    items: &[String],
    truth_rank: &[usize],
    platform: &mut SimulatedPlatform,
    redundancy: usize,
) -> SortOutcome {
    assert_eq!(items.len(), truth_rank.len(), "one rank per item");
    let n = items.len();
    if n <= 1 {
        return SortOutcome { order: (0..n).collect(), tasks_asked: 0, rounds: 0 };
    }
    let mut wins = vec![0i64; n];
    let mut tasks_asked = 0usize;
    let mut rounds = 0usize;

    // Round-robin (circle method) schedule: pad odd n with a bye slot,
    // fix position 0 and rotate the rest; each of the padded_n − 1 rounds
    // pairs every item at most once, so comparisons within a round are
    // independent, and across all rounds every pair occurs exactly once.
    const BYE: usize = usize::MAX;
    let mut idx: Vec<usize> = (0..n).collect();
    if n % 2 == 1 {
        idx.push(BYE);
    }
    let rounds_needed = idx.len() - 1;
    let half = idx.len() / 2;
    for _ in 0..rounds_needed {
        let mut batch: Vec<(usize, usize)> = Vec::with_capacity(half);
        for k in 0..half {
            let a = idx[k];
            let b = idx[idx.len() - 1 - k];
            if a != b && a != BYE && b != BYE {
                batch.push((a.min(b), a.max(b)));
            }
        }
        if batch.is_empty() {
            idx[1..].rotate_right(1);
            continue;
        }
        let tasks: Vec<Task> = batch
            .iter()
            .enumerate()
            .map(|(t, &(a, b))| Task {
                id: TaskId(t as u64),
                kind: TaskKind::SingleChoice {
                    question: format!("Which is greater: \"{}\" or \"{}\"?", items[a], items[b]),
                    choices: vec![items[a].clone(), items[b].clone()],
                },
                // Choice 0 = first item greater.
                truth: Some(Answer::Choice(usize::from(truth_rank[a] > truth_rank[b]))),
                difficulty: 1.0,
                values: None,
                measure: None,
            })
            .collect();
        let answers = platform.ask_round(&tasks, redundancy);
        tasks_asked += batch.len();
        rounds += 1;
        let mut votes: Vec<Vec<usize>> = vec![Vec::new(); batch.len()];
        for a in answers {
            if let Answer::Choice(c) = a.answer {
                votes[a.task.0 as usize].push(c);
            }
        }
        for (t, &(a, b)) in batch.iter().enumerate() {
            let first_wins = majority_vote(&votes[t], 2) == 0;
            if first_wins {
                wins[a] += 1;
                wins[b] -= 1;
            } else {
                wins[b] += 1;
                wins[a] -= 1;
            }
        }
        // Rotate (keep idx[0] fixed).
        idx[1..].rotate_right(1);
    }

    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| wins[b].cmp(&wins[a]).then(a.cmp(&b)));
    SortOutcome { order, tasks_asked, rounds }
}

/// Result of a crowd-powered group-by.
#[derive(Debug, Clone)]
pub struct GroupOutcome {
    /// `groups[k]` is the sorted list of item indices of group `k`.
    pub groups: Vec<Vec<usize>>,
    /// Verification tasks asked.
    pub tasks_asked: usize,
    /// Crowd rounds used.
    pub rounds: usize,
}

/// Group `keys` by crowd-judged equality. Pairs below `epsilon` similarity
/// are pruned machine-side; the remaining pairs are verified by the crowd
/// (skipping pairs already implied by transitivity), then groups are the
/// connected components of the confirmed matches. `truth(i, j)` is the
/// latent ground truth for simulation.
pub fn crowd_group(
    keys: &[String],
    truth: &dyn Fn(usize, usize) -> bool,
    platform: &mut SimulatedPlatform,
    redundancy: usize,
    similarity: SimilarityFn,
    epsilon: f64,
) -> GroupOutcome {
    let n = keys.len();
    let mut pairs: Vec<(usize, usize, f64)> = Vec::new();
    for i in 0..n {
        for j in i + 1..n {
            let s = similarity.similarity(&keys[i], &keys[j]);
            if s >= epsilon {
                pairs.push((i, j, s));
            }
        }
    }
    // Most-similar first maximizes transitive savings.
    pairs.sort_by(|a, b| b.2.total_cmp(&a.2).then((a.0, a.1).cmp(&(b.0, b.1))));

    // Entailment over crowd answers: positive transitivity *and* negative
    // propagation (a = b, b ≠ c ⇒ a ≠ c). The previous implementation
    // kept a negative set keyed by DSU roots frozen at insertion time;
    // after later unions re-rooted a component those entries never matched
    // again, silently re-asking pairs the answers already determined.
    let mut entail = EntailmentGraph::new(n);
    let mut tasks_asked = 0usize;
    let mut rounds = 0usize;
    let mut remaining = pairs;
    while !remaining.is_empty() {
        // Build one round: skip pairs the entailment already decides;
        // defer pairs whose clusters are already touched this round (their
        // answer may become inferable from this round's merges).
        let mut batch: Vec<(usize, usize, f64)> = Vec::new();
        let mut deferred: Vec<(usize, usize, f64)> = Vec::new();
        let mut touched: std::collections::HashSet<usize> = std::collections::HashSet::new();
        for &(i, j, s) in &remaining {
            if entail.entails(i, j) != Entailment::Unknown {
                continue;
            }
            let (ci, cj) = (entail.root(i), entail.root(j));
            if touched.contains(&ci) || touched.contains(&cj) {
                deferred.push((i, j, s));
                continue;
            }
            touched.insert(ci);
            touched.insert(cj);
            batch.push((i, j, s));
        }
        remaining = deferred;
        if batch.is_empty() {
            break;
        }
        let tasks: Vec<Task> = batch
            .iter()
            .enumerate()
            .map(|(t, &(i, j, s))| {
                Task::join_check(TaskId(t as u64), &keys[i], &keys[j], truth(i, j))
                    .with_difficulty(cdb_crowd::join_difficulty(s))
            })
            .collect();
        let answers = platform.ask_round(&tasks, redundancy);
        tasks_asked += batch.len();
        rounds += 1;
        let mut votes: Vec<Vec<usize>> = vec![Vec::new(); batch.len()];
        for a in answers {
            if let Answer::Choice(c) = a.answer {
                votes[a.task.0 as usize].push(c);
            }
        }
        for (t, &(i, j, _)) in batch.iter().enumerate() {
            let same = majority_vote(&votes[t], 2) == 0;
            // A noisy answer can contradict the closure (e.g. "no" on a
            // pair already entailed equal); the assertion is rejected and
            // the earlier answers stand.
            if same {
                entail.assert_same(i, j);
            } else {
                entail.assert_different(i, j);
            }
        }
    }

    // Materialize groups in first-appearance order.
    let mut group_of: std::collections::HashMap<usize, usize> = std::collections::HashMap::new();
    let mut groups: Vec<Vec<usize>> = Vec::new();
    for i in 0..n {
        let root = entail.root(i);
        let g = *group_of.entry(root).or_insert_with(|| {
            groups.push(Vec::new());
            groups.len() - 1
        });
        groups[g].push(i);
    }
    GroupOutcome { groups, tasks_asked, rounds }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdb_crowd::{Market, WorkerPool};

    fn platform(acc: f64, seed: u64) -> SimulatedPlatform {
        SimulatedPlatform::new(Market::Amt, WorkerPool::with_accuracies(&[acc; 20]), seed)
    }

    #[test]
    fn sort_recovers_true_order_with_perfect_workers() {
        let items: Vec<String> = (0..7).map(|i| format!("item {i}")).collect();
        // True ranking: item 0 greatest, ... item 6 least.
        let ranks: Vec<usize> = (0..7).collect();
        let mut p = platform(1.0, 1);
        let out = crowd_sort(&items, &ranks, &mut p, 3);
        assert_eq!(out.order, vec![0, 1, 2, 3, 4, 5, 6]);
        assert_eq!(out.tasks_asked, 21); // all pairs
        assert_eq!(out.rounds, 7); // round-robin for odd n
    }

    #[test]
    fn sort_is_robust_to_some_errors() {
        let items: Vec<String> = (0..9).map(|i| format!("v{i}")).collect();
        let ranks: Vec<usize> = (0..9).collect();
        let mut p = platform(0.85, 2);
        let out = crowd_sort(&items, &ranks, &mut p, 5);
        // Copeland tolerates a few flipped comparisons: the top item stays
        // near the top.
        let pos0 = out.order.iter().position(|&i| i == 0).unwrap();
        assert!(pos0 <= 2, "true max ranked at {pos0}");
    }

    #[test]
    fn sort_trivial_cases() {
        let mut p = platform(1.0, 3);
        let out = crowd_sort(&[], &[], &mut p, 3);
        assert!(out.order.is_empty());
        let out = crowd_sort(&["x".to_string()], &[0], &mut p, 3);
        assert_eq!(out.order, vec![0]);
        assert_eq!(out.tasks_asked, 0);
    }

    #[test]
    fn group_clusters_matching_keys() {
        let keys: Vec<String> = vec![
            "University of California".into(),
            "Univ. of California".into(),
            "University of Wisconsin".into(),
            "Univ. of Wisconsin".into(),
            "MIT".into(),
        ];
        let truth = |i: usize, j: usize| matches!((i.min(j), i.max(j)), (0, 1) | (2, 3));
        let mut p = platform(1.0, 4);
        let out = crowd_group(&keys, &truth, &mut p, 3, SimilarityFn::default(), 0.3);
        assert_eq!(out.groups.len(), 3);
        assert!(out.groups.contains(&vec![0, 1]));
        assert!(out.groups.contains(&vec![2, 3]));
        assert!(out.groups.contains(&vec![4]));
    }

    #[test]
    fn group_prunes_dissimilar_pairs_machine_side() {
        let keys: Vec<String> =
            vec!["alpha beta".into(), "gamma delta".into(), "epsilon zeta".into()];
        let mut p = platform(1.0, 5);
        let out = crowd_group(&keys, &|_, _| false, &mut p, 3, SimilarityFn::default(), 0.3);
        assert_eq!(out.tasks_asked, 0, "no pair clears the threshold");
        assert_eq!(out.groups.len(), 3);
    }

    #[test]
    fn group_negative_entailment_survives_re_rooting() {
        // Cluster {0, 1, 2} plus singleton 3, all pairs candidates (NoSim
        // gives every pair similarity 0.5, so ordering is lexicographic).
        // Round 1 asks (0,1)=yes and (2,3)=no; round 2 asks (0,2)=yes,
        // which re-roots 2's component. The old root-keyed negative set
        // lost 2≠3 at that union and re-asked (0,3); entailment keeps it:
        // 0=2 ∧ 2≠3 ⇒ 0≠3 and 1≠3, so exactly 3 tasks are asked.
        let keys: Vec<String> = (0..4).map(|i| format!("k{i}")).collect();
        let truth = |i: usize, j: usize| i < 3 && j < 3;
        let mut p = platform(1.0, 7);
        let out = crowd_group(&keys, &truth, &mut p, 3, SimilarityFn::NoSim, 0.3);
        assert_eq!(out.groups, vec![vec![0, 1, 2], vec![3]]);
        assert_eq!(out.tasks_asked, 3, "negative entailment must skip (0,3) and (1,3)");
    }

    #[test]
    fn group_uses_transitivity_to_save_tasks() {
        // Four near-identical keys: 6 candidate pairs, but after a few
        // merges the rest are inferred.
        let keys: Vec<String> = vec![
            "Stanford University".into(),
            "Stanford Universty".into(),
            "Stanford  University".into(),
            "Stanford Univerity".into(),
        ];
        let mut p = platform(1.0, 6);
        let out = crowd_group(&keys, &|_, _| true, &mut p, 3, SimilarityFn::default(), 0.3);
        assert_eq!(out.groups.len(), 1);
        assert!(out.tasks_asked < 6, "transitivity should save pairs, asked {}", out.tasks_asked);
    }
}
