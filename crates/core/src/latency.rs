//! Latency control (§5.2): batch non-conflicting tasks into rounds.
//!
//! Two edges *conflict* when they appear in a common candidate — asking
//! one may prune the other, so asking both in the same round can waste
//! money. CDB's rules: edges in different connected components never
//! conflict; edges containing two different tuples of the same table never
//! conflict; otherwise run the exact shared-candidate check. Per
//! component, the round greedily collects a maximal set of pairwise
//! non-conflicting edges in expectation order (the paper's literal
//! longest-prefix rule is kept as an ablation); the union over components
//! is asked in parallel.

use cdb_graph::connected_components;

use crate::candidate::{edges_in_same_candidate, CandidateFilter};
use crate::model::{EdgeId, QueryGraph};

/// Conservative conflict test between two edges.
pub fn edges_conflict(g: &QueryGraph, e1: EdgeId, e2: EdgeId) -> bool {
    if e1 == e2 {
        return false;
    }
    // Rule: two different tuples from the same part cannot co-occur in a
    // candidate, so such edges never conflict.
    let (u1, v1) = g.edge_endpoints(e1);
    let (u2, v2) = g.edge_endpoints(e2);
    for a in [u1, v1] {
        for b in [u2, v2] {
            if a != b && g.node_part(a) == g.node_part(b) {
                return false;
            }
        }
    }
    edges_in_same_candidate(g, e1, e2, CandidateFilter::Live)
}

/// Component id per node over the *live* edges.
fn live_components(g: &QueryGraph) -> Vec<usize> {
    let edges: Vec<(usize, usize)> = (0..g.edge_count())
        .map(EdgeId)
        .filter(|&e| g.edge_live(e))
        .map(|e| {
            let (u, v) = g.edge_endpoints(e);
            (u.0, v.0)
        })
        .collect();
    connected_components(g.node_count(), &edges)
}

/// Given the expectation-ordered open edges, select the subset to ask in
/// the next round: per live component, a maximal set of pairwise
/// non-conflicting edges collected greedily in order (the §5.2 goal of
/// "simultaneously ask the tasks that cannot be inferred by others in the
/// same round"). See [`parallel_round_prefix`] for the paper's literal
/// longest-prefix variant, kept as an ablation.
pub fn parallel_round(g: &QueryGraph, ordered: &[EdgeId]) -> Vec<EdgeId> {
    round_impl(g, ordered, false)
}

/// The literal longest-prefix rule of §5.2: per component, scanning stops
/// at the first conflicting edge. Since no task of a round can prune
/// another task of the same round anyway, the greedy variant is equally
/// safe; the prefix rule just produces smaller rounds (and thus more of
/// them) on dense components. Kept as the latency-policy ablation.
pub fn parallel_round_prefix(g: &QueryGraph, ordered: &[EdgeId]) -> Vec<EdgeId> {
    round_impl(g, ordered, true)
}

fn round_impl(g: &QueryGraph, ordered: &[EdgeId], stop_at_first_conflict: bool) -> Vec<EdgeId> {
    let mut ph = cdb_obsv::profile::phase(cdb_obsv::profile::phases::SELECT_CANDIDATES);
    ph.set(cdb_obsv::attr::keys::N, ordered.len() as u64);
    let comp = live_components(g);
    // Split the ordered list per component (an edge's component is its
    // endpoints' — both endpoints share one by construction).
    let mut per_comp: std::collections::BTreeMap<usize, Vec<EdgeId>> =
        std::collections::BTreeMap::new();
    for &e in ordered {
        let (u, _) = g.edge_endpoints(e);
        per_comp.entry(comp[u.0]).or_default().push(e);
    }
    let mut round = Vec::new();
    for (_, edges) in per_comp {
        let mut chosen: Vec<EdgeId> = Vec::new();
        'outer: for &e in &edges {
            for &e2 in &chosen {
                if edges_conflict(g, e, e2) {
                    if stop_at_first_conflict {
                        break 'outer;
                    }
                    continue 'outer;
                }
            }
            chosen.push(e);
        }
        round.extend(chosen);
    }
    round
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::expectation::expectation_order;
    use crate::model::testgraph::chain_2x3;
    use crate::model::{Color, PartKind, QueryGraph};

    #[test]
    fn same_table_rule_makes_edges_non_conflicting() {
        let (g, nodes) = chain_2x3(0.5);
        // (A0,B0) and (A0,B1): contain B0 and B1, different tuples of B.
        let e1 = g
            .incident_edges(nodes[0][0])
            .iter()
            .copied()
            .find(|&e| g.other_endpoint(e, nodes[0][0]) == nodes[1][0])
            .unwrap();
        let e2 = g
            .incident_edges(nodes[0][0])
            .iter()
            .copied()
            .find(|&e| g.other_endpoint(e, nodes[0][0]) == nodes[1][1])
            .unwrap();
        assert!(!edges_conflict(&g, e1, e2));
    }

    #[test]
    fn chained_edges_conflict() {
        let (g, nodes) = chain_2x3(0.5);
        let e_ab = g
            .incident_edges(nodes[0][0])
            .iter()
            .copied()
            .find(|&e| g.other_endpoint(e, nodes[0][0]) == nodes[1][0])
            .unwrap();
        let e_bc = g
            .incident_edges(nodes[2][0])
            .iter()
            .copied()
            .find(|&e| g.other_endpoint(e, nodes[2][0]) == nodes[1][0])
            .unwrap();
        assert!(edges_conflict(&g, e_ab, e_bc));
    }

    #[test]
    fn different_components_never_conflict() {
        // Two disjoint 2-part graphs.
        let mut g = QueryGraph::new();
        let a = g.add_part(PartKind::Table { name: "A".into() });
        let b = g.add_part(PartKind::Table { name: "B".into() });
        let a0 = g.add_node(a, None, "a0");
        let a1 = g.add_node(a, None, "a1");
        let b0 = g.add_node(b, None, "b0");
        let b1 = g.add_node(b, None, "b1");
        let p = g.add_predicate(a, b, true, "A~B");
        let e1 = g.add_edge(a0, b0, p, 0.5);
        let e2 = g.add_edge(a1, b1, p, 0.5);
        assert!(!edges_conflict(&g, e1, e2));
        let round = parallel_round(&g, &[e1, e2]);
        assert_eq!(round.len(), 2);
    }

    #[test]
    fn round_takes_longest_non_conflicting_prefix() {
        let (g, _) = chain_2x3(0.5);
        let order = expectation_order(&g);
        let round = parallel_round(&g, &order);
        assert!(!round.is_empty());
        // Round edges are pairwise non-conflicting.
        for (i, &e1) in round.iter().enumerate() {
            for &e2 in &round[i + 1..] {
                assert!(!edges_conflict(&g, e1, e2), "{e1:?} conflicts {e2:?}");
            }
        }
    }

    #[test]
    fn rounds_cover_everything_eventually() {
        // Simulate the executor loop: ask a round, color the edges, repeat;
        // every open edge must be asked within a bounded number of rounds.
        let (mut g, _) = chain_2x3(0.5);
        let mut rounds = 0;
        while !g.open_edges().is_empty() {
            let order = expectation_order(&g);
            let round = parallel_round(&g, &order);
            assert!(!round.is_empty(), "progress must be made");
            for e in round {
                g.set_color(e, Color::Blue);
            }
            rounds += 1;
            assert!(rounds <= 16, "too many rounds");
        }
        assert!(rounds >= 2, "a chain cannot finish in one conflict-free round");
    }

    #[test]
    fn prefix_policy_is_a_prefix_of_greedy() {
        let (g, _) = chain_2x3(0.5);
        let order = expectation_order(&g);
        let prefix = parallel_round_prefix(&g, &order);
        let greedy = parallel_round(&g, &order);
        assert!(prefix.len() <= greedy.len());
        // Every prefix edge also appears in the greedy round.
        for e in &prefix {
            assert!(greedy.contains(e));
        }
    }

    #[test]
    fn empty_order_gives_empty_round() {
        let (g, _) = chain_2x3(0.5);
        assert!(parallel_round(&g, &[]).is_empty());
    }
}
