//! Invalid-edge pruning (Definition 3).
//!
//! An edge in no candidate is *invalid* and never needs to be asked. The
//! fast path is arc consistency: a vertex is *dead* when, for some
//! predicate incident to its part, it has no live edge left; edges of dead
//! vertices are invalid, and deaths cascade. For acyclic predicate
//! structures (chains, stars, trees — with at most one predicate per table
//! pair) arc consistency is exact; for cyclic structures an exact
//! candidate-membership check cleans up what arc consistency misses.
//!
//! Interaction with answer reuse (`crate::reuse`): the executor's reuse
//! sweep colors edges *between* rounds, so pruning must be re-run after
//! every sweep — a reuse-colored RED edge kills candidates exactly like a
//! crowd-colored one. Pruning itself only reads colors and holds no
//! root-keyed state, so it is immune to the stale-root hazard fixed in
//! `cdb_graph::EntailmentGraph`: the `UnionFind` here is rebuilt from the
//! predicate structure on every call, never persisted across unions.

use crate::candidate::{edge_in_some_candidate, CandidateFilter};
use crate::model::{EdgeId, NodeId, QueryGraph};

/// True when the predicate structure (parts as vertices, predicates as
/// edges) contains a cycle, counting parallel predicates between the same
/// part pair as a cycle.
pub fn predicate_structure_cyclic(g: &QueryGraph) -> bool {
    let mut dsu = cdb_graph::UnionFind::new(g.part_count());
    for p in g.predicates() {
        if !dsu.union(p.a.0, p.b.0) {
            return true;
        }
    }
    false
}

/// Prune all invalid edges; returns the newly invalidated edges.
///
/// Runs arc-consistency cascading first, then (for cyclic predicate
/// structures only) the exact membership check on the survivors.
pub fn prune_invalid_edges(g: &mut QueryGraph) -> Vec<EdgeId> {
    let mut ph = cdb_obsv::profile::phase(cdb_obsv::profile::phases::PRUNE);
    let mut invalidated = arc_consistency(g);
    if predicate_structure_cyclic(g) {
        let survivors: Vec<EdgeId> = g.open_edges();
        for e in survivors {
            if !edge_in_some_candidate(g, e, CandidateFilter::Live) {
                g.set_invalid(e);
                invalidated.push(e);
            }
        }
    }
    ph.set(cdb_obsv::attr::keys::N, invalidated.len() as u64);
    invalidated
}

/// The arc-consistency cascade. Exact for acyclic predicate structures.
fn arc_consistency(g: &mut QueryGraph) -> Vec<EdgeId> {
    let n = g.node_count();
    // support[node] = per incident predicate, the count of live edges.
    let mut pred_slots: Vec<Vec<usize>> = Vec::with_capacity(n);
    for i in 0..n {
        let part = g.node_part(NodeId(i));
        pred_slots.push(g.part_predicates(part));
    }
    let mut support: Vec<Vec<usize>> = (0..n)
        .map(|i| pred_slots[i].iter().map(|&p| g.live_support(NodeId(i), p)).collect())
        .collect();

    let mut dead = vec![false; n];
    let mut queue: Vec<NodeId> = Vec::new();
    for i in 0..n {
        if support[i].contains(&0) && !pred_slots[i].is_empty() {
            dead[i] = true;
            queue.push(NodeId(i));
        }
    }

    let mut invalidated = Vec::new();
    while let Some(v) = queue.pop() {
        let edges: Vec<EdgeId> = g.incident_edges(v).to_vec();
        for e in edges {
            if !g.edge_live(e) || g.edge_invalid(e) {
                continue;
            }
            g.set_invalid(e);
            invalidated.push(e);
            let w = g.other_endpoint(e, v);
            if dead[w.0] {
                continue;
            }
            // Decrement w's support for this predicate.
            let pred = g.edge_predicate(e);
            let slot = pred_slots[w.0]
                .iter()
                .position(|&p| p == pred)
                .expect("edge predicate incident to endpoint part");
            support[w.0][slot] -= 1;
            if support[w.0][slot] == 0 {
                dead[w.0] = true;
                queue.push(w);
            }
        }
    }
    invalidated
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::testgraph::chain_2x3;
    use crate::model::{Color, PartKind, QueryGraph};

    #[test]
    fn full_graph_has_no_invalid_edges() {
        let (mut g, _) = chain_2x3(0.5);
        assert!(prune_invalid_edges(&mut g).is_empty());
    }

    #[test]
    fn cascade_matches_paper_example_shape() {
        // Kill both B0-C edges: B0 dies, invalidating its A-B edges.
        let (mut g, nodes) = chain_2x3(0.5);
        for i in 0..g.edge_count() {
            let e = EdgeId(i);
            let (u, v) = g.edge_endpoints(e);
            if u == nodes[1][0] && g.node_part(v).0 == 2 {
                g.set_color(e, Color::Red);
            }
        }
        let inv = prune_invalid_edges(&mut g);
        // The two A-B0 edges become invalid.
        assert_eq!(inv.len(), 2);
        for e in inv {
            let (u, v) = g.edge_endpoints(e);
            assert!(u == nodes[1][0] || v == nodes[1][0]);
        }
    }

    #[test]
    fn cascade_propagates_transitively() {
        // Chain A-B-C with single tuples: killing B-C invalidates A-B.
        let mut g = QueryGraph::new();
        let a = g.add_part(PartKind::Table { name: "A".into() });
        let b = g.add_part(PartKind::Table { name: "B".into() });
        let c = g.add_part(PartKind::Table { name: "C".into() });
        let a0 = g.add_node(a, None, "a0");
        let b0 = g.add_node(b, None, "b0");
        let c0 = g.add_node(c, None, "c0");
        let p_ab = g.add_predicate(a, b, true, "A~B");
        let p_bc = g.add_predicate(b, c, true, "B~C");
        let e_ab = g.add_edge(a0, b0, p_ab, 0.5);
        let e_bc = g.add_edge(b0, c0, p_bc, 0.5);
        g.set_color(e_bc, Color::Red);
        let inv = prune_invalid_edges(&mut g);
        assert_eq!(inv, vec![e_ab]);
        assert!(g.edge_invalid(e_ab));
    }

    #[test]
    fn blue_edges_are_not_invalidated_unless_disconnected() {
        let (mut g, nodes) = chain_2x3(0.5);
        // Blue A0-B0; then kill both B0-C edges: the blue edge is now in no
        // candidate and must be reported invalid too.
        let e_blue = g
            .incident_edges(nodes[0][0])
            .iter()
            .copied()
            .find(|&e| g.other_endpoint(e, nodes[0][0]) == nodes[1][0])
            .unwrap();
        g.set_color(e_blue, Color::Blue);
        for i in 0..g.edge_count() {
            let e = EdgeId(i);
            let (u, v) = g.edge_endpoints(e);
            if u == nodes[1][0] && g.node_part(v).0 == 2 {
                g.set_color(e, Color::Red);
            }
        }
        let inv = prune_invalid_edges(&mut g);
        assert!(inv.contains(&e_blue));
    }

    #[test]
    fn cyclic_structure_detected() {
        let mut g = QueryGraph::new();
        let a = g.add_part(PartKind::Table { name: "A".into() });
        let b = g.add_part(PartKind::Table { name: "B".into() });
        let c = g.add_part(PartKind::Table { name: "C".into() });
        g.add_predicate(a, b, true, "1");
        assert!(!predicate_structure_cyclic(&g));
        g.add_predicate(b, c, true, "2");
        assert!(!predicate_structure_cyclic(&g));
        g.add_predicate(c, a, true, "3");
        assert!(predicate_structure_cyclic(&g));
    }

    #[test]
    fn parallel_predicates_count_as_cycle() {
        let mut g = QueryGraph::new();
        let a = g.add_part(PartKind::Table { name: "A".into() });
        let b = g.add_part(PartKind::Table { name: "B".into() });
        g.add_predicate(a, b, true, "1");
        g.add_predicate(a, b, true, "2");
        assert!(predicate_structure_cyclic(&g));
    }

    #[test]
    fn cyclic_exact_pruning_beats_arc_consistency() {
        // Triangle where arc consistency leaves an edge that no candidate
        // uses.
        let mut g = QueryGraph::new();
        let a = g.add_part(PartKind::Table { name: "A".into() });
        let b = g.add_part(PartKind::Table { name: "B".into() });
        let c = g.add_part(PartKind::Table { name: "C".into() });
        let a0 = g.add_node(a, None, "a0");
        let a1 = g.add_node(a, None, "a1");
        let b0 = g.add_node(b, None, "b0");
        let c0 = g.add_node(c, None, "c0");
        let p_ab = g.add_predicate(a, b, true, "A~B");
        let p_bc = g.add_predicate(b, c, true, "B~C");
        let p_ca = g.add_predicate(c, a, true, "C~A");
        g.add_edge(a0, b0, p_ab, 0.5);
        let e_a1b0 = g.add_edge(a1, b0, p_ab, 0.5);
        g.add_edge(b0, c0, p_bc, 0.5);
        g.add_edge(c0, a0, p_ca, 0.5);
        // a1 has support for A~B but no C~A edge -> dead by arc
        // consistency already. Make it subtler: give a1 a C~A edge to a
        // different c vertex that lacks B~C support... instead simply
        // verify pruning removes e_a1b0 because a1 lacks C~A.
        let inv = prune_invalid_edges(&mut g);
        assert!(inv.contains(&e_a1b0));
        assert_eq!(g.open_edges().len(), 3);
    }
}
