//! Crowd-powered collection semantics: FILL and COLLECT execution (§3,
//! §5.3, evaluated in Figure 17).
//!
//! * **FILL** asks the crowd for missing attribute values. CDB asks 3
//!   workers first and only asks the remaining `redundancy − 3` when the
//!   first three disagree (the early-stop policy of §6.3.2, which saves
//!   ~30% of the cost); the final value is the *pivot* answer.
//! * **COLLECT** gathers new tuples under the open-world assumption. With
//!   the autocompletion interface a worker sees what is already collected
//!   and contributes something new whenever they can; without it (the
//!   Deco baseline) contributions are independent draws and duplicates
//!   burn budget like a coupon collector.

use cdb_crowd::{Answer, AutocompleteStore, SimulatedPlatform, Task, TaskId, TaskKind};
use cdb_quality::pivot_answer;
use cdb_similarity::{SimilarityFn, SimilarityMeasure};
use rand::Rng;

/// FILL configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FillConfig {
    /// Total workers per value when no early stop triggers (paper: 5).
    pub redundancy: usize,
    /// Workers asked in the first phase (paper: 3).
    pub first_phase: usize,
    /// Pairwise similarity that counts as agreement.
    pub agree_threshold: f64,
    /// Enable the early stop (CDB) or always ask `redundancy` (Deco).
    pub early_stop: bool,
    /// Similarity measure for agreement and pivot inference.
    pub similarity: SimilarityFn,
}

impl Default for FillConfig {
    fn default() -> Self {
        FillConfig {
            redundancy: 5,
            first_phase: 3,
            agree_threshold: 0.8,
            early_stop: true,
            similarity: SimilarityFn::default(),
        }
    }
}

/// FILL execution result.
#[derive(Debug, Clone)]
pub struct FillOutcome {
    /// Total questions asked (the Figure 17(b) cost metric).
    pub questions: usize,
    /// Inferred value per input slot, in input order.
    pub values: Vec<String>,
    /// How many inferred values exactly equal the ground truth.
    pub correct: usize,
}

/// Run FILL over a list of slots with known ground truth (simulation): for
/// each slot, workers answer a fill-in-blank task; the pivot of their
/// answers becomes the value.
pub fn execute_fill(
    truths: &[String],
    platform: &mut SimulatedPlatform,
    cfg: &FillConfig,
) -> FillOutcome {
    assert!(cfg.first_phase >= 1 && cfg.first_phase <= cfg.redundancy);
    let mut questions = 0usize;
    let mut values = Vec::with_capacity(truths.len());
    let mut correct = 0usize;
    for (i, truth) in truths.iter().enumerate() {
        let task = Task {
            id: TaskId(i as u64),
            kind: TaskKind::FillInBlank { question: format!("fill slot {i}") },
            truth: Some(Answer::Text(truth.clone())),
            difficulty: 1.0,
            values: None,
            measure: None,
        };
        let first = if cfg.early_stop { cfg.first_phase } else { cfg.redundancy };
        let mut answers: Vec<String> = platform
            .ask_round(std::slice::from_ref(&task), first)
            .into_iter()
            .filter_map(|a| match a.answer {
                Answer::Text(s) => Some(s),
                _ => None,
            })
            .collect();
        questions += answers.len();
        let agreed = cfg.early_stop && has_agreeing_group(&answers, cfg);
        if cfg.early_stop && !agreed && cfg.redundancy > cfg.first_phase {
            let more = platform.ask_round(&[task], cfg.redundancy - cfg.first_phase);
            questions += more.len();
            answers.extend(more.into_iter().filter_map(|a| match a.answer {
                Answer::Text(s) => Some(s),
                _ => None,
            }));
        }
        let value =
            pivot_answer(&answers, cfg.similarity).map(|p| answers[p].clone()).unwrap_or_default();
        if value == *truth {
            correct += 1;
        }
        values.push(value);
    }
    FillOutcome { questions, values, correct }
}

/// True when at least `first_phase` answers are pairwise similar above the
/// agreement threshold.
fn has_agreeing_group(answers: &[String], cfg: &FillConfig) -> bool {
    let need = cfg.first_phase;
    if answers.len() < need {
        return false;
    }
    // Greedy: count answers similar to each anchor.
    for (i, a) in answers.iter().enumerate() {
        let group = answers
            .iter()
            .enumerate()
            .filter(|(j, b)| *j == i || cfg.similarity.similarity(a, b) >= cfg.agree_threshold)
            .count();
        if group >= need {
            return true;
        }
    }
    false
}

/// COLLECT configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CollectConfig {
    /// Distinct tuples wanted.
    pub target: usize,
    /// Use CDB's autocompletion duplicate control; `false` = Deco baseline.
    pub autocomplete: bool,
    /// Hard cap on questions (BUDGET); `usize::MAX` when absent.
    pub max_questions: usize,
    /// How many suggestions a worker effectively scans before giving up and
    /// submitting a duplicate anyway (models imperfect duplicate
    /// avoidance).
    pub retry_attempts: usize,
    /// Probability a worker garbles the canonical spelling (creating a
    /// representation variant the ER step must fold).
    pub dirty_prob: f64,
    /// Similarity threshold for folding variants into canonical values.
    pub dedup_threshold: f64,
    /// Similarity measure for the ER step.
    pub similarity: SimilarityFn,
}

impl Default for CollectConfig {
    fn default() -> Self {
        CollectConfig {
            target: 100,
            autocomplete: true,
            max_questions: usize::MAX,
            retry_attempts: 10,
            dirty_prob: 0.2,
            dedup_threshold: 0.75,
            similarity: SimilarityFn::default(),
        }
    }
}

/// COLLECT execution result.
#[derive(Debug, Clone)]
pub struct CollectOutcome {
    /// Questions asked.
    pub questions: usize,
    /// Distinct canonical tuples collected.
    pub distinct: usize,
    /// `(questions, distinct)` curve, one point per question — the data
    /// behind Figure 17(a).
    pub curve: Vec<(usize, usize)>,
}

/// Run COLLECT against a closed universe of true values (the simulation
/// stand-in for "the top-100 universities"): each question is one worker
/// contribution drawn uniformly from the universe.
pub fn execute_collect(
    universe: &[String],
    rng: &mut impl Rng,
    cfg: &CollectConfig,
) -> CollectOutcome {
    assert!(!universe.is_empty(), "collect needs a non-empty universe");
    let mut store = AutocompleteStore::new();
    let mut questions = 0usize;
    let mut curve = Vec::new();
    // Termination guard: if the ER step keeps folding contributions into
    // existing canonical values (a universe less distinct than the
    // target), stop once progress stalls for long enough.
    let stall_limit = 1000 + 20 * universe.len();
    let mut since_progress = 0usize;
    while store.distinct_count() < cfg.target.min(universe.len())
        && questions < cfg.max_questions
        && since_progress < stall_limit
    {
        // The worker picks an item they know.
        let mut pick = &universe[rng.gen_range(0..universe.len())];
        if cfg.autocomplete {
            // The autocompletion UI shows existing entries; the worker
            // retries a few times to contribute something new.
            let mut attempts = 0;
            while attempts < cfg.retry_attempts
                && store.suggest(pick, 1).first().is_some_and(|s| *s == pick.as_str())
            {
                pick = &universe[rng.gen_range(0..universe.len())];
                attempts += 1;
            }
        }
        // Without autocomplete the worker types freely and may introduce a
        // spelling variant; with it they select the canonical suggestion.
        let contribution = if !cfg.autocomplete && rng.gen::<f64>() < cfg.dirty_prob {
            dirty_variant(pick, rng)
        } else {
            pick.clone()
        };
        let is_new = store.contribute(&contribution, cfg.similarity, cfg.dedup_threshold);
        questions += 1;
        since_progress = if is_new { 0 } else { since_progress + 1 };
        curve.push((questions, store.distinct_count()));
    }
    CollectOutcome { questions, distinct: store.distinct_count(), curve }
}

/// A worker's spelling variant: drop/duplicate/swap one character.
fn dirty_variant(s: &str, rng: &mut impl Rng) -> String {
    let chars: Vec<char> = s.chars().collect();
    if chars.len() < 3 {
        return s.to_string();
    }
    let mut out = chars;
    let i = rng.gen_range(1..out.len() - 1);
    match rng.gen_range(0..3u8) {
        0 => {
            out.remove(i);
        }
        1 => {
            let c = out[i];
            out.insert(i, c);
        }
        _ => out.swap(i, i + 1),
    }
    out.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdb_crowd::{Market, WorkerPool};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn platform(acc: f64, seed: u64) -> SimulatedPlatform {
        SimulatedPlatform::new(Market::Amt, WorkerPool::with_accuracies(&vec![acc; 30]), seed)
    }

    /// Realistically distinct value universe: combinations of dissimilar
    /// word pairs, so the ER step does not fold distinct items (two values
    /// sharing only a pattern word stay below the dedup threshold).
    fn truths(n: usize) -> Vec<String> {
        const W1: [&str; 16] = [
            "Quantum", "Marine", "Alpine", "Desert", "Velvet", "Urban", "Rustic", "Ember", "Lunar",
            "Arctic", "Tropic", "Harbor", "Island", "Valley", "Summit", "Prairie",
        ];
        const W2: [&str; 16] = [
            "Physics", "Biology", "History", "Letters", "Commerce", "Medicine", "Forestry",
            "Geology", "Robotics", "Music", "Drama", "Law", "Design", "Nursing", "Aviation",
            "Mining",
        ];
        assert!(n <= 256);
        (0..n).map(|i| format!("{} {} Institute", W1[i % 16], W2[(i / 16) % 16])).collect()
    }

    #[test]
    fn fill_early_stop_saves_questions_with_good_workers() {
        let t = truths(50);
        let mut p1 = platform(0.97, 1);
        let cdb = execute_fill(&t, &mut p1, &FillConfig::default());
        let mut p2 = platform(0.97, 1);
        let deco =
            execute_fill(&t, &mut p2, &FillConfig { early_stop: false, ..FillConfig::default() });
        assert_eq!(deco.questions, 250);
        assert!(cdb.questions < deco.questions, "{} !< {}", cdb.questions, deco.questions);
        // Around 3 per slot with high-quality workers.
        assert!(cdb.questions < 200, "{}", cdb.questions);
    }

    #[test]
    fn fill_accuracy_stays_high_with_early_stop() {
        let t = truths(50);
        let mut p = platform(0.95, 2);
        let out = execute_fill(&t, &mut p, &FillConfig::default());
        assert!(out.correct as f64 / 50.0 > 0.9, "{}/50", out.correct);
        assert_eq!(out.values.len(), 50);
    }

    #[test]
    fn fill_disagreement_triggers_second_phase() {
        let t = truths(30);
        let mut p = platform(0.4, 3); // unreliable workers rarely agree
        let out = execute_fill(&t, &mut p, &FillConfig::default());
        assert!(out.questions > 3 * 30, "{}", out.questions);
    }

    #[test]
    fn collect_with_autocomplete_needs_fewer_questions() {
        // Pure duplicate-control comparison: no spelling noise, dedup only
        // folds near-identical strings, and the target sits close to the
        // universe size (the paper collects the top-100 of a similar-sized
        // universe) so the no-autocomplete baseline pays the full coupon-
        // collector tail.
        let universe: Vec<String> = truths(100);
        let base = CollectConfig {
            target: 95,
            dirty_prob: 0.0,
            dedup_threshold: 0.9,
            ..CollectConfig::default()
        };
        let cfg_cdb = base;
        let cfg_deco = CollectConfig { autocomplete: false, ..base };
        let cdb = execute_collect(&universe, &mut StdRng::seed_from_u64(1), &cfg_cdb);
        let deco = execute_collect(&universe, &mut StdRng::seed_from_u64(1), &cfg_deco);
        assert_eq!(cdb.distinct, 95);
        assert!(
            deco.questions as f64 / cdb.questions as f64 > 2.0,
            "Deco {} vs CDB {}",
            deco.questions,
            cdb.questions
        );
    }

    #[test]
    fn collect_respects_budget() {
        let universe = truths(200);
        let cfg = CollectConfig { target: 200, max_questions: 50, ..CollectConfig::default() };
        let out = execute_collect(&universe, &mut StdRng::seed_from_u64(2), &cfg);
        assert_eq!(out.questions, 50);
        assert!(out.distinct <= 50);
    }

    #[test]
    fn collect_curve_is_monotone() {
        let universe = truths(80);
        let cfg = CollectConfig { target: 60, ..CollectConfig::default() };
        let out = execute_collect(&universe, &mut StdRng::seed_from_u64(3), &cfg);
        for w in out.curve.windows(2) {
            assert!(w[1].0 == w[0].0 + 1);
            assert!(w[1].1 >= w[0].1);
        }
        assert_eq!(out.curve.last().unwrap().1, out.distinct);
    }

    #[test]
    #[should_panic(expected = "non-empty universe")]
    fn collect_empty_universe_panics() {
        execute_collect(&[], &mut StdRng::seed_from_u64(0), &CollectConfig::default());
    }
}
