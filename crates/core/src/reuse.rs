//! Cross-query crowd-answer reuse (§5.1 cost control, extended with the
//! CDAS answer-reuse idea of Liu et al. and the transitive-relation
//! leverage of Wang et al.).
//!
//! The unit of reuse is a *measure-qualified value pair*: a crowd
//! join-check asks whether two string values are equivalent **under a
//! particular predicate** (its similarity measure), so the cache key is
//! `(measure, normalized value pair)` — two edges comparing the same
//! labels under different predicates never conflate, and each measure
//! forms its own equivalence relation. Within one measure, [`ReuseCache`]
//! interns normalized values and layers a [`cdb_graph::EntailmentGraph`]
//! over them: recorded `yes` answers union components, recorded `no`
//! answers add negative edges, and a lookup resolves to
//!
//! * **Cached** — the exact pair was answered before (depth 1),
//! * **Transitive** — entailed equal through a chain of positives,
//! * **Negative** — entailed distinct through positives plus one negative,
//!
//! each with the entailment depth (answers chained through) as provenance.
//!
//! # Determinism
//!
//! Concurrent queries must not observe each other's in-flight answers or
//! replay breaks (which query "wins" a cache slot would depend on thread
//! scheduling). The runtime therefore takes a [`ReuseCache::snapshot`] once
//! per fleet run, hands every query its own [`ReuseSession`], and after the
//! pool joins, [`ReuseCache::absorb`]s the sessions of *successful* queries
//! *in query-id order* — first writer wins on conflicting answers, and a
//! query that failed with a runtime error contributes nothing (its colors
//! past the error point carry no crowd evidence). Per-query outcomes are
//! thus a pure function of (config, job, snapshot), independent of thread
//! count; cross-query reuse compounds across sequential fleet runs sharing
//! one cache.
//!
//! # Cost
//!
//! `snapshot()` is O(1): sessions share the frozen store behind an `Arc`
//! and lookups resolve against it without interning or mutation. A session
//! clones the store copy-on-write only when it records a fact the snapshot
//! does not already decide — a warm-cache query that merely re-confirms
//! known answers never pays for a copy.

use cdb_graph::{Assertion, Entailment, EntailmentGraph};
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// Normalize a value for cache keying: trim, lowercase, collapse runs of
/// whitespace. Two spellings that normalize equal share one interned id.
pub fn normalize(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut pending_space = false;
    for ch in s.trim().chars() {
        if ch.is_whitespace() {
            pending_space = true;
            continue;
        }
        if pending_space && !out.is_empty() {
            out.push(' ');
        }
        pending_space = false;
        for lc in ch.to_lowercase() {
            out.push(lc);
        }
    }
    out
}

/// How a cache hit was derived — recorded with the inferred answer so the
/// replay transcript carries provenance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Provenance {
    /// The exact normalized pair was answered before.
    Cached,
    /// Entailed equal via a positive chain of `depth` recorded answers.
    Transitive {
        /// Recorded answers the positive chain passes through.
        depth: usize,
    },
    /// Entailed distinct via `depth` recorded answers (one negative plus
    /// the positive paths connecting to it).
    Negative {
        /// Recorded answers the proof passes through.
        depth: usize,
    },
}

impl Provenance {
    /// Number of prior crowd answers the inference chained through.
    pub fn depth(&self) -> usize {
        match *self {
            Provenance::Cached => 1,
            Provenance::Transitive { depth } | Provenance::Negative { depth } => depth,
        }
    }

    /// Short label for events and transcripts.
    pub fn kind(&self) -> &'static str {
        match self {
            Provenance::Cached => "cached",
            Provenance::Transitive { .. } => "transitive",
            Provenance::Negative { .. } => "negative",
        }
    }
}

/// Outcome of consulting the reuse layer for one task.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReuseOutcome {
    /// Resolved without dispatch: `same` is the entailed answer.
    Hit {
        /// The entailed answer: do the two values join?
        same: bool,
        /// How the answer was derived.
        provenance: Provenance,
    },
    /// Unknown — the task must go to the crowd.
    Miss,
}

/// Result of recording one crowd answer into a session.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Recorded {
    /// New fact, now part of the session's closure.
    Inserted,
    /// Already entailed; nothing changed.
    Duplicate,
    /// Contradicts the closure (noisy crowd); dropped and counted.
    Conflict,
}

/// One recorded crowd answer: `(measure, left, right, same)`, values
/// normalized.
type AnswerRec = (String, String, String, bool);

/// Interned entailment store: per-measure value interners over one shared
/// entailment graph + the raw answers recorded (for absorb-time replay
/// into the shared cache). Each measure's values occupy disjoint ids, so
/// one graph holds many independent equivalence relations.
#[derive(Debug, Clone, Default)]
struct Store {
    /// `measure -> normalized value -> interned id`.
    ids: HashMap<String, HashMap<String, usize>>,
    graph: EntailmentGraph,
    /// Recorded answers in insertion order. Only *new* facts are appended.
    answers: Vec<AnswerRec>,
}

impl Store {
    fn intern(&mut self, measure: &str, value: &str) -> usize {
        let norm = normalize(value);
        let per = self.ids.entry(measure.to_string()).or_default();
        if let Some(&id) = per.get(&norm) {
            return id;
        }
        let id = self.graph.push();
        per.insert(norm, id);
        id
    }

    /// Pure lookup: never interns, never mutates — safe on the frozen
    /// snapshot shared across sessions.
    fn resolve(&self, measure: &str, left: &str, right: &str) -> ReuseOutcome {
        let (ln, rn) = (normalize(left), normalize(right));
        if ln == rn {
            // Identical normalized values are trivially the same entity —
            // free even on a cold cache.
            return ReuseOutcome::Hit { same: true, provenance: Provenance::Cached };
        }
        let Some(per) = self.ids.get(measure) else { return ReuseOutcome::Miss };
        let (Some(&a), Some(&b)) = (per.get(&ln), per.get(&rn)) else {
            return ReuseOutcome::Miss;
        };
        match self.graph.entails(a, b) {
            Entailment::Same { depth } => {
                let provenance =
                    if depth <= 1 { Provenance::Cached } else { Provenance::Transitive { depth } };
                ReuseOutcome::Hit { same: true, provenance }
            }
            Entailment::Different { depth } => {
                let provenance =
                    if depth <= 1 { Provenance::Cached } else { Provenance::Negative { depth } };
                ReuseOutcome::Hit { same: false, provenance }
            }
            Entailment::Unknown => ReuseOutcome::Miss,
        }
    }

    fn record(&mut self, measure: &str, left: &str, right: &str, same: bool) -> Recorded {
        let (a, b) = (self.intern(measure, left), self.intern(measure, right));
        let assertion =
            if same { self.graph.assert_same(a, b) } else { self.graph.assert_different(a, b) };
        match assertion {
            Assertion::Inserted => {
                self.answers.push((measure.to_string(), normalize(left), normalize(right), same));
                Recorded::Inserted
            }
            Assertion::Redundant => Recorded::Duplicate,
            Assertion::Contradiction => Recorded::Conflict,
        }
    }
}

/// Per-query view of the cache: the fleet-start snapshot (shared, frozen)
/// plus everything this query has learned (a copy-on-write overlay,
/// materialized only on the first genuinely new fact). Absorbed back into
/// the shared [`ReuseCache`] in query-id order — failed queries' sessions
/// are discarded by the runtime, never absorbed.
#[derive(Debug, Clone, Default)]
pub struct ReuseSession {
    /// Frozen fleet-start snapshot, shared by every session of the run.
    base: Arc<Store>,
    /// Private copy (snapshot + this query's facts); `None` until the
    /// first recorded fact the snapshot does not already decide.
    overlay: Option<Store>,
    /// Facts recorded *by this session* (not inherited from the snapshot),
    /// replayed into the shared cache on absorb.
    fresh: Vec<AnswerRec>,
    hits: usize,
    depth_sum: usize,
    conflicts: usize,
}

impl ReuseSession {
    /// Everything this session knows: its overlay if it has one, else the
    /// shared snapshot.
    fn store(&self) -> &Store {
        self.overlay.as_ref().unwrap_or(&self.base)
    }

    /// Resolve a pending join-check against everything known so far.
    /// Counts hits and accumulated entailment depth. Lookups never intern:
    /// unknown values leave the session untouched.
    pub fn resolve(&mut self, measure: &str, left: &str, right: &str) -> ReuseOutcome {
        let outcome = self.store().resolve(measure, left, right);
        if let ReuseOutcome::Hit { provenance, .. } = outcome {
            self.hits += 1;
            self.depth_sum += provenance.depth();
        }
        outcome
    }

    /// Record a crowd answer observed by this query.
    pub fn record(&mut self, measure: &str, left: &str, right: &str, same: bool) -> Recorded {
        if self.overlay.is_none() {
            // Facts the shared snapshot already decides need no private
            // copy — the common case for warm-cache queries.
            match self.base.resolve(measure, left, right) {
                ReuseOutcome::Hit { same: known, .. } if known == same => {
                    return Recorded::Duplicate;
                }
                ReuseOutcome::Hit { .. } => {
                    self.conflicts += 1;
                    return Recorded::Conflict;
                }
                ReuseOutcome::Miss => {}
            }
        }
        let base = Arc::clone(&self.base);
        let store = self.overlay.get_or_insert_with(|| (*base).clone());
        let recorded = store.record(measure, left, right, same);
        match recorded {
            Recorded::Inserted => {
                self.fresh.push((measure.to_string(), normalize(left), normalize(right), same));
            }
            Recorded::Conflict => self.conflicts += 1,
            Recorded::Duplicate => {}
        }
        recorded
    }

    /// Tasks resolved without dispatch so far.
    pub fn hits(&self) -> usize {
        self.hits
    }

    /// Sum of entailment depths over all hits.
    pub fn depth_sum(&self) -> usize {
        self.depth_sum
    }

    /// Crowd answers dropped because they contradicted the closure.
    pub fn conflicts(&self) -> usize {
        self.conflicts
    }

    /// Invariant accessor: the facts recorded *by this session* (not
    /// inherited from the snapshot), as `(measure, left, right, same)`
    /// with values normalized — what [`ReuseCache::absorb`] would replay.
    pub fn fresh_facts(&self) -> &[(String, String, String, bool)] {
        &self.fresh
    }
}

/// Shared cross-query answer cache. Lock-cheap: queries never touch it
/// mid-flight; the runtime snapshots once per fleet (an `Arc` clone, O(1))
/// and absorbs once per *successful* query after the pool joins.
///
/// Within one measure the cache assumes a single equivalence relation:
/// every recorded answer for a `(measure, value-pair)` key must mean the
/// same question. Jobs whose predicates compare values under different
/// semantics must use distinct measures or the later answer is dropped as
/// a [`Recorded::Conflict`].
#[derive(Debug, Default)]
pub struct ReuseCache {
    store: Mutex<Arc<Store>>,
    conflicts: Mutex<usize>,
}

impl ReuseCache {
    /// An empty cache.
    pub fn new() -> Self {
        ReuseCache::default()
    }

    /// A per-query session seeded with the cache's current contents.
    /// O(1): the session shares the frozen store and copies it only if it
    /// records a genuinely new fact.
    pub fn snapshot(&self) -> ReuseSession {
        let base = Arc::clone(&self.store.lock().expect("reuse cache poisoned"));
        ReuseSession { base, ..ReuseSession::default() }
    }

    /// Merge a finished session's fresh answers into the cache. Callers
    /// absorb sessions in query-id order so the first (lowest-id) writer
    /// wins conflicting answers deterministically; losers are counted.
    /// Only absorb sessions of queries that completed successfully — a
    /// failed query's post-error colors carry no crowd evidence.
    pub fn absorb(&self, session: &ReuseSession) {
        if session.fresh.is_empty() {
            return;
        }
        let mut guard = self.store.lock().expect("reuse cache poisoned");
        let store = Arc::make_mut(&mut guard);
        let mut dropped = 0usize;
        for (measure, left, right, same) in &session.fresh {
            if store.record(measure, left, right, *same) == Recorded::Conflict {
                dropped += 1;
            }
        }
        if dropped > 0 {
            *self.conflicts.lock().expect("reuse cache poisoned") += dropped;
        }
    }

    /// Distinct answers currently recorded.
    pub fn len(&self) -> usize {
        self.store.lock().expect("reuse cache poisoned").answers.len()
    }

    /// True when no answers are recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Answers dropped at absorb time because an earlier query's answer
    /// contradicted them.
    pub fn conflicts(&self) -> usize {
        *self.conflicts.lock().expect("reuse cache poisoned")
    }

    /// Invariant accessor: every crowd-recorded answer in insertion order,
    /// as `(measure, left, right, same)` with values normalized. These are
    /// the *crowd-decided* facts — an external checker (the `cdb-sim`
    /// harness) verifies that no entailment-derived color contradicts
    /// them and, under perfect workers, that each matches ground truth.
    pub fn recorded(&self) -> Vec<(String, String, String, bool)> {
        self.store.lock().expect("reuse cache poisoned").answers.clone()
    }

    /// Invariant accessor: re-resolve a pair against the current contents
    /// without mutating anything — the checker's view of what any future
    /// session would be entailed to answer.
    pub fn resolve(&self, measure: &str, left: &str, right: &str) -> ReuseOutcome {
        self.store.lock().expect("reuse cache poisoned").resolve(measure, left, right)
    }
}

/// One crowd-bought answer with its provenance, in the shape the durable
/// answer log persists: the `(measure, value-pair)` key (normalized), the
/// decided label, and what it cost to buy (`votes` workers, `cents`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SettledFact {
    /// Measure namespace the fact belongs to.
    pub measure: String,
    /// Normalized left value.
    pub left: String,
    /// Normalized right value.
    pub right: String,
    /// The crowd's decision: do the values match?
    pub same: bool,
    /// Worker votes bought for this fact.
    pub votes: u32,
    /// Cents paid for those votes.
    pub cents: u64,
}

/// Durability hook between the runtime and a persistent answer log.
///
/// The executor calls [`SettleSink::settle`] with a successful query's
/// fresh facts *before* absorbing them into the shared [`ReuseCache`]: an
/// answer becomes visible for cross-query reuse only once it is on stable
/// storage, so a crash can never have handed out a reuse hit that disk
/// does not remember. If the sink fails, the session is **not** absorbed
/// — the facts stay query-local and will be re-bought, which loses money
/// but never correctness. Failed or aborted queries are never settled at
/// all, so recovery cannot resurrect an answer the live engine discarded.
///
/// Errors are flattened to `String` so `cdb-core` needs no dependency on
/// the storage crate's error type.
pub trait SettleSink: Send + Sync {
    /// Durably record `facts` for query `query`; return only once they
    /// are fsync'd (or an error if durability could not be guaranteed).
    fn settle(&self, query: u64, facts: &[SettledFact]) -> Result<(), String>;
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Measure used throughout; an arbitrary predicate description.
    const M: &str = "R.v~R.v";

    #[test]
    fn normalize_folds_case_and_whitespace() {
        assert_eq!(normalize("  IBM   Corp \t"), "ibm corp");
        assert_eq!(normalize("ibm corp"), "ibm corp");
        assert_eq!(normalize(""), "");
    }

    #[test]
    fn exact_repeat_is_a_cached_hit() {
        let mut s = ReuseSession::default();
        assert_eq!(s.resolve(M, "IBM", "I.B.M."), ReuseOutcome::Miss);
        s.record(M, "IBM", "I.B.M.", true);
        assert_eq!(
            s.resolve(M, "ibm", "I.B.M."),
            ReuseOutcome::Hit { same: true, provenance: Provenance::Cached }
        );
        assert_eq!(s.hits(), 1);
    }

    #[test]
    fn identical_normalized_values_hit_even_cold() {
        let mut s = ReuseSession::default();
        assert_eq!(
            s.resolve(M, "IBM  Corp", " ibm corp "),
            ReuseOutcome::Hit { same: true, provenance: Provenance::Cached }
        );
    }

    #[test]
    fn transitive_and_negative_entailment_resolve_unseen_pairs() {
        let mut s = ReuseSession::default();
        s.record(M, "a", "b", true);
        s.record(M, "b", "c", true);
        s.record(M, "c", "x", false);
        assert_eq!(
            s.resolve(M, "a", "c"),
            ReuseOutcome::Hit { same: true, provenance: Provenance::Transitive { depth: 2 } }
        );
        assert_eq!(
            s.resolve(M, "a", "x"),
            ReuseOutcome::Hit { same: false, provenance: Provenance::Negative { depth: 3 } }
        );
        assert_eq!(s.depth_sum(), 5);
    }

    #[test]
    fn measures_are_disjoint_namespaces() {
        // The same value pair under two measures is two independent facts:
        // no cross-measure hits, and opposite answers are NOT a conflict.
        let mut s = ReuseSession::default();
        s.record("title~title", "a", "b", true);
        assert_eq!(s.resolve("author~author", "a", "b"), ReuseOutcome::Miss);
        assert_eq!(s.record("author~author", "a", "b", false), Recorded::Inserted);
        assert!(matches!(s.resolve("title~title", "a", "b"), ReuseOutcome::Hit { same: true, .. }));
        assert!(matches!(
            s.resolve("author~author", "a", "b"),
            ReuseOutcome::Hit { same: false, .. }
        ));
        assert_eq!(s.conflicts(), 0);
    }

    #[test]
    fn conflicting_answers_are_dropped_and_counted() {
        let mut s = ReuseSession::default();
        s.record(M, "a", "b", true);
        assert_eq!(s.record(M, "a", "b", false), Recorded::Conflict);
        assert_eq!(s.conflicts(), 1);
        assert!(matches!(s.resolve(M, "a", "b"), ReuseOutcome::Hit { same: true, .. }));
    }

    #[test]
    fn snapshot_absorb_round_trip_compounds_knowledge() {
        let cache = ReuseCache::new();
        let mut s1 = cache.snapshot();
        s1.record(M, "a", "b", true);
        cache.absorb(&s1);
        assert_eq!(cache.len(), 1);

        let mut s2 = cache.snapshot();
        assert!(matches!(s2.resolve(M, "a", "b"), ReuseOutcome::Hit { same: true, .. }));
        s2.record(M, "b", "c", true);
        cache.absorb(&s2);

        let mut s3 = cache.snapshot();
        assert!(matches!(s3.resolve(M, "a", "c"), ReuseOutcome::Hit { same: true, .. }));
    }

    #[test]
    fn absorb_order_resolves_conflicts_first_writer_wins() {
        let cache = ReuseCache::new();
        let mut s1 = cache.snapshot();
        let mut s2 = cache.snapshot();
        s1.record(M, "a", "b", true);
        s2.record(M, "a", "b", false);
        cache.absorb(&s1);
        cache.absorb(&s2);
        assert_eq!(cache.conflicts(), 1);
        let mut s3 = cache.snapshot();
        assert!(matches!(s3.resolve(M, "a", "b"), ReuseOutcome::Hit { same: true, .. }));
    }

    #[test]
    fn sessions_share_the_snapshot_until_they_learn() {
        let cache = ReuseCache::new();
        let mut warmup = cache.snapshot();
        warmup.record(M, "a", "b", true);
        cache.absorb(&warmup);

        let mut s = cache.snapshot();
        // Pure lookups (hit or miss) and re-confirmations of known facts
        // never materialize a private copy.
        assert!(matches!(s.resolve(M, "a", "b"), ReuseOutcome::Hit { .. }));
        assert_eq!(s.resolve(M, "x", "y"), ReuseOutcome::Miss);
        assert_eq!(s.record(M, "a", "b", true), Recorded::Duplicate);
        assert_eq!(s.record(M, "a", "b", false), Recorded::Conflict);
        assert_eq!(s.conflicts(), 1);
        assert!(s.overlay.is_none(), "no copy for lookups and known facts");
        // The first genuinely new fact triggers the copy-on-write.
        assert_eq!(s.record(M, "b", "c", true), Recorded::Inserted);
        assert!(s.overlay.is_some());
        assert!(matches!(s.resolve(M, "a", "c"), ReuseOutcome::Hit { same: true, .. }));
        // Absorbing a session with no fresh facts is a no-op.
        let mut idle = cache.snapshot();
        idle.resolve(M, "a", "b");
        cache.absorb(&idle);
        assert_eq!(cache.len(), 1);
    }
}
