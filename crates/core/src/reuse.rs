//! Cross-query crowd-answer reuse (§5.1 cost control, extended with the
//! CDAS answer-reuse idea of Liu et al. and the transitive-relation
//! leverage of Wang et al.).
//!
//! The unit of reuse is a *value pair*: a crowd join-check asks whether two
//! string values refer to the same entity, so its answer is a property of
//! the values, not of the query that asked. [`ReuseCache`] interns
//! normalized values and layers a [`cdb_graph::EntailmentGraph`] over them:
//! recorded `yes` answers union components, recorded `no` answers add
//! negative edges, and a lookup resolves to
//!
//! * **Cached** — the exact pair was answered before (depth 1),
//! * **Transitive** — entailed equal through a chain of positives,
//! * **Negative** — entailed distinct through positives plus one negative,
//!
//! each with the entailment depth (answers chained through) as provenance.
//!
//! # Determinism
//!
//! Concurrent queries must not observe each other's in-flight answers or
//! replay breaks (which query "wins" a cache slot would depend on thread
//! scheduling). The runtime therefore takes a [`ReuseCache::snapshot`] once
//! per fleet run, hands every query its own [`ReuseSession`] (snapshot +
//! private overlay), and after the pool joins, [`ReuseCache::absorb`]s the
//! sessions *in query-id order* — first writer wins on conflicting answers.
//! Per-query outcomes are thus a pure function of (config, job, snapshot),
//! independent of thread count; cross-query reuse compounds across
//! sequential fleet runs sharing one cache.

use cdb_graph::{Assertion, Entailment, EntailmentGraph};
use std::collections::HashMap;
use std::sync::Mutex;

/// Normalize a value for cache keying: trim, lowercase, collapse runs of
/// whitespace. Two spellings that normalize equal share one interned id.
pub fn normalize(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut pending_space = false;
    for ch in s.trim().chars() {
        if ch.is_whitespace() {
            pending_space = true;
            continue;
        }
        if pending_space && !out.is_empty() {
            out.push(' ');
        }
        pending_space = false;
        for lc in ch.to_lowercase() {
            out.push(lc);
        }
    }
    out
}

/// How a cache hit was derived — recorded with the inferred answer so the
/// replay transcript carries provenance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Provenance {
    /// The exact normalized pair was answered before.
    Cached,
    /// Entailed equal via a positive chain of `depth` recorded answers.
    Transitive { depth: usize },
    /// Entailed distinct via `depth` recorded answers (one negative plus
    /// the positive paths connecting to it).
    Negative { depth: usize },
}

impl Provenance {
    /// Number of prior crowd answers the inference chained through.
    pub fn depth(&self) -> usize {
        match *self {
            Provenance::Cached => 1,
            Provenance::Transitive { depth } | Provenance::Negative { depth } => depth,
        }
    }

    /// Short label for events and transcripts.
    pub fn kind(&self) -> &'static str {
        match self {
            Provenance::Cached => "cached",
            Provenance::Transitive { .. } => "transitive",
            Provenance::Negative { .. } => "negative",
        }
    }
}

/// Outcome of consulting the reuse layer for one task.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReuseOutcome {
    /// Resolved without dispatch: `same` is the entailed answer.
    Hit { same: bool, provenance: Provenance },
    /// Unknown — the task must go to the crowd.
    Miss,
}

/// Result of recording one crowd answer into a session.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Recorded {
    /// New fact, now part of the session's closure.
    Inserted,
    /// Already entailed; nothing changed.
    Duplicate,
    /// Contradicts the closure (noisy crowd); dropped and counted.
    Conflict,
}

/// Interned entailment store: value interner + entailment graph + the raw
/// answers recorded (for absorb-time replay into the shared cache).
#[derive(Debug, Clone, Default)]
struct Store {
    ids: HashMap<String, usize>,
    graph: EntailmentGraph,
    /// Recorded `(left, right, same)` answers in insertion order, by
    /// normalized value. Only *new* facts are appended.
    answers: Vec<(String, String, bool)>,
}

impl Store {
    fn intern(&mut self, value: &str) -> usize {
        let norm = normalize(value);
        if let Some(&id) = self.ids.get(&norm) {
            return id;
        }
        let id = self.graph.push();
        self.ids.insert(norm, id);
        id
    }

    fn resolve(&mut self, left: &str, right: &str) -> ReuseOutcome {
        let (a, b) = (self.intern(left), self.intern(right));
        match self.graph.entails(a, b) {
            Entailment::Same { depth } => {
                let provenance =
                    if depth <= 1 { Provenance::Cached } else { Provenance::Transitive { depth } };
                ReuseOutcome::Hit { same: true, provenance }
            }
            Entailment::Different { depth } => {
                let provenance =
                    if depth <= 1 { Provenance::Cached } else { Provenance::Negative { depth } };
                ReuseOutcome::Hit { same: false, provenance }
            }
            Entailment::Unknown => ReuseOutcome::Miss,
        }
    }

    fn record(&mut self, left: &str, right: &str, same: bool) -> Recorded {
        let (a, b) = (self.intern(left), self.intern(right));
        let assertion =
            if same { self.graph.assert_same(a, b) } else { self.graph.assert_different(a, b) };
        match assertion {
            Assertion::Inserted => {
                self.answers.push((normalize(left), normalize(right), same));
                Recorded::Inserted
            }
            Assertion::Redundant => Recorded::Duplicate,
            Assertion::Contradiction => Recorded::Conflict,
        }
    }
}

/// Per-query view of the cache: a private clone of the fleet-start snapshot
/// plus everything this query has learned. Cheap to mutate without locks;
/// absorbed back into the shared [`ReuseCache`] in query-id order.
#[derive(Debug, Clone, Default)]
pub struct ReuseSession {
    store: Store,
    /// Facts recorded *by this session* (not inherited from the snapshot),
    /// replayed into the shared cache on absorb.
    fresh: Vec<(String, String, bool)>,
    hits: usize,
    depth_sum: usize,
    conflicts: usize,
}

impl ReuseSession {
    /// Resolve a pending join-check against everything known so far.
    /// Counts hits and accumulated entailment depth.
    pub fn resolve(&mut self, left: &str, right: &str) -> ReuseOutcome {
        let outcome = self.store.resolve(left, right);
        if let ReuseOutcome::Hit { provenance, .. } = outcome {
            self.hits += 1;
            self.depth_sum += provenance.depth();
        }
        outcome
    }

    /// Record a crowd answer observed by this query.
    pub fn record(&mut self, left: &str, right: &str, same: bool) -> Recorded {
        let recorded = self.store.record(left, right, same);
        match recorded {
            Recorded::Inserted => {
                self.fresh.push((normalize(left), normalize(right), same));
            }
            Recorded::Conflict => self.conflicts += 1,
            Recorded::Duplicate => {}
        }
        recorded
    }

    /// Tasks resolved without dispatch so far.
    pub fn hits(&self) -> usize {
        self.hits
    }

    /// Sum of entailment depths over all hits.
    pub fn depth_sum(&self) -> usize {
        self.depth_sum
    }

    /// Crowd answers dropped because they contradicted the closure.
    pub fn conflicts(&self) -> usize {
        self.conflicts
    }
}

/// Shared cross-query answer cache. Lock-cheap: queries never touch it
/// mid-flight; the runtime snapshots once per fleet and absorbs once per
/// query after the pool joins.
#[derive(Debug, Default)]
pub struct ReuseCache {
    store: Mutex<Store>,
    conflicts: Mutex<usize>,
}

impl ReuseCache {
    /// An empty cache.
    pub fn new() -> Self {
        ReuseCache::default()
    }

    /// A per-query session seeded with the cache's current contents.
    pub fn snapshot(&self) -> ReuseSession {
        let store = self.store.lock().expect("reuse cache poisoned").clone();
        ReuseSession { store, ..ReuseSession::default() }
    }

    /// Merge a finished session's fresh answers into the cache. Callers
    /// absorb sessions in query-id order so the first (lowest-id) writer
    /// wins conflicting answers deterministically; losers are counted.
    pub fn absorb(&self, session: &ReuseSession) {
        let mut store = self.store.lock().expect("reuse cache poisoned");
        let mut dropped = 0usize;
        for (left, right, same) in &session.fresh {
            if store.record(left, right, *same) == Recorded::Conflict {
                dropped += 1;
            }
        }
        if dropped > 0 {
            *self.conflicts.lock().expect("reuse cache poisoned") += dropped;
        }
    }

    /// Distinct answers currently recorded.
    pub fn len(&self) -> usize {
        self.store.lock().expect("reuse cache poisoned").answers.len()
    }

    /// True when no answers are recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Answers dropped at absorb time because an earlier query's answer
    /// contradicted them.
    pub fn conflicts(&self) -> usize {
        *self.conflicts.lock().expect("reuse cache poisoned")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalize_folds_case_and_whitespace() {
        assert_eq!(normalize("  IBM   Corp \t"), "ibm corp");
        assert_eq!(normalize("ibm corp"), "ibm corp");
        assert_eq!(normalize(""), "");
    }

    #[test]
    fn exact_repeat_is_a_cached_hit() {
        let mut s = ReuseSession::default();
        assert_eq!(s.resolve("IBM", "I.B.M."), ReuseOutcome::Miss);
        s.record("IBM", "I.B.M.", true);
        assert_eq!(
            s.resolve("ibm", "I.B.M."),
            ReuseOutcome::Hit { same: true, provenance: Provenance::Cached }
        );
        assert_eq!(s.hits(), 1);
    }

    #[test]
    fn transitive_and_negative_entailment_resolve_unseen_pairs() {
        let mut s = ReuseSession::default();
        s.record("a", "b", true);
        s.record("b", "c", true);
        s.record("c", "x", false);
        assert_eq!(
            s.resolve("a", "c"),
            ReuseOutcome::Hit { same: true, provenance: Provenance::Transitive { depth: 2 } }
        );
        assert_eq!(
            s.resolve("a", "x"),
            ReuseOutcome::Hit { same: false, provenance: Provenance::Negative { depth: 3 } }
        );
        assert_eq!(s.depth_sum(), 5);
    }

    #[test]
    fn conflicting_answers_are_dropped_and_counted() {
        let mut s = ReuseSession::default();
        s.record("a", "b", true);
        assert_eq!(s.record("a", "b", false), Recorded::Conflict);
        assert_eq!(s.conflicts(), 1);
        assert!(matches!(s.resolve("a", "b"), ReuseOutcome::Hit { same: true, .. }));
    }

    #[test]
    fn snapshot_absorb_round_trip_compounds_knowledge() {
        let cache = ReuseCache::new();
        let mut s1 = cache.snapshot();
        s1.record("a", "b", true);
        cache.absorb(&s1);
        assert_eq!(cache.len(), 1);

        let mut s2 = cache.snapshot();
        assert!(matches!(s2.resolve("a", "b"), ReuseOutcome::Hit { same: true, .. }));
        s2.record("b", "c", true);
        cache.absorb(&s2);

        let mut s3 = cache.snapshot();
        assert!(matches!(s3.resolve("a", "c"), ReuseOutcome::Hit { same: true, .. }));
    }

    #[test]
    fn absorb_order_resolves_conflicts_first_writer_wins() {
        let cache = ReuseCache::new();
        let mut s1 = cache.snapshot();
        let mut s2 = cache.snapshot();
        s1.record("a", "b", true);
        s2.record("a", "b", false);
        cache.absorb(&s1);
        cache.absorb(&s2);
        assert_eq!(cache.conflicts(), 1);
        let mut s3 = cache.snapshot();
        assert!(matches!(s3.resolve("a", "b"), ReuseOutcome::Hit { same: true, .. }));
    }
}
