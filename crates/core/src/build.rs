//! Build the graph query model from an analyzed CQL query and a database.

use cdb_cql::{AnalyzedPredicate, AnalyzedSelect, Literal};
use cdb_similarity::{similarity_join, SimilarityFn};
use cdb_storage::{Database, TupleId, Value};

use crate::model::{NodeId, PartId, PartKind, QueryGraph};
use crate::prune::prune_invalid_edges;

/// Graph construction parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GraphBuildConfig {
    /// Similarity function used as the matching-probability estimator
    /// (paper default: 2-gram Jaccard).
    pub similarity: SimilarityFn,
    /// Edge threshold ε: pairs below it are not materialized (paper: 0.3).
    pub epsilon: f64,
}

impl Default for GraphBuildConfig {
    fn default() -> Self {
        GraphBuildConfig { similarity: SimilarityFn::default(), epsilon: 0.3 }
    }
}

/// Build the query graph (Definition 1):
///
/// * one part per `FROM` table, one vertex per tuple;
/// * one part + constant vertex per selection predicate (§4.2);
/// * crowd predicates contribute edges with weight = similarity ≥ ε,
///   found via the prefix-filter similarity join;
/// * traditional predicates contribute weight-1 edges (immediately Blue)
///   where the predicate holds.
///
/// Invalid edges (in no candidate) are pruned before returning.
pub fn build_query_graph(
    query: &AnalyzedSelect,
    db: &Database,
    cfg: &GraphBuildConfig,
) -> QueryGraph {
    let mut build_phase = cdb_obsv::profile::phase(cdb_obsv::profile::phases::GRAPH_BUILD);
    let mut g = QueryGraph::new();

    // Parts and vertices for tables. The vertex label is the value of the
    // column the tuple is joined/selected on; since a tuple can join on
    // several columns, labels here are per-(part, column) caches and edge
    // construction reads cell values directly.
    let mut part_of_table: std::collections::HashMap<String, PartId> =
        std::collections::HashMap::new();
    let mut nodes_of_table: std::collections::HashMap<String, Vec<NodeId>> =
        std::collections::HashMap::new();
    for t in &query.tables {
        let part = g.add_part(PartKind::Table { name: t.clone() });
        let table = db.table(t).expect("analyzer resolved the table");
        let mut nodes = Vec::with_capacity(table.row_count());
        for row in 0..table.row_count() {
            // Label: a compact rendering of the row for task UIs.
            let label = format!("{t}#{row}");
            nodes.push(g.add_node(part, Some(TupleId::new(t.clone(), row)), label));
        }
        part_of_table.insert(t.clone(), part);
        nodes_of_table.insert(t.clone(), nodes);
    }

    for pred in &query.predicates {
        match pred {
            AnalyzedPredicate::CrowdJoin { left, right } => {
                let pa = part_of_table[&left.table];
                let pb = part_of_table[&right.table];
                let pid = g.add_predicate(pa, pb, true, format!("{left} CROWDJOIN {right}"));
                let lvals = db
                    .table(&left.table)
                    .expect("resolved")
                    .column_strings(&left.column)
                    .expect("resolved");
                let rvals = db
                    .table(&right.table)
                    .expect("resolved")
                    .column_strings(&right.column)
                    .expect("resolved");
                let lrefs: Vec<&str> = lvals.iter().map(String::as_str).collect();
                let rrefs: Vec<&str> = rvals.iter().map(String::as_str).collect();
                let mut join_phase =
                    cdb_obsv::profile::phase(cdb_obsv::profile::phases::SIMILARITY_JOIN);
                join_phase.set(cdb_obsv::attr::keys::N, (lrefs.len() * rrefs.len()) as u64);
                for pair in similarity_join(&lrefs, &rrefs, cfg.similarity, cfg.epsilon) {
                    let u = nodes_of_table[&left.table][pair.left];
                    let v = nodes_of_table[&right.table][pair.right];
                    // Cap below 1.0: identical strings still need crowd
                    // confirmation under a crowd predicate (only
                    // traditional predicates are auto-Blue).
                    let w = pair.sim.min(0.999_999);
                    g.add_edge(u, v, pid, w);
                }
            }
            AnalyzedPredicate::EquiJoin { left, right } => {
                let pa = part_of_table[&left.table];
                let pb = part_of_table[&right.table];
                let pid = g.add_predicate(pa, pb, false, format!("{left} = {right}"));
                let ltab = db.table(&left.table).expect("resolved");
                let rtab = db.table(&right.table).expect("resolved");
                for (i, &u) in nodes_of_table[&left.table].iter().enumerate() {
                    let lv = ltab.cell(i, &left.column).expect("resolved");
                    for (j, &v) in nodes_of_table[&right.table].iter().enumerate() {
                        let rv = rtab.cell(j, &right.column).expect("resolved");
                        if lv.sql_eq(rv) {
                            g.add_edge(u, v, pid, 1.0);
                        }
                    }
                }
            }
            AnalyzedPredicate::CrowdEqual { column, value } => {
                let pa = part_of_table[&column.table];
                let lit = literal_string(value);
                let cpart = g.add_part(PartKind::Constant { value: lit.clone() });
                let cnode = g.add_node(cpart, None, lit.clone());
                let pid =
                    g.add_predicate(pa, cpart, true, format!("{column} CROWDEQUAL \"{lit}\""));
                let vals = db
                    .table(&column.table)
                    .expect("resolved")
                    .column_strings(&column.column)
                    .expect("resolved");
                for (i, val) in vals.iter().enumerate() {
                    let sim =
                        cdb_similarity::SimilarityMeasure::similarity(&cfg.similarity, val, &lit);
                    if sim >= cfg.epsilon {
                        let u = nodes_of_table[&column.table][i];
                        g.add_edge(u, cnode, pid, sim.min(0.999_999));
                    }
                }
            }
            AnalyzedPredicate::Equal { column, value } => {
                let pa = part_of_table[&column.table];
                let lit = literal_string(value);
                let cpart = g.add_part(PartKind::Constant { value: lit.clone() });
                let cnode = g.add_node(cpart, None, lit.clone());
                let pid = g.add_predicate(pa, cpart, false, format!("{column} = \"{lit}\""));
                let table = db.table(&column.table).expect("resolved");
                let lit_value = literal_value(value);
                for (i, &u) in nodes_of_table[&column.table].iter().enumerate() {
                    let cell = table.cell(i, &column.column).expect("resolved");
                    if cell.sql_eq(&lit_value) {
                        g.add_edge(u, cnode, pid, 1.0);
                    }
                }
            }
        }
    }

    prune_invalid_edges(&mut g);
    build_phase.set(cdb_obsv::attr::keys::N, g.edge_count() as u64);
    g
}

fn literal_string(lit: &Literal) -> String {
    match lit {
        Literal::Str(s) => s.clone(),
        Literal::Int(i) => i.to_string(),
        Literal::Float(x) => x.to_string(),
    }
}

fn literal_value(lit: &Literal) -> Value {
    match lit {
        Literal::Str(s) => Value::Text(s.clone()),
        Literal::Int(i) => Value::Int(*i),
        Literal::Float(x) => Value::Float(*x),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::candidate::{enumerate_candidates, CandidateFilter};
    use crate::model::Color;
    use cdb_cql::{analyze_select, parse, Statement};
    use cdb_storage::{ColumnDef, ColumnType, Schema, Table};

    fn db() -> Database {
        let mut db = Database::new();
        let mut paper = Table::new(
            "Paper",
            Schema::new(vec![
                ColumnDef::new("title", ColumnType::Text),
                ColumnDef::new("conference", ColumnType::Text),
            ]),
        );
        paper
            .push(vec![Value::from("Crowdsourced Data Cleaning"), Value::from("sigmod16")])
            .unwrap();
        paper.push(vec![Value::from("Query Processing on SSDs"), Value::from("sigmod13")]).unwrap();
        paper.push(vec![Value::from("Neural Topic Models"), Value::from("icml")]).unwrap();
        let mut citation = Table::new(
            "Citation",
            Schema::new(vec![
                ColumnDef::new("title", ColumnType::Text),
                ColumnDef::new("number", ColumnType::Int),
            ]),
        );
        citation.push(vec![Value::from("Crowdsourced Data Cleaning."), Value::Int(10)]).unwrap();
        citation.push(vec![Value::from("Query Processing on smart SSDs"), Value::Int(5)]).unwrap();
        citation.push(vec![Value::from("Unrelated Biology Paper"), Value::Int(7)]).unwrap();
        db.add_table(paper).unwrap();
        db.add_table(citation).unwrap();
        db
    }

    fn graph_for(sql: &str) -> QueryGraph {
        let database = db();
        let Statement::Select(q) = parse(sql).unwrap() else { panic!() };
        let analyzed = analyze_select(&q, &database).unwrap();
        build_query_graph(&analyzed, &database, &GraphBuildConfig::default())
    }

    #[test]
    fn crowdjoin_edges_follow_similarity_threshold() {
        let g =
            graph_for("SELECT * FROM Paper, Citation WHERE Paper.title CROWDJOIN Citation.title");
        // Similar titles produce edges; the biology citation matches none.
        assert!(g.edge_count() >= 2);
        for i in 0..g.edge_count() {
            let e = crate::model::EdgeId(i);
            assert!(g.edge_weight(e) >= 0.3);
            assert!(g.edge_weight(e) < 1.0);
            assert_eq!(g.edge_color(e), Color::Unknown);
        }
    }

    #[test]
    fn crowdequal_adds_constant_part() {
        let g = graph_for(
            "SELECT * FROM Paper, Citation \
             WHERE Paper.title CROWDJOIN Citation.title AND \
             Paper.conference CROWDEQUAL \"sigmod\"",
        );
        assert_eq!(g.part_count(), 3);
        let const_part = PartId(2);
        assert!(
            matches!(g.part_kind(const_part), PartKind::Constant { value } if value == "sigmod")
        );
        assert_eq!(g.part_nodes(const_part).len(), 1);
    }

    #[test]
    fn candidates_exist_after_build() {
        let g =
            graph_for("SELECT * FROM Paper, Citation WHERE Paper.title CROWDJOIN Citation.title");
        assert!(!enumerate_candidates(&g, CandidateFilter::Live).is_empty());
    }

    #[test]
    fn invalid_edges_are_pruned_at_build_time() {
        // With the selection predicate, papers whose conference is far from
        // "sigmod" (the icml paper) lose their selection edge; their join
        // edges must be pruned as invalid.
        let g = graph_for(
            "SELECT * FROM Paper, Citation \
             WHERE Paper.title CROWDJOIN Citation.title AND \
             Paper.conference CROWDEQUAL \"sigmod\"",
        );
        for e in g.open_edges() {
            assert!(crate::candidate::edge_in_some_candidate(&g, e, CandidateFilter::Live));
        }
    }

    #[test]
    fn traditional_equal_is_blue_weight_one() {
        let g = graph_for(
            "SELECT * FROM Paper, Citation \
             WHERE Paper.title CROWDJOIN Citation.title AND \
             Paper.conference = \"sigmod16\"",
        );
        // The selection edge for the sigmod16 paper is Blue already.
        let blue: Vec<_> = (0..g.edge_count())
            .map(crate::model::EdgeId)
            .filter(|&e| g.edge_color(e) == Color::Blue)
            .collect();
        assert_eq!(blue.len(), 1);
        assert_eq!(g.edge_weight(blue[0]), 1.0);
    }

    #[test]
    fn nosim_build_keeps_all_pairs() {
        let database = db();
        let Statement::Select(q) =
            parse("SELECT * FROM Paper, Citation WHERE Paper.title CROWDJOIN Citation.title")
                .unwrap()
        else {
            panic!()
        };
        let analyzed = analyze_select(&q, &database).unwrap();
        let cfg = GraphBuildConfig { similarity: SimilarityFn::NoSim, epsilon: 0.3 };
        let g = build_query_graph(&analyzed, &database, &cfg);
        assert_eq!(g.edge_count(), 9); // 3x3 all pairs at weight 0.5
    }
}
