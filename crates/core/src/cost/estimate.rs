//! Pre-execution cost envelopes: what a query *could* cost, before any
//! task is asked.
//!
//! Admission control (`cdb-sched`) needs a bound it can hold against a
//! money/worker-capacity envelope without running the query. The envelope
//! here is deliberately conservative — a sound upper bound, not a
//! prediction: the optimizer's task selection (§5.1) exists precisely to
//! ask far fewer than every edge, and pruning usually collapses the round
//! count well below the serial worst case.

use crate::model::{Color, QueryGraph};

/// A conservative pre-execution cost envelope for one query graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CostEstimate {
    /// Upper bound on crowd tasks: every currently-unknown edge asked once.
    pub tasks_upper: usize,
    /// Upper bound on crowd rounds: fully serial (one task per round).
    /// Latency control (§5.2) batches non-conflicting tasks, so real runs
    /// sit far below this; admission only needs soundness.
    pub rounds_upper: usize,
    /// Upper bound on monetary cost in integer cents:
    /// `tasks_upper × redundancy × task price`.
    pub cost_cents_upper: u64,
}

impl CostEstimate {
    /// True when the envelope fits within `budget_cents`.
    pub fn fits_budget(&self, budget_cents: u64) -> bool {
        self.cost_cents_upper <= budget_cents
    }
}

/// Build the envelope for a query graph.
///
/// `task_price_cents` is the market's per-assignment price (see
/// `cdb_crowd::Market::task_price_cents`); `redundancy` is the assignments
/// per task the executor will request.
pub fn estimate(g: &QueryGraph, redundancy: usize, task_price_cents: u64) -> CostEstimate {
    let tasks_upper = (0..g.edge_count())
        .filter(|&i| g.edge_color(crate::model::EdgeId(i)) == Color::Unknown)
        .count();
    CostEstimate {
        tasks_upper,
        rounds_upper: tasks_upper,
        cost_cents_upper: tasks_upper as u64 * redundancy as u64 * task_price_cents,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::PartKind;

    fn two_by_two() -> QueryGraph {
        let mut g = QueryGraph::new();
        let a = g.add_part(PartKind::Table { name: "A".into() });
        let b = g.add_part(PartKind::Table { name: "B".into() });
        let an: Vec<_> = (0..2).map(|i| g.add_node(a, None, format!("a{i}"))).collect();
        let bn: Vec<_> = (0..2).map(|i| g.add_node(b, None, format!("b{i}"))).collect();
        let p = g.add_predicate(a, b, true, "A~B");
        for &x in &an {
            for &y in &bn {
                g.add_edge(x, y, p, 0.5);
            }
        }
        g
    }

    #[test]
    fn envelope_counts_unknown_edges() {
        let g = two_by_two();
        let est = estimate(&g, 3, 5);
        assert_eq!(est.tasks_upper, 4);
        assert_eq!(est.rounds_upper, 4);
        assert_eq!(est.cost_cents_upper, 4 * 3 * 5);
        assert!(est.fits_budget(60));
        assert!(!est.fits_budget(59));
    }

    #[test]
    fn known_edges_cost_nothing() {
        let mut g = two_by_two();
        g.set_color(crate::model::EdgeId(0), Color::Blue);
        g.set_color(crate::model::EdgeId(1), Color::Red);
        let est = estimate(&g, 3, 5);
        assert_eq!(est.tasks_upper, 2);
    }
}
