//! Expectation-based task selection (§5.1.2, Eq. 1).
//!
//! For an edge `e = (t, t′)`, consider the *bundle* of edges from `t` to
//! all tuples of `t′`'s part under the same predicate. Cutting the whole
//! bundle certainly invalidates edges (everything that needed `t`); the
//! probability of cutting it is `∏ (1 − ω)` over the bundle. The pruning
//! expectation of `e` is that probability times the number of invalidated
//! edges, shared equally among the bundle's `x` edges — plus the symmetric
//! term for `t′`:
//!
//! ```text
//! E(t, t′) = ∏ᵢ(1 − ω(t, tᵢ)) / x · α  +  ∏ᵢ(1 − ω(tᵢ, t′)) / y · β
//! ```
//!
//! Edges are asked in descending expectation order. Computing α (the
//! cascade size) uses the same support-propagation as invalid-edge pruning,
//! simulated without mutating the graph.

use std::collections::HashMap;

use crate::model::{Color, EdgeId, NodeId, QueryGraph};

/// Pruning expectation of every open edge.
pub fn pruning_expectations(g: &QueryGraph) -> Vec<(EdgeId, f64)> {
    // Cache bundle effects per (node, predicate).
    let mut cache: HashMap<(NodeId, usize), (usize, f64, usize)> = HashMap::new();
    g.open_edges()
        .into_iter()
        .map(|e| {
            let (u, v) = g.edge_endpoints(e);
            let p = g.edge_predicate(e);
            let (x, prod_x, alpha) = *cache.entry((u, p)).or_insert_with(|| bundle_effect(g, u, p));
            let (y, prod_y, beta) = *cache.entry((v, p)).or_insert_with(|| bundle_effect(g, v, p));
            let mut ex = 0.0;
            if x > 0 {
                ex += prod_x / x as f64 * alpha as f64;
            }
            if y > 0 {
                ex += prod_y / y as f64 * beta as f64;
            }
            (e, ex)
        })
        .collect()
}

/// Open edges in descending pruning-expectation order (ties by weight
/// ascending — a less likely edge is the better cut — then id).
pub fn expectation_order(g: &QueryGraph) -> Vec<EdgeId> {
    let mut ph = cdb_obsv::profile::phase(cdb_obsv::profile::phases::SELECT_EXPECTATION);
    let mut scored = pruning_expectations(g);
    ph.set(cdb_obsv::attr::keys::N, scored.len() as u64);
    scored.sort_by(|a, b| {
        b.1.total_cmp(&a.1)
            .then_with(|| g.edge_weight(a.0).total_cmp(&g.edge_weight(b.0)))
            .then(a.0.cmp(&b.0))
    });
    scored.into_iter().map(|(e, _)| e).collect()
}

/// Effect of cutting the whole bundle of `node`'s live edges under
/// `predicate`: `(bundle size x, ∏(1 − ω), #edges invalidated α)`.
///
/// α counts the live edges that become invalid *besides* the bundle
/// itself, via the death cascade. If the bundle contains a Blue edge it
/// cannot be cut (`∏ = 0`).
fn bundle_effect(g: &QueryGraph, node: NodeId, predicate: usize) -> (usize, f64, usize) {
    let bundle = g.live_edges_for_predicate(node, predicate);
    let x = bundle.len();
    if x == 0 {
        return (0, 0.0, 0);
    }
    let mut prod = 1.0f64;
    for &e in &bundle {
        prod *= match g.edge_color(e) {
            Color::Blue => 0.0,
            Color::Red => 1.0, // unreachable for live edges, defensive
            Color::Unknown => 1.0 - g.edge_weight(e),
        };
    }
    if prod == 0.0 {
        return (x, 0.0, 0);
    }
    (x, prod, simulate_cascade(g, node, &bundle))
}

/// Count how many live edges die if `bundle` (all live edges of `start`
/// for one predicate) is removed, excluding the bundle itself.
fn simulate_cascade(g: &QueryGraph, start: NodeId, bundle: &[EdgeId]) -> usize {
    let _ph = cdb_obsv::profile::phase(cdb_obsv::profile::phases::SELECT_CASCADE);
    let removed: std::collections::HashSet<EdgeId> = bundle.iter().copied().collect();
    let mut dead_edges: std::collections::HashSet<EdgeId> = removed.clone();
    let mut dead_nodes: std::collections::HashSet<NodeId> = std::collections::HashSet::new();
    let mut queue = vec![start];
    dead_nodes.insert(start);
    let mut invalidated = 0usize;
    // The far endpoints of the removed bundle may lose their only support
    // for this predicate: seed them into the cascade.
    for &e in bundle {
        let w = g.other_endpoint(e, start);
        if dead_nodes.contains(&w) {
            continue;
        }
        let p = g.edge_predicate(e);
        let has_support =
            g.live_edges_for_predicate(w, p).into_iter().any(|e2| !dead_edges.contains(&e2));
        if !has_support {
            dead_nodes.insert(w);
            queue.push(w);
        }
    }
    while let Some(v) = queue.pop() {
        for &e in g.incident_edges(v) {
            if !g.edge_live(e) || dead_edges.contains(&e) {
                continue;
            }
            dead_edges.insert(e);
            invalidated += 1;
            let w = g.other_endpoint(e, v);
            if dead_nodes.contains(&w) {
                continue;
            }
            // Does w still have a live edge for this predicate?
            let p = g.edge_predicate(e);
            let has_support =
                g.live_edges_for_predicate(w, p).into_iter().any(|e2| !dead_edges.contains(&e2));
            if !has_support {
                dead_nodes.insert(w);
                queue.push(w);
            }
        }
    }
    invalidated
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{PartKind, QueryGraph};

    /// Rebuild the paper's running-example neighbourhood around p1:
    /// Citation {c1} — Paper {p1} — Researcher {r1, r2, r3} — University
    /// {u1, u2, u3}, with the weights from Figure 4.
    fn paper_p1_neighbourhood() -> (QueryGraph, EdgeId) {
        let mut g = QueryGraph::new();
        let uni = g.add_part(PartKind::Table { name: "University".into() });
        let res = g.add_part(PartKind::Table { name: "Researcher".into() });
        let pap = g.add_part(PartKind::Table { name: "Paper".into() });
        let cit = g.add_part(PartKind::Table { name: "Citation".into() });
        let u1 = g.add_node(uni, None, "u1");
        let u2 = g.add_node(uni, None, "u2");
        let u3 = g.add_node(uni, None, "u3");
        let r1 = g.add_node(res, None, "r1");
        let r2 = g.add_node(res, None, "r2");
        let r3 = g.add_node(res, None, "r3");
        let p1 = g.add_node(pap, None, "p1");
        let c1 = g.add_node(cit, None, "c1");
        let p_ur = g.add_predicate(uni, res, true, "U~R");
        let p_rp = g.add_predicate(res, pap, true, "R~P");
        let p_pc = g.add_predicate(pap, cit, true, "P~C");
        // University-Researcher edges (weights arbitrary but plausible).
        g.add_edge(u1, r1, p_ur, 0.8);
        g.add_edge(u2, r1, p_ur, 0.7);
        g.add_edge(u1, r2, p_ur, 0.6);
        g.add_edge(u2, r2, p_ur, 0.9);
        g.add_edge(u3, r3, p_ur, 0.85);
        // Researcher-Paper edges with the paper's weights.
        let e_p1r1 = g.add_edge(r1, p1, p_rp, 0.42);
        g.add_edge(r2, p1, p_rp, 0.41);
        g.add_edge(r3, p1, p_rp, 0.83);
        // Paper-Citation.
        g.add_edge(p1, c1, p_pc, 0.5);
        (g, e_p1r1)
    }

    #[test]
    fn expectation_matches_paper_example() {
        // E(p1, r1) = (1-0.42)*2 + (1-0.42)(1-0.41)(1-0.83)*6/3 = 1.276.
        let (g, e) = paper_p1_neighbourhood();
        let scores: HashMap<EdgeId, f64> = pruning_expectations(&g).into_iter().collect();
        let expected = (1.0 - 0.42) * 2.0 + (1.0 - 0.42) * (1.0 - 0.41) * (1.0 - 0.83) * 6.0 / 3.0;
        assert!((scores[&e] - expected).abs() < 1e-9, "E = {}, expected {expected}", scores[&e]);
    }

    #[test]
    fn bundle_with_blue_edge_cannot_prune() {
        let (mut g, e) = paper_p1_neighbourhood();
        // Make one edge of p1's researcher bundle Blue: cutting impossible.
        g.set_color(e, Color::Blue);
        let scores: HashMap<EdgeId, f64> = pruning_expectations(&g).into_iter().collect();
        // The other researcher-paper edges now get zero contribution from
        // the p1-side bundle (prod = 0), leaving only their researcher-side
        // term.
        let r2p1 = EdgeId(6);
        let r1_side_only = 1.0 - 0.41; // bundle {r2->p1}, alpha = 2 (u1,u2 edges)
        assert!((scores[&r2p1] - r1_side_only * 2.0).abs() < 1e-9, "{}", scores[&r2p1]);
    }

    #[test]
    fn singleton_cut_edge_ranks_first() {
        // (p1, c1) is the only Paper-Citation edge: cutting it kills the
        // entire left side (8 edges) — it must rank first, like the paper's
        // example order that asks (p1, c1) first.
        let (g, _) = paper_p1_neighbourhood();
        let order = expectation_order(&g);
        let (u, v) = g.edge_endpoints(order[0]);
        let labels = [g.node_label(u), g.node_label(v)];
        assert!(labels.contains(&"p1") && labels.contains(&"c1"), "{labels:?}");
    }

    #[test]
    fn cascade_counts_transitive_invalidation() {
        let (g, _) = paper_p1_neighbourhood();
        // Cutting p1's researcher bundle: kills (p1,c1) and all 5 U~R edges.
        let p1 = NodeId(6);
        let bundle = g.live_edges_for_predicate(p1, 1);
        assert_eq!(bundle.len(), 3);
        assert_eq!(simulate_cascade(&g, p1, &bundle), 6);
    }

    #[test]
    fn expectations_empty_when_everything_colored() {
        let (mut g, _) = paper_p1_neighbourhood();
        for i in 0..g.edge_count() {
            g.set_color(EdgeId(i), Color::Blue);
        }
        assert!(pruning_expectations(&g).is_empty());
    }

    #[test]
    fn order_is_deterministic() {
        let (g, _) = paper_p1_neighbourhood();
        assert_eq!(expectation_order(&g), expectation_order(&g));
    }
}
