//! Expectation-based task selection (§5.1.2, Eq. 1).
//!
//! For an edge `e = (t, t′)`, consider the *bundle* of edges from `t` to
//! all tuples of `t′`'s part under the same predicate. Cutting the whole
//! bundle certainly invalidates edges (everything that needed `t`); the
//! probability of cutting it is `∏ (1 − ω)` over the bundle. The pruning
//! expectation of `e` is that probability times the number of invalidated
//! edges, shared equally among the bundle's `x` edges — plus the symmetric
//! term for `t′`:
//!
//! ```text
//! E(t, t′) = ∏ᵢ(1 − ω(t, tᵢ)) / x · α  +  ∏ᵢ(1 − ω(tᵢ, t′)) / y · β
//! ```
//!
//! Edges are asked in descending expectation order. Computing α (the
//! cascade size) uses the same support-propagation as invalid-edge pruning,
//! simulated without mutating the graph.
//!
//! # Incremental maintenance
//!
//! The expectation of an edge depends only on its endpoints' bundles, and
//! a bundle's product and cascade count depend only on the live subgraph
//! of the node's connected component. A round's answers (colors, pruned
//! edges) therefore leave every score outside the touched components
//! untouched. [`SelectionState`] exploits this: it consumes the
//! [`QueryGraph`] change log, floods the affected pre-change components to
//! build a dirty-node set, drops only those nodes' cached bundle effects,
//! and rescores only open edges with a dirty endpoint. Cascade simulation
//! runs on reusable word-bitsets with per-(node, predicate) dead-support
//! counters against the graph's live-support counters, so one support
//! check is two counter reads instead of an adjacency scan.
//!
//! The from-scratch implementation is kept in [`mod@reference`] as the
//! correctness oracle: proptests pin the incremental ordering byte-for-
//! byte against it.

use std::collections::HashMap;

use crate::model::{Color, EdgeId, NodeId, QueryGraph};

/// Pruning expectation of every open edge (one-shot; equals
/// [`reference::pruning_expectations`] bit-for-bit).
pub fn pruning_expectations(g: &QueryGraph) -> Vec<(EdgeId, f64)> {
    SelectionState::new().expectations(g)
}

/// Open edges in descending pruning-expectation order (ties by weight
/// ascending — a less likely edge is the better cut — then id).
pub fn expectation_order(g: &QueryGraph) -> Vec<EdgeId> {
    SelectionState::new().order(g)
}

/// Sort scored open edges into ask order. Shared by the incremental and
/// reference paths so the tie-breaking is identical by construction.
fn sort_scored(g: &QueryGraph, scored: &mut [(EdgeId, f64)]) {
    scored.sort_by(|a, b| {
        b.1.total_cmp(&a.1)
            .then_with(|| g.edge_weight(a.0).total_cmp(&g.edge_weight(b.0)))
            .then(a.0.cmp(&b.0))
    });
}

/// Incrementally maintained expectation scores, carried across rounds.
///
/// After each round the executor recolors/prunes some edges; `order`
/// re-reads the graph's change log and rescores only the affected
/// components. The produced ordering is byte-identical to recomputing
/// from scratch ([`reference::expectation_order`]) — see the module docs
/// for why the dirty region bounds every possible score change.
#[derive(Debug, Default)]
pub struct SelectionState {
    /// Consumed prefix of the graph's change log.
    cursor: usize,
    initialized: bool,
    /// Score per edge id; only open edges' entries are meaningful.
    scores: Vec<f64>,
    /// Cached bundle effects: (bundle size, ∏(1 − ω), cascade count).
    bundles: HashMap<(NodeId, usize), (usize, f64, usize)>,
    scratch: CascadeScratch,
}

impl SelectionState {
    /// Empty state; caches fill on the first `order`/`expectations` call.
    pub fn new() -> SelectionState {
        SelectionState::default()
    }

    /// Current pruning expectation of every open edge.
    pub fn expectations(&mut self, g: &QueryGraph) -> Vec<(EdgeId, f64)> {
        self.refresh(g);
        g.open_edges().into_iter().map(|e| (e, self.scores[e.0])).collect()
    }

    /// Open edges in descending pruning-expectation order.
    pub fn order(&mut self, g: &QueryGraph) -> Vec<EdgeId> {
        let mut ph = cdb_obsv::profile::phase(cdb_obsv::profile::phases::SELECT_EXPECTATION);
        let mut scored = self.expectations(g);
        ph.set(cdb_obsv::attr::keys::N, scored.len() as u64);
        sort_scored(g, &mut scored);
        scored.into_iter().map(|(e, _)| e).collect()
    }

    fn refresh(&mut self, g: &QueryGraph) {
        if !self.initialized || self.scores.len() != g.edge_count() {
            self.rebuild(g);
            return;
        }
        let end = g.change_log_len();
        if end == self.cursor {
            return;
        }
        // Deduplicate the new log suffix.
        let mut changed = BitSet::new(g.edge_count());
        let mut changed_edges: Vec<EdgeId> = Vec::new();
        for &e in g.changes_since(self.cursor) {
            if changed.insert(e.0) {
                changed_edges.push(e);
            }
        }
        self.cursor = end;
        // Dirty region: flood from the changed edges' endpoints over edges
        // that are live now *or* just changed. Pre-change live edges are a
        // subset of that union, so the flood covers every pre-change
        // component containing a transition; bundle products and cascade
        // counts never reach past a component boundary, so scores of nodes
        // outside the region cannot have moved.
        let mut dirty = BitSet::new(g.node_count());
        let mut dirty_nodes: Vec<NodeId> = Vec::new();
        let mut stack: Vec<NodeId> = Vec::new();
        for &e in &changed_edges {
            let (u, v) = g.edge_endpoints(e);
            for n in [u, v] {
                if dirty.insert(n.0) {
                    dirty_nodes.push(n);
                    stack.push(n);
                }
            }
        }
        while let Some(n) = stack.pop() {
            for &e in g.incident_edges(n) {
                if !g.edge_live(e) && !changed.contains(e.0) {
                    continue;
                }
                let w = g.other_endpoint(e, n);
                if dirty.insert(w.0) {
                    dirty_nodes.push(w);
                    stack.push(w);
                }
            }
        }
        for &n in &dirty_nodes {
            for p in g.part_predicates(g.node_part(n)) {
                self.bundles.remove(&(n, p));
            }
        }
        for e in g.open_edges() {
            let (u, v) = g.edge_endpoints(e);
            if dirty.contains(u.0) || dirty.contains(v.0) {
                self.scores[e.0] = self.score(g, e);
            }
        }
    }

    fn rebuild(&mut self, g: &QueryGraph) {
        self.scores.clear();
        self.scores.resize(g.edge_count(), 0.0);
        self.bundles.clear();
        for e in g.open_edges() {
            self.scores[e.0] = self.score(g, e);
        }
        self.cursor = g.change_log_len();
        self.initialized = true;
    }

    /// Eq. 1 — arithmetic kept expression-for-expression identical to the
    /// reference so the resulting f64 is bit-equal.
    fn score(&mut self, g: &QueryGraph, e: EdgeId) -> f64 {
        let (u, v) = g.edge_endpoints(e);
        let p = g.edge_predicate(e);
        let (x, prod_x, alpha) = self.bundle(g, u, p);
        let (y, prod_y, beta) = self.bundle(g, v, p);
        let mut ex = 0.0;
        if x > 0 {
            ex += prod_x / x as f64 * alpha as f64;
        }
        if y > 0 {
            ex += prod_y / y as f64 * beta as f64;
        }
        ex
    }

    fn bundle(&mut self, g: &QueryGraph, n: NodeId, p: usize) -> (usize, f64, usize) {
        if let Some(&cached) = self.bundles.get(&(n, p)) {
            return cached;
        }
        let effect = bundle_effect(g, n, p, &mut self.scratch);
        self.bundles.insert((n, p), effect);
        effect
    }
}

/// Effect of cutting the whole bundle of `node`'s live edges under
/// `predicate`: `(bundle size x, ∏(1 − ω), #edges invalidated α)`.
///
/// α counts the live edges that become invalid *besides* the bundle
/// itself, via the death cascade. If the bundle contains a Blue edge it
/// cannot be cut (`∏ = 0`).
fn bundle_effect(
    g: &QueryGraph,
    node: NodeId,
    predicate: usize,
    scratch: &mut CascadeScratch,
) -> (usize, f64, usize) {
    scratch.bundle.clear();
    scratch.bundle.extend(g.live_edges_for_predicate_iter(node, predicate));
    let x = scratch.bundle.len();
    if x == 0 {
        return (0, 0.0, 0);
    }
    let mut prod = 1.0f64;
    for &e in &scratch.bundle {
        prod *= match g.edge_color(e) {
            Color::Blue => 0.0,
            Color::Red => 1.0, // unreachable for live edges, defensive
            Color::Unknown => 1.0 - g.edge_weight(e),
        };
    }
    if prod == 0.0 {
        return (x, 0.0, 0);
    }
    let bundle = std::mem::take(&mut scratch.bundle);
    let alpha = simulate_cascade(g, node, &bundle, scratch);
    scratch.bundle = bundle;
    (x, prod, alpha)
}

/// Count how many live edges die if `bundle` (all live edges of `start`
/// for one predicate) is removed, excluding the bundle itself.
///
/// Same traversal as [`reference::simulate_cascade`], but dead edges/nodes
/// live in reusable word-bitsets and the "does `w` still have live
/// support?" test compares the graph's live-support counter against a
/// dead-support counter bumped as edges die — two array reads instead of
/// an adjacency scan. Reset cost is proportional to the touched region.
fn simulate_cascade(
    g: &QueryGraph,
    start: NodeId,
    bundle: &[EdgeId],
    s: &mut CascadeScratch,
) -> usize {
    let _ph = cdb_obsv::profile::phase(cdb_obsv::profile::phases::SELECT_CASCADE);
    s.ensure(g);
    let pc = s.pred_count;
    debug_assert!(s.queue.is_empty());
    if bit_insert(&mut s.dead_node, start.0) {
        s.touched_nodes.push(start);
    }
    s.queue.push(start);
    for &e in bundle {
        if bit_insert(&mut s.dead_edge, e.0) {
            s.touched_edges.push(e);
            let (u, v) = g.edge_endpoints(e);
            let p = g.edge_predicate(e);
            for n in [u, v] {
                let idx = n.0 * pc + p;
                s.dead_support[idx] += 1;
                s.touched_support.push(idx);
            }
        }
    }
    // The far endpoints of the removed bundle may lose their only support
    // for this predicate: seed them into the cascade.
    for &e in bundle {
        let w = g.other_endpoint(e, start);
        if bit_contains(&s.dead_node, w.0) {
            continue;
        }
        let p = g.edge_predicate(e);
        if g.live_support(w, p) <= s.dead_support[w.0 * pc + p] as usize {
            bit_insert(&mut s.dead_node, w.0);
            s.touched_nodes.push(w);
            s.queue.push(w);
        }
    }
    let mut invalidated = 0usize;
    while let Some(v) = s.queue.pop() {
        for &e in g.incident_edges(v) {
            if !g.edge_live(e) || bit_contains(&s.dead_edge, e.0) {
                continue;
            }
            bit_insert(&mut s.dead_edge, e.0);
            s.touched_edges.push(e);
            invalidated += 1;
            let p = g.edge_predicate(e);
            let (eu, ev) = g.edge_endpoints(e);
            for n in [eu, ev] {
                let idx = n.0 * pc + p;
                s.dead_support[idx] += 1;
                s.touched_support.push(idx);
            }
            let w = g.other_endpoint(e, v);
            if bit_contains(&s.dead_node, w.0) {
                continue;
            }
            // Does w still have a live edge for this predicate?
            if g.live_support(w, p) <= s.dead_support[w.0 * pc + p] as usize {
                bit_insert(&mut s.dead_node, w.0);
                s.touched_nodes.push(w);
                s.queue.push(w);
            }
        }
    }
    for e in s.touched_edges.drain(..) {
        s.dead_edge[e.0 >> 6] &= !(1u64 << (e.0 & 63));
    }
    for n in s.touched_nodes.drain(..) {
        s.dead_node[n.0 >> 6] &= !(1u64 << (n.0 & 63));
    }
    for idx in s.touched_support.drain(..) {
        s.dead_support[idx] = 0;
    }
    invalidated
}

/// Reusable cascade workspace: zeroed bitsets plus touched-lists so a
/// simulation's cleanup is O(touched region), not O(graph).
#[derive(Debug, Default)]
struct CascadeScratch {
    dead_edge: Vec<u64>,
    dead_node: Vec<u64>,
    /// Dead-support counter per `node * pred_count + predicate`.
    dead_support: Vec<u32>,
    touched_edges: Vec<EdgeId>,
    touched_nodes: Vec<NodeId>,
    touched_support: Vec<usize>,
    queue: Vec<NodeId>,
    /// Bundle collection buffer for [`bundle_effect`].
    bundle: Vec<EdgeId>,
    pred_count: usize,
}

impl CascadeScratch {
    fn ensure(&mut self, g: &QueryGraph) {
        let pc = g.predicate_count();
        let support = g.node_count() * pc;
        if self.pred_count != pc || self.dead_support.len() < support {
            self.pred_count = pc;
            self.dead_support.clear();
            self.dead_support.resize(support, 0);
        }
        let ew = g.edge_count().div_ceil(64);
        if self.dead_edge.len() < ew {
            self.dead_edge.resize(ew, 0);
        }
        let nw = g.node_count().div_ceil(64);
        if self.dead_node.len() < nw {
            self.dead_node.resize(nw, 0);
        }
    }
}

/// Set bit `i`; true when it was newly set.
#[inline]
fn bit_insert(words: &mut [u64], i: usize) -> bool {
    let w = &mut words[i >> 6];
    let m = 1u64 << (i & 63);
    let fresh = *w & m == 0;
    *w |= m;
    fresh
}

#[inline]
fn bit_contains(words: &[u64], i: usize) -> bool {
    words[i >> 6] & (1u64 << (i & 63)) != 0
}

/// Growable word-bitset for the dirty-region flood.
#[derive(Debug, Default)]
struct BitSet {
    words: Vec<u64>,
}

impl BitSet {
    fn new(capacity: usize) -> BitSet {
        BitSet { words: vec![0; capacity.div_ceil(64)] }
    }

    fn insert(&mut self, i: usize) -> bool {
        bit_insert(&mut self.words, i)
    }

    fn contains(&self, i: usize) -> bool {
        bit_contains(&self.words, i)
    }
}

pub mod reference {
    //! The from-scratch implementation, kept as the correctness oracle:
    //! recomputes every open edge's expectation with per-call `HashSet`
    //! cascades. Proptests and benches pin the incremental
    //! [`SelectionState`] ordering byte-for-byte
    //! against [`expectation_order`] here; it is not wired into any
    //! production path.

    use super::*;

    /// Pruning expectation of every open edge, recomputed from scratch.
    pub fn pruning_expectations(g: &QueryGraph) -> Vec<(EdgeId, f64)> {
        // Cache bundle effects per (node, predicate).
        let mut cache: HashMap<(NodeId, usize), (usize, f64, usize)> = HashMap::new();
        g.open_edges()
            .into_iter()
            .map(|e| {
                let (u, v) = g.edge_endpoints(e);
                let p = g.edge_predicate(e);
                let (x, prod_x, alpha) =
                    *cache.entry((u, p)).or_insert_with(|| bundle_effect(g, u, p));
                let (y, prod_y, beta) =
                    *cache.entry((v, p)).or_insert_with(|| bundle_effect(g, v, p));
                let mut ex = 0.0;
                if x > 0 {
                    ex += prod_x / x as f64 * alpha as f64;
                }
                if y > 0 {
                    ex += prod_y / y as f64 * beta as f64;
                }
                (e, ex)
            })
            .collect()
    }

    /// Open edges in ask order, recomputed from scratch.
    pub fn expectation_order(g: &QueryGraph) -> Vec<EdgeId> {
        let mut scored = pruning_expectations(g);
        sort_scored(g, &mut scored);
        scored.into_iter().map(|(e, _)| e).collect()
    }

    fn bundle_effect(g: &QueryGraph, node: NodeId, predicate: usize) -> (usize, f64, usize) {
        let bundle = g.live_edges_for_predicate(node, predicate);
        let x = bundle.len();
        if x == 0 {
            return (0, 0.0, 0);
        }
        let mut prod = 1.0f64;
        for &e in &bundle {
            prod *= match g.edge_color(e) {
                Color::Blue => 0.0,
                Color::Red => 1.0, // unreachable for live edges, defensive
                Color::Unknown => 1.0 - g.edge_weight(e),
            };
        }
        if prod == 0.0 {
            return (x, 0.0, 0);
        }
        (x, prod, simulate_cascade(g, node, &bundle))
    }

    /// Count how many live edges die if `bundle` (all live edges of
    /// `start` for one predicate) is removed, excluding the bundle itself.
    pub fn simulate_cascade(g: &QueryGraph, start: NodeId, bundle: &[EdgeId]) -> usize {
        let removed: std::collections::HashSet<EdgeId> = bundle.iter().copied().collect();
        let mut dead_edges: std::collections::HashSet<EdgeId> = removed.clone();
        let mut dead_nodes: std::collections::HashSet<NodeId> = std::collections::HashSet::new();
        let mut queue = vec![start];
        dead_nodes.insert(start);
        let mut invalidated = 0usize;
        // The far endpoints of the removed bundle may lose their only
        // support for this predicate: seed them into the cascade.
        for &e in bundle {
            let w = g.other_endpoint(e, start);
            if dead_nodes.contains(&w) {
                continue;
            }
            let p = g.edge_predicate(e);
            if !g.has_live_support(w, p, |e2| dead_edges.contains(&e2)) {
                dead_nodes.insert(w);
                queue.push(w);
            }
        }
        while let Some(v) = queue.pop() {
            for &e in g.incident_edges(v) {
                if !g.edge_live(e) || dead_edges.contains(&e) {
                    continue;
                }
                dead_edges.insert(e);
                invalidated += 1;
                let w = g.other_endpoint(e, v);
                if dead_nodes.contains(&w) {
                    continue;
                }
                // Does w still have a live edge for this predicate?
                let p = g.edge_predicate(e);
                if !g.has_live_support(w, p, |e2| dead_edges.contains(&e2)) {
                    dead_nodes.insert(w);
                    queue.push(w);
                }
            }
        }
        invalidated
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{PartKind, QueryGraph};

    /// Rebuild the paper's running-example neighbourhood around p1:
    /// Citation {c1} — Paper {p1} — Researcher {r1, r2, r3} — University
    /// {u1, u2, u3}, with the weights from Figure 4.
    fn paper_p1_neighbourhood() -> (QueryGraph, EdgeId) {
        let mut g = QueryGraph::new();
        let uni = g.add_part(PartKind::Table { name: "University".into() });
        let res = g.add_part(PartKind::Table { name: "Researcher".into() });
        let pap = g.add_part(PartKind::Table { name: "Paper".into() });
        let cit = g.add_part(PartKind::Table { name: "Citation".into() });
        let u1 = g.add_node(uni, None, "u1");
        let u2 = g.add_node(uni, None, "u2");
        let u3 = g.add_node(uni, None, "u3");
        let r1 = g.add_node(res, None, "r1");
        let r2 = g.add_node(res, None, "r2");
        let r3 = g.add_node(res, None, "r3");
        let p1 = g.add_node(pap, None, "p1");
        let c1 = g.add_node(cit, None, "c1");
        let p_ur = g.add_predicate(uni, res, true, "U~R");
        let p_rp = g.add_predicate(res, pap, true, "R~P");
        let p_pc = g.add_predicate(pap, cit, true, "P~C");
        // University-Researcher edges (weights arbitrary but plausible).
        g.add_edge(u1, r1, p_ur, 0.8);
        g.add_edge(u2, r1, p_ur, 0.7);
        g.add_edge(u1, r2, p_ur, 0.6);
        g.add_edge(u2, r2, p_ur, 0.9);
        g.add_edge(u3, r3, p_ur, 0.85);
        // Researcher-Paper edges with the paper's weights.
        let e_p1r1 = g.add_edge(r1, p1, p_rp, 0.42);
        g.add_edge(r2, p1, p_rp, 0.41);
        g.add_edge(r3, p1, p_rp, 0.83);
        // Paper-Citation.
        g.add_edge(p1, c1, p_pc, 0.5);
        (g, e_p1r1)
    }

    #[test]
    fn expectation_matches_paper_example() {
        // E(p1, r1) = (1-0.42)*2 + (1-0.42)(1-0.41)(1-0.83)*6/3 = 1.276.
        let (g, e) = paper_p1_neighbourhood();
        let scores: HashMap<EdgeId, f64> = pruning_expectations(&g).into_iter().collect();
        let expected = (1.0 - 0.42) * 2.0 + (1.0 - 0.42) * (1.0 - 0.41) * (1.0 - 0.83) * 6.0 / 3.0;
        assert!((scores[&e] - expected).abs() < 1e-9, "E = {}, expected {expected}", scores[&e]);
    }

    #[test]
    fn bundle_with_blue_edge_cannot_prune() {
        let (mut g, e) = paper_p1_neighbourhood();
        // Make one edge of p1's researcher bundle Blue: cutting impossible.
        g.set_color(e, Color::Blue);
        let scores: HashMap<EdgeId, f64> = pruning_expectations(&g).into_iter().collect();
        // The other researcher-paper edges now get zero contribution from
        // the p1-side bundle (prod = 0), leaving only their researcher-side
        // term.
        let r2p1 = EdgeId(6);
        let r1_side_only = 1.0 - 0.41; // bundle {r2->p1}, alpha = 2 (u1,u2 edges)
        assert!((scores[&r2p1] - r1_side_only * 2.0).abs() < 1e-9, "{}", scores[&r2p1]);
    }

    #[test]
    fn singleton_cut_edge_ranks_first() {
        // (p1, c1) is the only Paper-Citation edge: cutting it kills the
        // entire left side (8 edges) — it must rank first, like the paper's
        // example order that asks (p1, c1) first.
        let (g, _) = paper_p1_neighbourhood();
        let order = expectation_order(&g);
        let (u, v) = g.edge_endpoints(order[0]);
        let labels = [g.node_label(u), g.node_label(v)];
        assert!(labels.contains(&"p1") && labels.contains(&"c1"), "{labels:?}");
    }

    #[test]
    fn cascade_counts_transitive_invalidation() {
        let (g, _) = paper_p1_neighbourhood();
        // Cutting p1's researcher bundle: kills (p1,c1) and all 5 U~R edges.
        let p1 = NodeId(6);
        let bundle = g.live_edges_for_predicate(p1, 1);
        assert_eq!(bundle.len(), 3);
        assert_eq!(reference::simulate_cascade(&g, p1, &bundle), 6);
        let mut scratch = CascadeScratch::default();
        assert_eq!(simulate_cascade(&g, p1, &bundle, &mut scratch), 6);
    }

    #[test]
    fn bitset_cascade_matches_reference_under_coloring() {
        let (mut g, _) = paper_p1_neighbourhood();
        let mut scratch = CascadeScratch::default();
        let colorings =
            [(EdgeId(0), Color::Red), (EdgeId(5), Color::Blue), (EdgeId(2), Color::Red)];
        for (e, c) in colorings {
            g.set_color(e, c);
            for i in 0..g.node_count() {
                let n = NodeId(i);
                for p in g.part_predicates(g.node_part(n)) {
                    let bundle = g.live_edges_for_predicate(n, p);
                    if bundle.is_empty() {
                        continue;
                    }
                    assert_eq!(
                        simulate_cascade(&g, n, &bundle, &mut scratch),
                        reference::simulate_cascade(&g, n, &bundle),
                        "{n:?} pred {p} after {e:?} -> {c:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn expectations_empty_when_everything_colored() {
        let (mut g, _) = paper_p1_neighbourhood();
        for i in 0..g.edge_count() {
            g.set_color(EdgeId(i), Color::Blue);
        }
        assert!(pruning_expectations(&g).is_empty());
    }

    #[test]
    fn order_is_deterministic() {
        let (g, _) = paper_p1_neighbourhood();
        assert_eq!(expectation_order(&g), expectation_order(&g));
    }

    #[test]
    fn one_shot_order_matches_reference() {
        let (g, _) = paper_p1_neighbourhood();
        assert_eq!(expectation_order(&g), reference::expectation_order(&g));
        let fast: Vec<(EdgeId, u64)> =
            pruning_expectations(&g).into_iter().map(|(e, s)| (e, s.to_bits())).collect();
        let slow: Vec<(EdgeId, u64)> = reference::pruning_expectations(&g)
            .into_iter()
            .map(|(e, s)| (e, s.to_bits()))
            .collect();
        assert_eq!(fast, slow); // bit-equal scores, not just close
    }

    #[test]
    fn carried_state_matches_reference_across_rounds() {
        // Simulate executor rounds: color a few edges, prune, reorder —
        // the carried state must track the from-scratch oracle exactly.
        let (mut g, _) = paper_p1_neighbourhood();
        let mut state = SelectionState::new();
        assert_eq!(state.order(&g), reference::expectation_order(&g));
        let script = [
            vec![(EdgeId(8), Color::Blue)],
            vec![(EdgeId(5), Color::Red), (EdgeId(6), Color::Blue)],
            vec![(EdgeId(0), Color::Red), (EdgeId(4), Color::Red)],
        ];
        for round in script {
            for (e, c) in round {
                g.set_color(e, c);
            }
            crate::prune::prune_invalid_edges(&mut g);
            assert_eq!(state.order(&g), reference::expectation_order(&g));
        }
    }
}
