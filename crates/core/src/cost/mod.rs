//! Cost control (§5.1): select the fewest tasks that determine all answers.
//!
//! * [`known`] — task selection when edge colors are known (§5.1.1):
//!   optimal min-cut selection on chain structures (Lemma 1), the star
//!   rule, and a greedy hitting set for general structures.
//! * [`sampling`] — the `MinCut` method (§5.1.2): sample possible colorings
//!   of the unknown edges, solve each with the known-color machinery, and
//!   order edges by how often they are selected.
//! * [`expectation`] — the expectation-based method (Eq. 1): order edges by
//!   their expected pruning power.
//! * [`budget`] — budget-aware selection (§5.1.3): maximize answers found
//!   within `B` tasks by asking the most promising candidates first.
//! * [`estimate`] — pre-execution cost envelopes: sound upper bounds on
//!   tasks/rounds/cents for admission control (`cdb-sched`).

pub mod budget;
pub mod estimate;
pub mod expectation;
pub mod known;
pub mod sampling;
