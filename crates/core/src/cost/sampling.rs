//! The `MinCut` sampling method (§5.1.2).
//!
//! With unknown colors, satisfying *every* possible coloring degenerates to
//! asking everything, so CDB relaxes to satisfying a random coloring with
//! high probability: sample `S` colorings (each edge BLUE with probability
//! ω(e)), solve each sample with the known-color selection, and order the
//! union of selected edges by how many samples selected them. Selecting
//! the minimum edges covering all samples is NP-hard (Lemma 2, reduction
//! from set cover); this is the paper's greedy.

use rand::Rng;

use crate::cost::known::select_known_colors;
use crate::model::{Color, EdgeId, QueryGraph};

/// Produce the `MinCut` ask order from `samples` sampled colorings.
///
/// Already-colored edges keep their color in every sample; unknown edges
/// are BLUE with probability ω(e). Edges never selected in any sample are
/// appended at the end in weight-descending order so the order is total
/// over all open edges (the executor stops early once everything is
/// colored or pruned).
pub fn mincut_sampling_order(g: &QueryGraph, samples: usize, rng: &mut impl Rng) -> Vec<EdgeId> {
    assert!(samples > 0, "need at least one sample");
    let mut ph = cdb_obsv::profile::phase(cdb_obsv::profile::phases::SELECT_MINCUT);
    ph.set(cdb_obsv::attr::keys::N, samples as u64);
    let open = g.open_edges();
    let mut occurrences: std::collections::HashMap<EdgeId, usize> =
        std::collections::HashMap::new();

    for _ in 0..samples {
        // Sample a coloring.
        let sampled: std::collections::HashMap<EdgeId, bool> = (0..g.edge_count())
            .map(EdgeId)
            .map(|e| {
                let blue = match g.edge_color(e) {
                    Color::Blue => true,
                    Color::Red => false,
                    Color::Unknown => rng.gen::<f64>() < g.edge_weight(e),
                };
                (e, blue)
            })
            .collect();
        let truth = |e: EdgeId| sampled[&e];
        for e in select_known_colors(g, &truth) {
            // Only open edges are actual tasks.
            if g.edge_color(e) == Color::Unknown && !g.edge_invalid(e) {
                *occurrences.entry(e).or_insert(0) += 1;
            }
        }
    }

    let mut selected: Vec<(EdgeId, usize)> = occurrences.iter().map(|(&e, &n)| (e, n)).collect();
    // Occurrence count descending; ties by id for determinism.
    selected.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    let mut order: Vec<EdgeId> = selected.into_iter().map(|(e, _)| e).collect();

    // Edges never selected by any sample still may need asking later (the
    // samples are only probable worlds); append them in expectation order
    // so the tail behaves like the expectation-based method.
    let rest: Vec<EdgeId> = crate::cost::expectation::expectation_order(g)
        .into_iter()
        .filter(|e| !occurrences.contains_key(e) && open.contains(e))
        .collect();
    order.extend(rest);
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::testgraph::chain_2x3;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn order_covers_all_open_edges() {
        let (g, _) = chain_2x3(0.5);
        let mut rng = StdRng::seed_from_u64(1);
        let order = mincut_sampling_order(&g, 5, &mut rng);
        assert_eq!(order.len(), g.edge_count());
        let mut sorted = order.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), g.edge_count(), "order must not repeat edges");
    }

    #[test]
    fn colored_edges_are_excluded() {
        let (mut g, _) = chain_2x3(0.5);
        g.set_color(EdgeId(0), Color::Blue);
        g.set_color(EdgeId(1), Color::Red);
        let mut rng = StdRng::seed_from_u64(2);
        let order = mincut_sampling_order(&g, 5, &mut rng);
        assert!(!order.contains(&EdgeId(0)));
        assert!(!order.contains(&EdgeId(1)));
    }

    #[test]
    fn deterministic_given_seed() {
        let (g, _) = chain_2x3(0.4);
        let o1 = mincut_sampling_order(&g, 10, &mut StdRng::seed_from_u64(3));
        let o2 = mincut_sampling_order(&g, 10, &mut StdRng::seed_from_u64(3));
        assert_eq!(o1, o2);
    }

    #[test]
    fn low_weight_edges_are_prioritized_as_cuts() {
        // An edge with tiny ω is almost always RED in samples and sits in
        // min-cuts, so it should appear early.
        let (mut g, nodes) = chain_2x3(0.5);
        // Lower one edge's weight drastically.
        let e_low = g
            .incident_edges(nodes[1][0])
            .iter()
            .copied()
            .find(|&e| g.other_endpoint(e, nodes[1][0]) == nodes[2][0])
            .unwrap();
        g.edges[e_low.0].weight = 0.05;
        let mut rng = StdRng::seed_from_u64(4);
        let order = mincut_sampling_order(&g, 50, &mut rng);
        let pos = order.iter().position(|&e| e == e_low).unwrap();
        assert!(pos < 4, "low-weight cut edge should rank early, got {pos}");
    }

    #[test]
    #[should_panic(expected = "at least one sample")]
    fn zero_samples_rejected() {
        let (g, _) = chain_2x3(0.5);
        mincut_sampling_order(&g, 0, &mut StdRng::seed_from_u64(0));
    }
}
