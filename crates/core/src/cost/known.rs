//! Task selection with known edge colors (§5.1.1).
//!
//! When an oracle reveals every edge's true color, the minimal task set is:
//! every edge of every BLUE candidate (they are answers and cannot be
//! deduced), plus a minimum set of RED edges whose asking refutes every
//! other candidate. On *chain* join structures the latter is exactly an
//! s–s* min-cut (Lemma 1). Stars have a direct per-center-tuple rule. For
//! general trees/graphs the paper rewrites the structure into a chain with
//! duplicated tables, which itself over-counts ("invalid join tuples" must
//! be removed); we instead solve the equivalent hitting-set formulation
//! greedily, which is the same quality trade-off without the rewrite (see
//! DESIGN.md).

use std::collections::{HashMap, HashSet};

use cdb_graph::{Dinic, INF_CAPACITY};

use crate::candidate::{enumerate_candidates, Candidate, CandidateFilter};
use crate::model::{EdgeId, NodeId, PartId, QueryGraph};

/// An edge-color oracle: `true` = the edge is truly BLUE.
pub type ColorOracle<'a> = dyn Fn(EdgeId) -> bool + 'a;

/// Shape of the predicate structure at the part level.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JoinStructure {
    /// Parts form a path; the payload is the part order along it.
    Chain(Vec<PartId>),
    /// One center part joined to all others; payload is the center.
    Star(PartId),
    /// Anything else (tree with branching or cyclic).
    General,
}

/// Classify the predicate structure. A 2-part query counts as a chain.
pub fn join_structure(g: &QueryGraph) -> JoinStructure {
    let n = g.part_count();
    let preds = g.predicates();
    if preds.is_empty() {
        return JoinStructure::General;
    }
    // Degree per part (multi-edges count; a multi-edge breaks chain/star).
    let mut deg = vec![0usize; n];
    let mut seen_pairs = HashSet::new();
    let mut multi = false;
    for p in preds {
        deg[p.a.0] += 1;
        deg[p.b.0] += 1;
        let key = (p.a.0.min(p.b.0), p.a.0.max(p.b.0));
        if !seen_pairs.insert(key) {
            multi = true;
        }
    }
    // Only consider parts that participate in predicates.
    let active: Vec<usize> = (0..n).filter(|&i| deg[i] > 0).collect();
    if multi || preds.len() != active.len().saturating_sub(1) {
        return JoinStructure::General; // cyclic or disconnected
    }
    let ends: Vec<usize> = active.iter().copied().filter(|&i| deg[i] == 1).collect();
    let max_deg = active.iter().map(|&i| deg[i]).max().unwrap_or(0);
    if max_deg <= 2 && ends.len() == 2 {
        // Path: walk from one end.
        let mut order = vec![PartId(ends[0])];
        let mut prev: Option<PartId> = None;
        while order.len() < active.len() {
            let cur = *order.last().expect("non-empty");
            let next = preds
                .iter()
                .filter_map(|p| {
                    if p.a == cur {
                        Some(p.b)
                    } else if p.b == cur {
                        Some(p.a)
                    } else {
                        None
                    }
                })
                .find(|&q| Some(q) != prev)
                .expect("path continues");
            prev = Some(cur);
            order.push(next);
        }
        return JoinStructure::Chain(order);
    }
    if active.len() >= 3 {
        // Star: one center with degree = #predicates, all others degree 1.
        if let Some(&center) = active.iter().find(|&&i| deg[i] == preds.len()) {
            if active.iter().all(|&i| i == center || deg[i] == 1) {
                return JoinStructure::Star(PartId(center));
            }
        }
    }
    JoinStructure::General
}

/// The full §5.1.1 selection: dispatches on structure.
pub fn select_known_colors(g: &QueryGraph, truth: &ColorOracle) -> Vec<EdgeId> {
    match join_structure(g) {
        JoinStructure::Chain(order) => select_chain(g, truth, &order),
        JoinStructure::Star(center) => select_star(g, truth, center),
        JoinStructure::General => select_hitting_set(g, truth),
    }
}

/// Candidates of the (color-agnostic) graph together with their truth
/// status.
fn split_candidates(g: &QueryGraph, truth: &ColorOracle) -> (Vec<Candidate>, Vec<Candidate>) {
    let all = enumerate_candidates(g, CandidateFilter::Live);
    all.into_iter().partition(|c| c.edges.iter().all(|&e| truth(e)))
}

/// Chain structure: Lemma 1 min-cut construction. Optimal.
pub fn select_chain(g: &QueryGraph, truth: &ColorOracle, order: &[PartId]) -> Vec<EdgeId> {
    let (blue_chains, _) = split_candidates(g, truth);

    // Every edge of a blue chain must be asked.
    let mut must: HashSet<EdgeId> = HashSet::new();
    let mut b_edges: HashSet<EdgeId> = HashSet::new();
    let mut chain_vertices: HashSet<NodeId> = HashSet::new();
    for c in &blue_chains {
        for &e in &c.edges {
            must.insert(e);
            b_edges.insert(e);
        }
        for &v in &c.binding {
            chain_vertices.insert(v);
        }
    }

    // Position of each part along the chain, to orient edges left/right.
    let pos: HashMap<PartId, usize> = order.iter().enumerate().map(|(i, &p)| (p, i)).collect();

    // Flow graph: s = 0, t = 1. Each graph vertex gets a left node and a
    // right node; unsplit vertices share one flow node for both sides.
    let mut left_node: HashMap<NodeId, usize> = HashMap::new();
    let mut right_node: HashMap<NodeId, usize> = HashMap::new();
    let mut next = 2usize;
    for i in 0..g.node_count() {
        let v = NodeId(i);
        if !pos.contains_key(&g.node_part(v)) {
            continue;
        }
        if chain_vertices.contains(&v) {
            left_node.insert(v, next);
            right_node.insert(v, next + 1);
            next += 2;
        } else {
            left_node.insert(v, next);
            right_node.insert(v, next);
            next += 1;
        }
    }
    let mut flow = Dinic::new(next);
    let (s, t) = (0usize, 1usize);

    // The flow network is DIRECTED right-to-left along the chain: flow
    // enters at the last part and exits at the first, so every s–s* path
    // is a monotone (sub)chain — an undirected formulation would admit
    // zigzag paths through blue edges that correspond to no candidate and
    // make the flow unbounded.
    //
    // s feeds every last-part tuple and every blue-chain vertex's left
    // copy (prefix refutation); every first-part tuple and every
    // blue-chain vertex's right copy drains to s* (suffix refutation).
    let first = order[0];
    let last = *order.last().expect("chain has parts");
    // Blue-chain vertices are wired through their split copies below; the
    // generic endpoint wiring must skip them or a chain vertex sitting in
    // the first/last part would connect s to s* directly with infinite
    // capacity.
    for &v in g.part_nodes(last) {
        if !chain_vertices.contains(&v) {
            flow.add_edge(s, right_node[&v], INF_CAPACITY, usize::MAX - 1);
        }
    }
    for &v in g.part_nodes(first) {
        if !chain_vertices.contains(&v) {
            flow.add_edge(left_node[&v], t, INF_CAPACITY, usize::MAX - 1);
        }
    }
    for &v in &chain_vertices {
        flow.add_edge(s, left_node[&v], INF_CAPACITY, usize::MAX - 1);
        flow.add_edge(right_node[&v], t, INF_CAPACITY, usize::MAX - 1);
    }

    // Graph edges (minus B-edges): each edge between parts i and i+1 runs
    // from the (i+1)-side vertex's left role into the i-side vertex's
    // right role — "t keeps its left edges, t* gets its right edges".
    for i in 0..g.edge_count() {
        let e = EdgeId(i);
        if !g.edge_live(e) || b_edges.contains(&e) {
            continue;
        }
        let (mut u, mut v) = g.edge_endpoints(e);
        if pos[&g.node_part(u)] > pos[&g.node_part(v)] {
            std::mem::swap(&mut u, &mut v);
        }
        let cap = if truth(e) { INF_CAPACITY } else { 1 };
        flow.add_edge(left_node[&v], right_node[&u], cap, i);
    }

    flow.max_flow(s, t);
    for label in flow.min_cut_edges(s) {
        if label < g.edge_count() {
            must.insert(EdgeId(label));
        }
    }
    let mut out: Vec<EdgeId> = must.into_iter().collect();
    out.sort_unstable();
    out
}

/// Star structure rule (§5.1.1).
pub fn select_star(g: &QueryGraph, truth: &ColorOracle, center: PartId) -> Vec<EdgeId> {
    let mut must: HashSet<EdgeId> = HashSet::new();
    let preds = g.part_predicates(center);
    for &tv in g.part_nodes(center) {
        // Live edges of the center tuple grouped by predicate.
        let groups: Vec<Vec<EdgeId>> =
            preds.iter().map(|&p| g.live_edges_for_predicate(tv, p)).collect();
        if groups.iter().any(Vec::is_empty) {
            // Some predicate has no edge at all: tuple already refuted.
            continue;
        }
        let all_have_blue = groups.iter().all(|es| es.iter().any(|&e| truth(e)));
        if all_have_blue {
            // Every incident edge must be asked.
            for es in &groups {
                must.extend(es.iter().copied());
            }
        } else {
            // Pick the predicate whose edges are all red with the fewest
            // red edges; asking them refutes every candidate through tv.
            let cheapest = groups
                .iter()
                .filter(|es| es.iter().all(|&e| !truth(e)))
                .min_by_key(|es| es.len())
                .expect("some group is all red");
            must.extend(cheapest.iter().copied());
        }
    }
    let mut out: Vec<EdgeId> = must.into_iter().collect();
    out.sort_unstable();
    out
}

/// General structures: greedy hitting set over non-blue candidates.
pub fn select_hitting_set(g: &QueryGraph, truth: &ColorOracle) -> Vec<EdgeId> {
    let (blue, others) = split_candidates(g, truth);
    let mut must: HashSet<EdgeId> = HashSet::new();
    for c in &blue {
        must.extend(c.edges.iter().copied());
    }
    // Each non-blue candidate needs one of its red edges asked.
    let mut uncovered: Vec<&Candidate> = others.iter().collect();
    // red edge -> indices of candidates it appears in.
    while !uncovered.is_empty() {
        let mut coverage: HashMap<EdgeId, usize> = HashMap::new();
        for c in &uncovered {
            for &e in &c.edges {
                if !truth(e) {
                    *coverage.entry(e).or_insert(0) += 1;
                }
            }
        }
        let (&best, _) = coverage
            .iter()
            .max_by_key(|(e, n)| (**n, std::cmp::Reverse(e.0)))
            .expect("non-blue candidate has a red edge");
        must.insert(best);
        uncovered.retain(|c| !c.edges.contains(&best));
    }
    let mut out: Vec<EdgeId> = must.into_iter().collect();
    out.sort_unstable();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::testgraph::chain_2x3;
    use crate::model::{PartKind, QueryGraph};
    use std::collections::HashMap as Map;

    /// Figure-1-style mini chain: the blue chain A0-B0-C0, everything else
    /// red.
    fn one_answer_chain() -> (QueryGraph, Map<EdgeId, bool>) {
        let (g, nodes) = chain_2x3(0.5);
        let mut colors = Map::new();
        for i in 0..g.edge_count() {
            let e = EdgeId(i);
            let (u, v) = g.edge_endpoints(e);
            let blue =
                (u == nodes[0][0] && v == nodes[1][0]) || (u == nodes[1][0] && v == nodes[2][0]);
            colors.insert(e, blue);
        }
        (g, colors)
    }

    #[test]
    fn structure_classification() {
        let (g, _) = chain_2x3(0.5);
        assert!(matches!(join_structure(&g), JoinStructure::Chain(_)));
    }

    #[test]
    fn star_classification() {
        let mut g = QueryGraph::new();
        let a = g.add_part(PartKind::Table { name: "A".into() });
        let b = g.add_part(PartKind::Table { name: "B".into() });
        let c = g.add_part(PartKind::Table { name: "C".into() });
        let d = g.add_part(PartKind::Table { name: "D".into() });
        g.add_predicate(b, a, true, "1");
        g.add_predicate(b, c, true, "2");
        g.add_predicate(b, d, true, "3");
        assert_eq!(join_structure(&g), JoinStructure::Star(b));
    }

    #[test]
    fn cyclic_classified_general() {
        let mut g = QueryGraph::new();
        let a = g.add_part(PartKind::Table { name: "A".into() });
        let b = g.add_part(PartKind::Table { name: "B".into() });
        let c = g.add_part(PartKind::Table { name: "C".into() });
        g.add_predicate(a, b, true, "1");
        g.add_predicate(b, c, true, "2");
        g.add_predicate(c, a, true, "3");
        assert_eq!(join_structure(&g), JoinStructure::General);
    }

    #[test]
    fn chain_selection_asks_blue_chain_and_min_cut() {
        let (g, colors) = one_answer_chain();
        let truth = |e: EdgeId| colors[&e];
        let sel = select_known_colors(&g, &truth);
        // Blue chain: 2 edges must be asked. Refutation: cutting the two
        // other B-side... the optimal cut: all chains not all-blue must be
        // hit. The answer must ask >= 2 (blue) edges and it must refute
        // every other complete chain.
        assert!(sel.len() < g.edge_count(), "selection must save tasks");
        for (&e, &blue) in &colors {
            if blue {
                assert!(sel.contains(&e), "blue chain edge {e:?} must be asked");
            }
        }
        // Verification: every complete candidate either is the answer or
        // contains an asked red edge.
        let cands = enumerate_candidates(&g, CandidateFilter::Live);
        for c in cands {
            let all_blue = c.edges.iter().all(|&e| colors[&e]);
            if !all_blue {
                assert!(
                    c.edges.iter().any(|&e| !colors[&e] && sel.contains(&e)),
                    "candidate {c:?} not refuted"
                );
            }
        }
    }

    #[test]
    fn chain_selection_is_minimal_vs_brute_force() {
        let (g, colors) = one_answer_chain();
        let truth = |e: EdgeId| colors[&e];
        let sel = select_known_colors(&g, &truth);
        let brute = brute_force_minimum(&g, &colors);
        assert_eq!(sel.len(), brute, "min-cut selection must be optimal");
    }

    /// Smallest valid selection size by exhaustive search.
    fn brute_force_minimum(g: &QueryGraph, colors: &Map<EdgeId, bool>) -> usize {
        let cands = enumerate_candidates(g, CandidateFilter::Live);
        let blue_edges: Vec<EdgeId> = cands
            .iter()
            .filter(|c| c.edges.iter().all(|&e| colors[&e]))
            .flat_map(|c| c.edges.iter().copied())
            .collect();
        let red_pool: Vec<EdgeId> =
            (0..g.edge_count()).map(EdgeId).filter(|e| !colors[e] && g.edge_live(*e)).collect();
        let non_blue: Vec<_> =
            cands.iter().filter(|c| !c.edges.iter().all(|&e| colors[&e])).collect();
        let mut best = usize::MAX;
        for mask in 0u32..(1 << red_pool.len()) {
            let chosen: Vec<EdgeId> = red_pool
                .iter()
                .enumerate()
                .filter(|(i, _)| mask & (1 << i) != 0)
                .map(|(_, &e)| e)
                .collect();
            let covers = non_blue.iter().all(|c| c.edges.iter().any(|e| chosen.contains(e)));
            if covers {
                let mut total: std::collections::HashSet<EdgeId> = chosen.into_iter().collect();
                total.extend(blue_edges.iter().copied());
                best = best.min(total.len());
            }
        }
        best
    }

    #[test]
    fn no_blue_chain_needs_only_cuts() {
        let (g, nodes) = chain_2x3(0.5);
        // All edges red except one dangling blue A0-B0 (no blue B-C).
        let mut colors = Map::new();
        for i in 0..g.edge_count() {
            let e = EdgeId(i);
            let (u, v) = g.edge_endpoints(e);
            colors.insert(e, u == nodes[0][0] && v == nodes[1][0]);
        }
        let truth = |e: EdgeId| colors[&e];
        let sel = select_known_colors(&g, &truth);
        // No answers: selection contains only red edges.
        assert!(sel.iter().all(|e| !colors[e]));
        assert!(!sel.is_empty());
        assert_eq!(sel.len(), brute_force_minimum(&g, &colors));
    }

    #[test]
    fn all_blue_chain_asks_everything() {
        let (g, _) = chain_2x3(0.5);
        let truth = |_: EdgeId| true;
        let sel = select_known_colors(&g, &truth);
        assert_eq!(sel.len(), g.edge_count());
    }

    #[test]
    fn star_rule_blue_center_asks_all_incident() {
        let mut g = QueryGraph::new();
        let b = g.add_part(PartKind::Table { name: "B".into() });
        let a = g.add_part(PartKind::Table { name: "A".into() });
        let c = g.add_part(PartKind::Table { name: "C".into() });
        let b0 = g.add_node(b, None, "b0");
        let a0 = g.add_node(a, None, "a0");
        let a1 = g.add_node(a, None, "a1");
        let c0 = g.add_node(c, None, "c0");
        let p_ba = g.add_predicate(b, a, true, "B~A");
        let p_bc = g.add_predicate(b, c, true, "B~C");
        let e1 = g.add_edge(b0, a0, p_ba, 0.5);
        let e2 = g.add_edge(b0, a1, p_ba, 0.5);
        let e3 = g.add_edge(b0, c0, p_bc, 0.5);
        let mut colors = Map::new();
        colors.insert(e1, true);
        colors.insert(e2, false);
        colors.insert(e3, true);
        let truth = |e: EdgeId| colors[&e];
        let sel = select_star(&g, &truth, b);
        assert_eq!(sel, vec![e1, e2, e3]);
    }

    #[test]
    fn star_rule_red_group_prunes_other_edges() {
        // Like the paper's Figure 6: center tuple has only red edges to one
        // table; asking the cheapest all-red group refutes everything.
        let mut g = QueryGraph::new();
        let b = g.add_part(PartKind::Table { name: "Paper".into() });
        let a = g.add_part(PartKind::Table { name: "Citation".into() });
        let c = g.add_part(PartKind::Table { name: "Researcher".into() });
        let p1 = g.add_node(b, None, "p1");
        let c1 = g.add_node(a, None, "c1");
        let r1 = g.add_node(c, None, "r1");
        let r2 = g.add_node(c, None, "r2");
        let r3 = g.add_node(c, None, "r3");
        let p_bc = g.add_predicate(b, a, true, "P~C");
        let p_br = g.add_predicate(b, c, true, "P~R");
        let e_c = g.add_edge(p1, c1, p_bc, 0.5);
        g.add_edge(p1, r1, p_br, 0.5);
        g.add_edge(p1, r2, p_br, 0.5);
        g.add_edge(p1, r3, p_br, 0.5);
        // (p1,c1) is red; researcher edges blue.
        let truth = |e: EdgeId| e != e_c;
        let sel = select_star(&g, &truth, b);
        assert_eq!(sel, vec![e_c], "only the single red citation edge is asked");
    }

    #[test]
    fn hitting_set_covers_all_non_blue_candidates() {
        let (g, colors) = one_answer_chain();
        let truth = |e: EdgeId| colors[&e];
        let sel = select_hitting_set(&g, &truth);
        let cands = enumerate_candidates(&g, CandidateFilter::Live);
        for c in cands {
            let all_blue = c.edges.iter().all(|&e| colors[&e]);
            if all_blue {
                assert!(c.edges.iter().all(|e| sel.contains(e)));
            } else {
                assert!(c.edges.iter().any(|&e| !colors[&e] && sel.contains(&e)));
            }
        }
    }
}
