//! Budget-aware task selection (§5.1.3).
//!
//! Given a budget of `B` tasks, maximize the number of answers found: rank
//! candidates by their *answer expectation* `Pr(C) = ∏ ω(e)` and spend the
//! budget on the most promising candidate's unasked edges first, updating
//! the graph (and re-ranking) after every batch of answers.

use crate::candidate::{enumerate_candidates, CandidateFilter};
use crate::model::{Color, EdgeId, QueryGraph};

/// The next batch of edges to ask under a budget: the unasked edges of the
/// live candidate with the highest answer expectation, ordered by weight
/// (descending, as in the paper's walkthrough: ask the most promising
/// edges of the chosen candidate first). Returns at most `remaining`
/// edges; empty when no candidate is left.
pub fn next_budget_batch(g: &QueryGraph, remaining: usize) -> Vec<EdgeId> {
    if remaining == 0 {
        return Vec::new();
    }
    let cands = enumerate_candidates(g, CandidateFilter::Live);
    let best = cands
        .into_iter()
        .map(|c| {
            let p = c.probability(g);
            (c, p)
        })
        .filter(|(c, _)| c.edges.iter().any(|&e| g.edge_color(e) == Color::Unknown))
        .max_by(|a, b| a.1.total_cmp(&b.1));
    let Some((cand, _)) = best else {
        return Vec::new();
    };
    let mut edges: Vec<EdgeId> =
        cand.edges.iter().copied().filter(|&e| g.edge_color(e) == Color::Unknown).collect();
    edges.sort_by(|&a, &b| g.edge_weight(b).total_cmp(&g.edge_weight(a)).then(a.cmp(&b)));
    edges.truncate(remaining);
    edges
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::testgraph::chain_2x3;
    use crate::model::{PartKind, QueryGraph};

    #[test]
    fn picks_highest_probability_candidate() {
        let mut g = QueryGraph::new();
        let a = g.add_part(PartKind::Table { name: "A".into() });
        let b = g.add_part(PartKind::Table { name: "B".into() });
        let a0 = g.add_node(a, None, "a0");
        let a1 = g.add_node(a, None, "a1");
        let b0 = g.add_node(b, None, "b0");
        let b1 = g.add_node(b, None, "b1");
        let p = g.add_predicate(a, b, true, "A~B");
        g.add_edge(a0, b0, p, 0.4);
        let e_best = g.add_edge(a1, b1, p, 0.9);
        let batch = next_budget_batch(&g, 10);
        assert_eq!(batch, vec![e_best]);
    }

    #[test]
    fn batch_respects_remaining_budget() {
        let (g, _) = chain_2x3(0.5);
        assert_eq!(next_budget_batch(&g, 1).len(), 1);
        assert_eq!(next_budget_batch(&g, 2).len(), 2);
        assert!(next_budget_batch(&g, 0).is_empty());
    }

    #[test]
    fn colored_edges_are_not_re_asked() {
        let (mut g, _) = chain_2x3(0.5);
        // Color one candidate fully blue: it has no unasked edges left, the
        // batch must come from another candidate.
        let cands = enumerate_candidates(&g, CandidateFilter::Live);
        for &e in &cands[0].edges {
            g.set_color(e, Color::Blue);
        }
        let batch = next_budget_batch(&g, 10);
        assert!(!batch.is_empty());
        for e in &batch {
            assert_eq!(g.edge_color(*e), Color::Unknown);
        }
    }

    #[test]
    fn partially_blue_candidate_is_preferred() {
        // A candidate with one confirmed Blue edge has probability boosted
        // to the weight of its remaining edge, beating fresh candidates.
        let (mut g, nodes) = chain_2x3(0.5);
        let e_ab = g
            .incident_edges(nodes[0][0])
            .iter()
            .copied()
            .find(|&e| g.other_endpoint(e, nodes[0][0]) == nodes[1][0])
            .unwrap();
        g.set_color(e_ab, Color::Blue);
        let batch = next_budget_batch(&g, 10);
        // The batch must be the remaining unknown edge(s) of a candidate
        // through A0-B0.
        let first = batch[0];
        let (u, v) = g.edge_endpoints(first);
        assert!(u == nodes[1][0] || v == nodes[1][0], "batch should extend the blue edge");
    }

    #[test]
    fn exhausted_graph_yields_empty_batch() {
        let (mut g, _) = chain_2x3(0.5);
        for i in 0..g.edge_count() {
            g.set_color(EdgeId(i), Color::Red);
        }
        assert!(next_budget_batch(&g, 10).is_empty());
    }
}
