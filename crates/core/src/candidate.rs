//! Candidate enumeration (Definitions 2–4 of the paper).
//!
//! A *candidate* is a connected substructure with exactly one edge per
//! query predicate; a candidate whose edges are all BLUE is an *answer*.
//! Enumeration is a backtracking search over predicates in a connected
//! expansion order, binding one vertex per part. The same search core
//! answers the membership questions the optimizer needs: "is this edge in
//! any candidate?" (invalid-edge detection, Definition 3) and "are these
//! two edges in a common candidate?" (the conflict test of the latency
//! controller, §5.2).

use crate::model::{Color, EdgeId, NodeId, PartId, QueryGraph};

/// Which edges may participate in a candidate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CandidateFilter {
    /// Any edge that is not Red and not invalid — the *potential*
    /// candidates that could still become answers.
    Live,
    /// Blue edges only — actual answers (Definition 4).
    BlueOnly,
}

impl CandidateFilter {
    fn admits(self, g: &QueryGraph, e: EdgeId) -> bool {
        match self {
            CandidateFilter::Live => g.edge_live(e),
            CandidateFilter::BlueOnly => g.edge_color(e) == Color::Blue,
        }
    }
}

/// One candidate: a vertex binding per part and the edge chosen for each
/// predicate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Candidate {
    /// `binding[p]` is the vertex bound for part `p`.
    pub binding: Vec<NodeId>,
    /// `edges[i]` is the edge satisfying predicate `i`.
    pub edges: Vec<EdgeId>,
}

impl Candidate {
    /// Product of the edge weights: the probability this candidate is an
    /// answer (§5.1.3), under edge independence.
    pub fn probability(&self, g: &QueryGraph) -> f64 {
        self.edges
            .iter()
            .map(|&e| match g.edge_color(e) {
                Color::Blue => 1.0,
                Color::Red => 0.0,
                Color::Unknown => g.edge_weight(e),
            })
            .product()
    }
}

/// A connected expansion order of the predicates: each predicate after the
/// first shares a part with an earlier one. Panics if the predicate graph
/// is disconnected (CQL queries must be connected joins).
fn expansion_order(g: &QueryGraph) -> Vec<usize> {
    let n = g.predicate_count();
    if n == 0 {
        return Vec::new();
    }
    let preds = g.predicates();
    let mut order = vec![0usize];
    let mut used = vec![false; n];
    used[0] = true;
    let mut bound_parts: Vec<PartId> = vec![preds[0].a, preds[0].b];
    while order.len() < n {
        let next = (0..n).find(|&i| {
            !used[i] && (bound_parts.contains(&preds[i].a) || bound_parts.contains(&preds[i].b))
        });
        let i = next.expect("query predicates must form a connected structure");
        used[i] = true;
        order.push(i);
        if !bound_parts.contains(&preds[i].a) {
            bound_parts.push(preds[i].a);
        }
        if !bound_parts.contains(&preds[i].b) {
            bound_parts.push(preds[i].b);
        }
    }
    order
}

/// Backtracking search over candidates. `fixed[i]` optionally pins the
/// edge used for predicate `i`. The visitor returns `true` to continue,
/// `false` to stop the search.
fn search(
    g: &QueryGraph,
    filter: CandidateFilter,
    fixed: &[Option<EdgeId>],
    visit: &mut dyn FnMut(&Candidate) -> bool,
) {
    let n = g.predicate_count();
    if n == 0 {
        return;
    }
    // Pre-index edges per predicate.
    let mut per_pred: Vec<Vec<EdgeId>> = vec![Vec::new(); n];
    for i in 0..g.edge_count() {
        let e = EdgeId(i);
        if filter.admits(g, e) {
            per_pred[g.edge_predicate(e)].push(e);
        }
    }
    // Pinned edges must pass the filter too.
    for (i, f) in fixed.iter().enumerate() {
        if let Some(e) = f {
            if !filter.admits(g, *e) || g.edge_predicate(*e) != i {
                return;
            }
        }
    }
    let order = expansion_order(g);
    let mut binding: Vec<Option<NodeId>> = vec![None; g.part_count()];
    let mut chosen: Vec<EdgeId> = Vec::with_capacity(n);
    rec(g, filter, fixed, &order, 0, &per_pred, &mut binding, &mut chosen, visit);
}

#[allow(clippy::too_many_arguments)]
fn rec(
    g: &QueryGraph,
    filter: CandidateFilter,
    fixed: &[Option<EdgeId>],
    order: &[usize],
    depth: usize,
    per_pred: &[Vec<EdgeId>],
    binding: &mut Vec<Option<NodeId>>,
    chosen: &mut Vec<EdgeId>,
    visit: &mut dyn FnMut(&Candidate) -> bool,
) -> bool {
    if depth == order.len() {
        let cand = Candidate {
            binding: binding.iter().map(|b| b.expect("all parts bound")).collect(),
            edges: {
                // chosen is in expansion order; restore predicate order.
                let mut edges = vec![EdgeId(usize::MAX); order.len()];
                for (d, &p) in order.iter().enumerate() {
                    edges[p] = chosen[d];
                }
                edges
            },
        };
        return visit(&cand);
    }
    let pred = order[depth];
    let info = &g.predicates()[pred];
    let candidates: Vec<EdgeId> = match fixed[pred] {
        Some(e) => vec![e],
        None => per_pred[pred].clone(),
    };
    for e in candidates {
        if !filter.admits(g, e) {
            continue;
        }
        let (mut u, mut v) = g.edge_endpoints(e);
        // Normalize: u belongs to info.a, v to info.b.
        if g.node_part(u) != info.a {
            std::mem::swap(&mut u, &mut v);
        }
        debug_assert_eq!(g.node_part(u), info.a);
        debug_assert_eq!(g.node_part(v), info.b);
        // Consistency with current binding.
        let (ba, bb) = (binding[info.a.0], binding[info.b.0]);
        if ba.is_some_and(|x| x != u) || bb.is_some_and(|x| x != v) {
            continue;
        }
        let (seta, setb) = (ba.is_none(), bb.is_none());
        binding[info.a.0] = Some(u);
        binding[info.b.0] = Some(v);
        chosen.push(e);
        let cont = rec(g, filter, fixed, order, depth + 1, per_pred, binding, chosen, visit);
        chosen.pop();
        if seta {
            binding[info.a.0] = None;
        }
        if setb {
            binding[info.b.0] = None;
        }
        if !cont {
            return false;
        }
    }
    true
}

/// Existence-only search: is there any candidate honouring the pins?
///
/// Unlike [`search`] this never builds the per-predicate edge index (an
/// O(edges) scan per call — ruinous inside the latency controller's
/// pairwise conflict test). The expansion order starts at the first
/// pinned predicate, preferring pinned predicates while growing, so every
/// unpinned predicate is entered with at least one part already bound and
/// its edges stream straight from the bound node's adjacency list.
/// Existence is independent of enumeration order, so the answer matches
/// `search`-and-stop exactly.
fn exists(g: &QueryGraph, filter: CandidateFilter, fixed: &[Option<EdgeId>]) -> bool {
    let n = g.predicate_count();
    if n == 0 {
        return false;
    }
    // Pinned edges must pass the filter too.
    for (i, f) in fixed.iter().enumerate() {
        if let Some(e) = f {
            if !filter.admits(g, *e) || g.edge_predicate(*e) != i {
                return false;
            }
        }
    }
    let preds = g.predicates();
    let first = fixed.iter().position(|f| f.is_some()).unwrap_or(0);
    let mut order = vec![first];
    let mut used = vec![false; n];
    used[first] = true;
    let mut bound = vec![false; g.part_count()];
    bound[preds[first].a.0] = true;
    bound[preds[first].b.0] = true;
    while order.len() < n {
        let next = (0..n)
            .filter(|&i| !used[i] && (bound[preds[i].a.0] || bound[preds[i].b.0]))
            .min_by_key(|&i| (fixed[i].is_none(), i));
        let i = next.expect("query predicates must form a connected structure");
        used[i] = true;
        order.push(i);
        bound[preds[i].a.0] = true;
        bound[preds[i].b.0] = true;
    }
    let mut binding: Vec<Option<NodeId>> = vec![None; g.part_count()];
    exists_rec(g, filter, fixed, &order, 0, &mut binding)
}

fn exists_rec(
    g: &QueryGraph,
    filter: CandidateFilter,
    fixed: &[Option<EdgeId>],
    order: &[usize],
    depth: usize,
    binding: &mut Vec<Option<NodeId>>,
) -> bool {
    if depth == order.len() {
        return true;
    }
    let pred = order[depth];
    let info = &g.predicates()[pred];
    let step = |binding: &mut Vec<Option<NodeId>>, e: EdgeId| -> bool {
        if g.edge_predicate(e) != pred || !filter.admits(g, e) {
            return false;
        }
        let (mut u, mut v) = g.edge_endpoints(e);
        // Normalize: u belongs to info.a, v to info.b.
        if g.node_part(u) != info.a {
            std::mem::swap(&mut u, &mut v);
        }
        // Consistency with current binding.
        let (ba, bb) = (binding[info.a.0], binding[info.b.0]);
        if ba.is_some_and(|x| x != u) || bb.is_some_and(|x| x != v) {
            return false;
        }
        let (seta, setb) = (ba.is_none(), bb.is_none());
        binding[info.a.0] = Some(u);
        binding[info.b.0] = Some(v);
        let found = exists_rec(g, filter, fixed, order, depth + 1, binding);
        if seta {
            binding[info.a.0] = None;
        }
        if setb {
            binding[info.b.0] = None;
        }
        found
    };
    if let Some(e) = fixed[pred] {
        return step(binding, e);
    }
    match binding[info.a.0].or(binding[info.b.0]) {
        Some(anchor) => {
            // A consistent edge must touch the bound endpoint: walk its
            // adjacency list instead of every edge of the predicate.
            for &e in g.incident_edges(anchor) {
                if step(binding, e) {
                    return true;
                }
            }
        }
        None => {
            // Only reachable when nothing is pinned at all.
            for i in 0..g.edge_count() {
                if step(binding, EdgeId(i)) {
                    return true;
                }
            }
        }
    }
    false
}

/// Enumerate every candidate under the filter.
pub fn enumerate_candidates(g: &QueryGraph, filter: CandidateFilter) -> Vec<Candidate> {
    let mut out = Vec::new();
    let fixed = vec![None; g.predicate_count()];
    search(g, filter, &fixed, &mut |c| {
        out.push(c.clone());
        true
    });
    out
}

/// Answers: candidates whose edges are all Blue (Definition 4).
pub fn answers(g: &QueryGraph) -> Vec<Candidate> {
    enumerate_candidates(g, CandidateFilter::BlueOnly)
}

/// Is this edge contained in at least one candidate? (An edge that is not
/// is *invalid*, Definition 3.)
pub fn edge_in_some_candidate(g: &QueryGraph, e: EdgeId, filter: CandidateFilter) -> bool {
    let mut fixed = vec![None; g.predicate_count()];
    fixed[g.edge_predicate(e)] = Some(e);
    exists(g, filter, &fixed)
}

/// Do two edges appear together in some candidate? (The *conflict* test of
/// the latency controller: conflicting edges cannot be asked in the same
/// round because one answer might prune the other task.)
pub fn edges_in_same_candidate(
    g: &QueryGraph,
    e1: EdgeId,
    e2: EdgeId,
    filter: CandidateFilter,
) -> bool {
    let (p1, p2) = (g.edge_predicate(e1), g.edge_predicate(e2));
    if p1 == p2 {
        // A candidate has exactly one edge per predicate.
        return e1 == e2;
    }
    let mut fixed = vec![None; g.predicate_count()];
    fixed[p1] = Some(e1);
    fixed[p2] = Some(e2);
    exists(g, filter, &fixed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::testgraph::chain_2x3;
    use crate::model::{PartKind, QueryGraph};
    use cdb_storage::TupleId;

    #[test]
    fn full_bipartite_chain_has_eight_candidates() {
        let (g, _) = chain_2x3(0.5);
        // 2 choices in A x 2 in B x 2 in C = 8 candidates.
        assert_eq!(enumerate_candidates(&g, CandidateFilter::Live).len(), 8);
    }

    #[test]
    fn red_edge_removes_candidates() {
        let (mut g, _) = chain_2x3(0.5);
        g.set_color(EdgeId(0), Color::Red); // kills A0-B0, affects 2 candidates
        assert_eq!(enumerate_candidates(&g, CandidateFilter::Live).len(), 6);
    }

    #[test]
    fn answers_require_all_blue() {
        let (mut g, nodes) = chain_2x3(0.5);
        assert!(answers(&g).is_empty());
        // Color A0-B0 and B0-C0 blue.
        for i in 0..g.edge_count() {
            let e = EdgeId(i);
            let (u, v) = g.edge_endpoints(e);
            if (u == nodes[0][0] && v == nodes[1][0]) || (u == nodes[1][0] && v == nodes[2][0]) {
                g.set_color(e, Color::Blue);
            }
        }
        let ans = answers(&g);
        assert_eq!(ans.len(), 1);
        assert_eq!(ans[0].binding, vec![nodes[0][0], nodes[1][0], nodes[2][0]]);
    }

    #[test]
    fn candidate_probability_is_product_of_weights() {
        let (g, _) = chain_2x3(0.5);
        let c = &enumerate_candidates(&g, CandidateFilter::Live)[0];
        assert!((c.probability(&g) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn probability_uses_colors() {
        let (mut g, _) = chain_2x3(0.5);
        let c = enumerate_candidates(&g, CandidateFilter::Live)[0].clone();
        g.set_color(c.edges[0], Color::Blue);
        assert!((c.probability(&g) - 0.5).abs() < 1e-12);
        g.set_color(c.edges[1], Color::Red);
        assert_eq!(c.probability(&g), 0.0);
    }

    #[test]
    fn every_edge_in_full_graph_is_in_a_candidate() {
        let (g, _) = chain_2x3(0.5);
        for i in 0..g.edge_count() {
            assert!(edge_in_some_candidate(&g, EdgeId(i), CandidateFilter::Live));
        }
    }

    #[test]
    fn disconnecting_reds_make_edges_invalid() {
        let (mut g, nodes) = chain_2x3(0.5);
        // Kill both edges from B0 to C: B0 can no longer reach part C.
        for i in 0..g.edge_count() {
            let e = EdgeId(i);
            let (u, v) = g.edge_endpoints(e);
            if u == nodes[1][0] && g.node_part(v) == crate::model::PartId(2) {
                g.set_color(e, Color::Red);
            }
        }
        // Now A*-B0 edges are in no candidate.
        let ab0: Vec<EdgeId> = (0..g.edge_count())
            .map(EdgeId)
            .filter(|&e| {
                let (u, v) = g.edge_endpoints(e);
                v == nodes[1][0] || u == nodes[1][0]
            })
            .filter(|&e| g.edge_live(e))
            .collect();
        for e in ab0 {
            assert!(!edge_in_some_candidate(&g, e, CandidateFilter::Live), "{e:?}");
        }
    }

    #[test]
    fn same_predicate_edges_never_share_a_candidate() {
        let (g, _) = chain_2x3(0.5);
        assert!(!edges_in_same_candidate(&g, EdgeId(0), EdgeId(1), CandidateFilter::Live));
        assert!(edges_in_same_candidate(&g, EdgeId(0), EdgeId(0), CandidateFilter::Live));
    }

    #[test]
    fn cross_predicate_conflict_detection() {
        let (g, nodes) = chain_2x3(0.5);
        // Edge A0-B0 and edge B0-C0 share binding B0: conflict.
        let e_ab = g
            .incident_edges(nodes[0][0])
            .iter()
            .copied()
            .find(|&e| g.other_endpoint(e, nodes[0][0]) == nodes[1][0])
            .unwrap();
        let e_bc = g
            .incident_edges(nodes[2][0])
            .iter()
            .copied()
            .find(|&e| g.other_endpoint(e, nodes[2][0]) == nodes[1][0])
            .unwrap();
        assert!(edges_in_same_candidate(&g, e_ab, e_bc, CandidateFilter::Live));
        // Edge A0-B0 and B1-C0 bind different B tuples: non-conflict.
        let e_b1c = g
            .incident_edges(nodes[2][0])
            .iter()
            .copied()
            .find(|&e| g.other_endpoint(e, nodes[2][0]) == nodes[1][1])
            .unwrap();
        assert!(!edges_in_same_candidate(&g, e_ab, e_b1c, CandidateFilter::Live));
    }

    /// Existence via the full enumerating search — oracle for `exists`.
    fn exists_oracle(g: &QueryGraph, filter: CandidateFilter, fixed: &[Option<EdgeId>]) -> bool {
        let mut found = false;
        search(g, filter, fixed, &mut |_| {
            found = true;
            false
        });
        found
    }

    #[test]
    fn existence_search_matches_enumeration_oracle() {
        let (mut g, _) = chain_2x3(0.5);
        // Exercise live, colored and pruned edges across the checks.
        g.set_color(EdgeId(0), Color::Red);
        g.set_color(EdgeId(3), Color::Blue);
        g.set_invalid(EdgeId(5));
        for filter in [CandidateFilter::Live, CandidateFilter::BlueOnly] {
            for i in 0..g.edge_count() {
                let e1 = EdgeId(i);
                let mut fixed = vec![None; g.predicate_count()];
                fixed[g.edge_predicate(e1)] = Some(e1);
                assert_eq!(
                    exists(&g, filter, &fixed),
                    exists_oracle(&g, filter, &fixed),
                    "single pin {e1:?} {filter:?}"
                );
                for j in 0..g.edge_count() {
                    let e2 = EdgeId(j);
                    if g.edge_predicate(e2) == g.edge_predicate(e1) {
                        continue;
                    }
                    let mut fixed = fixed.clone();
                    fixed[g.edge_predicate(e2)] = Some(e2);
                    assert_eq!(
                        exists(&g, filter, &fixed),
                        exists_oracle(&g, filter, &fixed),
                        "pair {e1:?},{e2:?} {filter:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn star_structure_candidates() {
        // Star: center B joined to A and C (both predicates incident to B).
        let mut g = QueryGraph::new();
        let a = g.add_part(PartKind::Table { name: "A".into() });
        let b = g.add_part(PartKind::Table { name: "B".into() });
        let c = g.add_part(PartKind::Table { name: "C".into() });
        let b0 = g.add_node(b, Some(TupleId::new("B", 0)), "b0");
        let a0 = g.add_node(a, Some(TupleId::new("A", 0)), "a0");
        let a1 = g.add_node(a, Some(TupleId::new("A", 1)), "a1");
        let c0 = g.add_node(c, Some(TupleId::new("C", 0)), "c0");
        let p_ba = g.add_predicate(b, a, true, "B~A");
        let p_bc = g.add_predicate(b, c, true, "B~C");
        g.add_edge(b0, a0, p_ba, 0.5);
        g.add_edge(b0, a1, p_ba, 0.5);
        g.add_edge(b0, c0, p_bc, 0.5);
        assert_eq!(enumerate_candidates(&g, CandidateFilter::Live).len(), 2);
    }

    #[test]
    fn empty_graph_has_no_candidates() {
        let g = QueryGraph::new();
        assert!(enumerate_candidates(&g, CandidateFilter::Live).is_empty());
    }

    #[test]
    fn cyclic_predicate_structure() {
        // Triangle A-B, B-C, C-A.
        let mut g = QueryGraph::new();
        let a = g.add_part(PartKind::Table { name: "A".into() });
        let b = g.add_part(PartKind::Table { name: "B".into() });
        let c = g.add_part(PartKind::Table { name: "C".into() });
        let a0 = g.add_node(a, None, "a0");
        let b0 = g.add_node(b, None, "b0");
        let b1 = g.add_node(b, None, "b1");
        let c0 = g.add_node(c, None, "c0");
        let p_ab = g.add_predicate(a, b, true, "A~B");
        let p_bc = g.add_predicate(b, c, true, "B~C");
        let p_ca = g.add_predicate(c, a, true, "C~A");
        g.add_edge(a0, b0, p_ab, 0.5);
        g.add_edge(a0, b1, p_ab, 0.5);
        g.add_edge(b0, c0, p_bc, 0.5);
        g.add_edge(c0, a0, p_ca, 0.5);
        // Only the binding (a0, b0, c0) closes the triangle.
        let cands = enumerate_candidates(&g, CandidateFilter::Live);
        assert_eq!(cands.len(), 1);
        assert_eq!(cands[0].binding, vec![a0, b0, c0]);
        // The A-B edge through b1 is invalid: b1 has no B~C edge.
        assert!(!edge_in_some_candidate(&g, EdgeId(1), CandidateFilter::Live));
    }
}
