//! CDB core: the graph-based query model and the unified multi-goal query
//! optimizer of *CDB: Optimizing Queries with Crowd-Based Selections and
//! Joins* (SIGMOD 2017).
//!
//! Existing crowd databases (CrowdDB, Qurk, Deco, CrowdOP) optimize with a
//! *tree model* — a table-level join order — which asks the same task order
//! for every joined tuple. CDB instead builds a **graph** whose vertices
//! are tuples and whose edges are crowd tasks ("can these two values be
//! joined?") weighted by a similarity-derived matching probability, and
//! optimizes at the tuple level:
//!
//! * **Cost** (§5.1): ask the fewest edges that determine all answers —
//!   optimal min-cut selection when colors are known ([`cost::known`]), a
//!   sampling + min-cut greedy ([`cost::sampling`]), the expectation-based
//!   ordering of Eq. 1 ([`cost::expectation`]) and budget-aware selection
//!   ([`cost::budget`]).
//! * **Latency** (§5.2): ask mutually non-conflicting tasks in the same
//!   round ([`latency`]).
//! * **Quality** (§5.3): truth inference and online task assignment,
//!   integrated in the round loop ([`executor`]).
//!
//! The [`Cdb`] façade runs a CQL query end to end against a (simulated)
//! crowd platform.

#![deny(missing_docs)]

pub mod build;
pub mod candidate;
pub mod cost;
pub mod executor;
pub mod fillcollect;
pub mod latency;
pub mod metrics;
pub mod model;
pub mod ops;
pub mod prune;
pub mod reuse;

mod cdb;

pub use build::{build_query_graph, GraphBuildConfig};
pub use candidate::{enumerate_candidates, Candidate, CandidateFilter};
pub use cdb::{answer_tuples, binding_key, load_table, Cdb, CdbConfig, QueryOutcome, QueryTruth};
pub use cost::estimate::CostEstimate;
pub use executor::{
    EdgeTruth, ExecutionStats, Executor, ExecutorConfig, QualityStrategy, SelectionStrategy,
};
pub use metrics::{f_measure, precision_recall, PrMetrics};
pub use model::{Color, EdgeId, NodeId, PartId, PartKind, QueryGraph};
pub use reuse::{
    normalize, Provenance, Recorded, ReuseCache, ReuseOutcome, ReuseSession, SettleSink,
    SettledFact,
};
