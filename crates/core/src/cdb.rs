//! The `Cdb` façade: parse CQL, build the graph, optimize and execute.

use std::collections::{BTreeSet, HashSet};

use cdb_cql::{analyze_select, parse, CqlError, Statement};
use cdb_crowd::SimulatedPlatform;
use cdb_storage::{ColumnDef, ColumnType, Database, Schema, Table, TupleId};

use crate::build::{build_query_graph, GraphBuildConfig};
use crate::executor::{true_answers, EdgeTruth, ExecutionStats, Executor, ExecutorConfig};
use crate::metrics::{precision_recall, PrMetrics};
use crate::model::{PartKind, QueryGraph};

/// Ground truth at the data level, independent of any query: which tuple
/// pairs truly join and which tuples truly satisfy which selection
/// literals. Produced by the dataset generator; used to simulate worker
/// answers and to score results.
#[derive(Debug, Clone, Default)]
pub struct QueryTruth {
    /// Unordered truly-matching tuple pairs (stored with the
    /// lexicographically smaller `TupleId` first).
    pub joins: HashSet<(TupleId, TupleId)>,
    /// `(tuple, literal)` pairs where the tuple truly satisfies
    /// `CROWDEQUAL literal`.
    pub selections: HashSet<(TupleId, String)>,
}

impl QueryTruth {
    /// Record a truly-matching pair.
    pub fn add_join(&mut self, a: TupleId, b: TupleId) {
        let (x, y) = if a <= b { (a, b) } else { (b, a) };
        self.joins.insert((x, y));
    }

    /// Record that a tuple satisfies a selection literal.
    pub fn add_selection(&mut self, t: TupleId, literal: impl Into<String>) {
        self.selections.insert((t, literal.into()));
    }

    /// True when the pair is a true match.
    pub fn joins_match(&self, a: &TupleId, b: &TupleId) -> bool {
        let (x, y) = if a <= b { (a, b) } else { (b, a) };
        self.joins.contains(&(x.clone(), y.clone()))
    }

    /// Project the data-level truth onto a query graph's edges.
    pub fn edge_truth(&self, g: &QueryGraph) -> EdgeTruth {
        let mut out = EdgeTruth::with_capacity(g.edge_count());
        for i in 0..g.edge_count() {
            let e = crate::model::EdgeId(i);
            let (u, v) = g.edge_endpoints(e);
            let truth = match (g.node_tuple(u), g.node_tuple(v)) {
                (Some(a), Some(b)) => self.joins_match(a, b),
                (Some(t), None) | (None, Some(t)) => {
                    let (cu, cv) = (g.node_part(u), g.node_part(v));
                    let lit = match (g.part_kind(cu), g.part_kind(cv)) {
                        (PartKind::Constant { value }, _) | (_, PartKind::Constant { value }) => {
                            value.clone()
                        }
                        _ => unreachable!("constant-part edge has a constant endpoint"),
                    };
                    self.selections.contains(&(t.clone(), lit))
                }
                (None, None) => false,
            };
            // Traditional predicates are Blue by construction; keep them
            // consistent regardless of the crowd truth tables.
            let truth = truth || g.edge_color(e) == crate::model::Color::Blue;
            out.insert(e, truth);
        }
        out
    }
}

/// End-to-end configuration for [`Cdb::run_select`].
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct CdbConfig {
    /// Graph construction (similarity function, ε).
    pub build: GraphBuildConfig,
    /// Execution (selection/quality/latency strategies, redundancy).
    pub exec: ExecutorConfig,
}

/// Result of running a SELECT end to end.
#[derive(Debug, Clone)]
pub struct QueryOutcome {
    /// Cost/latency stats and the returned answers.
    pub stats: ExecutionStats,
    /// Precision/recall/F against the ground truth.
    pub metrics: PrMetrics,
    /// Number of true answers reachable in the built graph (the recall
    /// denominator).
    pub true_answer_count: usize,
    /// `GROUP BY CROWD` result: answer indices per group (in
    /// first-appearance order), when the query asked for grouping.
    pub groups: Option<Vec<Vec<usize>>>,
    /// `ORDER BY CROWD` result: answer indices in crowd-judged order, when
    /// the query asked for ordering.
    pub order: Option<Vec<usize>>,
    /// Extra crowd tasks spent on the post-ops (comparisons + group
    /// verifications).
    pub post_tasks: usize,
}

/// A CDB instance: a catalog plus the machinery to run CQL against a crowd
/// platform.
#[derive(Debug, Default)]
pub struct Cdb {
    db: Database,
    trace: cdb_obsv::Trace,
}

impl Cdb {
    /// An empty instance.
    pub fn new() -> Self {
        Cdb { db: Database::new(), trace: cdb_obsv::Trace::off() }
    }

    /// Wrap an existing database.
    pub fn with_database(db: Database) -> Self {
        Cdb { db, trace: cdb_obsv::Trace::off() }
    }

    /// Attach an observability sink: `run_select` emits a `plan.select`
    /// event per query and threads the trace into the [`Executor`].
    pub fn set_trace(&mut self, trace: cdb_obsv::Trace) {
        self.trace = trace;
    }

    /// The catalog.
    pub fn database(&self) -> &Database {
        &self.db
    }

    /// Mutable catalog access (e.g. to load generated data).
    pub fn database_mut(&mut self) -> &mut Database {
        &mut self.db
    }

    /// Execute a CQL DDL statement (`CREATE [CROWD] TABLE`).
    pub fn execute_ddl(&mut self, sql: &str) -> Result<(), CqlError> {
        match parse(sql)? {
            Statement::CreateTable(ct) => {
                let columns = ct
                    .columns
                    .iter()
                    .map(|c| {
                        let ty = match c.ty {
                            cdb_cql::TypeName::Varchar(_) => ColumnType::Text,
                            cdb_cql::TypeName::Int => ColumnType::Int,
                            cdb_cql::TypeName::Float => ColumnType::Float,
                        };
                        ColumnDef { name: c.name.clone(), ty, crowd: c.crowd }
                    })
                    .collect();
                let schema = Schema::new(columns);
                let table = if ct.crowd {
                    Table::new_crowd(&ct.name, schema)
                } else {
                    Table::new(&ct.name, schema)
                };
                self.db.add_table(table).map_err(|e| CqlError::Semantic(e.to_string()))
            }
            _ => Err(CqlError::Semantic("expected a CREATE TABLE statement".into())),
        }
    }

    /// Build the query graph for a CQL SELECT without executing it.
    pub fn plan_select(&self, sql: &str, build: &GraphBuildConfig) -> Result<QueryGraph, CqlError> {
        match parse(sql)? {
            Statement::Select(q) => {
                let analyzed = analyze_select(&q, &self.db)?;
                Ok(build_query_graph(&analyzed, &self.db, build))
            }
            _ => Err(CqlError::Semantic("expected a SELECT statement".into())),
        }
    }

    /// Cost envelope for a CQL SELECT without executing it: plan the query
    /// graph and bound its tasks/rounds/cents (see [`cost::estimate`]).
    /// This is what admission control (`cdb-sched`) holds against its
    /// money envelope before letting the query near the crowd.
    ///
    /// [`cost::estimate`]: crate::cost::estimate
    pub fn estimate_select(
        &self,
        sql: &str,
        build: &GraphBuildConfig,
        redundancy: usize,
        task_price_cents: u64,
    ) -> Result<crate::cost::estimate::CostEstimate, CqlError> {
        let g = self.plan_select(sql, build)?;
        Ok(crate::cost::estimate::estimate(&g, redundancy, task_price_cents))
    }

    /// Execute a CQL `FILL` statement: every `CNULL` cell of the target
    /// column (restricted by the optional `WHERE` filter) is crowdsourced
    /// and the inferred value written back into the table.
    ///
    /// `ground_truth(row)` supplies the latent true value per row for the
    /// simulated workers; rows whose cell is not `CNULL` are skipped. A
    /// `BUDGET n` clause caps the number of filled cells.
    pub fn run_fill(
        &mut self,
        sql: &str,
        ground_truth: &dyn Fn(usize) -> String,
        platform: &mut SimulatedPlatform,
        cfg: &crate::fillcollect::FillConfig,
    ) -> Result<crate::fillcollect::FillOutcome, CqlError> {
        let Statement::Fill(stmt) = parse(sql)? else {
            return Err(CqlError::Semantic("expected a FILL statement".into()));
        };
        let table = self.db.table(&stmt.table).map_err(|e| CqlError::Semantic(e.to_string()))?;
        if table.schema().column(&stmt.column).is_none() {
            return Err(CqlError::Semantic(format!(
                "unknown column `{}` in `{}`",
                stmt.column, stmt.table
            )));
        }
        // Select target rows: CNULL cells passing the filter.
        let mut rows: Vec<usize> = Vec::new();
        for r in 0..table.row_count() {
            let cell =
                table.cell(r, &stmt.column).map_err(|e| CqlError::Semantic(e.to_string()))?;
            if !cell.is_cnull() {
                continue;
            }
            if let Some((col, lit)) = &stmt.filter {
                let v =
                    table.cell(r, &col.column).map_err(|e| CqlError::Semantic(e.to_string()))?;
                let lit_v = literal_value(lit);
                if !v.sql_eq(&lit_v) {
                    continue;
                }
            }
            rows.push(r);
        }
        if let Some(b) = stmt.budget {
            rows.truncate(b);
        }
        let truths: Vec<String> = rows.iter().map(|&r| ground_truth(r)).collect();
        let outcome = crate::fillcollect::execute_fill(&truths, platform, cfg);
        // Write the inferred values back.
        let table =
            self.db.table_mut(&stmt.table).map_err(|e| CqlError::Semantic(e.to_string()))?;
        for (&r, value) in rows.iter().zip(&outcome.values) {
            table
                .set_cell(r, &stmt.column, cdb_storage::Value::Text(value.clone()))
                .map_err(|e| CqlError::Semantic(e.to_string()))?;
        }
        Ok(outcome)
    }

    /// Execute a CQL `COLLECT` statement against a closed value universe
    /// (the simulation stand-in for the open world): collected values are
    /// appended as new rows of the target crowd table, one column filled,
    /// the rest `CNULL` (to be `FILL`ed later).
    pub fn run_collect(
        &mut self,
        sql: &str,
        universe: &[String],
        rng: &mut impl rand::Rng,
        cfg: &crate::fillcollect::CollectConfig,
    ) -> Result<crate::fillcollect::CollectOutcome, CqlError> {
        let Statement::Collect(stmt) = parse(sql)? else {
            return Err(CqlError::Semantic("expected a COLLECT statement".into()));
        };
        let first = stmt
            .columns
            .first()
            .ok_or_else(|| CqlError::Semantic("COLLECT needs at least one column".into()))?;
        let table_name = first
            .table
            .clone()
            .ok_or_else(|| CqlError::Semantic("COLLECT columns must be table-qualified".into()))?;
        let table = self.db.table(&table_name).map_err(|e| CqlError::Semantic(e.to_string()))?;
        if !table.is_crowd() {
            return Err(CqlError::Semantic(format!(
                "`{table_name}` is not a CROWD table; COLLECT needs one"
            )));
        }
        let column = if first.column == "*" {
            table.schema().columns()[0].name.clone()
        } else {
            first.column.clone()
        };
        if table.schema().column(&column).is_none() {
            return Err(CqlError::Semantic(format!("unknown column `{column}` in `{table_name}`")));
        }
        let mut cfg = *cfg;
        if let Some(b) = stmt.budget {
            cfg.max_questions = cfg.max_questions.min(b);
        }
        let outcome = crate::fillcollect::execute_collect(universe, rng, &cfg);
        // Append the collected distinct values as rows.
        let arity = table.schema().arity();
        let col_idx = table.schema().column_index(&column).expect("checked above");
        // The outcome reports counts, not which canonical values were
        // gathered (workers' draws are consumed by the simulation); append
        // the first `distinct` universe values that survive dedup — the
        // same canonical set a real run converges to.
        let mut store = cdb_crowd::AutocompleteStore::new();
        let mut appended = 0usize;
        let table =
            self.db.table_mut(&table_name).map_err(|e| CqlError::Semantic(e.to_string()))?;
        for v in universe {
            if appended >= outcome.distinct {
                break;
            }
            if store.contribute(v, cfg.similarity, cfg.dedup_threshold) {
                let mut row = vec![cdb_storage::Value::CNull; arity];
                row[col_idx] = cdb_storage::Value::Text(v.clone());
                table.push(row).map_err(|e| CqlError::Semantic(e.to_string()))?;
                appended += 1;
            }
        }
        Ok(outcome)
    }

    /// Run a CQL SELECT end to end against a crowd platform, scoring the
    /// result with the supplied ground truth. A `BUDGET n` clause in the
    /// CQL overrides `cfg.exec.budget`.
    pub fn run_select(
        &self,
        sql: &str,
        truth: &QueryTruth,
        platform: &mut SimulatedPlatform,
        cfg: &CdbConfig,
    ) -> Result<QueryOutcome, CqlError> {
        let Statement::Select(q) = parse(sql)? else {
            return Err(CqlError::Semantic("expected a SELECT statement".into()));
        };
        let analyzed = analyze_select(&q, &self.db)?;
        let graph = build_query_graph(&analyzed, &self.db, &cfg.build);
        let edge_truth = truth.edge_truth(&graph);

        let mut exec_cfg = cfg.exec;
        if analyzed.budget.is_some() {
            exec_cfg.budget = analyzed.budget;
        }
        let reference: BTreeSet<_> =
            true_answers(&graph, &edge_truth).into_iter().map(|c| c.binding).collect();
        // The plan-selection fact: what the optimizer is about to execute.
        self.trace.emit(cdb_obsv::Event::instant(
            cdb_obsv::SpanId::root(),
            cdb_obsv::attr::names::PLAN_SELECT,
            0,
            cdb_obsv::kv![
                edges => graph.edge_count() as u64,
                parts => graph.part_count() as u64,
                n => reference.len() as u64
            ],
        ));
        let stats = Executor::new(graph.clone(), &edge_truth, platform, exec_cfg)
            .with_trace(self.trace.clone())
            .run();
        let metrics = precision_recall(&stats.answer_bindings(), &reference);

        // Crowd post-ops (the §4.2 Remark): group/sort the answers by a
        // key column using crowdsourced ER / pairwise comparisons.
        let mut groups = None;
        let mut order = None;
        let mut post_tasks = 0usize;
        if analyzed.group_by.is_some() || analyzed.order_by.is_some() {
            let extract_keys = |col: &cdb_cql::BoundColumn| -> Vec<String> {
                stats
                    .answers
                    .iter()
                    .map(|cand| {
                        cand.binding
                            .iter()
                            .filter_map(|&n| graph.node_tuple(n))
                            .find(|t| t.table.eq_ignore_ascii_case(&col.table))
                            .and_then(|t| {
                                self.db
                                    .table(&t.table)
                                    .ok()
                                    .and_then(|tab| tab.cell(t.row, &col.column).ok().cloned())
                            })
                            .map(|v| v.display_string())
                            .unwrap_or_default()
                    })
                    .collect()
            };
            if let Some(op) = &analyzed.group_by {
                let keys = extract_keys(&op.column);
                // Simulated entity ground truth for grouping: normalized
                // key equality (QueryTruth carries join/selection truth,
                // not per-column entity ids).
                let norm: Vec<String> = keys.iter().map(|k| k.trim().to_lowercase()).collect();
                let out = crate::ops::crowd_group(
                    &keys,
                    &|i, j| norm[i] == norm[j],
                    platform,
                    exec_cfg.redundancy,
                    cfg.build.similarity,
                    cfg.build.epsilon.max(0.5),
                );
                post_tasks += out.tasks_asked;
                groups = Some(out.groups);
            }
            if let Some(op) = &analyzed.order_by {
                let keys = extract_keys(&op.column);
                // Latent true ranking: sort keys (numerically when they
                // parse as numbers, lexicographically otherwise).
                let mut idx: Vec<usize> = (0..keys.len()).collect();
                let numeric: Vec<Option<f64>> =
                    keys.iter().map(|k| k.parse::<f64>().ok()).collect();
                idx.sort_by(|&a, &b| match (numeric[a], numeric[b]) {
                    (Some(x), Some(y)) => y.total_cmp(&x),
                    _ => keys[b].cmp(&keys[a]),
                });
                let mut rank = vec![0usize; keys.len()];
                for (r, &i) in idx.iter().enumerate() {
                    rank[i] = r;
                }
                let out = crate::ops::crowd_sort(&keys, &rank, platform, exec_cfg.redundancy);
                post_tasks += out.tasks_asked;
                let mut o = out.order;
                if !op.descending {
                    o.reverse();
                }
                order = Some(o);
            }
        }

        Ok(QueryOutcome {
            stats,
            metrics,
            true_answer_count: reference.len(),
            groups,
            order,
            post_tasks,
        })
    }
}

/// Convert a CQL literal into a storage value.
fn literal_value(lit: &cdb_cql::Literal) -> cdb_storage::Value {
    match lit {
        cdb_cql::Literal::Str(s) => cdb_storage::Value::Text(s.clone()),
        cdb_cql::Literal::Int(i) => cdb_storage::Value::Int(*i),
        cdb_cql::Literal::Float(x) => cdb_storage::Value::Float(*x),
    }
}

/// Load a whole table from `(name, rows)` — small helper for examples and
/// tests.
pub fn load_table(
    db: &mut Database,
    name: &str,
    columns: &[(&str, ColumnType)],
    rows: &[Vec<cdb_storage::Value>],
) -> Result<(), cdb_storage::StorageError> {
    let schema = Schema::new(columns.iter().map(|(n, t)| ColumnDef::new(*n, *t)).collect());
    let mut table = Table::new(name, schema);
    for row in rows {
        table.push(row.clone())?;
    }
    db.add_table(table)
}

/// Map of convenience: (table, row) of every vertex bound in the answers.
pub fn answer_tuples(stats: &ExecutionStats, g: &QueryGraph) -> Vec<Vec<TupleId>> {
    stats
        .answers
        .iter()
        .map(|c| c.binding.iter().filter_map(|&n| g.node_tuple(n).cloned()).collect())
        .collect()
}

/// Index answers by a stable key for reporting.
pub fn binding_key(binding: &[crate::model::NodeId]) -> String {
    binding.iter().map(|n| n.0.to_string()).collect::<Vec<_>>().join("-")
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdb_crowd::{Market, WorkerPool};
    use cdb_storage::Value;

    /// Two-table micro dataset with known matches.
    fn setup() -> (Cdb, QueryTruth) {
        let mut cdb = Cdb::new();
        cdb.execute_ddl("CREATE TABLE Researcher (name varchar(64), affiliation varchar(64))")
            .unwrap();
        cdb.execute_ddl("CREATE TABLE University (name varchar(64), country varchar(16))").unwrap();
        {
            let db = cdb.database_mut();
            let r = db.table_mut("Researcher").unwrap();
            r.push(vec![Value::from("M. Franklin"), Value::from("Univ. of California")]).unwrap();
            r.push(vec![Value::from("S. Madden"), Value::from("MIT CSAIL")]).unwrap();
            r.push(vec![Value::from("D. DeWitt"), Value::from("Univ. of Wisconsin")]).unwrap();
            let u = db.table_mut("University").unwrap();
            u.push(vec![Value::from("University of California"), Value::from("USA")]).unwrap();
            u.push(vec![Value::from("University of Wisconsin"), Value::from("USA")]).unwrap();
            u.push(vec![Value::from("University of Cambridge"), Value::from("UK")]).unwrap();
        }
        let mut truth = QueryTruth::default();
        truth.add_join(TupleId::new("Researcher", 0), TupleId::new("University", 0));
        truth.add_join(TupleId::new("Researcher", 2), TupleId::new("University", 1));
        (cdb, truth)
    }

    #[test]
    fn ddl_roundtrip() {
        let (cdb, _) = setup();
        assert!(cdb.database().contains_table("Researcher"));
        assert!(cdb.database().contains_table("University"));
    }

    #[test]
    fn ddl_rejects_non_create() {
        let mut cdb = Cdb::new();
        assert!(cdb.execute_ddl("SELECT * FROM X").is_err());
    }

    #[test]
    fn plan_builds_graph() {
        let (cdb, _) = setup();
        let g = cdb
            .plan_select(
                "SELECT * FROM Researcher, University \
                 WHERE Researcher.affiliation CROWDJOIN University.name",
                &GraphBuildConfig::default(),
            )
            .unwrap();
        assert_eq!(g.part_count(), 2);
        assert!(g.edge_count() >= 2);
    }

    #[test]
    fn run_select_finds_true_matches_with_perfect_workers() {
        let (cdb, truth) = setup();
        let mut platform =
            SimulatedPlatform::new(Market::Amt, WorkerPool::with_accuracies(&[1.0; 10]), 7);
        let out = cdb
            .run_select(
                "SELECT * FROM Researcher, University \
                 WHERE Researcher.affiliation CROWDJOIN University.name",
                &truth,
                &mut platform,
                &CdbConfig::default(),
            )
            .unwrap();
        assert_eq!(out.metrics.f_measure, 1.0, "{:?}", out.metrics);
        assert!(out.stats.tasks_asked >= out.true_answer_count);
    }

    #[test]
    fn budget_clause_overrides_config() {
        let (cdb, truth) = setup();
        let mut platform =
            SimulatedPlatform::new(Market::Amt, WorkerPool::with_accuracies(&[1.0; 10]), 7);
        let out = cdb
            .run_select(
                "SELECT * FROM Researcher, University \
                 WHERE Researcher.affiliation CROWDJOIN University.name BUDGET 1",
                &truth,
                &mut platform,
                &CdbConfig::default(),
            )
            .unwrap();
        assert!(out.stats.tasks_asked <= 1);
    }

    #[test]
    fn traced_select_emits_the_plan_fact() {
        use cdb_obsv::{attr::names, Ring, Trace};
        use std::sync::Arc;
        let (mut cdb, truth) = setup();
        let ring = Arc::new(Ring::with_capacity(2048));
        cdb.set_trace(Trace::collector(ring.clone()));
        let mut platform =
            SimulatedPlatform::new(Market::Amt, WorkerPool::with_accuracies(&[1.0; 10]), 7);
        let out = cdb
            .run_select(
                "SELECT * FROM Researcher, University \
                 WHERE Researcher.affiliation CROWDJOIN University.name",
                &truth,
                &mut platform,
                &CdbConfig::default(),
            )
            .unwrap();
        let evs = ring.drain();
        let plan = evs.iter().find(|e| e.name == names::PLAN_SELECT).expect("plan fact");
        assert_eq!(plan.get_u64("n"), Some(out.true_answer_count as u64));
        // The executor's trace rode along: plan-node bindings were emitted.
        assert_eq!(
            evs.iter().filter(|e| e.name == names::PLAN_EDGE).count(),
            out.stats.tasks_asked
        );
    }

    #[test]
    fn edge_truth_marks_traditional_blue_edges_true() {
        let (cdb, truth) = setup();
        let g = cdb
            .plan_select(
                "SELECT * FROM Researcher, University \
                 WHERE Researcher.affiliation CROWDJOIN University.name AND \
                 University.country = \"USA\"",
                &GraphBuildConfig::default(),
            )
            .unwrap();
        let et = truth.edge_truth(&g);
        for i in 0..g.edge_count() {
            let e = crate::model::EdgeId(i);
            if g.edge_color(e) == crate::model::Color::Blue {
                assert!(et[&e]);
            }
        }
    }

    #[test]
    fn crowd_selection_truth_via_selections_set() {
        let (cdb, mut truth) = setup();
        truth.add_selection(TupleId::new("University", 0), "USA");
        let g = cdb
            .plan_select(
                "SELECT * FROM Researcher, University \
                 WHERE Researcher.affiliation CROWDJOIN University.name AND \
                 University.country CROWDEQUAL \"USA\"",
                &GraphBuildConfig::default(),
            )
            .unwrap();
        let et = truth.edge_truth(&g);
        // Exactly the edges incident to the constant part whose tuple is in
        // the selections set are true.
        let mut true_sel = 0;
        for i in 0..g.edge_count() {
            let e = crate::model::EdgeId(i);
            let (u, v) = g.edge_endpoints(e);
            let is_sel = g.node_tuple(u).is_none() || g.node_tuple(v).is_none();
            if is_sel && et[&e] {
                true_sel += 1;
            }
        }
        assert_eq!(true_sel, 1);
    }
}
