//! The graph query model (Definition 1 of the paper).
//!
//! Given a CQL query and a database, the model is a graph `G(V, E)` where
//! every tuple of every queried table is a vertex and every predicate
//! contributes edges between the tuples it could join, weighted by the
//! matching probability. Selection predicates add a single *constant*
//! vertex (the compared literal) connected to the candidate tuples
//! (§4.2). Edges start [`Color::Unknown`]; crowdsourcing turns them
//! [`Color::Blue`] (values match) or [`Color::Red`] (they don't).

use cdb_storage::TupleId;

/// Index of a *part* — one queried table occurrence or one selection
/// constant. A candidate binds exactly one vertex per part.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PartId(pub usize);

/// Index of a vertex (a tuple, or a selection constant).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub usize);

/// Index of an edge (one potential crowd task).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EdgeId(pub usize);

/// What a part stands for.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PartKind {
    /// A table from the `FROM` clause.
    Table {
        /// Catalog table name.
        name: String,
    },
    /// The literal of a selection predicate (`CROWDEQUAL "sigmod"`).
    Constant {
        /// The literal value, rendered as a string.
        value: String,
    },
}

/// The state of an edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Color {
    /// Not yet asked and not yet deducible.
    Unknown,
    /// The two values join (solid edge).
    Blue,
    /// The two values do not join (dotted edge).
    Red,
}

#[derive(Debug, Clone)]
pub(crate) struct PartInfo {
    pub kind: PartKind,
    /// Vertices belonging to this part.
    pub nodes: Vec<NodeId>,
}

#[derive(Debug, Clone)]
pub(crate) struct NodeInfo {
    pub part: PartId,
    /// Stored tuple for table parts; `None` for constants.
    pub tuple: Option<TupleId>,
    /// The cell value (or literal) shown to workers.
    pub label: String,
    /// Edges incident to this node.
    pub adj: Vec<EdgeId>,
    /// Per incident predicate, the count of live edges — maintained on
    /// every color/invalidate transition so a support check is a counter
    /// read, not an adjacency scan. Slots appear on first incident edge.
    pub support: Vec<(usize, u32)>,
}

#[derive(Debug, Clone)]
pub(crate) struct EdgeInfo {
    pub u: NodeId,
    pub v: NodeId,
    pub predicate: usize,
    pub weight: f64,
    pub color: Color,
    /// True once pruned as invalid (not in any candidate); invalid edges
    /// are never asked.
    pub invalid: bool,
}

/// One predicate of the query at the *part* level.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PredicateInfo {
    /// Left part.
    pub a: PartId,
    /// Right part.
    pub b: PartId,
    /// True for CROWDJOIN / CROWDEQUAL, false for traditional predicates.
    pub crowd: bool,
    /// Human-readable description, e.g. `Paper.title CROWDJOIN
    /// Citation.title`.
    pub description: String,
}

/// The graph query model.
#[derive(Debug, Clone)]
pub struct QueryGraph {
    pub(crate) parts: Vec<PartInfo>,
    pub(crate) nodes: Vec<NodeInfo>,
    pub(crate) edges: Vec<EdgeInfo>,
    pub(crate) predicates: Vec<PredicateInfo>,
    /// Append-only log of edges whose color/validity/existence changed.
    /// Incremental consumers (`cost::expectation::SelectionState`) keep a
    /// cursor into it and re-examine only the affected region.
    pub(crate) change_log: Vec<EdgeId>,
}

impl QueryGraph {
    /// An empty graph; parts, nodes and edges are added by the builder.
    pub fn new() -> Self {
        QueryGraph {
            parts: Vec::new(),
            nodes: Vec::new(),
            edges: Vec::new(),
            predicates: Vec::new(),
            change_log: Vec::new(),
        }
    }

    /// Add a part; returns its id.
    pub fn add_part(&mut self, kind: PartKind) -> PartId {
        let id = PartId(self.parts.len());
        self.parts.push(PartInfo { kind, nodes: Vec::new() });
        id
    }

    /// Add a vertex to a part.
    pub fn add_node(
        &mut self,
        part: PartId,
        tuple: Option<TupleId>,
        label: impl Into<String>,
    ) -> NodeId {
        let id = NodeId(self.nodes.len());
        self.nodes.push(NodeInfo {
            part,
            tuple,
            label: label.into(),
            adj: Vec::new(),
            support: Vec::new(),
        });
        self.parts[part.0].nodes.push(id);
        id
    }

    /// Register a predicate between two parts; returns its index.
    pub fn add_predicate(
        &mut self,
        a: PartId,
        b: PartId,
        crowd: bool,
        description: impl Into<String>,
    ) -> usize {
        assert_ne!(a, b, "predicate must connect two different parts");
        self.predicates.push(PredicateInfo { a, b, crowd, description: description.into() });
        self.predicates.len() - 1
    }

    /// Add an edge for a predicate with a matching probability. Weight 1.0
    /// (a traditional predicate match) is colored Blue immediately — no
    /// crowdsourcing needed (§4.2 Remark).
    pub fn add_edge(&mut self, u: NodeId, v: NodeId, predicate: usize, weight: f64) -> EdgeId {
        assert!((0.0..=1.0).contains(&weight), "weight must be a probability");
        assert!(predicate < self.predicates.len(), "unknown predicate {predicate}");
        let p = &self.predicates[predicate];
        let (pu, pv) = (self.nodes[u.0].part, self.nodes[v.0].part);
        assert!(
            (pu, pv) == (p.a, p.b) || (pu, pv) == (p.b, p.a),
            "edge endpoints must belong to the predicate's parts"
        );
        let id = EdgeId(self.edges.len());
        let color = if weight == 1.0 { Color::Blue } else { Color::Unknown };
        self.edges.push(EdgeInfo { u, v, predicate, weight, color, invalid: false });
        self.nodes[u.0].adj.push(id);
        self.nodes[v.0].adj.push(id);
        // A fresh edge is live (Blue or Unknown, never invalid).
        self.bump_support(u, predicate, 1);
        self.bump_support(v, predicate, 1);
        self.change_log.push(id);
        id
    }

    fn bump_support(&mut self, n: NodeId, predicate: usize, delta: i64) {
        let slots = &mut self.nodes[n.0].support;
        match slots.iter_mut().find(|(p, _)| *p == predicate) {
            Some((_, count)) => {
                let next = *count as i64 + delta;
                debug_assert!(next >= 0, "live-support underflow at {n:?} pred {predicate}");
                *count = next as u32;
            }
            None => {
                debug_assert!(delta > 0, "first support touch must be an increment");
                slots.push((predicate, delta as u32));
            }
        }
    }

    /// Number of parts.
    pub fn part_count(&self) -> usize {
        self.parts.len()
    }

    /// Number of vertices.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Number of predicates (N in the paper: a candidate has N edges).
    pub fn predicate_count(&self) -> usize {
        self.predicates.len()
    }

    /// The predicates.
    pub fn predicates(&self) -> &[PredicateInfo] {
        &self.predicates
    }

    /// Kind of a part.
    pub fn part_kind(&self, p: PartId) -> &PartKind {
        &self.parts[p.0].kind
    }

    /// Vertices of a part.
    pub fn part_nodes(&self, p: PartId) -> &[NodeId] {
        &self.parts[p.0].nodes
    }

    /// Part of a vertex.
    pub fn node_part(&self, n: NodeId) -> PartId {
        self.nodes[n.0].part
    }

    /// Stored tuple behind a vertex (None for constants).
    pub fn node_tuple(&self, n: NodeId) -> Option<&TupleId> {
        self.nodes[n.0].tuple.as_ref()
    }

    /// Worker-visible label of a vertex.
    pub fn node_label(&self, n: NodeId) -> &str {
        &self.nodes[n.0].label
    }

    /// Edges incident to a vertex (including invalid/colored ones).
    pub fn incident_edges(&self, n: NodeId) -> &[EdgeId] {
        &self.nodes[n.0].adj
    }

    /// Endpoints of an edge.
    pub fn edge_endpoints(&self, e: EdgeId) -> (NodeId, NodeId) {
        let info = &self.edges[e.0];
        (info.u, info.v)
    }

    /// The endpoint of `e` that is not `n`.
    ///
    /// # Panics
    /// Panics if `n` is not an endpoint of `e`.
    pub fn other_endpoint(&self, e: EdgeId, n: NodeId) -> NodeId {
        let (u, v) = self.edge_endpoints(e);
        if u == n {
            v
        } else {
            assert_eq!(v, n, "node {n:?} is not an endpoint of {e:?}");
            u
        }
    }

    /// Predicate index of an edge.
    pub fn edge_predicate(&self, e: EdgeId) -> usize {
        self.edges[e.0].predicate
    }

    /// Matching probability ω(e).
    pub fn edge_weight(&self, e: EdgeId) -> f64 {
        self.edges[e.0].weight
    }

    /// Current color.
    pub fn edge_color(&self, e: EdgeId) -> Color {
        self.edges[e.0].color
    }

    /// True once the edge was pruned as invalid.
    pub fn edge_invalid(&self, e: EdgeId) -> bool {
        self.edges[e.0].invalid
    }

    /// Color an edge (the outcome of crowdsourcing it, or of inference).
    pub fn set_color(&mut self, e: EdgeId, color: Color) {
        let info = &mut self.edges[e.0];
        if info.color == color {
            return;
        }
        let was_live = !info.invalid && info.color != Color::Red;
        let now_live = !info.invalid && color != Color::Red;
        info.color = color;
        let (u, v, p) = (info.u, info.v, info.predicate);
        if was_live != now_live {
            let delta = if now_live { 1 } else { -1 };
            self.bump_support(u, p, delta);
            self.bump_support(v, p, delta);
        }
        self.change_log.push(e);
    }

    /// Mark an edge invalid (not contained in any candidate).
    pub fn set_invalid(&mut self, e: EdgeId) {
        let info = &mut self.edges[e.0];
        if info.invalid {
            return;
        }
        let was_live = info.color != Color::Red;
        info.invalid = true;
        let (u, v, p) = (info.u, info.v, info.predicate);
        if was_live {
            self.bump_support(u, p, -1);
            self.bump_support(v, p, -1);
        }
        self.change_log.push(e);
    }

    /// An edge is *live* when it still matters: neither invalid nor Red.
    /// Live Unknown edges are the remaining potential tasks.
    pub fn edge_live(&self, e: EdgeId) -> bool {
        let info = &self.edges[e.0];
        !info.invalid && info.color != Color::Red
    }

    /// All edges that still need crowdsourcing: Unknown, valid.
    pub fn open_edges(&self) -> Vec<EdgeId> {
        (0..self.edges.len())
            .map(EdgeId)
            .filter(|&e| self.edge_color(e) == Color::Unknown && !self.edge_invalid(e))
            .collect()
    }

    /// Live edges of `n` for one predicate.
    pub fn live_edges_for_predicate(&self, n: NodeId, predicate: usize) -> Vec<EdgeId> {
        self.live_edges_for_predicate_iter(n, predicate).collect()
    }

    /// Iterator form of [`live_edges_for_predicate`]: same edges in the
    /// same (adjacency) order, without allocating.
    ///
    /// [`live_edges_for_predicate`]: QueryGraph::live_edges_for_predicate
    pub fn live_edges_for_predicate_iter(
        &self,
        n: NodeId,
        predicate: usize,
    ) -> impl Iterator<Item = EdgeId> + '_ {
        self.nodes[n.0]
            .adj
            .iter()
            .copied()
            .filter(move |&e| self.edges[e.0].predicate == predicate && self.edge_live(e))
    }

    /// Count of `n`'s live edges for one predicate — an O(#incident
    /// predicates) counter read, maintained on every transition.
    pub fn live_support(&self, n: NodeId, predicate: usize) -> usize {
        self.nodes[n.0]
            .support
            .iter()
            .find(|(p, _)| *p == predicate)
            .map_or(0, |&(_, count)| count as usize)
    }

    /// Does `n` keep at least one live edge for `predicate` outside the
    /// excluded set? Allocation-free replacement for collecting
    /// [`live_edges_for_predicate`] just to test emptiness.
    ///
    /// [`live_edges_for_predicate`]: QueryGraph::live_edges_for_predicate
    pub fn has_live_support(
        &self,
        n: NodeId,
        predicate: usize,
        exclude: impl Fn(EdgeId) -> bool,
    ) -> bool {
        self.live_edges_for_predicate_iter(n, predicate).any(|e| !exclude(e))
    }

    /// Length of the edge-change log (a cursor for [`changes_since`]).
    ///
    /// [`changes_since`]: QueryGraph::changes_since
    pub fn change_log_len(&self) -> usize {
        self.change_log.len()
    }

    /// Edges whose color/validity changed since `cursor` (a previous
    /// [`change_log_len`] value), in transition order; may repeat an edge.
    ///
    /// [`change_log_len`]: QueryGraph::change_log_len
    pub fn changes_since(&self, cursor: usize) -> &[EdgeId] {
        &self.change_log[cursor..]
    }

    /// The predicates incident to a part.
    pub fn part_predicates(&self, p: PartId) -> Vec<usize> {
        self.predicates
            .iter()
            .enumerate()
            .filter(|(_, info)| info.a == p || info.b == p)
            .map(|(i, _)| i)
            .collect()
    }

    /// A short human-readable edge description for logs and task UIs.
    pub fn edge_description(&self, e: EdgeId) -> String {
        let (u, v) = self.edge_endpoints(e);
        format!("{} ~ {}", self.node_label(u), self.node_label(v))
    }
}

impl Default for QueryGraph {
    fn default() -> Self {
        QueryGraph::new()
    }
}

#[cfg(test)]
pub(crate) mod testgraph {
    //! Shared test fixtures: small hand-built graphs.

    use super::*;

    /// A 3-part chain A—B—C with two tuples per part and all 4 edges per
    /// predicate, every weight `w`.
    pub fn chain_2x3(w: f64) -> (QueryGraph, Vec<Vec<NodeId>>) {
        let mut g = QueryGraph::new();
        let parts: Vec<PartId> = ["A", "B", "C"]
            .iter()
            .map(|n| g.add_part(PartKind::Table { name: n.to_string() }))
            .collect();
        let mut nodes = Vec::new();
        for (pi, &p) in parts.iter().enumerate() {
            let mut row = Vec::new();
            for t in 0..2 {
                row.push(g.add_node(
                    p,
                    Some(TupleId::new(format!("T{pi}"), t)),
                    format!("{pi}:{t}"),
                ));
            }
            nodes.push(row);
        }
        let p_ab = g.add_predicate(parts[0], parts[1], true, "A~B");
        let p_bc = g.add_predicate(parts[1], parts[2], true, "B~C");
        for &a in &nodes[0] {
            for &b in &nodes[1] {
                g.add_edge(a, b, p_ab, w);
            }
        }
        for &b in &nodes[1] {
            for &c in &nodes[2] {
                g.add_edge(b, c, p_bc, w);
            }
        }
        (g, nodes)
    }

    #[test]
    fn chain_fixture_shape() {
        let (g, nodes) = chain_2x3(0.5);
        assert_eq!(g.part_count(), 3);
        assert_eq!(g.node_count(), 6);
        assert_eq!(g.edge_count(), 8);
        assert_eq!(g.predicate_count(), 2);
        assert_eq!(g.incident_edges(nodes[1][0]).len(), 4);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weight_one_edges_are_blue_immediately() {
        let mut g = QueryGraph::new();
        let a = g.add_part(PartKind::Table { name: "A".into() });
        let b = g.add_part(PartKind::Table { name: "B".into() });
        let na = g.add_node(a, Some(TupleId::new("A", 0)), "x");
        let nb = g.add_node(b, Some(TupleId::new("B", 0)), "x");
        let p = g.add_predicate(a, b, false, "A.x = B.x");
        let e = g.add_edge(na, nb, p, 1.0);
        assert_eq!(g.edge_color(e), Color::Blue);
        let e2 = g.add_edge(na, nb, p, 0.7);
        assert_eq!(g.edge_color(e2), Color::Unknown);
    }

    #[test]
    fn open_edges_excludes_colored_and_invalid() {
        let (mut g, _) = super::testgraph::chain_2x3(0.5);
        assert_eq!(g.open_edges().len(), 8);
        g.set_color(EdgeId(0), Color::Red);
        g.set_invalid(EdgeId(1));
        assert_eq!(g.open_edges().len(), 6);
    }

    #[test]
    fn edge_live_semantics() {
        let (mut g, _) = super::testgraph::chain_2x3(0.5);
        assert!(g.edge_live(EdgeId(0)));
        g.set_color(EdgeId(0), Color::Blue);
        assert!(g.edge_live(EdgeId(0))); // blue edges stay live
        g.set_color(EdgeId(1), Color::Red);
        assert!(!g.edge_live(EdgeId(1)));
        g.set_invalid(EdgeId(2));
        assert!(!g.edge_live(EdgeId(2)));
    }

    #[test]
    fn other_endpoint() {
        let (g, nodes) = super::testgraph::chain_2x3(0.5);
        let e = g.incident_edges(nodes[0][0])[0];
        let (u, v) = g.edge_endpoints(e);
        assert_eq!(g.other_endpoint(e, u), v);
        assert_eq!(g.other_endpoint(e, v), u);
    }

    #[test]
    #[should_panic(expected = "not an endpoint")]
    fn other_endpoint_panics_for_foreign_node() {
        let (g, nodes) = super::testgraph::chain_2x3(0.5);
        // An edge between parts A and B; node from part C is foreign.
        let e = g.incident_edges(nodes[0][0])[0];
        g.other_endpoint(e, nodes[2][0]);
    }

    #[test]
    fn part_predicates_lists_incident_predicates() {
        let (g, _) = super::testgraph::chain_2x3(0.5);
        assert_eq!(g.part_predicates(PartId(0)), vec![0]);
        assert_eq!(g.part_predicates(PartId(1)), vec![0, 1]);
        assert_eq!(g.part_predicates(PartId(2)), vec![1]);
    }

    /// Recount live support the slow way, for cross-checking the counters.
    fn recount(g: &QueryGraph, n: NodeId, p: usize) -> usize {
        g.incident_edges(n).iter().filter(|&&e| g.edge_predicate(e) == p && g.edge_live(e)).count()
    }

    #[test]
    fn live_support_tracks_every_transition() {
        let (mut g, nodes) = super::testgraph::chain_2x3(0.5);
        let b0 = nodes[1][0];
        assert_eq!(g.live_support(b0, 0), 2);
        assert_eq!(g.live_support(b0, 1), 2);
        let e = g.incident_edges(b0)[0];
        let p = g.edge_predicate(e);
        g.set_color(e, Color::Red);
        assert_eq!(g.live_support(b0, p), 1);
        // Blue keeps the edge live; recoloring Red -> Blue revives it
        // (the EmBayes final pass can flip asked edges).
        g.set_color(e, Color::Blue);
        assert_eq!(g.live_support(b0, p), 2);
        g.set_invalid(e);
        assert_eq!(g.live_support(b0, p), 1);
        // Invalidating twice must not double-decrement.
        g.set_invalid(e);
        assert_eq!(g.live_support(b0, p), 1);
        for i in 0..g.node_count() {
            let n = NodeId(i);
            for p in g.part_predicates(g.node_part(n)) {
                assert_eq!(g.live_support(n, p), recount(&g, n, p), "{n:?} pred {p}");
            }
        }
    }

    #[test]
    fn has_live_support_honours_exclusions() {
        let (g, nodes) = super::testgraph::chain_2x3(0.5);
        let b0 = nodes[1][0];
        let bundle = g.live_edges_for_predicate(b0, 0);
        assert!(g.has_live_support(b0, 0, |e| e == bundle[0]));
        assert!(!g.has_live_support(b0, 0, |e| bundle.contains(&e)));
    }

    #[test]
    fn change_log_records_real_transitions_only() {
        let (mut g, _) = super::testgraph::chain_2x3(0.5);
        let built = g.change_log_len();
        assert_eq!(built, g.edge_count()); // one entry per added edge
        g.set_color(EdgeId(0), Color::Unknown); // no-op: already Unknown
        assert_eq!(g.change_log_len(), built);
        g.set_color(EdgeId(0), Color::Red);
        g.set_invalid(EdgeId(1));
        g.set_invalid(EdgeId(1)); // no-op: already invalid
        assert_eq!(g.changes_since(built), &[EdgeId(0), EdgeId(1)]);
    }

    #[test]
    #[should_panic(expected = "weight must be a probability")]
    fn invalid_weight_rejected() {
        let mut g = QueryGraph::new();
        let a = g.add_part(PartKind::Table { name: "A".into() });
        let b = g.add_part(PartKind::Table { name: "B".into() });
        let na = g.add_node(a, None, "x");
        let nb = g.add_node(b, None, "y");
        let p = g.add_predicate(a, b, true, "p");
        g.add_edge(na, nb, p, 1.5);
    }

    #[test]
    #[should_panic(expected = "predicate's parts")]
    fn edge_between_wrong_parts_rejected() {
        let mut g = QueryGraph::new();
        let a = g.add_part(PartKind::Table { name: "A".into() });
        let b = g.add_part(PartKind::Table { name: "B".into() });
        let c = g.add_part(PartKind::Table { name: "C".into() });
        let na = g.add_node(a, None, "x");
        let nc = g.add_node(c, None, "z");
        let p = g.add_predicate(a, b, true, "p");
        g.add_edge(na, nc, p, 0.5);
    }
}
