//! The CDB execution loop (Algorithm 1 of the paper).
//!
//! Each round: select the remaining tasks by the configured cost-control
//! strategy, take the largest non-conflicting batch (latency control),
//! publish the batch to the crowd platform with the configured redundancy,
//! infer the edges' colors from the workers' answers (quality control),
//! color the graph and prune invalid edges — until every edge is colored
//! or pruned. The answers are the all-BLUE candidates.

use std::collections::{BTreeSet, HashMap};
use std::sync::{Arc, Mutex};

use cdb_crowd::{CrowdPlatform, SimulatedPlatform, Task, TaskId, WorkerId};
use cdb_obsv::attr::names;
use cdb_obsv::{kv, Event, Span, SpanId, Trace};
use cdb_quality::{
    bayesian_posterior_difficulty, em_truth_inference, majority_vote, select_top_k_tasks,
    vote_entropy, EmConfig, TaskAnswers,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::candidate::{answers, Candidate};
use crate::cost::budget::next_budget_batch;
use crate::cost::expectation::SelectionState;
use crate::cost::sampling::mincut_sampling_order;
use crate::latency::parallel_round;
use crate::model::{Color, EdgeId, NodeId, QueryGraph};
use crate::prune::prune_invalid_edges;
use crate::reuse::{ReuseOutcome, ReuseSession};

/// Ground-truth edge colors: `truth[e] == true` means the edge is truly
/// BLUE. Every edge of the graph must be present.
pub type EdgeTruth = HashMap<EdgeId, bool>;

/// How the next tasks are chosen (§5.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SelectionStrategy {
    /// Expectation-based ordering (Eq. 1) — the `CDB` method.
    Expectation,
    /// Sampling + min-cut greedy — the `MinCut` method.
    MinCutSampling {
        /// Number of sampled colorings.
        samples: usize,
    },
    /// Ask edges in descending weight order (naive ablation).
    WeightDescending,
    /// Ask edges in id order (no optimization at all).
    Unordered,
}

/// How edge colors are inferred from redundant answers (§5.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QualityStrategy {
    /// Plain majority voting (the strategy of CrowdDB/Qurk/Deco/CrowdOP).
    MajorityVote,
    /// EM worker-quality estimation + Bayesian voting (Eq. 2) — `CDB+`.
    EmBayes,
}

/// Executor configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExecutorConfig {
    /// Workers per task (paper: 5).
    pub redundancy: usize,
    /// Cost-control strategy.
    pub selection: SelectionStrategy,
    /// Quality-control strategy.
    pub quality: QualityStrategy,
    /// Use entropy-based online task assignment (`CDB+` on AMT).
    pub use_task_assignment: bool,
    /// Batch non-conflicting tasks per round (latency control); when off,
    /// one task is asked per round (serial ablation).
    pub parallel_rounds: bool,
    /// Maximum number of tasks to ask (BUDGET). When set, selection
    /// switches to budget-aware candidate-first mode (§5.1.3).
    pub budget: Option<usize>,
    /// Latency constraint (Figure 22): optimize for the first `r − 1`
    /// rounds, then ask every remaining open edge in round `r`.
    pub max_rounds: Option<usize>,
    /// Use the paper's flat error model (every task at difficulty 1.0)
    /// instead of the similarity-derived difficulty of DESIGN.md §1.
    pub flat_difficulty: bool,
    /// Seed for the sampling strategy.
    pub seed: u64,
}

impl Default for ExecutorConfig {
    fn default() -> Self {
        ExecutorConfig {
            redundancy: 5,
            selection: SelectionStrategy::Expectation,
            quality: QualityStrategy::MajorityVote,
            use_task_assignment: false,
            parallel_rounds: true,
            budget: None,
            max_rounds: None,
            flat_difficulty: false,
            seed: 0,
        }
    }
}

/// What an execution did and found.
#[derive(Debug, Clone)]
pub struct ExecutionStats {
    /// Distinct tasks (edges) asked — the paper's cost metric.
    pub tasks_asked: usize,
    /// Edges resolved from the answer-reuse layer instead of being asked
    /// (0 unless a [`ReuseSession`] is attached via `with_reuse`).
    pub tasks_saved: usize,
    /// Rounds of crowd interaction — the paper's latency metric.
    pub rounds: usize,
    /// Total worker assignments collected (`tasks × redundancy`).
    pub assignments: usize,
    /// The answers: all-BLUE candidates at termination.
    pub answers: Vec<Candidate>,
    /// Final worker-quality estimates (EmBayes only; empty under majority
    /// voting). Fold these into a [`cdb_crowd::WorkerHistory`] to warm-start
    /// the next query's inference — the paper's worker-metadata loop.
    pub worker_qualities: HashMap<WorkerId, f64>,
    /// Answers contributed per worker (for history weighting).
    pub worker_answer_counts: HashMap<WorkerId, usize>,
    /// True when a round observer stopped the run early (client cancel /
    /// disconnect in `cdb-serve`); the stats above are then partial.
    pub cancelled: bool,
}

impl ExecutionStats {
    /// Answer bindings as a comparable set (for precision/recall).
    pub fn answer_bindings(&self) -> BTreeSet<Vec<NodeId>> {
        self.answers.iter().map(|c| c.binding.clone()).collect()
    }
}

/// The candidates that are answers under the ground truth — the reference
/// set for recall/precision.
pub fn true_answers(g: &QueryGraph, truth: &EdgeTruth) -> Vec<Candidate> {
    crate::candidate::enumerate_candidates(g, crate::candidate::CandidateFilter::Live)
        .into_iter()
        .filter(|c| c.edges.iter().all(|e| truth[e]))
        .collect()
}

/// Executes one query graph against a crowd platform.
///
/// Generic over [`CrowdPlatform`] so the same round loop drives both the
/// sequential [`SimulatedPlatform`] (the default) and `cdb-runtime`'s
/// concurrent, fault-injecting engine.
pub struct Executor<'a, P: CrowdPlatform = SimulatedPlatform> {
    graph: QueryGraph,
    truth: &'a EdgeTruth,
    platform: &'a mut P,
    cfg: ExecutorConfig,
    /// All single-choice answers so far: task -> (worker, 0=yes/1=no).
    votes: HashMap<EdgeId, Vec<(WorkerId, usize)>>,
    /// Latest worker-quality estimates (EmBayes only).
    qualities: HashMap<WorkerId, f64>,
    asked: BTreeSet<EdgeId>,
    rng: StdRng,
    /// Plan-level observability sink (off by default; see `cdb-obsv`).
    trace: Trace,
    /// Answer-reuse session: resolves open edges by cache lookup +
    /// entailment before selection, and records every inferred color.
    reuse: Option<Arc<Mutex<ReuseSession>>>,
    tasks_saved: usize,
    /// Incremental expectation scores, carried across rounds
    /// (`Expectation` strategy only): each round rescores just the
    /// components touched by the previous round's answers.
    selection: Option<SelectionState>,
    /// Per-round answer-delta observer (see
    /// [`with_round_observer`](Self::with_round_observer)).
    round_observer: Option<RoundObserver<'a>>,
    /// Bindings already handed to the round observer, so each one is
    /// reported exactly once.
    streamed: BTreeSet<Vec<NodeId>>,
    /// True once the round observer asked the run to stop.
    cancelled: bool,
}

/// Callback invoked after each crowd round with the bindings that became
/// answers (all-BLUE candidates) in that round. Returning `false` cancels
/// the query: the executor stops asking and returns its partial stats.
///
/// The observer is *observation only* with respect to determinism — it
/// sees each binding exactly once, in the executor's canonical
/// ([`BTreeSet`]) order, and a run with an observer that always returns
/// `true` asks exactly the tasks a run without one asks.
pub type RoundObserver<'a> = Box<dyn FnMut(u64, &[Vec<NodeId>]) -> bool + Send + 'a>;

impl<'a, P: CrowdPlatform> Executor<'a, P> {
    /// Create an executor over a snapshot of the graph.
    pub fn new(
        graph: QueryGraph,
        truth: &'a EdgeTruth,
        platform: &'a mut P,
        cfg: ExecutorConfig,
    ) -> Self {
        let rng = StdRng::seed_from_u64(cfg.seed);
        Executor {
            graph,
            truth,
            platform,
            cfg,
            votes: HashMap::new(),
            qualities: HashMap::new(),
            asked: BTreeSet::new(),
            rng,
            trace: Trace::off(),
            reuse: None,
            tasks_saved: 0,
            selection: None,
            round_observer: None,
            streamed: BTreeSet::new(),
            cancelled: false,
        }
    }

    /// Attach a per-round answer observer (see [`RoundObserver`]): after
    /// every crowd round (and once more before returning) the callback
    /// receives the bindings that newly became all-BLUE answers, in
    /// canonical order. This is the streaming hook `cdb-serve` uses to
    /// push result bindings over the wire as rounds resolve instead of
    /// waiting for query completion; a `false` return cancels the rest of
    /// the run ([`ExecutionStats::cancelled`] is then set).
    pub fn with_round_observer(mut self, observer: RoundObserver<'a>) -> Self {
        self.round_observer = Some(observer);
        self
    }

    /// Attach an answer-reuse session (§5.1 cost control, extended with
    /// cross-query answer reuse). Before each round's selection, every
    /// open edge is checked against the session — cached or entailed
    /// answers color the edge directly (counted in
    /// [`ExecutionStats::tasks_saved`], emitted as `reuse.hit` events)
    /// instead of dispatching a task; every crowd-inferred color is
    /// recorded back so later edges and queries can reuse it.
    pub fn with_reuse(mut self, session: Arc<Mutex<ReuseSession>>) -> Self {
        self.reuse = Some(session);
        self
    }

    /// Attach an observability sink: each round opens an `exec.round`
    /// span carrying `plan.select` / `cost.estimate` / `exec.edge` /
    /// `exec.color` events (see `cdb_obsv::attr::names`). Timestamps are
    /// round ordinals — the core loop has no clock of its own.
    pub fn with_trace(mut self, trace: Trace) -> Self {
        self.trace = trace;
        self
    }

    /// Seed worker-quality priors from history (§2.1 worker metadata):
    /// returning workers start from their historical estimate instead of
    /// the 0.7 cold-start default. Only affects `EmBayes` inference and
    /// task assignment.
    pub fn with_worker_priors(mut self, priors: HashMap<WorkerId, f64>) -> Self {
        self.qualities = priors;
        self
    }

    /// The (mutated) graph — colored edges reflect inferred truths.
    pub fn graph(&self) -> &QueryGraph {
        &self.graph
    }

    /// Run to completion and return the stats.
    pub fn run(mut self) -> ExecutionStats {
        prune_invalid_edges(&mut self.graph);
        let start_rounds = self.platform.rounds();
        let mut precomputed_order: Option<Vec<EdgeId>> = None;

        loop {
            let remaining_budget =
                self.cfg.budget.map(|b| b.saturating_sub(self.asked.len())).unwrap_or(usize::MAX);
            if remaining_budget == 0 {
                break;
            }
            let open = self.graph.open_edges();
            if open.is_empty() {
                break;
            }

            // Latency constraint: in the final permitted round, flush all.
            let this_round = self.platform.rounds() - start_rounds + 1;
            let flush = self.cfg.max_rounds.is_some_and(|r| this_round >= r);

            // Answer reuse: resolve whatever the cache + entailment already
            // know *before* spending selection effort or crowd money. A
            // resolved edge can invalidate candidates, so re-prune and
            // re-derive the open set when anything resolved.
            if self.reuse.is_some() {
                let mut ph = cdb_obsv::profile::phase(cdb_obsv::profile::phases::ENTAIL_RESOLVE);
                let resolved = self.sweep_reuse(&open, this_round as u64);
                ph.set(cdb_obsv::attr::keys::N, resolved as u64);
                drop(ph);
                if resolved > 0 {
                    prune_invalid_edges(&mut self.graph);
                    continue;
                }
            }

            if self.trace.on() {
                self.trace.emit(Event::instant(
                    SpanId::root(),
                    names::COST_ESTIMATE,
                    this_round as u64,
                    kv![
                        round => this_round as u64,
                        n => open.len() as u64,
                        kind => self.selection_name(flush)
                    ],
                ));
            }

            let mut select_phase = cdb_obsv::profile::phase(cdb_obsv::profile::phases::TASK_SELECT);
            select_phase.set(cdb_obsv::attr::keys::ROUND, this_round as u64);
            let batch: Vec<EdgeId> = if flush {
                open.clone()
            } else if self.cfg.budget.is_some() {
                // Budget mode: most-promising candidate first; its edges are
                // asked one per round (they conflict by construction).
                let b = next_budget_batch(&self.graph, remaining_budget);
                b.into_iter().take(1).collect()
            } else {
                let order: Vec<EdgeId> = match self.cfg.selection {
                    SelectionStrategy::Expectation => {
                        self.selection.get_or_insert_with(SelectionState::new).order(&self.graph)
                    }
                    SelectionStrategy::MinCutSampling { samples } => {
                        if precomputed_order.is_none() {
                            precomputed_order =
                                Some(mincut_sampling_order(&self.graph, samples, &mut self.rng));
                        }
                        precomputed_order
                            .as_ref()
                            .expect("set above")
                            .iter()
                            .copied()
                            .filter(|e| open.contains(e))
                            .collect()
                    }
                    SelectionStrategy::WeightDescending => {
                        let mut o = open.clone();
                        o.sort_by(|&a, &b| {
                            self.graph
                                .edge_weight(b)
                                .total_cmp(&self.graph.edge_weight(a))
                                .then(a.cmp(&b))
                        });
                        o
                    }
                    SelectionStrategy::Unordered => open.clone(),
                };
                if self.cfg.parallel_rounds {
                    parallel_round(&self.graph, &order)
                } else {
                    order.into_iter().take(1).collect()
                }
            };
            let batch: Vec<EdgeId> = batch.into_iter().take(remaining_budget).collect();
            select_phase.set(cdb_obsv::attr::keys::N, batch.len() as u64);
            drop(select_phase);
            if batch.is_empty() {
                break;
            }
            let round_no = this_round as u64;
            let span = self.trace.span(
                SpanId::root(),
                names::EXEC_ROUND,
                &[round_no],
                round_no,
                kv![round => round_no, n => batch.len() as u64],
            );
            self.emit_plan_edges(&span, &batch, round_no);
            {
                let mut ph = cdb_obsv::profile::phase(cdb_obsv::profile::phases::ROUND_DISPATCH);
                ph.set(cdb_obsv::attr::keys::ROUND, round_no);
                ph.set(cdb_obsv::attr::keys::N, batch.len() as u64);
                self.ask_batch(&batch);
            }
            {
                let _ph = cdb_obsv::profile::phase(cdb_obsv::profile::phases::QUALITY_INFER);
                self.infer_and_color(&batch);
            }
            self.record_reuse(&batch);
            self.emit_colors(&span, &batch, round_no);
            prune_invalid_edges(&mut self.graph);
            span.close(round_no, kv![n => batch.len() as u64]);
            if !self.notify_round(round_no) {
                self.cancelled = true;
                break;
            }
        }

        // CDB+ final pass: early rounds were colored with immature worker
        // quality estimates; once all answers are in, re-infer every asked
        // edge with the final qualities. (Edges pruned as invalid were
        // never asked and keep their state.)
        if self.cfg.quality == QualityStrategy::EmBayes && !self.votes.is_empty() {
            let asked: Vec<EdgeId> = self.asked.iter().copied().collect();
            self.infer_and_color(&asked);
        }
        // Flush any answers the final pass (or a zero-round run) produced
        // that no round reported — every answer reaches the observer
        // exactly once. A cancelled run skips this: its stream ends with
        // the server's `cancelled` chunk, not more bindings.
        if !self.cancelled {
            let final_round = (self.platform.rounds() - start_rounds) as u64;
            self.notify_round(final_round);
        }

        let mut worker_answer_counts: HashMap<WorkerId, usize> = HashMap::new();
        for answers in self.votes.values() {
            for &(w, _) in answers {
                *worker_answer_counts.entry(w).or_insert(0) += 1;
            }
        }
        ExecutionStats {
            tasks_asked: self.asked.len(),
            tasks_saved: self.tasks_saved,
            rounds: self.platform.rounds() - start_rounds,
            assignments: self.votes.values().map(Vec::len).sum(),
            answers: answers(&self.graph),
            worker_qualities: self.qualities,
            worker_answer_counts,
            cancelled: self.cancelled,
        }
    }

    /// Hand the round observer the bindings that newly became answers.
    /// Returns `false` when the observer cancelled the run. A no-op
    /// (always `true`) without an observer — the delta scan only runs
    /// when someone is listening.
    fn notify_round(&mut self, round: u64) -> bool {
        let Some(observer) = self.round_observer.as_mut() else { return true };
        let current: BTreeSet<Vec<NodeId>> =
            answers(&self.graph).into_iter().map(|c| c.binding).collect();
        let new: Vec<Vec<NodeId>> =
            current.into_iter().filter(|b| !self.streamed.contains(b)).collect();
        for b in &new {
            self.streamed.insert(b.clone());
        }
        observer(round, &new)
    }

    /// Check every open edge against the reuse session; color the hits
    /// and return how many resolved. Each hit saves one task's worth of
    /// money (`redundancy × task price`) and is emitted as a `reuse.hit`
    /// event carrying provenance kind, entailment depth and saved cents.
    fn sweep_reuse(&mut self, open: &[EdgeId], at: u64) -> usize {
        let Some(session) = self.reuse.clone() else { return 0 };
        let mut session = session.lock().expect("reuse session poisoned");
        let cents = self.platform.market().task_price_cents() * self.cfg.redundancy as u64;
        let mut resolved = 0usize;
        for &e in open {
            let (u, v) = self.graph.edge_endpoints(e);
            let outcome = session.resolve(
                self.edge_measure(e),
                self.graph.node_label(u),
                self.graph.node_label(v),
            );
            if let ReuseOutcome::Hit { same, provenance } = outcome {
                self.graph.set_color(e, if same { Color::Blue } else { Color::Red });
                resolved += 1;
                if self.trace.on() {
                    self.trace.emit(Event::instant(
                        SpanId::root(),
                        names::REUSE_HIT,
                        at,
                        kv![
                            task => e.0 as u64,
                            node => self.graph.edge_predicate(e) as u64,
                            kind => provenance.kind(),
                            depth => provenance.depth() as u64,
                            cents => cents
                        ],
                    ));
                }
            }
        }
        self.tasks_saved += resolved;
        resolved
    }

    /// Record this round's inferred colors into the reuse session so the
    /// rest of this query — and, once absorbed, later queries — can skip
    /// re-asking the same value pair. Edges with no collected votes are
    /// skipped: their color is a vacuous default (a failed engine returns
    /// zero assignments and majority-vote over nothing picks Blue), not
    /// crowd evidence, and must never seed the cache.
    fn record_reuse(&mut self, batch: &[EdgeId]) {
        let Some(session) = self.reuse.clone() else { return };
        let mut session = session.lock().expect("reuse session poisoned");
        for &e in batch {
            if self.votes.get(&e).is_none_or(Vec::is_empty) {
                continue;
            }
            let (u, v) = self.graph.edge_endpoints(e);
            let same = self.graph.edge_color(e) == Color::Blue;
            session.record(
                self.edge_measure(e),
                self.graph.node_label(u),
                self.graph.node_label(v),
                same,
            );
        }
    }

    /// The similarity measure a crowd check on `e` evaluates — its
    /// predicate's description, the answer-reuse cache namespace.
    fn edge_measure(&self, e: EdgeId) -> &str {
        &self.graph.predicates()[self.graph.edge_predicate(e)].description
    }

    /// Name of the selection mode that produced this round's batch.
    fn selection_name(&self, flush: bool) -> &'static str {
        if flush {
            "flush"
        } else if self.cfg.budget.is_some() {
            "budget"
        } else {
            match self.cfg.selection {
                SelectionStrategy::Expectation => "expectation",
                SelectionStrategy::MinCutSampling { .. } => "mincut",
                SelectionStrategy::WeightDescending => "weight",
                SelectionStrategy::Unordered => "unordered",
            }
        }
    }

    /// One `exec.edge` event per *newly* asked edge, binding the task to
    /// its plan node (the predicate) — the attribution join key. Must run
    /// before `ask_batch` extends `self.asked`.
    fn emit_plan_edges(&self, span: &Span, batch: &[EdgeId], at: u64) {
        if !self.trace.on() {
            return;
        }
        for &e in batch {
            if !self.asked.contains(&e) {
                span.event(
                    names::PLAN_EDGE,
                    at,
                    kv![task => e.0 as u64, node => self.graph.edge_predicate(e) as u64],
                );
            }
        }
    }

    /// One `exec.color` event per edge colored this round, with the vote
    /// agreement (`conf`) and vote entropy — the per-round quality signal.
    /// Iterates the batch slice, never the votes map, so event order is
    /// deterministic.
    fn emit_colors(&self, span: &Span, batch: &[EdgeId], at: u64) {
        if !self.trace.on() {
            return;
        }
        for &e in batch {
            let votes: Vec<usize> =
                self.votes.get(&e).map(|v| v.iter().map(|&(_, c)| c).collect()).unwrap_or_default();
            let choice = if self.graph.edge_color(e) == Color::Blue { 0u64 } else { 1u64 };
            let agree = votes.iter().filter(|&&c| c as u64 == choice).count();
            let conf = if votes.is_empty() { 0.0 } else { agree as f64 / votes.len() as f64 };
            span.event(
                names::COLOR,
                at,
                kv![
                    task => e.0 as u64,
                    choice => choice,
                    conf => conf,
                    entropy => vote_entropy(&votes, 2),
                    n => votes.len() as u64
                ],
            );
        }
    }

    fn make_task(&self, e: EdgeId) -> Task {
        let (u, v) = self.graph.edge_endpoints(e);
        Task::join_check(
            TaskId(e.0 as u64),
            self.graph.node_label(u),
            self.graph.node_label(v),
            self.truth[&e],
        )
        .with_difficulty(self.edge_difficulty(e))
        .with_measure(self.edge_measure(e))
    }

    /// Task difficulty for an edge under the configured error model.
    fn edge_difficulty(&self, e: EdgeId) -> f64 {
        if self.cfg.flat_difficulty {
            1.0
        } else {
            cdb_crowd::join_difficulty(self.graph.edge_weight(e))
        }
    }

    fn ask_batch(&mut self, batch: &[EdgeId]) {
        let tasks: Vec<Task> = batch.iter().map(|&e| self.make_task(e)).collect();
        let assignments = if self.cfg.use_task_assignment
            && self.platform.market().supports_online_assignment()
        {
            // CDB+: entropy-based top-k assignment per arriving worker.
            let votes = &self.votes;
            let qualities = &self.qualities;
            self.platform.ask_round_assigned(
                &tasks,
                self.cfg.redundancy,
                10,
                &mut |worker, open_tasks, _log| {
                    let posteriors: Vec<Vec<f64>> = open_tasks
                        .iter()
                        .map(|t| {
                            let e = EdgeId(t.id.0 as usize);
                            let answers = votes.get(&e).cloned().unwrap_or_default();
                            bayesian_posterior_difficulty(&answers, qualities, 2, t.difficulty)
                        })
                        .collect();
                    let q_w = qualities.get(&worker.id).copied().unwrap_or(0.7);
                    select_top_k_tasks(&posteriors, q_w, 10)
                        .into_iter()
                        .map(|i| open_tasks[i].id)
                        .collect()
                },
            )
        } else {
            self.platform.ask_round(&tasks, self.cfg.redundancy)
        };
        for a in assignments {
            let e = EdgeId(a.task.0 as usize);
            if let cdb_crowd::Answer::Choice(c) = a.answer {
                self.votes.entry(e).or_default().push((a.worker, c));
            }
        }
        self.asked.extend(batch.iter().copied());
    }

    fn infer_and_color(&mut self, batch: &[EdgeId]) {
        match self.cfg.quality {
            QualityStrategy::MajorityVote => {
                for &e in batch {
                    let votes: Vec<usize> = self
                        .votes
                        .get(&e)
                        .map(|v| v.iter().map(|&(_, c)| c).collect())
                        .unwrap_or_default();
                    let yes = majority_vote(&votes, 2) == 0;
                    self.graph.set_color(e, if yes { Color::Blue } else { Color::Red });
                }
            }
            QualityStrategy::EmBayes => {
                // Re-run EM over the whole history: quality estimates sharpen
                // as more answers accumulate.
                let tasks: Vec<TaskAnswers> = self
                    .votes
                    .iter()
                    .map(|(&e, answers)| TaskAnswers {
                        task: TaskId(e.0 as u64),
                        num_choices: 2,
                        answers: answers.clone(),
                        difficulty: if self.cfg.flat_difficulty {
                            1.0
                        } else {
                            cdb_crowd::join_difficulty(self.graph.edge_weight(e))
                        },
                    })
                    .collect();
                let result = em_truth_inference(&tasks, EmConfig::default());
                // Keep prior estimates for workers EM has no data on yet.
                let mut merged = std::mem::take(&mut self.qualities);
                merged.extend(result.qualities);
                self.qualities = merged;
                let truth_by_task: HashMap<EdgeId, usize> = tasks
                    .iter()
                    .zip(&result.truths)
                    .map(|(t, &truth)| (EdgeId(t.task.0 as usize), truth))
                    .collect();
                for &e in batch {
                    let yes = truth_by_task.get(&e).copied().unwrap_or(1) == 0;
                    self.graph.set_color(e, if yes { Color::Blue } else { Color::Red });
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::testgraph::chain_2x3;
    use cdb_crowd::{Market, WorkerPool};

    /// Ground truth: one blue chain A0-B0-C0 in the 2x3 chain fixture.
    fn fixture() -> (QueryGraph, EdgeTruth) {
        let (g, nodes) = chain_2x3(0.5);
        let mut truth = EdgeTruth::new();
        for i in 0..g.edge_count() {
            let e = EdgeId(i);
            let (u, v) = g.edge_endpoints(e);
            let blue =
                (u == nodes[0][0] && v == nodes[1][0]) || (u == nodes[1][0] && v == nodes[2][0]);
            truth.insert(e, blue);
        }
        (g, truth)
    }

    fn platform(acc: f64, n: usize, seed: u64) -> SimulatedPlatform {
        SimulatedPlatform::new(Market::Amt, WorkerPool::with_accuracies(&vec![acc; n]), seed)
    }

    #[test]
    fn perfect_workers_find_exactly_the_true_answers() {
        let (g, truth) = fixture();
        let mut p = platform(1.0, 20, 1);
        let stats = Executor::new(g.clone(), &truth, &mut p, ExecutorConfig::default()).run();
        assert_eq!(stats.answers.len(), 1);
        let expected: BTreeSet<Vec<NodeId>> =
            true_answers(&g, &truth).into_iter().map(|c| c.binding).collect();
        assert_eq!(stats.answer_bindings(), expected);
    }

    #[test]
    fn executor_saves_tasks_vs_asking_everything() {
        let (g, truth) = fixture();
        let total = g.edge_count();
        let mut p = platform(1.0, 20, 1);
        let stats = Executor::new(g, &truth, &mut p, ExecutorConfig::default()).run();
        assert!(stats.tasks_asked < total, "{} !< {total}", stats.tasks_asked);
    }

    #[test]
    fn serial_mode_has_more_rounds_than_parallel() {
        let (g, truth) = fixture();
        let mut p1 = platform(1.0, 20, 1);
        let par = Executor::new(g.clone(), &truth, &mut p1, ExecutorConfig::default()).run();
        let mut p2 = platform(1.0, 20, 1);
        let ser = Executor::new(
            g,
            &truth,
            &mut p2,
            ExecutorConfig { parallel_rounds: false, ..ExecutorConfig::default() },
        )
        .run();
        assert!(ser.rounds >= par.rounds);
        assert!(ser.rounds >= ser.tasks_asked); // one task per round
    }

    #[test]
    fn budget_limits_tasks() {
        let (g, truth) = fixture();
        let mut p = platform(1.0, 20, 1);
        let stats = Executor::new(
            g,
            &truth,
            &mut p,
            ExecutorConfig { budget: Some(3), ..ExecutorConfig::default() },
        )
        .run();
        assert!(stats.tasks_asked <= 3);
    }

    #[test]
    fn max_rounds_constraint_flushes() {
        let (g, truth) = fixture();
        let mut p = platform(1.0, 20, 1);
        let stats = Executor::new(
            g,
            &truth,
            &mut p,
            ExecutorConfig { max_rounds: Some(1), ..ExecutorConfig::default() },
        )
        .run();
        assert_eq!(stats.rounds, 1);
        // Flushing round 1 asks everything open at once.
        assert_eq!(stats.answers.len(), 1);
    }

    #[test]
    fn mincut_sampling_strategy_completes() {
        let (g, truth) = fixture();
        let mut p = platform(1.0, 20, 1);
        let stats = Executor::new(
            g,
            &truth,
            &mut p,
            ExecutorConfig {
                selection: SelectionStrategy::MinCutSampling { samples: 10 },
                ..ExecutorConfig::default()
            },
        )
        .run();
        assert_eq!(stats.answers.len(), 1);
    }

    #[test]
    fn em_quality_beats_majority_with_noisy_workers() {
        // A pool with a few excellent workers and several near-coin-flip
        // workers. On a single-join graph every worker answers many tasks,
        // so EM can identify the experts — Bayesian voting then recovers
        // truths that plain majority voting gets wrong.
        use crate::model::{PartKind, QueryGraph};
        let mut g = QueryGraph::new();
        let a = g.add_part(PartKind::Table { name: "A".into() });
        let b = g.add_part(PartKind::Table { name: "B".into() });
        let an: Vec<NodeId> = (0..6).map(|i| g.add_node(a, None, format!("a{i}"))).collect();
        let bn: Vec<NodeId> = (0..4).map(|i| g.add_node(b, None, format!("b{i}"))).collect();
        let p_ab = g.add_predicate(a, b, true, "A~B");
        let mut truth = EdgeTruth::new();
        for (i, &x) in an.iter().enumerate() {
            for (j, &y) in bn.iter().enumerate() {
                let e = g.add_edge(x, y, p_ab, 0.5);
                truth.insert(e, i % 4 == j);
            }
        }
        let mut accs = vec![0.95, 0.95, 0.95];
        accs.extend(vec![0.52; 5]);
        let reference: BTreeSet<Vec<NodeId>> =
            true_answers(&g, &truth).into_iter().map(|c| c.binding).collect();
        let mut mv_f = 0.0;
        let mut em_f = 0.0;
        for seed in 0..20 {
            let pool = WorkerPool::with_accuracies(&accs);
            let mut p = SimulatedPlatform::new(Market::Amt, pool.clone(), seed);
            let mv = Executor::new(
                g.clone(),
                &truth,
                &mut p,
                ExecutorConfig { quality: QualityStrategy::MajorityVote, ..Default::default() },
            )
            .run();
            mv_f += crate::metrics::precision_recall(&mv.answer_bindings(), &reference).f_measure;
            let mut p = SimulatedPlatform::new(Market::Amt, pool, seed);
            let em = Executor::new(
                g.clone(),
                &truth,
                &mut p,
                ExecutorConfig { quality: QualityStrategy::EmBayes, ..Default::default() },
            )
            .run();
            em_f += crate::metrics::precision_recall(&em.answer_bindings(), &reference).f_measure;
        }
        assert!(em_f > mv_f, "EM {em_f} should beat MV {mv_f}");
    }

    #[test]
    fn traced_run_emits_rounds_edges_and_colors() {
        use cdb_obsv::{EventKind, Ring, Trace};
        use std::sync::Arc;
        let (g, truth) = fixture();
        let mut p = platform(1.0, 20, 1);
        let ring = Arc::new(Ring::with_capacity(1024));
        let stats = Executor::new(g, &truth, &mut p, ExecutorConfig::default())
            .with_trace(Trace::collector(ring.clone()))
            .run();
        let evs = ring.drain();
        assert_eq!(ring.dropped(), 0);
        let rounds = evs
            .iter()
            .filter(|e| e.name == names::EXEC_ROUND && e.kind == EventKind::Enter)
            .count();
        assert_eq!(rounds, stats.rounds);
        // Every asked task is bound to its plan node exactly once.
        let edges = evs.iter().filter(|e| e.name == names::PLAN_EDGE).count();
        assert_eq!(edges, stats.tasks_asked);
        // Each round colors its batch; perfect workers agree unanimously.
        let colors: Vec<_> = evs.iter().filter(|e| e.name == names::COLOR).collect();
        assert!(colors.len() >= stats.tasks_asked);
        assert!(colors.iter().all(|e| e.get("conf").unwrap().as_f64() == Some(1.0)));
        let est = evs.iter().filter(|e| e.name == names::COST_ESTIMATE).count();
        assert_eq!(est, stats.rounds);
        assert!(evs.iter().filter(|e| e.name == names::COST_ESTIMATE).all(|e| e
            .get("kind")
            .unwrap()
            .as_str()
            == Some("expectation")));
    }

    #[test]
    fn task_assignment_mode_runs() {
        let (g, truth) = fixture();
        let mut p = platform(0.9, 20, 1);
        let stats = Executor::new(
            g,
            &truth,
            &mut p,
            ExecutorConfig {
                quality: QualityStrategy::EmBayes,
                use_task_assignment: true,
                ..ExecutorConfig::default()
            },
        )
        .run();
        assert_eq!(stats.answers.len(), 1);
        assert!(stats.assignments >= stats.tasks_asked * 5);
    }

    #[test]
    fn reuse_session_skips_everything_on_a_repeat_run() {
        let (g, truth) = fixture();
        let session = Arc::new(Mutex::new(ReuseSession::default()));
        let mut p1 = platform(1.0, 20, 1);
        let first = Executor::new(g.clone(), &truth, &mut p1, ExecutorConfig::default())
            .with_reuse(session.clone())
            .run();
        assert_eq!(first.tasks_saved, 0);
        assert!(first.tasks_asked > 0);
        // Same graph again: every edge's value pair is now recorded (or
        // entailed), so the repeat run never dispatches a single task.
        let mut p2 = platform(1.0, 20, 99);
        let second = Executor::new(g.clone(), &truth, &mut p2, ExecutorConfig::default())
            .with_reuse(session)
            .run();
        assert_eq!(second.tasks_asked, 0);
        assert!(second.tasks_saved > 0);
        assert_eq!(second.answer_bindings(), first.answer_bindings());
        // Without reuse the second run would have paid full price.
        let mut p3 = platform(1.0, 20, 99);
        let plain = Executor::new(g, &truth, &mut p3, ExecutorConfig::default()).run();
        assert_eq!(plain.tasks_asked, first.tasks_asked);
        assert_eq!(plain.tasks_saved, 0);
    }

    #[test]
    fn reuse_emits_hit_events_with_provenance() {
        use cdb_obsv::{Ring, Trace};
        use std::sync::Arc as ObsArc;
        let (g, truth) = fixture();
        let session = Arc::new(Mutex::new(ReuseSession::default()));
        let mut p1 = platform(1.0, 20, 1);
        Executor::new(g.clone(), &truth, &mut p1, ExecutorConfig::default())
            .with_reuse(session.clone())
            .run();
        let ring = ObsArc::new(Ring::with_capacity(1024));
        let mut p2 = platform(1.0, 20, 1);
        let stats = Executor::new(g, &truth, &mut p2, ExecutorConfig::default())
            .with_reuse(session)
            .with_trace(Trace::collector(ring.clone()))
            .run();
        let evs = ring.drain();
        let hits: Vec<_> = evs.iter().filter(|e| e.name == names::REUSE_HIT).collect();
        assert_eq!(hits.len(), stats.tasks_saved);
        for h in &hits {
            assert!(h.get("depth").unwrap().as_u64().unwrap() >= 1);
            assert!(h.get("cents").unwrap().as_u64().unwrap() > 0);
            let kind = h.get("kind").unwrap().as_str().unwrap();
            assert!(["cached", "transitive", "negative"].contains(&kind));
        }
    }

    #[test]
    fn stats_assignments_match_redundancy() {
        let (g, truth) = fixture();
        let mut p = platform(1.0, 20, 1);
        let stats = Executor::new(g, &truth, &mut p, ExecutorConfig::default()).run();
        assert_eq!(stats.assignments, stats.tasks_asked * 5);
    }
}
