//! Evaluation metrics: precision, recall, F-measure (§6.1).

use std::collections::BTreeSet;

/// Precision / recall / F-measure triple.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PrMetrics {
    /// Fraction of returned results that are correct.
    pub precision: f64,
    /// Fraction of correct results that were returned.
    pub recall: f64,
    /// Harmonic mean of precision and recall.
    pub f_measure: f64,
}

/// Compute precision and recall of `returned` against `truth` over any
/// ordered item type.
///
/// Empty-set conventions (all four pinned by tests):
/// 1. both empty → precision = recall = F = 1;
/// 2. only `returned` empty → precision 1 (nothing wrong was returned),
///    recall 0, F 0;
/// 3. only `truth` empty → precision 0 (everything returned is wrong),
///    recall 1 (vacuous: all zero true answers were found), F 0;
/// 4. both non-empty → the plain ratios.
///
/// The vacuous cases are each assigned 1, symmetrically: an empty
/// `returned` cannot contain a wrong result, and an empty `truth` cannot
/// contain a missed one. F is 0 whenever exactly one side is empty.
pub fn precision_recall<T: Ord>(returned: &BTreeSet<T>, truth: &BTreeSet<T>) -> PrMetrics {
    if returned.is_empty() && truth.is_empty() {
        return PrMetrics { precision: 1.0, recall: 1.0, f_measure: 1.0 };
    }
    let correct = returned.intersection(truth).count() as f64;
    let precision = if returned.is_empty() { 1.0 } else { correct / returned.len() as f64 };
    let recall = if truth.is_empty() { 1.0 } else { correct / truth.len() as f64 };
    PrMetrics { precision, recall, f_measure: f_measure(precision, recall) }
}

/// Harmonic mean of precision and recall; 0 when both are 0.
pub fn f_measure(precision: f64, recall: f64) -> f64 {
    if precision + recall == 0.0 {
        0.0
    } else {
        2.0 * precision * recall / (precision + recall)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(items: &[u32]) -> BTreeSet<u32> {
        items.iter().copied().collect()
    }

    #[test]
    fn perfect_result() {
        let m = precision_recall(&set(&[1, 2, 3]), &set(&[1, 2, 3]));
        assert_eq!(m.precision, 1.0);
        assert_eq!(m.recall, 1.0);
        assert_eq!(m.f_measure, 1.0);
    }

    #[test]
    fn half_right() {
        let m = precision_recall(&set(&[1, 2]), &set(&[1, 3]));
        assert_eq!(m.precision, 0.5);
        assert_eq!(m.recall, 0.5);
        assert_eq!(m.f_measure, 0.5);
    }

    #[test]
    fn asymmetric_precision_recall() {
        let m = precision_recall(&set(&[1]), &set(&[1, 2, 3, 4]));
        assert_eq!(m.precision, 1.0);
        assert_eq!(m.recall, 0.25);
        assert!((m.f_measure - 0.4).abs() < 1e-12);
    }

    #[test]
    fn empty_conventions() {
        let empty = set(&[]);
        // 1. Both empty: perfect on all three.
        let m = precision_recall(&empty, &empty);
        assert_eq!((m.precision, m.recall, m.f_measure), (1.0, 1.0, 1.0));
        // 2. Only `returned` empty: vacuous precision, zero recall.
        let m = precision_recall(&empty, &set(&[1]));
        assert_eq!((m.precision, m.recall, m.f_measure), (1.0, 0.0, 0.0));
        // 3. Only `truth` empty: zero precision, vacuous recall.
        let m = precision_recall(&set(&[1]), &empty);
        assert_eq!((m.precision, m.recall, m.f_measure), (0.0, 1.0, 0.0));
        // 4. Both non-empty, disjoint: everything is 0.
        let m = precision_recall(&set(&[1]), &set(&[2]));
        assert_eq!((m.precision, m.recall, m.f_measure), (0.0, 0.0, 0.0));
    }

    #[test]
    fn f_measure_zero_when_both_zero() {
        assert_eq!(f_measure(0.0, 0.0), 0.0);
    }
}
