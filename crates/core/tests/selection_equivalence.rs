//! The incremental selection state must be indistinguishable from
//! recomputing every expectation from scratch: over random graphs and
//! random per-round coloring/pruning sequences, the produced ask order is
//! byte-identical to the `reference` oracle after every round.

use cdb_core::cost::expectation::{reference, SelectionState};
use cdb_core::model::{Color, EdgeId, NodeId, PartKind};
use cdb_core::prune::prune_invalid_edges;
use cdb_core::QueryGraph;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A random connected multi-part query graph: a chain of `parts` parts
/// (occasionally with a star predicate off part 0), a few nodes per part,
/// and each potential edge present with probability `density`.
fn random_graph(seed: u64, parts: usize, density: f64) -> QueryGraph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = QueryGraph::new();
    let part_ids: Vec<_> =
        (0..parts).map(|i| g.add_part(PartKind::Table { name: format!("P{i}") })).collect();
    let nodes: Vec<Vec<NodeId>> = part_ids
        .iter()
        .enumerate()
        .map(|(i, &p)| {
            (0..rng.gen_range(1..=4usize))
                .map(|t| g.add_node(p, None, format!("{i}:{t}")))
                .collect()
        })
        .collect();
    let mut pred_pairs: Vec<(usize, usize)> = (1..parts).map(|i| (i - 1, i)).collect();
    if parts >= 3 && rng.gen_bool(0.3) {
        pred_pairs.push((0, parts - 1)); // close a cycle sometimes
    }
    for (a, b) in pred_pairs {
        let p = g.add_predicate(part_ids[a], part_ids[b], true, format!("P{a}~P{b}"));
        for &u in &nodes[a] {
            for &v in &nodes[b] {
                if rng.gen_bool(density) {
                    // Quantized weights, including the 1.0 auto-Blue case.
                    let w = rng.gen_range(1..=10) as f64 / 10.0;
                    g.add_edge(u, v, p, w);
                }
            }
        }
    }
    g
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]
    #[test]
    fn incremental_order_equals_reference_over_random_rounds(
        seed in 0u64..100_000,
        parts in 2usize..5,
        density in 0.4f64..1.0,
    ) {
        let mut g = random_graph(seed, parts, density);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xC0FFEE);
        let mut state = SelectionState::new();
        prop_assert_eq!(state.order(&g), reference::expectation_order(&g));
        for _round in 0..32 {
            let open = g.open_edges();
            if open.is_empty() {
                break;
            }
            // Color a random batch; sometimes prune like the executor does.
            let batch = rng.gen_range(1..=open.len().min(3));
            for _ in 0..batch {
                let e = open[rng.gen_range(0..open.len())];
                let color = if rng.gen_bool(0.5) { Color::Blue } else { Color::Red };
                g.set_color(e, color);
            }
            if rng.gen_bool(0.7) {
                prune_invalid_edges(&mut g);
            }
            prop_assert_eq!(state.order(&g), reference::expectation_order(&g));
        }
    }

    #[test]
    fn incremental_scores_are_bit_equal_to_reference(
        seed in 0u64..100_000,
        parts in 2usize..4,
    ) {
        let mut g = random_graph(seed, parts, 0.8);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xBEEF);
        let mut state = SelectionState::new();
        for _round in 0..8 {
            let open = g.open_edges();
            if open.is_empty() {
                break;
            }
            let e = open[rng.gen_range(0..open.len())];
            g.set_color(e, if rng.gen_bool(0.5) { Color::Blue } else { Color::Red });
            prune_invalid_edges(&mut g);
            let fast: Vec<(EdgeId, u64)> =
                state.expectations(&g).into_iter().map(|(e, s)| (e, s.to_bits())).collect();
            let slow: Vec<(EdgeId, u64)> = reference::pruning_expectations(&g)
                .into_iter()
                .map(|(e, s)| (e, s.to_bits()))
                .collect();
            prop_assert_eq!(fast, slow);
        }
    }

    /// The EmBayes final pass can recolor an already-asked edge (including
    /// Red -> Blue revivals); the state must survive arbitrary recoloring,
    /// not just the executor's monotone Unknown -> colored flow.
    #[test]
    fn incremental_order_survives_arbitrary_recoloring(
        seed in 0u64..100_000,
    ) {
        let mut g = random_graph(seed, 3, 0.9);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xDEAD);
        let mut state = SelectionState::new();
        let all = [Color::Unknown, Color::Blue, Color::Red];
        for _ in 0..24 {
            let e = EdgeId(rng.gen_range(0..g.edge_count().max(1)));
            g.set_color(e, all[rng.gen_range(0..3usize)]);
            prop_assert_eq!(state.order(&g), reference::expectation_order(&g));
        }
    }
}
