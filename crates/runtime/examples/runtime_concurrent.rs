//! Drive 100 crowd queries concurrently through the runtime, with faults
//! injected, and show that the replay artifact is identical at any thread
//! count.
//!
//! ```text
//! cargo run --release -p cdb-runtime --example runtime_concurrent
//! ```

use std::collections::HashMap;

use cdb_core::model::{NodeId, PartKind};
use cdb_core::QueryGraph;
use cdb_runtime::{FaultPlan, QueryJob, RetryPolicy, RuntimeConfig, RuntimeExecutor};

/// A single-join query: `a_i` joins `b_j` iff `i % nb == j`.
fn join_query(id: u64, na: usize, nb: usize) -> QueryJob {
    let mut g = QueryGraph::new();
    let a = g.add_part(PartKind::Table { name: format!("A{id}") });
    let b = g.add_part(PartKind::Table { name: format!("B{id}") });
    let an: Vec<NodeId> = (0..na).map(|i| g.add_node(a, None, format!("a{i}"))).collect();
    let bn: Vec<NodeId> = (0..nb).map(|i| g.add_node(b, None, format!("b{i}"))).collect();
    let p = g.add_predicate(a, b, true, "A~B");
    let mut truth = HashMap::new();
    for (i, &x) in an.iter().enumerate() {
        for (j, &y) in bn.iter().enumerate() {
            let e = g.add_edge(x, y, p, 0.5);
            truth.insert(e, i % nb == j);
        }
    }
    QueryJob { id, graph: g, truth }
}

fn config(threads: usize) -> RuntimeConfig {
    RuntimeConfig {
        threads,
        seed: 42,
        worker_accuracies: vec![0.9; 30],
        // 10% of assignments dropped / abandoned / slowed, plus one worker
        // scripted to vanish two virtual minutes in.
        fault_plan: FaultPlan::uniform(42, 0.1).drop_worker(cdb_crowd::WorkerId(3), 120_000),
        retry: RetryPolicy { deadline_ms: 300_000, max_retries: 8 },
        ..RuntimeConfig::default()
    }
}

fn main() {
    let jobs: Vec<QueryJob> = (0..100).map(|i| join_query(i, 4, 3)).collect();

    let report = RuntimeExecutor::new(config(4)).run(jobs.clone());
    println!(
        "ran {} queries on 4 threads in {:?} ({} ok, {} failed, {} steals)",
        report.results.len(),
        report.wall,
        report.ok_count(),
        report.failed_count(),
        report.steals,
    );

    let m = &report.metrics;
    println!(
        "dispatched {} assignments over {} rounds; {} timeouts, {} retries, {} reassignments",
        m.tasks_dispatched, m.rounds, m.timeouts, m.retries, m.reassignments
    );
    let serial_s = report.virtual_ms_serial() as f64 / 1e3;
    println!("virtual crowd time: {serial_s:.0}s serially; the fleet overlaps it across threads");

    // Deterministic replay: the same (seed, fault plan) yields the same
    // byte-for-byte answers on one thread as on eight.
    let replay_1 = RuntimeExecutor::new(config(1)).run(jobs.clone()).answers();
    let replay_8 = RuntimeExecutor::new(config(8)).run(jobs).answers();
    assert_eq!(replay_1, replay_8, "replay must not depend on thread count");
    println!("replay check: 1-thread and 8-thread answers are byte-identical");

    println!("\nfirst three answers:");
    for line in report.answers().lines().take(3) {
        println!("  {line}");
    }
    println!("\nmetrics JSON:\n{}", m.to_json());
}
