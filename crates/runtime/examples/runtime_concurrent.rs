//! Drive 100 crowd queries concurrently through the runtime, with faults
//! injected, and show that the replay artifact is identical at any thread
//! count.
//!
//! ```text
//! cargo run --release -p cdb-runtime --example runtime_concurrent
//! ```
//!
//! With `CDB_TRACE=1` the run also attaches a ring-buffer collector and
//! writes `target/obsv/metrics.prom` (Prometheus text exposition) and
//! `target/obsv/trace.json` (Chrome `trace_event`, loadable in
//! [Perfetto](https://ui.perfetto.dev)) — the CI smoke job exercises this
//! path and validates the exposition line format.
//!
//! With `CDB_REUSE=1` the fleet runs twice against a shared cross-query
//! answer cache: the second pass must resolve tasks by entailment
//! (`tasks_saved > 0`) without changing a single binding.

use std::collections::HashMap;
use std::sync::Arc;

use cdb_core::model::{NodeId, PartKind};
use cdb_core::QueryGraph;
use cdb_obsv::{chrome_trace, Ring, Trace};
use cdb_runtime::{FaultPlan, QueryJob, RetryPolicy, RuntimeConfig, RuntimeExecutor};

/// A single-join query: `a_i` joins `b_j` iff `i % nb == j`.
fn join_query(id: u64, na: usize, nb: usize) -> QueryJob {
    let mut g = QueryGraph::new();
    let a = g.add_part(PartKind::Table { name: format!("A{id}") });
    let b = g.add_part(PartKind::Table { name: format!("B{id}") });
    let an: Vec<NodeId> = (0..na).map(|i| g.add_node(a, None, format!("a{i}"))).collect();
    let bn: Vec<NodeId> = (0..nb).map(|i| g.add_node(b, None, format!("b{i}"))).collect();
    let p = g.add_predicate(a, b, true, "A~B");
    let mut truth = HashMap::new();
    for (i, &x) in an.iter().enumerate() {
        for (j, &y) in bn.iter().enumerate() {
            let e = g.add_edge(x, y, p, 0.5);
            truth.insert(e, i % nb == j);
        }
    }
    QueryJob { id, graph: g, truth }
}

fn config(threads: usize) -> RuntimeConfig {
    RuntimeConfig {
        threads,
        seed: 42,
        worker_accuracies: vec![0.9; 30],
        // 10% of assignments dropped / abandoned / slowed, plus one worker
        // scripted to vanish two virtual minutes in.
        fault_plan: FaultPlan::uniform(42, 0.1).drop_worker(cdb_crowd::WorkerId(3), 120_000),
        retry: RetryPolicy { deadline_ms: 300_000, max_retries: 8 },
        ..RuntimeConfig::default()
    }
}

fn main() {
    let jobs: Vec<QueryJob> = (0..100).map(|i| join_query(i, 4, 3)).collect();

    let tracing = std::env::var("CDB_TRACE").is_ok_and(|v| v == "1");
    let ring = Arc::new(Ring::with_capacity(1 << 18));
    let mut cfg = config(4);
    if tracing {
        cfg.trace = Trace::collector(ring.clone());
    }

    let report = RuntimeExecutor::new(cfg).run(jobs.clone());
    println!(
        "ran {} queries on 4 threads in {:?} ({} ok, {} failed, {} steals)",
        report.results.len(),
        report.wall,
        report.ok_count(),
        report.failed_count(),
        report.steals,
    );

    let m = &report.metrics;
    println!(
        "dispatched {} assignments over {} rounds; {} timeouts, {} retries, {} reassignments",
        m.tasks_dispatched, m.rounds, m.timeouts, m.retries, m.reassignments
    );
    let serial_s = report.virtual_ms_serial() as f64 / 1e3;
    println!("virtual crowd time: {serial_s:.0}s serially; the fleet overlaps it across threads");

    // Deterministic replay: the same (seed, fault plan) yields the same
    // byte-for-byte answers on one thread as on eight.
    let replay_1 = RuntimeExecutor::new(config(1)).run(jobs.clone()).answers();
    let replay_8 = RuntimeExecutor::new(config(8)).run(jobs).answers();
    assert_eq!(replay_1, replay_8, "replay must not depend on thread count");
    println!("replay check: 1-thread and 8-thread answers are byte-identical");

    println!("\nfirst three answers:");
    for line in report.answers().lines().take(3) {
        println!("  {line}");
    }
    println!("\nmetrics JSON:\n{}", m.to_json());

    if std::env::var("CDB_REUSE").is_ok_and(|v| v == "1") {
        let cache = Arc::new(cdb_core::ReuseCache::new());
        let with_cache = || {
            let mut cfg = config(4);
            cfg.reuse = Some(Arc::clone(&cache));
            RuntimeExecutor::new(cfg).run((0..100).map(|i| join_query(i, 4, 3)).collect())
        };
        let cold = with_cache();
        let warm = with_cache();
        assert!(warm.metrics.tasks_saved > 0, "warm pass must hit the answer cache");
        assert_eq!(cold.bindings_text(), warm.bindings_text(), "reuse must not change any binding");
        println!(
            "\nreuse check: warm pass saved {} tasks / {}¢ (dispatch {} -> {}), identical bindings",
            warm.metrics.tasks_saved,
            warm.metrics.money_saved_cents,
            cold.metrics.tasks_dispatched,
            warm.metrics.tasks_dispatched,
        );
    }

    if tracing {
        let dir = std::path::Path::new("target/obsv");
        std::fs::create_dir_all(dir).expect("create target/obsv");
        let prom = m.to_prometheus();
        cdb_obsv::validate_exposition(&prom).expect("prometheus exposition must validate");
        std::fs::write(dir.join("metrics.prom"), &prom).expect("write metrics.prom");
        let events = ring.drain();
        std::fs::write(dir.join("trace.json"), chrome_trace(&events)).expect("write trace.json");
        println!(
            "\ntrace: {} events captured ({} dropped) -> target/obsv/{{metrics.prom,trace.json}}",
            events.len(),
            ring.dropped()
        );
    }
}
