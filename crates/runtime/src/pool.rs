//! Work-stealing thread pool for query jobs.
//!
//! Each worker owns a local deque; [`ThreadPool::scatter`] deals jobs
//! round-robin across them. A worker pops its own deque from the front
//! and, when empty, *steals from the back* of a sibling's deque — so an
//! unlucky worker stuck behind a long query sheds its backlog to idle
//! siblings instead of serializing it. A global injector queue accepts
//! jobs submitted after the pool has started.
//!
//! Determinism note: stealing reshuffles only *which thread* runs a job
//! and when; jobs themselves are pure functions of their inputs (see
//! `engine`), so results do not depend on the stealing schedule.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use cdb_obsv::attr::names;
use cdb_obsv::{kv, Event, SpanId, Trace};

type Job = Box<dyn FnOnce() + Send + 'static>;

struct Shared {
    /// Per-worker deques; workers pop the front of their own and steal
    /// from the back of others'.
    locals: Vec<Mutex<VecDeque<Job>>>,
    /// Jobs submitted after startup land here first.
    injector: Mutex<VecDeque<Job>>,
    /// Signals "new work may be available" (paired with `injector`).
    work: Condvar,
    /// Jobs submitted but not yet finished (paired with `outstanding`).
    outstanding: Mutex<usize>,
    /// Signals `outstanding` reached zero.
    drained: Condvar,
    shutdown: AtomicBool,
    steals: AtomicU64,
    /// Scheduler diagnostics sink. Pool events describe *which thread ran
    /// what* — inherently schedule-dependent — so the runtime never routes
    /// them into the deterministic per-query streams; attach one here
    /// explicitly (e.g. via [`ThreadPool::new_traced`]) to study stealing.
    trace: Trace,
    /// Ordering stamp for pool events (the pool has no virtual clock).
    seq: AtomicU64,
}

/// A fixed-size work-stealing thread pool.
pub struct ThreadPool {
    shared: Arc<Shared>,
    handles: Vec<JoinHandle<()>>,
}

impl ThreadPool {
    /// Spawn a pool with `threads` workers (at least 1).
    pub fn new(threads: usize) -> Self {
        ThreadPool::new_traced(threads, Trace::off())
    }

    /// Spawn a pool that emits `pool.job` / `pool.steal` scheduler
    /// diagnostics into `trace`. These events are schedule-dependent by
    /// nature — do not mix them into streams you expect to replay.
    pub fn new_traced(threads: usize, trace: Trace) -> Self {
        let threads = threads.max(1);
        let shared = Arc::new(Shared {
            locals: (0..threads).map(|_| Mutex::new(VecDeque::new())).collect(),
            injector: Mutex::new(VecDeque::new()),
            work: Condvar::new(),
            outstanding: Mutex::new(0),
            drained: Condvar::new(),
            shutdown: AtomicBool::new(false),
            steals: AtomicU64::new(0),
            trace,
            seq: AtomicU64::new(0),
        });
        let handles = (0..threads)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("cdb-runtime-{i}"))
                    .spawn(move || worker_loop(i, &shared))
                    .expect("spawn pool worker")
            })
            .collect();
        ThreadPool { shared, handles }
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.shared.locals.len()
    }

    /// Deal a batch of jobs round-robin across the workers' local deques.
    pub fn scatter<I>(&self, jobs: I)
    where
        I: IntoIterator,
        I::Item: FnOnce() + Send + 'static,
    {
        let jobs: Vec<Job> = jobs.into_iter().map(|j| Box::new(j) as Job).collect();
        let n = self.shared.locals.len();
        // Count the jobs as outstanding *before* any worker can see them:
        // a worker that finishes a job ahead of the bookkeeping would
        // drive `outstanding` below zero and wake `join` early.
        *self.shared.outstanding.lock().expect("pool poisoned") += jobs.len();
        for (i, job) in jobs.into_iter().enumerate() {
            self.shared.locals[i % n].lock().expect("pool poisoned").push_back(job);
        }
        self.shared.work.notify_all();
    }

    /// Submit one job through the global injector.
    pub fn execute<F: FnOnce() + Send + 'static>(&self, job: F) {
        // Same ordering as `scatter`: outstanding first, then publish.
        *self.shared.outstanding.lock().expect("pool poisoned") += 1;
        self.shared.injector.lock().expect("pool poisoned").push_back(Box::new(job));
        self.shared.work.notify_all();
    }

    /// Block until every submitted job has finished.
    pub fn join(&self) {
        let mut n = self.shared.outstanding.lock().expect("pool poisoned");
        while *n > 0 {
            n = self.shared.drained.wait(n).expect("pool poisoned");
        }
    }

    /// How many jobs were run by a thread other than the one they were
    /// dealt to.
    pub fn steals(&self) -> u64 {
        self.shared.steals.load(Ordering::Relaxed)
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.work.notify_all();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

fn take_job(me: usize, shared: &Shared) -> Option<Job> {
    // 1. Own deque, front.
    if let Some(j) = shared.locals[me].lock().expect("pool poisoned").pop_front() {
        return Some(j);
    }
    // 2. Global injector.
    if let Some(j) = shared.injector.lock().expect("pool poisoned").pop_front() {
        return Some(j);
    }
    // 3. Steal from a sibling's back.
    let n = shared.locals.len();
    for off in 1..n {
        let victim = (me + off) % n;
        if let Some(j) = shared.locals[victim].lock().expect("pool poisoned").pop_back() {
            shared.steals.fetch_add(1, Ordering::Relaxed);
            if shared.trace.on() {
                let at = shared.seq.fetch_add(1, Ordering::Relaxed);
                shared.trace.emit(Event::instant(
                    SpanId::root(),
                    names::POOL_STEAL,
                    at,
                    kv![worker => me as u64, victim => victim as u64],
                ));
            }
            return Some(j);
        }
    }
    None
}

fn worker_loop(me: usize, shared: &Shared) {
    loop {
        match take_job(me, shared) {
            Some(job) => {
                if shared.trace.on() {
                    let at = shared.seq.fetch_add(1, Ordering::Relaxed);
                    shared.trace.emit(Event::instant(
                        SpanId::root(),
                        names::POOL_JOB,
                        at,
                        kv![worker => me as u64],
                    ));
                }
                // Count the job as done even if it panics, so `join` can
                // never hang on a crashed job.
                struct Done<'a>(&'a Shared);
                impl Drop for Done<'_> {
                    fn drop(&mut self) {
                        let mut n = self.0.outstanding.lock().expect("pool poisoned");
                        *n -= 1;
                        if *n == 0 {
                            self.0.drained.notify_all();
                        }
                    }
                }
                let done = Done(shared);
                let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(job));
                drop(done);
            }
            None => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                // No condvar is tied to the local deques, so sleep with a
                // timeout to re-poll for stealable work.
                let guard = shared.injector.lock().expect("pool poisoned");
                let _ = shared
                    .work
                    .wait_timeout(guard, Duration::from_millis(5))
                    .expect("pool poisoned");
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Barrier;

    #[test]
    fn all_scattered_jobs_run() {
        let pool = ThreadPool::new(4);
        let counter = Arc::new(AtomicUsize::new(0));
        pool.scatter((0..64).map(|_| {
            let c = Arc::clone(&counter);
            move || {
                c.fetch_add(1, Ordering::SeqCst);
            }
        }));
        pool.join();
        assert_eq!(counter.load(Ordering::SeqCst), 64);
    }

    #[test]
    fn injected_jobs_run_too() {
        let pool = ThreadPool::new(2);
        let counter = Arc::new(AtomicUsize::new(0));
        for _ in 0..10 {
            let c = Arc::clone(&counter);
            pool.execute(move || {
                c.fetch_add(1, Ordering::SeqCst);
            });
        }
        pool.join();
        assert_eq!(counter.load(Ordering::SeqCst), 10);
    }

    #[test]
    fn rapid_tiny_scatters_never_underflow_outstanding() {
        // Regression: scatter used to publish jobs before counting them
        // outstanding, so a worker finishing instantly drove the counter
        // below zero (debug underflow panic, release join hang). Tiny
        // scatters against an idle pool make that window easy to hit.
        let pool = ThreadPool::new(4);
        let counter = Arc::new(AtomicUsize::new(0));
        for i in 0..500 {
            let c = Arc::clone(&counter);
            if i % 2 == 0 {
                pool.scatter(std::iter::once(move || {
                    c.fetch_add(1, Ordering::SeqCst);
                }));
            } else {
                pool.execute(move || {
                    c.fetch_add(1, Ordering::SeqCst);
                });
            }
            pool.join();
        }
        assert_eq!(counter.load(Ordering::SeqCst), 500);
    }

    #[test]
    fn jobs_overlap_across_threads() {
        // A latch both jobs must reach before either can finish: passes
        // only if two pool threads run jobs concurrently. (Interleaving
        // works even on a single hardware core.)
        let pool = ThreadPool::new(2);
        let latch = Arc::new(Barrier::new(2));
        pool.scatter((0..2).map(|_| {
            let l = Arc::clone(&latch);
            move || {
                l.wait();
            }
        }));
        pool.join();
    }

    #[test]
    fn idle_threads_steal_a_backlog() {
        // Deal every job to worker 0's deque via a 1-item scatter pattern:
        // scatter with 4 threads puts jobs 0,4,8.. on worker 0 — instead,
        // build imbalance explicitly by scattering to a 1-thread view:
        // submit a long job then a pile; siblings must steal the pile.
        let pool = ThreadPool::new(4);
        let counter = Arc::new(AtomicUsize::new(0));
        // Round-robin deal of 4 "sleepers" occupies every worker briefly,
        // then one worker's deque gets a backlog through the injector.
        pool.scatter((0..64).map(|i| {
            let c = Arc::clone(&counter);
            move || {
                if i % 16 == 0 {
                    std::thread::sleep(Duration::from_millis(5));
                }
                c.fetch_add(1, Ordering::SeqCst);
            }
        }));
        pool.join();
        assert_eq!(counter.load(Ordering::SeqCst), 64);
        // With sleepers pinning some workers, at least one job is usually
        // stolen; the assertion is on the mechanism being exercised, so
        // accept zero only if the machine ran everything before workers
        // went idle — steal count is monotonic and never negative.
        let _ = pool.steals();
    }

    #[test]
    fn traced_pool_reports_every_job_start() {
        use cdb_obsv::Ring;
        let ring = Arc::new(Ring::with_capacity(256));
        let pool = ThreadPool::new_traced(3, Trace::collector(ring.clone()));
        let counter = Arc::new(AtomicUsize::new(0));
        pool.scatter((0..24).map(|_| {
            let c = Arc::clone(&counter);
            move || {
                c.fetch_add(1, Ordering::SeqCst);
            }
        }));
        pool.join();
        let evs = ring.drain();
        let jobs = evs.iter().filter(|e| e.name == names::POOL_JOB).count();
        assert_eq!(jobs, 24);
        // Steal events, if any, agree with the pool's own counter.
        let steals = evs.iter().filter(|e| e.name == names::POOL_STEAL).count() as u64;
        assert_eq!(steals, pool.steals());
    }

    #[test]
    fn panicking_job_does_not_hang_join() {
        let pool = ThreadPool::new(2);
        let counter = Arc::new(AtomicUsize::new(0));
        let c = Arc::clone(&counter);
        pool.execute(|| panic!("job dies"));
        pool.execute(move || {
            c.fetch_add(1, Ordering::SeqCst);
        });
        pool.join();
        assert_eq!(counter.load(Ordering::SeqCst), 1);
    }
}
