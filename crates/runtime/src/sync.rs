//! Minimal std-only concurrency primitives.
//!
//! The build environment has no crossbeam/flume, so the runtime carries
//! its own bounded multi-producer multi-consumer channel: a
//! `Mutex<VecDeque>` guarded by two condvars. `send` blocks while the
//! queue is at capacity — that blocking *is* the backpressure the
//! scheduler relies on: producers (query workers emitting results, the
//! dispatcher emitting HIT batches) stall instead of queueing unboundedly.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};

/// Error returned by [`Sender::send`] when every receiver is gone.
#[derive(Debug, PartialEq, Eq)]
pub struct SendError<T>(pub T);

struct State<T> {
    queue: VecDeque<T>,
    capacity: usize,
    senders: usize,
    receivers: usize,
}

struct Inner<T> {
    state: Mutex<State<T>>,
    not_empty: Condvar,
    not_full: Condvar,
}

/// Create a bounded MPMC channel with room for `capacity` in-flight items.
pub fn bounded<T>(capacity: usize) -> (Sender<T>, Receiver<T>) {
    assert!(capacity > 0, "a zero-capacity channel would deadlock");
    let inner = Arc::new(Inner {
        state: Mutex::new(State {
            queue: VecDeque::with_capacity(capacity),
            capacity,
            senders: 1,
            receivers: 1,
        }),
        not_empty: Condvar::new(),
        not_full: Condvar::new(),
    });
    (Sender { inner: Arc::clone(&inner) }, Receiver { inner })
}

/// Sending half; clonable (multi-producer).
pub struct Sender<T> {
    inner: Arc<Inner<T>>,
}

impl<T> Sender<T> {
    /// Deliver `value`, blocking while the channel is full (backpressure).
    /// Fails only when every [`Receiver`] has been dropped.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        let mut st = self.inner.state.lock().expect("channel poisoned");
        loop {
            if st.receivers == 0 {
                return Err(SendError(value));
            }
            if st.queue.len() < st.capacity {
                st.queue.push_back(value);
                self.inner.not_empty.notify_one();
                return Ok(());
            }
            st = self.inner.not_full.wait(st).expect("channel poisoned");
        }
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.inner.state.lock().expect("channel poisoned").senders += 1;
        Sender { inner: Arc::clone(&self.inner) }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut st = self.inner.state.lock().expect("channel poisoned");
        st.senders -= 1;
        if st.senders == 0 {
            // Wake receivers so they can observe disconnection.
            self.inner.not_empty.notify_all();
        }
    }
}

/// Receiving half; clonable (multi-consumer).
pub struct Receiver<T> {
    inner: Arc<Inner<T>>,
}

impl<T> Receiver<T> {
    /// Take the next item, blocking until one arrives. Returns `None` once
    /// the channel is empty and every [`Sender`] has been dropped.
    pub fn recv(&self) -> Option<T> {
        let mut st = self.inner.state.lock().expect("channel poisoned");
        loop {
            if let Some(v) = st.queue.pop_front() {
                self.inner.not_full.notify_one();
                return Some(v);
            }
            if st.senders == 0 {
                return None;
            }
            st = self.inner.not_empty.wait(st).expect("channel poisoned");
        }
    }

    /// Take the next item only if one is already queued.
    pub fn try_recv(&self) -> Option<T> {
        let mut st = self.inner.state.lock().expect("channel poisoned");
        let v = st.queue.pop_front();
        if v.is_some() {
            self.inner.not_full.notify_one();
        }
        v
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.inner.state.lock().expect("channel poisoned").receivers += 1;
        Receiver { inner: Arc::clone(&self.inner) }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let mut st = self.inner.state.lock().expect("channel poisoned");
        st.receivers -= 1;
        if st.receivers == 0 {
            // Wake blocked senders so they can observe disconnection.
            self.inner.not_full.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::thread;
    use std::time::Duration;

    #[test]
    fn values_flow_in_order() {
        let (tx, rx) = bounded(4);
        for i in 0..4 {
            tx.send(i).unwrap();
        }
        drop(tx);
        assert_eq!(std::iter::from_fn(|| rx.recv()).collect::<Vec<i32>>(), vec![0, 1, 2, 3]);
    }

    #[test]
    fn full_channel_blocks_the_sender_until_drained() {
        let (tx, rx) = bounded(1);
        tx.send(1).unwrap();
        let sent = Arc::new(AtomicUsize::new(0));
        let sent2 = Arc::clone(&sent);
        let h = thread::spawn(move || {
            tx.send(2).unwrap(); // blocks: capacity 1, queue full
            sent2.store(1, Ordering::SeqCst);
        });
        thread::sleep(Duration::from_millis(30));
        assert_eq!(sent.load(Ordering::SeqCst), 0, "send must block while full");
        assert_eq!(rx.recv(), Some(1));
        h.join().unwrap();
        assert_eq!(sent.load(Ordering::SeqCst), 1);
        assert_eq!(rx.recv(), Some(2));
    }

    #[test]
    fn receiver_drains_then_sees_disconnect() {
        let (tx, rx) = bounded(8);
        let h = thread::spawn(move || {
            for i in 0..100 {
                tx.send(i).unwrap();
            }
        });
        let mut got = Vec::new();
        while let Some(v) = rx.recv() {
            got.push(v);
        }
        h.join().unwrap();
        assert_eq!(got.len(), 100);
    }

    #[test]
    fn send_fails_after_all_receivers_drop() {
        let (tx, rx) = bounded(1);
        drop(rx);
        assert_eq!(tx.send(7), Err(SendError(7)));
    }

    #[test]
    fn multiple_consumers_split_the_stream() {
        let (tx, rx) = bounded(4);
        let rx2 = rx.clone();
        let h1 = thread::spawn(move || std::iter::from_fn(|| rx.recv()).count());
        let h2 = thread::spawn(move || std::iter::from_fn(|| rx2.recv()).count());
        for i in 0..50 {
            tx.send(i).unwrap();
        }
        drop(tx);
        assert_eq!(h1.join().unwrap() + h2.join().unwrap(), 50);
    }
}
