//! Concurrent crowd-execution runtime for CDB.
//!
//! The paper's execution loop (Algorithm 1) is round-synchronous: publish
//! a batch, wait for every answer, infer, repeat. Real crowds are not
//! synchronous — workers answer at their own pace, drop out, abandon
//! HITs — and a deployment runs *many* queries at once. This crate adds
//! that missing layer on top of `cdb-core`'s optimizer:
//!
//! * **Scheduling** ([`RuntimeExecutor`], [`pool::ThreadPool`]): query
//!   jobs are dealt across a work-stealing thread pool and stream results
//!   back over a bounded channel ([`sync`]) whose blocking `send` is the
//!   backpressure.
//! * **Virtual time** ([`engine::RuntimeEngine`] + `cdb-crowd`'s
//!   [`cdb_crowd::LatencyModel`]/[`cdb_crowd::OpenRound`]): rounds
//!   complete as answers arrive on a simulated clock, not in lockstep.
//! * **Fault injection** ([`fault::FaultPlan`]): worker dropout, slow
//!   workers and abandoned HITs, with per-assignment deadlines, bounded
//!   retry and reassignment to a different worker (respecting
//!   [`cdb_crowd::Market::supports_online_assignment`]). Exhausted budgets
//!   surface as [`fault::RuntimeError`] — typed, never a hang.
//! * **Deterministic replay**: every stochastic decision is drawn from a
//!   stream keyed by *what the decision is about*
//!   ([`cdb_crowd::stream_rng`]), so a `(seed, fault_plan)` pair yields
//!   byte-identical [`RuntimeReport::answers`] at any thread count.
//! * **Telemetry** ([`metrics::RuntimeMetrics`]): dispatches, retries,
//!   timeouts, reassignments and a per-round latency histogram, exported
//!   as JSON for the bench figures.

#![deny(missing_docs)]

pub mod engine;
pub mod fault;
pub mod metrics;
pub mod pool;
pub mod sync;

mod executor;

pub use engine::RuntimeEngine;
pub use executor::{
    execute_query, settled_facts, QueryJob, QueryResult, RoundHook, RoundSink, RuntimeConfig,
    RuntimeExecutor, RuntimeReport, SettleHook,
};
pub use fault::{Fault, FaultPlan, RetryPolicy, RuntimeError};
pub use metrics::{MetricsSnapshot, RuntimeMetrics, HISTOGRAM_BUCKETS};
pub use pool::ThreadPool;
