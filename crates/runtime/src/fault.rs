//! Fault injection: worker dropout, slow workers and abandoned HITs.
//!
//! Every fault decision is drawn from a stream keyed by
//! `(plan.seed, query, round, task, worker, attempt)` — see
//! [`cdb_crowd::stream_rng`] — so the *same plan always injects the same
//! faults*, independent of thread count or scheduling. That is what makes
//! a `(seed, fault_plan)` pair a replayable artifact: rerunning it yields
//! byte-identical query answers.

use cdb_crowd::{stream_rng, SimTime, TaskId, WorkerId};
use rand::Rng;

/// Which fault (if any) hits one dispatched assignment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// No fault: the answer arrives normally.
    None,
    /// The worker dropped off the platform; the answer never arrives.
    Dropout,
    /// The worker accepted the HIT, then walked away without submitting.
    Abandoned,
    /// The worker responds, but slower by the plan's `slow_factor`.
    Slow,
}

/// A deterministic fault-injection plan.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Root seed of the fault streams.
    pub seed: u64,
    /// Per-assignment probability the worker has dropped out.
    pub dropout_rate: f64,
    /// Per-assignment probability the HIT is abandoned.
    pub abandon_rate: f64,
    /// Per-assignment probability the response is slowed.
    pub slow_rate: f64,
    /// Latency multiplier for slow responses.
    pub slow_factor: f64,
    /// Forced dropouts: `(worker, at)` — from virtual instant `at` on, the
    /// worker never delivers an answer. For scripting targeted scenarios
    /// in tests and experiments.
    forced_dropouts: Vec<(WorkerId, SimTime)>,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan {
            seed: 0,
            dropout_rate: 0.0,
            abandon_rate: 0.0,
            slow_rate: 0.0,
            slow_factor: 4.0,
            forced_dropouts: Vec::new(),
        }
    }
}

impl FaultPlan {
    /// A plan that injects nothing.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// A quick mixed plan: `rate` split evenly across dropout, abandonment
    /// and slowness.
    pub fn uniform(seed: u64, rate: f64) -> Self {
        let each = rate / 3.0;
        FaultPlan {
            seed,
            dropout_rate: each,
            abandon_rate: each,
            slow_rate: each,
            ..FaultPlan::default()
        }
    }

    /// Set the per-assignment dropout probability.
    pub fn with_dropout(mut self, rate: f64) -> Self {
        self.dropout_rate = rate;
        self
    }

    /// Set the per-assignment abandoned-HIT probability.
    pub fn with_abandon(mut self, rate: f64) -> Self {
        self.abandon_rate = rate;
        self
    }

    /// Set the slow-response probability and multiplier.
    pub fn with_slow(mut self, rate: f64, factor: f64) -> Self {
        self.slow_rate = rate;
        self.slow_factor = factor;
        self
    }

    /// Force `worker` to drop out at virtual instant `at`.
    pub fn drop_worker(mut self, worker: WorkerId, at: SimTime) -> Self {
        self.forced_dropouts.push((worker, at));
        self
    }

    /// Is `worker` force-dropped at or before `t`?
    pub fn worker_dropped_by(&self, worker: WorkerId, t: SimTime) -> bool {
        self.forced_dropouts.iter().any(|&(w, at)| w == worker && at <= t)
    }

    /// The fault hitting one `(query, round, task, worker, attempt)`
    /// dispatch — a pure function of the plan and the key.
    pub fn fault_for(
        &self,
        query: u64,
        round: u64,
        task: TaskId,
        worker: WorkerId,
        attempt: u32,
    ) -> Fault {
        let mut rng = stream_rng(
            self.seed,
            &[0xFA_17, query, round, task.0, u64::from(worker.0), u64::from(attempt)],
        );
        let u: f64 = rng.gen();
        if u < self.dropout_rate {
            Fault::Dropout
        } else if u < self.dropout_rate + self.abandon_rate {
            Fault::Abandoned
        } else if u < self.dropout_rate + self.abandon_rate + self.slow_rate {
            Fault::Slow
        } else {
            Fault::None
        }
    }
}

/// Per-assignment deadline and retry budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Virtual milliseconds an assignment may stay unanswered before the
    /// task is reassigned.
    pub deadline_ms: SimTime,
    /// How many reassignments a task may consume before the query fails.
    pub max_retries: u32,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        // Two virtual minutes per assignment, three reassignments.
        RetryPolicy { deadline_ms: 120_000, max_retries: 3 }
    }
}

/// Typed runtime failures — surfaced as `Err`, never as a hang.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RuntimeError {
    /// A task missed its deadline more times than the retry budget allows.
    RetryBudgetExhausted {
        /// The task that kept timing out.
        task: TaskId,
        /// Dispatch attempts consumed (original + retries).
        attempts: u32,
    },
    /// Reassignment needed a fresh worker but every worker was excluded.
    NoEligibleWorker {
        /// The task that could not be reassigned.
        task: TaskId,
    },
}

impl std::fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RuntimeError::RetryBudgetExhausted { task, attempts } => {
                write!(f, "task {task:?} exhausted its retry budget after {attempts} attempts")
            }
            RuntimeError::NoEligibleWorker { task } => {
                write!(f, "no eligible worker left to reassign task {task:?}")
            }
        }
    }
}

impl std::error::Error for RuntimeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn faults_are_deterministic_per_key() {
        let plan = FaultPlan::uniform(9, 0.6);
        for q in 0..4 {
            for t in 0..4 {
                let a = plan.fault_for(q, 0, TaskId(t), WorkerId(1), 0);
                let b = plan.fault_for(q, 0, TaskId(t), WorkerId(1), 0);
                assert_eq!(a, b);
            }
        }
    }

    #[test]
    fn rates_are_roughly_respected() {
        let plan = FaultPlan {
            seed: 3,
            dropout_rate: 0.25,
            abandon_rate: 0.0,
            slow_rate: 0.0,
            ..FaultPlan::default()
        };
        let n = 4000;
        let drops = (0..n)
            .filter(|&i| plan.fault_for(0, 0, TaskId(i), WorkerId(0), 0) == Fault::Dropout)
            .count();
        let rate = drops as f64 / n as f64;
        assert!((rate - 0.25).abs() < 0.03, "rate = {rate}");
    }

    #[test]
    fn zero_rate_plan_is_faultless() {
        let plan = FaultPlan::none();
        for t in 0..64 {
            assert_eq!(plan.fault_for(1, 2, TaskId(t), WorkerId(3), 0), Fault::None);
        }
    }

    #[test]
    fn forced_dropout_applies_from_its_instant() {
        let plan = FaultPlan::none().drop_worker(WorkerId(5), 1000);
        assert!(!plan.worker_dropped_by(WorkerId(5), 999));
        assert!(plan.worker_dropped_by(WorkerId(5), 1000));
        assert!(plan.worker_dropped_by(WorkerId(5), 2000));
        assert!(!plan.worker_dropped_by(WorkerId(6), 2000));
    }

    #[test]
    fn errors_render_without_hanging_anything() {
        let e = RuntimeError::RetryBudgetExhausted { task: TaskId(7), attempts: 4 };
        assert!(e.to_string().contains("retry budget"));
        let e = RuntimeError::NoEligibleWorker { task: TaskId(7) };
        assert!(e.to_string().contains("eligible"));
    }
}
