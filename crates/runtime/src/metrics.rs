//! Runtime counters, shared across worker threads.
//!
//! All counters are atomics so query jobs on different threads update one
//! [`RuntimeMetrics`] without locks; [`RuntimeMetrics::snapshot`] freezes
//! them into a plain value that serializes to JSON. (The vendored `serde`
//! stand-in cannot serialize, so the JSON is written by hand — it is a
//! dozen fixed fields.)

use std::sync::atomic::{AtomicU64, Ordering};

use cdb_crowd::SimTime;

/// Number of power-of-two buckets in the round-latency histogram.
pub const HISTOGRAM_BUCKETS: usize = 20;

/// Live counters, updated concurrently by query jobs.
#[derive(Debug, Default)]
pub struct RuntimeMetrics {
    tasks_dispatched: AtomicU64,
    retries: AtomicU64,
    timeouts: AtomicU64,
    reassignments: AtomicU64,
    dropouts: AtomicU64,
    abandons: AtomicU64,
    slowdowns: AtomicU64,
    rounds: AtomicU64,
    queries_ok: AtomicU64,
    queries_failed: AtomicU64,
    virtual_ms_total: AtomicU64,
    /// Bucket `i` counts rounds whose virtual latency was in
    /// `[2^i, 2^(i+1))` ms (last bucket open-ended).
    round_latency: [AtomicU64; HISTOGRAM_BUCKETS],
}

impl RuntimeMetrics {
    /// Fresh, all-zero metrics.
    pub fn new() -> Self {
        RuntimeMetrics::default()
    }

    /// `n` assignments handed to workers.
    pub fn add_dispatched(&self, n: u64) {
        self.tasks_dispatched.fetch_add(n, Ordering::Relaxed);
    }

    /// One redispatch attempt after a miss.
    pub fn add_retry(&self) {
        self.retries.fetch_add(1, Ordering::Relaxed);
    }

    /// One assignment missed its deadline.
    pub fn add_timeout(&self) {
        self.timeouts.fetch_add(1, Ordering::Relaxed);
    }

    /// One task moved to a different worker.
    pub fn add_reassignment(&self) {
        self.reassignments.fetch_add(1, Ordering::Relaxed);
    }

    /// Record an injected fault.
    pub fn add_fault(&self, fault: crate::fault::Fault) {
        match fault {
            crate::fault::Fault::Dropout => {
                self.dropouts.fetch_add(1, Ordering::Relaxed);
            }
            crate::fault::Fault::Abandoned => {
                self.abandons.fetch_add(1, Ordering::Relaxed);
            }
            crate::fault::Fault::Slow => {
                self.slowdowns.fetch_add(1, Ordering::Relaxed);
            }
            crate::fault::Fault::None => {}
        }
    }

    /// One crowd round completed in `latency_ms` of virtual time.
    pub fn add_round(&self, latency_ms: SimTime) {
        self.rounds.fetch_add(1, Ordering::Relaxed);
        let bucket = (u64::BITS - latency_ms.leading_zeros()).saturating_sub(1) as usize;
        let bucket = bucket.min(HISTOGRAM_BUCKETS - 1);
        self.round_latency[bucket].fetch_add(1, Ordering::Relaxed);
    }

    /// One query finished; `ok` tells success from typed failure, and
    /// `virtual_ms` is its simulated makespan.
    pub fn add_query(&self, ok: bool, virtual_ms: SimTime) {
        if ok {
            self.queries_ok.fetch_add(1, Ordering::Relaxed);
        } else {
            self.queries_failed.fetch_add(1, Ordering::Relaxed);
        }
        self.virtual_ms_total.fetch_add(virtual_ms, Ordering::Relaxed);
    }

    /// Freeze the counters into a plain value.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            tasks_dispatched: self.tasks_dispatched.load(Ordering::Relaxed),
            retries: self.retries.load(Ordering::Relaxed),
            timeouts: self.timeouts.load(Ordering::Relaxed),
            reassignments: self.reassignments.load(Ordering::Relaxed),
            dropouts: self.dropouts.load(Ordering::Relaxed),
            abandons: self.abandons.load(Ordering::Relaxed),
            slowdowns: self.slowdowns.load(Ordering::Relaxed),
            rounds: self.rounds.load(Ordering::Relaxed),
            queries_ok: self.queries_ok.load(Ordering::Relaxed),
            queries_failed: self.queries_failed.load(Ordering::Relaxed),
            virtual_ms_total: self.virtual_ms_total.load(Ordering::Relaxed),
            round_latency_buckets: self
                .round_latency
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
        }
    }
}

/// A frozen copy of [`RuntimeMetrics`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Assignments handed to workers (originals + redispatches).
    pub tasks_dispatched: u64,
    /// Redispatch attempts after deadline misses.
    pub retries: u64,
    /// Assignments that missed their deadline.
    pub timeouts: u64,
    /// Tasks moved to a different worker.
    pub reassignments: u64,
    /// Injected dropout faults.
    pub dropouts: u64,
    /// Injected abandoned-HIT faults.
    pub abandons: u64,
    /// Injected slow-response faults.
    pub slowdowns: u64,
    /// Crowd rounds completed.
    pub rounds: u64,
    /// Queries that finished cleanly.
    pub queries_ok: u64,
    /// Queries that failed with a typed error.
    pub queries_failed: u64,
    /// Sum of per-query virtual makespans, in ms.
    pub virtual_ms_total: u64,
    /// Power-of-two round-latency histogram: bucket `i` counts rounds in
    /// `[2^i, 2^(i+1))` virtual ms.
    pub round_latency_buckets: Vec<u64>,
}

impl MetricsSnapshot {
    /// Serialize as a single JSON object (stable field order).
    pub fn to_json(&self) -> String {
        let buckets =
            self.round_latency_buckets.iter().map(u64::to_string).collect::<Vec<_>>().join(",");
        format!(
            concat!(
                "{{\"tasks_dispatched\":{},\"retries\":{},\"timeouts\":{},",
                "\"reassignments\":{},\"dropouts\":{},\"abandons\":{},",
                "\"slowdowns\":{},\"rounds\":{},\"queries_ok\":{},",
                "\"queries_failed\":{},\"virtual_ms_total\":{},",
                "\"round_latency_buckets\":[{}]}}"
            ),
            self.tasks_dispatched,
            self.retries,
            self.timeouts,
            self.reassignments,
            self.dropouts,
            self.abandons,
            self.slowdowns,
            self.rounds,
            self.queries_ok,
            self.queries_failed,
            self.virtual_ms_total,
            buckets,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::Fault;

    #[test]
    fn counters_accumulate() {
        let m = RuntimeMetrics::new();
        m.add_dispatched(10);
        m.add_dispatched(5);
        m.add_retry();
        m.add_timeout();
        m.add_reassignment();
        m.add_fault(Fault::Dropout);
        m.add_fault(Fault::Slow);
        m.add_fault(Fault::None);
        m.add_query(true, 500);
        m.add_query(false, 300);
        let s = m.snapshot();
        assert_eq!(s.tasks_dispatched, 15);
        assert_eq!(s.retries, 1);
        assert_eq!(s.timeouts, 1);
        assert_eq!(s.reassignments, 1);
        assert_eq!(s.dropouts, 1);
        assert_eq!(s.slowdowns, 1);
        assert_eq!(s.abandons, 0);
        assert_eq!((s.queries_ok, s.queries_failed), (1, 1));
        assert_eq!(s.virtual_ms_total, 800);
    }

    #[test]
    fn histogram_buckets_by_power_of_two() {
        let m = RuntimeMetrics::new();
        m.add_round(0); // bucket 0
        m.add_round(1); // bucket 0
        m.add_round(2); // bucket 1
        m.add_round(3); // bucket 1
        m.add_round(1024); // bucket 10
        m.add_round(u64::MAX); // clamped to the last bucket
        let s = m.snapshot();
        assert_eq!(s.rounds, 6);
        assert_eq!(s.round_latency_buckets[0], 2);
        assert_eq!(s.round_latency_buckets[1], 2);
        assert_eq!(s.round_latency_buckets[10], 1);
        assert_eq!(s.round_latency_buckets[HISTOGRAM_BUCKETS - 1], 1);
    }

    #[test]
    fn json_is_wellformed_and_stable() {
        let m = RuntimeMetrics::new();
        m.add_dispatched(3);
        m.add_round(100);
        let j = m.snapshot().to_json();
        assert!(j.starts_with('{') && j.ends_with('}'));
        assert!(j.contains("\"tasks_dispatched\":3"));
        assert!(j.contains("\"rounds\":1"));
        assert!(j.contains("\"round_latency_buckets\":["));
        assert_eq!(j, m.snapshot().to_json());
    }
}
