//! Runtime counters, shared across worker threads.
//!
//! All counters are atomics so query jobs on different threads update one
//! [`RuntimeMetrics`] without locks; [`RuntimeMetrics::snapshot`] freezes
//! them into a plain value that serializes to JSON (via `cdb-obsv`'s
//! shared `json` module — the vendored `serde` stand-in cannot serialize).
//!
//! Since the observability layer landed, `RuntimeMetrics` is a *consumer
//! of the event stream*: it implements [`cdb_obsv::Collector`] and folds
//! `crowd.*` / `runtime.*` events into its counters, so the engine emits
//! each fact exactly once and every sink — aggregate counters, ring
//! buffers, trace files — derives from the same stream. The `add_*`
//! methods remain public for direct use in tests and ad-hoc tooling.

use std::sync::atomic::{AtomicU64, Ordering};

use cdb_crowd::SimTime;
use cdb_obsv::attr::{keys, names};
use cdb_obsv::{Collector, Event, EventKind};

/// Number of power-of-two buckets in the round-latency histogram.
pub const HISTOGRAM_BUCKETS: usize = 20;

/// Live counters, updated concurrently by query jobs.
#[derive(Debug, Default)]
pub struct RuntimeMetrics {
    tasks_dispatched: AtomicU64,
    retries: AtomicU64,
    timeouts: AtomicU64,
    reassignments: AtomicU64,
    dropouts: AtomicU64,
    abandons: AtomicU64,
    slowdowns: AtomicU64,
    rounds: AtomicU64,
    queries_ok: AtomicU64,
    queries_failed: AtomicU64,
    virtual_ms_total: AtomicU64,
    round_ms_total: AtomicU64,
    cost_cents: AtomicU64,
    tasks_saved: AtomicU64,
    money_saved_cents: AtomicU64,
    entailment_depth_sum: AtomicU64,
    /// Bucket `i` counts rounds whose virtual latency was in
    /// `[2^i, 2^(i+1))` ms (last bucket open-ended).
    round_latency: [AtomicU64; HISTOGRAM_BUCKETS],
}

impl RuntimeMetrics {
    /// Fresh, all-zero metrics.
    pub fn new() -> Self {
        RuntimeMetrics::default()
    }

    /// `n` assignments handed to workers.
    pub fn add_dispatched(&self, n: u64) {
        self.tasks_dispatched.fetch_add(n, Ordering::Relaxed);
    }

    /// Money spent on assignments, in cents.
    pub fn add_cost(&self, cents: u64) {
        self.cost_cents.fetch_add(cents, Ordering::Relaxed);
    }

    /// One redispatch attempt after a miss.
    pub fn add_retry(&self) {
        self.retries.fetch_add(1, Ordering::Relaxed);
    }

    /// One assignment missed its deadline.
    pub fn add_timeout(&self) {
        self.timeouts.fetch_add(1, Ordering::Relaxed);
    }

    /// One task moved to a different worker.
    pub fn add_reassignment(&self) {
        self.reassignments.fetch_add(1, Ordering::Relaxed);
    }

    /// Record an injected fault.
    pub fn add_fault(&self, fault: crate::fault::Fault) {
        match fault {
            crate::fault::Fault::Dropout => {
                self.dropouts.fetch_add(1, Ordering::Relaxed);
            }
            crate::fault::Fault::Abandoned => {
                self.abandons.fetch_add(1, Ordering::Relaxed);
            }
            crate::fault::Fault::Slow => {
                self.slowdowns.fetch_add(1, Ordering::Relaxed);
            }
            crate::fault::Fault::None => {}
        }
    }

    /// One crowd round completed in `latency_ms` of virtual time.
    pub fn add_round(&self, latency_ms: SimTime) {
        self.rounds.fetch_add(1, Ordering::Relaxed);
        self.round_ms_total.fetch_add(latency_ms, Ordering::Relaxed);
        let bucket = (u64::BITS - latency_ms.leading_zeros()).saturating_sub(1) as usize;
        let bucket = bucket.min(HISTOGRAM_BUCKETS - 1);
        self.round_latency[bucket].fetch_add(1, Ordering::Relaxed);
    }

    /// One task resolved from the answer-reuse cache instead of being
    /// dispatched, saving `cents` and chaining through `depth` prior
    /// answers.
    pub fn add_reuse_hit(&self, cents: u64, depth: u64) {
        self.tasks_saved.fetch_add(1, Ordering::Relaxed);
        self.money_saved_cents.fetch_add(cents, Ordering::Relaxed);
        self.entailment_depth_sum.fetch_add(depth, Ordering::Relaxed);
    }

    /// One query finished; `ok` tells success from typed failure, and
    /// `virtual_ms` is its simulated makespan.
    pub fn add_query(&self, ok: bool, virtual_ms: SimTime) {
        if ok {
            self.queries_ok.fetch_add(1, Ordering::Relaxed);
        } else {
            self.queries_failed.fetch_add(1, Ordering::Relaxed);
        }
        self.virtual_ms_total.fetch_add(virtual_ms, Ordering::Relaxed);
    }

    /// Freeze the counters into a plain value.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            tasks_dispatched: self.tasks_dispatched.load(Ordering::Relaxed),
            retries: self.retries.load(Ordering::Relaxed),
            timeouts: self.timeouts.load(Ordering::Relaxed),
            reassignments: self.reassignments.load(Ordering::Relaxed),
            dropouts: self.dropouts.load(Ordering::Relaxed),
            abandons: self.abandons.load(Ordering::Relaxed),
            slowdowns: self.slowdowns.load(Ordering::Relaxed),
            rounds: self.rounds.load(Ordering::Relaxed),
            queries_ok: self.queries_ok.load(Ordering::Relaxed),
            queries_failed: self.queries_failed.load(Ordering::Relaxed),
            virtual_ms_total: self.virtual_ms_total.load(Ordering::Relaxed),
            round_ms_total: self.round_ms_total.load(Ordering::Relaxed),
            cost_cents: self.cost_cents.load(Ordering::Relaxed),
            tasks_saved: self.tasks_saved.load(Ordering::Relaxed),
            money_saved_cents: self.money_saved_cents.load(Ordering::Relaxed),
            entailment_depth_sum: self.entailment_depth_sum.load(Ordering::Relaxed),
            round_latency_buckets: self
                .round_latency
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
        }
    }
}

/// The event-stream consumer: every `crowd.*` / `runtime.*` fact the
/// engine emits folds into exactly one counter update. Unknown event
/// names are ignored, so richer instrumentation downstream never breaks
/// the aggregates.
impl Collector for RuntimeMetrics {
    fn record(&self, ev: &Event) {
        match ev.name {
            names::DISPATCH => {
                self.add_dispatched(1);
                self.add_cost(ev.get_u64(keys::CENTS).unwrap_or(0));
            }
            names::RETRY => self.add_retry(),
            names::REUSE_HIT => self.add_reuse_hit(
                ev.get_u64(keys::CENTS).unwrap_or(0),
                ev.get_u64(keys::DEPTH).unwrap_or(0),
            ),
            names::TIMEOUT => self.add_timeout(),
            names::REASSIGN => self.add_reassignment(),
            names::FAULT => {
                let fault = match ev.get(keys::KIND).and_then(|v| v.as_str()) {
                    Some("dropout") => crate::fault::Fault::Dropout,
                    Some("abandoned") => crate::fault::Fault::Abandoned,
                    Some("slow") => crate::fault::Fault::Slow,
                    _ => crate::fault::Fault::None,
                };
                self.add_fault(fault);
            }
            names::ROUND if ev.kind == EventKind::Exit => {
                self.add_round(ev.get_u64(keys::MS).unwrap_or(0))
            }
            names::QUERY => {
                let ok = ev.get(keys::OK) == Some(cdb_obsv::Value::Bool(true));
                self.add_query(ok, ev.get_u64(keys::MS).unwrap_or(0));
            }
            _ => {}
        }
    }
}

/// A frozen copy of [`RuntimeMetrics`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Assignments handed to workers (originals + redispatches).
    pub tasks_dispatched: u64,
    /// Redispatch attempts after deadline misses.
    pub retries: u64,
    /// Assignments that missed their deadline.
    pub timeouts: u64,
    /// Tasks moved to a different worker.
    pub reassignments: u64,
    /// Injected dropout faults.
    pub dropouts: u64,
    /// Injected abandoned-HIT faults.
    pub abandons: u64,
    /// Injected slow-response faults.
    pub slowdowns: u64,
    /// Crowd rounds completed.
    pub rounds: u64,
    /// Queries that finished cleanly.
    pub queries_ok: u64,
    /// Queries that failed with a typed error.
    pub queries_failed: u64,
    /// Sum of per-query virtual makespans, in ms.
    pub virtual_ms_total: u64,
    /// Sum of per-round virtual latencies, in ms (the histogram's `_sum`).
    pub round_ms_total: u64,
    /// Money spent on dispatched assignments, in cents.
    pub cost_cents: u64,
    /// Tasks resolved from the answer-reuse cache instead of dispatched.
    pub tasks_saved: u64,
    /// Money not spent thanks to answer reuse, in cents.
    pub money_saved_cents: u64,
    /// Sum of entailment depths over reuse hits.
    pub entailment_depth_sum: u64,
    /// Power-of-two round-latency histogram: bucket `i` counts rounds in
    /// `[2^i, 2^(i+1))` virtual ms.
    pub round_latency_buckets: Vec<u64>,
}

impl MetricsSnapshot {
    /// Serialize as a single JSON object (stable field order), via the
    /// shared `cdb-obsv` json emitter.
    pub fn to_json(&self) -> String {
        let mut buckets = cdb_obsv::json::JsonArray::new();
        for &b in &self.round_latency_buckets {
            buckets = buckets.u64(b);
        }
        cdb_obsv::json::JsonObject::new()
            .u64("tasks_dispatched", self.tasks_dispatched)
            .u64("retries", self.retries)
            .u64("timeouts", self.timeouts)
            .u64("reassignments", self.reassignments)
            .u64("dropouts", self.dropouts)
            .u64("abandons", self.abandons)
            .u64("slowdowns", self.slowdowns)
            .u64("rounds", self.rounds)
            .u64("queries_ok", self.queries_ok)
            .u64("queries_failed", self.queries_failed)
            .u64("virtual_ms_total", self.virtual_ms_total)
            .u64("round_ms_total", self.round_ms_total)
            .u64("cost_cents", self.cost_cents)
            .u64("tasks_saved", self.tasks_saved)
            .u64("money_saved_cents", self.money_saved_cents)
            .u64("entailment_depth_sum", self.entailment_depth_sum)
            .raw("round_latency_buckets", &buckets.finish())
            .finish()
    }

    /// Render as Prometheus text-format exposition. Counter names carry
    /// the `cdb_` prefix and `_total` suffix per convention; the
    /// round-latency histogram keeps its power-of-two buckets (bucket `i`
    /// covers `[2^i, 2^(i+1))` ms, so its inclusive `le` is `2^(i+1)-1`;
    /// the final open-ended bucket folds into `+Inf`).
    pub fn to_prometheus(&self) -> String {
        let mut p = cdb_obsv::prom::PromText::new();
        p.counter(
            "cdb_tasks_dispatched_total",
            "Assignments handed to workers (originals + redispatches).",
            self.tasks_dispatched,
        );
        p.counter("cdb_retries_total", "Redispatch attempts after deadline misses.", self.retries);
        p.counter("cdb_timeouts_total", "Assignments that missed their deadline.", self.timeouts);
        p.counter(
            "cdb_reassignments_total",
            "Tasks moved to a different worker.",
            self.reassignments,
        );
        p.counter_family(
            "cdb_faults_total",
            "Injected faults by kind.",
            &[
                (vec![("kind", "dropout")], self.dropouts),
                (vec![("kind", "abandoned")], self.abandons),
                (vec![("kind", "slow")], self.slowdowns),
            ],
        );
        p.counter_family(
            "cdb_queries_total",
            "Queries finished, by outcome.",
            &[
                (vec![("outcome", "ok")], self.queries_ok),
                (vec![("outcome", "failed")], self.queries_failed),
            ],
        );
        p.counter(
            "cdb_virtual_ms_total",
            "Sum of per-query virtual makespans in ms.",
            self.virtual_ms_total,
        );
        p.counter("cdb_cost_cents_total", "Money spent on assignments in cents.", self.cost_cents);
        p.counter(
            "cdb_tasks_saved_total",
            "Tasks resolved by answer reuse instead of dispatch.",
            self.tasks_saved,
        );
        p.counter(
            "cdb_money_saved_cents_total",
            "Money not spent thanks to answer reuse, in cents.",
            self.money_saved_cents,
        );
        p.counter(
            "cdb_entailment_depth_total",
            "Sum of entailment depths over reuse hits.",
            self.entailment_depth_sum,
        );
        let n = self.round_latency_buckets.len();
        // Finite uppers for all but the open-ended last bucket.
        let mut uppers: Vec<f64> =
            (0..n.saturating_sub(1)).map(|i| (1u64 << (i + 1)).wrapping_sub(1) as f64).collect();
        uppers.push(f64::INFINITY);
        p.histogram(
            "cdb_round_latency_ms",
            "Crowd round latency in virtual ms.",
            &uppers,
            &self.round_latency_buckets,
            self.round_ms_total as f64,
        );
        p.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::Fault;
    use cdb_obsv::span::SpanId;
    use cdb_obsv::{kv, Event, EventKind};

    #[test]
    fn counters_accumulate() {
        let m = RuntimeMetrics::new();
        m.add_dispatched(10);
        m.add_dispatched(5);
        m.add_retry();
        m.add_timeout();
        m.add_reassignment();
        m.add_fault(Fault::Dropout);
        m.add_fault(Fault::Slow);
        m.add_fault(Fault::None);
        m.add_query(true, 500);
        m.add_query(false, 300);
        m.add_cost(25);
        let s = m.snapshot();
        assert_eq!(s.tasks_dispatched, 15);
        assert_eq!(s.retries, 1);
        assert_eq!(s.timeouts, 1);
        assert_eq!(s.reassignments, 1);
        assert_eq!(s.dropouts, 1);
        assert_eq!(s.slowdowns, 1);
        assert_eq!(s.abandons, 0);
        assert_eq!((s.queries_ok, s.queries_failed), (1, 1));
        assert_eq!(s.virtual_ms_total, 800);
        assert_eq!(s.cost_cents, 25);
    }

    #[test]
    fn histogram_buckets_by_power_of_two() {
        let m = RuntimeMetrics::new();
        m.add_round(0); // bucket 0
        m.add_round(1); // bucket 0
        m.add_round(2); // bucket 1
        m.add_round(3); // bucket 1
        m.add_round(1024); // bucket 10
        m.add_round(u64::MAX); // clamped to the last bucket
        let s = m.snapshot();
        assert_eq!(s.rounds, 6);
        assert_eq!(s.round_latency_buckets[0], 2);
        assert_eq!(s.round_latency_buckets[1], 2);
        assert_eq!(s.round_latency_buckets[10], 1);
        assert_eq!(s.round_latency_buckets[HISTOGRAM_BUCKETS - 1], 1);
    }

    #[test]
    fn histogram_edges_land_on_bucket_boundaries() {
        // Exact powers of two start a new bucket; their predecessors
        // close the previous one; the last bucket is open-ended.
        let m = RuntimeMetrics::new();
        for i in 1..HISTOGRAM_BUCKETS {
            m.add_round(1u64 << i); // lower edge of bucket i
            m.add_round((1u64 << i) - 1); // upper edge of bucket i-1
        }
        let s = m.snapshot();
        // Bucket 0 got {1}; buckets 1..18 got {2^i} and {2^(i+1)-1};
        // bucket 19 got {2^19} and every value the loop put past it.
        assert_eq!(s.round_latency_buckets[0], 1);
        for i in 1..HISTOGRAM_BUCKETS - 1 {
            assert_eq!(s.round_latency_buckets[i], 2, "bucket {i}");
        }
        assert_eq!(s.round_latency_buckets[HISTOGRAM_BUCKETS - 1], 1);
        // Values far past the last bucket clamp instead of panicking.
        m.add_round(u64::MAX);
        m.add_round(1u64 << 40);
        let s = m.snapshot();
        assert_eq!(s.round_latency_buckets[HISTOGRAM_BUCKETS - 1], 3);
        // The histogram always sums to the round count.
        assert_eq!(s.round_latency_buckets.iter().sum::<u64>(), s.rounds);
        assert_eq!(s.round_ms_total, {
            let edges: u64 =
                (1..HISTOGRAM_BUCKETS as u64).map(|i| (1u64 << i) + ((1u64 << i) - 1)).sum();
            edges.wrapping_add(u64::MAX).wrapping_add(1u64 << 40)
        });
    }

    #[test]
    fn concurrent_updates_sum_exactly() {
        use std::sync::Arc;
        let m = Arc::new(RuntimeMetrics::new());
        let threads = 6;
        let per = 10_000u64;
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let m = Arc::clone(&m);
                std::thread::spawn(move || {
                    for i in 0..per {
                        m.add_dispatched(1);
                        m.add_round(i % 4096);
                        if i % 3 == 0 {
                            m.add_retry();
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let s = m.snapshot();
        assert_eq!(s.tasks_dispatched, threads * per);
        assert_eq!(s.rounds, threads * per);
        assert_eq!(s.retries, threads * per.div_ceil(3));
        assert_eq!(s.round_latency_buckets.iter().sum::<u64>(), s.rounds);
        assert_eq!(s.round_ms_total, threads * (0..per).map(|i| i % 4096).sum::<u64>());
    }

    #[test]
    fn json_is_wellformed_and_stable() {
        let m = RuntimeMetrics::new();
        m.add_dispatched(3);
        m.add_round(100);
        let j = m.snapshot().to_json();
        assert!(j.starts_with('{') && j.ends_with('}'));
        assert!(j.contains("\"tasks_dispatched\":3"));
        assert!(j.contains("\"rounds\":1"));
        assert!(j.contains("\"round_ms_total\":100"));
        assert!(j.contains("\"round_latency_buckets\":["));
        assert_eq!(j, m.snapshot().to_json());
        cdb_obsv::json::check_balanced(&j).unwrap();
    }

    #[test]
    fn prometheus_exposition_validates_and_carries_the_histogram() {
        let m = RuntimeMetrics::new();
        m.add_dispatched(7);
        m.add_cost(35);
        m.add_round(3);
        m.add_round(1000);
        m.add_query(true, 1003);
        let text = m.snapshot().to_prometheus();
        cdb_obsv::prom::validate_exposition(&text).unwrap();
        assert!(text.contains("cdb_tasks_dispatched_total 7"));
        assert!(text.contains("cdb_cost_cents_total 35"));
        assert!(text.contains("cdb_round_latency_ms_count 2"));
        assert!(text.contains("cdb_round_latency_ms_sum 1003"));
        assert!(text.contains("cdb_queries_total{outcome=\"ok\"} 1"));
        // le bounds are inclusive: bucket 1 covers [2,3] so le="3".
        assert!(text.contains("cdb_round_latency_ms_bucket{le=\"3\"} 1"));
        assert!(text.contains("cdb_round_latency_ms_bucket{le=\"+Inf\"} 2"));
        // Exactly one +Inf bucket despite the open-ended 20th bucket.
        assert_eq!(text.matches("le=\"+Inf\"").count(), 1);
    }

    #[test]
    fn metrics_consume_the_event_stream() {
        let m = RuntimeMetrics::new();
        let span = SpanId::root();
        let record = |name, kind, at: u64, kvs| m.record(&Event { span, name, kind, at, kv: kvs });
        use cdb_obsv::attr::names;
        record(names::DISPATCH, EventKind::Instant, 0, kv![task => 1u64, cents => 5u64]);
        record(names::DISPATCH, EventKind::Instant, 0, kv![task => 2u64, cents => 4u64]);
        record(names::TIMEOUT, EventKind::Instant, 9, kv![task => 1u64]);
        record(names::RETRY, EventKind::Instant, 9, kv![task => 1u64]);
        record(
            names::REUSE_HIT,
            EventKind::Instant,
            9,
            kv![task => 3u64, kind => "transitive", depth => 2u64, cents => 15u64],
        );
        record(names::REASSIGN, EventKind::Instant, 9, kv![task => 1u64]);
        record(names::FAULT, EventKind::Instant, 3, kv![kind => "dropout"]);
        record(names::FAULT, EventKind::Instant, 3, kv![kind => "slow"]);
        // Round spans count only on Exit (with the closing latency).
        record(names::ROUND, EventKind::Enter, 0, kv![round => 0u64]);
        record(names::ROUND, EventKind::Exit, 120, kv![ms => 120u64]);
        record(names::QUERY, EventKind::Instant, 120, kv![ok => true, ms => 120u64]);
        record(names::QUERY, EventKind::Instant, 80, kv![ok => false, ms => 80u64]);
        // Unknown names are ignored.
        record("exotic.event", EventKind::Instant, 0, kv![]);
        let s = m.snapshot();
        assert_eq!(s.tasks_dispatched, 2);
        assert_eq!(s.cost_cents, 9);
        assert_eq!(s.timeouts, 1);
        assert_eq!(s.retries, 1);
        assert_eq!(s.reassignments, 1);
        assert_eq!(s.dropouts, 1);
        assert_eq!(s.slowdowns, 1);
        assert_eq!(s.rounds, 1);
        assert_eq!(s.round_ms_total, 120);
        assert_eq!((s.queries_ok, s.queries_failed), (1, 1));
        assert_eq!(s.virtual_ms_total, 200);
        assert_eq!(s.tasks_saved, 1);
        assert_eq!(s.money_saved_cents, 15);
        assert_eq!(s.entailment_depth_sum, 2);
        assert!(s.to_json().contains("\"tasks_saved\":1"));
        assert!(s.to_prometheus().contains("cdb_tasks_saved_total 1"));
        assert!(s.to_prometheus().contains("cdb_money_saved_cents_total 15"));
    }
}
