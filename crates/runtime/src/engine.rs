//! The concurrent crowd engine: a [`CrowdPlatform`] whose rounds complete
//! as answers *arrive* in virtual time, with fault injection and
//! deadline-driven reassignment.
//!
//! One engine serves one query. It wraps a per-query [`SimulatedPlatform`]
//! and replaces the synchronous `ask_round` with an event loop:
//!
//! 1. publish the batch (answers and latencies pre-drawn at dispatch);
//! 2. apply the fault plan to each dispatch (dropout / abandon / slow);
//! 3. advance the virtual clock to the next arrival or deadline;
//! 4. collect arrivals; reassign misses to a fresh worker within the
//!    retry budget; optionally close tasks early once their collected
//!    votes can no longer be overturned (CDAS-style, see `cdb-quality`);
//! 5. the round ends when nothing is in flight.
//!
//! Everything the engine does is a pure function of
//! `(platform seed, fault plan, retry policy, query id)` — no wall-clock,
//! no thread identity — which is what makes runs replayable and
//! thread-count-independent.
//!
//! Telemetry: every dispatch, arrival, fault, timeout, retry,
//! reassignment and early-termination decision is emitted exactly once as
//! a `cdb-obsv` event; the shared [`RuntimeMetrics`] is simply one
//! collector on that stream (attached in [`RuntimeEngine::new`]), so the
//! aggregate counters and any richer sink (ring buffer, Chrome trace) can
//! never disagree.

use std::collections::{BTreeMap, HashMap};
use std::sync::{Arc, Mutex};

use cdb_core::{ReuseOutcome, ReuseSession};
use cdb_crowd::{
    Answer, Assignment, AssignmentLog, CrowdPlatform, LatencyModel, Market, PendingAssignment,
    SimTime, SimulatedPlatform, Task, TaskAssigner, TaskId, TaskKind, WorkerId,
};
use cdb_obsv::attr::names;
use cdb_obsv::{kv, Event, Span, SpanId, Trace};
use cdb_quality::{decided_choice, vote_entropy};

use crate::fault::{Fault, FaultPlan, RetryPolicy, RuntimeError};
use crate::metrics::RuntimeMetrics;

/// Sentinel worker id for answers synthesized from the answer-reuse cache
/// (never a real pool member — pools are indexed from 0 and far smaller).
pub const REUSE_WORKER: WorkerId = WorkerId(u32::MAX);

/// A fault-injecting, virtual-time crowd platform for one query.
pub struct RuntimeEngine {
    platform: SimulatedPlatform,
    latency: LatencyModel,
    plan: FaultPlan,
    retry: RetryPolicy,
    query_id: u64,
    trace: Trace,
    now: SimTime,
    early_termination: bool,
    error: Option<RuntimeError>,
    /// Answer-reuse session: join-check tasks the session already entails
    /// are answered by the cache instead of being dispatched.
    reuse: Option<Arc<Mutex<ReuseSession>>>,
    /// Tasks published per crowd round, in round order (rounds fully
    /// resolved from the reuse cache publish nothing and are not recorded).
    /// This is the per-round footprint the multi-query scheduler replays
    /// when interleaving queries into shared HITs.
    round_tasks: Vec<usize>,
}

impl RuntimeEngine {
    /// Wrap a per-query platform. `metrics` may be shared across queries;
    /// it is attached as the first collector on the engine's event stream.
    pub fn new(
        platform: SimulatedPlatform,
        latency: LatencyModel,
        plan: FaultPlan,
        retry: RetryPolicy,
        query_id: u64,
        metrics: Arc<RuntimeMetrics>,
    ) -> Self {
        RuntimeEngine {
            platform,
            latency,
            plan,
            retry,
            query_id,
            trace: Trace::collector(metrics),
            now: 0,
            early_termination: false,
            error: None,
            reuse: None,
            round_tasks: Vec::new(),
        }
    }

    /// Attach an answer-reuse session: any join-check task whose value
    /// pair the session already entails is short-circuited at publish
    /// time — the engine synthesizes the cached answer from a sentinel
    /// cache worker ([`REUSE_WORKER`]) at the current virtual instant,
    /// spending no money and drawing nothing from the platform RNG. The
    /// session is *read-only* here: recording inferred answers is the
    /// caller's job (the core executor records colors as it infers them),
    /// so exactly one layer writes and replay stays deterministic.
    pub fn with_reuse(mut self, session: Arc<Mutex<ReuseSession>>) -> Self {
        self.reuse = Some(session);
        self
    }

    /// Close tasks as soon as their collected votes cannot be overturned,
    /// cancelling that task's still-pending assignments.
    pub fn with_early_termination(mut self, on: bool) -> Self {
        self.early_termination = on;
        self
    }

    /// Tee the engine's event stream into `trace` as well (the metrics
    /// collector attached at construction keeps receiving everything).
    pub fn with_trace(mut self, trace: Trace) -> Self {
        self.trace = self.trace.and(&trace);
        self
    }

    /// The engine's event stream (metrics collector + any added sinks).
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Current virtual time (the query's makespan so far), in ms.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The fatal error, if one was latched.
    pub fn error(&self) -> Option<&RuntimeError> {
        self.error.as_ref()
    }

    /// Take the fatal error, leaving the engine errored-but-queryable.
    pub fn take_error(&mut self) -> Option<RuntimeError> {
        self.error.clone()
    }

    /// Tasks published to the crowd per round, in round order. All-cache
    /// rounds publish nothing and do not appear.
    pub fn round_tasks(&self) -> &[usize] {
        &self.round_tasks
    }

    fn emit_dispatch(&self, span: &Span, p: &PendingAssignment, round: u64) {
        span.event(
            names::DISPATCH,
            p.dispatched_at,
            kv![
                task => p.task.0,
                worker => p.worker.id.0,
                attempt => u64::from(p.attempt),
                round => round,
                cents => self.platform.market().task_price_cents(),
            ],
        );
    }

    fn apply_faults(&self, span: &Span, p: &mut PendingAssignment, round: u64) {
        // Scripted dropouts: an answer lands only if it arrives while the
        // worker is still on the platform.
        if let Some(arr) = p.arrives_at {
            if self.plan.worker_dropped_by(p.worker.id, arr) {
                p.arrives_at = None;
                span.event(
                    names::FAULT,
                    p.dispatched_at,
                    kv![kind => "dropout", task => p.task.0, worker => p.worker.id.0],
                );
                return;
            }
        }
        let fault = self.plan.fault_for(self.query_id, round, p.task, p.worker.id, p.attempt);
        let kind = match fault {
            Fault::Dropout => "dropout",
            Fault::Abandoned => "abandoned",
            Fault::Slow => "slow",
            Fault::None => "",
        };
        if fault != Fault::None {
            span.event(
                names::FAULT,
                p.dispatched_at,
                kv![kind => kind, task => p.task.0, worker => p.worker.id.0],
            );
        }
        match fault {
            Fault::Dropout | Fault::Abandoned => p.arrives_at = None,
            Fault::Slow => {
                if let Some(arr) = p.arrives_at {
                    let slowed = (arr - p.dispatched_at) as f64 * self.plan.slow_factor.max(1.0);
                    p.arrives_at = Some(p.dispatched_at + slowed as SimTime);
                }
            }
            Fault::None => {}
        }
    }

    /// Split a batch into cache-answered assignments and the tasks that
    /// still need the crowd. Each hit synthesizes one [`REUSE_WORKER`]
    /// answer at the current instant and emits a `reuse.hit` event whose
    /// `cents` is the money a full dispatch (`redundancy × task price`)
    /// would have cost.
    fn resolve_reuse(&mut self, tasks: &[Task], redundancy: usize) -> (Vec<Assignment>, Vec<Task>) {
        let Some(session) = self.reuse.clone() else { return (Vec::new(), tasks.to_vec()) };
        let mut session = session.lock().expect("reuse session poisoned");
        let cents = self.platform.market().task_price_cents() * redundancy as u64;
        let mut hits = Vec::new();
        let mut misses = Vec::new();
        for t in tasks {
            let outcome = match &t.values {
                Some((l, r)) => session.resolve(t.measure.as_deref().unwrap_or(""), l, r),
                None => ReuseOutcome::Miss,
            };
            match outcome {
                ReuseOutcome::Hit { same, provenance } => {
                    self.trace.emit(Event::instant(
                        SpanId::ROOT,
                        names::REUSE_HIT,
                        self.now,
                        kv![
                            task => t.id.0,
                            kind => provenance.kind(),
                            depth => provenance.depth() as u64,
                            cents => cents
                        ],
                    ));
                    hits.push(Assignment {
                        task: t.id,
                        worker: REUSE_WORKER,
                        answer: Answer::Choice(usize::from(!same)),
                        round: self.platform.rounds(),
                    });
                }
                ReuseOutcome::Miss => misses.push(t.clone()),
            }
        }
        (hits, misses)
    }

    /// Latch `err`, close the round with what arrived, and return it.
    fn fail_round(
        &mut self,
        err: RuntimeError,
        collected: Vec<Assignment>,
        round_start: SimTime,
        span: Span,
    ) -> Vec<Assignment> {
        self.error = Some(err);
        self.platform.finish_round(&collected);
        span.close(self.now, kv![ms => self.now - round_start, ok => false]);
        collected
    }
}

impl CrowdPlatform for RuntimeEngine {
    fn market(&self) -> Market {
        self.platform.market()
    }

    fn rounds(&self) -> usize {
        self.platform.rounds()
    }

    fn log(&self) -> &AssignmentLog {
        self.platform.log()
    }

    fn ask_round(&mut self, tasks: &[Task], redundancy: usize) -> Vec<Assignment> {
        // A latched fatal error poisons the engine: no more dispatches, so
        // the executor's round loop runs out of answers and terminates
        // instead of hanging.
        if tasks.is_empty() || self.error.is_some() {
            return Vec::new();
        }
        // Answer reuse: resolve entailed tasks before paying for dispatch.
        // Hits never reach the platform, so they draw nothing from its RNG
        // — the remaining dispatches replay exactly as if the hit tasks
        // were never in the batch.
        let (reuse_hits, tasks) = self.resolve_reuse(tasks, redundancy);
        if tasks.is_empty() {
            return reuse_hits;
        }
        let round = self.platform.rounds() as u64;
        let round_start = self.now;
        self.round_tasks.push(tasks.len());
        let span =
            self.trace.span(SpanId::ROOT, names::ROUND, &[round], round_start, kv![round => round]);
        let by_id: BTreeMap<TaskId, Task> = tasks.iter().map(|t| (t.id, t.clone())).collect();

        let mut open = self.platform.publish_round(
            &tasks,
            redundancy,
            &self.latency,
            self.retry.deadline_ms,
            self.now,
        );
        // Workers already tried per task — reassignment must go elsewhere.
        let mut tried: HashMap<TaskId, Vec<WorkerId>> = HashMap::new();
        for p in &open.pending {
            self.emit_dispatch(&span, p, round);
            tried.entry(p.task).or_default().push(p.worker.id);
        }
        for p in &mut open.pending {
            self.apply_faults(&span, p, round);
        }

        let mut collected: Vec<Assignment> = Vec::new();
        loop {
            let arrived = open.collect_arrived(self.now);
            for a in &arrived {
                span.event(names::ARRIVAL, self.now, kv![task => a.task.0, worker => a.worker.0]);
            }
            collected.extend(arrived);

            if self.early_termination && !open.is_drained() {
                for d in cancel_decided(&by_id, &collected, redundancy, &mut open.pending) {
                    span.event(
                        names::DECIDE,
                        self.now,
                        kv![
                            task => d.task.0,
                            choice => d.choice,
                            conf => d.confidence,
                            entropy => d.entropy,
                        ],
                    );
                    span.event(names::CANCEL, self.now, kv![task => d.task.0, n => d.cancelled]);
                }
            }

            for missed in open.take_overdue(self.now) {
                span.event(
                    names::TIMEOUT,
                    self.now,
                    kv![task => missed.task.0, worker => missed.worker.id.0, attempt => u64::from(missed.attempt)],
                );
                if missed.attempt >= self.retry.max_retries {
                    let err = RuntimeError::RetryBudgetExhausted {
                        task: missed.task,
                        attempts: missed.attempt + 1,
                    };
                    return self.fail_round(err, collected, round_start, span);
                }
                span.event(
                    names::RETRY,
                    self.now,
                    kv![task => missed.task.0, attempt => u64::from(missed.attempt + 1)],
                );
                let task = &by_id[&missed.task];
                let exclude = tried.get(&missed.task).cloned().unwrap_or_default();
                let replacement = self.platform.dispatch_replacement(
                    task,
                    &exclude,
                    &self.latency,
                    self.retry.deadline_ms,
                    self.now,
                    missed.attempt + 1,
                );
                match replacement {
                    Some(mut p) => {
                        self.emit_dispatch(&span, &p, round);
                        if p.worker.id != missed.worker.id {
                            span.event(
                                names::REASSIGN,
                                self.now,
                                kv![task => p.task.0, worker => p.worker.id.0],
                            );
                        }
                        tried.entry(p.task).or_default().push(p.worker.id);
                        self.apply_faults(&span, &mut p, round);
                        open.pending.push(p);
                    }
                    None => {
                        let err = RuntimeError::NoEligibleWorker { task: missed.task };
                        return self.fail_round(err, collected, round_start, span);
                    }
                }
            }

            if open.is_drained() {
                break;
            }
            match open.next_event_after(self.now) {
                Some(t) => self.now = t,
                // Unreachable (every pending has a deadline), but never
                // spin: close the round instead.
                None => break,
            }
        }
        self.platform.finish_round(&collected);
        span.close(self.now, kv![ms => self.now - round_start, ok => true]);
        collected.extend(reuse_hits);
        collected
    }

    fn ask_round_assigned(
        &mut self,
        tasks: &[Task],
        redundancy: usize,
        batch_size: usize,
        assigner: &mut TaskAssigner,
    ) -> Vec<Assignment> {
        if tasks.is_empty() || self.error.is_some() {
            return Vec::new();
        }
        // The online-assignment path keeps the synchronous arrival model
        // (workers come one at a time by construction); the virtual clock
        // still advances by one nominal wave of responses.
        let round = self.platform.rounds() as u64;
        self.round_tasks.push(tasks.len());
        let span =
            self.trace.span(SpanId::ROOT, names::ROUND, &[round], self.now, kv![round => round]);
        let out = self.platform.ask_round_assigned(tasks, redundancy, batch_size, assigner);
        let cents = self.platform.market().task_price_cents();
        for a in &out {
            span.event(
                names::DISPATCH,
                self.now,
                kv![task => a.task.0, worker => a.worker.0, round => round, cents => cents],
            );
        }
        let wave = self.latency.mean_ms.max(1.0) as SimTime;
        self.now += wave;
        for a in &out {
            span.event(names::ARRIVAL, self.now, kv![task => a.task.0, worker => a.worker.0]);
        }
        span.close(self.now, kv![ms => wave, ok => true]);
        out
    }
}

/// One task closed early by CDAS-style termination.
struct EarlyDecision {
    task: TaskId,
    choice: u64,
    confidence: f64,
    entropy: f64,
    cancelled: u64,
}

/// Cancel pending assignments of single-choice tasks whose collected votes
/// already decide the outcome (the outstanding votes cannot overturn it).
/// Returns one record per task that had assignments cancelled, with the
/// decided choice and the vote statistics quality attribution wants.
fn cancel_decided(
    by_id: &BTreeMap<TaskId, Task>,
    collected: &[Assignment],
    redundancy: usize,
    pending: &mut Vec<PendingAssignment>,
) -> Vec<EarlyDecision> {
    let mut votes: HashMap<TaskId, Vec<usize>> = HashMap::new();
    for a in collected {
        if let Answer::Choice(c) = a.answer {
            votes.entry(a.task).or_default().push(c);
        }
    }
    let mut cancelled: BTreeMap<TaskId, (u64, usize)> = BTreeMap::new();
    pending.retain(|p| {
        let Some(task) = by_id.get(&p.task) else { return true };
        let TaskKind::SingleChoice { ref choices, .. } = task.kind else { return true };
        let Some(v) = votes.get(&p.task) else { return true };
        match decided_choice(v, choices.len(), redundancy) {
            Some(choice) => {
                let e = cancelled.entry(p.task).or_insert((0, choice));
                e.0 += 1;
                false
            }
            None => true,
        }
    });
    cancelled
        .into_iter()
        .map(|(task, (n, choice))| {
            let v = &votes[&task];
            let num_choices = match by_id[&task].kind {
                TaskKind::SingleChoice { ref choices, .. } => choices.len(),
                _ => 2,
            };
            let share = v.iter().filter(|&&c| c == choice).count() as f64 / v.len().max(1) as f64;
            EarlyDecision {
                task,
                choice: choice as u64,
                confidence: share,
                entropy: vote_entropy(v, num_choices),
                cancelled: n,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdb_crowd::WorkerPool;
    use cdb_obsv::Ring;

    fn engine(accs: &[f64], seed: u64, plan: FaultPlan, retry: RetryPolicy) -> RuntimeEngine {
        let platform = SimulatedPlatform::new(Market::Amt, WorkerPool::with_accuracies(accs), seed);
        RuntimeEngine::new(
            platform,
            LatencyModel::default(),
            plan,
            retry,
            0,
            Arc::new(RuntimeMetrics::new()),
        )
    }

    fn yes_task(id: u64) -> Task {
        Task::join_check(TaskId(id), "MIT", "M.I.T.", true)
    }

    #[test]
    fn faultless_round_matches_redundancy_and_advances_the_clock() {
        let mut e = engine(&[1.0; 10], 3, FaultPlan::none(), RetryPolicy::default());
        let asg = e.ask_round(&[yes_task(1), yes_task(2)], 5);
        assert_eq!(asg.len(), 10);
        assert!(asg.iter().all(|a| a.answer == Answer::Choice(0)));
        assert!(e.now() > 0, "virtual clock must advance");
        assert_eq!(e.rounds(), 1);
        assert!(e.error().is_none());
    }

    #[test]
    fn answers_arrive_over_time_not_in_lockstep() {
        // With per-worker response times, the round's makespan is the max
        // of the sampled latencies — not a fixed barrier. Verify arrivals
        // span distinct virtual instants by checking the makespan exceeds
        // the fastest worker's response.
        let mut e = engine(&[1.0; 12], 7, FaultPlan::none(), RetryPolicy::default());
        let asg = e.ask_round(&[yes_task(1)], 8);
        assert_eq!(asg.len(), 8);
        let makespan = e.now();
        let fastest = e
            .log()
            .answers(TaskId(1))
            .iter()
            .map(|a| a.worker)
            .map(|w| LatencyModel::default().worker_factor(w))
            .fold(f64::INFINITY, f64::min);
        assert!(makespan as f64 > fastest * LatencyModel::default().mean_ms * 0.1);
    }

    #[test]
    fn identical_engines_replay_identically() {
        let run = || {
            let mut e = engine(&[0.8; 10], 11, FaultPlan::uniform(5, 0.3), RetryPolicy::default());
            let a1 = e.ask_round(&[yes_task(1), yes_task(2)], 5);
            let a2 = e.ask_round(&[yes_task(3)], 5);
            (format!("{a1:?}"), format!("{a2:?}"), e.now())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn dropped_workers_force_reassignment_within_deadline() {
        // First, observe which workers answer task 1 in a faultless run.
        let mut probe = engine(&[1.0; 8], 21, FaultPlan::none(), RetryPolicy::default());
        let baseline = probe.ask_round(&[yes_task(1)], 3);
        let victim = baseline[0].worker;

        // Re-run the same seed with that worker force-dropped from t=0.
        let metrics = Arc::new(RuntimeMetrics::new());
        let platform =
            SimulatedPlatform::new(Market::Amt, WorkerPool::with_accuracies(&[1.0; 8]), 21);
        let retry = RetryPolicy::default();
        let mut e = RuntimeEngine::new(
            platform,
            LatencyModel::default(),
            FaultPlan::none().drop_worker(victim, 0),
            retry,
            0,
            Arc::clone(&metrics),
        );
        let asg = e.ask_round(&[yes_task(1)], 3);
        // Full redundancy is still reached, without the dropped worker.
        assert_eq!(asg.len(), 3);
        assert!(asg.iter().all(|a| a.worker != victim));
        let s = metrics.snapshot();
        assert_eq!(s.timeouts, 1, "exactly one assignment missed its deadline");
        assert_eq!(s.reassignments, 1, "the dropped worker's task moved exactly once");
        assert_eq!(s.dropouts, 1);
        // The replacement was dispatched at the missed deadline, and its
        // own deadline bounds the round's makespan.
        assert!(e.now() <= 2 * retry.deadline_ms);
        assert!(e.error().is_none());
    }

    #[test]
    fn exhausted_retry_budget_is_a_typed_error_not_a_hang() {
        let plan = FaultPlan::none().with_dropout(1.0);
        let retry = RetryPolicy { deadline_ms: 1000, max_retries: 2 };
        let mut e = engine(&[1.0; 6], 5, plan, retry);
        let asg = e.ask_round(&[yes_task(1)], 2);
        assert!(asg.is_empty(), "every answer was dropped");
        match e.take_error() {
            Some(RuntimeError::RetryBudgetExhausted { task, attempts }) => {
                assert_eq!(task, TaskId(1));
                assert_eq!(attempts, retry.max_retries + 1);
            }
            other => panic!("expected RetryBudgetExhausted, got {other:?}"),
        }
        // Poisoned: further rounds dispatch nothing (so callers terminate).
        assert!(e.ask_round(&[yes_task(2)], 2).is_empty());
    }

    #[test]
    fn reassignment_needs_an_eligible_worker() {
        // Pool of exactly `redundancy` workers: all are tried at dispatch,
        // so the first miss has nobody left to take the task.
        let plan = FaultPlan::none().with_dropout(1.0);
        let retry = RetryPolicy { deadline_ms: 1000, max_retries: 5 };
        let mut e = engine(&[1.0; 3], 5, plan, retry);
        let asg = e.ask_round(&[yes_task(1)], 3);
        assert!(asg.is_empty());
        assert!(matches!(e.take_error(), Some(RuntimeError::NoEligibleWorker { task: TaskId(1) })));
    }

    #[test]
    fn slow_faults_stretch_the_round_makespan() {
        let base = {
            let mut e = engine(
                &[1.0; 10],
                13,
                FaultPlan::none(),
                RetryPolicy { deadline_ms: SimTime::MAX / 2, max_retries: 0 },
            );
            e.ask_round(&[yes_task(1)], 5);
            e.now()
        };
        let slowed = {
            let plan = FaultPlan::none().with_slow(1.0, 6.0);
            let mut e = engine(
                &[1.0; 10],
                13,
                plan,
                RetryPolicy { deadline_ms: SimTime::MAX / 2, max_retries: 0 },
            );
            e.ask_round(&[yes_task(1)], 5);
            e.now()
        };
        assert!(slowed > base, "slow faults must stretch {base} -> {slowed}");
    }

    #[test]
    fn early_termination_cancels_unneeded_assignments() {
        let retry = RetryPolicy::default();
        let full = {
            let mut e = engine(&[1.0; 10], 17, FaultPlan::none(), retry);
            e.ask_round(&[yes_task(1)], 5).len()
        };
        assert_eq!(full, 5);
        let metrics = Arc::new(RuntimeMetrics::new());
        let platform =
            SimulatedPlatform::new(Market::Amt, WorkerPool::with_accuracies(&[1.0; 10]), 17);
        let mut e = RuntimeEngine::new(
            platform,
            LatencyModel::default(),
            FaultPlan::none(),
            retry,
            0,
            metrics,
        )
        .with_early_termination(true);
        let early = e.ask_round(&[yes_task(1)], 5).len();
        // Perfect workers: 3 unanimous yes-votes decide; the rest cancel.
        assert_eq!(early, 3);
    }

    #[test]
    fn traced_round_emits_one_event_per_fact() {
        let ring = Arc::new(Ring::with_capacity(1024));
        let metrics = Arc::new(RuntimeMetrics::new());
        let platform =
            SimulatedPlatform::new(Market::Amt, WorkerPool::with_accuracies(&[1.0; 10]), 3);
        let mut e = RuntimeEngine::new(
            platform,
            LatencyModel::default(),
            FaultPlan::none(),
            RetryPolicy::default(),
            0,
            Arc::clone(&metrics),
        )
        .with_trace(Trace::collector(ring.clone()));
        let asg = e.ask_round(&[yes_task(1), yes_task(2)], 5);
        assert_eq!(asg.len(), 10);
        let evs = ring.drain();
        let count = |n: &str| evs.iter().filter(|e| e.name == n).count();
        assert_eq!(count(names::DISPATCH), 10);
        assert_eq!(count(names::ARRIVAL), 10);
        // The round span opened and closed.
        let round_evs: Vec<_> = evs.iter().filter(|e| e.name == names::ROUND).collect();
        assert_eq!(round_evs.len(), 2);
        assert_eq!(round_evs[1].get_u64("ms"), Some(e.now()));
        // Every dispatch priced at the AMT rate.
        assert!(evs
            .iter()
            .filter(|e| e.name == names::DISPATCH)
            .all(|e| e.get_u64("cents") == Some(5)));
        // The metrics collector consumed the same stream.
        let s = metrics.snapshot();
        assert_eq!(s.tasks_dispatched, 10);
        assert_eq!(s.rounds, 1);
        assert_eq!(s.cost_cents, 50);
        assert_eq!(s.round_ms_total, e.now());
    }

    #[test]
    fn reuse_hits_short_circuit_dispatch() {
        let session = Arc::new(Mutex::new(ReuseSession::default()));
        {
            let mut s = session.lock().unwrap();
            s.record("", "MIT", "M.I.T.", true);
            s.record("", "MIT", "Stanford", false);
        }
        let metrics = Arc::new(RuntimeMetrics::new());
        let platform =
            SimulatedPlatform::new(Market::Amt, WorkerPool::with_accuracies(&[1.0; 10]), 3);
        let mut e = RuntimeEngine::new(
            platform,
            LatencyModel::default(),
            FaultPlan::none(),
            RetryPolicy::default(),
            0,
            Arc::clone(&metrics),
        )
        .with_reuse(session);
        let batch = [
            yes_task(1),                                           // MIT / M.I.T. — recorded positive
            Task::join_check(TaskId(2), "MIT", "Stanford", false), // recorded negative
            Task::join_check(TaskId(3), "CMU", "Carnegie Mellon", true), // unknown
        ];
        let asg = e.ask_round(&batch, 3);
        // Two cache answers (one synthetic vote each) + 3 real assignments.
        assert_eq!(asg.len(), 5);
        let hit1: Vec<_> = asg.iter().filter(|a| a.task == TaskId(1)).collect();
        assert_eq!(hit1.len(), 1);
        assert_eq!(hit1[0].worker, REUSE_WORKER);
        assert_eq!(hit1[0].answer, Answer::Choice(0));
        let hit2 = asg.iter().find(|a| a.task == TaskId(2)).unwrap();
        assert_eq!(hit2.answer, Answer::Choice(1));
        assert!(asg.iter().filter(|a| a.task == TaskId(3)).all(|a| a.worker != REUSE_WORKER));
        let s = metrics.snapshot();
        assert_eq!(s.tasks_dispatched, 3, "only the miss was dispatched");
        assert_eq!(s.tasks_saved, 2);
        assert_eq!(s.money_saved_cents, 2 * 3 * 5, "2 tasks × redundancy 3 × 5¢");
    }

    #[test]
    fn all_hit_round_never_touches_the_platform() {
        let session = Arc::new(Mutex::new(ReuseSession::default()));
        session.lock().unwrap().record("", "MIT", "M.I.T.", true);
        let mut e = engine(&[1.0; 10], 3, FaultPlan::none(), RetryPolicy::default());
        e = e.with_reuse(session);
        let asg = e.ask_round(&[yes_task(1), yes_task(2)], 5);
        assert_eq!(asg.len(), 2);
        assert!(asg.iter().all(|a| a.worker == REUSE_WORKER));
        assert_eq!(e.rounds(), 0, "no crowd round was published");
        assert_eq!(e.now(), 0, "cache answers cost no virtual time");
    }

    #[test]
    fn reuse_replay_is_unperturbed_for_the_remaining_tasks() {
        // The dispatches a reuse-enabled round makes for its misses must
        // be byte-identical to a run where the hit tasks were simply
        // absent — hits draw nothing from the platform RNG.
        let miss = |id| Task::join_check(TaskId(id), "CMU", "Carnegie Mellon", true);
        let with_reuse = {
            let session = Arc::new(Mutex::new(ReuseSession::default()));
            session.lock().unwrap().record("", "MIT", "M.I.T.", true);
            let mut e = engine(&[0.8; 10], 11, FaultPlan::uniform(5, 0.3), RetryPolicy::default());
            e = e.with_reuse(session);
            let asg = e.ask_round(&[yes_task(1), miss(2)], 5);
            let real: Vec<_> = asg.into_iter().filter(|a| a.worker != REUSE_WORKER).collect();
            format!("{real:?}")
        };
        let without_hit_task = {
            let mut e = engine(&[0.8; 10], 11, FaultPlan::uniform(5, 0.3), RetryPolicy::default());
            format!("{:?}", e.ask_round(&[miss(2)], 5))
        };
        assert_eq!(with_reuse, without_hit_task);
    }

    #[test]
    fn early_termination_emits_decide_and_cancel_events() {
        let ring = Arc::new(Ring::with_capacity(1024));
        let platform =
            SimulatedPlatform::new(Market::Amt, WorkerPool::with_accuracies(&[1.0; 10]), 17);
        let mut e = RuntimeEngine::new(
            platform,
            LatencyModel::default(),
            FaultPlan::none(),
            RetryPolicy::default(),
            0,
            Arc::new(RuntimeMetrics::new()),
        )
        .with_early_termination(true)
        .with_trace(Trace::collector(ring.clone()));
        e.ask_round(&[yes_task(1)], 5);
        let evs = ring.drain();
        let decide = evs.iter().find(|e| e.name == names::DECIDE).expect("a DECIDE event");
        // Perfect workers vote unanimously: confidence 1, entropy 0.
        assert_eq!(decide.get("conf").unwrap().as_f64(), Some(1.0));
        assert_eq!(decide.get("entropy").unwrap().as_f64(), Some(0.0));
        assert_eq!(decide.get_u64("choice"), Some(0));
        let cancel = evs.iter().find(|e| e.name == names::CANCEL).expect("a CANCEL event");
        assert_eq!(cancel.get_u64("n"), Some(2), "5 dispatched, 3 decide, 2 cancelled");
    }
}
