//! The concurrent query scheduler.
//!
//! [`RuntimeExecutor`] runs many crowd queries at once: query jobs are
//! dealt across a work-stealing [`ThreadPool`], each job drives the core
//! round loop ([`cdb_core::Executor`]) against its own per-query
//! [`RuntimeEngine`], and results flow back over a *bounded* channel —
//! workers block when the collector lags, which is the backpressure that
//! keeps memory flat at any fleet size.
//!
//! Determinism: each query's platform seed, executor seed and fault
//! stream are keyed by `(runtime seed, query id)` via
//! [`cdb_crowd::stream_key`], so a query's outcome is a pure function of
//! the configuration — never of which thread ran it or when. Results are
//! sorted by query id before reporting. Consequently
//! [`RuntimeReport::answers`] is byte-identical across thread counts for
//! a fixed `(seed, fault plan)` — the deterministic-replay guarantee.

use std::collections::BTreeSet;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use cdb_core::executor::{EdgeTruth, Executor, ExecutorConfig};
use cdb_core::model::NodeId;
use cdb_core::{QueryGraph, ReuseCache, ReuseSession, SettleSink, SettledFact};
use cdb_crowd::{stream_key, LatencyModel, Market, SimTime, SimulatedPlatform, WorkerPool};
use cdb_obsv::attr::names;
use cdb_obsv::{kv, Event, SpanId, Trace};

use crate::engine::RuntimeEngine;
use crate::fault::{FaultPlan, RetryPolicy, RuntimeError};
use crate::metrics::{MetricsSnapshot, RuntimeMetrics};
use crate::pool::ThreadPool;
use crate::sync;

/// Scheduler configuration.
#[derive(Debug, Clone)]
pub struct RuntimeConfig {
    /// Worker threads in the pool.
    pub threads: usize,
    /// Root seed; every per-query stream is keyed off it.
    pub seed: u64,
    /// Market the per-query platforms simulate.
    pub market: Market,
    /// Accuracies of the simulated worker pool (same pool per query).
    pub worker_accuracies: Vec<f64>,
    /// Worker response-time model.
    pub latency: LatencyModel,
    /// Fault-injection plan (shared stream root across queries).
    pub fault_plan: FaultPlan,
    /// Per-assignment deadline and retry budget.
    pub retry: RetryPolicy,
    /// Core executor knobs (its `seed` is re-keyed per query).
    pub exec: ExecutorConfig,
    /// Close tasks early once votes are beyond overturning (CDAS).
    pub early_termination: bool,
    /// Capacity of the bounded result channel (backpressure).
    pub result_capacity: usize,
    /// Observability sink. Off by default (zero cost); when attached,
    /// every query's events are tagged with its `q` id and its span ids
    /// are salted into a per-query namespace before reaching the sink.
    pub trace: Trace,
    /// Cross-query answer-reuse cache. `None` disables reuse. When set,
    /// the run snapshots the cache once before scattering jobs, hands
    /// every query a private [`ReuseSession`], and absorbs the sessions
    /// of *successful* queries back in query-id order after the pool
    /// joins (failed queries' sessions are discarded: their post-error
    /// colors carry no crowd evidence) — so per-query outcomes stay a
    /// pure function of `(config, job, snapshot)` at any thread count,
    /// and knowledge compounds across fleet runs sharing the same cache.
    pub reuse: Option<Arc<ReuseCache>>,
    /// Durability hook (settle-after-fsync). When set alongside `reuse`,
    /// each successful query's fresh crowd answers are handed to the sink
    /// — which must put them on stable storage before returning — and
    /// only then absorbed into the shared cache. If settling fails the
    /// session is skipped: the answers stay query-local (re-bought later,
    /// losing money but never correctness) rather than being handed out
    /// as reuse hits that disk would not remember after a crash. Failed
    /// queries are never settled, so recovery cannot resurrect answers
    /// the live engine discarded. `None` (the default) absorbs directly.
    pub settle: Option<SettleHook>,
    /// Per-round binding stream hook. When set, every query invokes the
    /// sink after each crowd round with the bindings that newly became
    /// answers (in canonical order) — `cdb-serve` pushes these over the
    /// wire as NDJSON chunks while the query is still running. The sink
    /// returning `false` cancels that query: the core loop stops asking
    /// and the query reports a partial [`QueryResult`] with
    /// [`cancelled`](QueryResult::cancelled) set. `None` (the default)
    /// streams nothing and can cancel nothing.
    pub round_sink: Option<RoundHook>,
}

/// Receives each query's per-round answer deltas (see
/// [`RuntimeConfig::round_sink`]). Implementations must be cheap and
/// non-blocking-ish — they run on the worker thread inside the round
/// loop — and must not vary behavior by thread or wall clock if replay
/// determinism matters to them.
pub trait RoundSink: Send + Sync {
    /// `new_bindings` became answers for `query` in crowd round `round`
    /// (1-based; a final flush may repeat the last round number). Return
    /// `false` to cancel the query.
    fn on_round(&self, query: u64, round: u64, new_bindings: &[Vec<NodeId>]) -> bool;
}

/// A cloneable, debuggable handle around the round sink — same shape as
/// [`SettleHook`], so [`RuntimeConfig`] can stay `#[derive(Debug, Clone)]`.
#[derive(Clone)]
pub struct RoundHook(Arc<dyn RoundSink>);

impl RoundHook {
    /// Wrap a sink (e.g. `cdb-serve`'s per-query chunk streams).
    pub fn new(sink: Arc<dyn RoundSink>) -> RoundHook {
        RoundHook(sink)
    }

    /// Forward one round's delta; `false` means cancel.
    pub fn on_round(&self, query: u64, round: u64, new_bindings: &[Vec<NodeId>]) -> bool {
        self.0.on_round(query, round, new_bindings)
    }
}

impl std::fmt::Debug for RoundHook {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("RoundHook(..)")
    }
}

/// A cloneable, debuggable handle around the durability sink — kept as a
/// newtype so [`RuntimeConfig`] can stay `#[derive(Debug, Clone)]`.
#[derive(Clone)]
pub struct SettleHook(Arc<dyn SettleSink>);

impl SettleHook {
    /// Wrap a sink (e.g. `cdb-store`'s durable reuse cache).
    pub fn new(sink: Arc<dyn SettleSink>) -> SettleHook {
        SettleHook(sink)
    }

    /// Durably settle `facts` for `query`.
    pub fn settle(&self, query: u64, facts: &[SettledFact]) -> Result<(), String> {
        self.0.settle(query, facts)
    }
}

impl std::fmt::Debug for SettleHook {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("SettleHook(..)")
    }
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        // A deterministic mixed-quality pool: accuracies in [0.6, 0.95).
        let accs: Vec<f64> = (0..40)
            .map(|i| {
                use rand::Rng;
                let mut r = cdb_crowd::stream_rng(0xACC0, &[i]);
                0.6 + 0.35 * r.gen::<f64>()
            })
            .collect();
        RuntimeConfig {
            threads: 4,
            seed: 0,
            market: Market::Amt,
            worker_accuracies: accs,
            latency: LatencyModel::default(),
            fault_plan: FaultPlan::none(),
            retry: RetryPolicy::default(),
            exec: ExecutorConfig::default(),
            early_termination: false,
            result_capacity: 8,
            trace: Trace::off(),
            reuse: None,
            settle: None,
            round_sink: None,
        }
    }
}

/// One query to run: a prepared graph plus its edge truth.
#[derive(Debug, Clone)]
pub struct QueryJob {
    /// Stable id; results are reported in id order.
    pub id: u64,
    /// The query graph.
    pub graph: QueryGraph,
    /// Ground-truth edge colors.
    pub truth: EdgeTruth,
}

/// A completed query's outcome.
#[derive(Debug, Clone)]
pub struct QueryResult {
    /// The query id.
    pub query: u64,
    /// Answer bindings (all-BLUE candidates).
    pub bindings: BTreeSet<Vec<NodeId>>,
    /// Distinct tasks asked.
    pub tasks_asked: usize,
    /// Crowd rounds consumed.
    pub rounds: usize,
    /// Worker assignments collected.
    pub assignments: usize,
    /// Tasks answered from the reuse cache instead of the crowd.
    pub tasks_saved: usize,
    /// Tasks published to the crowd per round, in round order — the
    /// per-round footprint `cdb-sched` interleaves into shared HITs
    /// (all-cache rounds publish nothing and are not recorded).
    pub round_tasks: Vec<usize>,
    /// Virtual makespan of the query, in simulated ms.
    pub virtual_ms: SimTime,
    /// True when a [`RoundSink`] stopped the query early (client cancel
    /// or disconnect): `bindings` holds only what had resolved so far.
    pub cancelled: bool,
}

/// Everything a runtime run produced.
#[derive(Debug)]
pub struct RuntimeReport {
    /// Per-query outcomes, sorted by query id.
    pub results: Vec<(u64, Result<QueryResult, RuntimeError>)>,
    /// Frozen runtime counters.
    pub metrics: MetricsSnapshot,
    /// Real (wall-clock) time the run took.
    pub wall: Duration,
    /// Jobs run by a thread other than the one they were dealt to.
    pub steals: u64,
}

impl RuntimeReport {
    /// Canonical text rendering of every query's answer — the replay
    /// artifact: byte-identical across thread counts for a fixed
    /// `(seed, fault_plan)`.
    pub fn answers(&self) -> String {
        let mut s = String::new();
        for (id, r) in &self.results {
            match r {
                Ok(q) => {
                    let bindings: Vec<String> = q
                        .bindings
                        .iter()
                        .map(|b| b.iter().map(|n| n.0.to_string()).collect::<Vec<_>>().join("."))
                        .collect();
                    s.push_str(&format!(
                        "q{id} tasks={} rounds={} assignments={} virtual_ms={} answers=[{}]\n",
                        q.tasks_asked,
                        q.rounds,
                        q.assignments,
                        q.virtual_ms,
                        bindings.join("|")
                    ));
                }
                Err(e) => s.push_str(&format!("q{id} error={e}\n")),
            }
        }
        s
    }

    /// Bindings-only rendering: one line per query with just its answer
    /// set. Unlike [`answers`](Self::answers) this omits the task, round
    /// and assignment counts, which legitimately shrink when answer reuse
    /// is enabled — so it is the right artifact for comparing a
    /// cache-enabled run against a cache-disabled one.
    pub fn bindings_text(&self) -> String {
        let mut s = String::new();
        for (id, r) in &self.results {
            match r {
                Ok(q) => {
                    let bindings: Vec<String> = q
                        .bindings
                        .iter()
                        .map(|b| b.iter().map(|n| n.0.to_string()).collect::<Vec<_>>().join("."))
                        .collect();
                    s.push_str(&format!("q{id} answers=[{}]\n", bindings.join("|")));
                }
                Err(e) => s.push_str(&format!("q{id} error={e}\n")),
            }
        }
        s
    }

    /// Queries that finished cleanly.
    pub fn ok_count(&self) -> usize {
        self.results.iter().filter(|(_, r)| r.is_ok()).count()
    }

    /// Queries that failed with a typed error.
    pub fn failed_count(&self) -> usize {
        self.results.len() - self.ok_count()
    }

    /// Sum of per-query virtual makespans — what a *serial* schedule would
    /// cost in simulated time; compare with the max for the concurrent
    /// lower bound.
    pub fn virtual_ms_serial(&self) -> SimTime {
        self.results.iter().map(|(_, r)| r.as_ref().map(|q| q.virtual_ms).unwrap_or(0)).sum()
    }
}

/// Runs fleets of crowd queries concurrently with deterministic replay.
pub struct RuntimeExecutor {
    cfg: RuntimeConfig,
}

impl RuntimeExecutor {
    /// Build a scheduler from its configuration.
    pub fn new(cfg: RuntimeConfig) -> Self {
        assert!(cfg.threads >= 1, "need at least one worker thread");
        RuntimeExecutor { cfg }
    }

    /// The configuration.
    pub fn config(&self) -> &RuntimeConfig {
        &self.cfg
    }

    /// Run every job to completion and report. Jobs execute concurrently
    /// (up to `threads` at once, work-stealing); results are reported in
    /// query-id order regardless of completion order.
    pub fn run(&self, jobs: Vec<QueryJob>) -> RuntimeReport {
        let start = Instant::now();
        let metrics = Arc::new(RuntimeMetrics::new());
        let pool = ThreadPool::new(self.cfg.threads);
        let (tx, rx) = sync::bounded(self.cfg.result_capacity.max(1));
        let n = jobs.len();
        let cfg = Arc::new(self.cfg.clone());
        // Answer reuse: snapshot the shared cache ONCE, before any job
        // runs. Every query resolves against the same frozen knowledge, so
        // which thread runs first cannot change what a query sees.
        let mut sessions: Vec<(u64, Arc<Mutex<ReuseSession>>)> = Vec::new();
        if let Some(cache) = &self.cfg.reuse {
            sessions =
                jobs.iter().map(|job| (job.id, Arc::new(Mutex::new(cache.snapshot())))).collect();
            sessions.sort_by_key(|&(id, _)| id);
        }
        pool.scatter(jobs.into_iter().map(|job| {
            let tx = tx.clone();
            let metrics = Arc::clone(&metrics);
            let cfg = Arc::clone(&cfg);
            let session =
                sessions.iter().find(|&&(id, _)| id == job.id).map(|(_, s)| Arc::clone(s));
            move || {
                let out = execute_query(&cfg, &metrics, job, session);
                // The collector outlives the workers; a send can only fail
                // if the whole run was abandoned.
                let _ = tx.send(out);
            }
        }));
        drop(tx);
        let mut results: Vec<(u64, Result<QueryResult, RuntimeError>)> =
            (0..n).map(|_| rx.recv().expect("every job reports")).collect();
        pool.join();
        // Absorb in query-id order: the first (lowest-id) writer wins any
        // conflicting answer, independent of completion order. Only
        // successful queries contribute — once an engine latches a fatal
        // error it stops dispatching, so the failed query's remaining
        // colors are vote-less defaults, not crowd answers, and absorbing
        // them would silently corrupt every later query sharing the cache.
        if let Some(cache) = &self.cfg.reuse {
            let failed: BTreeSet<u64> =
                results.iter().filter(|(_, r)| r.is_err()).map(|&(id, _)| id).collect();
            for (id, session) in &sessions {
                if !failed.contains(id) {
                    let session = session.lock().expect("reuse session poisoned");
                    // Settle-after-fsync: the answers reach stable storage
                    // before they become visible for cross-query reuse. A
                    // sink failure skips the absorb — never the reverse.
                    if let Some(hook) = &self.cfg.settle {
                        let facts = settled_facts(&self.cfg, &session);
                        if !facts.is_empty() {
                            let cents: u64 = facts.iter().map(|f| f.cents).sum();
                            let ok = hook.settle(*id, &facts).is_ok();
                            self.cfg.trace.emit(Event::instant(
                                SpanId::root(),
                                names::STORE_SETTLE,
                                0,
                                kv![q => *id, ok => ok, n => facts.len() as u64, cents => cents],
                            ));
                            if !ok {
                                continue;
                            }
                        }
                    }
                    cache.absorb(&session);
                }
            }
        }
        let steals = pool.steals();
        results.sort_by_key(|&(id, _)| id);
        RuntimeReport { results, metrics: metrics.snapshot(), wall: start.elapsed(), steals }
    }
}

/// Price a successful query's fresh reuse facts for durable settlement:
/// each fact was decided from `redundancy` worker votes at the market's
/// task price. Public so the sim's sequential oracle settles facts
/// byte-identically to the concurrent scheduler.
pub fn settled_facts(cfg: &RuntimeConfig, session: &ReuseSession) -> Vec<SettledFact> {
    let votes = cfg.exec.redundancy as u32;
    let cents = cfg.market.task_price_cents() * cfg.exec.redundancy as u64;
    session
        .fresh_facts()
        .iter()
        .map(|(measure, left, right, same)| SettledFact {
            measure: measure.clone(),
            left: left.clone(),
            right: right.clone(),
            same: *same,
            votes,
            cents,
        })
        .collect()
}

/// Run one query job — a pure function of `(cfg, job, reuse snapshot)`;
/// the shared `metrics` is write-only telemetry.
///
/// This is the *seedable scheduler hook*: [`RuntimeExecutor::run`] calls
/// it from its thread pool, but external harnesses (the `cdb-sim`
/// differential oracle) can call it directly, one query at a time in any
/// order, and must observe byte-identical outcomes — the scheduler only
/// adds concurrency, never behavior. All randomness is keyed by
/// `(cfg.seed, job.id)` via [`cdb_crowd::stream_key`].
pub fn execute_query(
    cfg: &RuntimeConfig,
    metrics: &Arc<RuntimeMetrics>,
    job: QueryJob,
    reuse: Option<Arc<Mutex<ReuseSession>>>,
) -> (u64, Result<QueryResult, RuntimeError>) {
    let platform_seed = stream_key(cfg.seed, &[0x51A7, job.id]);
    let wpool = WorkerPool::with_accuracies(&cfg.worker_accuracies);
    let platform = SimulatedPlatform::new(cfg.market, wpool, platform_seed);
    // Per-query view of the configured sink: every event gains the `q`
    // key and span ids are salted into the query's namespace, so the
    // instrumented code never threads the query id through its calls.
    let qspan = SpanId::root().child(names::QUERY, &[job.id]);
    let qtrace = cfg.trace.with_context(kv![q => job.id], qspan.raw());
    let mut engine = RuntimeEngine::new(
        platform,
        cfg.latency,
        cfg.fault_plan.clone(),
        cfg.retry,
        job.id,
        Arc::clone(metrics),
    )
    .with_trace(qtrace.clone())
    .with_early_termination(cfg.early_termination);
    if let Some(session) = &reuse {
        engine = engine.with_reuse(Arc::clone(session));
    }
    let exec_cfg = ExecutorConfig { seed: stream_key(cfg.seed, &[0xE5EC, job.id]), ..cfg.exec };
    // The core loop gets the same per-query view, so its plan-level
    // events (`exec.edge` task→node bindings, `exec.color`) land in the
    // same stream the engine's crowd events do — teeing in the shared
    // metrics so the core's pre-round `reuse.hit` sweeps count in the
    // snapshot exactly like the engine's publish-time hits.
    let exec_trace =
        Trace::collector(Arc::clone(metrics) as Arc<dyn cdb_obsv::Collector>).and(&qtrace);
    let mut executor =
        Executor::new(job.graph, &job.truth, &mut engine, exec_cfg).with_trace(exec_trace);
    if let Some(session) = reuse {
        // Read/write split: the engine only *resolves* against the
        // session; the core executor is the single writer, recording
        // each round's inferred colors after vote aggregation.
        executor = executor.with_reuse(session);
    }
    if let Some(hook) = &cfg.round_sink {
        let hook = hook.clone();
        let query = job.id;
        executor = executor
            .with_round_observer(Box::new(move |round, new| hook.on_round(query, round, new)));
    }
    let stats = executor.run();
    let virtual_ms = engine.now();
    let round_tasks = engine.round_tasks().to_vec();
    let id = job.id;
    let err = engine.take_error();
    // One `runtime.query` fact per query: metrics folds it into the
    // ok/failed counters; external sinks read the makespan off it.
    engine.trace().emit(Event::instant(
        SpanId::root(),
        names::QUERY,
        virtual_ms,
        kv![q => id, ok => err.is_none(), ms => virtual_ms],
    ));
    match err {
        Some(e) => (id, Err(e)),
        None => (
            id,
            Ok(QueryResult {
                query: id,
                bindings: stats.answer_bindings(),
                tasks_asked: stats.tasks_asked,
                rounds: stats.rounds,
                assignments: stats.assignments,
                tasks_saved: stats.tasks_saved,
                round_tasks,
                virtual_ms,
                cancelled: stats.cancelled,
            }),
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdb_core::model::PartKind;

    /// A small single-join graph: `a_i` joins `b_j` iff `i % nb == j`.
    pub(crate) fn join_query(id: u64, na: usize, nb: usize) -> QueryJob {
        let mut g = QueryGraph::new();
        let a = g.add_part(PartKind::Table { name: format!("A{id}") });
        let b = g.add_part(PartKind::Table { name: format!("B{id}") });
        let an: Vec<NodeId> = (0..na).map(|i| g.add_node(a, None, format!("a{i}"))).collect();
        let bn: Vec<NodeId> = (0..nb).map(|i| g.add_node(b, None, format!("b{i}"))).collect();
        let p = g.add_predicate(a, b, true, "A~B");
        let mut truth = EdgeTruth::new();
        for (i, &x) in an.iter().enumerate() {
            for (j, &y) in bn.iter().enumerate() {
                let e = g.add_edge(x, y, p, 0.5);
                truth.insert(e, i % nb == j);
            }
        }
        QueryJob { id, graph: g, truth }
    }

    fn jobs(n: u64) -> Vec<QueryJob> {
        (0..n).map(|i| join_query(i, 4, 3)).collect()
    }

    #[test]
    fn a_fleet_completes_and_reports_in_id_order() {
        let cfg = RuntimeConfig { threads: 4, ..RuntimeConfig::default() };
        let report = RuntimeExecutor::new(cfg).run(jobs(12));
        assert_eq!(report.results.len(), 12);
        assert_eq!(report.ok_count(), 12);
        let ids: Vec<u64> = report.results.iter().map(|&(id, _)| id).collect();
        assert_eq!(ids, (0..12).collect::<Vec<_>>());
        assert!(report.metrics.rounds > 0);
        assert!(report.metrics.tasks_dispatched > 0);
    }

    #[test]
    fn perfect_workers_recover_the_true_joins() {
        let cfg = RuntimeConfig {
            threads: 2,
            worker_accuracies: vec![1.0; 20],
            ..RuntimeConfig::default()
        };
        let report = RuntimeExecutor::new(cfg).run(jobs(3));
        for (_, r) in &report.results {
            let q = r.as_ref().expect("no faults, no failures");
            assert_eq!(q.bindings.len(), 4, "each a_i joins exactly one b_j");
        }
    }

    #[test]
    fn report_answers_is_reproducible_within_a_thread_count() {
        let mk = || {
            let cfg = RuntimeConfig { threads: 3, seed: 42, ..RuntimeConfig::default() };
            RuntimeExecutor::new(cfg).run(jobs(6)).answers()
        };
        assert_eq!(mk(), mk());
    }

    #[test]
    fn reuse_cache_compounds_across_fleet_runs() {
        // The fleet's queries share node labels and truth, so after the
        // first run absorbs its answers, a second run over the same cache
        // resolves everything by entailment and dispatches almost nothing.
        let cache = Arc::new(ReuseCache::new());
        let cfg = RuntimeConfig {
            threads: 4,
            worker_accuracies: vec![1.0; 20],
            reuse: Some(Arc::clone(&cache)),
            ..RuntimeConfig::default()
        };
        let exec = RuntimeExecutor::new(cfg);
        let first = exec.run(jobs(4));
        assert_eq!(first.ok_count(), 4);
        assert!(!cache.is_empty(), "absorb fed the cache");
        let second = exec.run(jobs(4));
        assert_eq!(second.ok_count(), 4);
        assert_eq!(first.bindings_text(), second.bindings_text());
        assert!(second.metrics.tasks_saved > 0, "second run hits the cache");
        assert!(
            second.metrics.tasks_dispatched < first.metrics.tasks_dispatched,
            "reuse must reduce dispatch: {} -> {}",
            first.metrics.tasks_dispatched,
            second.metrics.tasks_dispatched
        );
        for (_, r) in &second.results {
            assert!(r.as_ref().unwrap().tasks_saved > 0);
        }
    }

    #[test]
    fn reuse_matches_cache_off_bindings() {
        // Perfect workers and transitively-consistent truth: the entailed
        // answers are the true answers, so reuse changes cost, never the
        // result.
        let run = |reuse: Option<Arc<ReuseCache>>| {
            let cfg = RuntimeConfig {
                threads: 2,
                worker_accuracies: vec![1.0; 20],
                reuse,
                ..RuntimeConfig::default()
            };
            RuntimeExecutor::new(cfg).run(jobs(5)).bindings_text()
        };
        assert_eq!(run(None), run(Some(Arc::new(ReuseCache::new()))));
    }

    #[test]
    fn faults_surface_per_query_without_sinking_the_fleet() {
        // Dropout-everything plan with a tiny retry budget: every query
        // fails with a typed error, and the run still terminates.
        let cfg = RuntimeConfig {
            threads: 4,
            worker_accuracies: vec![1.0; 30],
            fault_plan: FaultPlan::none().with_dropout(1.0),
            retry: RetryPolicy { deadline_ms: 1_000, max_retries: 1 },
            ..RuntimeConfig::default()
        };
        let report = RuntimeExecutor::new(cfg).run(jobs(5));
        assert_eq!(report.failed_count(), 5);
        for (_, r) in &report.results {
            assert!(matches!(r, Err(RuntimeError::RetryBudgetExhausted { .. })));
        }
        assert_eq!(report.metrics.queries_failed, 5);
    }

    #[test]
    fn failed_queries_never_feed_the_reuse_cache() {
        // Dropout-everything: every query latches a fatal error, the
        // engine stops dispatching, and the executor's remaining rounds
        // color edges with zero collected votes. None of that is crowd
        // evidence — the cache must stay empty, or the vacuous colors
        // would beat real answers in every later run sharing the cache.
        let cache = Arc::new(ReuseCache::new());
        let cfg = RuntimeConfig {
            threads: 4,
            worker_accuracies: vec![1.0; 30],
            fault_plan: FaultPlan::none().with_dropout(1.0),
            retry: RetryPolicy { deadline_ms: 1_000, max_retries: 1 },
            reuse: Some(Arc::clone(&cache)),
            ..RuntimeConfig::default()
        };
        let report = RuntimeExecutor::new(cfg).run(jobs(5));
        assert_eq!(report.failed_count(), 5);
        assert!(cache.is_empty(), "failed queries contributed {} answers", cache.len());

        // A healthy run over the same (still-empty) cache then answers
        // exactly as a cache-off run would.
        let healthy = |reuse: Option<Arc<ReuseCache>>| {
            let cfg = RuntimeConfig {
                threads: 2,
                worker_accuracies: vec![1.0; 20],
                reuse,
                ..RuntimeConfig::default()
            };
            RuntimeExecutor::new(cfg).run(jobs(3)).bindings_text()
        };
        assert_eq!(healthy(Some(cache)), healthy(None));
    }

    /// A settle sink that records calls and can be told to reject them.
    #[derive(Debug, Default)]
    struct RecordingSink {
        settled: Mutex<Vec<(u64, usize)>>,
        fail: bool,
    }

    impl SettleSink for RecordingSink {
        fn settle(&self, query: u64, facts: &[SettledFact]) -> Result<(), String> {
            if self.fail {
                return Err("injected durability failure".into());
            }
            self.settled.lock().expect("sink poisoned").push((query, facts.len()));
            Ok(())
        }
    }

    #[test]
    fn settle_hook_runs_before_absorb_in_query_id_order() {
        let cache = Arc::new(ReuseCache::new());
        let sink = Arc::new(RecordingSink::default());
        let cfg = RuntimeConfig {
            threads: 4,
            worker_accuracies: vec![1.0; 20],
            reuse: Some(Arc::clone(&cache)),
            settle: Some(SettleHook::new(Arc::clone(&sink) as Arc<dyn SettleSink>)),
            ..RuntimeConfig::default()
        };
        let report = RuntimeExecutor::new(cfg).run(jobs(4));
        assert_eq!(report.ok_count(), 4);
        assert!(!cache.is_empty(), "absorb still feeds the cache when settling succeeds");
        let settled = sink.settled.lock().unwrap().clone();
        let ids: Vec<u64> = settled.iter().map(|&(q, _)| q).collect();
        assert_eq!(ids, vec![0, 1, 2, 3], "settled in ascending query-id order");
        // Every fact the cache holds went through the sink first; sessions
        // may settle overlapping facts (absorb dedups), never fewer.
        let total: usize = settled.iter().map(|&(_, n)| n).sum();
        assert!(total >= cache.len(), "settled {total} < cached {}", cache.len());
    }

    #[test]
    fn failed_queries_are_never_settled() {
        // The durability mirror of `failed_queries_never_feed_the_reuse_
        // cache`: a failed query's partial answers must not reach the
        // settle sink either, or recovery would resurrect answers the
        // live engine discarded.
        let cache = Arc::new(ReuseCache::new());
        let sink = Arc::new(RecordingSink::default());
        let cfg = RuntimeConfig {
            threads: 4,
            worker_accuracies: vec![1.0; 30],
            fault_plan: FaultPlan::none().with_dropout(1.0),
            retry: RetryPolicy { deadline_ms: 1_000, max_retries: 1 },
            reuse: Some(Arc::clone(&cache)),
            settle: Some(SettleHook::new(Arc::clone(&sink) as Arc<dyn SettleSink>)),
            ..RuntimeConfig::default()
        };
        let report = RuntimeExecutor::new(cfg).run(jobs(5));
        assert_eq!(report.failed_count(), 5);
        assert!(sink.settled.lock().unwrap().is_empty(), "failed queries reached the sink");
        assert!(cache.is_empty());
    }

    #[test]
    fn settle_failure_keeps_answers_out_of_the_cache() {
        // A sink that cannot make answers durable must also keep them out
        // of the shared cache: reuse may never hand out an answer that
        // disk would not remember after a crash.
        let cache = Arc::new(ReuseCache::new());
        let sink = Arc::new(RecordingSink { fail: true, ..RecordingSink::default() });
        let cfg = RuntimeConfig {
            threads: 2,
            worker_accuracies: vec![1.0; 20],
            reuse: Some(Arc::clone(&cache)),
            settle: Some(SettleHook::new(sink as Arc<dyn SettleSink>)),
            ..RuntimeConfig::default()
        };
        let report = RuntimeExecutor::new(cfg).run(jobs(3));
        assert_eq!(report.ok_count(), 3, "queries themselves still succeed");
        assert!(cache.is_empty(), "unsettled answers leaked into the cache");
    }

    #[test]
    fn moderate_fault_rates_still_answer() {
        let cfg = RuntimeConfig {
            threads: 4,
            worker_accuracies: vec![0.95; 30],
            fault_plan: FaultPlan::uniform(7, 0.2),
            // A "slow" response (4x of a ~60s mean) usually misses the
            // default 2-minute deadline too, so give the fleet a deadline
            // and retry budget sized for the injected fault rate.
            retry: RetryPolicy { deadline_ms: 300_000, max_retries: 8 },
            ..RuntimeConfig::default()
        };
        let report = RuntimeExecutor::new(cfg).run(jobs(6));
        assert_eq!(report.ok_count(), 6, "answers: {}", report.answers());
        let m = &report.metrics;
        assert!(m.dropouts + m.abandons + m.slowdowns > 0, "faults were injected");
        assert!(m.reassignments > 0, "dropped work was reassigned");
    }
}
