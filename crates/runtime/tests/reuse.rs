//! Answer-reuse integration: the cross-query cache must change *cost*,
//! never *answers* — and must not cost the runtime its deterministic
//! replay guarantee at any thread count.

use std::collections::HashMap;
use std::sync::Arc;

use cdb_core::model::{NodeId, PartKind};
use cdb_core::{QueryGraph, ReuseCache};
use cdb_runtime::{QueryJob, RetryPolicy, RuntimeConfig, RuntimeExecutor, RuntimeReport};
use proptest::prelude::*;

/// A self-join query over a clustered label universe: both parts hold the
/// same `items` labels and the truth marks `(i, j)` matching iff they
/// share a cluster — a partition, so recorded answers are transitively
/// consistent and entailment can only ever infer *true* facts.
fn selfjoin(id: u64, items: usize, clusters: usize) -> QueryJob {
    let mut g = QueryGraph::new();
    let a = g.add_part(PartKind::Table { name: "R".into() });
    let b = g.add_part(PartKind::Table { name: "R_dup".into() });
    let an: Vec<NodeId> = (0..items).map(|i| g.add_node(a, None, format!("item {i}"))).collect();
    let bn: Vec<NodeId> = (0..items).map(|i| g.add_node(b, None, format!("item {i}"))).collect();
    let p = g.add_predicate(a, b, true, "R.v~R.v");
    let mut truth = HashMap::new();
    for (i, &x) in an.iter().enumerate() {
        for (j, &y) in bn.iter().enumerate() {
            let e = g.add_edge(x, y, p, 0.5);
            truth.insert(e, i % clusters == j % clusters);
        }
    }
    QueryJob { id, graph: g, truth }
}

fn fleet(n: u64) -> Vec<QueryJob> {
    (0..n).map(|i| selfjoin(i, 6, 3)).collect()
}

fn run(threads: usize, seed: u64, accuracy: f64, reuse: Option<Arc<ReuseCache>>) -> RuntimeReport {
    let cfg = RuntimeConfig {
        threads,
        seed,
        worker_accuracies: vec![accuracy; 25],
        // Generous retry budget: under the default policy the all-pairs
        // batches occasionally exhaust retries on latency tails alone,
        // and a query that fails cache-OFF but dispatches less (and so
        // succeeds) cache-ON would make the modes legitimately disagree.
        retry: RetryPolicy { deadline_ms: 300_000, max_retries: 8 },
        reuse,
        ..RuntimeConfig::default()
    };
    RuntimeExecutor::new(cfg).run(fleet(5))
}

/// Perfect workers + transitively consistent truth: every entailed answer
/// is a true answer, so enabling the cache cannot change any binding.
#[test]
fn cache_on_and_off_agree_on_bindings_at_1_4_and_8_threads() {
    let baseline = run(1, 11, 1.0, None).bindings_text();
    assert!(!baseline.is_empty());
    for &threads in &[1usize, 4, 8] {
        let off = run(threads, 11, 1.0, None);
        let on = run(threads, 11, 1.0, Some(Arc::new(ReuseCache::new())));
        assert_eq!(off.bindings_text(), baseline, "threads={threads}");
        assert_eq!(on.bindings_text(), baseline, "threads={threads}");
        assert_eq!(on.ok_count(), 5);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]
    /// With the cache ON and noisy workers, the full `answers()` artifact
    /// (task counts included) is still byte-identical across thread
    /// counts, over TWO fleet passes sharing one cache: the snapshot is
    /// taken before the scatter and sessions absorb in query-id order, so
    /// nothing a query sees depends on scheduling.
    #[test]
    fn cached_replay_is_byte_identical_across_thread_counts(seed in 0u64..5_000) {
        let passes = |threads: usize| {
            let cache = Arc::new(ReuseCache::new());
            let first = run(threads, seed, 0.85, Some(Arc::clone(&cache)));
            let second = run(threads, seed, 0.85, Some(Arc::clone(&cache)));
            format!("{}{}", first.answers(), second.answers())
        };
        let one = passes(1);
        prop_assert!(!one.is_empty());
        prop_assert_eq!(&one, &passes(4));
        prop_assert_eq!(&one, &passes(8));
    }
}

/// Cross-run reuse on the self-join workload: a warm cache resolves
/// (almost) everything by entailment, cutting dispatch by far more than
/// the 20% acceptance bar, and per-query `tasks_saved` accounts for it.
#[test]
fn warm_cache_saves_tasks_and_reports_per_query() {
    let cache = Arc::new(ReuseCache::new());
    let cold = run(4, 3, 1.0, Some(Arc::clone(&cache)));
    assert!(!cache.is_empty(), "first pass fed the cache");
    let warm = run(4, 3, 1.0, Some(Arc::clone(&cache)));
    assert_eq!(cold.bindings_text(), warm.bindings_text());
    assert!(
        (warm.metrics.tasks_dispatched as f64) <= 0.8 * cold.metrics.tasks_dispatched as f64,
        "warm pass must dispatch >= 20% less: {} -> {}",
        cold.metrics.tasks_dispatched,
        warm.metrics.tasks_dispatched
    );
    assert!(warm.metrics.tasks_saved > 0);
    assert!(warm.metrics.money_saved_cents > 0);
    for (_, r) in &warm.results {
        assert!(r.as_ref().unwrap().tasks_saved > 0, "every query hits the warm cache");
    }
}
