//! Deterministic replay: a `(seed, fault_plan)` pair must produce
//! byte-identical query answers regardless of thread count.

use std::collections::HashMap;

use cdb_core::model::{NodeId, PartKind};
use cdb_core::QueryGraph;
use cdb_runtime::{FaultPlan, QueryJob, RetryPolicy, RuntimeConfig, RuntimeExecutor};
use proptest::prelude::*;

/// A single-join query graph: `a_i` joins `b_j` iff `i % nb == j`.
fn join_query(id: u64, na: usize, nb: usize) -> QueryJob {
    let mut g = QueryGraph::new();
    let a = g.add_part(PartKind::Table { name: format!("A{id}") });
    let b = g.add_part(PartKind::Table { name: format!("B{id}") });
    let an: Vec<NodeId> = (0..na).map(|i| g.add_node(a, None, format!("a{i}"))).collect();
    let bn: Vec<NodeId> = (0..nb).map(|i| g.add_node(b, None, format!("b{i}"))).collect();
    let p = g.add_predicate(a, b, true, "A~B");
    let mut truth = HashMap::new();
    for (i, &x) in an.iter().enumerate() {
        for (j, &y) in bn.iter().enumerate() {
            let e = g.add_edge(x, y, p, 0.5);
            truth.insert(e, i % nb == j);
        }
    }
    QueryJob { id, graph: g, truth }
}

fn run_with(threads: usize, seed: u64, fault_rate: f64) -> String {
    let cfg = RuntimeConfig {
        threads,
        seed,
        worker_accuracies: vec![0.9; 25],
        fault_plan: FaultPlan::uniform(seed ^ 0xF00D, fault_rate),
        retry: RetryPolicy { deadline_ms: 300_000, max_retries: 8 },
        ..RuntimeConfig::default()
    };
    let jobs: Vec<QueryJob> = (0..6).map(|i| join_query(i, 4, 3)).collect();
    RuntimeExecutor::new(cfg).run(jobs).answers()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(5))]
    #[test]
    fn answers_are_byte_identical_at_1_2_4_8_and_16_threads(
        seed in 0u64..10_000,
        fault_rate in 0.0f64..0.25,
    ) {
        let one = run_with(1, seed, fault_rate);
        prop_assert!(!one.is_empty());
        // 2 exercises minimal-contention stealing, 16 oversubscribes the
        // 6-query fleet so some threads must go idle and steal.
        for threads in [2usize, 4, 8, 16] {
            prop_assert_eq!(&one, &run_with(threads, seed, fault_rate), "threads={}", threads);
        }
    }
}

/// A 3-part chain `A ⋈ B ⋈ C`: the multi-join shape where expectation
/// scoring runs death cascades across the middle part. `b_j` matches
/// `a_i` iff `i % nb == j` and `c_k` iff `j % nc == k % nb`.
fn chain_query(id: u64, na: usize, nb: usize, nc: usize) -> QueryJob {
    let mut g = QueryGraph::new();
    let a = g.add_part(PartKind::Table { name: format!("A{id}") });
    let b = g.add_part(PartKind::Table { name: format!("B{id}") });
    let c = g.add_part(PartKind::Table { name: format!("C{id}") });
    let an: Vec<NodeId> = (0..na).map(|i| g.add_node(a, None, format!("a{i}"))).collect();
    let bn: Vec<NodeId> = (0..nb).map(|i| g.add_node(b, None, format!("b{i}"))).collect();
    let cn: Vec<NodeId> = (0..nc).map(|i| g.add_node(c, None, format!("c{i}"))).collect();
    let pab = g.add_predicate(a, b, true, "A~B");
    let pbc = g.add_predicate(b, c, true, "B~C");
    let mut truth = HashMap::new();
    for (i, &x) in an.iter().enumerate() {
        for (j, &y) in bn.iter().enumerate() {
            let e = g.add_edge(x, y, pab, 0.6);
            truth.insert(e, i % nb == j);
        }
    }
    for (j, &y) in bn.iter().enumerate() {
        for (k, &z) in cn.iter().enumerate() {
            let e = g.add_edge(y, z, pbc, 0.4);
            truth.insert(e, j % nc == k % nb);
        }
    }
    QueryJob { id, graph: g, truth }
}

#[test]
fn multi_join_answers_are_byte_identical_at_1_4_and_8_threads() {
    // The expectation optimizer (the default selection strategy) carries
    // incremental state across rounds inside each query's executor; the
    // answer transcript must not depend on how queries interleave across
    // threads.
    let run = |threads: usize| {
        let cfg = RuntimeConfig {
            threads,
            seed: 42,
            worker_accuracies: vec![0.9; 25],
            fault_plan: FaultPlan::uniform(42 ^ 0xF00D, 0.1),
            retry: RetryPolicy { deadline_ms: 300_000, max_retries: 8 },
            ..RuntimeConfig::default()
        };
        let jobs: Vec<QueryJob> = (0..6).map(|i| chain_query(i, 3, 3, 2)).collect();
        RuntimeExecutor::new(cfg).run(jobs).answers()
    };
    let reference = run(1);
    assert!(reference.contains("q0") && reference.contains("q5"));
    assert_eq!(reference, run(4));
    assert_eq!(reference, run(8));
}

#[test]
fn replay_is_stable_under_forced_dropouts_too() {
    let run = |threads: usize| {
        let cfg = RuntimeConfig {
            threads,
            seed: 77,
            worker_accuracies: vec![0.95; 20],
            fault_plan: FaultPlan::uniform(3, 0.1)
                .drop_worker(cdb_crowd::WorkerId(0), 0)
                .drop_worker(cdb_crowd::WorkerId(5), 90_000),
            retry: RetryPolicy { deadline_ms: 300_000, max_retries: 8 },
            ..RuntimeConfig::default()
        };
        let jobs: Vec<QueryJob> = (0..8).map(|i| join_query(i, 5, 2)).collect();
        RuntimeExecutor::new(cfg).run(jobs).answers()
    };
    let reference = run(1);
    assert!(reference.contains("q0") && reference.contains("q7"));
    assert_eq!(reference, run(4));
    assert_eq!(reference, run(8));
}

#[test]
fn different_seeds_give_different_transcripts() {
    // Sanity check that the replay artifact actually depends on the seed
    // (otherwise the byte-identity assertions above would be vacuous).
    let a = run_with(2, 1, 0.15);
    let b = run_with(2, 2, 0.15);
    assert_ne!(a, b);
}
