//! Observability integration: the event stream a traced run emits must
//! (a) *conserve* — per-span attribution rolls up to exactly the same
//! totals as the runtime's aggregate counters, (b) be *deterministic* —
//! canonically sorted, the stream is byte-identical at any thread count,
//! and (c) *expose* cleanly — Chrome trace JSON and Prometheus text both
//! parse.

use std::collections::HashMap;
use std::sync::Arc;

use cdb_core::model::{NodeId, PartKind};
use cdb_core::QueryGraph;
use cdb_obsv::event::canonical_sort;
use cdb_obsv::{chrome_trace, Attribution, Event, Ring, Trace};
use cdb_runtime::{
    FaultPlan, MetricsSnapshot, QueryJob, RetryPolicy, RuntimeConfig, RuntimeExecutor,
};
use proptest::prelude::*;

/// A single-join query graph: `a_i` joins `b_j` iff `i % nb == j`.
fn join_query(id: u64, na: usize, nb: usize) -> QueryJob {
    let mut g = QueryGraph::new();
    let a = g.add_part(PartKind::Table { name: format!("A{id}") });
    let b = g.add_part(PartKind::Table { name: format!("B{id}") });
    let an: Vec<NodeId> = (0..na).map(|i| g.add_node(a, None, format!("a{i}"))).collect();
    let bn: Vec<NodeId> = (0..nb).map(|i| g.add_node(b, None, format!("b{i}"))).collect();
    let p = g.add_predicate(a, b, true, "A~B");
    let mut truth = HashMap::new();
    for (i, &x) in an.iter().enumerate() {
        for (j, &y) in bn.iter().enumerate() {
            let e = g.add_edge(x, y, p, 0.5);
            truth.insert(e, i % nb == j);
        }
    }
    QueryJob { id, graph: g, truth }
}

/// Run a small fleet with a ring-buffer collector attached and hand back
/// the drained event stream alongside the frozen aggregate counters.
fn run_traced(threads: usize, seed: u64, fault_rate: f64) -> (Vec<Event>, MetricsSnapshot) {
    let ring = Arc::new(Ring::with_capacity(1 << 16));
    let cfg = RuntimeConfig {
        threads,
        seed,
        worker_accuracies: vec![0.9; 25],
        fault_plan: FaultPlan::uniform(seed ^ 0xF00D, fault_rate),
        retry: RetryPolicy { deadline_ms: 300_000, max_retries: 8 },
        trace: Trace::collector(ring.clone()),
        ..RuntimeConfig::default()
    };
    let jobs: Vec<QueryJob> = (0..6).map(|i| join_query(i, 4, 3)).collect();
    let report = RuntimeExecutor::new(cfg).run(jobs);
    assert_eq!(ring.dropped(), 0, "ring too small for the test fleet");
    (ring.drain(), report.metrics)
}

/// Sorted canonical rendering — the replay artifact for the event stream.
fn canonical_transcript(mut events: Vec<Event>) -> String {
    canonical_sort(&mut events);
    let mut s = String::new();
    for ev in &events {
        s.push_str(&ev.canonical_line());
        s.push('\n');
    }
    s
}

/// Every cent, retry, round and millisecond the aggregate counters saw
/// must be recoverable from the event stream — nothing double-counted,
/// nothing lost.
#[test]
fn attribution_conserves_the_aggregate_counters() {
    let (events, snap) = run_traced(4, 99, 0.12);
    let attr = Attribution::from_events(&events);
    let t = attr.conservation();
    assert_eq!(t.dispatched, snap.tasks_dispatched);
    assert_eq!(t.retries, snap.retries);
    assert_eq!(t.reassignments, snap.reassignments);
    assert_eq!(t.timeouts, snap.timeouts);
    assert_eq!(t.faults, snap.dropouts + snap.abandons + snap.slowdowns);
    assert_eq!(t.rounds, snap.rounds);
    assert_eq!(t.queries, snap.queries_ok + snap.queries_failed);
    assert_eq!(t.queries_ok, snap.queries_ok);
    assert_eq!(t.virtual_ms, snap.virtual_ms_total);
    assert_eq!(t.cost_cents, snap.cost_cents);
    // And the rollup is real: every query attributed, money on plan nodes.
    assert_eq!(attr.queries.len(), 6);
    let attributed_cents: u64 =
        attr.queries.values().flat_map(|q| q.per_node.values()).map(|n| n.cost_cents).sum();
    assert_eq!(attributed_cents, snap.cost_cents);
}

/// With answer reuse enabled, the conservation law extends to the saved
/// counters: `reuse.hit` events must roll up to exactly the aggregate
/// `tasks_saved` / `money_saved_cents`, at every thread count.
#[test]
fn saved_cost_conserves_with_reuse_enabled_at_1_4_and_8_threads() {
    use cdb_core::ReuseCache;

    for &threads in &[1usize, 4, 8] {
        let cache = Arc::new(ReuseCache::new());
        let run = |ring: &Arc<Ring>| {
            let cfg = RuntimeConfig {
                threads,
                seed: 23,
                worker_accuracies: vec![0.9; 25],
                retry: RetryPolicy { deadline_ms: 300_000, max_retries: 8 },
                trace: Trace::collector(ring.clone()),
                reuse: Some(Arc::clone(&cache)),
                ..RuntimeConfig::default()
            };
            let jobs: Vec<QueryJob> = (0..6).map(|i| join_query(i, 4, 3)).collect();
            RuntimeExecutor::new(cfg).run(jobs)
        };
        // Two passes over one ring: pass one warms the cache, pass two
        // reuses; both passes' events conserve against the summed metrics.
        let ring = Arc::new(Ring::with_capacity(1 << 16));
        let first = run(&ring);
        let second = run(&ring);
        assert_eq!(ring.dropped(), 0);
        let t = Attribution::from_events(&ring.drain()).conservation();
        assert!(second.metrics.tasks_saved > 0, "warm pass must hit the cache");
        assert_eq!(t.tasks_saved, first.metrics.tasks_saved + second.metrics.tasks_saved);
        assert_eq!(
            t.money_saved_cents,
            first.metrics.money_saved_cents + second.metrics.money_saved_cents
        );
        assert_eq!(t.dispatched, first.metrics.tasks_dispatched + second.metrics.tasks_dispatched);
        assert_eq!(t.cost_cents, first.metrics.cost_cents + second.metrics.cost_cents);
    }
}

#[test]
fn fault_free_run_attributes_zero_faults() {
    let (events, snap) = run_traced(2, 7, 0.0);
    let t = Attribution::from_events(&events).conservation();
    assert_eq!(t.faults, 0);
    assert_eq!(t.retries, snap.retries);
    assert_eq!(snap.queries_failed, 0);
    assert_eq!(t.queries_ok, 6);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(5))]
    /// The canonical event transcript is a pure function of
    /// `(seed, fault_plan)` — thread count must not leak into it.
    #[test]
    fn span_streams_are_byte_identical_at_1_4_and_8_threads(
        seed in 0u64..10_000,
        fault_rate in 0.0f64..0.25,
    ) {
        let (e1, s1) = run_traced(1, seed, fault_rate);
        let (e4, s4) = run_traced(4, seed, fault_rate);
        let (e8, s8) = run_traced(8, seed, fault_rate);
        let one = canonical_transcript(e1);
        prop_assert!(!one.is_empty());
        prop_assert_eq!(&one, &canonical_transcript(e4));
        prop_assert_eq!(&one, &canonical_transcript(e8));
        // The counters the streams fold into agree too.
        prop_assert_eq!(&s1, &s4);
        prop_assert_eq!(&s1, &s8);
    }
}

#[test]
fn chrome_trace_and_prometheus_expositions_are_wellformed() {
    let (events, snap) = run_traced(2, 41, 0.1);
    let trace = chrome_trace(&events);
    cdb_obsv::json::check_balanced(&trace).expect("chrome trace JSON balanced");
    assert!(trace.contains("\"traceEvents\""));
    assert!(trace.contains("\"ph\":"));
    let prom = snap.to_prometheus();
    cdb_obsv::validate_exposition(&prom).expect("prometheus exposition valid");
    let json = Attribution::from_events(&events).to_json();
    cdb_obsv::json::check_balanced(&json).expect("attribution JSON balanced");
}
