//! Truth inference over *partial* answer sets.
//!
//! The concurrent runtime collects answers as they arrive instead of
//! waiting for a round barrier, so inference must cope with incomplete
//! redundancy: some answers are still in flight, some never arrive
//! (dropped or abandoned workers), and some arrive after their deadline.
//! The CDAS-style rule here terminates a task early when the votes already
//! in hand cannot be overturned by the votes still outstanding — saving
//! both money (unneeded assignments can be cancelled) and latency (the
//! task closes before slow workers respond).

use crate::majority_vote;

/// What a partial vote set implies about a task.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PartialDecision {
    /// The leading choice can no longer be overtaken: decide now.
    Decided(usize),
    /// The outcome still depends on outstanding answers.
    NeedMore,
    /// All expected answers are in (or lost); decide by majority.
    Exhausted(usize),
}

/// CDAS-style early termination: given the `votes` collected so far for a
/// single-choice task with `num_choices` options and `redundancy` total
/// planned assignments, decide as soon as the leader's margin exceeds the
/// number of answers still outstanding.
///
/// Ties and exhausted vote sets fall back to [`majority_vote`]'s
/// lowest-index tie-break, so a `Decided`/`Exhausted` verdict always
/// matches what full-redundancy majority voting *could still* return.
pub fn early_decision(votes: &[usize], num_choices: usize, redundancy: usize) -> PartialDecision {
    debug_assert!(num_choices >= 1);
    // An out-of-range vote (a malformed crowd answer) consumed its
    // assignment but carries no signal: it counts toward the answers
    // received, never toward any choice.
    let valid: Vec<usize> = votes.iter().copied().filter(|&v| v < num_choices).collect();
    let outstanding = redundancy.saturating_sub(votes.len());
    if outstanding == 0 {
        return PartialDecision::Exhausted(majority_vote(&valid, num_choices));
    }
    let mut counts = vec![0usize; num_choices];
    for &v in &valid {
        counts[v] += 1;
    }
    let leader = majority_vote(&valid, num_choices);
    let runner_up =
        counts.iter().enumerate().filter(|&(i, _)| i != leader).map(|(_, &c)| c).max().unwrap_or(0);
    // Even if every outstanding vote went to the strongest rival, could it
    // beat (or tie-break past) the leader? Rivals with a higher index than
    // the leader must strictly exceed it; lower-index rivals win ties.
    let lead = counts[leader] - runner_up;
    if lead > outstanding {
        PartialDecision::Decided(leader)
    } else {
        PartialDecision::NeedMore
    }
}

/// Shannon entropy (in bits) of the empirical vote distribution over
/// `num_choices` options. 0 for unanimous or empty vote sets, 1 bit for a
/// perfectly split binary vote — the "how contested is this task" signal
/// the observability layer attaches to every inference decision.
pub fn vote_entropy(votes: &[usize], num_choices: usize) -> f64 {
    if votes.is_empty() || num_choices < 2 {
        return 0.0;
    }
    let mut counts = vec![0usize; num_choices];
    let mut total = 0usize;
    for &v in votes {
        if v < num_choices {
            counts[v] += 1;
            total += 1;
        }
    }
    if total == 0 {
        return 0.0;
    }
    let mut h = 0.0;
    for &c in &counts {
        if c > 0 {
            let p = c as f64 / total as f64;
            h -= p * p.log2();
        }
    }
    h
}

/// Convenience: the decided choice, if any (early or exhausted).
pub fn decided_choice(votes: &[usize], num_choices: usize, redundancy: usize) -> Option<usize> {
    match early_decision(votes, num_choices, redundancy) {
        PartialDecision::Decided(c) | PartialDecision::Exhausted(c) => Some(c),
        PartialDecision::NeedMore => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unanimous_majority_terminates_early() {
        // 3 yes votes, redundancy 5: the 2 outstanding votes cannot flip it.
        assert_eq!(early_decision(&[0, 0, 0], 2, 5), PartialDecision::Decided(0));
        assert_eq!(decided_choice(&[0, 0, 0], 2, 5), Some(0));
    }

    #[test]
    fn contested_votes_need_more() {
        // 2-1 with 2 outstanding: the trailing choice can still win.
        assert_eq!(early_decision(&[0, 1, 0], 2, 5), PartialDecision::NeedMore);
        assert_eq!(decided_choice(&[0, 1, 0], 2, 5), None);
        // 3-1 with 1 outstanding: lead 2 > 1 outstanding, decided.
        assert_eq!(early_decision(&[0, 1, 0, 0], 2, 5), PartialDecision::Decided(0));
    }

    #[test]
    fn exact_margin_is_not_enough() {
        // Lead equals outstanding: a sweep by the rival forces a tie, and a
        // lower-index rival wins ties — so it is not decided yet.
        assert_eq!(early_decision(&[1, 1], 2, 4), PartialDecision::NeedMore);
        // Leader 0 with lead == outstanding: a tie breaks toward 0 anyway,
        // but the conservative rule still waits.
        assert_eq!(early_decision(&[0, 0], 2, 4), PartialDecision::NeedMore);
    }

    #[test]
    fn exhausted_set_decides_by_majority() {
        assert_eq!(early_decision(&[0, 1, 1], 2, 3), PartialDecision::Exhausted(1));
        // Short vote sets (lost answers) exhaust too.
        assert_eq!(early_decision(&[1], 2, 1), PartialDecision::Exhausted(1));
        // Empty + zero redundancy: majority's tie-break gives choice 0.
        assert_eq!(early_decision(&[], 2, 0), PartialDecision::Exhausted(0));
    }

    #[test]
    fn three_way_races_track_the_runner_up() {
        // Counts 3/2/0, redundancy 6 → one outstanding; lead 1 is not > 1.
        assert_eq!(early_decision(&[0, 1, 0, 1, 0], 3, 6), PartialDecision::NeedMore);
        // Counts 4/1/0, redundancy 6 → one outstanding; lead 3 > 1.
        assert_eq!(early_decision(&[0, 0, 1, 0, 0], 3, 6), PartialDecision::Decided(0));
    }

    #[test]
    fn vote_entropy_measures_contestedness() {
        assert_eq!(vote_entropy(&[], 2), 0.0);
        assert_eq!(vote_entropy(&[0, 0, 0], 2), 0.0);
        assert!((vote_entropy(&[0, 1], 2) - 1.0).abs() < 1e-12);
        assert!((vote_entropy(&[0, 1, 2, 3], 4) - 2.0).abs() < 1e-12);
        // Out-of-range votes are ignored, degenerate choice sets are 0.
        assert_eq!(vote_entropy(&[9, 9], 2), 0.0);
        assert_eq!(vote_entropy(&[0, 0], 1), 0.0);
        // 3-1 split: between unanimous and even.
        let h = vote_entropy(&[0, 0, 0, 1], 2);
        assert!(h > 0.0 && h < 1.0);
    }

    #[test]
    fn early_decision_agrees_with_eventual_majority() {
        // Whenever `Decided(c)` fires, no completion of the outstanding
        // votes can make majority_vote return anything else.
        let redundancy = 5;
        for a in 0..3usize {
            for b in 0..3 {
                for c in 0..3 {
                    let votes = [a.min(1), b.min(1), c.min(1)];
                    if let PartialDecision::Decided(ch) = early_decision(&votes, 2, redundancy) {
                        // Adversarial completion: all remaining to the rival.
                        let rival = 1 - ch;
                        let mut full = votes.to_vec();
                        full.extend(std::iter::repeat_n(rival, redundancy - votes.len()));
                        assert_eq!(majority_vote(&full, 2), ch, "votes {votes:?}");
                    }
                }
            }
        }
    }
}
