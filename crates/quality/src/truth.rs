//! Truth inference: majority voting, Bayesian voting (Eq. 2) and EM.

use std::collections::HashMap;

use cdb_crowd::{TaskId, WorkerId};

/// All answers to one single-choice task.
#[derive(Debug, Clone, PartialEq)]
pub struct TaskAnswers {
    /// The task.
    pub task: TaskId,
    /// Number of choices ℓ.
    pub num_choices: usize,
    /// `(worker, chosen index)` pairs.
    pub answers: Vec<(WorkerId, usize)>,
    /// Task difficulty in `[0, 1]` (1.0 = the paper's flat model). On an
    /// easy task (difficulty → 0) even a weak worker is usually right, so
    /// the answer carries little information about the worker's latent
    /// quality; inference weights it accordingly.
    pub difficulty: f64,
}

impl TaskAnswers {
    /// A task under the paper's flat error model (difficulty 1.0).
    pub fn flat(task: TaskId, num_choices: usize, answers: Vec<(WorkerId, usize)>) -> Self {
        TaskAnswers { task, num_choices, answers, difficulty: 1.0 }
    }
}

/// Effective correctness probability of a worker with latent quality `q`
/// on a task of the given difficulty — the simulation's generative model
/// (`cdb_crowd`), shared by inference so EM is well-specified.
pub fn effective_accuracy(q: f64, difficulty: f64) -> f64 {
    let k = 0.9 * (1.0 - difficulty.clamp(0.0, 1.0));
    (q + (1.0 - q) * k).clamp(1e-6, 1.0 - 1e-6)
}

/// Majority voting: the choice with the most votes (ties broken toward the
/// lower index, making the result deterministic). This is the quality
/// strategy of CrowdDB / Qurk / Deco / CrowdOP.
pub fn majority_vote(answers: &[usize], num_choices: usize) -> usize {
    assert!(num_choices > 0, "task must have at least one choice");
    let mut counts = vec![0usize; num_choices];
    for &a in answers {
        assert!(a < num_choices, "answer {a} out of range 0..{num_choices}");
        counts[a] += 1;
    }
    counts
        .iter()
        .enumerate()
        .max_by(|(ia, ca), (ib, cb)| ca.cmp(cb).then(ib.cmp(ia)))
        .map(|(i, _)| i)
        .expect("num_choices > 0")
}

/// Bayesian voting posterior (Eq. 2): the probability of each choice being
/// the truth given worker qualities. A worker of quality `q` answers the
/// truth with probability `q` and any specific wrong choice with
/// probability `(1 - q) / (ℓ - 1)`.
///
/// The prior over choices is uniform. Computation is done in log space for
/// numerical robustness.
pub fn bayesian_posterior(
    answers: &[(WorkerId, usize)],
    qualities: &HashMap<WorkerId, f64>,
    num_choices: usize,
) -> Vec<f64> {
    bayesian_posterior_difficulty(answers, qualities, num_choices, 1.0)
}

/// [`bayesian_posterior`] under the difficulty-aware error model: worker
/// correctness is [`effective_accuracy`]`(q_w, difficulty)` instead of the
/// raw `q_w`. With difficulty 1.0 this is exactly Eq. 2.
pub fn bayesian_posterior_difficulty(
    answers: &[(WorkerId, usize)],
    qualities: &HashMap<WorkerId, f64>,
    num_choices: usize,
    difficulty: f64,
) -> Vec<f64> {
    assert!(num_choices > 0);
    let mut log_p = vec![0.0f64; num_choices];
    for &(w, a) in answers {
        let q0 = qualities.get(&w).copied().unwrap_or(0.7);
        let q = effective_accuracy(q0, difficulty);
        let wrong = ((1.0 - q) / (num_choices.max(2) as f64 - 1.0)).max(1e-12);
        for (i, lp) in log_p.iter_mut().enumerate() {
            *lp += if i == a { q.ln() } else { wrong.ln() };
        }
    }
    // Normalize via log-sum-exp.
    let max = log_p.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let mut p: Vec<f64> = log_p.iter().map(|lp| (lp - max).exp()).collect();
    let sum: f64 = p.iter().sum();
    for v in &mut p {
        *v /= sum;
    }
    p
}

/// EM configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EmConfig {
    /// Initial worker quality (paper default for new workers: 0.7).
    pub initial_quality: f64,
    /// Maximum EM iterations.
    pub max_iters: usize,
    /// Convergence threshold on the max quality change between iterations.
    pub tolerance: f64,
    /// Shrinkage strength: the quality estimate behaves as if the worker
    /// had answered this many extra tasks at `initial_quality`. Stabilizes
    /// workers with few answers (whose raw estimates can dip below 0.5 and
    /// invert their votes) while letting prolific workers' estimates
    /// sharpen.
    pub prior_strength: f64,
}

impl Default for EmConfig {
    fn default() -> Self {
        EmConfig { initial_quality: 0.7, max_iters: 50, tolerance: 1e-4, prior_strength: 6.0 }
    }
}

/// EM inference output.
#[derive(Debug, Clone)]
pub struct EmResult {
    /// Estimated quality per worker.
    pub qualities: HashMap<WorkerId, f64>,
    /// Posterior distribution per task (same order as the input).
    pub posteriors: Vec<Vec<f64>>,
    /// Inferred truth per task: argmax of the posterior.
    pub truths: Vec<usize>,
    /// Iterations actually run.
    pub iterations: usize,
}

/// Estimate worker qualities and task truths jointly with
/// Expectation-Maximization (Dawid-Skene style with a single accuracy
/// parameter per worker, as in the paper).
///
/// * E step: compute each task's posterior over choices by Bayesian voting
///   with the current qualities.
/// * M step: a worker's quality becomes the average posterior probability
///   mass on the choices they picked.
pub fn em_truth_inference(tasks: &[TaskAnswers], cfg: EmConfig) -> EmResult {
    let mut qualities: HashMap<WorkerId, f64> = HashMap::new();
    for t in tasks {
        for &(w, _) in &t.answers {
            qualities.entry(w).or_insert(cfg.initial_quality);
        }
    }

    let mut posteriors: Vec<Vec<f64>> = Vec::new();
    let mut iterations = 0;
    for iter in 0..cfg.max_iters.max(1) {
        iterations = iter + 1;
        // E step: posterior per task under the difficulty-aware model.
        posteriors = tasks
            .iter()
            .map(|t| {
                bayesian_posterior_difficulty(&t.answers, &qualities, t.num_choices, t.difficulty)
            })
            .collect();
        // M step: least-squares estimate of q_w from
        //   E[correct on t] = k_t + q_w (1 − k_t),  k_t = 0.9 (1 − d_t),
        // weighting each task by how informative it is about q (1 − k_t).
        // With all difficulties 1.0 (k = 0) this reduces to the paper's
        // "fraction of posterior mass on the worker's answers".
        let mut acc: HashMap<WorkerId, (f64, f64)> = HashMap::new();
        for (t, post) in tasks.iter().zip(&posteriors) {
            let k = 0.9 * (1.0 - t.difficulty.clamp(0.0, 1.0));
            let info = 1.0 - k;
            for &(w, a) in &t.answers {
                let e = acc.entry(w).or_insert((0.0, 0.0));
                e.0 += (post[a] - k) * info;
                e.1 += info * info;
            }
        }
        let mut max_delta = 0.0f64;
        for (w, (num, den)) in acc {
            // Shrink toward the prior (pseudo-observations) and clamp away
            // from 0/1 so Bayesian voting stays well-defined.
            let lambda = cfg.prior_strength.max(0.0);
            let new_q = ((num + lambda * cfg.initial_quality) / (den + lambda)).clamp(0.05, 0.99);
            let old = qualities.insert(w, new_q).expect("initialized above");
            max_delta = max_delta.max((new_q - old).abs());
        }
        if max_delta < cfg.tolerance {
            break;
        }
    }

    let truths = posteriors
        .iter()
        .map(|p| {
            p.iter()
                .enumerate()
                .max_by(|a, b| a.1.total_cmp(b.1))
                .map(|(i, _)| i)
                .expect("non-empty posterior")
        })
        .collect();
    EmResult { qualities, posteriors, truths, iterations }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wid(i: u32) -> WorkerId {
        WorkerId(i)
    }

    #[test]
    fn majority_vote_basic() {
        assert_eq!(majority_vote(&[0, 0, 1], 2), 0);
        assert_eq!(majority_vote(&[1, 1, 0], 2), 1);
        assert_eq!(majority_vote(&[], 3), 0); // no votes: lowest index
    }

    #[test]
    fn majority_vote_tie_breaks_low() {
        assert_eq!(majority_vote(&[0, 1], 2), 0);
        assert_eq!(majority_vote(&[2, 1], 3), 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn majority_vote_rejects_out_of_range() {
        majority_vote(&[5], 2);
    }

    #[test]
    fn bayesian_posterior_weights_good_workers_more() {
        let mut q = HashMap::new();
        q.insert(wid(1), 0.95); // expert says choice 0
        q.insert(wid(2), 0.55); // two mediocre workers say choice 1
        q.insert(wid(3), 0.55);
        let p = bayesian_posterior(&[(wid(1), 0), (wid(2), 1), (wid(3), 1)], &q, 2);
        assert!(p[0] > p[1], "expert should dominate: {p:?}");
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn bayesian_posterior_uniform_when_no_answers() {
        let q = HashMap::new();
        let p = bayesian_posterior(&[], &q, 4);
        assert!(p.iter().all(|&v| (v - 0.25).abs() < 1e-12));
    }

    #[test]
    fn bayesian_posterior_unknown_worker_gets_default_quality() {
        let q = HashMap::new();
        let p = bayesian_posterior(&[(wid(9), 0)], &q, 2);
        assert!(p[0] > p[1]); // default quality 0.7 > 0.5
    }

    /// Build a batch of tasks where `good` workers answer the truth and
    /// `bad` workers answer adversarially.
    fn synthetic_tasks(n: usize) -> Vec<TaskAnswers> {
        (0..n)
            .map(|i| {
                let truth = i % 2;
                TaskAnswers::flat(
                    TaskId(i as u64),
                    2,
                    vec![
                        (wid(0), truth),     // always right
                        (wid(1), truth),     // always right
                        (wid(2), 1 - truth), // always wrong
                    ],
                )
            })
            .collect()
    }

    #[test]
    fn em_learns_worker_qualities() {
        let tasks = synthetic_tasks(40);
        let r = em_truth_inference(&tasks, EmConfig::default());
        assert!(r.qualities[&wid(0)] > 0.9, "{:?}", r.qualities);
        assert!(r.qualities[&wid(1)] > 0.9);
        assert!(r.qualities[&wid(2)] < 0.2, "{:?}", r.qualities);
    }

    #[test]
    fn em_recovers_truth_against_majority() {
        // Two good workers beat one adversary; also test that EM flips a
        // task where the adversary + one unreliable vote disagree.
        let tasks = synthetic_tasks(40);
        let r = em_truth_inference(&tasks, EmConfig::default());
        for (i, &t) in r.truths.iter().enumerate() {
            assert_eq!(t, i % 2);
        }
    }

    #[test]
    fn em_converges_and_reports_iterations() {
        let tasks = synthetic_tasks(10);
        let r = em_truth_inference(&tasks, EmConfig::default());
        assert!(r.iterations <= 50);
        assert!(r.iterations >= 2);
    }

    #[test]
    fn em_on_empty_input() {
        let r = em_truth_inference(&[], EmConfig::default());
        assert!(r.truths.is_empty());
        assert!(r.qualities.is_empty());
    }

    #[test]
    fn em_posteriors_are_distributions() {
        let tasks = synthetic_tasks(8);
        let r = em_truth_inference(&tasks, EmConfig::default());
        for p in &r.posteriors {
            assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
            assert!(p.iter().all(|&v| (0.0..=1.0).contains(&v)));
        }
    }
}
