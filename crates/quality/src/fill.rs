//! Fill-in-blank truth inference: the *pivot* answer.
//!
//! Worker quality is hard to model on open tasks, so CDB estimates the
//! truth of a fill-in-blank task as the answer closest to all the others —
//! the one with the highest aggregated string similarity (§5.3.1).

use cdb_similarity::{SimilarityFn, SimilarityMeasure};

/// Aggregated similarity of `answer` to all the `answers`:
/// `s_a = Σ_{a'} sim(a, a')` (self-similarity included, as a constant shift
/// it does not change the argmax).
pub fn aggregated_similarity(answer: &str, answers: &[String], f: SimilarityFn) -> f64 {
    answers.iter().map(|a| f.similarity(answer, a)).sum()
}

/// The pivot answer: index of the answer with the highest aggregated
/// similarity, ties broken toward the earliest answer. Returns `None` for
/// an empty answer set.
pub fn pivot_answer(answers: &[String], f: SimilarityFn) -> Option<usize> {
    if answers.is_empty() {
        return None;
    }
    let mut best = 0usize;
    let mut best_score = f64::NEG_INFINITY;
    for (i, a) in answers.iter().enumerate() {
        let s = aggregated_similarity(a, answers, f);
        if s > best_score {
            best_score = s;
            best = i;
        }
    }
    Some(best)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strings(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn pivot_picks_the_consensus_answer() {
        let answers = strings(&[
            "Massachusetts Institute of Technology",
            "Massachusetts Institute of Technology",
            "Massachusetts Inst of Technology",
            "Stanford",
        ]);
        let p = pivot_answer(&answers, SimilarityFn::default()).unwrap();
        assert!(p <= 1, "pivot should be one of the two exact duplicates, got {p}");
    }

    #[test]
    fn pivot_of_empty_is_none() {
        assert_eq!(pivot_answer(&[], SimilarityFn::default()), None);
    }

    #[test]
    fn pivot_of_single_answer_is_it() {
        assert_eq!(pivot_answer(&strings(&["MIT"]), SimilarityFn::default()), Some(0));
    }

    #[test]
    fn pivot_tie_breaks_to_first() {
        let answers = strings(&["aaaa", "bbbb"]);
        assert_eq!(pivot_answer(&answers, SimilarityFn::default()), Some(0));
    }

    #[test]
    fn aggregated_similarity_includes_self() {
        let answers = strings(&["abc", "xyz"]);
        let s = aggregated_similarity("abc", &answers, SimilarityFn::QGramJaccard { q: 2 });
        assert!(s >= 1.0, "self similarity contributes 1.0, got {s}");
    }

    #[test]
    fn outlier_never_wins_against_cluster() {
        let answers = strings(&["California", "Californa", "Calfornia", "zzzzzz"]);
        let p = pivot_answer(&answers, SimilarityFn::QGramJaccard { q: 2 }).unwrap();
        assert_ne!(p, 3);
    }
}
