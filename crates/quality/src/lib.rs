//! Quality control for CDB (Section 5.3 of the paper).
//!
//! CDB controls quality at two moments:
//!
//! 1. **Truth inference** — when workers answer, estimate each worker's
//!    quality `q_w` with EM and aggregate answers by *Bayesian voting*
//!    (Eq. 2), which is optimal given known worker qualities. Multi-choice
//!    tasks decompose into ℓ binary membership tasks; fill-in-blank tasks
//!    use the *pivot* answer (highest aggregated string similarity).
//! 2. **Task assignment** — when a worker arrives, assign the k tasks whose
//!    expected entropy reduction is largest (Eq. 3); fill tasks with the
//!    least answer consistency (Eq. 4); collection tasks with the smallest
//!    completeness score `(N - M) / N` where `N` is a species-richness
//!    estimate of the answer cardinality.
//!
//! The plain majority-voting strategy used by CrowdDB/Qurk/Deco/CrowdOP is
//! also provided as the comparison baseline.

mod assign;
mod estimate;
mod fill;
mod multi;
mod partial;
mod truth;

pub use assign::{
    collect_completeness, expected_quality_improvement, fill_consistency, select_top_k_tasks,
};
pub use estimate::chao92_estimate;
pub use fill::{aggregated_similarity, pivot_answer};
pub use multi::{decompose_multi_choice, infer_multi_choice};
pub use partial::{decided_choice, early_decision, vote_entropy, PartialDecision};
pub use truth::{
    bayesian_posterior, bayesian_posterior_difficulty, effective_accuracy, em_truth_inference,
    majority_vote, EmConfig, EmResult, TaskAnswers,
};
