//! Task assignment (§5.3.2): give the arriving worker the tasks whose
//! quality improves the most.

use cdb_similarity::{SimilarityFn, SimilarityMeasure};

use crate::estimate::chao92_estimate;

/// Shannon entropy of a distribution (natural log; 0·log0 = 0).
fn entropy(p: &[f64]) -> f64 {
    -p.iter().filter(|&&v| v > 0.0).map(|&v| v * v.ln()).sum::<f64>()
}

/// Expected quality improvement `I(t)` (Eq. 3) if worker of quality `q_w`
/// answers a task whose current posterior over ℓ choices is `p`.
///
/// For each choice `i` the worker answers it with probability
/// `p_i·q_w + (1 − p_i)·(1 − q_w)/(ℓ − 1)`; the posterior is updated by
/// Bayes' rule and the improvement is the expected entropy decrease.
pub fn expected_quality_improvement(p: &[f64], q_w: f64) -> f64 {
    let l = p.len();
    assert!(l >= 2, "choice task needs at least 2 choices");
    let q = q_w.clamp(1e-6, 1.0 - 1e-6);
    let wrong = (1.0 - q) / (l as f64 - 1.0);
    let h0 = entropy(p);
    let mut expected_h = 0.0;
    for i in 0..l {
        // Probability the worker picks choice i.
        let delta = p[i] * q + (1.0 - p[i]) * wrong;
        if delta <= 0.0 {
            continue;
        }
        // Posterior after observing answer i.
        let p_new: Vec<f64> = p
            .iter()
            .enumerate()
            .map(|(j, &pj)| if j == i { pj * q / delta } else { pj * wrong / delta })
            .collect();
        expected_h += delta * entropy(&p_new);
    }
    h0 - expected_h
}

/// Select the indices of the top-`k` tasks by expected quality improvement
/// for a worker of quality `q_w`. `posteriors[i]` is the current choice
/// distribution of task `i`. Ties break toward lower index.
pub fn select_top_k_tasks(posteriors: &[Vec<f64>], q_w: f64, k: usize) -> Vec<usize> {
    let mut scored: Vec<(usize, f64)> = posteriors
        .iter()
        .enumerate()
        .map(|(i, p)| (i, expected_quality_improvement(p, q_w)))
        .collect();
    scored.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
    scored.into_iter().take(k).map(|(i, _)| i).collect()
}

/// Consistency `C(t)` of a fill-in-blank task (Eq. 4): the mean pairwise
/// similarity of the answers collected so far. Tasks with *low* consistency
/// should be assigned next. Returns 0 for fewer than two answers (fully
/// unknown — most in need of answers).
pub fn fill_consistency(answers: &[String], f: SimilarityFn) -> f64 {
    let n = answers.len();
    if n < 2 {
        return 0.0;
    }
    let mut sum = 0.0;
    for i in 0..n {
        for j in i + 1..n {
            sum += f.similarity(&answers[i], &answers[j]);
        }
    }
    sum / (n * (n - 1) / 2) as f64
}

/// Completeness score `(N − M) / N` of a collection task (§5.3.2), where
/// `M` is the number of distinct tuples collected and `N` a chao92 estimate
/// of the total cardinality. Collection tasks with the *highest* score
/// (farthest from complete) are assigned first. `counts[i]` is the number
/// of contributions of distinct item `i`.
pub fn collect_completeness(counts: &[usize]) -> f64 {
    let m = counts.len() as f64;
    let n = chao92_estimate(counts);
    if n <= 0.0 {
        return 1.0; // nothing collected yet: maximally incomplete
    }
    ((n - m) / n).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn uncertain_tasks_improve_more_than_settled_ones() {
        let uncertain = vec![0.5, 0.5];
        let settled = vec![0.99, 0.01];
        let iu = expected_quality_improvement(&uncertain, 0.8);
        let is = expected_quality_improvement(&settled, 0.8);
        assert!(iu > is, "I(uncertain)={iu} should exceed I(settled)={is}");
    }

    #[test]
    fn better_workers_improve_more() {
        let p = vec![0.5, 0.5];
        let i9 = expected_quality_improvement(&p, 0.9);
        let i6 = expected_quality_improvement(&p, 0.6);
        assert!(i9 > i6);
    }

    #[test]
    fn random_worker_gives_no_improvement_on_binary() {
        // q = 0.5 on 2 choices carries no information.
        let p = vec![0.7, 0.3];
        let i = expected_quality_improvement(&p, 0.5);
        assert!(i.abs() < 1e-9, "I = {i}");
    }

    #[test]
    fn top_k_selects_most_uncertain() {
        let posts = vec![vec![0.95, 0.05], vec![0.5, 0.5], vec![0.8, 0.2]];
        assert_eq!(select_top_k_tasks(&posts, 0.8, 2), vec![1, 2]);
        assert_eq!(select_top_k_tasks(&posts, 0.8, 5), vec![1, 2, 0]);
    }

    #[test]
    fn fill_consistency_behaviour() {
        let f = SimilarityFn::QGramJaccard { q: 2 };
        let same = vec!["MIT".to_string(), "MIT".to_string()];
        let diff = vec!["MIT".to_string(), "Stanford University".to_string()];
        assert!(fill_consistency(&same, f) > fill_consistency(&diff, f));
        assert_eq!(fill_consistency(&[], f), 0.0);
        assert_eq!(fill_consistency(&["x".to_string()], f), 0.0);
    }

    #[test]
    fn completeness_score_drops_as_coverage_saturates() {
        let early = vec![1, 1, 1]; // all singletons, far from complete
        let late = vec![8, 9, 10, 7]; // heavily resampled
        assert!(collect_completeness(&early) > collect_completeness(&late));
        assert_eq!(collect_completeness(&[]), 1.0);
    }

    proptest! {
        #[test]
        fn improvement_is_nonnegative_for_informative_workers(
            p0 in 0.01f64..0.99,
            q in 0.5f64..1.0,
        ) {
            let p = vec![p0, 1.0 - p0];
            let i = expected_quality_improvement(&p, q);
            prop_assert!(i >= -1e-9, "I = {i}");
        }

        #[test]
        fn completeness_in_unit_interval(counts in prop::collection::vec(1usize..10, 0..30)) {
            let c = collect_completeness(&counts);
            prop_assert!((0.0..=1.0).contains(&c));
        }

        #[test]
        fn consistency_in_unit_interval(
            answers in prop::collection::vec("[a-c]{1,6}", 0..6),
        ) {
            let c = fill_consistency(&answers, SimilarityFn::QGramJaccard { q: 2 });
            prop_assert!((0.0..=1.0).contains(&c));
        }
    }
}
