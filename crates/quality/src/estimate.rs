//! Cardinality estimation for collection tasks.
//!
//! To score the *completeness* of a COLLECT query, CDB estimates the total
//! number of distinct answers `N` from the stream of contributions
//! (following crowd enumeration queries, Trushkowsky et al. [53]). We use
//! the chao92 species-richness estimator, the standard choice in that
//! line of work.

/// chao92 estimate of the total number of distinct items, from the
/// multiset of observed contribution counts.
///
/// `counts[i]` is how many times distinct item `i` has been contributed.
/// With `c = 1 - f1/n` the sample coverage (f1 = singletons, n = total
/// contributions) and `d` the number of distinct observed items, the
/// estimate is `d / c + n(1-c)/c * γ²` where `γ²` is the squared
/// coefficient of variation. Falls back to `d` when coverage is zero.
pub fn chao92_estimate(counts: &[usize]) -> f64 {
    let d = counts.len() as f64;
    let n: usize = counts.iter().sum();
    if n == 0 {
        return 0.0;
    }
    let n_f = n as f64;
    let f1 = counts.iter().filter(|&&c| c == 1).count() as f64;
    let coverage = 1.0 - f1 / n_f;
    if coverage <= 0.0 {
        // All singletons: no basis to extrapolate; return a pessimistic
        // doubling like the original paper's guidance.
        return 2.0 * d;
    }
    let d_cov = d / coverage;
    // Squared coefficient of variation of the counts.
    let sum_i: f64 = counts.iter().map(|&c| (c * (c.saturating_sub(1))) as f64).sum();
    let gamma2 = ((d_cov * sum_i) / (n_f * (n_f - 1.0).max(1.0)) - 1.0).max(0.0);
    d_cov + n_f * (1.0 - coverage) / coverage * gamma2
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_contributions_estimates_zero() {
        assert_eq!(chao92_estimate(&[]), 0.0);
    }

    #[test]
    fn fully_saturated_sample_estimates_observed() {
        // Every item seen many times: coverage ~1, estimate ~ d.
        let counts = vec![10; 20];
        let est = chao92_estimate(&counts);
        assert!((est - 20.0).abs() < 0.5, "est = {est}");
    }

    #[test]
    fn many_singletons_extrapolate_upwards() {
        // Half the items are singletons: plenty of unseen mass.
        let mut counts = vec![1; 10];
        counts.extend(vec![3; 10]);
        let est = chao92_estimate(&counts);
        assert!(est > 20.0, "est = {est}");
    }

    #[test]
    fn all_singletons_doubles() {
        assert_eq!(chao92_estimate(&[1, 1, 1, 1]), 8.0);
    }

    #[test]
    fn estimate_is_at_least_observed_distinct() {
        for counts in [vec![2, 2, 1], vec![5, 1, 1, 1], vec![3]] {
            let est = chao92_estimate(&counts);
            assert!(est + 1e-9 >= counts.len() as f64, "est {est} < d {}", counts.len());
        }
    }
}
