//! Multi-choice decomposition (§5.3.1, §5.3.2).
//!
//! A multiple-choice task with ℓ choices decomposes into ℓ binary
//! single-choice tasks — "is choice i part of the truth?" — so that the
//! single-choice truth inference and assignment machinery applies
//! unchanged. Binary task `i` receives vote 0 ("yes, included") from every
//! worker whose answer set contains choice `i`, and vote 1 otherwise.

use std::collections::HashMap;

use cdb_crowd::{TaskId, WorkerId};

use crate::truth::{bayesian_posterior, TaskAnswers};

/// Decompose a multi-choice task into ℓ binary [`TaskAnswers`].
///
/// `answers` maps each worker to the set of choice indices they picked.
/// The synthetic binary tasks reuse the original task id's value in their
/// `TaskId` — callers that need distinct ids should remap; the inference
/// functions only use ids for bookkeeping.
pub fn decompose_multi_choice(
    task: TaskId,
    num_choices: usize,
    answers: &[(WorkerId, Vec<usize>)],
) -> Vec<TaskAnswers> {
    (0..num_choices)
        .map(|choice| {
            TaskAnswers::flat(
                task,
                2,
                answers
                    .iter()
                    .map(|(w, picked)| (*w, usize::from(!picked.contains(&choice))))
                    .collect(),
            )
        })
        .collect()
}

/// Infer the truth of a multi-choice task by Bayesian voting on each
/// decomposed binary task: the result is the set of choices whose
/// "included" posterior exceeds 0.5.
pub fn infer_multi_choice(
    task: TaskId,
    num_choices: usize,
    answers: &[(WorkerId, Vec<usize>)],
    qualities: &HashMap<WorkerId, f64>,
) -> Vec<usize> {
    decompose_multi_choice(task, num_choices, answers)
        .iter()
        .enumerate()
        .filter(|(_, bin)| {
            let p = bayesian_posterior(&bin.answers, qualities, 2);
            p[0] > 0.5
        })
        .map(|(i, _)| i)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wid(i: u32) -> WorkerId {
        WorkerId(i)
    }

    #[test]
    fn decomposition_shape() {
        let answers = vec![(wid(1), vec![0, 2]), (wid(2), vec![0])];
        let bins = decompose_multi_choice(TaskId(1), 3, &answers);
        assert_eq!(bins.len(), 3);
        // Choice 0: both included -> votes [0, 0].
        assert_eq!(bins[0].answers, vec![(wid(1), 0), (wid(2), 0)]);
        // Choice 1: neither included -> votes [1, 1].
        assert_eq!(bins[1].answers, vec![(wid(1), 1), (wid(2), 1)]);
        // Choice 2: only worker 1 -> votes [0, 1].
        assert_eq!(bins[2].answers, vec![(wid(1), 0), (wid(2), 1)]);
    }

    #[test]
    fn inference_recovers_consensus_set() {
        let mut q = HashMap::new();
        for i in 0..3 {
            q.insert(wid(i), 0.9);
        }
        let answers = vec![(wid(0), vec![0, 1]), (wid(1), vec![0, 1]), (wid(2), vec![0])];
        assert_eq!(infer_multi_choice(TaskId(1), 3, &answers, &q), vec![0, 1]);
    }

    #[test]
    fn high_quality_minority_beats_low_quality_majority() {
        let mut q = HashMap::new();
        q.insert(wid(0), 0.99);
        q.insert(wid(1), 0.51);
        q.insert(wid(2), 0.51);
        let answers = vec![(wid(0), vec![2]), (wid(1), vec![]), (wid(2), vec![])];
        assert_eq!(infer_multi_choice(TaskId(1), 3, &answers, &q), vec![2]);
    }

    #[test]
    fn empty_answers_yield_empty_truth() {
        let q = HashMap::new();
        assert!(infer_multi_choice(TaskId(1), 3, &[], &q).is_empty());
    }
}
