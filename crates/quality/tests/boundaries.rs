//! Boundary inputs for truth inference: empty vote sets, single-worker
//! unanimity, out-of-range votes, and degenerate configurations. These
//! are the shapes the concurrent runtime actually produces at the edges —
//! lost answers, one-worker markets, malformed crowd responses.

use std::collections::HashMap;

use cdb_crowd::{TaskId, WorkerId};
use cdb_quality::{
    bayesian_posterior, bayesian_posterior_difficulty, decided_choice, early_decision,
    effective_accuracy, em_truth_inference, majority_vote, vote_entropy, EmConfig, PartialDecision,
    TaskAnswers,
};

// --- empty vote sets -------------------------------------------------------

/// No votes yet, answers outstanding: inference must wait, not decide.
#[test]
fn empty_votes_with_outstanding_answers_need_more() {
    assert_eq!(early_decision(&[], 2, 3), PartialDecision::NeedMore);
    assert_eq!(decided_choice(&[], 2, 3), None);
}

/// No votes and none expected (redundancy 0, or every answer lost): the
/// task exhausts to majority's deterministic tie-break, choice 0.
#[test]
fn empty_votes_with_zero_redundancy_exhaust_to_tiebreak() {
    assert_eq!(early_decision(&[], 2, 0), PartialDecision::Exhausted(0));
    assert_eq!(early_decision(&[], 5, 0), PartialDecision::Exhausted(0));
    assert_eq!(majority_vote(&[], 3), 0);
}

#[test]
fn empty_votes_have_zero_entropy() {
    assert_eq!(vote_entropy(&[], 2), 0.0);
    assert_eq!(vote_entropy(&[], 1), 0.0);
}

#[test]
fn empty_answers_give_uniform_posterior() {
    let p = bayesian_posterior(&[], &HashMap::new(), 3);
    for v in &p {
        assert!((v - 1.0 / 3.0).abs() < 1e-12);
    }
    // Degenerate single-choice task: the posterior is the point mass.
    let p = bayesian_posterior(&[], &HashMap::new(), 1);
    assert_eq!(p, vec![1.0]);
}

// --- single-worker unanimity ----------------------------------------------

/// One planned assignment, one answer: exhausted, and the single vote is
/// unanimously the decision — for either choice.
#[test]
fn single_worker_unanimity_decides_at_redundancy_one() {
    assert_eq!(early_decision(&[0], 2, 1), PartialDecision::Exhausted(0));
    assert_eq!(early_decision(&[1], 2, 1), PartialDecision::Exhausted(1));
    assert_eq!(decided_choice(&[1], 2, 1), Some(1));
}

/// The same single vote with more redundancy planned is NOT enough: one
/// outstanding answer can force a tie, which breaks toward the rival.
#[test]
fn single_vote_with_outstanding_answers_is_not_decided() {
    assert_eq!(early_decision(&[1], 2, 2), PartialDecision::NeedMore);
}

/// Unanimity is zero-entropy however many votes deep.
#[test]
fn unanimous_votes_have_zero_entropy() {
    assert_eq!(vote_entropy(&[1], 2), 0.0);
    assert_eq!(vote_entropy(&[1, 1, 1, 1], 2), 0.0);
}

/// EM on a single task answered by a single worker: the worker's answer
/// is the inferred truth, qualities stay near the prior (one answer is
/// not evidence against it), and iteration count is reported.
#[test]
fn em_single_task_single_worker() {
    let tasks = vec![TaskAnswers::flat(TaskId(0), 2, vec![(WorkerId(7), 1)])];
    let r = em_truth_inference(&tasks, EmConfig::default());
    assert_eq!(r.truths, vec![1]);
    assert!(r.iterations >= 1);
    let q = r.qualities[&WorkerId(7)];
    assert!((0.5..=0.99).contains(&q), "single answer should not crater quality: {q}");
}

// --- out-of-range votes ----------------------------------------------------

/// A malformed vote consumes its assignment but carries no signal; an
/// all-out-of-range vote set exhausts to the deterministic tie-break
/// instead of panicking.
#[test]
fn all_out_of_range_votes_exhaust_to_tiebreak() {
    assert_eq!(early_decision(&[9, 9], 2, 2), PartialDecision::Exhausted(0));
    assert_eq!(decided_choice(&[7, 8, 9], 2, 3), Some(0));
}

/// Out-of-range votes never push a task over the early-decision line —
/// with answers still outstanding they are dead weight, not a lead.
#[test]
fn out_of_range_votes_do_not_decide_early() {
    assert_eq!(early_decision(&[9, 9], 2, 5), PartialDecision::NeedMore);
    // One valid leading vote + garbage is still only a lead of 1 with 2
    // outstanding.
    assert_eq!(early_decision(&[0, 9, 9], 2, 5), PartialDecision::NeedMore);
    // But a valid unassailable lead decides even with garbage mixed in:
    // lead 3, outstanding 2.
    assert_eq!(early_decision(&[0, 0, 0, 9], 2, 6), PartialDecision::Decided(0));
}

#[test]
fn out_of_range_votes_carry_no_entropy() {
    assert_eq!(vote_entropy(&[9, 9], 2), 0.0);
    // Mixed: only the in-range votes shape the distribution.
    assert_eq!(vote_entropy(&[0, 0, 9], 2), 0.0);
    assert!((vote_entropy(&[0, 1, 9], 2) - 1.0).abs() < 1e-12);
}

/// `majority_vote` itself keeps its strict contract: out-of-range input
/// is a caller bug and panics. (`early_decision` filters before calling.)
#[test]
#[should_panic(expected = "out of range")]
fn majority_vote_still_rejects_out_of_range() {
    majority_vote(&[2], 2);
}

// --- degenerate model parameters ------------------------------------------

/// `effective_accuracy` clamps difficulty into [0, 1] and its result away
/// from the 0/1 poles so log-space inference never sees ±inf.
#[test]
fn effective_accuracy_boundaries() {
    for q in [0.0, 0.5, 1.0] {
        for d in [-1.0, 0.0, 0.5, 1.0, 2.0] {
            let e = effective_accuracy(q, d);
            assert!((1e-6..=1.0 - 1e-6).contains(&e), "q={q} d={d} -> {e}");
        }
    }
    // Difficulty 1.0 is the identity on interior qualities.
    assert!((effective_accuracy(0.8, 1.0) - 0.8).abs() < 1e-12);
    // Difficulty 0 makes even a hopeless worker mostly right (k = 0.9).
    assert!(effective_accuracy(0.0, 0.0) > 0.85);
}

/// On a zero-difficulty (easy) task even weak workers are mostly right,
/// so the same vote is stronger evidence than on a hard task.
#[test]
fn easy_tasks_sharpen_the_posterior() {
    let mut q = HashMap::new();
    q.insert(WorkerId(1), 0.9);
    let votes = [(WorkerId(1), 0)];
    let hard = bayesian_posterior_difficulty(&votes, &q, 2, 1.0);
    let easy = bayesian_posterior_difficulty(&votes, &q, 2, 0.0);
    assert!(easy[0] > hard[0], "easy {easy:?} vs hard {hard:?}");
    assert!(hard[0] > 0.5, "an answer is still evidence on a hard task");
}

/// EM with `max_iters: 0` still runs one E step, so posteriors exist.
#[test]
fn em_with_zero_max_iters_still_infers() {
    let tasks = vec![TaskAnswers::flat(TaskId(0), 2, vec![(WorkerId(1), 0), (WorkerId(2), 0)])];
    let cfg = EmConfig { max_iters: 0, ..EmConfig::default() };
    let r = em_truth_inference(&tasks, cfg);
    assert_eq!(r.iterations, 1);
    assert_eq!(r.truths, vec![0]);
    assert_eq!(r.posteriors.len(), 1);
}
