//! Memory envelope of scale-out generation. This file holds exactly one
//! test so the counting allocator below observes a single generator run
//! with no concurrent test noise (integration-test files are separate
//! binaries).

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

use cdb_datagen::{award_dataset, DatasetScale};

/// System allocator wrapped with live/peak byte counters.
struct CountingAlloc;

static LIVE: AtomicUsize = AtomicUsize::new(0);
static PEAK: AtomicUsize = AtomicUsize::new(0);

fn note_live(live: usize) {
    PEAK.fetch_max(live, Ordering::Relaxed);
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc(layout);
        if !p.is_null() {
            note_live(LIVE.fetch_add(layout.size(), Ordering::Relaxed) + layout.size());
        }
        p
    }

    unsafe fn dealloc(&self, p: *mut u8, layout: Layout) {
        LIVE.fetch_sub(layout.size(), Ordering::Relaxed);
        System.dealloc(p, layout);
    }

    unsafe fn realloc(&self, p: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let q = System.realloc(p, layout, new_size);
        if !q.is_null() {
            if new_size >= layout.size() {
                let grow = new_size - layout.size();
                note_live(LIVE.fetch_add(grow, Ordering::Relaxed) + grow);
            } else {
                LIVE.fetch_sub(layout.size() - new_size, Ordering::Relaxed);
            }
        }
        q
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// The documented envelope: generating a dataset holds at most 1 KiB of
/// live heap per generated row above the pre-generation baseline (the
/// actual footprint is a few hundred bytes per row — tuple values plus
/// the ground-truth sets; see EXPERIMENTS.md "Sharded execution").
/// 10x the paper's award cardinalities is 85,790 rows, so generation must
/// peak under ~84 MiB — components then stream through shard arenas, so
/// generation itself is the memory high-water mark of a scale-out run.
#[test]
fn award_10x_generation_stays_within_memory_envelope() {
    let scale = DatasetScale::award_full().times(10);
    let baseline = LIVE.load(Ordering::Relaxed);
    PEAK.store(baseline, Ordering::Relaxed);
    let ds = award_dataset(scale, 42);
    let peak = PEAK.load(Ordering::Relaxed);
    let envelope = scale.rows() * 1024;
    let used = peak.saturating_sub(baseline);
    assert!(
        used <= envelope,
        "10x award generation peaked at {used} bytes above baseline; \
         envelope is {envelope} (1 KiB x {} rows)",
        scale.rows()
    );
    // The dataset really was generated at scale (the envelope is not
    // trivially satisfied by an early bail-out).
    assert_eq!(ds.db.table("City").expect("city").row_count(), scale.t2);
    assert!(ds.truth.joins.len() > scale.t3 / 2, "truth populated at scale");
}
