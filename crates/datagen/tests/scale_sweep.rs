//! Scale-out sweep of the dataset generators: the 10x-100x paper
//! cardinalities the sharded executor benchmarks run on. Generation must
//! stay linear in the row count, entity names must stay unique (a
//! repeating pool makes the similarity join quadratic in the scale
//! multiplier), and the dirty-data matching ratios documented in the
//! generator comments must hold at scale, not just at paper scale.

use std::collections::HashSet;

use cdb_datagen::{award_dataset, paper_dataset, DatasetScale};

#[test]
fn times_multiplies_every_cardinality() {
    let s = DatasetScale::award_full().times(10);
    assert_eq!((s.t1, s.t2, s.t3, s.t4), (14_980, 32_200, 26_690, 11_920));
    assert_eq!(s.rows(), 85_790);
    // times(1) is the identity; scaled(1) too.
    assert_eq!(DatasetScale::paper_full().times(1), DatasetScale::paper_full());
}

#[test]
#[should_panic(expected = "dataset scale multiplier overflows")]
fn times_overflow_is_a_loud_panic_not_a_wrap() {
    let _ = DatasetScale::award_full().times(usize::MAX / 2);
}

/// The regression test for the award-name period: `(stem, year)` repeats
/// every 40 rows, so without the row suffix the full-scale Award table
/// held only 40 distinct names — and at 10x every name had ~300
/// byte-identical copies, each matching every winner variant.
#[test]
fn award_names_are_unique_at_10x_scale() {
    let ds = award_dataset(DatasetScale::award_full().times(10).scaled(20), 7);
    let awards = ds.db.table("Award").expect("award table");
    let names = awards.column_strings("name").expect("name column");
    let distinct: HashSet<&String> = names.iter().collect();
    assert_eq!(distinct.len(), names.len(), "award names must not repeat");
    // The universe COLLECT draws from is those same names.
    assert_eq!(ds.universe.len(), names.len());
}

/// Fraction of rows in `table` that the ground truth joins to some row of
/// the partner table.
fn join_fraction(ds: &cdb_datagen::Dataset, table: &str, partner: &str) -> f64 {
    let rows = ds.db.table(table).expect("table").row_count();
    let joined: HashSet<usize> = ds
        .truth
        .joins
        .iter()
        .filter(|(a, b)| {
            (a.table == table && b.table == partner) || (b.table == table && a.table == partner)
        })
        .map(|(a, b)| if a.table == table { a.row } else { b.row })
        .collect();
    joined.len() as f64 / rows as f64
}

/// At 10x the sim-sweep cardinalities the award generator must keep the
/// matching structure its comments document: ~75% of celebrities born in
/// a listed city, ~55% of winners a listed celebrity, ~75% of winner
/// awards a listed award. A drifting ratio would silently change every
/// experiment's selectivity at scale.
#[test]
fn award_dirty_ratios_hold_at_10x_scale() {
    let ds = award_dataset(DatasetScale::award_full().times(10).scaled(100), 11);
    let celeb_city = join_fraction(&ds, "Celebrity", "City");
    let winner_celeb = join_fraction(&ds, "Winner", "Celebrity");
    let winner_award = join_fraction(&ds, "Winner", "Award");
    assert!((0.70..=0.80).contains(&celeb_city), "Celebrity~City {celeb_city}");
    assert!((0.50..=0.60).contains(&winner_celeb), "Winner~Celebrity {winner_celeb}");
    assert!((0.70..=0.80).contains(&winner_award), "Winner~Award {winner_award}");
}

/// Same at 10x for the paper dataset: ~70% researchers affiliated, ~65%
/// papers authored by a listed researcher, ~55% citations of a listed
/// paper.
#[test]
fn paper_dirty_ratios_hold_at_10x_scale() {
    let ds = paper_dataset(DatasetScale::paper_full().times(10).scaled(100), 13);
    let res_uni = join_fraction(&ds, "Researcher", "University");
    let paper_res = join_fraction(&ds, "Paper", "Researcher");
    let cite_paper = join_fraction(&ds, "Citation", "Paper");
    assert!((0.65..=0.76).contains(&res_uni), "Researcher~University {res_uni}");
    assert!((0.58..=0.72).contains(&paper_res), "Paper~Researcher {paper_res}");
    assert!((0.48..=0.62).contains(&cite_paper), "Citation~Paper {cite_paper}");
}

/// Full 10x-paper-cardinality generation (85,790 rows) completes and is
/// deterministic — the linearity guard: each generator loop does O(1)
/// RNG draws and hash inserts per row, so 10x rows is 10x work, and any
/// accidentally quadratic pool lookup would time this test out.
#[test]
fn award_10x_generation_is_linear_and_deterministic() {
    let scale = DatasetScale::award_full().times(10);
    let a = award_dataset(scale, 42);
    assert_eq!(a.db.table("Celebrity").expect("t1").row_count(), scale.t1);
    assert_eq!(a.db.table("City").expect("t2").row_count(), scale.t2);
    assert_eq!(a.db.table("Winner").expect("t3").row_count(), scale.t3);
    assert_eq!(a.db.table("Award").expect("t4").row_count(), scale.t4);
    assert!(!a.truth.joins.is_empty());
    let b = award_dataset(scale, 42);
    assert_eq!(a.truth.joins, b.truth.joins);
    assert_eq!(
        a.db.table("Winner").expect("t3").column_strings("name"),
        b.db.table("Winner").expect("t3").column_strings("name")
    );
}
